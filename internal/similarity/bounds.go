// Score upper bounds for candidate pruning. The inverted-index query path
// (internal/index, internal/shard) skips auxiliary users that share no
// attribute with the query user — but only when it can prove that no
// skipped user could enter the top-K. The proof obligation is an upper
// bound on Score(u, v) over every v in a degree band with zero attribute
// overlap; this file computes that bound from the same per-component
// decomposition Score uses, inflated by a small safety margin so floating-
// point rounding in the exact path can never exceed it. A conservative
// bound costs only extra scanning, never correctness.
//
// Beyond the degree/weighted-degree ranges, a band can carry the min/max
// L2 norms of its members' NCS and closeness vectors (BandStats). Cosine
// similarity is scale-invariant, so nonzero norm ranges cannot pull a
// cosine bound below 1 — but the zero/nonzero distinction can: a cosine
// against an all-zero vector is exactly 0 (that is Cosine's convention),
// so whenever the band's max norm is 0, or the query side's own norm is 0,
// the corresponding cosine term drops out of the bound entirely. On the
// sparse disconnected correlation graphs the paper describes (Fig.7),
// whole bands of isolated or landmark-unreachable users lose their
// distance-similarity headroom this way, which is what turns near-miss
// bands into certified skips.

package similarity

import (
	"math"

	"dehealth/internal/stylometry"
)

// Bound safety margins: upper bounds are inflated by a relative factor and
// an absolute epsilon so that rounding in the exact Score computation (for
// example a cosine landing a few ulps above 1) can never produce a score
// above the bound. The inflation is orders of magnitude larger than any
// accumulated float64 rounding on the handful of operations Score performs,
// and orders of magnitude smaller than real score differences.
const (
	boundRelMargin = 1e-9
	boundAbsMargin = 1e-12
)

// inflate applies the safety margins to a raw upper bound.
func inflate(b float64) float64 {
	return b*(1+boundRelMargin) + boundAbsMargin
}

// RatioSimBound returns an upper bound on ratioSim(a, b) over all b in
// [lo, hi] (the min/max ratio used by the degree similarity). When a lies
// inside the interval some b equals a and the bound is 1; outside, the
// closest endpoint gives the tightest ratio. Degenerate intervals
// containing 0 bound to 1, matching ratioSim's convention for isolated
// nodes.
func RatioSimBound(a, lo, hi float64) float64 {
	if lo <= a && a <= hi {
		return 1
	}
	if a < lo {
		if lo == 0 {
			return 1
		}
		return a / lo
	}
	if a == 0 {
		return 1
	}
	return hi / a
}

// AnonAttrs returns the attribute set of anonymized user u — the query
// side of the attribute inverted index.
func (s *Scorer) AnonAttrs(u int) stylometry.AttrSet { return s.g1.Attrs[u] }

// AuxAttrs returns window-local auxiliary user j's attribute set (shared;
// do not modify). Index construction reads the aux side exclusively
// through these accessors so the index sees exactly the frozen values the
// scoring hot loop sees.
func (s *Scorer) AuxAttrs(j int) stylometry.AttrSet { return s.ax.attrs[j] }

// AuxDegree returns window-local auxiliary user j's (global) degree.
func (s *Scorer) AuxDegree(j int) float64 { return s.ax.deg[j] }

// AuxWeightedDegree returns window-local auxiliary user j's (global)
// weighted degree.
func (s *Scorer) AuxWeightedDegree(j int) float64 { return s.ax.wdeg[j] }

// AuxNCSNorm returns the precomputed L2 norm of window-local auxiliary
// user j's NCS vector — the value the scoring kernel divides by, so band
// norm ranges built from it can never drift from scoring.
func (s *Scorer) AuxNCSNorm(j int) float64 { return s.ax.ncsNorm[j] }

// AuxCloseNorm returns the precomputed L2 norm of window-local auxiliary
// user j's hop-closeness vector.
func (s *Scorer) AuxCloseNorm(j int) float64 { return s.ax.closeNorm[j] }

// AuxWclNorm returns the precomputed L2 norm of window-local auxiliary
// user j's weighted-closeness vector.
func (s *Scorer) AuxWclNorm(j int) float64 { return s.ax.wclNorm[j] }

// PruneSafe reports whether the scorer's configuration admits safe
// candidate pruning: all three component weights must be non-negative,
// since the band bounds multiply per-component upper bounds by the weights
// (a negative weight would turn an upper bound into a lower one). The
// paper's configurations are all non-negative; a scorer that is not
// prune-safe simply falls back to the full scan.
func (s *Scorer) PruneSafe() bool {
	return s.cfg.C1 >= 0 && s.cfg.C2 >= 0 && s.cfg.C3 >= 0
}

// BandStats carries a degree band's per-member ranges for the structural
// score bound: degree and weighted-degree intervals, plus the min/max L2
// norms of the members' NCS, hop-closeness and weighted-closeness vectors.
// The norm minima are not consulted by the bound (cosines are
// scale-invariant; only "is any member nonzero" matters, which the maxima
// answer) but are part of the band summary the index stores. Unknown norm
// ranges are expressed as NormHi = +Inf, which degrades each cosine bound
// to 1 — the pre-norm-range behavior.
type BandStats struct {
	DegLo, DegHi             float64
	WdegLo, WdegHi           float64
	NCSNormLo, NCSNormHi     float64
	CloseNormLo, CloseNormHi float64
	WclNormLo, WclNormHi     float64
}

// cosBound bounds a cosine term over a band: 0 when the query vector is
// all-zero (its cosine against anything is exactly 0) or every band
// member's vector is all-zero (max norm 0), else 1.
func cosBound(queryNorm, bandNormHi float64) float64 {
	if queryNorm == 0 || bandNormHi == 0 {
		return 0
	}
	return 1
}

// ScoreBoundBand returns an upper bound on Score(p.User(), v) over every
// auxiliary user v that (a) shares no attribute with the query user — so
// both Jaccard terms of AttrSim are exactly zero — and (b) falls inside
// the band's degree, weighted-degree and vector-norm ranges. The ratio
// terms are bounded by RatioSimBound over the band's intervals; each
// cosine term by cosBound, which is 0 whenever either side of that cosine
// is provably all-zero and 1 otherwise. The result carries the safety
// margin, so a strict comparison kthScore > bound certifies that no such
// v can displace any of the current top-K. Returns +Inf when the
// configuration is not prune-safe, which forces the caller to scan.
func (s *Scorer) ScoreBoundBand(p *QueryProfile, b BandStats) float64 {
	if !s.PruneSafe() {
		return math.Inf(1)
	}
	degSim := RatioSimBound(p.deg, b.DegLo, b.DegHi) +
		RatioSimBound(p.wdeg, b.WdegLo, b.WdegHi) +
		cosBound(p.ncsNorm, b.NCSNormHi)
	distSim := cosBound(p.closeNorm, b.CloseNormHi) + cosBound(p.wclNorm, b.WclNormHi)
	return inflate(s.cfg.C1*degSim + s.cfg.C2*distSim)
}

// AttrScoreBounds fills ub (reusing its capacity; pass nil to allocate)
// with one admissible upper bound per query attribute: ub[i] bounds the
// attribute-similarity contribution that attribute p.attrs.Idx[i] alone
// can add to Score(p.User(), v) for any auxiliary v, weighted by C3.
// Writing A for the query's attribute set, I for the overlap with v's
// set B, and w for the query-side weights:
//
//	Jaccard  = |I| / (|A| + |B| - |I|)           <= sum over I of 1/|A|
//	WJaccard = w(I) / (W_A + W_B - w(I))         <= sum over I of w(a)/W_A
//
// since the intersection never exceeds either side (|I| <= |B| and the
// min-weight overlap never exceeds W_B keep both denominators >= the
// query-side totals). Summing ub[i] over any candidate attribute subset
// therefore bounds the candidate's whole AttrSim term, which is what the
// max-score/WAND pivot walk accumulates per posting cursor. Each bound
// carries the safety margin, so a strict comparison against a sum of
// these bounds can never lose an exact-path candidate to rounding. The
// weighted term drops out for a query with zero total attribute weight.
func (s *Scorer) AttrScoreBounds(p *QueryProfile, ub []float64) []float64 {
	n := len(p.attrs.Idx)
	if cap(ub) < n {
		ub = make([]float64, n)
	}
	ub = ub[:n]
	inv := 0.0
	if n > 0 {
		inv = 1 / float64(n)
	}
	for i := range ub {
		raw := inv
		if p.attrTotW > 0 {
			raw += float64(p.attrs.Weight[i]) / float64(p.attrTotW)
		}
		ub[i] = inflate(s.cfg.C3 * raw)
	}
	return ub
}

// ScoreBoundNoAttr is ScoreBoundBand with unknown norm ranges: an upper
// bound on Score(u, v) over every zero-attribute-overlap v with degree in
// [degLo, degHi] and weighted degree in [wdegLo, wdegHi], each cosine
// bounded by 1 (or 0 when the query side's own vector is all-zero).
// Callers holding per-band norm ranges get strictly tighter bounds from
// ScoreBoundBand.
func (s *Scorer) ScoreBoundNoAttr(u int, degLo, degHi, wdegLo, wdegHi float64) float64 {
	var p QueryProfile
	s.PrepareQuery(u, &p)
	return s.ScoreBoundBand(&p, BandStats{
		DegLo: degLo, DegHi: degHi,
		WdegLo: wdegLo, WdegHi: wdegHi,
		NCSNormHi:   math.Inf(1),
		CloseNormHi: math.Inf(1),
		WclNormHi:   math.Inf(1),
	})
}
