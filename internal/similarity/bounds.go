// Score upper bounds for candidate pruning. The inverted-index query path
// (internal/index, internal/shard) skips auxiliary users that share no
// attribute with the query user — but only when it can prove that no
// skipped user could enter the top-K. The proof obligation is an upper
// bound on Score(u, v) over every v in a degree band with zero attribute
// overlap; this file computes that bound from the same per-component
// decomposition Score uses, inflated by a small safety margin so floating-
// point rounding in the exact path can never exceed it. A conservative
// bound costs only extra scanning, never correctness.

package similarity

import (
	"math"

	"dehealth/internal/stylometry"
)

// Bound safety margins: upper bounds are inflated by a relative factor and
// an absolute epsilon so that rounding in the exact Score computation (for
// example a cosine landing a few ulps above 1) can never produce a score
// above the bound. The inflation is orders of magnitude larger than any
// accumulated float64 rounding on the handful of operations Score performs,
// and orders of magnitude smaller than real score differences.
const (
	boundRelMargin = 1e-9
	boundAbsMargin = 1e-12
)

// inflate applies the safety margins to a raw upper bound.
func inflate(b float64) float64 {
	return b*(1+boundRelMargin) + boundAbsMargin
}

// RatioSimBound returns an upper bound on ratioSim(a, b) over all b in
// [lo, hi] (the min/max ratio used by the degree similarity). When a lies
// inside the interval some b equals a and the bound is 1; outside, the
// closest endpoint gives the tightest ratio. Degenerate intervals
// containing 0 bound to 1, matching ratioSim's convention for isolated
// nodes.
func RatioSimBound(a, lo, hi float64) float64 {
	if lo <= a && a <= hi {
		return 1
	}
	if a < lo {
		if lo == 0 {
			return 1
		}
		return a / lo
	}
	if a == 0 {
		return 1
	}
	return hi / a
}

// AnonAttrs returns the attribute set of anonymized user u — the query
// side of the attribute inverted index.
func (s *Scorer) AnonAttrs(u int) stylometry.AttrSet { return s.g1.Attrs[u] }

// AuxAttrs returns window-local auxiliary user j's attribute set (shared;
// do not modify). Index construction reads the aux side exclusively
// through these accessors so the index sees exactly the frozen values the
// scoring hot loop sees.
func (s *Scorer) AuxAttrs(j int) stylometry.AttrSet { return s.ax.attrs[j] }

// AuxDegree returns window-local auxiliary user j's (global) degree.
func (s *Scorer) AuxDegree(j int) float64 { return s.ax.deg[j] }

// AuxWeightedDegree returns window-local auxiliary user j's (global)
// weighted degree.
func (s *Scorer) AuxWeightedDegree(j int) float64 { return s.ax.wdeg[j] }

// PruneSafe reports whether the scorer's configuration admits safe
// candidate pruning: all three component weights must be non-negative,
// since the band bounds multiply per-component upper bounds by the weights
// (a negative weight would turn an upper bound into a lower one). The
// paper's configurations are all non-negative; a scorer that is not
// prune-safe simply falls back to the full scan.
func (s *Scorer) PruneSafe() bool {
	return s.cfg.C1 >= 0 && s.cfg.C2 >= 0 && s.cfg.C3 >= 0
}

// ScoreBoundNoAttr returns an upper bound on Score(u, v) over every
// auxiliary user v that (a) shares no attribute with u — so both Jaccard
// terms of AttrSim are exactly zero — and (b) has degree in [degLo, degHi]
// and weighted degree in [wdegLo, wdegHi]. The cosine terms of the degree
// and distance similarities are bounded by 1 (all NCS and closeness
// entries are non-negative); the ratio terms by RatioSimBound over the
// band's ranges. The result carries the safety margin, so a strict
// comparison kthScore > bound certifies that no such v can displace any
// of the current top-K. Returns +Inf when the configuration is not
// prune-safe, which forces the caller to scan.
func (s *Scorer) ScoreBoundNoAttr(u int, degLo, degHi, wdegLo, wdegHi float64) float64 {
	if !s.PruneSafe() {
		return math.Inf(1)
	}
	degSim := RatioSimBound(float64(s.g1.Degree(u)), degLo, degHi) +
		RatioSimBound(s.g1.WeightedDegree(u), wdegLo, wdegHi) + 1
	const distSim = 2 // two cosines over non-negative closeness vectors
	return inflate(s.cfg.C1*degSim + s.cfg.C2*distSim)
}
