package similarity

import (
	"math/rand"
	"testing"

	"dehealth/internal/stylometry"
	"dehealth/internal/synth"
)

// TestRatioSim pins the edge cases of the min/max ratio term: both zero
// (isolated nodes are identical), equal nonzero, one zero, and plain
// ratios in both argument orders.
func TestRatioSim(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, 0, 1},   // both isolated
		{3, 3, 1},   // equal nonzero
		{0, 5, 0},   // one isolated
		{5, 0, 0},   // symmetric
		{2, 4, 0.5}, // plain ratio
		{4, 2, 0.5}, // order-independent
	}
	for _, tc := range tests {
		if got := ratioSim(tc.a, tc.b); got != tc.want {
			t.Errorf("ratioSim(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestFlatKernelParityRandomWorlds is the tentpole bit-identity guarantee:
// on randomized synthetic worlds, Score, ScoreWith and ScoreRange (the
// flat kernel) must equal the retained naive reference ScoreSlow exactly —
// not approximately — for every pair, per component, and across several
// similarity configurations.
func TestFlatKernelParityRandomWorlds(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g1 := synth.SparseAttrUDA(40, 8, 200, seed)
		g2 := synth.SparseAttrUDA(55, 8, 200, seed+100)
		for _, cfg := range []Config{
			{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5},
			{C1: 1, C2: 0, C3: 0, Landmarks: 3},
			{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 7},
		} {
			s := NewScorer(g1, g2, cfg)
			n1, n2 := g1.NumNodes(), g2.NumNodes()
			row := make([]float64, n2)
			var p QueryProfile
			for u := 0; u < n1; u++ {
				s.PrepareQuery(u, &p)
				s.ScoreRange(&p, 0, n2, row)
				for v := 0; v < n2; v++ {
					want := s.ScoreSlow(u, v)
					if got := s.Score(u, v); got != want {
						t.Fatalf("seed %d cfg %+v: Score(%d,%d) = %v, ScoreSlow = %v", seed, cfg, u, v, got, want)
					}
					if row[v] != want {
						t.Fatalf("seed %d cfg %+v: ScoreRange[%d][%d] = %v, ScoreSlow = %v", seed, cfg, u, v, row[v], want)
					}
					if got := s.DegreeSim(u, v); got != s.degreeSimSlow(u, v) {
						t.Fatalf("DegreeSim(%d,%d) drifted from slow reference", u, v)
					}
					if got := s.DistanceSim(u, v); got != s.distanceSimSlow(u, v) {
						t.Fatalf("DistanceSim(%d,%d) drifted from slow reference", u, v)
					}
					if got := s.AttrSim(u, v); got != s.attrSimSlow(u, v) {
						t.Fatalf("AttrSim(%d,%d) drifted from slow reference", u, v)
					}
				}
			}
		}
	}
}

// TestFlatKernelParityAppended extends a world through AppendNode +
// SyncAnon — the serving-path ingestion shape — and checks the appended
// nodes score bit-identically to ScoreSlow through the flat kernel, on
// the base scorer and through a shard window.
func TestFlatKernelParityAppended(t *testing.T) {
	g1 := synth.SparseAttrUDA(30, 6, 150, 9)
	g2 := synth.SparseAttrUDA(30, 6, 150, 10)
	s := NewScorer(g1, g2, Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4})
	lo, hi := 10, 25
	w := s.Shard(g2.InducedRange(lo, hi), lo, hi)

	rng := rand.New(rand.NewSource(11))
	n0 := g1.NumNodes()
	for i := 0; i < 3; i++ {
		attrs := stylometry.AttrSet{Idx: []int{i, 50 + i}, Weight: []int{1 + i, 2}}
		u := g1.AppendNode(attrs, [][]float64{{1}})
		for e := 0; e < 1+i; e++ {
			g1.AddEdge(u, rng.Intn(n0), 1+float64(rng.Intn(3)))
		}
	}
	if added := s.SyncAnon(); added != 3 {
		t.Fatalf("SyncAnon added %d, want 3", added)
	}

	var p QueryProfile
	for u := n0; u < g1.NumNodes(); u++ {
		s.PrepareQuery(u, &p)
		for v := 0; v < g2.NumNodes(); v++ {
			if got, want := s.ScoreWith(&p, v), s.ScoreSlow(u, v); got != want {
				t.Fatalf("appended node %d: ScoreWith(%d) = %v, ScoreSlow = %v", u, v, got, want)
			}
		}
		for j := 0; j < hi-lo; j++ {
			if got, want := w.Score(u, j), s.Score(u, lo+j); got != want {
				t.Fatalf("appended node %d through window: Score(%d) = %v, base = %v", u, j, got, want)
			}
		}
	}
}

// TestScoreRangeWindowParity checks the row kernel through a shard window
// equals the base scorer's scores on the window's global range.
func TestScoreRangeWindowParity(t *testing.T) {
	g1 := synth.SparseAttrUDA(20, 5, 120, 21)
	g2 := synth.SparseAttrUDA(33, 5, 120, 22)
	s := NewScorer(g1, g2, Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4})
	lo, hi := 7, 29
	w := s.Shard(g2.InducedRange(lo, hi), lo, hi)
	out := make([]float64, hi-lo)
	var p QueryProfile
	for u := 0; u < g1.NumNodes(); u++ {
		w.PrepareQuery(u, &p)
		w.ScoreRange(&p, 0, hi-lo, out)
		for j, got := range out {
			if want := s.Score(u, lo+j); got != want {
				t.Fatalf("window ScoreRange(%d)[%d] = %v, base Score = %v", u, j, got, want)
			}
		}
	}
}

// TestScoreRangeZeroAllocs is the kernel's allocation contract: preparing
// a query and streaming a full row through ScoreRange must allocate
// nothing — the shard scan path's per-row cost is pure arithmetic over
// the flat caches.
func TestScoreRangeZeroAllocs(t *testing.T) {
	g1 := synth.SparseAttrUDA(25, 5, 150, 31)
	g2 := synth.SparseAttrUDA(40, 5, 150, 32)
	s := NewScorer(g1, g2, Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4})
	n2 := g2.NumNodes()
	out := make([]float64, n2)
	var p QueryProfile
	u := 0
	s.PrepareQuery(u, &p) // warm lazy graph state (Freeze)
	allocs := testing.AllocsPerRun(200, func() {
		s.PrepareQuery(u, &p)
		s.ScoreRange(&p, 0, n2, out)
		u = (u + 1) % g1.NumNodes()
	})
	if allocs != 0 {
		t.Fatalf("PrepareQuery+ScoreRange allocates %v times per row, want 0", allocs)
	}
}
