// Package similarity computes the structural similarity s_uv of §III-B
// between anonymized and auxiliary users:
//
//	s_uv = c1·s^d_uv + c2·s^s_uv + c3·s^a_uv
//
// where s^d is the degree similarity (degree ratio + weighted degree ratio +
// NCS-vector cosine), s^s is the landmark distance similarity (cosine of the
// distance vectors to the top-degree landmark users), and s^a is the
// attribute similarity (Jaccard + weighted Jaccard of the UDA attribute
// sets).
package similarity

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"dehealth/internal/graph"
	"dehealth/internal/stylometry"
)

// Config carries the similarity weights and landmark count. The paper's
// default setting is c1 = c2 = 0.05, c3 = 0.9 and ħ = 50 landmarks for the
// full datasets (ħ = 5 for the small refined-DA datasets).
type Config struct {
	C1, C2, C3 float64
	// Landmarks is ħ, the number of top-degree landmark users per side.
	Landmarks int
}

// DefaultConfig returns the paper's default parameters.
func DefaultConfig() Config {
	return Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 50}
}

// Scorer computes similarities between users of an anonymized UDA graph G1
// and an auxiliary UDA graph G2. Construction precomputes NCS vectors and
// landmark closeness vectors for both sides; the auxiliary side's degree,
// weighted-degree and attribute reads are additionally frozen into dense
// arrays (the aux world is immutable — only the anonymized side grows), so
// the scoring hot loop touches precomputed state only.
//
// A Scorer can be windowed: Shard restricts the auxiliary side to a
// contiguous global-id range whose caches are slice views of the base
// scorer's arrays, scoring bit-identically to the base on that range. The
// shard engine builds one window per partition so each shard walks its own
// contiguous cache region.
type Scorer struct {
	cfg    Config
	g1, g2 *graph.UDA
	c      *scorerCaches
	ax     *auxWindow
	window bool // true when this scorer is a Shard view of a base scorer
}

// scorerCaches holds the precomputed anonymized-side per-node vectors. The
// struct is shared by pointer across every scorer derived with Reweighted
// or Shard at the same landmark count, so extending it for appended nodes
// (SyncAnon) updates the whole family of scorers — including every shard
// window — at once.
type scorerCaches struct {
	landmarks1 []int // anon-side landmark nodes, pinned at construction
	ncs1       [][]float64
	close1     [][]float64 // hop-closeness vectors, ħ dims
	wcl1       [][]float64 // weighted-closeness vectors, ħ dims
}

// auxWindow is the auxiliary-side scoring state: per-node degree,
// weighted degree, attribute set, NCS and landmark-closeness vectors,
// frozen at construction from the full auxiliary graph (global landmarks,
// global degrees). A base scorer holds the full window; shard scorers hold
// contiguous slice views of the same arrays, so the values a shard scores
// against are exactly the global ones — the property the sharded/unsharded
// parity guarantee rests on.
type auxWindow struct {
	deg, wdeg  []float64
	attrs      []stylometry.AttrSet
	ncs        [][]float64
	close, wcl [][]float64 // hop / weighted closeness, ħ dims
}

// NewScorer builds a Scorer over the two UDA graphs.
func NewScorer(g1, g2 *graph.UDA, cfg Config) *Scorer {
	c := &scorerCaches{
		landmarks1: g1.TopDegreeNodes(cfg.Landmarks),
		ncs1:       cacheNCS(g1),
	}
	c.close1, c.wcl1 = landmarkCloseness(g1, c.landmarks1)

	n2 := g2.NumNodes()
	ax := &auxWindow{
		deg:   make([]float64, n2),
		wdeg:  make([]float64, n2),
		attrs: g2.Attrs,
		ncs:   cacheNCS(g2),
	}
	for v := 0; v < n2; v++ {
		ax.deg[v] = float64(g2.Degree(v))
		ax.wdeg[v] = g2.WeightedDegree(v)
	}
	ax.close, ax.wcl = landmarkCloseness(g2, g2.TopDegreeNodes(cfg.Landmarks))
	return &Scorer{cfg: cfg, g1: g1, g2: g2, c: c, ax: ax}
}

// Reweighted returns a scorer over the same graphs under a new Config. When
// the landmark count is unchanged the precomputed NCS and landmark-closeness
// caches are shared by pointer (the returned scorer only re-weights the
// three components at Score time); otherwise the landmark vectors are
// recomputed. A shard window cannot change its landmark count — its caches
// are views of the base scorer's — so reweight the base and re-shard
// instead; Reweighted panics on that misuse rather than silently scoring
// against subgraph landmarks.
func (s *Scorer) Reweighted(cfg Config) *Scorer {
	if cfg.Landmarks == s.cfg.Landmarks {
		t := *s
		t.cfg = cfg
		return &t
	}
	if s.window {
		panic("similarity: Reweighted with a new landmark count on a shard window; reweight the base scorer and re-shard")
	}
	return NewScorer(s.g1, s.g2, cfg)
}

// Shard returns a scorer restricted to the auxiliary window [lo, hi):
// local index j of the returned scorer addresses global auxiliary user
// lo+j, and Score(u, j) is bit-identical to s.Score(u, lo+j) — every
// aux-side cache of the window is a slice view of the base scorer's
// arrays, so no similarity component is recomputed from partial topology.
// sub, the shard's induced UDA subgraph, becomes the window's G2 for
// shard-local graph access; it plays no part in scoring. The anonymized
// side is shared by pointer, so SyncAnon through any family member extends
// every window. Shard must be called on a base (unwindowed) scorer.
func (s *Scorer) Shard(sub *graph.UDA, lo, hi int) *Scorer {
	if s.window {
		panic("similarity: Shard of a shard window; shard the base scorer")
	}
	if lo < 0 || hi > len(s.ax.deg) || lo > hi {
		panic(fmt.Sprintf("similarity: Shard [%d, %d) out of [0, %d)", lo, hi, len(s.ax.deg)))
	}
	t := *s
	t.window = true
	if sub != nil {
		t.g2 = sub
	}
	t.ax = &auxWindow{
		deg:   s.ax.deg[lo:hi:hi],
		wdeg:  s.ax.wdeg[lo:hi:hi],
		attrs: s.ax.attrs[lo:hi:hi],
		ncs:   s.ax.ncs[lo:hi:hi],
		close: s.ax.close[lo:hi:hi],
		wcl:   s.ax.wcl[lo:hi:hi],
	}
	return &t
}

// AuxUsers returns the number of auxiliary users the scorer scores
// against: the full population for a base scorer, the window size for a
// shard window.
func (s *Scorer) AuxUsers() int { return len(s.ax.deg) }

// SyncAnon extends the anonymized-side caches over nodes appended to G1
// after the scorer was built (features.Store.Append): each new node gets
// its NCS vector and its closeness to the landmark set pinned at
// construction time, via one BFS and one Dijkstra from the node (the graph
// is undirected, so node→landmark distances equal landmark→node ones). It
// returns the number of nodes added. Existing nodes' cached vectors are
// deliberately not recomputed — new edges can shorten old nodes' landmark
// distances; rebuild the scorer to refresh them, and to re-pin landmarks.
// Every scorer sharing these caches through Reweighted observes the
// extension. Not safe to run concurrently with Score; the serving layer
// serializes ingestion against queries.
func (s *Scorer) SyncAnon() int {
	c := s.c
	n, added := s.g1.NumNodes(), 0
	for u := len(c.ncs1); u < n; u++ {
		c.ncs1 = append(c.ncs1, s.g1.NCS(u))
		hop, w := nodeLandmarkCloseness(s.g1, u, c.landmarks1)
		c.close1 = append(c.close1, hop)
		c.wcl1 = append(c.wcl1, w)
		added++
	}
	return added
}

func cacheNCS(g *graph.UDA) [][]float64 {
	out := make([][]float64, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		out[u] = g.NCS(u)
	}
	return out
}

// landmarkCloseness computes, for every node, the closeness 1/(1+h) to each
// landmark — 0 when unreachable — for both hop distances and weighted
// distances. Landmarks are the ħ top-degree users (sorted by decreasing
// degree, as §III-B prescribes), selected by the caller.
func landmarkCloseness(g *graph.UDA, landmarks []int) (hop, weighted [][]float64) {
	n := g.NumNodes()
	hop = make([][]float64, n)
	weighted = make([][]float64, n)
	for u := 0; u < n; u++ {
		hop[u] = make([]float64, len(landmarks))
		weighted[u] = make([]float64, len(landmarks))
	}
	for li, l := range landmarks {
		hd := g.BFSDistances(l)
		wd := g.WeightedDistances(l)
		for u := 0; u < n; u++ {
			if hd[u] >= 0 {
				hop[u][li] = 1 / (1 + float64(hd[u]))
			}
			if !math.IsInf(wd[u], 1) {
				weighted[u][li] = 1 / (1 + wd[u])
			}
		}
	}
	return hop, weighted
}

// nodeLandmarkCloseness is the single-node counterpart of
// landmarkCloseness, used when extending the caches incrementally: one BFS
// and one Dijkstra from u yield its distances to every landmark.
func nodeLandmarkCloseness(g *graph.UDA, u int, landmarks []int) (hop, weighted []float64) {
	hd := g.BFSDistances(u)
	wd := g.WeightedDistances(u)
	hop = make([]float64, len(landmarks))
	weighted = make([]float64, len(landmarks))
	for li, l := range landmarks {
		if hd[l] >= 0 {
			hop[li] = 1 / (1 + float64(hd[l]))
		}
		if !math.IsInf(wd[l], 1) {
			weighted[li] = 1 / (1 + wd[l])
		}
	}
	return hop, weighted
}

// Cosine returns the cosine similarity of a and b; the shorter vector is
// zero-padded (§III-B). Returns 0 when either vector is all-zero.
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		dot += a[i] * b[i]
	}
	for _, x := range a {
		na += x * x
	}
	for _, x := range b {
		nb += x * x
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func ratioSim(a, b float64) float64 {
	if a == b {
		if a == 0 {
			return 1 // both isolated: identical local structure
		}
		return 1
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi == 0 {
		return 1
	}
	return lo / hi
}

// DegreeSim computes s^d_uv = min(d)/max(d) + min(wd)/max(wd) + cos(NCS).
// v is a window-local auxiliary index; the aux-side degree reads come from
// the frozen window arrays (value-identical to live graph reads: the aux
// graph never mutates).
func (s *Scorer) DegreeSim(u, v int) float64 {
	d := ratioSim(float64(s.g1.Degree(u)), s.ax.deg[v])
	wd := ratioSim(s.g1.WeightedDegree(u), s.ax.wdeg[v])
	return d + wd + Cosine(s.c.ncs1[u], s.ax.ncs[v])
}

// DistanceSim computes s^s_uv = cos(H_u(S1), H_v(S2)) + cos(WH_u(S1),
// WH_v(S2)) over landmark closeness vectors.
func (s *Scorer) DistanceSim(u, v int) float64 {
	return Cosine(s.c.close1[u], s.ax.close[v]) + Cosine(s.c.wcl1[u], s.ax.wcl[v])
}

// AttrSim computes s^a_uv = Jaccard(A(u), A(v)) + WeightedJaccard(WA(u),
// WA(v)).
func (s *Scorer) AttrSim(u, v int) float64 {
	return jaccard(s, u, v) + weightedJaccard(s, u, v)
}

func jaccard(s *Scorer, u, v int) float64 {
	return jaccardSets(s.g1.Attrs[u].Idx, s.ax.attrs[v].Idx)
}

func jaccardSets(a, b []int) float64 {
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func weightedJaccard(s *Scorer, u, v int) float64 {
	au, av := s.g1.Attrs[u], s.ax.attrs[v]
	var inter, union int
	i, j := 0, 0
	for i < len(au.Idx) && j < len(av.Idx) {
		switch {
		case au.Idx[i] == av.Idx[j]:
			wa, wb := au.Weight[i], av.Weight[j]
			if wa < wb {
				inter += wa
				union += wb
			} else {
				inter += wb
				union += wa
			}
			i++
			j++
		case au.Idx[i] < av.Idx[j]:
			union += au.Weight[i]
			i++
		default:
			union += av.Weight[j]
			j++
		}
	}
	for ; i < len(au.Idx); i++ {
		union += au.Weight[i]
	}
	for ; j < len(av.Idx); j++ {
		union += av.Weight[j]
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Score computes the combined structural similarity s_uv.
func (s *Scorer) Score(u, v int) float64 {
	return s.cfg.C1*s.DegreeSim(u, v) + s.cfg.C2*s.DistanceSim(u, v) + s.cfg.C3*s.AttrSim(u, v)
}

// ScoreMatrix computes the full |V1| × |V2| similarity matrix in parallel
// (|V2| is the window size on a shard window).
func (s *Scorer) ScoreMatrix() [][]float64 {
	n1, n2 := s.g1.NumNodes(), s.AuxUsers()
	out := make([][]float64, n1)
	workers := runtime.GOMAXPROCS(0)
	if workers > n1 {
		workers = n1
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range rows {
				row := make([]float64, n2)
				for v := 0; v < n2; v++ {
					row[v] = s.Score(u, v)
				}
				out[u] = row
			}
		}()
	}
	for u := 0; u < n1; u++ {
		rows <- u
	}
	close(rows)
	wg.Wait()
	return out
}

// StructuralVector returns a fixed-length numeric summary of a user's
// structural features, used to augment the stylometric vectors fed to the
// refined-DA classifier: [degree, weighted degree, max NCS entry, mean NCS
// entry, |A(u)|, total attribute weight] followed by the ħ hop-closeness
// entries. side selects the graph: 1 = anonymized, 2 = auxiliary.
func (s *Scorer) StructuralVector(side, u int) []float64 {
	var (
		deg, wdeg float64
		attrs     stylometry.AttrSet
		ncs, cl   []float64
	)
	if side == 2 {
		deg, wdeg = s.ax.deg[u], s.ax.wdeg[u]
		attrs = s.ax.attrs[u]
		ncs, cl = s.ax.ncs[u], s.ax.close[u]
	} else {
		deg, wdeg = float64(s.g1.Degree(u)), s.g1.WeightedDegree(u)
		attrs = s.g1.Attrs[u]
		ncs, cl = s.c.ncs1[u], s.c.close1[u]
	}
	var maxN, sumN float64
	for _, x := range ncs {
		if x > maxN {
			maxN = x
		}
		sumN += x
	}
	meanN := 0.0
	if len(ncs) > 0 {
		meanN = sumN / float64(len(ncs))
	}
	out := []float64{
		deg,
		wdeg,
		maxN,
		meanN,
		float64(attrs.Len()),
		float64(attrs.TotalWeight()),
	}
	out = append(out, cl...)
	return out
}
