// Package similarity computes the structural similarity s_uv of §III-B
// between anonymized and auxiliary users:
//
//	s_uv = c1·s^d_uv + c2·s^s_uv + c3·s^a_uv
//
// where s^d is the degree similarity (degree ratio + weighted degree ratio +
// NCS-vector cosine), s^s is the landmark distance similarity (cosine of the
// distance vectors to the top-degree landmark users), and s^a is the
// attribute similarity (Jaccard + weighted Jaccard of the UDA attribute
// sets).
//
// The scoring hot path is a flat kernel (see kernel.go): all per-node
// vectors live in contiguous row-major matrices with their L2 norms
// precomputed, a query prepares its anonymized-side state once
// (PrepareQuery), and per-pair work reduces to dot products and one fused
// attribute merge over dense precomputed state — bit-identical to the
// retained naive reference (ScoreSlow), per the parity contract in
// docs/ARCHITECTURE.md.
package similarity

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"dehealth/internal/graph"
	"dehealth/internal/stylometry"
)

// Config carries the similarity weights and landmark count. The paper's
// default setting is c1 = c2 = 0.05, c3 = 0.9 and ħ = 50 landmarks for the
// full datasets (ħ = 5 for the small refined-DA datasets).
type Config struct {
	C1, C2, C3 float64
	// Landmarks is ħ, the number of top-degree landmark users per side.
	Landmarks int
}

// DefaultConfig returns the paper's default parameters.
func DefaultConfig() Config {
	return Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 50}
}

// Scorer computes similarities between users of an anonymized UDA graph G1
// and an auxiliary UDA graph G2. Construction precomputes NCS vectors and
// landmark closeness vectors for both sides in flat row-major layouts with
// per-node norms; the auxiliary side's degree, weighted-degree and
// attribute reads are additionally frozen into dense arrays (the aux world
// is immutable — only the anonymized side grows), so the scoring hot loop
// touches precomputed contiguous state only.
//
// A Scorer can be windowed: Shard restricts the auxiliary side to a
// contiguous global-id range whose caches are slice views of the base
// scorer's flat arrays, scoring bit-identically to the base on that range.
// The shard engine builds one window per partition so each shard walks its
// own contiguous cache region.
type Scorer struct {
	cfg    Config
	g1, g2 *graph.UDA
	c      *scorerCaches
	ax     *auxWindow
	window bool // true when this scorer is a Shard view of a base scorer
}

// scorerCaches holds the precomputed anonymized-side per-node vectors in
// flat layouts. The struct is shared by pointer across every scorer derived
// with Reweighted or Shard at the same landmark count, so extending it for
// appended nodes (SyncAnon) updates the whole family of scorers — including
// every shard window — at once.
type scorerCaches struct {
	landmarks1 []int // anon-side landmark nodes, pinned at construction
	hbar1      int   // len(landmarks1): row stride of close1/wcl1

	// NCS vectors are ragged (one entry per incident edge); they live in
	// one flat array indexed by per-node offsets: node u's vector is
	// ncs1[ncsOff1[u]:ncsOff1[u+1]].
	ncs1     []float64
	ncsOff1  []int
	ncsNorm1 []float64 // precomputed sqrt(Σx²), one per node

	// Hop- and weighted-closeness vectors are fixed-width (ħ dims), stored
	// row-major: node u's row is close1[u*hbar1 : (u+1)*hbar1].
	close1, wcl1         []float64
	closeNorm1, wclNorm1 []float64
}

// numAnon returns the number of anonymized nodes the caches cover.
func (c *scorerCaches) numAnon() int { return len(c.ncsNorm1) }

func (c *scorerCaches) ncsVec(u int) []float64 {
	return c.ncs1[c.ncsOff1[u]:c.ncsOff1[u+1]]
}
func (c *scorerCaches) closeVec(u int) []float64 {
	return c.close1[u*c.hbar1 : (u+1)*c.hbar1]
}
func (c *scorerCaches) wclVec(u int) []float64 {
	return c.wcl1[u*c.hbar1 : (u+1)*c.hbar1]
}

// auxWindow is the auxiliary-side scoring state: per-node degree,
// weighted degree, attribute set (plus its precomputed total weight), NCS
// and landmark-closeness vectors in the same flat layouts as the anonymized
// caches, frozen at construction from the full auxiliary graph (global
// landmarks, global degrees). A base scorer holds the full window; shard
// scorers hold contiguous slice views of the same arrays — the NCS flat
// array is shared whole, with the window's offset slice still holding
// absolute positions into it — so the values a shard scores against are
// exactly the global ones: the property the sharded/unsharded parity
// guarantee rests on.
type auxWindow struct {
	deg, wdeg []float64
	attrs     []stylometry.AttrSet
	attrTotW  []int // attrTotW[v] = attrs[v].TotalWeight()
	// attrW is 1 + the maximum attribute id across the FULL auxiliary side
	// (not just this window): the width of the batched kernel's dense
	// per-query weight tables. Sized globally so every window's lookups are
	// in-bounds by construction; the aux side is immutable, so the bound
	// never goes stale. Query-side attributes at or beyond attrW cannot
	// appear in any auxiliary set and are simply never tabulated.
	attrW int

	hbar2   int       // aux-side landmark count: row stride of close/wcl
	ncs     []float64 // full flat NCS array (shared whole across windows)
	ncsOff  []int     // window slice, absolute offsets into ncs
	ncsNorm []float64

	close, wcl         []float64 // window slices, stride hbar2
	closeNorm, wclNorm []float64
}

func (ax *auxWindow) ncsVec(v int) []float64 {
	return ax.ncs[ax.ncsOff[v]:ax.ncsOff[v+1]]
}
func (ax *auxWindow) closeVec(v int) []float64 {
	return ax.close[v*ax.hbar2 : (v+1)*ax.hbar2]
}
func (ax *auxWindow) wclVec(v int) []float64 {
	return ax.wcl[v*ax.hbar2 : (v+1)*ax.hbar2]
}

// NewScorer builds a Scorer over the two UDA graphs.
func NewScorer(g1, g2 *graph.UDA, cfg Config) *Scorer {
	landmarks1 := g1.TopDegreeNodes(cfg.Landmarks)
	c := &scorerCaches{landmarks1: landmarks1, hbar1: len(landmarks1)}
	c.ncs1, c.ncsOff1, c.ncsNorm1 = flattenRagged(cacheNCS(g1))
	hop1, w1 := landmarkCloseness(g1, landmarks1)
	c.close1, c.closeNorm1 = flattenFixed(hop1, c.hbar1)
	c.wcl1, c.wclNorm1 = flattenFixed(w1, c.hbar1)

	n2 := g2.NumNodes()
	landmarks2 := g2.TopDegreeNodes(cfg.Landmarks)
	ax := &auxWindow{
		deg:      make([]float64, n2),
		wdeg:     make([]float64, n2),
		attrs:    g2.Attrs,
		attrTotW: make([]int, n2),
		hbar2:    len(landmarks2),
	}
	for v := 0; v < n2; v++ {
		ax.deg[v] = float64(g2.Degree(v))
		ax.wdeg[v] = g2.WeightedDegree(v)
		ax.attrTotW[v] = g2.Attrs[v].TotalWeight()
		if n := g2.Attrs[v].Len(); n > 0 && g2.Attrs[v].Idx[n-1]+1 > ax.attrW {
			ax.attrW = g2.Attrs[v].Idx[n-1] + 1 // Idx is sorted: the last entry is the max
		}
	}
	ax.ncs, ax.ncsOff, ax.ncsNorm = flattenRagged(cacheNCS(g2))
	hop2, w2 := landmarkCloseness(g2, landmarks2)
	ax.close, ax.closeNorm = flattenFixed(hop2, ax.hbar2)
	ax.wcl, ax.wclNorm = flattenFixed(w2, ax.hbar2)
	return &Scorer{cfg: cfg, g1: g1, g2: g2, c: c, ax: ax}
}

// Reweighted returns a scorer over the same graphs under a new Config. When
// the landmark count is unchanged the precomputed NCS and landmark-closeness
// caches are shared by pointer (the returned scorer only re-weights the
// three components at Score time); otherwise the landmark vectors are
// recomputed. A shard window cannot change its landmark count — its caches
// are views of the base scorer's — so reweight the base and re-shard
// instead; Reweighted panics on that misuse rather than silently scoring
// against subgraph landmarks.
func (s *Scorer) Reweighted(cfg Config) *Scorer {
	if cfg.Landmarks == s.cfg.Landmarks {
		t := *s
		t.cfg = cfg
		return &t
	}
	if s.window {
		panic("similarity: Reweighted with a new landmark count on a shard window; reweight the base scorer and re-shard")
	}
	return NewScorer(s.g1, s.g2, cfg)
}

// Shard returns a scorer restricted to the auxiliary window [lo, hi):
// local index j of the returned scorer addresses global auxiliary user
// lo+j, and Score(u, j) is bit-identical to s.Score(u, lo+j) — every
// aux-side cache of the window is a slice view of the base scorer's flat
// arrays (the ragged NCS flat array is shared whole; the window's offsets
// stay absolute), so no similarity component is recomputed from partial
// topology. sub, the shard's induced UDA subgraph, becomes the window's G2
// for shard-local graph access; it plays no part in scoring. The anonymized
// side is shared by pointer, so SyncAnon through any family member extends
// every window. Shard must be called on a base (unwindowed) scorer.
func (s *Scorer) Shard(sub *graph.UDA, lo, hi int) *Scorer {
	if s.window {
		panic("similarity: Shard of a shard window; shard the base scorer")
	}
	if lo < 0 || hi > len(s.ax.deg) || lo > hi {
		panic(fmt.Sprintf("similarity: Shard [%d, %d) out of [0, %d)", lo, hi, len(s.ax.deg)))
	}
	t := *s
	t.window = true
	if sub != nil {
		t.g2 = sub
	}
	h := s.ax.hbar2
	t.ax = &auxWindow{
		deg:       s.ax.deg[lo:hi:hi],
		wdeg:      s.ax.wdeg[lo:hi:hi],
		attrs:     s.ax.attrs[lo:hi:hi],
		attrTotW:  s.ax.attrTotW[lo:hi:hi],
		attrW:     s.ax.attrW,
		hbar2:     h,
		ncs:       s.ax.ncs,
		ncsOff:    s.ax.ncsOff[lo : hi+1 : hi+1],
		ncsNorm:   s.ax.ncsNorm[lo:hi:hi],
		close:     s.ax.close[lo*h : hi*h : hi*h],
		closeNorm: s.ax.closeNorm[lo:hi:hi],
		wcl:       s.ax.wcl[lo*h : hi*h : hi*h],
		wclNorm:   s.ax.wclNorm[lo:hi:hi],
	}
	return &t
}

// AuxUsers returns the number of auxiliary users the scorer scores
// against: the full population for a base scorer, the window size for a
// shard window.
func (s *Scorer) AuxUsers() int { return len(s.ax.deg) }

// SyncAnon extends the anonymized-side caches over nodes appended to G1
// after the scorer was built (features.Store.Append): each new node gets
// its NCS vector, its closeness to the landmark set pinned at construction
// time, and their precomputed norms, via one BFS and one Dijkstra from the
// node (the graph is undirected, so node→landmark distances equal
// landmark→node ones). It returns the number of nodes added. Existing
// nodes' cached vectors are deliberately not recomputed — new edges can
// shorten old nodes' landmark distances; rebuild the scorer to refresh
// them, and to re-pin landmarks. Every scorer sharing these caches through
// Reweighted observes the extension. Not safe to run concurrently with
// Score; the serving layer serializes ingestion against queries.
func (s *Scorer) SyncAnon() int {
	c := s.c
	n, added := s.g1.NumNodes(), 0
	for u := c.numAnon(); u < n; u++ {
		ncs := s.g1.NCS(u)
		c.ncs1 = append(c.ncs1, ncs...)
		c.ncsOff1 = append(c.ncsOff1, len(c.ncs1))
		c.ncsNorm1 = append(c.ncsNorm1, l2norm(ncs))
		hop, w := nodeLandmarkCloseness(s.g1, u, c.landmarks1)
		c.close1 = append(c.close1, hop...)
		c.closeNorm1 = append(c.closeNorm1, l2norm(hop))
		c.wcl1 = append(c.wcl1, w...)
		c.wclNorm1 = append(c.wclNorm1, l2norm(w))
		added++
	}
	return added
}

func cacheNCS(g *graph.UDA) [][]float64 {
	out := make([][]float64, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		out[u] = g.NCS(u)
	}
	return out
}

// flattenRagged packs variable-length per-node vectors into one flat array
// with n+1 offsets and precomputed per-node L2 norms.
func flattenRagged(rows [][]float64) (flat []float64, off []int, norm []float64) {
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	flat = make([]float64, 0, total)
	off = make([]int, len(rows)+1)
	norm = make([]float64, len(rows))
	for u, r := range rows {
		flat = append(flat, r...)
		off[u+1] = len(flat)
		norm[u] = l2norm(r)
	}
	return flat, off, norm
}

// flattenFixed packs fixed-width per-node vectors into one row-major
// matrix of the given stride, with precomputed per-node L2 norms.
func flattenFixed(rows [][]float64, stride int) (flat []float64, norm []float64) {
	flat = make([]float64, 0, len(rows)*stride)
	norm = make([]float64, len(rows))
	for u, r := range rows {
		flat = append(flat, r...)
		norm[u] = l2norm(r)
	}
	return flat, norm
}

// l2norm returns sqrt(Σx²), accumulated in index order — exactly how
// Cosine computes its norm factors, so precomputed norms are bit-identical
// to recomputed ones.
func l2norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// landmarkCloseness computes, for every node, the closeness 1/(1+h) to each
// landmark — 0 when unreachable — for both hop distances and weighted
// distances. Landmarks are the ħ top-degree users (sorted by decreasing
// degree, as §III-B prescribes), selected by the caller.
func landmarkCloseness(g *graph.UDA, landmarks []int) (hop, weighted [][]float64) {
	n := g.NumNodes()
	hop = make([][]float64, n)
	weighted = make([][]float64, n)
	for u := 0; u < n; u++ {
		hop[u] = make([]float64, len(landmarks))
		weighted[u] = make([]float64, len(landmarks))
	}
	for li, l := range landmarks {
		hd := g.BFSDistances(l)
		wd := g.WeightedDistances(l)
		for u := 0; u < n; u++ {
			if hd[u] >= 0 {
				hop[u][li] = 1 / (1 + float64(hd[u]))
			}
			if !math.IsInf(wd[u], 1) {
				weighted[u][li] = 1 / (1 + wd[u])
			}
		}
	}
	return hop, weighted
}

// nodeLandmarkCloseness is the single-node counterpart of
// landmarkCloseness, used when extending the caches incrementally: one BFS
// and one Dijkstra from u yield its distances to every landmark.
func nodeLandmarkCloseness(g *graph.UDA, u int, landmarks []int) (hop, weighted []float64) {
	hd := g.BFSDistances(u)
	wd := g.WeightedDistances(u)
	hop = make([]float64, len(landmarks))
	weighted = make([]float64, len(landmarks))
	for li, l := range landmarks {
		if hd[l] >= 0 {
			hop[li] = 1 / (1 + float64(hd[l]))
		}
		if !math.IsInf(wd[l], 1) {
			weighted[li] = 1 / (1 + wd[l])
		}
	}
	return hop, weighted
}

// Cosine returns the cosine similarity of a and b; the shorter vector is
// zero-padded (§III-B). Returns 0 when either vector is all-zero.
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		dot += a[i] * b[i]
	}
	for _, x := range a {
		na += x * x
	}
	for _, x := range b {
		nb += x * x
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func ratioSim(a, b float64) float64 {
	if a == b {
		return 1 // identical local structure, including both isolated (a = b = 0)
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi == 0 {
		return 1
	}
	return lo / hi
}

// DegreeSim computes s^d_uv = min(d)/max(d) + min(wd)/max(wd) + cos(NCS).
// v is a window-local auxiliary index; the aux-side degree reads come from
// the frozen window arrays (value-identical to live graph reads: the aux
// graph never mutates).
func (s *Scorer) DegreeSim(u, v int) float64 {
	d := ratioSim(float64(s.g1.Degree(u)), s.ax.deg[v])
	wd := ratioSim(s.g1.WeightedDegree(u), s.ax.wdeg[v])
	return d + wd + cosinePre(s.c.ncsVec(u), s.c.ncsNorm1[u], s.ax.ncsVec(v), s.ax.ncsNorm[v])
}

// DistanceSim computes s^s_uv = cos(H_u(S1), H_v(S2)) + cos(WH_u(S1),
// WH_v(S2)) over landmark closeness vectors.
func (s *Scorer) DistanceSim(u, v int) float64 {
	return cosinePre(s.c.closeVec(u), s.c.closeNorm1[u], s.ax.closeVec(v), s.ax.closeNorm[v]) +
		cosinePre(s.c.wclVec(u), s.c.wclNorm1[u], s.ax.wclVec(v), s.ax.wclNorm[v])
}

// AttrSim computes s^a_uv = Jaccard(A(u), A(v)) + WeightedJaccard(WA(u),
// WA(v)).
func (s *Scorer) AttrSim(u, v int) float64 {
	au := s.g1.Attrs[u]
	return attrSimFused(au, au.TotalWeight(), s.ax.attrs[v], s.ax.attrTotW[v])
}

// Score computes the combined structural similarity s_uv. Per-pair callers
// get the flat kernel through a throwaway profile; row-oriented callers
// should PrepareQuery once and use ScoreWith / ScoreRange.
func (s *Scorer) Score(u, v int) float64 {
	var p QueryProfile
	s.PrepareQuery(u, &p)
	return s.ScoreWith(&p, v)
}

// ScoreMatrix computes the full |V1| × |V2| similarity matrix in parallel
// (|V2| is the window size on a shard window), each worker streaming strips
// of scoreMatrixStrip query rows through the batched kernel
// (PrepareBatch/ScoreRangeBatch): one pass over the aux-side arrays scores
// a whole strip, instead of one pass per row. Rows are bit-identical to
// the per-row flat kernel's.
func (s *Scorer) ScoreMatrix() [][]float64 {
	const strip = scoreMatrixStrip
	n1, n2 := s.g1.NumNodes(), s.AuxUsers()
	out := make([][]float64, n1)
	nstrips := (n1 + strip - 1) / strip
	workers := runtime.GOMAXPROCS(0)
	if workers > nstrips {
		workers = nstrips
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	strips := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b BatchProfile
			users := make([]int, 0, strip)
			rows := make([][]float64, 0, strip)
			for st := range strips {
				lo, hi := st*strip, (st+1)*strip
				if hi > n1 {
					hi = n1
				}
				users, rows = users[:0], rows[:0]
				for u := lo; u < hi; u++ {
					users = append(users, u)
					rows = append(rows, make([]float64, n2))
				}
				s.PrepareBatch(users, &b)
				s.ScoreRangeBatch(&b, 0, n2, rows)
				for i, u := range users {
					out[u] = rows[i]
				}
			}
		}()
	}
	for st := 0; st < nstrips; st++ {
		strips <- st
	}
	close(strips)
	wg.Wait()
	return out
}

// scoreMatrixStrip is ScoreMatrix's batch width: how many query rows one
// ScoreRangeBatch pass scores per walk of the aux-side arrays.
const scoreMatrixStrip = 8

// StructuralVector returns a fixed-length numeric summary of a user's
// structural features, used to augment the stylometric vectors fed to the
// refined-DA classifier: [degree, weighted degree, max NCS entry, mean NCS
// entry, |A(u)|, total attribute weight] followed by the ħ hop-closeness
// entries. side selects the graph: 1 = anonymized, 2 = auxiliary.
func (s *Scorer) StructuralVector(side, u int) []float64 {
	var (
		deg, wdeg float64
		attrs     stylometry.AttrSet
		ncs, cl   []float64
	)
	if side == 2 {
		deg, wdeg = s.ax.deg[u], s.ax.wdeg[u]
		attrs = s.ax.attrs[u]
		ncs, cl = s.ax.ncsVec(u), s.ax.closeVec(u)
	} else {
		deg, wdeg = float64(s.g1.Degree(u)), s.g1.WeightedDegree(u)
		attrs = s.g1.Attrs[u]
		ncs, cl = s.c.ncsVec(u), s.c.closeVec(u)
	}
	var maxN, sumN float64
	for _, x := range ncs {
		if x > maxN {
			maxN = x
		}
		sumN += x
	}
	meanN := 0.0
	if len(ncs) > 0 {
		meanN = sumN / float64(len(ncs))
	}
	out := []float64{
		deg,
		wdeg,
		maxN,
		meanN,
		float64(attrs.Len()),
		float64(attrs.TotalWeight()),
	}
	out = append(out, cl...)
	return out
}
