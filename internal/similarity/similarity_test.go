package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dehealth/internal/corpus"
	"dehealth/internal/graph"
	"dehealth/internal/stylometry"
)

func TestCosine(t *testing.T) {
	tests := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{1, 0}, 1},
		{[]float64{1, 0}, []float64{0, 1}, 0},
		{[]float64{1, 1}, []float64{1, 1}, 1},
		{[]float64{0, 0}, []float64{1, 1}, 0},
		{nil, nil, 0},
		// Zero padding: (1,2) vs (1,2,0).
		{[]float64{1, 2}, []float64{1, 2, 0}, 1},
	}
	for _, tc := range tests {
		if got := Cosine(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Cosine(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCosineProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(8)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		c := Cosine(a, b)
		if c < -1-1e-9 || c > 1+1e-9 {
			return false
		}
		return math.Abs(Cosine(a, b)-Cosine(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// twoForumWorld builds matched anonymized/auxiliary datasets where user i in
// one corresponds to user i in the other, with identical structure and near
// identical texts.
func twoForumWorld() (*graph.UDA, *graph.UDA) {
	mk := func(suffix string) *corpus.Dataset {
		d := &corpus.Dataset{Name: "w"}
		for i := 0; i < 4; i++ {
			d.Users = append(d.Users, corpus.User{ID: i, Name: "u", TrueIdentity: i})
		}
		d.Threads = []corpus.Thread{
			{ID: 0, Board: "a", Starter: 0},
			{ID: 1, Board: "b", Starter: 2},
		}
		d.Posts = []corpus.Post{
			{ID: 0, User: 0, Thread: 0, Text: "i definately have a terrible headache " + suffix},
			{ID: 1, User: 1, Thread: 0, Text: "my doctor prescribed 50mg of imitrex " + suffix},
			{ID: 2, User: 2, Thread: 1, Text: "has anyone tried melatonin for sleep " + suffix},
			{ID: 3, User: 3, Thread: 1, Text: "whenever i sleep the pain gets worse " + suffix},
			{ID: 4, User: 0, Thread: 1, Text: "i definately agree about the headache part " + suffix},
		}
		return d
	}
	ex := stylometry.New()
	return graph.BuildUDA(mk("today"), ex), graph.BuildUDA(mk("yesterday"), ex)
}

func TestScoreSelfHighest(t *testing.T) {
	g1, g2 := twoForumWorld()
	s := NewScorer(g1, g2, Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 2})
	for u := 0; u < 4; u++ {
		self := s.Score(u, u)
		for v := 0; v < 4; v++ {
			if v != u && s.Score(u, v) > self {
				t.Errorf("Score(%d,%d)=%v exceeds self score %v", u, v, s.Score(u, v), self)
			}
		}
	}
}

func TestScoreComponentsBounded(t *testing.T) {
	g1, g2 := twoForumWorld()
	s := NewScorer(g1, g2, DefaultConfig())
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if d := s.DegreeSim(u, v); d < 0 || d > 3+1e-9 {
				t.Errorf("DegreeSim(%d,%d) = %v out of [0,3]", u, v, d)
			}
			if ds := s.DistanceSim(u, v); ds < 0 || ds > 2+1e-9 {
				t.Errorf("DistanceSim(%d,%d) = %v out of [0,2]", u, v, ds)
			}
			if a := s.AttrSim(u, v); a < 0 || a > 2+1e-9 {
				t.Errorf("AttrSim(%d,%d) = %v out of [0,2]", u, v, a)
			}
		}
	}
}

func TestScoreMatrixMatchesScore(t *testing.T) {
	g1, g2 := twoForumWorld()
	s := NewScorer(g1, g2, DefaultConfig())
	m := s.ScoreMatrix()
	for u := range m {
		for v := range m[u] {
			if math.Abs(m[u][v]-s.Score(u, v)) > 1e-12 {
				t.Fatalf("matrix[%d][%d] mismatch", u, v)
			}
		}
	}
}

func TestStructuralVector(t *testing.T) {
	g1, g2 := twoForumWorld()
	cfg := Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 2}
	s := NewScorer(g1, g2, cfg)
	v1 := s.StructuralVector(1, 0)
	v2 := s.StructuralVector(2, 0)
	wantLen := 6 + cfg.Landmarks
	if len(v1) != wantLen || len(v2) != wantLen {
		t.Fatalf("structural vector lengths %d/%d, want %d", len(v1), len(v2), wantLen)
	}
	// Same user in structurally identical graphs: the graph-derived
	// dimensions (degree block 0-3 and landmark closeness 6+) must match;
	// the attribute dimensions (4, 5) depend on the differing texts.
	for i := range v1 {
		if i == 4 || i == 5 {
			continue
		}
		if math.Abs(v1[i]-v2[i]) > 1e-9 {
			t.Errorf("dim %d differs: %v vs %v", i, v1[i], v2[i])
		}
	}
	if v1[0] != float64(g1.Degree(0)) {
		t.Error("first dim must be the degree")
	}
}

func TestLandmarkClosenessDisconnected(t *testing.T) {
	// Isolated user: all closeness 0, similarity still well-defined.
	d := &corpus.Dataset{
		Name: "iso",
		Users: []corpus.User{
			{ID: 0, Name: "a", TrueIdentity: -1},
			{ID: 1, Name: "b", TrueIdentity: -1},
		},
		Threads: []corpus.Thread{
			{ID: 0, Board: "x", Starter: 0},
			{ID: 1, Board: "x", Starter: 1},
		},
		Posts: []corpus.Post{
			{ID: 0, User: 0, Thread: 0, Text: "alone in this thread"},
			{ID: 1, User: 1, Thread: 1, Text: "also alone here"},
		},
	}
	ex := stylometry.New()
	uda := graph.BuildUDA(d, ex)
	s := NewScorer(uda, uda, DefaultConfig())
	for u := 0; u < 2; u++ {
		for v := 0; v < 2; v++ {
			got := s.Score(u, v)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Errorf("Score(%d,%d) = %v on disconnected graph", u, v, got)
			}
		}
	}
}

// TestSyncAnonMatchesRebuild appends a node to the anonymized graph and
// checks SyncAnon produces the same scores a scorer built from scratch
// would, given the same landmark set (node-side BFS must agree with
// landmark-side BFS on an undirected graph).
func TestSyncAnonMatchesRebuild(t *testing.T) {
	g1, g2 := twoForumWorld()
	s := NewScorer(g1, g2, Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 2})

	ex := stylometry.New()
	vecs := ex.ExtractAll([]string{"i definately have a terrible headache again"})
	u := g1.AppendNode(stylometry.UserAttributes(vecs), vecs)
	// Attach to the two existing landmarks (nodes 0 and 2) so a rebuilt
	// scorer pins the same landmark set and the comparison stays exact.
	g1.AddEdge(u, 0, 1)
	g1.AddEdge(u, 2, 1)
	if added := s.SyncAnon(); added != 1 {
		t.Fatalf("SyncAnon added %d, want 1", added)
	}
	if extra := s.SyncAnon(); extra != 0 {
		t.Fatalf("second SyncAnon added %d, want 0", extra)
	}

	// A derived scorer sharing the caches must see the extension too.
	rw := s.Reweighted(Config{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 2})
	fresh := NewScorer(g1, g2, Config{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 2})
	for v := 0; v < g2.NumNodes(); v++ {
		// The appended node leaves the top-2 degree ranking unchanged, so
		// the fresh scorer pins the same landmarks and must agree exactly.
		if got, want := rw.Score(u, v), fresh.Score(u, v); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Score(%d,%d) = %v, want %v", u, v, got, want)
		}
		if got, want := s.DistanceSim(u, v), fresh.DistanceSim(u, v); math.Abs(got-want) > 1e-12 {
			t.Fatalf("DistanceSim(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
}

// TestShardWindowParity proves a shard window scores bit-identically to
// the base scorer on its range — Score and every component — for every
// window of a small world, including one- and zero-width windows.
func TestShardWindowParity(t *testing.T) {
	g1, g2 := twoForumWorld()
	s := NewScorer(g1, g2, Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 2})
	n2 := g2.NumNodes()
	for lo := 0; lo <= n2; lo++ {
		for hi := lo; hi <= n2; hi++ {
			w := s.Shard(g2.InducedRange(lo, hi), lo, hi)
			if w.AuxUsers() != hi-lo {
				t.Fatalf("window [%d, %d) has %d aux users", lo, hi, w.AuxUsers())
			}
			for u := 0; u < g1.NumNodes(); u++ {
				for j := 0; j < hi-lo; j++ {
					v := lo + j
					if got, want := w.Score(u, j), s.Score(u, v); got != want {
						t.Fatalf("window [%d,%d): Score(%d,%d) = %v, want %v", lo, hi, u, j, got, want)
					}
					if w.DegreeSim(u, j) != s.DegreeSim(u, v) ||
						w.DistanceSim(u, j) != s.DistanceSim(u, v) ||
						w.AttrSim(u, j) != s.AttrSim(u, v) {
						t.Fatalf("window [%d,%d): component mismatch at (%d,%d)", lo, hi, u, j)
					}
				}
			}
		}
	}
}

// TestShardWindowStructuralVector checks side-2 structural vectors read
// through the window with global values.
func TestShardWindowStructuralVector(t *testing.T) {
	g1, g2 := twoForumWorld()
	s := NewScorer(g1, g2, Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 2})
	w := s.Shard(g2.InducedRange(1, 3), 1, 3)
	for j := 0; j < 2; j++ {
		got, want := w.StructuralVector(2, j), s.StructuralVector(2, 1+j)
		if len(got) != len(want) {
			t.Fatalf("vector lengths %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("local %d dim %d: %v != %v", j, i, got[i], want[i])
			}
		}
	}
}

// TestShardWindowSeesSyncAnon appends an anonymized node after windows
// were derived and checks SyncAnon through the base extends every window
// (the anon-side caches are shared by pointer).
func TestShardWindowSeesSyncAnon(t *testing.T) {
	g1, g2 := twoForumWorld()
	s := NewScorer(g1, g2, Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 2})
	w := s.Shard(g2.InducedRange(2, 4), 2, 4)

	ex := stylometry.New()
	vecs := ex.ExtractAll([]string{"a freshly ingested account posting about headaches"})
	u := g1.AppendNode(stylometry.UserAttributes(vecs), vecs)
	g1.AddEdge(u, 0, 1)
	if added := s.SyncAnon(); added != 1 {
		t.Fatalf("SyncAnon added %d, want 1", added)
	}
	for j := 0; j < 2; j++ {
		if got, want := w.Score(u, j), s.Score(u, 2+j); got != want {
			t.Fatalf("window score of appended user: %v, want %v", got, want)
		}
	}
}

// TestShardWindowGuards pins the misuse panics: sharding a shard, and
// reweighting a window to a different landmark count.
func TestShardWindowGuards(t *testing.T) {
	g1, g2 := twoForumWorld()
	s := NewScorer(g1, g2, Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 2})
	w := s.Shard(nil, 0, 2)

	// Same-landmark reweight of a window is fine and stays windowed.
	rw := w.Reweighted(Config{C1: 1, C2: 0, C3: 0, Landmarks: 2})
	if rw.AuxUsers() != 2 {
		t.Fatalf("reweighted window has %d aux users, want 2", rw.AuxUsers())
	}

	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Shard of a shard", func() { w.Shard(nil, 0, 1) })
	mustPanic("landmark reweight of a window", func() { w.Reweighted(Config{C1: 1, Landmarks: 3}) })
	mustPanic("out-of-range window", func() { s.Shard(nil, 2, 9) })
}
