package similarity

import (
	"testing"

	"dehealth/internal/synth"
)

// TestPartsRoundTripParity is the scorer half of the snapshot bit-identity
// contract: a scorer rebuilt from its own Parts must score every pair
// exactly — not approximately — like the original, across configurations
// and through shard windows.
func TestPartsRoundTripParity(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		g1 := synth.SparseAttrUDA(40, 8, 200, seed)
		g2 := synth.SparseAttrUDA(55, 8, 200, seed+100)
		for _, cfg := range []Config{
			{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5},
			{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 7},
		} {
			s := NewScorer(g1, g2, cfg)
			r, err := NewScorerFromParts(g1, g2, cfg, s.Parts())
			if err != nil {
				t.Fatalf("seed %d cfg %+v: NewScorerFromParts: %v", seed, cfg, err)
			}
			n1, n2 := g1.NumNodes(), g2.NumNodes()
			wantRow := make([]float64, n2)
			gotRow := make([]float64, n2)
			var wp, gp QueryProfile
			for u := 0; u < n1; u++ {
				s.PrepareQuery(u, &wp)
				r.PrepareQuery(u, &gp)
				s.ScoreRange(&wp, 0, n2, wantRow)
				r.ScoreRange(&gp, 0, n2, gotRow)
				for v := 0; v < n2; v++ {
					if gotRow[v] != wantRow[v] {
						t.Fatalf("seed %d cfg %+v: restored ScoreRange(%d,%d) = %v, original %v", seed, cfg, u, v, gotRow[v], wantRow[v])
					}
					if got, want := r.Score(u, v), s.Score(u, v); got != want {
						t.Fatalf("seed %d cfg %+v: restored Score(%d,%d) = %v, original %v", seed, cfg, u, v, got, want)
					}
				}
			}
			// Window parity: a shard over the restored scorer must agree with
			// the same shard over the original.
			lo, hi := n2/3, 2*n2/3
			sub := g2.InducedRange(lo, hi)
			sw, rw := s.Shard(sub, lo, hi), r.Shard(sub, lo, hi)
			for u := 0; u < n1; u++ {
				sw.PrepareQuery(u, &wp)
				rw.PrepareQuery(u, &gp)
				sw.ScoreRange(&wp, 0, hi-lo, wantRow[:hi-lo])
				rw.ScoreRange(&gp, 0, hi-lo, gotRow[:hi-lo])
				for v := 0; v < hi-lo; v++ {
					if gotRow[v] != wantRow[v] {
						t.Fatalf("seed %d: restored window score (%d,%d) drifted", seed, u, v)
					}
				}
			}
		}
	}
}

// TestPartsRejectsShapeMismatch pins the restore-side validation: parts
// whose flat arrays do not tile the graphs are rejected instead of
// producing a scorer that reads out of bounds.
func TestPartsRejectsShapeMismatch(t *testing.T) {
	g1 := synth.SparseAttrUDA(20, 5, 120, 3)
	g2 := synth.SparseAttrUDA(25, 5, 120, 4)
	cfg := Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4}
	s := NewScorer(g1, g2, cfg)

	break1 := s.Parts()
	break1.Close = break1.Close[:len(break1.Close)-1]
	if _, err := NewScorerFromParts(g1, g2, cfg, break1); err == nil {
		t.Error("short Close matrix accepted")
	}

	break2 := s.Parts()
	break2.AuxDeg = break2.AuxDeg[:len(break2.AuxDeg)-1]
	if _, err := NewScorerFromParts(g1, g2, cfg, break2); err == nil {
		t.Error("short AuxDeg accepted")
	}

	break3 := s.Parts()
	break3.Landmarks = append([]int{}, break3.Landmarks...)
	break3.Landmarks[0] = g1.NumNodes() // out of range
	if _, err := NewScorerFromParts(g1, g2, cfg, break3); err == nil {
		t.Error("out-of-range landmark accepted")
	}

	break4 := s.Parts()
	break4.NCSOff = append([]int{}, break4.NCSOff...)
	break4.NCSOff[1] = len(break4.NCS) + 1 // breaks monotone coverage
	if _, err := NewScorerFromParts(g1, g2, cfg, break4); err == nil {
		t.Error("broken NCS offsets accepted")
	}
}
