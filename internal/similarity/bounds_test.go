package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRatioSimBound checks the bound against the exact ratioSim over
// random values and intervals, including endpoints and zeros.
func TestRatioSimBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := float64(rng.Intn(20))
		lo := float64(rng.Intn(20))
		hi := lo + float64(rng.Intn(20))
		bound := RatioSimBound(a, lo, hi)
		for _, b := range []float64{lo, hi, (lo + hi) / 2, lo + 1, hi - 1} {
			if b < lo || b > hi {
				continue
			}
			if got := ratioSim(a, b); got > bound+1e-15 {
				t.Logf("ratioSim(%v, %v) = %v above bound %v over [%v, %v]", a, b, got, bound, lo, hi)
				return false
			}
		}
		return bound <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestScoreBoundNoAttrCoversScores is the safety property the pruned
// query path rests on: for every pair (u, v) with zero attribute overlap,
// Score(u, v) must not exceed the bound computed from v's exact degree
// and weighted degree (the tightest band containing v). Exercised over a
// real scorer so the cosine and ratio terms take their production values.
func TestScoreBoundNoAttrCoversScores(t *testing.T) {
	g1, g2 := twoForumWorld()
	// Zero one side's attribute sets so every pair has zero overlap; the
	// structural terms stay real.
	for u := range g2.Attrs {
		g2.Attrs[u].Idx = nil
		g2.Attrs[u].Weight = nil
	}
	for _, cfg := range []Config{
		{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 2},
		{C1: 1, C2: 0, C3: 0, Landmarks: 2},
		{C1: 0, C2: 1, C3: 0, Landmarks: 2},
		{C1: 0, C2: 0, C3: 1, Landmarks: 2},
		{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 2},
	} {
		s := NewScorer(g1, g2, cfg)
		for u := 0; u < g1.NumNodes(); u++ {
			for v := 0; v < g2.NumNodes(); v++ {
				d, wd := s.AuxDegree(v), s.AuxWeightedDegree(v)
				bound := s.ScoreBoundNoAttr(u, d, d, wd, wd)
				if got := s.Score(u, v); got > bound {
					t.Fatalf("cfg %+v: Score(%d,%d) = %v above bound %v", cfg, u, v, got, bound)
				}
			}
		}
	}
}

// TestScoreBoundWideBands widens the band around v and checks the bound
// only grows (a wider band must stay an upper bound for its members).
func TestScoreBoundWideBands(t *testing.T) {
	g1, g2 := twoForumWorld()
	s := NewScorer(g1, g2, Config{C1: 0.2, C2: 0.2, C3: 0.6, Landmarks: 2})
	for u := 0; u < g1.NumNodes(); u++ {
		for v := 0; v < g2.NumNodes(); v++ {
			d, wd := s.AuxDegree(v), s.AuxWeightedDegree(v)
			tight := s.ScoreBoundNoAttr(u, d, d, wd, wd)
			wide := s.ScoreBoundNoAttr(u, math.Max(0, d-3), d+3, math.Max(0, wd-3), wd+3)
			if wide < tight {
				t.Fatalf("widening the band shrank the bound: %v < %v", wide, tight)
			}
		}
	}
}

// TestScoreBoundBandCoversScores is the safety property of the
// norm-tightened band bound: with each auxiliary user's exact degree,
// weighted degree and vector norms as a singleton band, the bound must
// still cover the exact score of every zero-attribute-overlap pair — and
// must be no looser than the norm-less ScoreBoundNoAttr.
func TestScoreBoundBandCoversScores(t *testing.T) {
	g1, g2 := twoForumWorld()
	for u := range g2.Attrs {
		g2.Attrs[u].Idx = nil
		g2.Attrs[u].Weight = nil
	}
	for _, cfg := range []Config{
		{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 2},
		{C1: 1, C2: 0, C3: 0, Landmarks: 2},
		{C1: 0, C2: 1, C3: 0, Landmarks: 2},
		{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 2},
	} {
		s := NewScorer(g1, g2, cfg)
		var p QueryProfile
		for u := 0; u < g1.NumNodes(); u++ {
			s.PrepareQuery(u, &p)
			for v := 0; v < g2.NumNodes(); v++ {
				d, wd := s.AuxDegree(v), s.AuxWeightedDegree(v)
				b := BandStats{
					DegLo: d, DegHi: d, WdegLo: wd, WdegHi: wd,
					NCSNormLo: s.AuxNCSNorm(v), NCSNormHi: s.AuxNCSNorm(v),
					CloseNormLo: s.AuxCloseNorm(v), CloseNormHi: s.AuxCloseNorm(v),
					WclNormLo: s.AuxWclNorm(v), WclNormHi: s.AuxWclNorm(v),
				}
				bound := s.ScoreBoundBand(&p, b)
				if got := s.Score(u, v); got > bound {
					t.Fatalf("cfg %+v: Score(%d,%d) = %v above band bound %v", cfg, u, v, got, bound)
				}
				if loose := s.ScoreBoundNoAttr(u, d, d, wd, wd); bound > loose {
					t.Fatalf("cfg %+v: norm-tightened bound %v looser than norm-less %v", cfg, bound, loose)
				}
			}
		}
	}
}

// TestScoreBoundBandZeroNorms pins the actual tightening: a band of
// isolated, landmark-unreachable users (all vector norms zero) must bound
// strictly below the norm-less bound — every cosine term drops out,
// leaving only the ratio terms.
func TestScoreBoundBandZeroNorms(t *testing.T) {
	g1, g2 := twoForumWorld()
	s := NewScorer(g1, g2, Config{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 2})
	var p QueryProfile
	s.PrepareQuery(0, &p)
	zero := BandStats{DegLo: 1, DegHi: 2, WdegLo: 1, WdegHi: 2}
	loose := s.ScoreBoundNoAttr(0, 1, 2, 1, 2)
	tight := s.ScoreBoundBand(&p, zero)
	if tight >= loose {
		t.Fatalf("zero-norm band bound %v not strictly below norm-less bound %v", tight, loose)
	}
	// The dropped headroom is exactly the three cosine terms: only the two
	// ratio bounds survive.
	want := inflate(0.3 * (RatioSimBound(p.deg, 1, 2) + RatioSimBound(p.wdeg, 1, 2)))
	if tight != want {
		t.Fatalf("zero-norm bound = %v, want %v", tight, want)
	}
}

// TestPruneSafe pins the negative-weight guard: unsafe configurations
// must refuse to certify anything.
func TestPruneSafe(t *testing.T) {
	g1, g2 := twoForumWorld()
	safe := NewScorer(g1, g2, Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 2})
	if !safe.PruneSafe() {
		t.Fatal("non-negative weights must be prune-safe")
	}
	unsafe := NewScorer(g1, g2, Config{C1: -0.1, C2: 0.5, C3: 0.6, Landmarks: 2})
	if unsafe.PruneSafe() {
		t.Fatal("negative weight must not be prune-safe")
	}
	if b := unsafe.ScoreBoundNoAttr(0, 0, 10, 0, 10); !math.IsInf(b, 1) {
		t.Fatalf("unsafe scorer bound = %v, want +Inf", b)
	}
}

// TestAttrScoreBoundsAdmissible is the safety property the WAND tier
// rests on: for EVERY pair (u, v) — attribute overlap included — the
// exact score must not exceed the singleton band bound of v (covering the
// structural terms) plus the sum of the per-attribute bounds of the query
// attributes v shares (covering the C3·AttrSim term). This is exactly the
// bound sum the cursor walk computes for v, so the walk can only skip
// pairs scoring below its threshold.
func TestAttrScoreBoundsAdmissible(t *testing.T) {
	g1, g2 := twoForumWorld()
	for _, cfg := range []Config{
		{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 2},
		{C1: 0, C2: 0, C3: 1, Landmarks: 2},
		{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 2},
		{C1: 1, C2: 0, C3: 0, Landmarks: 2},
	} {
		s := NewScorer(g1, g2, cfg)
		var p QueryProfile
		var ubs []float64
		for u := 0; u < g1.NumNodes(); u++ {
			s.PrepareQuery(u, &p)
			ubs = s.AttrScoreBounds(&p, ubs)
			qa := s.AnonAttrs(u)
			if len(ubs) != len(qa.Idx) {
				t.Fatalf("user %d: %d bounds for %d query attributes", u, len(ubs), len(qa.Idx))
			}
			for i, b := range ubs {
				if b <= 0 {
					t.Fatalf("user %d attribute %d: non-positive bound %v", u, qa.Idx[i], b)
				}
			}
			for v := 0; v < g2.NumNodes(); v++ {
				va := s.AuxAttrs(v)
				shared := map[int]bool{}
				for _, a := range va.Idx {
					shared[a] = true
				}
				d, wd := s.AuxDegree(v), s.AuxWeightedDegree(v)
				bound := s.ScoreBoundBand(&p, BandStats{
					DegLo: d, DegHi: d, WdegLo: wd, WdegHi: wd,
					NCSNormLo: s.AuxNCSNorm(v), NCSNormHi: s.AuxNCSNorm(v),
					CloseNormLo: s.AuxCloseNorm(v), CloseNormHi: s.AuxCloseNorm(v),
					WclNormLo: s.AuxWclNorm(v), WclNormHi: s.AuxWclNorm(v),
				})
				for i, a := range qa.Idx {
					if shared[a] {
						bound += ubs[i]
					}
				}
				if got := s.Score(u, v); got > bound {
					t.Fatalf("cfg %+v: Score(%d,%d) = %v above cursor bound sum %v", cfg, u, v, got, bound)
				}
			}
		}
	}
}

// TestAttrScoreBoundsBufferReuse pins the scratch contract: a capacious
// buffer is reused in place, an undersized one reallocated.
func TestAttrScoreBoundsBufferReuse(t *testing.T) {
	g1, g2 := twoForumWorld()
	s := NewScorer(g1, g2, Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 2})
	var p QueryProfile
	s.PrepareQuery(0, &p)
	buf := make([]float64, 0, 1024)
	out := s.AttrScoreBounds(&p, buf)
	if len(out) > 0 && &out[0] != &buf[:1][0] {
		t.Fatal("capacious buffer was not reused")
	}
	if got := s.AttrScoreBounds(&p, nil); len(got) != len(out) {
		t.Fatalf("nil-buffer call returned %d bounds, want %d", len(got), len(out))
	}
}

// TestAuxAccessorsMatchGraph pins the accessor contract: the frozen
// aux-side reads the index is built from must equal live graph reads.
func TestAuxAccessorsMatchGraph(t *testing.T) {
	g1, g2 := twoForumWorld()
	s := NewScorer(g1, g2, DefaultConfig())
	for v := 0; v < g2.NumNodes(); v++ {
		if s.AuxDegree(v) != float64(g2.Degree(v)) {
			t.Fatalf("AuxDegree(%d) = %v, graph has %d", v, s.AuxDegree(v), g2.Degree(v))
		}
		if s.AuxWeightedDegree(v) != g2.WeightedDegree(v) {
			t.Fatalf("AuxWeightedDegree(%d) mismatch", v)
		}
		if got, want := s.AuxAttrs(v).Len(), g2.Attrs[v].Len(); got != want {
			t.Fatalf("AuxAttrs(%d) has %d attrs, graph has %d", v, got, want)
		}
	}
	for u := 0; u < g1.NumNodes(); u++ {
		if got, want := s.AnonAttrs(u).Len(), g1.Attrs[u].Len(); got != want {
			t.Fatalf("AnonAttrs(%d) has %d attrs, graph has %d", u, got, want)
		}
	}
	// Accessors on a shard window must read the same global values.
	win := s.Shard(nil, 1, 3)
	for j := 0; j < 2; j++ {
		if win.AuxDegree(j) != s.AuxDegree(1+j) || win.AuxWeightedDegree(j) != s.AuxWeightedDegree(1+j) {
			t.Fatalf("window accessor %d drifted from global", j)
		}
	}
}
