package similarity

import (
	"math/rand"
	"testing"

	"dehealth/internal/stylometry"
	"dehealth/internal/synth"
)

// TestScoreRangeBatchParityRandomWorlds is the batched kernel's bit-identity
// guarantee: on randomized synthetic worlds, ScoreRangeBatch must equal the
// retained naive reference ScoreSlow exactly — not approximately — for
// every (query, aux) pair, across mixed batch widths (including Q=1 and a
// batch wider than the query population wraps around) and several
// similarity configurations.
func TestScoreRangeBatchParityRandomWorlds(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g1 := synth.SparseAttrUDA(40, 8, 200, seed)
		g2 := synth.SparseAttrUDA(55, 8, 200, seed+100)
		for _, cfg := range []Config{
			{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5},
			{C1: 1, C2: 0, C3: 0, Landmarks: 3},
			{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 7},
		} {
			s := NewScorer(g1, g2, cfg)
			n1, n2 := g1.NumNodes(), g2.NumNodes()
			rng := rand.New(rand.NewSource(seed * 13))
			var b BatchProfile
			for _, q := range []int{1, 3, 8, 17} {
				users := make([]int, q)
				for i := range users {
					users[i] = rng.Intn(n1)
				}
				out := make([][]float64, q)
				for i := range out {
					out[i] = make([]float64, n2)
				}
				s.PrepareBatch(users, &b)
				if b.Len() != q {
					t.Fatalf("BatchProfile.Len() = %d, want %d", b.Len(), q)
				}
				s.ScoreRangeBatch(&b, 0, n2, out)
				for i, u := range users {
					if b.User(i) != u {
						t.Fatalf("BatchProfile.User(%d) = %d, want %d", i, b.User(i), u)
					}
					for v := 0; v < n2; v++ {
						if want := s.ScoreSlow(u, v); out[i][v] != want {
							t.Fatalf("seed %d cfg %+v Q=%d: batch[%d][%d] = %v, ScoreSlow = %v",
								seed, cfg, q, i, v, out[i][v], want)
						}
					}
				}
			}
		}
	}
}

// TestScoreRangeBatchWindowParity checks the batched kernel through a shard
// window against the base scorer on the window's global range, over
// sub-ranges that exercise nonzero lo (the blocked scan shape).
func TestScoreRangeBatchWindowParity(t *testing.T) {
	g1 := synth.SparseAttrUDA(20, 5, 120, 21)
	g2 := synth.SparseAttrUDA(33, 5, 120, 22)
	s := NewScorer(g1, g2, Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4})
	lo, hi := 7, 29
	w := s.Shard(g2.InducedRange(lo, hi), lo, hi)
	users := []int{0, 5, 11, 3, 0, 19}
	var b BatchProfile
	w.PrepareBatch(users, &b)
	for _, blk := range [][2]int{{0, hi - lo}, {3, 17}, {17, hi - lo}} {
		n := blk[1] - blk[0]
		out := make([][]float64, len(users))
		for i := range out {
			out[i] = make([]float64, n)
		}
		w.ScoreRangeBatch(&b, blk[0], blk[1], out)
		for i, u := range users {
			for j := 0; j < n; j++ {
				if want := s.Score(u, lo+blk[0]+j); out[i][j] != want {
					t.Fatalf("window batch [%d,%d): q=%d j=%d = %v, base Score = %v",
						blk[0], blk[1], i, j, out[i][j], want)
				}
			}
		}
	}
}

// TestScoreRangeBatchAppended extends a world through AppendNode + SyncAnon
// — the serving-path ingestion shape — and checks a batch mixing original
// and appended query users scores bit-identically to ScoreSlow, on the
// base scorer and through a shard window.
func TestScoreRangeBatchAppended(t *testing.T) {
	g1 := synth.SparseAttrUDA(30, 6, 150, 9)
	g2 := synth.SparseAttrUDA(30, 6, 150, 10)
	s := NewScorer(g1, g2, Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4})
	lo, hi := 10, 25
	w := s.Shard(g2.InducedRange(lo, hi), lo, hi)

	rng := rand.New(rand.NewSource(11))
	n0 := g1.NumNodes()
	for i := 0; i < 3; i++ {
		attrs := stylometry.AttrSet{Idx: []int{i, 50 + i}, Weight: []int{1 + i, 2}}
		u := g1.AppendNode(attrs, [][]float64{{1}})
		for e := 0; e < 1+i; e++ {
			g1.AddEdge(u, rng.Intn(n0), 1+float64(rng.Intn(3)))
		}
	}
	if added := s.SyncAnon(); added != 3 {
		t.Fatalf("SyncAnon added %d, want 3", added)
	}

	users := []int{0, n0, 5, n0 + 1, n0 + 2} // mixed original + appended
	n2 := g2.NumNodes()
	out := make([][]float64, len(users))
	for i := range out {
		out[i] = make([]float64, n2)
	}
	var b BatchProfile
	s.PrepareBatch(users, &b)
	s.ScoreRangeBatch(&b, 0, n2, out)
	for i, u := range users {
		for v := 0; v < n2; v++ {
			if want := s.ScoreSlow(u, v); out[i][v] != want {
				t.Fatalf("appended batch: q=%d(user %d) v=%d = %v, ScoreSlow = %v", i, u, v, out[i][v], want)
			}
		}
	}

	wout := make([][]float64, len(users))
	for i := range wout {
		wout[i] = make([]float64, hi-lo)
	}
	var wb BatchProfile
	w.PrepareBatch(users, &wb)
	w.ScoreRangeBatch(&wb, 0, hi-lo, wout)
	for i, u := range users {
		for j := 0; j < hi-lo; j++ {
			if want := s.ScoreSlow(u, lo+j); wout[i][j] != want {
				t.Fatalf("appended window batch: q=%d(user %d) j=%d = %v, ScoreSlow = %v", i, u, j, wout[i][j], want)
			}
		}
	}
}

// TestScoreRangeBatchZeroAllocs is the batched kernel's allocation
// contract: re-preparing a reused BatchProfile and streaming the full aux
// range through ScoreRangeBatch must allocate nothing once the profile's
// capacity is warm — the pooled shard scratch depends on it.
func TestScoreRangeBatchZeroAllocs(t *testing.T) {
	g1 := synth.SparseAttrUDA(25, 5, 150, 31)
	g2 := synth.SparseAttrUDA(40, 5, 150, 32)
	s := NewScorer(g1, g2, Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4})
	n2 := g2.NumNodes()
	const q = 8
	users := make([]int, q)
	out := make([][]float64, q)
	for i := range out {
		out[i] = make([]float64, n2)
	}
	var b BatchProfile
	s.PrepareBatch(users, &b) // warm capacity and lazy graph state (Freeze)
	off := 0
	allocs := testing.AllocsPerRun(100, func() {
		for i := range users {
			users[i] = (off + i) % g1.NumNodes()
		}
		off++
		s.PrepareBatch(users, &b)
		s.ScoreRangeBatch(&b, 0, n2, out)
	})
	if allocs != 0 {
		t.Fatalf("PrepareBatch+ScoreRangeBatch allocates %v times per batch, want 0", allocs)
	}
}
