// Snapshot support: Parts exposes the precomputed cache state a base
// scorer carries, and NewScorerFromParts rebuilds a scorer from saved
// parts without re-running the NCS/landmark precomputation — the
// warm-restart path. The parity contract holds because every float the
// scoring kernel reads is carried through Parts verbatim; only
// integer-derived auxiliary state (attribute total weights, the dense
// table width) is recomputed, by the same exact-integer arithmetic as
// NewScorer.

package similarity

import (
	"fmt"

	"dehealth/internal/graph"
)

// Parts is the serializable precomputed state of a base scorer: the
// anonymized-side SoA caches and the full auxiliary window, in the flat
// layouts the kernel walks. Slices are the scorer's own backing arrays —
// treat them as read-only.
type Parts struct {
	// Anonymized side (scorerCaches). Hbar1 is len(Landmarks).
	Landmarks []int
	NCS       []float64
	NCSOff    []int
	NCSNorm   []float64
	Close     []float64
	CloseNorm []float64
	Wcl       []float64
	WclNorm   []float64

	// Auxiliary side (auxWindow), minus what NewScorerFromParts re-derives
	// from the graph's attribute sets (attrs, attrTotW, attrW).
	Hbar2        int
	AuxDeg       []float64
	AuxWdeg      []float64
	AuxNCS       []float64
	AuxNCSOff    []int
	AuxNCSNorm   []float64
	AuxClose     []float64
	AuxCloseNorm []float64
	AuxWcl       []float64
	AuxWclNorm   []float64
}

// Parts returns the scorer's precomputed cache state for serialization.
// It must be called on a base scorer: a shard window's caches are views of
// its base scorer's, so the base is what a snapshot captures.
func (s *Scorer) Parts() Parts {
	if s.window {
		panic("similarity: Parts of a shard window; snapshot the base scorer")
	}
	return Parts{
		Landmarks: s.c.landmarks1,
		NCS:       s.c.ncs1,
		NCSOff:    s.c.ncsOff1,
		NCSNorm:   s.c.ncsNorm1,
		Close:     s.c.close1,
		CloseNorm: s.c.closeNorm1,
		Wcl:       s.c.wcl1,
		WclNorm:   s.c.wclNorm1,

		Hbar2:        s.ax.hbar2,
		AuxDeg:       s.ax.deg,
		AuxWdeg:      s.ax.wdeg,
		AuxNCS:       s.ax.ncs,
		AuxNCSOff:    s.ax.ncsOff,
		AuxNCSNorm:   s.ax.ncsNorm,
		AuxClose:     s.ax.close,
		AuxCloseNorm: s.ax.closeNorm,
		AuxWcl:       s.ax.wcl,
		AuxWclNorm:   s.ax.wclNorm,
	}
}

// NewScorerFromParts rebuilds a base scorer over g1 and g2 from saved
// parts, adopting the part slices as its caches (no copies: callers
// restoring from a read-only mapping rely on the arrays being read-only in
// operation — SyncAnon appends, which reallocates). The auxiliary
// attribute state is re-derived from g2.Attrs exactly as NewScorer derives
// it. Every part is validated against the graphs' dimensions; a mismatch
// returns an error rather than a scorer that would index out of bounds.
func NewScorerFromParts(g1, g2 *graph.UDA, cfg Config, p Parts) (*Scorer, error) {
	n1, n2 := g1.NumNodes(), g2.NumNodes()
	hbar1 := len(p.Landmarks)
	for _, l := range p.Landmarks {
		if l < 0 || l >= n1 {
			return nil, fmt.Errorf("similarity: landmark %d outside anonymized graph of %d nodes", l, n1)
		}
	}
	if err := checkRagged("anon NCS", n1, p.NCS, p.NCSOff, p.NCSNorm); err != nil {
		return nil, err
	}
	if err := checkFixed("anon closeness", n1, hbar1, p.Close, p.CloseNorm); err != nil {
		return nil, err
	}
	if err := checkFixed("anon weighted closeness", n1, hbar1, p.Wcl, p.WclNorm); err != nil {
		return nil, err
	}
	if err := checkRagged("aux NCS", n2, p.AuxNCS, p.AuxNCSOff, p.AuxNCSNorm); err != nil {
		return nil, err
	}
	if p.Hbar2 < 0 {
		return nil, fmt.Errorf("similarity: negative aux landmark count %d", p.Hbar2)
	}
	if err := checkFixed("aux closeness", n2, p.Hbar2, p.AuxClose, p.AuxCloseNorm); err != nil {
		return nil, err
	}
	if err := checkFixed("aux weighted closeness", n2, p.Hbar2, p.AuxWcl, p.AuxWclNorm); err != nil {
		return nil, err
	}
	if len(p.AuxDeg) != n2 || len(p.AuxWdeg) != n2 {
		return nil, fmt.Errorf("similarity: aux degree arrays cover %d/%d users, graph has %d", len(p.AuxDeg), len(p.AuxWdeg), n2)
	}
	if len(g2.Attrs) != n2 {
		return nil, fmt.Errorf("similarity: auxiliary graph has %d attribute sets for %d nodes", len(g2.Attrs), n2)
	}

	c := &scorerCaches{
		landmarks1: p.Landmarks,
		hbar1:      hbar1,
		ncs1:       p.NCS,
		ncsOff1:    p.NCSOff,
		ncsNorm1:   p.NCSNorm,
		close1:     p.Close,
		closeNorm1: p.CloseNorm,
		wcl1:       p.Wcl,
		wclNorm1:   p.WclNorm,
	}
	ax := &auxWindow{
		deg:       p.AuxDeg,
		wdeg:      p.AuxWdeg,
		attrs:     g2.Attrs,
		attrTotW:  make([]int, n2),
		hbar2:     p.Hbar2,
		ncs:       p.AuxNCS,
		ncsOff:    p.AuxNCSOff,
		ncsNorm:   p.AuxNCSNorm,
		close:     p.AuxClose,
		closeNorm: p.AuxCloseNorm,
		wcl:       p.AuxWcl,
		wclNorm:   p.AuxWclNorm,
	}
	for v := 0; v < n2; v++ {
		ax.attrTotW[v] = g2.Attrs[v].TotalWeight()
		if n := g2.Attrs[v].Len(); n > 0 && g2.Attrs[v].Idx[n-1]+1 > ax.attrW {
			ax.attrW = g2.Attrs[v].Idx[n-1] + 1
		}
	}
	return &Scorer{cfg: cfg, g1: g1, g2: g2, c: c, ax: ax}, nil
}

// checkRagged validates a flat ragged array against its offsets and norms.
func checkRagged(what string, n int, flat []float64, off []int, norm []float64) error {
	if len(off) != n+1 || len(norm) != n {
		return fmt.Errorf("similarity: %s tables cover %d users, graph has %d", what, len(norm), n)
	}
	if off[0] != 0 || off[n] != len(flat) {
		return fmt.Errorf("similarity: %s offsets span [%d, %d), flat array has %d", what, off[0], off[n], len(flat))
	}
	for i := 1; i <= n; i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("similarity: %s offsets decrease at %d", what, i)
		}
	}
	return nil
}

// checkFixed validates a row-major fixed-stride matrix and its norms.
func checkFixed(what string, n, stride int, flat, norm []float64) error {
	if len(flat) != n*stride || len(norm) != n {
		return fmt.Errorf("similarity: %s matrix is %dx%d values with %d norms, want %d users x stride %d", what, len(flat), 1, len(norm), n, stride)
	}
	return nil
}
