// The flat scoring kernel. Score's per-pair cost used to re-derive
// query-side invariants for every auxiliary user: each of the three
// cosines re-summed both vectors' norms, the anonymized side's weighted
// degree re-walked the adjacency list, and the two Jaccard terms merged
// the attribute lists twice. This file is the query-prepared rewrite: a
// QueryProfile captures the anonymized side once per query (degree,
// weighted degree, attribute set + total weight, flat vector views and
// precomputed norms), and ScoreWith / ScoreRange evaluate rows of the
// similarity against the contiguous aux-side arrays with zero allocations.
//
// Bit-identity with the retained naive reference (ScoreSlow) holds because
// no floating-point operation changes order or operands:
//
//   - each cosine's dot product accumulates in the same index order over
//     the same values; the norm factors are the same index-order sums,
//     merely computed once (l2norm) instead of per pair — sqrt is exact on
//     equal inputs, and dot/(na*nb) multiplies the same two float64s;
//   - the fused attribute merge only reassociates *integer* arithmetic:
//     |A∪B| = |A|+|B|−|A∩B| and Σmax(w) = ΣwA+ΣwB−Σmin(w) are exact, so
//     the final float64 divisions see identical numerators/denominators;
//   - the ratio terms read the same frozen degree values.
//
// The parity tests (kernel_test.go) and the inline assertion in
// BenchmarkScoreKernel pin this equivalence on randomized worlds,
// including nodes appended after SyncAnon.

package similarity

import "dehealth/internal/stylometry"

// QueryProfile is the prepared anonymized-side state of one query user:
// everything ScoreWith needs that does not depend on the auxiliary user.
// Prepare it with PrepareQuery; the zero value is only valid after that.
// A profile holds views into the scorer's caches — it stays valid until
// the next SyncAnon and must not outlive it.
type QueryProfile struct {
	u          int
	deg, wdeg  float64
	attrs      stylometry.AttrSet
	attrTotW   int
	ncs        []float64
	ncsNorm    float64
	close, wcl []float64
	closeNorm  float64
	wclNorm    float64
}

// User returns the anonymized user the profile was prepared for.
func (p *QueryProfile) User() int { return p.u }

// PrepareQuery fills p with anonymized user u's scoring state: live
// degree and weighted degree (read once per query instead of once per
// pair, preserving the live-read semantics of the naive path — the graph
// does not mutate during a query), the attribute set with its total
// weight, and flat vector views with precomputed norms. p is caller-owned
// so the hot path allocates nothing; reuse one profile per query.
func (s *Scorer) PrepareQuery(u int, p *QueryProfile) {
	c := s.c
	p.u = u
	p.deg = float64(s.g1.Degree(u))
	p.wdeg = s.g1.WeightedDegree(u)
	p.attrs = s.g1.Attrs[u]
	p.attrTotW = p.attrs.TotalWeight()
	p.ncs = c.ncsVec(u)
	p.ncsNorm = c.ncsNorm1[u]
	p.close = c.closeVec(u)
	p.closeNorm = c.closeNorm1[u]
	p.wcl = c.wclVec(u)
	p.wclNorm = c.wclNorm1[u]
}

// ScoreWith computes Score(p.User(), v) from the prepared profile — the
// per-pair flat kernel: two ratio terms, three precomputed-norm cosines
// and one fused attribute merge, all over dense frozen state. It is
// bit-identical to Score and ScoreSlow.
func (s *Scorer) ScoreWith(p *QueryProfile, v int) float64 {
	ax := s.ax
	d := ratioSim(p.deg, ax.deg[v]) + ratioSim(p.wdeg, ax.wdeg[v]) +
		cosinePre(p.ncs, p.ncsNorm, ax.ncsVec(v), ax.ncsNorm[v])
	h := ax.hbar2
	ds := cosinePre(p.close, p.closeNorm, ax.close[v*h:(v+1)*h], ax.closeNorm[v]) +
		cosinePre(p.wcl, p.wclNorm, ax.wcl[v*h:(v+1)*h], ax.wclNorm[v])
	a := attrSimFused(p.attrs, p.attrTotW, ax.attrs[v], ax.attrTotW[v])
	return s.cfg.C1*d + s.cfg.C2*ds + s.cfg.C3*a
}

// ScoreRange evaluates the row slice Score(p.User(), v) for v in [lo, hi)
// into out (len(out) must be hi-lo) — the blocked row kernel behind the
// shard scan, ScoreMatrix and the batch Top-K phase. It performs zero
// allocations; callers stream a fixed-size block buffer over the window.
func (s *Scorer) ScoreRange(p *QueryProfile, lo, hi int, out []float64) {
	_ = out[:hi-lo]
	for v := lo; v < hi; v++ {
		out[v-lo] = s.ScoreWith(p, v)
	}
}

// cosinePre is Cosine with both norm factors precomputed (na, nb are the
// vectors' sqrt(Σx²)): the dot product accumulates over the zero-padded
// overlap in the same index order, so the result is bit-identical to
// Cosine(a, b).
func cosinePre(a []float64, na float64, b []float64, nb float64) float64 {
	if na == 0 || nb == 0 {
		return 0
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var dot float64
	for i := 0; i < n; i++ {
		dot += a[i] * b[i]
	}
	return dot / (na * nb)
}

// attrSimFused computes Jaccard + WeightedJaccard in one merge pass over
// the sorted attribute lists. The intersection yields both |A∩B| and
// Σmin(w) directly; the unions come from the precomputed totals
// (|A|+|B|−|A∩B| and ΣwA+ΣwB−Σmin(w)) — integer identities, so the two
// quotients match the naive two-pass computation exactly.
func attrSimFused(a stylometry.AttrSet, atot int, b stylometry.AttrSet, btot int) float64 {
	ai, bi := a.Idx, b.Idx
	var inter, winter int
	i, j := 0, 0
	for i < len(ai) && j < len(bi) {
		switch {
		case ai[i] == bi[j]:
			inter++
			w := a.Weight[i]
			if bw := b.Weight[j]; bw < w {
				w = bw
			}
			winter += w
			i++
			j++
		case ai[i] < bi[j]:
			i++
		default:
			j++
		}
	}
	var sim float64
	if union := len(ai) + len(bi) - inter; union > 0 {
		sim = float64(inter) / float64(union)
	}
	if wunion := atot + btot - winter; wunion > 0 {
		sim += float64(winter) / float64(wunion)
	}
	return sim
}

// ScoreSlow is the retained naive reference kernel: the pre-flat-layout
// implementation that re-derives every invariant per pair — live graph
// reads for the anonymized degree terms, full norm re-summation inside
// each cosine, and two independent attribute merges with explicit tail
// loops. It exists so parity tests and BenchmarkScoreKernel can prove the
// flat kernel bit-identical to it (and measure the win); production paths
// never call it.
func (s *Scorer) ScoreSlow(u, v int) float64 {
	return s.cfg.C1*s.degreeSimSlow(u, v) + s.cfg.C2*s.distanceSimSlow(u, v) + s.cfg.C3*s.attrSimSlow(u, v)
}

func (s *Scorer) degreeSimSlow(u, v int) float64 {
	d := ratioSim(float64(s.g1.Degree(u)), s.ax.deg[v])
	wd := ratioSim(s.g1.WeightedDegree(u), s.ax.wdeg[v])
	return d + wd + Cosine(s.c.ncsVec(u), s.ax.ncsVec(v))
}

func (s *Scorer) distanceSimSlow(u, v int) float64 {
	return Cosine(s.c.closeVec(u), s.ax.closeVec(v)) + Cosine(s.c.wclVec(u), s.ax.wclVec(v))
}

func (s *Scorer) attrSimSlow(u, v int) float64 {
	return jaccardSets(s.g1.Attrs[u].Idx, s.ax.attrs[v].Idx) +
		weightedJaccardSlow(s.g1.Attrs[u], s.ax.attrs[v])
}

func jaccardSets(a, b []int) float64 {
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func weightedJaccardSlow(au, av stylometry.AttrSet) float64 {
	var inter, union int
	i, j := 0, 0
	for i < len(au.Idx) && j < len(av.Idx) {
		switch {
		case au.Idx[i] == av.Idx[j]:
			wa, wb := au.Weight[i], av.Weight[j]
			if wa < wb {
				inter += wa
				union += wb
			} else {
				inter += wb
				union += wa
			}
			i++
			j++
		case au.Idx[i] < av.Idx[j]:
			union += au.Weight[i]
			i++
		default:
			union += av.Weight[j]
			j++
		}
	}
	for ; i < len(au.Idx); i++ {
		union += au.Weight[i]
	}
	for ; j < len(av.Idx); j++ {
		union += av.Weight[j]
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
