// The multi-query batched scoring kernel. ScoreRange walks the aux-side
// flat arrays once per query; under the serving dispatcher's micro-batches
// that means Q full passes over the same SoA blocks. ScoreRangeBatch
// inverts the loop nest: it walks each aux row once and evaluates all Q
// prepared queries against it while the row's closeness/NCS/attribute data
// is hot in cache.
//
// The batch also buys the attribute merge a cheaper shape. The per-pair
// sorted-list merge (attrSimFused) is O(|A|+|B|) with a data-dependent
// three-way branch per step — the dominant per-pair cost on dense-attribute
// worlds. PrepareBatch instead scatters each query's attribute weights into
// a dense id-indexed table (one table per query, width = 1 + the max aux
// attribute id, built once per batch), and the kernel computes the
// intersection by a single branch-predictable pass over the aux row's
// attribute list with O(1) table lookups — O(|B|) per pair, and the O(|A|)
// table build amortizes over every row of the scan.
//
// Bit-identity with ScoreSlow (and hence with ScoreWith/ScoreRange) holds
// because the restructuring never touches a floating-point operation:
//
//   - the loop interchange reorders which (u, v) pair is evaluated when,
//     never the operations within a pair — each pair still computes the
//     exact expression ScoreWith computes, operand for operand;
//   - the table merge only reorganizes *integer* arithmetic: it counts the
//     same intersection cardinality |A∩B| and the same Σmin(w) the sorted
//     merge counts (integer addition is associative and exact), so the
//     final float64 divisions see identical numerators and denominators;
//   - membership via table lookup is exact — attribute ids are unique
//     within a sorted set, weights are >= 1 (stylometry.AttrSet), so -1
//     marks absence unambiguously.
//
// The parity tests (batch_test.go) and the inline assertion in
// BenchmarkScoreKernelBatch pin the equivalence on randomized worlds,
// mixed batch widths, shard windows and nodes appended after SyncAnon.

package similarity

// BatchProfile is the prepared state of Q query users: one QueryProfile
// per user plus the per-query dense attribute weight tables the batched
// kernel's merge reads. Prepare it with PrepareBatch; a profile holds
// views into the scorer's caches and stays valid until the next SyncAnon.
// The struct is caller-owned and reusable: preparing a new batch into it
// reuses the previous batch's allocations, so a steady-state consumer
// (the shard scan's pooled scratch) allocates nothing per batch.
type BatchProfile struct {
	profs []QueryProfile
	tab   []int32 // Q dense weight tables, row-major, stride tabW; -1 = absent
	tabW  int
}

// Len returns the batch width Q.
func (b *BatchProfile) Len() int { return len(b.profs) }

// User returns the anonymized user the q-th profile was prepared for.
func (b *BatchProfile) User(q int) int {
	if uint(q) >= uint(len(b.profs)) {
		panic("similarity: BatchProfile.User index out of range")
	}
	return b.profs[q].u
}

// PrepareBatch fills b with the prepared profiles of users: each entry is
// PrepareQuery's state plus a dense attribute table mapping attribute id
// to the user's weight (-1 when absent). Tables are sized to the aux
// side's attribute id space; query attributes beyond it cannot intersect
// any auxiliary set and are (correctly) not tabulated. b is caller-owned;
// reuse amortizes all allocations away.
func (s *Scorer) PrepareBatch(users []int, b *BatchProfile) {
	q := len(users)
	if cap(b.profs) < q {
		b.profs = make([]QueryProfile, q)
	}
	b.profs = b.profs[:q]
	b.tabW = s.ax.attrW
	if need := q * b.tabW; cap(b.tab) < need {
		b.tab = make([]int32, need)
	}
	b.tab = b.tab[:q*b.tabW]
	profs := b.profs
	users = users[:len(profs)]
	for i, u := range users {
		p := &profs[i]
		s.PrepareQuery(u, p)
		tab := b.tab[i*b.tabW : (i+1)*b.tabW]
		for t := range tab {
			tab[t] = -1
		}
		wts := p.attrs.Weight[:len(p.attrs.Idx)]
		for t, id := range p.attrs.Idx {
			if uint(id) < uint(len(tab)) {
				tab[id] = int32(wts[t])
			}
		}
	}
}

// ScoreRangeBatch evaluates Score(b.User(q), v) for every q in [0, b.Len())
// and v in [lo, hi) into out: out[q][v-lo] receives query q's score of aux
// row v (len(out) >= b.Len(), len(out[q]) >= hi-lo). It is the blocked
// multi-query kernel: the outer loop streams aux rows, hoisting each row's
// vector views and norms once, and the inner loop scores all Q queries
// against the hot row. Zero allocations; bit-identical to ScoreSlow (see
// the file comment). The inner loops compile without bounds checks
// (scripts/check_bce.sh pins this).
func (s *Scorer) ScoreRangeBatch(b *BatchProfile, lo, hi int, out [][]float64) {
	profs := b.profs
	if len(profs) == 0 || hi <= lo {
		return
	}
	n := hi - lo
	out = out[:len(profs)]
	for q := range out {
		_ = out[q][:n] // fail fast on short rows; the kernel's guarded writes never mask this
	}
	ax := s.ax
	h := ax.hbar2
	w := b.tabW
	c1, c2, c3 := s.cfg.C1, s.cfg.C2, s.cfg.C3
	// Window-local views of the row-streamed arrays, every sibling resliced
	// to len(deg): the compiler proves all per-row indexing in-bounds from
	// the one range induction variable (scripts/check_bce.sh pins this).
	deg := ax.deg[lo:hi]
	wdeg := ax.wdeg[lo:hi][:len(deg)]
	attrs := ax.attrs[lo:hi][:len(deg)]
	attrTotW := ax.attrTotW[lo:hi][:len(deg)]
	ncsNorm := ax.ncsNorm[lo:hi][:len(deg)]
	closeNorm := ax.closeNorm[lo:hi][:len(deg)]
	wclNorm := ax.wclNorm[lo:hi][:len(deg)]
	ncsOff := ax.ncsOff[lo : hi+1][:len(deg)+1]
	closeM := ax.close[lo*h : hi*h]
	wclM := ax.wcl[lo*h : hi*h][:len(closeM)]
	off := ncsOff[0] // ragged NCS offsets, streamed as a running cursor
	for i := range deg {
		next := off
		if uint(i+1) < uint(len(ncsOff)) { // always true: len(ncsOff) = len(deg)+1
			next = ncsOff[i+1]
		}
		ncsV := ax.ncs[off:next]
		off = next
		ncsNormV := ncsNorm[i]
		closeV := closeM[i*h : (i+1)*h]
		wclV := wclM[i*h : (i+1)*h]
		closeNormV := closeNorm[i]
		wclNormV := wclNorm[i]
		degV, wdegV := deg[i], wdeg[i]
		attrsV, attrTotV := attrs[i], attrTotW[i]
		bi := attrsV.Idx
		bw := attrsV.Weight[:len(bi)]
		for q := range profs {
			p := &profs[q]
			d := ratioSim(p.deg, degV) + ratioSim(p.wdeg, wdegV) +
				cosinePre(p.ncs, p.ncsNorm, ncsV, ncsNormV)
			ds := cosinePre(p.close, p.closeNorm, closeV, closeNormV) +
				cosinePre(p.wcl, p.wclNorm, wclV, wclNormV)
			tab := b.tab[q*w : (q+1)*w]
			var inter, winter int
			for t := 0; t < len(bi); t++ {
				id := bi[t]
				if uint(id) < uint(len(tab)) { // always true: tables span the aux id space
					wq := int(tab[id])
					mask := ^(wq >> 63) // all-ones when present (wq >= 1), 0 when absent (-1)
					if x := bw[t]; x < wq {
						wq = x
					}
					inter += mask & 1
					winter += mask & wq
				}
			}
			var a float64
			if union := len(p.attrs.Idx) + len(bi) - inter; union > 0 {
				a = float64(inter) / float64(union)
			}
			if wunion := p.attrTotW + attrTotV - winter; wunion > 0 {
				a += float64(winter) / float64(wunion)
			}
			row := out[q]
			if uint(i) < uint(len(row)) { // always true (validated above); keeps the store check-free
				row[i] = c1*d + c2*ds + c3*a
			}
		}
	}
}
