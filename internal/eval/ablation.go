package eval

import (
	"fmt"
	"math/rand"

	"dehealth/internal/core"
	"dehealth/internal/corpus"
	"dehealth/internal/features"
	"dehealth/internal/similarity"
)

// AblationWeights sweeps the similarity-weight split between the structural
// components (c1, c2) and the attribute component (c3), measuring Top-K
// success — the ablation behind the paper's default c = (0.05, 0.05, 0.9)
// ("the degree and distance do not provide much useful information in
// distinguishing different users for the two leveraged datasets").
func AblationWeights(c *Corpora, k int) Table {
	if k <= 0 {
		k = 50
	}
	rng := rand.New(rand.NewSource(c.Scale.Seed + 77))
	split := corpus.SplitClosedWorld(c.WebMD, 0.5, rng)
	t := Table{
		Title:  fmt.Sprintf("Ablation: similarity weights (closed-world WebMD, Top-%d success)", k),
		Header: []string{"c1 (degree)", "c2 (distance)", "c3 (attribute)", fmt.Sprintf("top-%d success", k)},
	}
	// Feature extraction, graph construction and the landmark-distance
	// caches are weight-independent: build them once and re-weight the
	// scorer per sweep point.
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 200, features.Options{})
	base := core.NewPipelineFromStore(anonS, auxS, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 50})
	for _, w := range [][3]float64{
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
		{0.05, 0.05, 0.9}, // the paper's default
		{0.45, 0.45, 0.1},
		{1.0 / 3, 1.0 / 3, 1.0 / 3},
	} {
		cfg := similarity.Config{C1: w[0], C2: w[1], C3: w[2], Landmarks: 50}
		p := base.WithSimilarity(cfg)
		tk := p.TopK(k, core.DirectSelection, split.TrueMapping)
		cdf := TopKSuccessCDF(tk, split.TrueMapping, []int{k})
		t.AddRow(
			fmt.Sprintf("%.2f", w[0]),
			fmt.Sprintf("%.2f", w[1]),
			fmt.Sprintf("%.2f", w[2]),
			fmt.Sprintf("%.4f", cdf[0]),
		)
	}
	return t
}

// AblationSelection compares the two Top-K candidate-selection strategies
// of §III-B (direct selection vs repeated maximum-weight graph matching) on
// a small closed-world split.
func AblationSelection(seed int64) Table {
	d, _ := RefinedCorpus(60, 16, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	split := corpus.SplitClosedWorld(d, 0.5, rng)
	cfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 100, features.Options{})
	p := core.NewPipelineFromStore(anonS, auxS, cfg)

	t := Table{
		Title:  "Ablation: Top-K candidate selection strategy (60 users x 16 posts)",
		Header: []string{"K", "direct selection", "graph matching"},
	}
	for _, k := range []int{1, 3, 5, 10} {
		direct := p.TopK(k, core.DirectSelection, split.TrueMapping)
		matching := p.TopK(k, core.GraphMatchingSelection, split.TrueMapping)
		dHit := containsTruth(direct, split.TrueMapping)
		mHit := containsTruth(matching, split.TrueMapping)
		t.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.4f", dHit), fmt.Sprintf("%.4f", mHit))
	}
	return t
}

// containsTruth measures the fraction of overlapping users whose true
// mapping appears in their candidate set.
func containsTruth(tk *core.TopKResult, trueMapping map[int]int) float64 {
	if len(trueMapping) == 0 {
		return 0
	}
	hits := 0
	for u, tv := range trueMapping {
		if tk.Contains(u, tv) {
			hits++
		}
	}
	return float64(hits) / float64(len(trueMapping))
}

// AblationFilter measures the effect of the Algorithm 2 threshold filter on
// open-world refined DA: candidate-set sizes shrink and some users are
// rejected before classification.
func AblationFilter(seed int64) Table {
	d, _ := RefinedCorpus(90, 16, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	split := corpus.OpenWorldOverlap(d, 0.5, rng)
	cfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 100, features.Options{})
	p := core.NewPipelineFromStore(anonS, auxS, cfg)

	t := Table{
		Title:  "Ablation: Algorithm 2 filtering (open-world, 50% overlap)",
		Header: []string{"variant", "mean |Cu|", "rejected (⊥)", "truth kept"},
	}
	for _, withFilter := range []bool{false, true} {
		tk := p.TopK(10, core.DirectSelection, split.TrueMapping)
		if withFilter {
			p.Filter(tk, core.FilterConfig{Epsilon: 0.01, L: 10})
		}
		size, rejected := 0, 0
		for _, cs := range tk.Candidates {
			if cs == nil {
				rejected++
				continue
			}
			size += len(cs)
		}
		kept := containsTruth(tk, split.TrueMapping)
		meanSize := 0.0
		if n := len(tk.Candidates) - rejected; n > 0 {
			meanSize = float64(size) / float64(n)
		}
		name := "no filter"
		if withFilter {
			name = "filter (ε=0.01, l=10)"
		}
		t.AddRow(name, fmt.Sprintf("%.2f", meanSize), fmt.Sprintf("%d", rejected), fmt.Sprintf("%.4f", kept))
	}
	return t
}
