package eval

import (
	"fmt"

	"dehealth/internal/linkage"
)

// LinkageExperiment regenerates the §VI proof-of-concept linkage attack:
// NameLink aggregation from the WebMD-like forum to the HB-like forum,
// AvatarLink from the WebMD-like forum to the external social directory,
// and the cross-validation overlap between the two — the paper's headline
// numbers are 1676 cross-forum links, 347/2805 (12.4%) avatar links, 137
// users found by both, and 33.4% of avatar-linked users reached on 2+
// services.
func LinkageExperiment(c *Corpora) Table {
	model := linkage.NewEntropyModel(2)
	model.Train(c.Directory.Usernames())

	nameCfg := linkage.DefaultNameLinkConfig()
	crossPairs := linkage.CrossForumNameLink(c.WebMD, c.HB, model, nameCfg)
	crossCorrect, crossTotal := linkage.ScoreCrossForum(c.WebMD, c.HB, crossPairs)
	hbGain := linkage.AggregateCrossForum(c.WebMD, c.HB, crossPairs)

	bsPairs := linkage.CrossForumNameLink(c.WebMD, c.BoneSmart, model, nameCfg)
	bsGain := linkage.AggregateCrossForum(c.WebMD, c.BoneSmart, bsPairs)

	usable := linkage.UsableAvatars(c.WebMD)
	avLinks := linkage.AvatarLink(c.WebMD, c.Directory, linkage.DefaultAvatarLinkConfig())
	avCorrect, avTotal := linkage.Score(c.WebMD, c.Directory, avLinks)

	nmLinks := linkage.NameLink(c.WebMD, c.Directory, model, nameCfg)
	dossiers := linkage.Aggregate(c.WebMD, c.Directory, avLinks, nmLinks)
	enriched := linkage.EnrichFromPeopleSearch(dossiers, c.Directory, "whitepages")

	// Users linked both cross-forum and to a real person.
	crossSet := map[int]bool{}
	for _, p := range crossPairs {
		crossSet[p[0]] = true
	}
	avSet := map[int]bool{}
	for _, l := range avLinks {
		avSet[l.User] = true
	}
	both := 0
	for u := range avSet {
		if crossSet[u] {
			both++
		}
	}
	// The paper's ">= 33.4% on 2+ services" counts among the avatar-linked
	// population (its 347), so restrict the numerator's denominator to it.
	multiService, avatarDossiers := 0, 0
	for _, d := range dossiers {
		if !avSet[d.User] {
			continue
		}
		avatarDossiers++
		if len(d.Services) >= 2 {
			multiService++
		}
	}
	withName, withPhone := 0, 0
	for _, d := range dossiers {
		if d.FullName != "" {
			withName++
		}
		if d.Phone != "" {
			withPhone++
		}
	}

	t := Table{
		Title:  "§VI linkage attack (measured vs paper)",
		Header: []string{"quantity", "measured", "paper (at 89,393 users)"},
	}
	t.AddRow("webmd users", fmt.Sprintf("%d", c.WebMD.NumUsers()), "89,393")
	t.AddRow("cross-forum username links (webmd->hb)", fmt.Sprintf("%d", crossTotal), "1,676")
	t.AddRow("cross-forum link precision", ratio(crossCorrect, crossTotal), "manually validated (~1.0)")
	t.AddRow("webmd users gaining a location via hb", fmt.Sprintf("%d", hbGain.GainedLocation), "info aggregation (§VI-A)")
	t.AddRow("cross-forum links webmd->bonesmart", fmt.Sprintf("%d", bsGain.Pairs), "info aggregation (§VI-A)")
	t.AddRow("webmd users gaining an age via bonesmart", fmt.Sprintf("%d", bsGain.GainedAge), "info aggregation (§VI-A)")
	t.AddRow("usable avatars after filtering", fmt.Sprintf("%d", len(usable)), "2,805")
	t.AddRow("avatar links to real people", fmt.Sprintf("%d", avTotal), "347")
	t.AddRow("avatar link rate among usable", ratio(avTotal, len(usable)), "0.124")
	t.AddRow("avatar link precision", ratio(avCorrect, avTotal), "manually validated (~1.0)")
	t.AddRow("users linked by both techniques", fmt.Sprintf("%d", both), "137")
	t.AddRow("avatar-linked users on 2+ services", ratioF(multiService, avatarDossiers), ">= 0.334")
	t.AddRow("dossiers enriched via people search", fmt.Sprintf("%d", enriched), "Whitepages profiles (§VI-B)")
	t.AddRow("dossiers with full name", ratioF(withName, len(dossiers)), "most of 347")
	t.AddRow("dossiers with phone number", ratioF(withPhone, len(dossiers)), "most of 347")
	return t
}

// EnrichedDossiers returns the aggregated dossiers of the linkage attack,
// for the example programs.
func EnrichedDossiers(c *Corpora) []linkage.Dossier {
	model := linkage.NewEntropyModel(2)
	model.Train(c.Directory.Usernames())
	avLinks := linkage.AvatarLink(c.WebMD, c.Directory, linkage.DefaultAvatarLinkConfig())
	nmLinks := linkage.NameLink(c.WebMD, c.Directory, model, linkage.DefaultNameLinkConfig())
	return linkage.Aggregate(c.WebMD, c.Directory, avLinks, nmLinks)
}

func ratio(num, den int) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", float64(num)/float64(den))
}

func ratioF(num, den int) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", float64(num)/float64(den))
}
