package eval

import (
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, row []string, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", row[col], err)
	}
	return v
}

func TestAblationWeights(t *testing.T) {
	c := GenerateCorpora(SmallScale())
	tb := AblationWeights(c, 20)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The attribute-only configuration must beat degree-only and
	// distance-only — the finding behind the paper's c3 = 0.9 default.
	degreeOnly := cell(t, tb.Rows[0], 3)
	distanceOnly := cell(t, tb.Rows[1], 3)
	attrOnly := cell(t, tb.Rows[2], 3)
	if attrOnly < degreeOnly || attrOnly < distanceOnly {
		t.Errorf("attribute-only (%v) should dominate degree-only (%v) and distance-only (%v)",
			attrOnly, degreeOnly, distanceOnly)
	}
	for _, row := range tb.Rows {
		if v := cell(t, row, 3); v < 0 || v > 1 {
			t.Errorf("success %v out of range", v)
		}
	}
}

func TestAblationSelection(t *testing.T) {
	tb := AblationSelection(7)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	prevD, prevM := -1.0, -1.0
	for _, row := range tb.Rows {
		d := cell(t, row, 1)
		m := cell(t, row, 2)
		if d < prevD-1e-9 || m < prevM-1e-9 {
			t.Error("success must be monotone in K for both strategies")
		}
		prevD, prevM = d, m
	}
}

func TestAblationFilter(t *testing.T) {
	tb := AblationFilter(7)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	noFilter := cell(t, tb.Rows[0], 1)
	withFilter := cell(t, tb.Rows[1], 1)
	if withFilter > noFilter {
		t.Errorf("filtering must not grow candidate sets: %v -> %v", noFilter, withFilter)
	}
}

func TestDefenseExperiment(t *testing.T) {
	tb := DefenseExperiment(25, 12, 3)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	off := cell(t, tb.Rows[0], 1)
	aggressive := cell(t, tb.Rows[3], 1)
	if aggressive > off+0.05 {
		t.Errorf("aggressive scrubbing should not improve the attack: %v -> %v", off, aggressive)
	}
	if !strings.Contains(tb.Rows[3][0], "aggressive") {
		t.Error("row labels out of order")
	}
}
