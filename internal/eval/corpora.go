package eval

import (
	"math/rand"

	"dehealth/internal/corpus"
	"dehealth/internal/linkage"
	"dehealth/internal/synth"
)

// Scale sets the size of the regenerated evaluation universe. The paper's
// corpora hold 89,393 (WebMD) and 388,398 (HB) users; the default scale
// keeps the same shape statistics at laptop size. All experiments accept a
// Scale so the full-size run is a parameter change.
type Scale struct {
	// WebMDUsers and HBUsers are the forum account counts. BoneSmartUsers
	// sizes the third forum of §VI-A (0 = WebMDUsers/2).
	WebMDUsers, HBUsers, BoneSmartUsers int
	// OverlapFrac is the fraction of WebMD users who also hold an HB
	// account (drives the §VI cross-forum linkage).
	OverlapFrac float64
	// Seed drives the whole universe.
	Seed int64
}

// DefaultScale returns the laptop-size evaluation scale.
func DefaultScale() Scale {
	return Scale{WebMDUsers: 1200, HBUsers: 2400, OverlapFrac: 0.2, Seed: 1902}
}

// SmallScale returns a fast scale for tests.
func SmallScale() Scale {
	return Scale{WebMDUsers: 300, HBUsers: 500, OverlapFrac: 0.2, Seed: 1902}
}

// Corpora bundles the regenerated evaluation world: both forums, the
// ground-truth universe behind them, and the external-service directory.
type Corpora struct {
	Scale     Scale
	Universe  *synth.Universe
	WebMD, HB *corpus.Dataset
	// BoneSmart is the third forum (ages public) used by the §VI-A
	// information-aggregation experiment.
	BoneSmart *corpus.Dataset
	Directory *linkage.Directory
}

// GenerateCorpora builds the full evaluation world at the given scale.
func GenerateCorpora(s Scale) *Corpora {
	if s.BoneSmartUsers == 0 {
		s.BoneSmartUsers = s.WebMDUsers / 2
	}
	overlap := int(s.OverlapFrac * float64(s.WebMDUsers))
	uSize := s.WebMDUsers + s.HBUsers - overlap + s.WebMDUsers/2 // head-room for non-members
	u := synth.NewUniverse(uSize, s.Seed)
	rng := rand.New(rand.NewSource(s.Seed + 1))
	wm, hm := synth.OverlappingMembers(u, s.WebMDUsers, s.HBUsers, overlap, rng)
	webmd := synth.Generate(synth.WebMDLike(s.WebMDUsers, s.Seed+2), u, wm)
	hb := synth.Generate(synth.HBLike(s.HBUsers, s.Seed+3), u, hm)
	// BoneSmart members are drawn independently; overlap with WebMD arises
	// from the shared universe.
	bm := synth.Members(u, s.BoneSmartUsers, rng)
	bs := synth.Generate(synth.BoneSmartLike(s.BoneSmartUsers, s.Seed+5), u, bm)
	dir := synth.SocialDirectory(u, synth.DefaultServices(), s.Seed+4)
	return &Corpora{Scale: s, Universe: u, WebMD: webmd, HB: hb, BoneSmart: bs, Directory: dir}
}

// RefinedCorpus generates the small fixed-posts populations of the §V
// refined-DA experiments ("50 users each with 20 posts").
func RefinedCorpus(nUsers, postsPerUser int, seed int64) (*corpus.Dataset, *synth.Universe) {
	u := synth.NewUniverse(nUsers, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	members := synth.Members(u, nUsers, rng)
	cfg := synth.WebMDLike(nUsers, seed+2)
	cfg.FixedPosts = postsPerUser
	return synth.Generate(cfg, u, members), u
}
