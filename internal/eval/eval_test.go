package eval

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"dehealth/internal/core"
)

func TestTableRender(t *testing.T) {
	tb := Table{Title: "t", Header: []string{"a", "long-header"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	out := tb.String()
	if !strings.Contains(out, "long-header") || !strings.Contains(out, "333") {
		t.Errorf("render missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("rendered %d lines:\n%s", len(lines), out)
	}
}

func TestRenderSeries(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{0.5, 1}},
		{Name: "b", X: []float64{1, 2}, Y: []float64{0.25, 0.75}},
	}
	out := RenderSeries("title", s)
	for _, want := range []string{"title", "a", "b", "0.5000", "0.7500"} {
		if !strings.Contains(out, want) {
			t.Errorf("series render missing %q:\n%s", want, out)
		}
	}
	if got := RenderSeries("empty", nil); !strings.Contains(got, "no data") {
		t.Error("empty series render")
	}
}

func TestTopKSuccessCDF(t *testing.T) {
	tk := &core.TopKResult{TrueRank: []int{1, 3, 10, 0}}
	mapping := map[int]int{0: 5, 1: 6, 2: 7} // user 3 has no mapping
	got := TopKSuccessCDF(tk, mapping, []int{1, 3, 10})
	want := []float64{1.0 / 3, 2.0 / 3, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("cdf[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if out := TopKSuccessCDF(tk, nil, []int{1}); out[0] != 0 {
		t.Error("empty mapping must give zeros")
	}
}

func TestAccuracyFP(t *testing.T) {
	res := &core.DAResult{Mapping: []int{5, 9, -1, 2}}
	mapping := map[int]int{0: 5, 1: 6, 2: 7}
	// user 0 correct; user 1 wrong (FP); user 2 rejected (no FP);
	// user 3 has no truth and was mapped (FP).
	acc, fp := AccuracyFP(res, mapping)
	if math.Abs(acc-1.0/3) > 1e-12 {
		t.Errorf("accuracy = %v, want 1/3", acc)
	}
	if math.Abs(fp-0.5) > 1e-12 {
		t.Errorf("fp = %v, want 0.5", fp)
	}
}

func TestGenerateCorporaSmall(t *testing.T) {
	c := GenerateCorpora(SmallScale())
	if c.WebMD.NumUsers() != 300 || c.HB.NumUsers() != 500 {
		t.Fatalf("sizes %d/%d", c.WebMD.NumUsers(), c.HB.NumUsers())
	}
	if err := c.WebMD.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.HB.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Directory.Profiles) == 0 {
		t.Error("no directory profiles")
	}
	// Cross-forum overlap exists (ground truth).
	hbIdent := map[int]bool{}
	for _, u := range c.HB.Users {
		hbIdent[u.TrueIdentity] = true
	}
	shared := 0
	for _, u := range c.WebMD.Users {
		if hbIdent[u.TrueIdentity] {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no shared persons between forums")
	}
}

func TestFig1Fig2Headlines(t *testing.T) {
	c := GenerateCorpora(SmallScale())
	s1, t1 := Fig1(c)
	if len(s1) != 2 {
		t.Fatalf("fig1 series = %d", len(s1))
	}
	// CDFs are monotone nondecreasing and end at 1.
	for _, s := range s1 {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1]-1e-12 {
				t.Errorf("fig1 %s CDF not monotone", s.Name)
			}
		}
		if s.Y[len(s.Y)-1] < 0.95 {
			t.Errorf("fig1 %s CDF tail = %v", s.Name, s.Y[len(s.Y)-1])
		}
	}
	if len(t1.Rows) != 2 {
		t.Error("fig1 table rows")
	}

	s2, t2 := Fig2(c)
	for _, s := range s2 {
		sum := 0.0
		for _, y := range s.Y {
			sum += y
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("fig2 %s histogram sums to %v", s.Name, sum)
		}
	}
	if len(t2.Rows) != 2 {
		t.Error("fig2 table rows")
	}
}

func TestTable1(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 13 {
		t.Errorf("table1 rows = %d, want 13 categories", len(tb.Rows))
	}
	out := tb.String()
	for _, want := range []string{"function-words", "337", "misspelled-words", "248"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestFig7Fig8(t *testing.T) {
	c := GenerateCorpora(SmallScale())
	s, tb := Fig7(c)
	if len(s) != 2 || len(tb.Rows) != 2 {
		t.Fatal("fig7 shape")
	}
	for _, series := range s {
		last := series.Y[len(series.Y)-1]
		if last < 0.99 {
			t.Errorf("fig7 %s CDF tail %v", series.Name, last)
		}
	}
	t8 := Fig8(c)
	if len(t8.Rows) != 4 {
		t.Errorf("fig8 rows = %d, want 4 thresholds", len(t8.Rows))
	}
}

func TestFig3SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 is slow")
	}
	c := GenerateCorpora(Scale{WebMDUsers: 150, HBUsers: 150, OverlapFrac: 0.2, Seed: 5})
	series := Fig3(c, []int{1, 10, 50, 150})
	if len(series) != 6 {
		t.Fatalf("fig3 series = %d, want 6", len(series))
	}
	for _, s := range series {
		// Monotone in K and bounded.
		for i := range s.Y {
			if s.Y[i] < 0 || s.Y[i] > 1 {
				t.Fatalf("%s: out of range %v", s.Name, s.Y[i])
			}
			if i > 0 && s.Y[i] < s.Y[i-1]-1e-12 {
				t.Fatalf("%s: not monotone in K", s.Name)
			}
		}
		// With K = |V2| success must be total.
		if s.Y[len(s.Y)-1] < 0.999 {
			t.Errorf("%s: success at K=n2 is %v, want 1", s.Name, s.Y[len(s.Y)-1])
		}
	}
}

func TestRefinedCorpus(t *testing.T) {
	d, u := RefinedCorpus(20, 6, 3)
	if d.NumUsers() != 20 || d.NumPosts() != 120 {
		t.Errorf("refined corpus %d users / %d posts", d.NumUsers(), d.NumPosts())
	}
	if u == nil {
		t.Error("universe missing")
	}
}

func TestTheoryExperimentSound(t *testing.T) {
	tb := TheoryExperiment(2000)
	if len(tb.Rows) == 0 {
		t.Fatal("empty theory table")
	}
	// Estimates (even columns after bounds) must dominate bounds.
	for _, row := range tb.Rows {
		check := func(boundCol, estCol int) {
			var b, e float64
			if _, err := fmtSscan(row[boundCol], &b); err != nil {
				t.Fatalf("bad bound cell %q", row[boundCol])
			}
			if _, err := fmtSscan(row[estCol], &e); err != nil {
				t.Fatalf("bad estimate cell %q", row[estCol])
			}
			if e < b-0.05 {
				t.Errorf("estimate %v below bound %v (cols %d/%d)", e, b, estCol, boundCol)
			}
		}
		check(4, 5)
		check(6, 7)
		check(8, 9)
		check(10, 11)
	}
}

// fmtSscan wraps fmt.Sscan for the theory-table checks.
func fmtSscan(s string, out *float64) (int, error) {
	return fmt.Sscan(s, out)
}

func TestLinkageExperimentRuns(t *testing.T) {
	c := GenerateCorpora(SmallScale())
	if c.BoneSmart == nil || c.BoneSmart.NumUsers() == 0 {
		t.Fatal("BoneSmart corpus missing")
	}
	tb := LinkageExperiment(c)
	if len(tb.Rows) < 10 {
		t.Errorf("linkage table has %d rows", len(tb.Rows))
	}
	out := tb.String()
	for _, want := range []string{"cross-forum", "usable avatars", "bonesmart"} {
		if !strings.Contains(out, want) {
			t.Errorf("linkage table missing %q", want)
		}
	}
}
