package eval

import (
	"fmt"
	"math/rand"

	"dehealth/internal/core"
	"dehealth/internal/corpus"
	"dehealth/internal/features"
	"dehealth/internal/graph"
	"dehealth/internal/ml"
	"dehealth/internal/similarity"
	"dehealth/internal/stylometry"
)

// defaultKs is the K grid the Fig.3/Fig.5 curves are sampled on.
var defaultKs = []int{1, 5, 10, 20, 50, 100, 200, 500, 1000}

// Fig1 regenerates the Fig.1 statistics: the CDF of users by post count for
// both forums, plus the headline "<5 posts" fractions (paper: 87.3% WebMD,
// 75.4% HB) and posts-per-user means (5.66, 12.06).
func Fig1(c *Corpora) ([]Series, Table) {
	xs := []int{1, 2, 3, 4, 5, 10, 20, 50, 100, 200, 500}
	fx := make([]float64, len(xs))
	for i, x := range xs {
		fx[i] = float64(x)
	}
	series := []Series{
		{Name: "webmd", X: fx, Y: c.WebMD.PostCountCDF(xs)},
		{Name: "healthboards", X: fx, Y: c.HB.PostCountCDF(xs)},
	}
	t := Table{
		Title:  "Fig.1 headline statistics (measured vs paper)",
		Header: []string{"dataset", "frac users <5 posts", "paper", "mean posts/user", "paper"},
	}
	t.AddRow("webmd",
		fmt.Sprintf("%.3f", c.WebMD.FractionUsersWithFewerThan(5)), "0.873",
		fmt.Sprintf("%.2f", float64(c.WebMD.NumPosts())/float64(c.WebMD.NumUsers())), "5.66")
	t.AddRow("healthboards",
		fmt.Sprintf("%.3f", c.HB.FractionUsersWithFewerThan(5)), "0.754",
		fmt.Sprintf("%.2f", float64(c.HB.NumPosts())/float64(c.HB.NumUsers())), "12.06")
	return series, t
}

// Fig2 regenerates the Fig.2 statistics: the post-length distribution
// (fraction of posts per 50-word bin up to 800 words) and the mean lengths
// (paper: 127.59 WebMD, 147.24 HB).
func Fig2(c *Corpora) ([]Series, Table) {
	const binW, maxLen = 50, 800
	mk := func(d *corpus.Dataset, name string) Series {
		h := d.PostLengthHistogram(binW, maxLen)
		s := Series{Name: name}
		for i, f := range h {
			s.X = append(s.X, float64(i*binW))
			s.Y = append(s.Y, f)
		}
		return s
	}
	series := []Series{mk(c.WebMD, "webmd"), mk(c.HB, "healthboards")}
	t := Table{
		Title:  "Fig.2 headline statistics (measured vs paper)",
		Header: []string{"dataset", "mean post length (words)", "paper"},
	}
	t.AddRow("webmd", fmt.Sprintf("%.2f", c.WebMD.MeanPostLengthWords()), "127.59")
	t.AddRow("healthboards", fmt.Sprintf("%.2f", c.HB.MeanPostLengthWords()), "147.24")
	return series, t
}

// Table1 reports the stylometric feature inventory per category against the
// Table I counts. The POS-bigram block is data-driven (as in the paper), so
// it is fitted on a small sample corpus before counting.
func Table1() Table {
	ex := stylometry.New()
	sample, _ := RefinedCorpus(20, 10, 7)
	ex.FitBigrams(sample.Texts(), stylometry.DefaultMaxBigrams)
	counts := ex.CategoryCounts()
	t := Table{
		Title:  "Table I feature inventory (measured vs paper)",
		Header: []string{"category", "features", "paper"},
	}
	paper := []struct {
		cat   stylometry.Category
		count string
	}{
		{stylometry.CatLength, "3"},
		{stylometry.CatWordLength, "20"},
		{stylometry.CatVocabRichness, "5"},
		{stylometry.CatLetterFreq, "26"},
		{stylometry.CatDigitFreq, "10"},
		{stylometry.CatUppercase, "1"},
		{stylometry.CatSpecialChars, "21"},
		{stylometry.CatWordShape, "21 (ours: 5 shape classes)"},
		{stylometry.CatPunctuation, "10"},
		{stylometry.CatFunctionWords, "337"},
		{stylometry.CatPOSTags, "<2300 (ours: Penn tagset)"},
		{stylometry.CatPOSBigrams, "<2300^2 (data-driven cap)"},
		{stylometry.CatMisspellings, "248"},
	}
	for _, p := range paper {
		t.AddRow(string(p.cat), fmt.Sprintf("%d", counts[p.cat]), p.count)
	}
	return t
}

// Fig7 regenerates the degree-distribution CDFs of the correlation graphs.
func Fig7(c *Corpora) ([]Series, Table) {
	xs := []int{0, 1, 2, 5, 10, 20, 50, 100, 200, 500}
	fx := make([]float64, len(xs))
	for i, x := range xs {
		fx[i] = float64(x)
	}
	gw := graph.BuildCorrelation(c.WebMD)
	gh := graph.BuildCorrelation(c.HB)
	series := []Series{
		{Name: "webmd", X: fx, Y: gw.DegreeCDF(xs)},
		{Name: "healthboards", X: fx, Y: gh.DegreeCDF(xs)},
	}
	t := Table{
		Title:  "Fig.7 degree statistics",
		Header: []string{"dataset", "avg degree", "edges", "paper shape"},
	}
	t.AddRow("webmd", fmt.Sprintf("%.2f", gw.AverageDegree()), fmt.Sprintf("%d", gw.NumEdges()), "low degree, sparse")
	t.AddRow("healthboards", fmt.Sprintf("%.2f", gh.AverageDegree()), fmt.Sprintf("%d", gh.NumEdges()), "low degree, sparse")
	return series, t
}

// Fig8 regenerates the community-structure views of the WebMD correlation
// graph at the Appendix B degree thresholds (0, 11, 21, 31): node counts,
// connected components and label-propagation communities. The paper reports
// a disconnected graph with roughly 10–100 communities at every threshold.
func Fig8(c *Corpora) Table {
	g := graph.BuildCorrelation(c.WebMD)
	t := Table{
		Title:  "Fig.8 WebMD community structure",
		Header: []string{"min degree", "nodes", "edges", "components", "communities"},
	}
	for _, minDeg := range []int{0, 11, 21, 31} {
		sub, kept := g.DegreeFilter(minDeg)
		_, comps := sub.Components()
		rng := rand.New(rand.NewSource(8))
		_, comms := sub.LabelPropagation(rng, 50)
		t.AddRow(
			fmt.Sprintf("%d", minDeg),
			fmt.Sprintf("%d", len(kept)),
			fmt.Sprintf("%d", sub.NumEdges()),
			fmt.Sprintf("%d", comps),
			fmt.Sprintf("%d", comms),
		)
	}
	return t
}

// Fig3 regenerates the closed-world Top-K DA success CDFs: for each forum
// and each auxiliary fraction (50%, 70%, 90%), the fraction of anonymized
// users whose true mapping falls in their Top-K candidate set.
func Fig3(c *Corpora, ks []int) []Series {
	if ks == nil {
		ks = defaultKs
	}
	fx := make([]float64, len(ks))
	for i, k := range ks {
		fx[i] = float64(k)
	}
	var out []Series
	for _, ds := range []struct {
		name string
		d    *corpus.Dataset
	}{{"webmd", c.WebMD}, {"healthboards", c.HB}} {
		for _, frac := range []float64{0.5, 0.7, 0.9} {
			rng := rand.New(rand.NewSource(c.Scale.Seed + int64(frac*100)))
			split := corpus.SplitClosedWorld(ds.d, frac, rng)
			anonS, auxS := features.BuildPair(split.Anon, split.Aux, 200, features.Options{})
			p := core.NewPipelineFromStore(anonS, auxS, similarity.DefaultConfig())
			maxK := ks[len(ks)-1]
			tk := p.TopK(maxK, core.DirectSelection, split.TrueMapping)
			out = append(out, Series{
				Name: fmt.Sprintf("%s-%d%%", ds.name, int(frac*100)),
				X:    fx,
				Y:    TopKSuccessCDF(tk, split.TrueMapping, ks),
			})
		}
	}
	return out
}

// Fig5 regenerates the open-world Top-K DA success CDFs for overlapping
// user ratios 50%, 70% and 90% on both forums.
func Fig5(c *Corpora, ks []int) []Series {
	if ks == nil {
		ks = defaultKs
	}
	fx := make([]float64, len(ks))
	for i, k := range ks {
		fx[i] = float64(k)
	}
	var out []Series
	for _, ds := range []struct {
		name string
		d    *corpus.Dataset
	}{{"webmd", c.WebMD}, {"healthboards", c.HB}} {
		for _, ratio := range []float64{0.5, 0.7, 0.9} {
			rng := rand.New(rand.NewSource(c.Scale.Seed + int64(ratio*1000)))
			split := corpus.OpenWorldOverlap(ds.d, ratio, rng)
			anonS, auxS := features.BuildPair(split.Anon, split.Aux, 200, features.Options{})
			p := core.NewPipelineFromStore(anonS, auxS, similarity.DefaultConfig())
			maxK := ks[len(ks)-1]
			tk := p.TopK(maxK, core.DirectSelection, split.TrueMapping)
			out = append(out, Series{
				Name: fmt.Sprintf("%s-%d%%", ds.name, int(ratio*100)),
				X:    fx,
				Y:    TopKSuccessCDF(tk, split.TrueMapping, ks),
			})
		}
	}
	return out
}

// RefinedConfig parametrizes the Fig.4/Fig.6 refined-DA experiments.
type RefinedConfig struct {
	// Users is the population size (paper: 50 closed-world, 100 open-world
	// per side).
	Users int
	// PostsPerUser is the per-user post count (20 or 40).
	PostsPerUser int
	// Ks are the De-Health candidate-set sizes to evaluate.
	Ks []int
	// Runs averages over this many independent populations (paper: 10).
	Runs int
	// Seed drives everything.
	Seed int64
	// MaxBigrams caps the POS-bigram block (smaller = faster).
	MaxBigrams int
	// R is the mean-verification margin for Fig.6. The paper uses r = 0.25
	// on the WebMD similarity scale; on the synthetic corpora's compressed
	// score scale the equivalent operating point is r ≈ 0.06 (see
	// EXPERIMENTS.md), which is the default here.
	R float64
}

// classifierSpec names a classifier factory.
type classifierSpec struct {
	name string
	mk   func() ml.Classifier
}

func refinedClassifiers() []classifierSpec {
	return []classifierSpec{
		{"KNN", func() ml.Classifier { return ml.NewKNN(3) }},
		{"SMO", func() ml.Classifier { return ml.NewSMO(ml.SMOConfig{C: 1, Seed: 11}) }},
	}
}

// Fig4 regenerates the closed-world refined-DA accuracy comparison: the
// Stylometry baseline versus De-Health with K in cfg.Ks, for KNN and SMO,
// at 10 and 20 training posts per user. Rows are labelled like the paper's
// x-axis ("KNN-10", "SMO-20", ...).
func Fig4(cfg RefinedConfig) Table {
	if cfg.Users == 0 {
		cfg.Users = 50
	}
	if len(cfg.Ks) == 0 {
		cfg.Ks = []int{5, 10, 15, 20}
	}
	if cfg.Runs == 0 {
		cfg.Runs = 3
	}
	if cfg.MaxBigrams == 0 {
		cfg.MaxBigrams = 100
	}
	t := Table{
		Title:  "Fig.4 closed-world refined DA accuracy",
		Header: []string{"setting", "Stylometry"},
	}
	for _, k := range cfg.Ks {
		t.Header = append(t.Header, fmt.Sprintf("De-Health(K=%d)", k))
	}

	// One split — and therefore one feature store and one Top-K result per
	// K — is shared by every classifier of a (posts, run) cell; only the
	// refined-DA phase differs per classifier.
	specs := refinedClassifiers()
	for _, posts := range []int{20, 40} {
		train := posts / 2
		accSty := make([]float64, len(specs))
		accDH := make([][]float64, len(specs))
		for si := range specs {
			accDH[si] = make([]float64, len(cfg.Ks))
		}
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + int64(run*1000+posts)
			d, _ := RefinedCorpus(cfg.Users, posts, seed)
			rng := rand.New(rand.NewSource(seed + 5))
			split := corpus.SplitClosedWorld(d, 0.5, rng)
			simCfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}
			anonS, auxS := features.BuildPair(split.Anon, split.Aux, cfg.MaxBigrams, features.Options{})
			p := core.NewPipelineFromStore(anonS, auxS, simCfg)
			tks := make([]*core.TopKResult, len(cfg.Ks))
			for ki, k := range cfg.Ks {
				tks[ki] = p.TopK(k, core.DirectSelection, split.TrueMapping)
			}

			for si, spec := range specs {
				opt := core.RefineOptions{NewClassifier: spec.mk, Scheme: core.ClosedWorld, Seed: seed}
				if sty, err := p.StylometryBaseline(opt); err == nil {
					a, _ := AccuracyFP(sty, split.TrueMapping)
					accSty[si] += a
				}
				for ki := range cfg.Ks {
					if res, err := p.RefinedDA(tks[ki], opt); err == nil {
						a, _ := AccuracyFP(res, split.TrueMapping)
						accDH[si][ki] += a
					}
				}
			}
		}
		for si, spec := range specs {
			row := []string{
				fmt.Sprintf("%s-%d", spec.name, train),
				fmt.Sprintf("%.3f", accSty[si]/float64(cfg.Runs)),
			}
			for ki := range cfg.Ks {
				row = append(row, fmt.Sprintf("%.3f", accDH[si][ki]/float64(cfg.Runs)))
			}
			t.AddRow(row...)
		}
	}
	return t
}

// Fig6 regenerates the open-world refined-DA comparison: accuracy and
// false-positive rate for overlap ratios 50%, 70% and 90%, using the
// mean-verification scheme with r = 0.25 (the paper's setting). It returns
// the accuracy table and the FP-rate table.
func Fig6(cfg RefinedConfig) (Table, Table) {
	if cfg.Users == 0 {
		cfg.Users = 100
	}
	if cfg.PostsPerUser == 0 {
		cfg.PostsPerUser = 40
	}
	if len(cfg.Ks) == 0 {
		cfg.Ks = []int{5, 10, 15, 20}
	}
	if cfg.Runs == 0 {
		cfg.Runs = 3
	}
	if cfg.MaxBigrams == 0 {
		cfg.MaxBigrams = 100
	}
	if cfg.R == 0 {
		cfg.R = 0.06
	}
	acc := Table{Title: "Fig.6a open-world DA accuracy", Header: []string{"setting", "Stylometry"}}
	fpt := Table{Title: "Fig.6b open-world DA FP rate", Header: []string{"setting", "Stylometry"}}
	for _, k := range cfg.Ks {
		h := fmt.Sprintf("De-Health(K=%d)", k)
		acc.Header = append(acc.Header, h)
		fpt.Header = append(fpt.Header, h)
	}

	// As in Fig4, the split, its feature store and the filtered Top-K
	// results are built once per (ratio, run) and shared by every
	// classifier; the filter is deterministic, so filtering each Top-K
	// result once up front matches the per-classifier filtering it replaces.
	specs := refinedClassifiers()
	for _, ratio := range []float64{0.5, 0.7, 0.9} {
		// Pool size n such that each side gets cfg.Users users:
		// x = ratio*U, y = (1-ratio)*U, n = x + 2y = U(2-ratio).
		pool := int(float64(cfg.Users) * (2 - ratio))
		accSty := make([]float64, len(specs))
		fpSty := make([]float64, len(specs))
		accDH := make([][]float64, len(specs))
		fpDH := make([][]float64, len(specs))
		for si := range specs {
			accDH[si] = make([]float64, len(cfg.Ks))
			fpDH[si] = make([]float64, len(cfg.Ks))
		}
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + int64(run*977+int(ratio*100))
			d, _ := RefinedCorpus(pool, cfg.PostsPerUser, seed)
			rng := rand.New(rand.NewSource(seed + 5))
			split := corpus.OpenWorldOverlap(d, ratio, rng)
			simCfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}
			anonS, auxS := features.BuildPair(split.Anon, split.Aux, cfg.MaxBigrams, features.Options{})
			p := core.NewPipelineFromStore(anonS, auxS, simCfg)
			tks := make([]*core.TopKResult, len(cfg.Ks))
			for ki, k := range cfg.Ks {
				tks[ki] = p.TopK(k, core.DirectSelection, split.TrueMapping)
				p.Filter(tks[ki], core.FilterConfig{Epsilon: 0.01, L: 10})
			}

			for si, spec := range specs {
				opt := core.RefineOptions{
					NewClassifier: spec.mk,
					Scheme:        core.MeanVerification,
					R:             cfg.R,
					Seed:          seed,
				}
				// The paper's Stylometry baseline maps every anonymized user
				// unconditionally; its high FP rate in Fig.6b is precisely the
				// absence of a verification scheme.
				styOpt := opt
				styOpt.Scheme = core.ClosedWorld
				if sty, err := p.StylometryBaseline(styOpt); err == nil {
					a, f := AccuracyFP(sty, split.TrueMapping)
					accSty[si] += a
					fpSty[si] += f
				}
				for ki := range cfg.Ks {
					if res, err := p.RefinedDA(tks[ki], opt); err == nil {
						a, f := AccuracyFP(res, split.TrueMapping)
						accDH[si][ki] += a
						fpDH[si][ki] += f
					}
				}
			}
		}
		n := float64(cfg.Runs)
		for si, spec := range specs {
			rowA := []string{fmt.Sprintf("%d%%-%s", int(ratio*100), spec.name), fmt.Sprintf("%.3f", accSty[si]/n)}
			rowF := []string{fmt.Sprintf("%d%%-%s", int(ratio*100), spec.name), fmt.Sprintf("%.3f", fpSty[si]/n)}
			for ki := range cfg.Ks {
				rowA = append(rowA, fmt.Sprintf("%.3f", accDH[si][ki]/n))
				rowF = append(rowF, fmt.Sprintf("%.3f", fpDH[si][ki]/n))
			}
			acc.AddRow(rowA...)
			fpt.AddRow(rowF...)
		}
	}
	return acc, fpt
}
