// Package eval provides the metrics, report rendering and experiment
// runners that regenerate every table and figure of the paper's evaluation
// (§II data statistics, §V closed/open-world DA, §VI linkage attack, §IV
// theory), at a configurable scale.
package eval

import (
	"fmt"
	"strings"

	"dehealth/internal/core"
)

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned ASCII.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// RenderSeries renders curves as aligned columns (x, then one y per series).
func RenderSeries(title string, series []Series) string {
	if len(series) == 0 {
		return title + "\n(no data)\n"
	}
	t := Table{Title: title, Header: []string{"x"}}
	for _, s := range series {
		t.Header = append(t.Header, s.Name)
	}
	for i := range series[0].X {
		row := []string{fmt.Sprintf("%g", series[0].X[i])}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.4f", s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

// TopKSuccessCDF evaluates the Fig.3/Fig.5 success curve: for each K in ks,
// the fraction of anonymized users with a true mapping whose mapping ranks
// within the top K by structural similarity.
func TopKSuccessCDF(tk *core.TopKResult, trueMapping map[int]int, ks []int) []float64 {
	out := make([]float64, len(ks))
	n := len(trueMapping)
	if n == 0 {
		return out
	}
	for i, k := range ks {
		hits := 0
		for u := range trueMapping {
			if r := tk.TrueRank[u]; r > 0 && r <= k {
				hits++
			}
		}
		out[i] = float64(hits) / float64(n)
	}
	return out
}

// AccuracyFP scores a refined-DA result per the paper's definitions:
// accuracy = Yc / Y, where Y is the number of anonymized users with true
// mappings and Yc those de-anonymized correctly; the false-positive rate is
// the fraction of all anonymized users that received an incorrect non-⊥
// identification (wrong user, or any user when no true mapping exists).
func AccuracyFP(result *core.DAResult, trueMapping map[int]int) (acc, fp float64) {
	y, yc, fps := 0, 0, 0
	for u, v := range result.Mapping {
		tv, has := trueMapping[u]
		if has {
			y++
			if v == tv {
				yc++
			}
		}
		if v >= 0 && (!has || v != tv) {
			fps++
		}
	}
	if y > 0 {
		acc = float64(yc) / float64(y)
	}
	if n := len(result.Mapping); n > 0 {
		fp = float64(fps) / float64(n)
	}
	return acc, fp
}
