package eval

import (
	"fmt"
	"math/rand"

	"dehealth/internal/anonymize"
	"dehealth/internal/core"
	"dehealth/internal/corpus"
	"dehealth/internal/features"
	"dehealth/internal/ml"
	"dehealth/internal/similarity"
)

// DefenseExperiment evaluates the style-scrubbing anonymizer (the defensive
// future work §VII leaves open) against the De-Health attack: for each
// scrub level applied to the anonymized release, it reports Top-10 DA
// success and refined DA accuracy on a closed-world split.
func DefenseExperiment(users, posts int, seed int64) Table {
	if users == 0 {
		users = 50
	}
	if posts == 0 {
		posts = 20
	}
	t := Table{
		Title:  "Defense: style scrubbing vs De-Health (closed world)",
		Header: []string{"scrub level", "top-10 success", "refined DA accuracy"},
	}
	levels := []struct {
		name  string
		level anonymize.Level
	}{
		{"off", anonymize.LevelOff},
		{"light (spelling, emoticons)", anonymize.LevelLight},
		{"standard (+case, punctuation)", anonymize.LevelStandard},
		{"aggressive (+specials, digits)", anonymize.LevelAggressive},
	}
	d, _ := RefinedCorpus(users, posts, seed)
	rng := rand.New(rand.NewSource(seed + 5))
	split := corpus.SplitClosedWorld(d, 0.5, rng)
	// The auxiliary side — the adversary's crawl of the live site — is
	// beyond the defender's reach, so its extractor and feature store are
	// the same at every scrub level: build them once. Only the scrubbed
	// anonymized release must be re-extracted per level.
	simCfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}
	ex := features.NewExtractor(split.Aux.Texts(), 100)
	auxS := features.Build(split.Aux, ex, features.Options{})
	for _, lv := range levels {
		anon := anonymize.ScrubDataset(split.Anon, lv.level)
		anonS := features.Build(anon, ex, features.Options{})
		p := core.NewPipelineFromStore(anonS, auxS, simCfg)
		tk := p.TopK(10, core.DirectSelection, split.TrueMapping)
		top10 := TopKSuccessCDF(tk, split.TrueMapping, []int{10})[0]

		res, err := p.RefinedDA(tk, core.RefineOptions{
			NewClassifier: func() ml.Classifier { return ml.NewKNN(3) },
			Scheme:        core.ClosedWorld,
			Seed:          seed,
		})
		acc := 0.0
		if err == nil {
			acc, _ = AccuracyFP(res, split.TrueMapping)
		}
		t.AddRow(lv.name, fmt.Sprintf("%.4f", top10), fmt.Sprintf("%.4f", acc))
	}
	return t
}
