package eval

import (
	"fmt"

	"dehealth/internal/analysis"
)

// TheoryExperiment validates the §IV bounds numerically: for a sweep of
// (gap, n2, K, α) configurations it reports each theorem's lower bound next
// to a Monte-Carlo estimate of the true success probability, plus the
// a.a.s. condition flags of the corollaries. Soundness requires
// estimate >= bound everywhere.
func TheoryExperiment(trials int) Table {
	if trials <= 0 {
		trials = 20000
	}
	t := Table{
		Title: "§IV theory validation (bounds vs Monte-Carlo estimates)",
		Header: []string{
			"λ", "λ̄", "δ", "n2",
			"T1 bound", "T1 est",
			"C2 bound", "exact est",
			"T3(K=10) bound", "topK est",
			"T2(α=0.1) bound", "group est",
			"aas pair", "aas exact",
		},
	}
	configs := []analysis.Params{
		{Lambda: 0.2, LambdaBar: 0.8, Theta: 0.1, ThetaBar: 0.1, N1: 100, N2: 100},
		{Lambda: 0.3, LambdaBar: 0.7, Theta: 0.15, ThetaBar: 0.15, N1: 100, N2: 100},
		{Lambda: 0.4, LambdaBar: 0.6, Theta: 0.2, ThetaBar: 0.2, N1: 100, N2: 100},
		{Lambda: 0.2, LambdaBar: 0.8, Theta: 0.1, ThetaBar: 0.1, N1: 1000, N2: 1000},
		{Lambda: 0.45, LambdaBar: 0.55, Theta: 0.3, ThetaBar: 0.3, N1: 100, N2: 100},
	}
	for i, p := range configs {
		sim := analysis.NewSimulator(p, int64(100+i))
		t.AddRow(
			fmt.Sprintf("%.2f", p.Lambda),
			fmt.Sprintf("%.2f", p.LambdaBar),
			fmt.Sprintf("%.2f", p.Delta()),
			fmt.Sprintf("%d", p.N2),
			fmt.Sprintf("%.4f", analysis.PairwiseSuccessLB(p)),
			fmt.Sprintf("%.4f", sim.EstimatePairwise(trials)),
			fmt.Sprintf("%.4f", analysis.ExactSuccessLB(p)),
			fmt.Sprintf("%.4f", sim.EstimateExact(trials/10)),
			fmt.Sprintf("%.4f", analysis.TopKSuccessLB(p, 10)),
			fmt.Sprintf("%.4f", sim.EstimateTopK(trials/10, 10)),
			fmt.Sprintf("%.4f", analysis.GroupSuccessLB(p, 0.1)),
			fmt.Sprintf("%.4f", sim.EstimateGroup(trials/20, 0.1)),
			fmt.Sprintf("%v", analysis.AASPairwiseCondition(p)),
			fmt.Sprintf("%v", analysis.AASExactCondition(p)),
		)
	}
	return t
}
