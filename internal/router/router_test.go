// Fault-injection tests of the router's robustness layer: a flakyShard
// HTTP proxy sits between the router and real serve.Server shard servers
// (stub backends with a deterministic score function) and injects the
// failure modes a live fleet produces — 5xx replies, dropped connections,
// long stalls, truncated bodies, dead listeners. Each documented
// degradation behavior has a test: failover-with-retry, hedging that
// races a stalled replica (and cancels the loser), deadline-to-partial,
// and all-replicas-down as the one typed outright failure.

package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dehealth/internal/core"
	"dehealth/internal/features"
	"dehealth/internal/serve"
	"dehealth/internal/shard"
)

// stubScore is the deterministic score of query u against GLOBAL
// auxiliary id g, shared by every stub shard so the test can compute the
// exact global answer independently.
func stubScore(u, g int) float64 {
	return float64((u*31+g*17)%101) / 7
}

// stubBackend serves one window [slice.Lo, slice.Hi) of the stub world
// under LOCAL ids, exactly like a slice-booted PreparedWorld: the serve
// layer's /internal/query handler owns the rebase to global.
type stubBackend struct {
	slice serve.ShardSlice
}

func (b stubBackend) Ingest([]features.UserPosts) ([]int, error) {
	return nil, errors.New("stub: no ingest")
}

func (b stubBackend) QueryUser(u, k int) ([]core.Candidate, error) {
	n := b.slice.Hi - b.slice.Lo
	cands := make([]shard.Candidate, n)
	for j := 0; j < n; j++ {
		cands[j] = shard.Candidate{User: j, Score: stubScore(u, b.slice.Lo+j)}
	}
	return shard.MergeTopK([][]shard.Candidate{cands}, k), nil
}

func (b stubBackend) QueryBatch(users []int, k int) ([][]core.Candidate, error) {
	out := make([][]core.Candidate, len(users))
	for i, u := range users {
		var err error
		if out[i], err = b.QueryUser(u, k); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (b stubBackend) Sizes() (int, int) { return 0, b.slice.Hi - b.slice.Lo }

func (b stubBackend) ShardSizes() []serve.ShardCount {
	return []serve.ShardCount{{Shard: 0, AuxUsers: b.slice.Hi - b.slice.Lo}}
}

func (b stubBackend) ShardSlice() (serve.ShardSlice, bool) { return b.slice, true }

// expectTopK is the test's independent global answer: all of [0, total)
// scored and merged under the selection order.
func expectTopK(u, k, total int) []shard.Candidate {
	cands := make([]shard.Candidate, total)
	for g := 0; g < total; g++ {
		cands[g] = shard.Candidate{User: g, Score: stubScore(u, g)}
	}
	return shard.MergeTopK([][]shard.Candidate{cands}, k)
}

// newShardServer boots a real serve.Server over a stub window and returns
// its base URL.
func newShardServer(t *testing.T, slice serve.ShardSlice) string {
	t.Helper()
	srv := serve.New(stubBackend{slice: slice}, serve.Config{FlushInterval: time.Millisecond})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		_ = srv.Close()
	})
	return hs.URL
}

// twoShards is the standard topology of these tests: 40 global aux users
// cut into [0, 20) and [20, 40).
func twoShards(t *testing.T) (urls []string, total int) {
	t.Helper()
	total = 40
	urls = []string{
		newShardServer(t, serve.ShardSlice{Shard: 0, Shards: 2, Lo: 0, Hi: 20, AuxTotal: total}),
		newShardServer(t, serve.ShardSlice{Shard: 1, Shards: 2, Lo: 20, Hi: 40, AuxTotal: total}),
	}
	return urls, total
}

// flakyShard is the fault-injection proxy: it forwards to a real shard
// server in "pass" mode and injects one failure mode otherwise. Canceled
// counts stalled requests aborted by the client (the router canceling a
// hedge loser); Forwarded counts requests that reached the target.
type flakyShard struct {
	target    string
	mode      atomic.Value // flakyMode
	delay     time.Duration
	canceled  atomic.Int64
	forwarded atomic.Int64
	srv       *httptest.Server
}

type flakyMode string

const (
	modePass     flakyMode = "pass"     // transparent proxy
	mode5xx      flakyMode = "5xx"      // 502 without touching the target
	modeDrop     flakyMode = "drop"     // accept, then slam the connection
	modeDelay    flakyMode = "delay"    // stall before forwarding
	modeTruncate flakyMode = "truncate" // forward, return half the body
)

func newFlakyShard(t *testing.T, target string, mode flakyMode, delay time.Duration) *flakyShard {
	t.Helper()
	f := &flakyShard{target: target, delay: delay}
	f.mode.Store(mode)
	f.srv = httptest.NewServer(http.HandlerFunc(f.handle))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *flakyShard) URL() string            { return f.srv.URL }
func (f *flakyShard) setMode(mode flakyMode) { f.mode.Store(mode) }
func (f *flakyShard) currentMode() flakyMode { return f.mode.Load().(flakyMode) }

func (f *flakyShard) handle(w http.ResponseWriter, r *http.Request) {
	// Drain the request body up front: the server only detects a client
	// abort (the router canceling a losing attempt) once no unread body
	// bytes remain buffered on the connection.
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	switch f.currentMode() {
	case mode5xx:
		http.Error(w, "injected upstream failure", http.StatusBadGateway)
	case modeDrop:
		hj, ok := w.(http.Hijacker)
		if !ok {
			http.Error(w, "no hijacker", http.StatusInternalServerError)
			return
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
	case modeDelay:
		select {
		case <-time.After(f.delay):
			f.forward(w, r, body, false)
		case <-r.Context().Done():
			f.canceled.Add(1)
		}
	case modeTruncate:
		f.forward(w, r, body, true)
	default:
		f.forward(w, r, body, false)
	}
}

func (f *flakyShard) forward(w http.ResponseWriter, r *http.Request, body []byte, truncate bool) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, f.target+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	reply, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	f.forwarded.Add(1)
	if truncate {
		reply = reply[:len(reply)/2]
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(reply)
}

// newRouter builds a test router with the prober off (tests flip failure
// modes and want deterministic passive behavior) unless cfg overrides.
func newRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = -1
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(r.Close)
	return r
}

func sameCandidates(t *testing.T, label string, want, got []shard.Candidate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d candidates, want %d\n got %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: candidate %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestRouterHappyPath: both shards answer, the merge matches the
// independently computed global top-k, and nothing is partial.
func TestRouterHappyPath(t *testing.T) {
	urls, total := twoShards(t)
	r := newRouter(t, Config{Shards: [][]string{{urls[0]}, {urls[1]}}})
	for u := 0; u < 5; u++ {
		res, err := r.QueryUser(context.Background(), u, 7, false)
		if err != nil {
			t.Fatalf("QueryUser(%d): %v", u, err)
		}
		if res.Partial || len(res.Missing) != 0 {
			t.Fatalf("QueryUser(%d): unexpected degradation: %+v", u, res)
		}
		sameCandidates(t, fmt.Sprintf("user %d", u), expectTopK(u, 7, total), res.Candidates)
	}
	br, err := r.QueryBatch(context.Background(), []int{1, 3, 4}, 5, false)
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	for i, u := range []int{1, 3, 4} {
		sameCandidates(t, fmt.Sprintf("batch user %d", u), expectTopK(u, 5, total), br.Results[i])
	}
}

// TestRouterFailoverRetry: the first replica 5xxes, the retry lands on
// the second, the answer is whole, and the failed replica leaves rotation.
func TestRouterFailoverRetry(t *testing.T) {
	urls, total := twoShards(t)
	bad := newFlakyShard(t, urls[0], mode5xx, 0)
	r := newRouter(t, Config{
		Shards:  [][]string{{bad.URL(), urls[0]}, {urls[1]}},
		Retries: 2,
	})
	res, err := r.QueryUser(context.Background(), 3, 6, false)
	if err != nil {
		t.Fatalf("QueryUser: %v", err)
	}
	if res.Partial {
		t.Fatalf("failover produced a partial result: %+v", res)
	}
	sameCandidates(t, "failover", expectTopK(3, 6, total), res.Candidates)
	st := r.Stats()
	if st.Retries < 1 {
		t.Fatalf("retries = %d, want >= 1", st.Retries)
	}
	if rep := st.Shards[0].Replicas[0]; rep.Healthy {
		t.Fatalf("failed replica %s still marked healthy", rep.URL)
	}
}

// TestRouterDropFailover and TestRouterTruncateFailover: a slammed
// connection and a half-written JSON body are both retryable replica
// failures, not client errors.
func TestRouterDropFailover(t *testing.T) {
	urls, total := twoShards(t)
	bad := newFlakyShard(t, urls[0], modeDrop, 0)
	r := newRouter(t, Config{Shards: [][]string{{bad.URL(), urls[0]}, {urls[1]}}, Retries: 2})
	res, err := r.QueryUser(context.Background(), 2, 4, false)
	if err != nil {
		t.Fatalf("QueryUser: %v", err)
	}
	sameCandidates(t, "drop failover", expectTopK(2, 4, total), res.Candidates)
}

func TestRouterTruncateFailover(t *testing.T) {
	urls, total := twoShards(t)
	bad := newFlakyShard(t, urls[0], modeTruncate, 0)
	r := newRouter(t, Config{Shards: [][]string{{bad.URL(), urls[0]}, {urls[1]}}, Retries: 2})
	res, err := r.QueryUser(context.Background(), 9, 4, false)
	if err != nil {
		t.Fatalf("QueryUser: %v", err)
	}
	sameCandidates(t, "truncate failover", expectTopK(9, 4, total), res.Candidates)
	if bad.forwarded.Load() < 1 {
		t.Fatal("truncating proxy never forwarded — mode not exercised")
	}
	if st := r.Stats(); st.Retries < 1 {
		t.Fatalf("retries = %d, want >= 1", st.Retries)
	}
}

// TestRouterHedgeWinnerCancelsLoser: replica 0 stalls far past the hedge
// delay, the hedge races on replica 1 and wins, and returning cancels the
// stalled attempt (the proxy observes its request context die).
func TestRouterHedgeWinnerCancelsLoser(t *testing.T) {
	urls, total := twoShards(t)
	slow := newFlakyShard(t, urls[0], modeDelay, 5*time.Second)
	r := newRouter(t, Config{
		Shards:       [][]string{{slow.URL(), urls[0]}, {urls[1]}},
		ShardTimeout: 10 * time.Second,
		HedgeDelay:   20 * time.Millisecond,
		Retries:      2,
	})
	start := time.Now()
	res, err := r.QueryUser(context.Background(), 4, 6, false)
	if err != nil {
		t.Fatalf("QueryUser: %v", err)
	}
	if res.Partial {
		t.Fatalf("hedged query degraded to partial: %+v", res)
	}
	sameCandidates(t, "hedged", expectTopK(4, 6, total), res.Candidates)
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("hedged query took %v — the stalled primary was awaited, not raced", took)
	}
	st := r.Stats()
	if st.Hedges < 1 || st.HedgeWins < 1 {
		t.Fatalf("hedges = %d, hedge wins = %d, want both >= 1", st.Hedges, st.HedgeWins)
	}
	// The loser's cancellation propagates asynchronously after QueryUser
	// returns; give it a moment.
	deadline := time.Now().Add(2 * time.Second)
	for slow.canceled.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if slow.canceled.Load() == 0 {
		t.Fatal("stalled attempt was never canceled after the hedge won")
	}
}

// TestRouterDeadlinePartial: a shard that cannot answer inside its
// deadline is dropped from the merge — the response is the other shard's
// exact answer, flagged partial with the missing shard listed.
func TestRouterDeadlinePartial(t *testing.T) {
	urls, _ := twoShards(t)
	slow := newFlakyShard(t, urls[1], modeDelay, 5*time.Second)
	r := newRouter(t, Config{
		Shards:       [][]string{{urls[0]}, {slow.URL()}},
		ShardTimeout: 100 * time.Millisecond,
		Retries:      -1, // no retries: one doomed attempt, then the deadline
	})
	res, err := r.QueryUser(context.Background(), 6, 5, false)
	if err != nil {
		t.Fatalf("QueryUser: %v", err)
	}
	if !res.Partial {
		t.Fatal("deadline exceeded but result not marked partial")
	}
	if len(res.Missing) != 1 || res.Missing[0] != 1 {
		t.Fatalf("missing shards = %v, want [1]", res.Missing)
	}
	// The partial answer is exact over shard 0's window [0, 20).
	want := make([]shard.Candidate, 20)
	for g := 0; g < 20; g++ {
		want[g] = shard.Candidate{User: g, Score: stubScore(6, g)}
	}
	sameCandidates(t, "partial", shard.MergeTopK([][]shard.Candidate{want}, 5), res.Candidates)
	if st := r.Stats(); st.Partials < 1 {
		t.Fatalf("partials = %d, want >= 1", st.Partials)
	}
}

// TestRouterAllShardsDown: when no shard can answer, the query fails with
// the typed error and the HTTP surface maps it to 503.
func TestRouterAllShardsDown(t *testing.T) {
	urls, _ := twoShards(t)
	dead0 := newFlakyShard(t, urls[0], mode5xx, 0)
	dead1 := newFlakyShard(t, urls[1], modeDrop, 0)
	r := newRouter(t, Config{
		Shards:       [][]string{{dead0.URL()}, {dead1.URL()}},
		ShardTimeout: 500 * time.Millisecond,
		Retries:      1,
	})
	_, err := r.QueryUser(context.Background(), 1, 5, false)
	if !errors.Is(err, ErrAllShardsDown) {
		t.Fatalf("err = %v, want ErrAllShardsDown", err)
	}

	front := httptest.NewServer(r.Handler())
	defer front.Close()
	resp, err := http.Post(front.URL+"/v1/query", "application/json", strings.NewReader(`{"user": 1, "k": 5}`))
	if err != nil {
		t.Fatalf("POST /v1/query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	// The degraded fleet also fails the router's own health check once
	// passive marking has evicted every replica.
	hresp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status = %d, want 503 after all replicas failed", hresp.StatusCode)
	}
}

// TestRouterProberValidatesIdentity: a replica URL pointing at the wrong
// shard is evicted by the health prober even though it answers queries.
func TestRouterProberValidatesIdentity(t *testing.T) {
	urls, _ := twoShards(t)
	// Shard 1's slot misconfigured to point at shard 0's server.
	r := newRouter(t, Config{
		Shards:         [][]string{{urls[0]}, {urls[0]}},
		HealthInterval: 10 * time.Millisecond,
	})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		st := r.Stats()
		if !st.Shards[1].Replicas[0].Healthy && st.Shards[0].Replicas[0].Healthy {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("prober kept the misconfigured replica healthy: %+v", r.Stats())
}

// TestRouterEmptyTopology: New rejects unusable configurations.
func TestRouterEmptyTopology(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoShards) {
		t.Fatalf("New(empty) err = %v, want ErrNoShards", err)
	}
	if _, err := New(Config{Shards: [][]string{{"http://a"}, {}}}); !errors.Is(err, ErrNoShards) {
		t.Fatalf("New(replica-less shard) err = %v, want ErrNoShards", err)
	}
}

// approxStub wraps stubBackend with a fixed approximate-tier counter
// block so router tests can exercise the /v1/stats roll-up.
type approxStub struct {
	stubBackend
	counters serve.ApproxCounters
}

func (b approxStub) ApproxCounters() (serve.ApproxCounters, bool) { return b.counters, true }

func newApproxShardServer(t *testing.T, slice serve.ShardSlice, c serve.ApproxCounters) string {
	t.Helper()
	srv := serve.New(approxStub{stubBackend{slice: slice}, c}, serve.Config{FlushInterval: time.Millisecond})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		_ = srv.Close()
	})
	return hs.URL
}

// TestRouterStatsApproxAggregate: the router's /v1/stats rolls the
// per-shard approx counter blocks into one fleet-wide sum, and a fleet
// without the tier reports no block at all.
func TestRouterStatsApproxAggregate(t *testing.T) {
	total := 40
	c0 := serve.ApproxCounters{Queries: 3, CursorsOpened: 12, PostingsSkipped: 100, Rescored: 6, BlocksChecked: 40, BlocksSkipped: 7, CursorsDemoted: 2}
	c1 := serve.ApproxCounters{Queries: 5, Fallbacks: 1, CursorsOpened: 20, PostingsSkipped: 50, Rescored: 9, BudgetExhausted: 1, BlocksChecked: 60, BlocksSkipped: 11, CursorsDemoted: 4}
	urls := []string{
		newApproxShardServer(t, serve.ShardSlice{Shard: 0, Shards: 2, Lo: 0, Hi: 20, AuxTotal: total}, c0),
		newApproxShardServer(t, serve.ShardSlice{Shard: 1, Shards: 2, Lo: 20, Hi: 40, AuxTotal: total}, c1),
	}
	r := newRouter(t, Config{Shards: [][]string{{urls[0]}, {urls[1]}}})
	st := r.Stats()
	if st.Approx == nil {
		t.Fatalf("stats carries no approx aggregate: %+v", st)
	}
	if st.Approx.ShardsReporting != 2 {
		t.Fatalf("shards_reporting = %d, want 2", st.Approx.ShardsReporting)
	}
	want := serve.ApproxCounters{Queries: 8, Fallbacks: 1, CursorsOpened: 32, PostingsSkipped: 150, Rescored: 15, BudgetExhausted: 1, BlocksChecked: 100, BlocksSkipped: 18, CursorsDemoted: 6}
	if st.Approx.ApproxCounters != want {
		t.Fatalf("approx aggregate = %+v, want %+v", st.Approx.ApproxCounters, want)
	}

	// The same roll-up on the wire: the front-door endpoint carries the
	// block with its coverage count.
	front := httptest.NewServer(r.Handler())
	defer front.Close()
	resp, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	var wire struct {
		Approx *struct {
			serve.ApproxCounters
			ShardsReporting int `json:"shards_reporting"`
		} `json:"approx"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatalf("decode /v1/stats: %v", err)
	}
	if wire.Approx == nil || wire.Approx.ShardsReporting != 2 || wire.Approx.ApproxCounters != want {
		t.Fatalf("wire approx block = %+v, want %+v with 2 shards reporting", wire.Approx, want)
	}

	// A fleet whose backends lack the tier omits the block entirely.
	plain, _ := twoShards(t)
	r2 := newRouter(t, Config{Shards: [][]string{{plain[0]}, {plain[1]}}})
	if st := r2.Stats(); st.Approx != nil {
		t.Fatalf("tier-less fleet reported an approx block: %+v", st.Approx)
	}
}
