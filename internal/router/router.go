// Package router is the distributed scatter-gather tier of the De-Health
// serving system: a thin HTTP router that fans QueryUser/QueryBatch out to
// N shard servers — dehealthd processes each booted from a per-shard
// snapshot slice (dehealth.SnapshotSlices) — and merges their replies
// under the global selection order (score descending, global id
// ascending). The merge goes through shard.MergeTopK, the same function
// the in-process fan-out uses, and every candidate id on the wire is
// global (shard servers rebase before replying), so the routed answer is
// bit-identical to the single-process sharded world at every shard count.
//
// On top of the scatter-gather the router owns the robustness layer the
// single process never needed:
//
//   - R replicas per shard behind health-checked round-robin: a
//     background prober admits replicas that answer GET /internal/shard
//     with the expected identity, and failures observed on the query path
//     mark replicas unhealthy passively.
//   - Bounded retry with doubling backoff: a failed shard call moves to
//     the next replica, up to Config.Retries extra attempts.
//   - Hedged requests: when a shard call is still unanswered after
//     Config.HedgeDelay, a second attempt races it on another replica and
//     the first reply wins — returning cancels the shared per-shard
//     context, which aborts the loser in flight.
//   - Per-shard deadlines with partial-result degradation: a shard that
//     cannot answer within Config.ShardTimeout is dropped from the merge
//     and reported in the response (partial: true plus the missing shard
//     list) instead of failing the query; only when every shard fails
//     does the query error with ErrAllShardsDown.
//
// The router holds no world state. It is safe for concurrent use and
// scales horizontally: any number of router processes can front the same
// shard fleet.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dehealth/internal/serve"
	"dehealth/internal/shard"
)

// ErrNoShards marks a Config with an empty or invalid topology.
var ErrNoShards = errors.New("router: no shards configured")

// ErrAllShardsDown is the one way a routed query fails outright: not a
// single shard produced an answer within its attempt budget and deadline.
// Anything short of that degrades to a partial result instead.
var ErrAllShardsDown = errors.New("router: no shard answered")

// Config tunes the router.
type Config struct {
	// Shards is the topology: Shards[i] lists the base URLs (scheme://host:port)
	// of shard i's replicas. Every shard needs at least one replica.
	Shards [][]string
	// K is the candidate-set size of queries that omit k (default 10).
	K int
	// ShardTimeout bounds one shard's whole scatter call — all retries and
	// hedges included (default 2s). A shard missing the deadline degrades
	// the response to partial instead of failing it.
	ShardTimeout time.Duration
	// HedgeDelay launches a second racing attempt on another replica when
	// a shard call is still unanswered after this long. Zero disables
	// hedging.
	HedgeDelay time.Duration
	// Retries is the number of extra attempts a failed shard call may
	// launch beyond the first (default 2). Hedges draw from the same
	// attempt budget.
	Retries int
	// RetryBackoff is the delay before the first retry, doubling per retry
	// (default 10ms).
	RetryBackoff time.Duration
	// HealthInterval is the background health-probe period (default 1s);
	// negative disables the prober, leaving only passive query-path
	// marking.
	HealthInterval time.Duration
	// Client is the HTTP client of all shard traffic (default
	// http.DefaultClient).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 10
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 2 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = time.Second
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	return c
}

// replica is one shard server behind the router, with its health bit. The
// bit starts true (optimistic: a replica proves itself by failing, so a
// cold router serves immediately) and is flipped by query-path failures
// and the prober.
type replica struct {
	base    string
	healthy atomic.Bool
}

// shardClient fans one shard's calls across its replicas round-robin.
type shardClient struct {
	id       int
	replicas []*replica
	next     atomic.Uint64
}

// pick returns the next replica in rotation, skipping unhealthy ones; when
// every replica is marked unhealthy it returns the rotation's candidate
// anyway — a last resort beats refusing to try, and a success on the query
// path is how a wrongly-marked replica re-proves itself fastest.
func (sc *shardClient) pick() *replica {
	n := uint64(len(sc.replicas))
	start := sc.next.Add(1) - 1
	for i := uint64(0); i < n; i++ {
		if rep := sc.replicas[(start+i)%n]; rep.healthy.Load() {
			return rep
		}
	}
	return sc.replicas[start%n]
}

// Router is the scatter-gather front of a shard fleet. Create with New,
// expose with Handler, stop with Close.
type Router struct {
	cfg    Config
	shards []*shardClient
	client *http.Client

	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	queries   atomic.Int64
	retries   atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	partials  atomic.Int64
}

// New validates the topology and starts the router (and its health
// prober, unless disabled).
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, ErrNoShards
	}
	r := &Router{cfg: cfg, client: cfg.Client, quit: make(chan struct{})}
	for i, urls := range cfg.Shards {
		if len(urls) == 0 {
			return nil, fmt.Errorf("%w: shard %d has no replicas", ErrNoShards, i)
		}
		sc := &shardClient{id: i}
		for _, u := range urls {
			rep := &replica{base: strings.TrimRight(u, "/")}
			rep.healthy.Store(true)
			sc.replicas = append(sc.replicas, rep)
		}
		r.shards = append(r.shards, sc)
	}
	if cfg.HealthInterval > 0 {
		r.wg.Add(1)
		go r.probeLoop()
	}
	return r, nil
}

// Close stops the health prober. In-flight queries finish on their own
// deadlines.
func (r *Router) Close() {
	r.once.Do(func() { close(r.quit) })
	r.wg.Wait()
}

// Result is one routed query's answer: the merged global top-k, plus the
// degradation report. Partial is true when at least one shard missed its
// deadline or exhausted its attempts; Missing lists those shards in
// ascending order. A partial answer is exact over the shards that
// answered — candidates from missing shards are absent, never replaced.
type Result struct {
	Candidates []shard.Candidate
	Partial    bool
	Missing    []int
}

// BatchResult is Result for a query batch: per-user candidate lists
// aligned with the request, under one shared degradation report (the
// scatter is per shard, not per user, so a missing shard is missing for
// the whole batch).
type BatchResult struct {
	Results [][]shard.Candidate
	Partial bool
	Missing []int
}

// QueryUser scatter-gathers the top-k candidates of anonymized user u
// across all shards.
func (r *Router) QueryUser(ctx context.Context, u, k int, approx bool) (Result, error) {
	br, err := r.QueryBatch(ctx, []int{u}, k, approx)
	if err != nil {
		return Result{}, err
	}
	return Result{Candidates: br.Results[0], Partial: br.Partial, Missing: br.Missing}, nil
}

// QueryBatch scatter-gathers a whole query batch: one /internal/query
// call per shard carrying every user (each shard server answers it as one
// pre-grouped kernel batch), merged per user under the global selection
// order.
func (r *Router) QueryBatch(ctx context.Context, users []int, k int, approx bool) (BatchResult, error) {
	if k <= 0 {
		k = r.cfg.K
	}
	r.queries.Add(int64(len(users)))
	q := &serve.InternalQuery{Users: users, K: k, Approx: approx}

	type shardOut struct {
		id  int
		res [][]shard.Candidate
		err error
	}
	ch := make(chan shardOut, len(r.shards))
	for _, sc := range r.shards {
		go func(sc *shardClient) {
			res, err := r.callShard(ctx, sc, q)
			ch <- shardOut{id: sc.id, res: res, err: err}
		}(sc)
	}

	parts := make([][][]shard.Candidate, 0, len(r.shards)) // per answering shard, per user
	var missing []int
	var lastErr error
	for range r.shards {
		out := <-ch
		if out.err != nil {
			missing = append(missing, out.id)
			lastErr = out.err
			continue
		}
		parts = append(parts, out.res)
	}
	if len(parts) == 0 {
		return BatchResult{}, fmt.Errorf("%w: %v", ErrAllShardsDown, lastErr)
	}

	br := BatchResult{Results: make([][]shard.Candidate, len(users))}
	perUser := make([][]shard.Candidate, len(parts))
	for i := range users {
		for j, p := range parts {
			perUser[j] = p[i]
		}
		br.Results[i] = shard.MergeTopK(perUser, k)
	}
	if len(missing) > 0 {
		sort.Ints(missing)
		br.Partial, br.Missing = true, missing
		r.partials.Add(1)
	}
	return br, nil
}

// callShard answers one shard's slice of the scatter under the shard
// deadline: a first attempt on the rotation's replica, retries with
// doubling backoff on failure, and (when configured) one or more hedged
// attempts racing slow replicas — all sharing one attempt budget of
// 1+Retries launches and one per-shard context, so the first reply to
// land cancels every other attempt still in flight when callShard
// returns.
func (r *Router) callShard(ctx context.Context, sc *shardClient, q *serve.InternalQuery) ([][]shard.Candidate, error) {
	sctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
	defer cancel() // the winner (or the error return) cancels the losers

	type attemptOut struct {
		res    [][]shard.Candidate
		err    error
		rep    *replica
		hedged bool
	}
	budget := 1 + r.cfg.Retries
	resCh := make(chan attemptOut, budget) // buffered: late losers never block
	launched, inflight := 0, 0
	launch := func(hedged bool) {
		rep := sc.pick()
		launched++
		inflight++
		go func() {
			res, err := r.post(sctx, sc, rep, q)
			resCh <- attemptOut{res: res, err: err, rep: rep, hedged: hedged}
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	if r.cfg.HedgeDelay > 0 {
		ht := time.NewTimer(r.cfg.HedgeDelay)
		defer ht.Stop()
		hedgeC = ht.C
	}
	var backoffC <-chan time.Time
	backoff := r.cfg.RetryBackoff
	var lastErr error
	for {
		select {
		case out := <-resCh:
			inflight--
			if out.err == nil {
				if out.hedged {
					r.hedgeWins.Add(1)
				}
				return out.res, nil
			}
			lastErr = out.err
			if sctx.Err() == nil {
				// A real replica failure, not fallout of our own deadline
				// or a won race: take the replica out of rotation until
				// the prober (or a last-resort success) restores it.
				out.rep.healthy.Store(false)
			}
			if launched < budget && backoffC == nil && sctx.Err() == nil {
				backoffC = time.After(backoff)
				backoff *= 2
			} else if inflight == 0 && backoffC == nil {
				return nil, fmt.Errorf("router: shard %d: %w", sc.id, lastErr)
			}
		case <-backoffC:
			backoffC = nil
			r.retries.Add(1)
			launch(false)
		case <-hedgeC:
			hedgeC = nil
			if launched < budget {
				r.hedges.Add(1)
				launch(true)
			}
		case <-sctx.Done():
			if lastErr == nil {
				lastErr = sctx.Err()
			}
			return nil, fmt.Errorf("router: shard %d: %w", sc.id, lastErr)
		}
	}
}

// post runs one attempt: POST the batch to a replica's /internal/query
// and decode the reply. Transport errors, non-200 statuses, truncated or
// malformed bodies, and identity mismatches all come back as errors — the
// caller treats every one as a retryable replica failure.
func (r *Router) post(ctx context.Context, sc *shardClient, rep *replica, q *serve.InternalQuery) ([][]shard.Candidate, error) {
	body, err := json.Marshal(q)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.base+"/internal/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("router: replica %s replied %d: %s", rep.base, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var reply serve.InternalQueryReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, fmt.Errorf("router: replica %s reply: %w", rep.base, err)
	}
	if reply.Shard != sc.id {
		return nil, fmt.Errorf("router: replica %s identifies as shard %d, want %d", rep.base, reply.Shard, sc.id)
	}
	if len(reply.Results) != len(q.Users) {
		return nil, fmt.Errorf("router: replica %s answered %d of %d users", rep.base, len(reply.Results), len(q.Users))
	}
	out := make([][]shard.Candidate, len(reply.Results))
	for i, cs := range reply.Results {
		row := make([]shard.Candidate, len(cs))
		for j, c := range cs {
			row[j] = shard.Candidate{User: c.User, Score: c.Score}
		}
		out[i] = row
	}
	return out, nil
}

// probeLoop is the background health prober: every HealthInterval it asks
// each replica GET /internal/shard and admits into (or evicts from)
// rotation based on the answer. The probe validates the advertised
// identity against the configured topology, so a replica URL pointing at
// the wrong shard — or at a fleet of a different shard count — never
// serves traffic.
func (r *Router) probeLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		r.probeAll()
		select {
		case <-ticker.C:
		case <-r.quit:
			return
		}
	}
}

func (r *Router) probeAll() {
	var wg sync.WaitGroup
	for _, sc := range r.shards {
		for _, rep := range sc.replicas {
			wg.Add(1)
			go func(sc *shardClient, rep *replica) {
				defer wg.Done()
				rep.healthy.Store(r.probe(sc, rep))
			}(sc, rep)
		}
	}
	wg.Wait()
}

func (r *Router) probe(sc *shardClient, rep *replica) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base+"/internal/shard", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var info serve.ShardInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return false
	}
	return info.Shard == sc.id && info.Shards == len(r.shards)
}

// ReplicaStatus is one replica's row in Stats.
type ReplicaStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// ShardStatus is one shard's row in Stats.
type ShardStatus struct {
	Shard    int             `json:"shard"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// ApproxAggregate is the fleet-wide roll-up of the shards' approximate-
// tier counter blocks: every serve.ApproxCounters field summed across the
// shards that reported one. ShardsReporting says how many shards the sum
// covers — when it is below the shard count the block is a partial view
// (a shard was unreachable or runs without the approximate tier).
type ApproxAggregate struct {
	serve.ApproxCounters
	ShardsReporting int `json:"shards_reporting"`
}

// Stats is the router's /v1/stats payload: the live health of the
// topology plus cumulative counters of the robustness layer. HedgeWins
// counts hedged attempts that beat the primary; Partials counts responses
// degraded by at least one missing shard.
type Stats struct {
	Shards    []ShardStatus `json:"shards"`
	Queries   int64         `json:"queries"`
	Retries   int64         `json:"retries"`
	Hedges    int64         `json:"hedges"`
	HedgeWins int64         `json:"hedge_wins"`
	Partials  int64         `json:"partials"`
	// Approx aggregates the per-shard approximate-tier counters; omitted
	// when no shard reports an approx block.
	Approx *ApproxAggregate `json:"approx,omitempty"`
}

// Stats snapshots the router counters and replica health, and polls each
// shard's first healthy replica for its approximate-tier counter block.
func (r *Router) Stats() Stats {
	st := Stats{
		Queries:   r.queries.Load(),
		Retries:   r.retries.Load(),
		Hedges:    r.hedges.Load(),
		HedgeWins: r.hedgeWins.Load(),
		Partials:  r.partials.Load(),
	}
	for _, sc := range r.shards {
		ss := ShardStatus{Shard: sc.id}
		for _, rep := range sc.replicas {
			ss.Replicas = append(ss.Replicas, ReplicaStatus{URL: rep.base, Healthy: rep.healthy.Load()})
		}
		st.Shards = append(st.Shards, ss)
	}
	st.Approx = r.approxAggregate()
	return st
}

// approxAggregate fans out to every shard in parallel and sums the approx
// counter blocks of those that report one. Counters are per replica, not
// replicated state, so the roll-up reads one replica per shard (the first
// healthy one, falling back to the first listed) rather than all of them:
// the numbers describe the tier's behavior, not an exact fleet census.
func (r *Router) approxAggregate() *ApproxAggregate {
	var (
		mu  sync.Mutex
		agg ApproxAggregate
		wg  sync.WaitGroup
	)
	for _, sc := range r.shards {
		rep := sc.replicas[0]
		for _, cand := range sc.replicas {
			if cand.healthy.Load() {
				rep = cand
				break
			}
		}
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			c, ok := r.fetchApprox(rep)
			if !ok {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			agg.ShardsReporting++
			agg.Queries += c.Queries
			agg.Fallbacks += c.Fallbacks
			agg.CursorsOpened += c.CursorsOpened
			agg.PostingsSkipped += c.PostingsSkipped
			agg.Rescored += c.Rescored
			agg.BudgetExhausted += c.BudgetExhausted
			agg.BlocksChecked += c.BlocksChecked
			agg.BlocksSkipped += c.BlocksSkipped
			agg.CursorsDemoted += c.CursorsDemoted
		}(rep)
	}
	wg.Wait()
	if agg.ShardsReporting == 0 {
		return nil
	}
	return &agg
}

// fetchApprox asks one replica's /v1/stats for its approx counter block.
func (r *Router) fetchApprox(rep *replica) (serve.ApproxCounters, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base+"/v1/stats", nil)
	if err != nil {
		return serve.ApproxCounters{}, false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return serve.ApproxCounters{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.ApproxCounters{}, false
	}
	var body struct {
		Approx *serve.ApproxCounters `json:"approx"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Approx == nil {
		return serve.ApproxCounters{}, false
	}
	return *body.Approx, true
}

// Healthy reports whether every shard currently has at least one healthy
// replica — the condition under which the router can promise non-partial
// answers.
func (r *Router) Healthy() bool {
	for _, sc := range r.shards {
		ok := false
		for _, rep := range sc.replicas {
			if rep.healthy.Load() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
