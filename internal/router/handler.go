// The router's public HTTP surface. It mirrors the shard servers' /v1
// query shapes (a router drop-in replaces a single dehealthd for query
// traffic) and adds the degradation report: partial responses carry
// "partial": true plus the missing shard list. Ingestion is not routed —
// the auxiliary world is immutable at serving time and anonymized-side
// growth belongs to the offline prepare → slice → redeploy cycle — so the
// router exposes no /v1/ingest.

package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"dehealth/internal/shard"
)

type queryWire struct {
	User   int  `json:"user"`
	K      int  `json:"k,omitempty"`
	Approx bool `json:"approx,omitempty"`
}

type batchWire struct {
	Users  []int `json:"users"`
	K      int   `json:"k,omitempty"`
	Approx bool  `json:"approx,omitempty"`
}

type candidateWire struct {
	User  int     `json:"user"`
	Score float64 `json:"score"`
}

type queryReplyWire struct {
	User       int             `json:"user"`
	Candidates []candidateWire `json:"candidates"`
	Partial    bool            `json:"partial,omitempty"`
	Missing    []int           `json:"missing_shards,omitempty"`
}

type batchReplyWire struct {
	Results [][]candidateWire `json:"results"`
	Partial bool              `json:"partial,omitempty"`
	Missing []int             `json:"missing_shards,omitempty"`
}

type errorWire struct {
	Error string `json:"error"`
}

// Handler returns the router's HTTP API:
//
//	POST /v1/query  {"user": 17, "k": 10}        -> {"user": 17, "candidates": [...], "partial": true, "missing_shards": [1]}
//	POST /v1/batch  {"users": [17, 4], "k": 10}  -> {"results": [[...], [...]], ...}
//	GET  /v1/stats                               -> Stats (topology health + robustness counters)
//	GET  /healthz                                -> 200 "ok" / 503 "degraded" (a shard has no healthy replica)
//
// Queries that no shard can answer get 503 with the error body; partial
// degradation is a 200 with the report fields set.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", r.handleQuery)
	mux.HandleFunc("POST /v1/batch", r.handleBatch)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !r.Healthy() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "degraded")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	var q queryWire
	if err := json.NewDecoder(req.Body).Decode(&q); err != nil {
		writeJSON(w, http.StatusBadRequest, errorWire{Error: "invalid query body: " + err.Error()})
		return
	}
	res, err := r.QueryUser(req.Context(), q.User, q.K, q.Approx)
	if err != nil {
		writeJSON(w, errorStatus(err), errorWire{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, queryReplyWire{
		User: q.User, Candidates: wireCandidates(res.Candidates),
		Partial: res.Partial, Missing: res.Missing,
	})
}

func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	var q batchWire
	if err := json.NewDecoder(req.Body).Decode(&q); err != nil {
		writeJSON(w, http.StatusBadRequest, errorWire{Error: "invalid batch body: " + err.Error()})
		return
	}
	if len(q.Users) == 0 {
		writeJSON(w, http.StatusOK, batchReplyWire{Results: [][]candidateWire{}})
		return
	}
	res, err := r.QueryBatch(req.Context(), q.Users, q.K, q.Approx)
	if err != nil {
		writeJSON(w, errorStatus(err), errorWire{Error: err.Error()})
		return
	}
	reply := batchReplyWire{Results: make([][]candidateWire, len(res.Results)), Partial: res.Partial, Missing: res.Missing}
	for i, cs := range res.Results {
		reply.Results[i] = wireCandidates(cs)
	}
	writeJSON(w, http.StatusOK, reply)
}

func wireCandidates(cs []shard.Candidate) []candidateWire {
	out := make([]candidateWire, len(cs))
	for i, c := range cs {
		out[i] = candidateWire{User: c.User, Score: c.Score}
	}
	return out
}

// errorStatus maps router errors to HTTP: a fleet that cannot answer is
// unavailability, not a client fault. Shard-side 400s (an out-of-range
// user id, say) surface through the retry layer's wrapped message but
// still arrive here as "no shard answered" — every replica rejected the
// request — so 503 with the underlying text is the honest mapping.
func errorStatus(err error) int {
	if errors.Is(err, ErrAllShardsDown) || errors.Is(err, ErrNoShards) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
