// Replica-churn stress: concurrent router queries race a replica that is
// repeatedly killed and restarted mid-stream. Run under -race in CI, this
// exercises every concurrent structure the router owns at once — the
// round-robin cursors, passive health marking, the background prober
// restoring the replica after each restart, and the retry layer absorbing
// the kills. With a second always-up replica per shard and a generous
// attempt budget, every query must come back whole: churn may cost
// retries, never answers.

package router

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRouterReplicaChurnStress(t *testing.T) {
	urls, total := twoShards(t)
	// Shard 0: a churning replica (killed and revived in a loop) plus a
	// stable one. Shard 1: stable.
	churn := newFlakyShard(t, urls[0], modePass, 0)
	r := newRouter(t, Config{
		Shards:         [][]string{{churn.URL(), urls[0]}, {urls[1]}},
		ShardTimeout:   10 * time.Second,
		Retries:        8,
		RetryBackoff:   time.Millisecond,
		HealthInterval: 5 * time.Millisecond, // prober races the churn by design
	})

	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		down := false
		for {
			select {
			case <-stop:
				churn.setMode(modePass)
				return
			case <-time.After(3 * time.Millisecond):
				if down {
					churn.setMode(modePass)
				} else {
					churn.setMode(modeDrop)
				}
				down = !down
			}
		}
	}()

	const workers, perWorker = 8, 25
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				u := (w*perWorker + i) % 16
				res, err := r.QueryUser(context.Background(), u, 5, false)
				if err != nil {
					errs <- fmt.Errorf("worker %d query %d: %v", w, i, err)
					return
				}
				if res.Partial {
					errs <- fmt.Errorf("worker %d query %d degraded to partial (missing %v) despite a healthy replica", w, i, res.Missing)
					return
				}
				want := expectTopK(u, 5, total)
				for j := range want {
					if res.Candidates[j] != want[j] {
						errs <- fmt.Errorf("worker %d query %d: candidate %d = %+v, want %+v", w, i, j, res.Candidates[j], want[j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churnWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.Fatalf("stats after churn: %+v", r.Stats())
	}
}
