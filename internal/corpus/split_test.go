package corpus

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// bigger returns a dataset with n users, user u having (u % 5) + 1 posts.
func bigger(n int) *Dataset {
	d := &Dataset{Name: "big"}
	for u := 0; u < n; u++ {
		d.Users = append(d.Users, User{ID: u, Name: "user" + string(rune('a'+u%26)), TrueIdentity: u})
	}
	for u := 0; u < n; u++ {
		for p := 0; p <= u%5; p++ {
			tid := (u + p) % (n/2 + 1)
			for tid >= len(d.Threads) {
				d.Threads = append(d.Threads, Thread{ID: len(d.Threads), Board: "b", Starter: u})
			}
			d.Posts = append(d.Posts, Post{
				ID: len(d.Posts), User: u, Thread: tid,
				Text: "post number " + string(rune('0'+p)) + " by some user talking about things",
			})
		}
	}
	return d
}

func TestSplitClosedWorldConservation(t *testing.T) {
	d := bigger(40)
	rng := rand.New(rand.NewSource(2))
	s := SplitClosedWorld(d, 0.5, rng)

	if err := s.Anon.Validate(); err != nil {
		t.Fatalf("anon invalid: %v", err)
	}
	if err := s.Aux.Validate(); err != nil {
		t.Fatalf("aux invalid: %v", err)
	}
	if s.Anon.NumPosts()+s.Aux.NumPosts() != d.NumPosts() {
		t.Errorf("posts not conserved: %d + %d != %d",
			s.Anon.NumPosts(), s.Aux.NumPosts(), d.NumPosts())
	}
}

func TestSplitClosedWorldMappingCorrect(t *testing.T) {
	d := bigger(40)
	rng := rand.New(rand.NewSource(3))
	s := SplitClosedWorld(d, 0.7, rng)
	if len(s.TrueMapping) == 0 {
		t.Fatal("no overlapping users")
	}
	for au, xu := range s.TrueMapping {
		if s.Anon.Users[au].TrueIdentity != s.Aux.Users[xu].TrueIdentity {
			t.Errorf("mapping %d->%d connects identities %d and %d",
				au, xu, s.Anon.Users[au].TrueIdentity, s.Aux.Users[xu].TrueIdentity)
		}
	}
}

func TestSplitClosedWorldAnonymizesNames(t *testing.T) {
	d := bigger(30)
	rng := rand.New(rand.NewSource(4))
	s := SplitClosedWorld(d, 0.5, rng)
	for _, u := range s.Anon.Users {
		if !strings.HasPrefix(u.Name, "anon-") {
			t.Errorf("anonymized user kept name %q", u.Name)
		}
	}
	for _, u := range s.Aux.Users {
		if strings.HasPrefix(u.Name, "anon-") {
			t.Errorf("auxiliary user was anonymized: %q", u.Name)
		}
	}
}

func TestSplitClosedWorldFractions(t *testing.T) {
	// Multi-post users split roughly auxFrac of posts to the aux side.
	d := bigger(200)
	rng := rand.New(rand.NewSource(5))
	s := SplitClosedWorld(d, 0.7, rng)
	frac := float64(s.Aux.NumPosts()) / float64(d.NumPosts())
	if math.Abs(frac-0.7) > 0.1 {
		t.Errorf("aux fraction = %v, want ~0.7", frac)
	}
}

func TestSplitClosedWorldPanics(t *testing.T) {
	d := bigger(5)
	rng := rand.New(rand.NewSource(1))
	for _, frac := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("auxFrac %v must panic", frac)
				}
			}()
			SplitClosedWorld(d, frac, rng)
		}()
	}
}

func TestOpenWorldOverlapRatios(t *testing.T) {
	d := bigger(300)
	for _, ratio := range []float64{0.5, 0.7, 0.9} {
		rng := rand.New(rand.NewSource(int64(ratio * 100)))
		s := OpenWorldOverlap(d, ratio, rng)
		if err := s.Anon.Validate(); err != nil {
			t.Fatalf("anon invalid: %v", err)
		}
		if err := s.Aux.Validate(); err != nil {
			t.Fatalf("aux invalid: %v", err)
		}
		// Side sizes should be near-equal.
		na, nx := s.Anon.NumUsers(), s.Aux.NumUsers()
		if math.Abs(float64(na-nx)) > float64(na)/5+2 {
			t.Errorf("ratio %v: uneven sides %d vs %d", ratio, na, nx)
		}
		// Overlap ratio should approximate the request.
		got := float64(s.NumOverlapping()) / float64(na)
		if math.Abs(got-ratio) > 0.15 {
			t.Errorf("ratio %v: overlap ratio = %v", ratio, got)
		}
		// Mappings connect the same identity.
		for au, xu := range s.TrueMapping {
			if s.Anon.Users[au].TrueIdentity != s.Aux.Users[xu].TrueIdentity {
				t.Fatalf("bad mapping at ratio %v", ratio)
			}
		}
	}
}

func TestOpenWorldNonOverlapExclusive(t *testing.T) {
	d := bigger(200)
	rng := rand.New(rand.NewSource(9))
	s := OpenWorldOverlap(d, 0.5, rng)
	// Identities present on both sides must exactly match the mapping.
	auxIdent := map[int]int{}
	for i, u := range s.Aux.Users {
		auxIdent[u.TrueIdentity] = i
	}
	shared := 0
	for ai, u := range s.Anon.Users {
		if xi, ok := auxIdent[u.TrueIdentity]; ok {
			shared++
			if s.TrueMapping[ai] != xi {
				t.Errorf("identity %d on both sides but mapping says %d vs %d",
					u.TrueIdentity, s.TrueMapping[ai], xi)
			}
		}
	}
	if shared != s.NumOverlapping() {
		t.Errorf("shared identities %d != mapping size %d", shared, s.NumOverlapping())
	}
}

// Property: splits never lose or duplicate a post text, for any seed.
func TestSplitConservationProperty(t *testing.T) {
	d := bigger(60)
	count := func(ds *Dataset, m map[string]int) {
		for _, p := range ds.Posts {
			m[p.Text+"|"+ds.Users[p.User].Name] = 0 // name differs; count text only
		}
	}
	_ = count
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := SplitClosedWorld(d, 0.5, rng)
		total := map[string]int{}
		for _, p := range d.Posts {
			total[p.Text]++
		}
		got := map[string]int{}
		for _, p := range s.Anon.Posts {
			got[p.Text]++
		}
		for _, p := range s.Aux.Posts {
			got[p.Text]++
		}
		if len(got) != len(total) {
			return false
		}
		for k, v := range total {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
