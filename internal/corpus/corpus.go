// Package corpus defines the dataset model shared by the whole pipeline: a
// health forum is a set of users, threads (topics) and posts. It also
// provides the dataset surgery the paper's evaluation needs — closed-world
// percentage splits, open-world overlap constructions (§V-B footnote 10) —
// and the corpus statistics behind Fig.1 and Fig.2.
package corpus

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"dehealth/internal/textutil"
)

// AvatarKind classifies a user's avatar for the §VI AvatarLink filters.
type AvatarKind int

// Avatar kinds, mirroring the four §VI-B filtering conditions.
const (
	// AvatarDefault is the service's default avatar (excluded).
	AvatarDefault AvatarKind = iota
	// AvatarNonHuman depicts objects, animals, scenery or logos (excluded).
	AvatarNonHuman
	// AvatarFictitious depicts a fictitious person (excluded).
	AvatarFictitious
	// AvatarKids depicts only children (excluded).
	AvatarKids
	// AvatarRealPerson depicts the (adult) user (usable for AvatarLink).
	AvatarRealPerson
)

// User is a registered forum member. TrueIdentity is generator ground truth
// used exclusively for scoring attacks; a real adversary does not have it.
type User struct {
	ID       int    `json:"id"`
	Name     string `json:"name"`
	Location string `json:"location,omitempty"`
	// Age is the publicly shown age (0 = hidden); BoneSmart-style forums
	// expose it, which the §VI information-aggregation attack exploits.
	Age int `json:"age,omitempty"`

	// AvatarHash is a 64-bit perceptual-hash-like avatar fingerprint;
	// meaningful only when AvatarKind != AvatarDefault.
	AvatarHash uint64     `json:"avatar_hash,omitempty"`
	AvatarKind AvatarKind `json:"avatar_kind,omitempty"`

	// TrueIdentity is the ground-truth person id behind the account
	// (-1 when unknown). Evaluation-only.
	TrueIdentity int `json:"true_identity"`
}

// Thread is a discussion topic on a board; posts under the same thread
// create co-discussion edges in the correlation graph.
type Thread struct {
	ID      int    `json:"id"`
	Board   string `json:"board"`
	Starter int    `json:"starter"`
}

// Post is a single message.
type Post struct {
	ID     int    `json:"id"`
	User   int    `json:"user"`
	Thread int    `json:"thread"`
	Text   string `json:"text"`
}

// Dataset is one forum's data (or a split of it).
type Dataset struct {
	Name    string   `json:"name"`
	Users   []User   `json:"users"`
	Threads []Thread `json:"threads"`
	Posts   []Post   `json:"posts"`
}

// NumUsers returns the number of users.
func (d *Dataset) NumUsers() int { return len(d.Users) }

// NumPosts returns the number of posts.
func (d *Dataset) NumPosts() int { return len(d.Posts) }

// PostsByUser returns, for each user index, the indices of their posts in
// d.Posts, preserving post order.
func (d *Dataset) PostsByUser() [][]int {
	out := make([][]int, len(d.Users))
	for i, p := range d.Posts {
		out[p.User] = append(out[p.User], i)
	}
	return out
}

// UserTexts returns the post texts of each user.
func (d *Dataset) UserTexts() [][]string {
	byUser := d.PostsByUser()
	out := make([][]string, len(d.Users))
	for u, idxs := range byUser {
		texts := make([]string, len(idxs))
		for k, i := range idxs {
			texts[k] = d.Posts[i].Text
		}
		out[u] = texts
	}
	return out
}

// Texts returns all post texts.
func (d *Dataset) Texts() []string {
	out := make([]string, len(d.Posts))
	for i, p := range d.Posts {
		out[i] = p.Text
	}
	return out
}

// Validate checks referential integrity (post user/thread ids in range,
// thread starters in range, user ids dense).
func (d *Dataset) Validate() error {
	for i, u := range d.Users {
		if u.ID != i {
			return fmt.Errorf("user %d has id %d; ids must be dense indices", i, u.ID)
		}
	}
	for i, t := range d.Threads {
		if t.ID != i {
			return fmt.Errorf("thread %d has id %d; ids must be dense indices", i, t.ID)
		}
		if t.Starter < 0 || t.Starter >= len(d.Users) {
			return fmt.Errorf("thread %d starter %d out of range", i, t.Starter)
		}
	}
	for i, p := range d.Posts {
		if p.ID != i {
			return fmt.Errorf("post %d has id %d; ids must be dense indices", i, p.ID)
		}
		if p.User < 0 || p.User >= len(d.Users) {
			return fmt.Errorf("post %d user %d out of range", i, p.User)
		}
		if p.Thread < 0 || p.Thread >= len(d.Threads) {
			return fmt.Errorf("post %d thread %d out of range", i, p.Thread)
		}
	}
	return nil
}

// Save writes the dataset as JSON to path.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	return nil
}

// Load reads a dataset from a JSON file written by Save.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var d Dataset
	if err := json.NewDecoder(f).Decode(&d); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("validating %s: %w", path, err)
	}
	return &d, nil
}

// Subset extracts the users in keep (by index) with all their posts and the
// threads those posts reference. User, thread and post ids are re-densified.
// The returned mapping oldToNew maps original user indices to new ones.
func (d *Dataset) Subset(keep []int) (*Dataset, map[int]int) {
	oldToNew := make(map[int]int, len(keep))
	sub := &Dataset{Name: d.Name + "-subset"}
	for _, u := range keep {
		oldToNew[u] = len(sub.Users)
		nu := d.Users[u]
		nu.ID = len(sub.Users)
		sub.Users = append(sub.Users, nu)
	}
	threadMap := map[int]int{}
	for _, p := range d.Posts {
		nu, ok := oldToNew[p.User]
		if !ok {
			continue
		}
		nt, ok := threadMap[p.Thread]
		if !ok {
			nt = len(sub.Threads)
			threadMap[p.Thread] = nt
			t := d.Threads[p.Thread]
			starter := 0
			if s, ok := oldToNew[t.Starter]; ok {
				starter = s
			} else {
				starter = nu // starter not kept; attribute thread to poster
			}
			sub.Threads = append(sub.Threads, Thread{ID: nt, Board: t.Board, Starter: starter})
		}
		sub.Posts = append(sub.Posts, Post{ID: len(sub.Posts), User: nu, Thread: nt, Text: p.Text})
	}
	return sub, oldToNew
}

// UsersWithMinPosts returns indices of users having at least minPosts posts.
func (d *Dataset) UsersWithMinPosts(minPosts int) []int {
	var out []int
	for u, idxs := range d.PostsByUser() {
		if len(idxs) >= minPosts {
			out = append(out, u)
		}
	}
	return out
}

// SampleUsers returns n user indices drawn uniformly without replacement
// from candidates. It panics if n > len(candidates).
func SampleUsers(candidates []int, n int, rng *rand.Rand) []int {
	if n > len(candidates) {
		panic(fmt.Sprintf("corpus: cannot sample %d users from %d candidates", n, len(candidates)))
	}
	perm := rng.Perm(len(candidates))
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = candidates[perm[i]]
	}
	sort.Ints(out)
	return out
}

// PostLengthWords returns the length of each post in words.
func (d *Dataset) PostLengthWords() []int {
	out := make([]int, len(d.Posts))
	for i, p := range d.Posts {
		out[i] = len(textutil.Words(p.Text))
	}
	return out
}

// MeanPostLengthWords returns the average post length in words (Fig.2
// headline statistic: 127.59 for WebMD, 147.24 for HB).
func (d *Dataset) MeanPostLengthWords() float64 {
	if len(d.Posts) == 0 {
		return 0
	}
	total := 0
	for _, n := range d.PostLengthWords() {
		total += n
	}
	return float64(total) / float64(len(d.Posts))
}

// PostCountCDF returns, for each x in xs, the fraction of users with at most
// x posts (Fig.1).
func (d *Dataset) PostCountCDF(xs []int) []float64 {
	counts := make([]int, len(d.Users))
	for _, p := range d.Posts {
		counts[p.User]++
	}
	sort.Ints(counts)
	out := make([]float64, len(xs))
	for i, x := range xs {
		// Number of users with count <= x.
		n := sort.SearchInts(counts, x+1)
		out[i] = float64(n) / float64(len(counts))
	}
	return out
}

// FractionUsersWithFewerThan returns the fraction of users with fewer than k
// posts (the paper reports 87.3% of WebMD and 75.4% of HB users have < 5).
func (d *Dataset) FractionUsersWithFewerThan(k int) float64 {
	counts := make([]int, len(d.Users))
	for _, p := range d.Posts {
		counts[p.User]++
	}
	n := 0
	for _, c := range counts {
		if c < k {
			n++
		}
	}
	if len(counts) == 0 {
		return 0
	}
	return float64(n) / float64(len(counts))
}

// PostLengthHistogram buckets post lengths (in words) into bins of width
// binWidth and returns the fraction of posts per bin, up to maxLen words
// (Fig.2). Posts longer than maxLen land in the last bin.
func (d *Dataset) PostLengthHistogram(binWidth, maxLen int) []float64 {
	if binWidth <= 0 || maxLen <= 0 {
		return nil
	}
	nBins := (maxLen + binWidth - 1) / binWidth
	hist := make([]float64, nBins)
	lengths := d.PostLengthWords()
	for _, l := range lengths {
		b := l / binWidth
		if b >= nBins {
			b = nBins - 1
		}
		hist[b]++
	}
	if len(lengths) > 0 {
		for i := range hist {
			hist[i] /= float64(len(lengths))
		}
	}
	return hist
}
