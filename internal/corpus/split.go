package corpus

import (
	"fmt"
	"math/rand"
)

// Split is the outcome of partitioning a dataset into anonymized data Δ1 and
// auxiliary data Δ2, together with the evaluation ground truth.
type Split struct {
	// Anon is Δ1: the anonymized dataset. Usernames are replaced by random
	// IDs; user indices are re-densified.
	Anon *Dataset
	// Aux is Δ2: the auxiliary (training) dataset.
	Aux *Dataset
	// TrueMapping maps an Anon user index to its Aux user index, for
	// anonymized users that exist in the auxiliary data (overlapping users).
	// Anonymized users absent from Aux have no entry (open world).
	TrueMapping map[int]int
}

// NumOverlapping returns |V_o|, the number of anonymized users with a true
// mapping in the auxiliary data.
func (s *Split) NumOverlapping() int { return len(s.TrueMapping) }

// SplitClosedWorld partitions each user's posts: every post lands in the
// auxiliary side with probability auxFrac, otherwise in the anonymized side
// (§V-A: "randomly taking 50%, 70%, and 90% of each user's data as auxiliary
// data and the rest as anonymized data"). Users end up in a side only if
// they have at least one post there, so a closed-world split of a dataset
// with single-post users still produces some anonymized users without true
// mappings in Aux; evaluation only scores users with mappings, as the paper
// does.
func SplitClosedWorld(d *Dataset, auxFrac float64, rng *rand.Rand) *Split {
	if auxFrac <= 0 || auxFrac >= 1 {
		panic(fmt.Sprintf("corpus: auxFrac must be in (0,1), got %v", auxFrac))
	}
	byUser := d.PostsByUser()
	toAux := make([]bool, len(d.Posts))
	for _, idxs := range byUser {
		if len(idxs) == 1 {
			toAux[idxs[0]] = rng.Float64() < auxFrac
			continue
		}
		// Take round(auxFrac * n) posts for aux, at least 1 on each side
		// when n >= 2, matching the paper's per-user percentage split.
		n := len(idxs)
		k := int(auxFrac*float64(n) + 0.5)
		if k < 1 {
			k = 1
		}
		if k > n-1 {
			k = n - 1
		}
		perm := rng.Perm(n)
		for i := 0; i < k; i++ {
			toAux[idxs[perm[i]]] = true
		}
	}
	return assemble(d, toAux, rng)
}

// OpenWorldOverlap partitions the dataset's users into an anonymized side
// and an auxiliary side with the same number of users each and an
// overlapping-user ratio of ratio, following footnote 10: with x overlapping
// and y exclusive users per side, x + 2y = n and x/(x+y) = ratio.
// Overlapping users have half their posts on each side; exclusive users keep
// all posts on their side. Users need >= 2 posts to be overlap candidates.
func OpenWorldOverlap(d *Dataset, ratio float64, rng *rand.Rand) *Split {
	if ratio <= 0 || ratio > 1 {
		panic(fmt.Sprintf("corpus: overlap ratio must be in (0,1], got %v", ratio))
	}
	n := len(d.Users)
	// x + 2y = n, x/(x+y) = ratio  =>  x = n*ratio/(2-ratio).
	x := int(float64(n)*ratio/(2-ratio) + 0.5)
	y := (n - x) / 2
	if x < 1 {
		x = 1
	}

	// Overlap candidates need at least 2 posts so both sides see them.
	byUser := d.PostsByUser()
	var multi, single []int
	for u, idxs := range byUser {
		if len(idxs) >= 2 {
			multi = append(multi, u)
		} else {
			single = append(single, u)
		}
	}
	if len(multi) < x {
		x = len(multi)
	}
	rng.Shuffle(len(multi), func(i, j int) { multi[i], multi[j] = multi[j], multi[i] })
	overlap := multi[:x]
	rest := append(append([]int{}, multi[x:]...), single...)
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	if 2*y > len(rest) {
		y = len(rest) / 2
	}
	anonOnly := rest[:y]
	auxOnly := rest[y : 2*y]

	// toSide: 0 = dropped, 1 = anon, 2 = aux.
	side := make([]int, len(d.Posts))
	for _, u := range overlap {
		idxs := byUser[u]
		perm := rng.Perm(len(idxs))
		half := len(idxs) / 2
		if half < 1 {
			half = 1
		}
		for i, pi := range perm {
			if i < half {
				side[idxs[pi]] = 1
			} else {
				side[idxs[pi]] = 2
			}
		}
	}
	for _, u := range anonOnly {
		for _, pi := range byUser[u] {
			side[pi] = 1
		}
	}
	for _, u := range auxOnly {
		for _, pi := range byUser[u] {
			side[pi] = 2
		}
	}

	toAux := make([]bool, len(d.Posts))
	dropped := make([]bool, len(d.Posts))
	for i, s := range side {
		switch s {
		case 0:
			dropped[i] = true
		case 2:
			toAux[i] = true
		}
	}
	return assembleWithDrops(d, toAux, dropped, rng)
}

// assemble builds a Split from a per-post aux assignment.
func assemble(d *Dataset, toAux []bool, rng *rand.Rand) *Split {
	return assembleWithDrops(d, toAux, make([]bool, len(d.Posts)), rng)
}

// assembleWithDrops builds the two datasets. Posts with dropped[i] true are
// excluded from both sides.
func assembleWithDrops(d *Dataset, toAux, dropped []bool, rng *rand.Rand) *Split {
	anon := &Dataset{Name: d.Name + "-anon"}
	aux := &Dataset{Name: d.Name + "-aux"}
	anonUser := map[int]int{} // original -> anon index
	auxUser := map[int]int{}  // original -> aux index
	anonThread := map[int]int{}
	auxThread := map[int]int{}

	userOn := func(ds *Dataset, m map[int]int, orig int, anonymize bool) int {
		if id, ok := m[orig]; ok {
			return id
		}
		id := len(ds.Users)
		m[orig] = id
		u := d.Users[orig]
		u.ID = id
		if anonymize {
			u.Name = fmt.Sprintf("anon-%08x", rng.Uint32())
		}
		ds.Users = append(ds.Users, u)
		return id
	}
	threadOn := func(ds *Dataset, tm map[int]int, um map[int]int, orig int, anonymize bool) int {
		if id, ok := tm[orig]; ok {
			return id
		}
		id := len(ds.Threads)
		tm[orig] = id
		t := d.Threads[orig]
		starter := t.Starter
		// The thread starter may not be on this side; keep the board but
		// re-attribute the starter to the first poster on this side.
		var newStarter int
		if s, ok := um[starter]; ok {
			newStarter = s
		} else {
			newStarter = -1 // fixed up by caller after the first post lands
		}
		ds.Threads = append(ds.Threads, Thread{ID: id, Board: t.Board, Starter: newStarter})
		return id
	}

	for i, p := range d.Posts {
		if dropped[i] {
			continue
		}
		if toAux[i] {
			u := userOn(aux, auxUser, p.User, false)
			t := threadOn(aux, auxThread, auxUser, p.Thread, false)
			if aux.Threads[t].Starter < 0 {
				aux.Threads[t].Starter = u
			}
			aux.Posts = append(aux.Posts, Post{ID: len(aux.Posts), User: u, Thread: t, Text: p.Text})
		} else {
			u := userOn(anon, anonUser, p.User, true)
			t := threadOn(anon, anonThread, anonUser, p.Thread, true)
			if anon.Threads[t].Starter < 0 {
				anon.Threads[t].Starter = u
			}
			anon.Posts = append(anon.Posts, Post{ID: len(anon.Posts), User: u, Thread: t, Text: p.Text})
		}
	}

	mapping := map[int]int{}
	for orig, ai := range anonUser {
		if xi, ok := auxUser[orig]; ok {
			mapping[ai] = xi
		}
	}
	return &Split{Anon: anon, Aux: aux, TrueMapping: mapping}
}
