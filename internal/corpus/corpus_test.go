package corpus

import (
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

// tiny builds a small valid dataset: 4 users, 3 threads, 8 posts.
func tiny() *Dataset {
	return &Dataset{
		Name: "tiny",
		Users: []User{
			{ID: 0, Name: "alice", TrueIdentity: 10},
			{ID: 1, Name: "bob", TrueIdentity: 11},
			{ID: 2, Name: "carol", TrueIdentity: 12},
			{ID: 3, Name: "dave", TrueIdentity: 13},
		},
		Threads: []Thread{
			{ID: 0, Board: "diabetes", Starter: 0},
			{ID: 1, Board: "migraine", Starter: 1},
			{ID: 2, Board: "sleep", Starter: 2},
		},
		Posts: []Post{
			{ID: 0, User: 0, Thread: 0, Text: "i have a headache every day"},
			{ID: 1, User: 1, Thread: 0, Text: "me too and my doctor says rest"},
			{ID: 2, User: 0, Thread: 1, Text: "the migraine is terrible at night"},
			{ID: 3, User: 2, Thread: 1, Text: "have you tried imitrex for it"},
			{ID: 4, User: 2, Thread: 2, Text: "i cannot sleep at all lately"},
			{ID: 5, User: 3, Thread: 2, Text: "melatonin helped me a lot"},
			{ID: 6, User: 0, Thread: 2, Text: "what dose do you take of it"},
			{ID: 7, User: 1, Thread: 1, Text: "my head hurts too most mornings"},
		},
	}
}

func TestValidate(t *testing.T) {
	d := tiny()
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	bad := tiny()
	bad.Posts[0].User = 99
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range user accepted")
	}
	bad2 := tiny()
	bad2.Users[1].ID = 7
	if err := bad2.Validate(); err == nil {
		t.Error("non-dense user id accepted")
	}
	bad3 := tiny()
	bad3.Posts[2].Thread = -1
	if err := bad3.Validate(); err == nil {
		t.Error("negative thread accepted")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	d := tiny()
	path := filepath.Join(t.TempDir(), "d.json")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Error("roundtrip mismatch")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file must fail")
	}
}

func TestPostsByUser(t *testing.T) {
	d := tiny()
	by := d.PostsByUser()
	if len(by) != 4 {
		t.Fatalf("got %d users", len(by))
	}
	if !reflect.DeepEqual(by[0], []int{0, 2, 6}) {
		t.Errorf("user 0 posts = %v", by[0])
	}
	if !reflect.DeepEqual(by[3], []int{5}) {
		t.Errorf("user 3 posts = %v", by[3])
	}
}

func TestUserTexts(t *testing.T) {
	d := tiny()
	texts := d.UserTexts()
	if len(texts[2]) != 2 {
		t.Errorf("user 2 has %d texts, want 2", len(texts[2]))
	}
	if texts[3][0] != d.Posts[5].Text {
		t.Error("text mismatch")
	}
}

func TestSubset(t *testing.T) {
	d := tiny()
	sub, m := d.Subset([]int{0, 2})
	if err := sub.Validate(); err != nil {
		t.Fatalf("subset invalid: %v", err)
	}
	if sub.NumUsers() != 2 {
		t.Fatalf("subset has %d users", sub.NumUsers())
	}
	// Users 0 and 2 authored posts 0,2,6 and 3,4 => 5 posts.
	if sub.NumPosts() != 5 {
		t.Errorf("subset has %d posts, want 5", sub.NumPosts())
	}
	if m[0] != 0 || m[2] != 1 {
		t.Errorf("mapping = %v", m)
	}
	for _, u := range sub.Users {
		if u.TrueIdentity != 10 && u.TrueIdentity != 12 {
			t.Errorf("unexpected identity %d", u.TrueIdentity)
		}
	}
}

func TestUsersWithMinPosts(t *testing.T) {
	d := tiny()
	got := d.UsersWithMinPosts(2)
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("UsersWithMinPosts(2) = %v", got)
	}
	if got := d.UsersWithMinPosts(4); got != nil {
		t.Errorf("UsersWithMinPosts(4) = %v, want none", got)
	}
}

func TestSampleUsers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := SampleUsers([]int{5, 6, 7, 8}, 2, rng)
	if len(got) != 2 {
		t.Fatalf("sampled %d", len(got))
	}
	seen := map[int]bool{}
	for _, u := range got {
		if u < 5 || u > 8 || seen[u] {
			t.Errorf("bad sample %v", got)
		}
		seen[u] = true
	}
	defer func() {
		if recover() == nil {
			t.Error("oversampling must panic")
		}
	}()
	SampleUsers([]int{1}, 2, rng)
}

func TestPostCountStats(t *testing.T) {
	d := tiny()
	// Post counts: u0=3, u1=2, u2=2, u3=1.
	cdf := d.PostCountCDF([]int{1, 2, 3})
	want := []float64{0.25, 0.75, 1.0}
	for i := range want {
		if math.Abs(cdf[i]-want[i]) > 1e-12 {
			t.Errorf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	if got := d.FractionUsersWithFewerThan(2); got != 0.25 {
		t.Errorf("frac <2 = %v, want 0.25", got)
	}
	if got := d.FractionUsersWithFewerThan(100); got != 1 {
		t.Errorf("frac <100 = %v, want 1", got)
	}
}

func TestPostLengthStats(t *testing.T) {
	d := &Dataset{
		Name:    "l",
		Users:   []User{{ID: 0, Name: "a", TrueIdentity: -1}},
		Threads: []Thread{{ID: 0, Board: "b", Starter: 0}},
		Posts: []Post{
			{ID: 0, User: 0, Thread: 0, Text: "one two three"},
			{ID: 1, User: 0, Thread: 0, Text: "one two three four five"},
		},
	}
	if got := d.MeanPostLengthWords(); got != 4 {
		t.Errorf("mean length = %v, want 4", got)
	}
	h := d.PostLengthHistogram(2, 6)
	// Lengths 3 and 5: bins [0,2)=0, [2,4)=0.5, [4,6)=0.5.
	if h[0] != 0 || h[1] != 0.5 || h[2] != 0.5 {
		t.Errorf("hist = %v", h)
	}
	if sum := h[0] + h[1] + h[2]; math.Abs(sum-1) > 1e-12 {
		t.Errorf("histogram sums to %v", sum)
	}
}

func TestPostLengthHistogramDegenerate(t *testing.T) {
	d := tiny()
	if h := d.PostLengthHistogram(0, 10); h != nil {
		t.Error("zero bin width must return nil")
	}
	if h := d.PostLengthHistogram(10, 0); h != nil {
		t.Error("zero max must return nil")
	}
}

// Property: Subset preserves per-user post multisets for the kept users.
func TestSubsetProperty(t *testing.T) {
	d := tiny()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var keep []int
		for u := 0; u < d.NumUsers(); u++ {
			if rng.Float64() < 0.5 {
				keep = append(keep, u)
			}
		}
		if len(keep) == 0 {
			return true
		}
		sub, m := d.Subset(keep)
		if sub.Validate() != nil {
			return false
		}
		origTexts := d.UserTexts()
		subTexts := sub.UserTexts()
		for _, u := range keep {
			nu, ok := m[u]
			if !ok {
				return false
			}
			if len(origTexts[u]) != len(subTexts[nu]) {
				return false
			}
			for i := range origTexts[u] {
				if origTexts[u][i] != subTexts[nu][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestUserAgeRoundtrip(t *testing.T) {
	d := tiny()
	d.Users[0].Age = 47
	path := filepath.Join(t.TempDir(), "age.json")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Users[0].Age != 47 || got.Users[1].Age != 0 {
		t.Error("age not round-tripped")
	}
}
