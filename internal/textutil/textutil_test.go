package textutil

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestWords(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"hello world", []string{"hello", "world"}},
		{"", nil},
		{"   ", nil},
		{"one", []string{"one"}},
		{"don't stop", []string{"don't", "stop"}},
		{"'quoted' words", []string{"quoted", "words"}},
		{"x-ray is a word-pair", []string{"x", "ray", "is", "a", "word", "pair"}},
		{"I took 50mg twice", []string{"I", "took", "50mg", "twice"}},
		{"comma,separated", []string{"comma", "separated"}},
		{"trailing dots...", []string{"trailing", "dots"}},
		{"unicode: héllo wörld", []string{"unicode", "héllo", "wörld"}},
		{"'''", nil},
	}
	for _, tc := range tests {
		got := WordStrings(tc.in)
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Words(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestWordsOffsets(t *testing.T) {
	s := "ab cd  ef"
	toks := Words(s)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens", len(toks))
	}
	for _, tok := range toks {
		if s[tok.Start:tok.Start+len(tok.Text)] != tok.Text {
			t.Errorf("offset mismatch: token %q at %d", tok.Text, tok.Start)
		}
	}
}

func TestSentences(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"One. Two. Three.", []string{"One.", "Two.", "Three."}},
		{"No terminator", []string{"No terminator"}},
		{"What?! Really...", []string{"What?!", "Really..."}},
		{"", nil},
		{"a.b is not split. but this is.", []string{"a.b is not split.", "but this is."}},
		{"Multi\nline. sentence here!", []string{"Multi\nline.", "sentence here!"}},
	}
	for _, tc := range tests {
		got := Sentences(tc.in)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Sentences(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParagraphs(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{"one paragraph only", 1},
		{"first\n\nsecond", 2},
		{"first\n\n\n\nsecond\n\nthird", 3},
		{"", 0},
		{"\n\n\n", 0},
		{"a\nb\nc", 1},
		{"a\r\n\r\nb", 2},
	}
	for _, tc := range tests {
		got := Paragraphs(tc.in)
		if len(got) != tc.want {
			t.Errorf("Paragraphs(%q) = %d paragraphs %q, want %d", tc.in, len(got), got, tc.want)
		}
	}
}

func TestWordShape(t *testing.T) {
	tests := []struct {
		in   string
		want Shape
	}{
		{"hello", ShapeAllLower},
		{"USA", ShapeAllUpper},
		{"Hello", ShapeInitialUpper},
		{"WebMD", ShapeCamel},
		{"iPhone", ShapeCamel},
		{"X", ShapeInitialUpper},
		{"123", ShapeOther},
		{"", ShapeOther},
		{"can't", ShapeAllLower},
		{"McDonald", ShapeCamel},
	}
	for _, tc := range tests {
		if got := WordShape(tc.in); got != tc.want {
			t.Errorf("WordShape(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestShapeString(t *testing.T) {
	names := map[string]bool{}
	for _, s := range []Shape{ShapeOther, ShapeAllLower, ShapeAllUpper, ShapeInitialUpper, ShapeCamel} {
		name := s.String()
		if name == "" {
			t.Errorf("shape %d has empty name", s)
		}
		if names[name] {
			t.Errorf("duplicate shape name %q", name)
		}
		names[name] = true
	}
}

func TestLetterFreq(t *testing.T) {
	f := LetterFreq("Abcz! ZZ")
	if f[0] != 1 || f[1] != 1 || f[2] != 1 || f[25] != 3 {
		t.Errorf("unexpected letter freq: %v", f)
	}
	total := 0
	for _, n := range f {
		total += n
	}
	if total != 6 {
		t.Errorf("total letters = %d, want 6", total)
	}
}

func TestDigitFreq(t *testing.T) {
	f := DigitFreq("a1b22c9")
	if f[1] != 1 || f[2] != 2 || f[9] != 1 {
		t.Errorf("unexpected digit freq: %v", f)
	}
}

func TestUppercaseRatio(t *testing.T) {
	tests := []struct {
		in   string
		want float64
	}{
		{"ABCD", 1},
		{"abcd", 0},
		{"AbCd", 0.5},
		{"1234", 0},
		{"", 0},
	}
	for _, tc := range tests {
		if got := UppercaseRatio(tc.in); got != tc.want {
			t.Errorf("UppercaseRatio(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestPunctuationFreq(t *testing.T) {
	f := PunctuationFreq("Hi! How are you? Fine, fine; really.")
	idx := map[rune]int{}
	for i, r := range Punctuation {
		idx[r] = i
	}
	if f[idx['!']] != 1 || f[idx['?']] != 1 || f[idx[',']] != 1 || f[idx[';']] != 1 || f[idx['.']] != 1 {
		t.Errorf("unexpected punctuation freq: %v", f)
	}
}

func TestSpecialCharFreq(t *testing.T) {
	f := SpecialCharFreq("50% of $10 #cool @you")
	idx := map[rune]int{}
	for i, r := range SpecialChars {
		idx[r] = i
	}
	if f[idx['%']] != 1 || f[idx['$']] != 1 || f[idx['#']] != 1 || f[idx['@']] != 1 {
		t.Errorf("unexpected special freq: %v", f)
	}
}

func TestSpecialCharsCount(t *testing.T) {
	// Table I: 21 special-character features.
	if len(SpecialChars) != 21 {
		t.Errorf("len(SpecialChars) = %d, want 21", len(SpecialChars))
	}
	if len(Punctuation) != 10 {
		t.Errorf("len(Punctuation) = %d, want 10", len(Punctuation))
	}
}

// Property: every token consists solely of word runes and is non-empty.
func TestWordsProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Words(s) {
			if tok.Text == "" {
				return false
			}
			for _, r := range tok.Text {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '\'' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: concatenating sentences loses no non-space characters.
func TestSentencesPreserveContent(t *testing.T) {
	f := func(s string) bool {
		joined := strings.Join(Sentences(s), " ")
		return countNonSpace(joined) == countNonSpace(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func countNonSpace(s string) int {
	n := 0
	for _, r := range s {
		if !unicode.IsSpace(r) {
			n++
		}
	}
	return n
}

// Property: letter frequencies are case-insensitive.
func TestLetterFreqCaseInsensitive(t *testing.T) {
	f := func(s string) bool {
		return LetterFreq(strings.ToUpper(s)) == LetterFreq(strings.ToLower(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
