// Package textutil provides the low-level text segmentation primitives used
// by the stylometric feature extractors: word tokenization, sentence and
// paragraph splitting, character classification, and word-shape analysis.
//
// The tokenizer is deliberately simple and deterministic: stylometry cares
// about stable per-author statistics, not linguistic perfection, so the same
// input must always yield the same tokens.
package textutil

import (
	"strings"
	"unicode"
)

// Token is a single word-like unit extracted from a post.
type Token struct {
	// Text is the raw token text, including any internal apostrophes.
	Text string
	// Start is the byte offset of the token in the original string.
	Start int
}

// Shape classifies the capitalization pattern of a word (Table I, "word
// shape" features).
type Shape int

const (
	// ShapeOther covers tokens that fit no other class (digits, mixed).
	ShapeOther Shape = iota
	// ShapeAllLower is an all-lowercase word ("hello").
	ShapeAllLower
	// ShapeAllUpper is an all-uppercase word of length >= 2 ("USA").
	ShapeAllUpper
	// ShapeInitialUpper is a capitalized word ("Hello").
	ShapeInitialUpper
	// ShapeCamel is a camel-case word with an internal capital ("WebMD").
	ShapeCamel
)

// String returns a stable name for the shape, used as a feature key.
func (s Shape) String() string {
	switch s {
	case ShapeAllLower:
		return "lower"
	case ShapeAllUpper:
		return "upper"
	case ShapeInitialUpper:
		return "initial"
	case ShapeCamel:
		return "camel"
	default:
		return "other"
	}
}

// isWordRune reports whether r can be part of a word token.
func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\''
}

// Words tokenizes s into word tokens. A word is a maximal run of letters,
// digits and internal apostrophes. Leading/trailing apostrophes are trimmed.
func Words(s string) []Token {
	var toks []Token
	start := -1
	for i, r := range s {
		if isWordRune(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			emitWord(&toks, s, start, i)
			start = -1
		}
	}
	if start >= 0 {
		emitWord(&toks, s, start, len(s))
	}
	return toks
}

func emitWord(toks *[]Token, s string, start, end int) {
	w := s[start:end]
	// Trim apostrophes that are really quotes.
	trimmedFront := 0
	for strings.HasPrefix(w, "'") {
		w = w[1:]
		trimmedFront++
	}
	for strings.HasSuffix(w, "'") {
		w = w[:len(w)-1]
	}
	if w == "" {
		return
	}
	*toks = append(*toks, Token{Text: w, Start: start + trimmedFront})
}

// WordStrings returns just the token texts of Words(s).
func WordStrings(s string) []string {
	toks := Words(s)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

// Sentences splits s into sentences on '.', '!' and '?' boundaries followed
// by whitespace or end-of-text. Consecutive terminators ("?!", "...") end a
// single sentence. Empty sentences are dropped.
func Sentences(s string) []string {
	var out []string
	var b strings.Builder
	runes := []rune(s)
	flush := func() {
		t := strings.TrimSpace(b.String())
		if t != "" {
			out = append(out, t)
		}
		b.Reset()
	}
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		b.WriteRune(r)
		if r == '.' || r == '!' || r == '?' {
			// Absorb any run of terminators.
			for i+1 < len(runes) && (runes[i+1] == '.' || runes[i+1] == '!' || runes[i+1] == '?') {
				i++
				b.WriteRune(runes[i])
			}
			// Sentence boundary if next rune is space or end.
			if i+1 >= len(runes) || unicode.IsSpace(runes[i+1]) {
				flush()
			}
		}
	}
	flush()
	return out
}

// Paragraphs splits s into paragraphs on blank lines (one or more newlines
// separated only by whitespace). Empty paragraphs are dropped.
func Paragraphs(s string) []string {
	var out []string
	for _, p := range strings.Split(normalizeNewlines(s), "\n\n") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func normalizeNewlines(s string) string {
	s = strings.ReplaceAll(s, "\r\n", "\n")
	s = strings.ReplaceAll(s, "\r", "\n")
	// Collapse runs of 2+ newlines (possibly with interior spaces) to exactly
	// one blank-line separator.
	var b strings.Builder
	lines := strings.Split(s, "\n")
	blank := false
	first := true
	for _, ln := range lines {
		if strings.TrimSpace(ln) == "" {
			blank = true
			continue
		}
		if !first {
			if blank {
				b.WriteString("\n\n")
			} else {
				b.WriteString("\n")
			}
		}
		b.WriteString(ln)
		first = false
		blank = false
	}
	return b.String()
}

// WordShape classifies the capitalization shape of w.
func WordShape(w string) Shape {
	runes := []rune(w)
	if len(runes) == 0 {
		return ShapeOther
	}
	var letters, uppers, lowers int
	internalUpper := false
	for i, r := range runes {
		if !unicode.IsLetter(r) {
			continue
		}
		letters++
		if unicode.IsUpper(r) {
			uppers++
			if i > 0 {
				internalUpper = true
			}
		} else {
			lowers++
		}
	}
	switch {
	case letters == 0:
		return ShapeOther
	case uppers == 0:
		return ShapeAllLower
	case lowers == 0 && letters >= 2:
		return ShapeAllUpper
	case unicode.IsUpper(runes[0]) && internalUpper && lowers > 0:
		return ShapeCamel
	case unicode.IsUpper(runes[0]) && !internalUpper:
		return ShapeInitialUpper
	case internalUpper && lowers > 0:
		return ShapeCamel
	default:
		return ShapeOther
	}
}

// CountChars returns the number of Unicode characters (runes) in s.
func CountChars(s string) int { return len([]rune(s)) }

// LetterFreq returns a 26-element count of ASCII letters (case-folded).
func LetterFreq(s string) [26]int {
	var freq [26]int
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
			freq[r-'a']++
		case r >= 'A' && r <= 'Z':
			freq[r-'A']++
		}
	}
	return freq
}

// DigitFreq returns a 10-element count of ASCII digits.
func DigitFreq(s string) [10]int {
	var freq [10]int
	for _, r := range s {
		if r >= '0' && r <= '9' {
			freq[r-'0']++
		}
	}
	return freq
}

// UppercaseRatio returns the fraction of letters in s that are uppercase.
// It returns 0 for strings with no letters.
func UppercaseRatio(s string) float64 {
	var letters, uppers int
	for _, r := range s {
		if unicode.IsLetter(r) {
			letters++
			if unicode.IsUpper(r) {
				uppers++
			}
		}
	}
	if letters == 0 {
		return 0
	}
	return float64(uppers) / float64(letters)
}

// Punctuation is the set of punctuation marks counted by the Table I
// "punctuation frequency" features, in a stable order.
var Punctuation = []rune{'.', ',', ';', ':', '!', '?', '\'', '"', '-', '('}

// PunctuationFreq counts the Table I punctuation marks in s, indexed in the
// order of Punctuation.
func PunctuationFreq(s string) []int {
	idx := make(map[rune]int, len(Punctuation))
	for i, r := range Punctuation {
		idx[r] = i
	}
	freq := make([]int, len(Punctuation))
	for _, r := range s {
		if i, ok := idx[r]; ok {
			freq[i]++
		}
	}
	return freq
}

// SpecialChars is the set of special characters counted by the Table I
// "special characters" features (21 characters).
var SpecialChars = []rune{'@', '#', '$', '%', '^', '&', '*', '+', '=', '<', '>', '/', '\\', '|', '~', '`', '_', '{', '}', '[', ']'}

// SpecialCharFreq counts the Table I special characters in s, indexed in the
// order of SpecialChars.
func SpecialCharFreq(s string) []int {
	idx := make(map[rune]int, len(SpecialChars))
	for i, r := range SpecialChars {
		idx[r] = i
	}
	freq := make([]int, len(SpecialChars))
	for _, r := range s {
		if i, ok := idx[r]; ok {
			freq[i]++
		}
	}
	return freq
}
