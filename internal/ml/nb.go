package ml

import (
	"fmt"
	"math"
)

// NaiveBayes is a Gaussian naive Bayes classifier: each feature is modeled
// per class as an independent Gaussian, with variance floored to keep
// near-constant dimensions from dominating the log-likelihood. A cheap,
// robust benchmark for the refined-DA phase.
type NaiveBayes struct {
	// VarFloor is the minimum per-dimension variance (default 1e-4 after
	// standardization).
	VarFloor float64

	std      *Standardizer
	mean     [][]float64 // [class][dim]
	variance [][]float64 // [class][dim]
	logPrior []float64
	classes  int
}

// NewNaiveBayes returns a Gaussian naive Bayes classifier.
func NewNaiveBayes() *NaiveBayes { return &NaiveBayes{} }

// Fit estimates per-class Gaussians.
func (c *NaiveBayes) Fit(X [][]float64, y []int) error {
	classes, err := validate(X, y)
	if err != nil {
		return err
	}
	if c.VarFloor <= 0 {
		c.VarFloor = 1e-4
	}
	c.classes = classes
	c.std = FitStandardizer(X)
	Xs := c.std.TransformAll(X)
	d := len(Xs[0])

	counts := make([]int, classes)
	c.mean = make([][]float64, classes)
	c.variance = make([][]float64, classes)
	for cl := 0; cl < classes; cl++ {
		c.mean[cl] = make([]float64, d)
		c.variance[cl] = make([]float64, d)
	}
	for i, row := range Xs {
		counts[y[i]]++
		for j, x := range row {
			c.mean[y[i]][j] += x
		}
	}
	for cl := 0; cl < classes; cl++ {
		if counts[cl] == 0 {
			continue
		}
		for j := range c.mean[cl] {
			c.mean[cl][j] /= float64(counts[cl])
		}
	}
	for i, row := range Xs {
		cl := y[i]
		for j, x := range row {
			dx := x - c.mean[cl][j]
			c.variance[cl][j] += dx * dx
		}
	}
	c.logPrior = make([]float64, classes)
	for cl := 0; cl < classes; cl++ {
		if counts[cl] == 0 {
			c.logPrior[cl] = math.Inf(-1)
			continue
		}
		for j := range c.variance[cl] {
			c.variance[cl][j] = c.variance[cl][j]/float64(counts[cl]) + c.VarFloor
		}
		c.logPrior[cl] = math.Log(float64(counts[cl]) / float64(len(Xs)))
	}
	return nil
}

// Scores returns per-class log-posteriors (up to a constant).
func (c *NaiveBayes) Scores(x []float64) []float64 {
	if c.std == nil {
		panic("ml: NaiveBayes.Scores before Fit")
	}
	q := c.std.Transform(x)
	out := make([]float64, c.classes)
	for cl := 0; cl < c.classes; cl++ {
		if math.IsInf(c.logPrior[cl], -1) {
			out[cl] = math.Inf(-1)
			continue
		}
		ll := c.logPrior[cl]
		for j, xq := range q {
			v := c.variance[cl][j]
			dx := xq - c.mean[cl][j]
			ll += -0.5*math.Log(2*math.Pi*v) - dx*dx/(2*v)
		}
		out[cl] = ll
	}
	return out
}

// Predict returns the class with the largest log-posterior.
func (c *NaiveBayes) Predict(x []float64) int { return ArgMax(c.Scores(x)) }

// String describes the classifier.
func (c *NaiveBayes) String() string { return fmt.Sprintf("NaiveBayes(floor=%g)", c.VarFloor) }
