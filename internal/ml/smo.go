package ml

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Kernel is a Mercer kernel over feature vectors.
type Kernel func(a, b []float64) float64

// LinearKernel is the inner-product kernel.
func LinearKernel(a, b []float64) float64 { return Dot(a, b) }

// RBFKernel returns a Gaussian kernel with bandwidth parameter gamma.
func RBFKernel(gamma float64) Kernel {
	return func(a, b []float64) float64 { return math.Exp(-gamma * SqDist(a, b)) }
}

// SMOConfig parametrizes the SMO trainer.
type SMOConfig struct {
	// C is the soft-margin penalty (default 1).
	C float64
	// Tol is the KKT violation tolerance (default 1e-3).
	Tol float64
	// MaxPasses is the number of full passes without changes before
	// convergence is declared (default 3).
	MaxPasses int
	// MaxIter caps total optimization sweeps (default 200).
	MaxIter int
	// Kernel defaults to LinearKernel.
	Kernel Kernel
	// Seed drives the deterministic second-choice heuristic.
	Seed int64
}

func (c *SMOConfig) fill() {
	if c.C <= 0 {
		c.C = 1
	}
	if c.Tol <= 0 {
		c.Tol = 1e-3
	}
	if c.MaxPasses <= 0 {
		c.MaxPasses = 3
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 200
	}
	// A nil Kernel means linear; trained machines then collapse to an
	// explicit weight vector for O(d) prediction.
}

// kernel evaluates the configured kernel (nil = linear).
func (c *SMOConfig) kernel(a, b []float64) float64 {
	if c.Kernel == nil {
		return Dot(a, b)
	}
	return c.Kernel(a, b)
}

// binarySMO is a two-class SVM trained with Platt's SMO (simplified
// variant). Labels are -1/+1.
type binarySMO struct {
	cfg   SMOConfig
	x     [][]float64
	y     []float64 // -1 / +1
	alpha []float64
	b     float64
	// w is the collapsed primal weight vector, available for the linear
	// kernel only; decision() then costs O(d) instead of O(sv·d).
	w []float64
}

// trainBinarySMO fits a binary SVM on x with labels y in {-1,+1}.
func trainBinarySMO(x [][]float64, y []float64, cfg SMOConfig) *binarySMO {
	cfg.fill()
	m := len(x)
	s := &binarySMO{cfg: cfg, x: x, y: y, alpha: make([]float64, m)}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(m)))

	// Precompute the kernel matrix; training sets here are small (refined
	// DA trains on candidate-set posts).
	K := make([][]float64, m)
	for i := range K {
		K[i] = make([]float64, m)
		for j := 0; j <= i; j++ {
			K[i][j] = cfg.kernel(x[i], x[j])
			K[j][i] = K[i][j]
		}
	}
	f := func(i int) float64 {
		var s2 float64
		for j := 0; j < m; j++ {
			if s.alpha[j] != 0 {
				s2 += s.alpha[j] * y[j] * K[i][j]
			}
		}
		return s2 + s.b
	}

	passes, iter := 0, 0
	for passes < cfg.MaxPasses && iter < cfg.MaxIter {
		iter++
		changed := 0
		for i := 0; i < m; i++ {
			Ei := f(i) - y[i]
			if !((y[i]*Ei < -cfg.Tol && s.alpha[i] < cfg.C) || (y[i]*Ei > cfg.Tol && s.alpha[i] > 0)) {
				continue
			}
			j := rng.Intn(m - 1)
			if j >= i {
				j++
			}
			Ej := f(j) - y[j]
			ai, aj := s.alpha[i], s.alpha[j]
			var L, H float64
			if y[i] != y[j] {
				L = math.Max(0, aj-ai)
				H = math.Min(cfg.C, cfg.C+aj-ai)
			} else {
				L = math.Max(0, ai+aj-cfg.C)
				H = math.Min(cfg.C, ai+aj)
			}
			if L == H {
				continue
			}
			eta := 2*K[i][j] - K[i][i] - K[j][j]
			if eta >= 0 {
				continue
			}
			newAj := aj - y[j]*(Ei-Ej)/eta
			if newAj > H {
				newAj = H
			} else if newAj < L {
				newAj = L
			}
			if math.Abs(newAj-aj) < 1e-5 {
				continue
			}
			newAi := ai + y[i]*y[j]*(aj-newAj)
			b1 := s.b - Ei - y[i]*(newAi-ai)*K[i][i] - y[j]*(newAj-aj)*K[i][j]
			b2 := s.b - Ej - y[i]*(newAi-ai)*K[i][j] - y[j]*(newAj-aj)*K[j][j]
			s.alpha[i], s.alpha[j] = newAi, newAj
			switch {
			case newAi > 0 && newAi < cfg.C:
				s.b = b1
			case newAj > 0 && newAj < cfg.C:
				s.b = b2
			default:
				s.b = (b1 + b2) / 2
			}
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}
	if cfg.Kernel == nil && m > 0 {
		s.w = make([]float64, len(x[0]))
		for i, a := range s.alpha {
			if a == 0 {
				continue
			}
			ay := a * y[i]
			for j, xj := range x[i] {
				s.w[j] += ay * xj
			}
		}
	}
	return s
}

// decision returns the signed decision value for q.
func (s *binarySMO) decision(q []float64) float64 {
	if s.w != nil {
		return Dot(s.w, q) + s.b
	}
	var out float64
	for i, a := range s.alpha {
		if a != 0 {
			out += a * s.y[i] * s.cfg.kernel(s.x[i], q)
		}
	}
	return out + s.b
}

// SMO is a multiclass SVM using one-vs-one binary SMO machines with voting,
// the multiclass scheme of Weka's SMO that the paper's evaluation uses.
type SMO struct {
	Config SMOConfig

	std      *Standardizer
	machines []ovoMachine
	classes  int
}

type ovoMachine struct {
	a, b int // classes: decision > 0 votes a, else b
	svm  *binarySMO
}

// NewSMO returns an SMO classifier with the given configuration.
func NewSMO(cfg SMOConfig) *SMO { return &SMO{Config: cfg} }

// Fit trains C(C-1)/2 pairwise machines on the standardized data. Machines
// are independent, so they train in parallel across GOMAXPROCS workers.
func (c *SMO) Fit(X [][]float64, y []int) error {
	classes, err := validate(X, y)
	if err != nil {
		return err
	}
	c.classes = classes
	c.std = FitStandardizer(X)
	Xs := c.std.TransformAll(X)

	byClass := make([][]int, classes)
	for i, cl := range y {
		byClass[cl] = append(byClass[cl], i)
	}
	type pair struct{ a, b int }
	var pairs []pair
	for a := 0; a < classes; a++ {
		for b := a + 1; b < classes; b++ {
			if len(byClass[a]) > 0 && len(byClass[b]) > 0 {
				pairs = append(pairs, pair{a, b})
			}
		}
	}
	c.machines = make([]ovoMachine, len(pairs))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pi := range jobs {
				a, b := pairs[pi].a, pairs[pi].b
				px := make([][]float64, 0, len(byClass[a])+len(byClass[b]))
				py := make([]float64, 0, cap(px))
				for _, i := range byClass[a] {
					px = append(px, Xs[i])
					py = append(py, 1)
				}
				for _, i := range byClass[b] {
					px = append(px, Xs[i])
					py = append(py, -1)
				}
				cfg := c.Config
				cfg.Seed += int64(a*classes + b)
				c.machines[pi] = ovoMachine{a: a, b: b, svm: trainBinarySMO(px, py, cfg)}
			}
		}()
	}
	for pi := range pairs {
		jobs <- pi
	}
	close(jobs)
	wg.Wait()
	return nil
}

// Scores returns per-class one-vs-one votes, each weighted by the absolute
// decision margin squashed to (0,1) so that confident machines count more.
func (c *SMO) Scores(x []float64) []float64 {
	if c.std == nil {
		panic("ml: SMO.Scores before Fit")
	}
	q := c.std.Transform(x)
	votes := make([]float64, c.classes)
	for _, m := range c.machines {
		d := m.svm.decision(q)
		w := 1 / (1 + math.Exp(-math.Abs(d))) // in [0.5, 1)
		if d > 0 {
			votes[m.a] += w
		} else {
			votes[m.b] += w
		}
	}
	return votes
}

// Predict returns the class with the most pairwise votes.
func (c *SMO) Predict(x []float64) int { return ArgMax(c.Scores(x)) }

// String describes the classifier.
func (c *SMO) String() string { return fmt.Sprintf("SMO(C=%g)", c.Config.C) }
