package ml

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("ml: MulVec dim %d, want %d", len(x), m.Cols)
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Cholesky computes the lower-triangular factor L of a symmetric
// positive-definite matrix a (a = L·Lᵀ). It fails when a is not SPD.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("ml: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("ml: matrix not positive definite at pivot %d", i)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholeskySolve solves a·x = b given the Cholesky factor L of a.
func CholeskySolve(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("ml: CholeskySolve rhs dim %d, want %d", len(b), n)
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x, nil
}

// SolveSPD solves a·x = b for symmetric positive-definite a.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return CholeskySolve(l, b)
}
