package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates two well-separated Gaussian clusters per class.
func blobs(rng *rand.Rand, classes, perClass, dim int, spread float64) (X [][]float64, y []int) {
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = float64(c*7) + rng.NormFloat64()
		}
	}
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			row := make([]float64, dim)
			for j := range row {
				row[j] = centers[c][j] + rng.NormFloat64()*spread
			}
			X = append(X, row)
			y = append(y, c)
		}
	}
	return X, y
}

func accuracy(c Classifier, X [][]float64, y []int) float64 {
	hit := 0
	for i, row := range X {
		if c.Predict(row) == y[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(X))
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{1, 10}, {3, 10}}
	s := FitStandardizer(X)
	if s.Mean[0] != 2 || s.Mean[1] != 10 {
		t.Errorf("mean = %v", s.Mean)
	}
	got := s.Transform([]float64{3, 10})
	if math.Abs(got[0]-1) > 1e-12 {
		t.Errorf("standardized = %v, want [1 ...]", got)
	}
	// Zero-variance dimension: centered but not scaled.
	if got[1] != 0 {
		t.Errorf("zero-variance dim = %v, want 0", got[1])
	}
}

func TestValidateErrors(t *testing.T) {
	if _, err := validate(nil, nil); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := validate([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := validate([][]float64{{1}, {1, 2}}, []int{0, 1}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := validate([][]float64{{1}}, []int{-2}); err == nil {
		t.Error("negative label accepted")
	}
}

func TestKNNSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := blobs(rng, 3, 30, 4, 0.3)
	c := NewKNN(3)
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(c, X, y); acc < 0.95 {
		t.Errorf("KNN train accuracy = %v", acc)
	}
	// Held-out points near the centers classify correctly.
	Xt, yt := blobs(rand.New(rand.NewSource(2)), 3, 10, 4, 0.3)
	if acc := accuracy(c, Xt, yt); acc < 0.8 {
		t.Errorf("KNN test accuracy = %v", acc)
	}
}

func TestKNNScoresSumPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := blobs(rng, 2, 10, 3, 0.5)
	c := NewKNN(3)
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	s := c.Scores(X[0])
	if len(s) != 2 {
		t.Fatalf("scores len = %d", len(s))
	}
	total := 0.0
	for _, x := range s {
		if x < 0 {
			t.Errorf("negative vote %v", x)
		}
		total += x
	}
	if total <= 0 {
		t.Error("no votes cast")
	}
}

func TestNN(t *testing.T) {
	c := NN()
	X := [][]float64{{0, 0}, {10, 10}}
	y := []int{0, 1}
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if c.Predict([]float64{1, 1}) != 0 || c.Predict([]float64{9, 9}) != 1 {
		t.Error("1-NN misclassified obvious points")
	}
}

func TestSMOBinarySeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := blobs(rng, 2, 25, 3, 0.4)
	c := NewSMO(SMOConfig{C: 1, Seed: 9})
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(c, X, y); acc < 0.95 {
		t.Errorf("SMO train accuracy = %v", acc)
	}
}

func TestSMOMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := blobs(rng, 4, 20, 5, 0.4)
	c := NewSMO(SMOConfig{C: 1, Seed: 9})
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(c, X, y); acc < 0.9 {
		t.Errorf("SMO multiclass train accuracy = %v", acc)
	}
	if got := len(c.Scores(X[0])); got != 4 {
		t.Errorf("scores len = %d, want 4", got)
	}
}

func TestSMORBF(t *testing.T) {
	// XOR-ish data: not linearly separable, RBF handles it.
	X := [][]float64{{0, 0}, {1, 1}, {0, 1}, {1, 0}, {0.1, 0.1}, {0.9, 0.9}, {0.1, 0.9}, {0.9, 0.1}}
	y := []int{0, 0, 1, 1, 0, 0, 1, 1}
	c := NewSMO(SMOConfig{C: 10, Kernel: RBFKernel(2), Seed: 3, MaxIter: 500})
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(c, X, y); acc < 0.99 {
		t.Errorf("RBF SMO accuracy on XOR = %v", acc)
	}
}

func TestRLSCSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := blobs(rng, 3, 20, 4, 0.4)
	c := NewRLSC(1)
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(c, X, y); acc < 0.9 {
		t.Errorf("RLSC train accuracy = %v", acc)
	}
}

func TestCholeskySolveKnown(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	x, err := SolveSPD(a, []float64{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	// Verify a·x = b.
	b, _ := a.MulVec(x)
	if math.Abs(b[0]-2) > 1e-9 || math.Abs(b[1]-5) > 1e-9 {
		t.Errorf("a·x = %v, want [2 5]", b)
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 5)
	a.Set(1, 0, 5)
	a.Set(1, 1, 1)
	if _, err := Cholesky(a); err == nil {
		t.Error("indefinite matrix accepted")
	}
	b := NewMatrix(2, 3)
	if _, err := Cholesky(b); err == nil {
		t.Error("non-square matrix accepted")
	}
}

// Property: SolveSPD solves random SPD systems A = BᵀB + I.
func TestCholeskySolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		bmat := make([][]float64, n)
		for i := range bmat {
			bmat[i] = make([]float64, n)
			for j := range bmat[i] {
				bmat[i][j] = rng.NormFloat64()
			}
		}
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := 0.0
				for k := 0; k < n; k++ {
					v += bmat[k][i] * bmat[k][j]
				}
				if i == j {
					v += 1
				}
				a.Set(i, j, v)
			}
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x, err := SolveSPD(a, rhs)
		if err != nil {
			return false
		}
		got, _ := a.MulVec(x)
		for i := range rhs {
			if math.Abs(got[i]-rhs[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDotAndSqDist(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot wrong")
	}
	if SqDist([]float64{0, 0}, []float64{3, 4}) != 25 {
		t.Error("SqDist wrong")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Error("ArgMax wrong")
	}
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil) must be -1")
	}
	if ArgMax([]float64{2, 2}) != 0 {
		t.Error("ArgMax tie must pick first")
	}
}

func TestClassifierDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := blobs(rng, 3, 15, 4, 0.5)
	mk := []func() Classifier{
		func() Classifier { return NewKNN(3) },
		func() Classifier { return NewSMO(SMOConfig{C: 1, Seed: 42}) },
		func() Classifier { return NewRLSC(1) },
	}
	for _, f := range mk {
		a, b := f(), f()
		if err := a.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		for i := range X {
			if a.Predict(X[i]) != b.Predict(X[i]) {
				t.Errorf("classifier %T not deterministic", a)
				break
			}
		}
	}
}

func TestNaiveBayesSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X, y := blobs(rng, 3, 25, 4, 0.4)
	c := NewNaiveBayes()
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(c, X, y); acc < 0.95 {
		t.Errorf("NaiveBayes train accuracy = %v", acc)
	}
	Xt, yt := blobs(rand.New(rand.NewSource(9)), 3, 10, 4, 0.4)
	if acc := accuracy(c, Xt, yt); acc < 0.8 {
		t.Errorf("NaiveBayes test accuracy = %v", acc)
	}
}

func TestNaiveBayesScoresFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	X, y := blobs(rng, 2, 10, 3, 0.5)
	// Add a constant dimension: the variance floor must keep scores finite.
	for i := range X {
		X[i] = append(X[i], 7)
	}
	c := NewNaiveBayes()
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Scores(X[0]) {
		if math.IsNaN(s) || math.IsInf(s, 1) {
			t.Errorf("non-finite score %v", s)
		}
	}
}
