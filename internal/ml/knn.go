package ml

import (
	"fmt"
	"sort"
)

// KNN is a k-nearest-neighbor classifier over standardized Euclidean
// distance. Ties in the vote are broken toward the nearest neighbor's class.
type KNN struct {
	// K is the neighborhood size; values < 1 default to 3 at Fit time.
	K int

	std     *Standardizer
	x       [][]float64
	y       []int
	classes int
}

// NewKNN returns a KNN classifier with neighborhood size k.
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Fit stores the standardized training set.
func (c *KNN) Fit(X [][]float64, y []int) error {
	classes, err := validate(X, y)
	if err != nil {
		return err
	}
	if c.K < 1 {
		c.K = 3
	}
	c.classes = classes
	c.std = FitStandardizer(X)
	c.x = c.std.TransformAll(X)
	c.y = append([]int(nil), y...)
	return nil
}

// neighborVotes returns per-class votes among the k nearest neighbors,
// weighted by 1/(1+dist) so nearer neighbors count more.
func (c *KNN) neighborVotes(x []float64) []float64 {
	if c.x == nil {
		panic("ml: KNN.Predict before Fit")
	}
	q := c.std.Transform(x)
	type nd struct {
		d float64
		y int
	}
	ds := make([]nd, len(c.x))
	for i, row := range c.x {
		ds[i] = nd{d: SqDist(q, row), y: c.y[i]}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
	k := c.K
	if k > len(ds) {
		k = len(ds)
	}
	votes := make([]float64, c.classes)
	for i := 0; i < k; i++ {
		votes[ds[i].y] += 1 / (1 + ds[i].d)
	}
	return votes
}

// Predict returns the majority class among the k nearest neighbors.
func (c *KNN) Predict(x []float64) int { return ArgMax(c.neighborVotes(x)) }

// Scores returns the distance-weighted votes per class.
func (c *KNN) Scores(x []float64) []float64 { return c.neighborVotes(x) }

// String describes the classifier.
func (c *KNN) String() string { return fmt.Sprintf("KNN(k=%d)", c.K) }

// NN is the nearest-neighbor (1-NN) special case.
func NN() *KNN { return NewKNN(1) }
