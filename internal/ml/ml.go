// Package ml implements the benchmark machine-learning techniques the paper
// uses for refined DA (§III-B, §V): a k-nearest-neighbor classifier (KNN,
// as in Narayanan et al.'s Internet-scale attribution), a support vector
// machine trained with Sequential Minimal Optimization (SMO, the classifier
// of Stolerman et al.'s Classify-Verify), and Regularized Least Squares
// Classification (RLSC). All are written from scratch on the standard
// library.
//
// Classifiers consume dense feature vectors and integer class labels in
// [0, numClasses).
package ml

import (
	"errors"
	"fmt"
	"math"
)

// Classifier is the common supervised-classification interface.
type Classifier interface {
	// Fit trains on rows X with labels y (len(X) == len(y); labels in
	// [0, classes)). Fit may be called once per instance.
	Fit(X [][]float64, y []int) error
	// Predict returns the predicted class of x.
	Predict(x []float64) int
	// Scores returns one score per class; higher means more likely.
	Scores(x []float64) []float64
}

// validate checks the common Fit preconditions and returns the number of
// classes (max label + 1).
func validate(X [][]float64, y []int) (classes int, err error) {
	if len(X) == 0 {
		return 0, errors.New("ml: empty training set")
	}
	if len(X) != len(y) {
		return 0, fmt.Errorf("ml: %d rows but %d labels", len(X), len(y))
	}
	dim := len(X[0])
	for i, row := range X {
		if len(row) != dim {
			return 0, fmt.Errorf("ml: row %d has dim %d, want %d", i, len(row), dim)
		}
	}
	for i, c := range y {
		if c < 0 {
			return 0, fmt.Errorf("ml: negative label %d at row %d", c, i)
		}
		if c+1 > classes {
			classes = c + 1
		}
	}
	return classes, nil
}

// Standardizer performs per-dimension standardization (zero mean, unit
// variance). Dimensions with zero variance are left centered only.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer computes per-dimension statistics of X.
func FitStandardizer(X [][]float64) *Standardizer {
	if len(X) == 0 {
		return &Standardizer{}
	}
	d := len(X[0])
	s := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, row := range X {
		for j, x := range row {
			s.Mean[j] += x
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, x := range row {
			dx := x - s.Mean[j]
			s.Std[j] += dx * dx
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
	}
	return s
}

// Transform returns the standardized copy of x.
func (s *Standardizer) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		if j >= len(s.Mean) {
			break
		}
		out[j] = v - s.Mean[j]
		if s.Std[j] > 1e-12 {
			out[j] /= s.Std[j]
		}
	}
	return out
}

// TransformAll standardizes every row.
func (s *Standardizer) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}

// Dot returns the inner product of a and b (must have equal length).
func Dot(a, b []float64) float64 {
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	var s float64
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return s
}

// ArgMax returns the index of the largest element (first on ties), or -1
// for an empty slice.
func ArgMax(xs []float64) int {
	best := -1
	bestV := math.Inf(-1)
	for i, x := range xs {
		if x > bestV {
			best, bestV = i, x
		}
	}
	return best
}
