package ml

import "fmt"

// RLSC is Regularized Least Squares Classification: one-vs-all ridge
// regression onto ±1 targets, predicted by argmax. It trains in the dual
// (kernel trick with the linear kernel): c = (K + λI)⁻¹ Y, which keeps the
// linear solve at n×n for n training posts regardless of feature
// dimensionality.
type RLSC struct {
	// Lambda is the ridge regularizer (default 1).
	Lambda float64

	std     *Standardizer
	x       [][]float64
	coef    [][]float64 // coef[class][trainRow]
	classes int
}

// NewRLSC returns an RLSC classifier with regularization lambda.
func NewRLSC(lambda float64) *RLSC { return &RLSC{Lambda: lambda} }

// Fit solves the dual ridge systems, one per class.
func (c *RLSC) Fit(X [][]float64, y []int) error {
	classes, err := validate(X, y)
	if err != nil {
		return err
	}
	if c.Lambda <= 0 {
		c.Lambda = 1
	}
	c.classes = classes
	c.std = FitStandardizer(X)
	c.x = c.std.TransformAll(X)

	n := len(c.x)
	gram := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := Dot(c.x[i], c.x[j])
			gram.Set(i, j, v)
			gram.Set(j, i, v)
		}
		gram.Add(i, i, c.Lambda)
	}
	l, err := Cholesky(gram)
	if err != nil {
		return fmt.Errorf("ml: RLSC gram factorization: %w", err)
	}
	c.coef = make([][]float64, classes)
	for cl := 0; cl < classes; cl++ {
		target := make([]float64, n)
		for i, yi := range y {
			if yi == cl {
				target[i] = 1
			} else {
				target[i] = -1
			}
		}
		coef, err := CholeskySolve(l, target)
		if err != nil {
			return err
		}
		c.coef[cl] = coef
	}
	return nil
}

// Scores returns per-class regression outputs f_c(x) = Σ_i coef_ci·⟨x_i, x⟩.
func (c *RLSC) Scores(x []float64) []float64 {
	if c.std == nil {
		panic("ml: RLSC.Scores before Fit")
	}
	q := c.std.Transform(x)
	k := make([]float64, len(c.x))
	for i, xi := range c.x {
		k[i] = Dot(xi, q)
	}
	out := make([]float64, c.classes)
	for cl, coef := range c.coef {
		out[cl] = Dot(coef, k)
	}
	return out
}

// Predict returns the argmax class.
func (c *RLSC) Predict(x []float64) int { return ArgMax(c.Scores(x)) }

// String describes the classifier.
func (c *RLSC) String() string { return fmt.Sprintf("RLSC(lambda=%g)", c.Lambda) }
