// Snapshot support: FromParts rebuilds a Store from a saved flat feature
// matrix, attribute sets and correlation topology — skipping extraction,
// the cost that warm restart exists to avoid — and Matrix exposes the
// post-major matrix for saving. Per-user views and the thread-participant
// index are cheap derivations from the dataset and are rebuilt, not
// serialized.

package features

import (
	"fmt"

	"dehealth/internal/corpus"
	"dehealth/internal/graph"
	"dehealth/internal/stylometry"
)

// Matrix returns the store's post-major feature matrix as one flat array
// of NumPosts() x Dim() values (row i is post i's vector). Before any
// Append this is the Build-time backing array itself (do not modify);
// after growth it is a fresh concatenation of every row.
func (s *Store) Matrix() []float64 {
	if len(s.flat) == s.dim*len(s.rows) {
		return s.flat
	}
	out := make([]float64, 0, s.dim*len(s.rows))
	for _, r := range s.rows {
		out = append(out, r...)
	}
	return out
}

// FromParts rebuilds a Store over d from a saved feature matrix and
// attribute sets, adopting flat as the backing matrix without copying (it
// may be a read-only snapshot mapping: the store never writes Build-time
// rows, and Append blocks are freshly allocated). topo, when non-nil, is
// the saved correlation topology and is installed as the UDA graph's
// Graph — the lazy UDA build is pre-satisfied, so no topology pass runs at
// load time. The per-user views are re-derived from the dataset exactly as
// Build derives them.
func FromParts(d *corpus.Dataset, ex *stylometry.Extractor, flat []float64, attrs []stylometry.AttrSet, topo *graph.Graph, opt Options) (*Store, error) {
	dim := ex.NumFeatures()
	n := len(d.Posts)
	if len(flat) != n*dim {
		return nil, fmt.Errorf("features: matrix of %d values for %d posts x %d features", len(flat), n, dim)
	}
	if len(attrs) != len(d.Users) {
		return nil, fmt.Errorf("features: %d attribute sets for %d users", len(attrs), len(d.Users))
	}
	if topo != nil && topo.NumNodes() != len(d.Users) {
		return nil, fmt.Errorf("features: topology of %d nodes for %d users", topo.NumNodes(), len(d.Users))
	}
	s := &Store{
		Dataset:   d,
		Extractor: ex,
		opt:       opt,
		dim:       dim,
		flat:      flat,
		rows:      make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		s.rows[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	byUser := d.PostsByUser()
	s.perUser = make([][][]float64, len(d.Users))
	for u := range s.perUser {
		idxs := byUser[u]
		vs := make([][]float64, len(idxs))
		for k, i := range idxs {
			if i < 0 || i >= n {
				return nil, fmt.Errorf("features: post index %d of user %d outside matrix of %d posts", i, u, n)
			}
			vs[k] = s.rows[i]
		}
		s.perUser[u] = vs
	}
	s.attrs = attrs
	if topo != nil {
		s.udaOnce.Do(func() {
			s.uda = &graph.UDA{Graph: topo, Attrs: s.attrs, PostVectors: s.perUser}
		})
	}
	return s, nil
}
