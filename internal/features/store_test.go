package features

import (
	"math/rand"
	"sync"
	"testing"

	"dehealth/internal/corpus"
	"dehealth/internal/stylometry"
	"dehealth/internal/synth"
)

func testForum(t *testing.T, users, posts int, seed int64) *corpus.Dataset {
	t.Helper()
	u := synth.NewUniverse(users, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	members := synth.Members(u, users, rng)
	cfg := synth.WebMDLike(users, seed+2)
	cfg.FixedPosts = posts
	return synth.Generate(cfg, u, members)
}

// TestStoreMatchesExtractAll proves the store's vectors and attribute sets
// are bit-identical to the serial seed path (Extractor.ExtractAll over
// UserTexts + UserAttributes).
func TestStoreMatchesExtractAll(t *testing.T) {
	d := testForum(t, 25, 8, 3)
	ex := NewExtractor(d.Texts(), 50)
	s := Build(d, ex, Options{})

	texts := d.UserTexts()
	if got, want := s.NumPosts(), d.NumPosts(); got != want {
		t.Fatalf("NumPosts = %d, want %d", got, want)
	}
	if got, want := s.Dim(), ex.NumFeatures(); got != want {
		t.Fatalf("Dim = %d, want %d", got, want)
	}
	for u, ts := range texts {
		want := ex.ExtractAll(ts)
		got := s.UserVectors(u)
		if len(got) != len(want) {
			t.Fatalf("user %d: %d vectors, want %d", u, len(got), len(want))
		}
		for k := range want {
			for i := range want[k] {
				if got[k][i] != want[k][i] {
					t.Fatalf("user %d post %d dim %d: %v != %v", u, k, i, got[k][i], want[k][i])
				}
			}
		}
		wantAttrs := stylometry.UserAttributes(want)
		gotAttrs := s.Attrs()[u]
		if len(gotAttrs.Idx) != len(wantAttrs.Idx) {
			t.Fatalf("user %d: attr set size %d, want %d", u, len(gotAttrs.Idx), len(wantAttrs.Idx))
		}
		for i := range wantAttrs.Idx {
			if gotAttrs.Idx[i] != wantAttrs.Idx[i] || gotAttrs.Weight[i] != wantAttrs.Weight[i] {
				t.Fatalf("user %d attr %d: (%d,%d) != (%d,%d)", u, i,
					gotAttrs.Idx[i], gotAttrs.Weight[i], wantAttrs.Idx[i], wantAttrs.Weight[i])
			}
		}
	}
}

// TestStoreWorkerCountIrrelevant proves the flat matrix does not depend on
// the worker-pool size.
func TestStoreWorkerCountIrrelevant(t *testing.T) {
	d := testForum(t, 30, 6, 9)
	ex := NewExtractor(d.Texts(), 50)
	serial := Build(d, ex, Options{Workers: 1})
	parallel := Build(d, ex, Options{Workers: 8})
	if len(serial.flat) != len(parallel.flat) {
		t.Fatalf("flat sizes differ: %d vs %d", len(serial.flat), len(parallel.flat))
	}
	for i := range serial.flat {
		if serial.flat[i] != parallel.flat[i] {
			t.Fatalf("flat[%d]: %v != %v", i, serial.flat[i], parallel.flat[i])
		}
	}
}

// TestStoreRowViews checks that per-post rows and per-user slices are views
// into the same flat backing, not copies.
func TestStoreRowViews(t *testing.T) {
	d := testForum(t, 10, 4, 5)
	ex := NewExtractor(d.Texts(), 20)
	s := Build(d, ex, Options{})
	byUser := d.PostsByUser()
	for u, idxs := range byUser {
		vs := s.UserVectors(u)
		for k, i := range idxs {
			if &vs[k][0] != &s.Row(i)[0] {
				t.Fatalf("user %d post %d: per-user vector is a copy, not a view", u, k)
			}
		}
	}
}

// TestConcurrentBuild runs several store constructions over one shared,
// already-fitted extractor from many goroutines — the multi-dataset
// preparation pattern — and is meant to run under -race.
func TestConcurrentBuild(t *testing.T) {
	d := testForum(t, 20, 6, 7)
	ex := NewExtractor(d.Texts(), 50)
	ref := Build(d, ex, Options{Workers: 1})

	var wg sync.WaitGroup
	stores := make([]*Store, 4)
	for g := range stores {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stores[g] = Build(d, ex, Options{Workers: 4})
		}(g)
	}
	wg.Wait()
	for g, s := range stores {
		for i := range ref.flat {
			if s.flat[i] != ref.flat[i] {
				t.Fatalf("goroutine %d: flat[%d] = %v, want %v", g, i, s.flat[i], ref.flat[i])
			}
		}
	}
}

// TestConcurrentUDA hammers the lazy UDA construction from many goroutines;
// every caller must observe the same cached graph (run under -race).
func TestConcurrentUDA(t *testing.T) {
	d := testForum(t, 15, 5, 11)
	ex := NewExtractor(d.Texts(), 30)
	s := Build(d, ex, Options{})
	var wg sync.WaitGroup
	got := make([]int, 8)
	for g := range got {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = s.UDA().NumEdges()
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(got); g++ {
		if got[g] != got[0] {
			t.Fatalf("goroutine %d saw %d edges, goroutine 0 saw %d", g, got[g], got[0])
		}
	}
}

// TestBuildPairSharesExtractor checks both stores of a pair use one fitted
// feature space.
func TestBuildPairSharesExtractor(t *testing.T) {
	d := testForum(t, 20, 6, 13)
	rng := rand.New(rand.NewSource(14))
	split := corpus.SplitClosedWorld(d, 0.5, rng)
	anonS, auxS := BuildPair(split.Anon, split.Aux, 50, Options{})
	if anonS.Extractor != auxS.Extractor {
		t.Error("pair stores do not share the extractor")
	}
	if anonS.Dim() != auxS.Dim() {
		t.Errorf("pair dims differ: %d vs %d", anonS.Dim(), auxS.Dim())
	}
	if auxS.Extractor.NumBigrams() == 0 {
		t.Error("extractor bigram block not fitted")
	}
}

// TestPartitionViews checks Partition covers the user space contiguously,
// clamps degenerate shard counts, and that views alias (never copy) the
// store's backing arrays.
func TestPartitionViews(t *testing.T) {
	d := testForum(t, 23, 4, 7)
	s := Build(d, NewExtractor(d.Texts(), 50), Options{})
	total := s.NumUsers()

	for _, n := range []int{1, 2, 3, 7, total, total + 9, 0, -2} {
		views := s.Partition(n)
		wantN := n
		if wantN > total {
			wantN = total
		}
		if wantN < 1 {
			wantN = 1
		}
		if len(views) != wantN {
			t.Fatalf("Partition(%d) yielded %d views, want %d", n, len(views), wantN)
		}
		at, posts := 0, 0
		for i, v := range views {
			if v.Lo != at {
				t.Fatalf("Partition(%d) view %d starts at %d, want %d", n, i, v.Lo, at)
			}
			if v.NumUsers() < total/wantN || v.NumUsers() > total/wantN+1 {
				t.Fatalf("Partition(%d) view %d has %d users, want balanced", n, i, v.NumUsers())
			}
			at = v.Hi
			posts += v.NumPosts()
		}
		if at != total {
			t.Fatalf("Partition(%d) covers [0, %d), want [0, %d)", n, at, total)
		}
		if posts != s.NumPosts() {
			t.Fatalf("Partition(%d) views own %d posts, want %d", n, posts, s.NumPosts())
		}
	}

	// Views alias the store: same attribute sets, and post vectors pointing
	// into the same flat backing rows.
	v := s.Partition(3)[1]
	for u := 0; u < v.NumUsers(); u++ {
		g := v.Lo + u
		if len(v.Attrs()[u].Idx) != len(s.Attrs()[g].Idx) {
			t.Fatalf("view attrs of local %d differ from global %d", u, g)
		}
		uv, sv := v.UserVectors(u), s.UserVectors(g)
		if len(uv) != len(sv) {
			t.Fatalf("view vectors of local %d: %d, want %d", u, len(uv), len(sv))
		}
		for k := range sv {
			if &uv[k][0] != &sv[k][0] {
				t.Fatalf("view vector (%d, %d) is a copy, want a view into the flat matrix", u, k)
			}
		}
	}
	if got := v.PostVectors(); len(got) != v.NumUsers() {
		t.Fatalf("PostVectors window has %d users, want %d", len(got), v.NumUsers())
	}

	// Slice validates its range.
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Slice accepted")
		}
	}()
	s.Slice(5, total+1)
}

// TestPartitionEmptyStore pins the degenerate empty-world behavior: one
// empty view.
func TestPartitionEmptyStore(t *testing.T) {
	empty := &corpus.Dataset{Name: "empty"}
	s := Build(empty, NewExtractor(nil, 10), Options{})
	views := s.Partition(4)
	if len(views) != 1 || views[0].Lo != 0 || views[0].Hi != 0 {
		t.Fatalf("empty-store partition = %+v, want one empty view", views)
	}
}
