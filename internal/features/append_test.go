package features

import (
	"sync"
	"sync/atomic"
	"testing"

	"dehealth/internal/corpus"
)

// TestAppendMatchesRebuild proves incremental ingestion is exactly
// equivalent to rebuilding the store over the grown dataset: same vectors,
// same per-user views, same attribute sets, and the same UDA graph edge for
// edge — including co-discussion edges between two users ingested in the
// same batch and threads opened by the ingested posts.
func TestAppendMatchesRebuild(t *testing.T) {
	d := testForum(t, 20, 6, 17)
	ex := NewExtractor(d.Texts(), 50)
	s := Build(d, ex, Options{Workers: 4})
	s.UDA() // materialize so Append must extend it in place

	batch := []UserPosts{
		{User: corpus.User{Name: "reply-heavy", TrueIdentity: -1}, Posts: []IncomingPost{
			{Thread: 0, Text: "my knee surgery recovery took three months of therapy"},
			{Thread: 1, Text: "the swelling went down after I iced it daily"},
			{Thread: 0, Text: "second post in the same thread should add no new edges"},
		}},
		{User: corpus.User{Name: "thread-starter", TrueIdentity: -1}, Posts: []IncomingPost{
			{Thread: NewThread, Text: "has anyone tried the new medication for migraines?"},
			{Thread: 1, Text: "I get auras before mine, magnesium helped a little"},
		}},
		{User: corpus.User{Name: "silent", TrueIdentity: -1}, Posts: nil},
	}
	ids, err := s.Append(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 20 || ids[2] != 22 {
		t.Fatalf("appended ids = %v, want [20 21 22]", ids)
	}
	if err := s.Dataset.Validate(); err != nil {
		t.Fatalf("grown dataset invalid: %v", err)
	}

	rebuilt := Build(s.Dataset, ex, Options{Workers: 4})
	if got, want := s.NumPosts(), rebuilt.NumPosts(); got != want {
		t.Fatalf("NumPosts = %d, want %d", got, want)
	}
	if got, want := s.NumUsers(), rebuilt.NumUsers(); got != want {
		t.Fatalf("NumUsers = %d, want %d", got, want)
	}
	for i := 0; i < s.NumPosts(); i++ {
		a, b := s.Row(i), rebuilt.Row(i)
		for j := range b {
			if a[j] != b[j] {
				t.Fatalf("post %d dim %d: %v != %v", i, j, a[j], b[j])
			}
		}
	}
	for u := 0; u < s.NumUsers(); u++ {
		if got, want := len(s.UserVectors(u)), len(rebuilt.UserVectors(u)); got != want {
			t.Fatalf("user %d: %d vectors, want %d", u, got, want)
		}
		ga, wa := s.Attrs()[u], rebuilt.Attrs()[u]
		if len(ga.Idx) != len(wa.Idx) {
			t.Fatalf("user %d: attr size %d, want %d", u, len(ga.Idx), len(wa.Idx))
		}
		for i := range wa.Idx {
			if ga.Idx[i] != wa.Idx[i] || ga.Weight[i] != wa.Weight[i] {
				t.Fatalf("user %d attr %d differs", u, i)
			}
		}
	}

	gu, ru := s.UDA(), rebuilt.UDA()
	if gu.NumNodes() != ru.NumNodes() || gu.NumEdges() != ru.NumEdges() {
		t.Fatalf("UDA shape (%d nodes, %d edges) != rebuilt (%d nodes, %d edges)",
			gu.NumNodes(), gu.NumEdges(), ru.NumNodes(), ru.NumEdges())
	}
	for u := 0; u < gu.NumNodes(); u++ {
		ge, re := gu.Neighbors(u), ru.Neighbors(u)
		if len(ge) != len(re) {
			t.Fatalf("node %d: %d neighbors, want %d", u, len(ge), len(re))
		}
		for i := range re {
			if ge[i] != re[i] {
				t.Fatalf("node %d neighbor %d: %+v != %+v", u, i, ge[i], re[i])
			}
		}
	}
}

// TestAppendBeforeUDA covers the other materialization order: appending
// while the UDA is still lazy must produce the same graph once built.
func TestAppendBeforeUDA(t *testing.T) {
	d := testForum(t, 15, 5, 19)
	ex := NewExtractor(d.Texts(), 40)
	s := Build(d, ex, Options{})
	if _, err := s.AppendUser(corpus.User{Name: "late", TrueIdentity: -1}, []IncomingPost{
		{Thread: 2, Text: "chronic back pain after lifting, stretching helps"},
	}); err != nil {
		t.Fatal(err)
	}
	rebuilt := Build(s.Dataset, ex, Options{})
	if got, want := s.UDA().NumEdges(), rebuilt.UDA().NumEdges(); got != want {
		t.Fatalf("lazy-UDA edge count %d, want %d", got, want)
	}
}

// TestAppendDegenerate covers the no-op and failure paths: an empty batch
// does nothing, and a bad thread id rejects the whole batch before any
// mutation.
func TestAppendDegenerate(t *testing.T) {
	d := testForum(t, 10, 4, 23)
	ex := NewExtractor(d.Texts(), 30)
	s := Build(d, ex, Options{})
	users, posts := s.NumUsers(), s.NumPosts()

	if ids, err := s.Append(nil); err != nil || ids != nil {
		t.Fatalf("Append(nil) = %v, %v; want nil, nil", ids, err)
	}
	if _, err := s.Append([]UserPosts{{User: corpus.User{Name: "bad"}, Posts: []IncomingPost{{Thread: 999, Text: "x"}}}}); err == nil {
		t.Fatal("out-of-range thread id not rejected")
	}
	if s.NumUsers() != users || s.NumPosts() != posts || len(s.Dataset.Users) != users {
		t.Fatal("failed Append mutated the store")
	}
}

// TestWorkerCountDegenerate pins the worker-pool resolution rules,
// including the degenerate job counts Append can produce.
func TestWorkerCountDegenerate(t *testing.T) {
	tests := []struct {
		name    string
		workers int
		n       int
		want    int
	}{
		{"empty batch", 8, 0, 1},
		{"negative jobs", 8, -3, 1},
		{"more workers than jobs", 8, 3, 3},
		{"fewer workers than jobs", 2, 100, 2},
		{"one job", 16, 1, 1},
		{"zero workers one job", 0, 1, 1},
		{"negative workers", -5, 4, 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Options{Workers: tc.workers}.workerCount(tc.n)
			if tc.workers <= 0 && tc.n > 0 {
				// GOMAXPROCS-dependent: only the bounds are pinned.
				if got < 1 || got > tc.n {
					t.Fatalf("workerCount(%d) = %d, want in [1, %d]", tc.n, got, tc.n)
				}
				return
			}
			if got != tc.want {
				t.Fatalf("workerCount(%d) = %d, want %d", tc.n, got, tc.want)
			}
		})
	}
}

// TestParallelForDegenerate proves parallelFor visits each index exactly
// once for every worker/job combination, runs nothing for n <= 0, and
// tolerates workers far beyond n.
func TestParallelForDegenerate(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		for _, n := range []int{0, -2, 1, 3, 33, 100} {
			var calls int64
			seen := make([]int64, max(n, 0))
			parallelFor(n, workers, func(i int) {
				atomic.AddInt64(&calls, 1)
				atomic.AddInt64(&seen[i], 1)
			})
			want := int64(max(n, 0))
			if calls != want {
				t.Fatalf("parallelFor(n=%d, workers=%d) ran %d calls, want %d", n, workers, calls, want)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("parallelFor(n=%d, workers=%d) visited %d %d times", n, workers, i, c)
				}
			}
		}
	}
}

// TestAppendConcurrentReads mimics the serving discipline under -race:
// appends serialized by a lock, interleaved with locked reader bursts.
func TestAppendConcurrentReads(t *testing.T) {
	d := testForum(t, 12, 4, 29)
	ex := NewExtractor(d.Texts(), 30)
	s := Build(d, ex, Options{})
	s.UDA()

	var mu sync.RWMutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				mu.Lock()
				_, err := s.AppendUser(corpus.User{Name: "w", TrueIdentity: -1}, []IncomingPost{
					{Thread: g % 3, Text: "insomnia and stress keep me up at night"},
				})
				mu.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
				mu.RLock()
				n := s.NumUsers()
				_ = s.UserVectors(n - 1)
				_ = s.UDA().Degree(n - 1)
				mu.RUnlock()
			}
		}(g)
	}
	wg.Wait()
	if got, want := s.NumUsers(), 12+20; got != want {
		t.Fatalf("NumUsers = %d, want %d", got, want)
	}
}
