// Package features is the shared feature-store layer of the De-Health
// pipeline: stylometric feature matrices extracted once per dataset and
// reused by every downstream consumer (UDA graph construction, Top-K
// structural similarity, threshold filtering and refined-DA classification).
//
// The De-Health attack spends almost all of its time extracting the Table I
// stylometric vector of every post, yet the same (dataset, extractor) pair
// is consumed by many experiment configurations — similarity weights,
// candidate-set sizes K, classifiers, open-world schemes. A Store
// materializes the whole |posts| × M feature matrix once, with a bounded
// worker pool over posts, into a single flat backing array; everything
// above it (the UDA graph, per-user post slices, attribute sets) is a view
// or a cached derivation. Building a Store and fanning an experiment grid
// out over it replaces per-configuration re-extraction with O(1) reuse.
package features

import (
	"fmt"
	"runtime"
	"sync"

	"dehealth/internal/corpus"
	"dehealth/internal/graph"
	"dehealth/internal/stylometry"
)

// Options configures store construction.
type Options struct {
	// Workers bounds the feature-extraction worker pool. <= 0 uses
	// GOMAXPROCS (all CPUs).
	Workers int
}

// workerCount resolves Options.Workers against the job count n: never more
// workers than jobs, never fewer than one. n <= 0 (an empty batch) resolves
// to a single worker explicitly, so degenerate calls cannot spin up a pool
// of idle goroutines.
func (o Options) workerCount(n int) int {
	if n <= 0 {
		return 1
	}
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Store is a fitted extractor plus the dataset's fully materialized feature
// artifacts: the flat post-feature matrix, per-user post-vector slices, the
// derived attribute sets, and (lazily) the UDA graph. Concurrent reads are
// safe. The store can grow — Append / AppendUser vectorize newly observed
// users incrementally, extending the matrix, the per-user views and the UDA
// graph without rebuilding anything — but growth must be serialized against
// reads by the caller (the serving layer funnels all mutation through a
// single batch loop).
type Store struct {
	// Dataset is the forum the features were extracted from. Append extends
	// it in place (users, threads and posts keep dense ids).
	Dataset *corpus.Dataset
	// Extractor is the fitted feature space shared with the sibling store
	// (fit the POS-bigram block on the auxiliary texts, as the adversary
	// would).
	Extractor *stylometry.Extractor

	opt     Options
	dim     int
	flat    []float64     // Build-time |posts| × dim feature matrix, post-major
	rows    [][]float64   // rows[i] = post i's vector (views into flat or append blocks)
	perUser [][][]float64 // perUser[u] = u's post vectors in post order
	attrs   []stylometry.AttrSet

	udaOnce sync.Once
	uda     *graph.UDA

	// threadUsers[t] lists the distinct users who posted under thread t, in
	// first-post order — the incremental counterpart of BuildCorrelation's
	// per-thread participant scan. Built lazily on first Append.
	threadUsers map[int][]int
}

// NewExtractor fits a fresh extractor's POS-bigram block on refTexts
// (conventionally the auxiliary texts — the adversary's data). maxBigrams
// <= 0 uses the stylometry default.
func NewExtractor(refTexts []string, maxBigrams int) *stylometry.Extractor {
	ex := stylometry.New()
	ex.FitBigrams(refTexts, maxBigrams)
	return ex
}

// Build extracts every post of d with ex into a new Store, running the
// extraction over a bounded worker pool. The resulting per-user vectors are
// bit-identical to ex.ExtractAll over d.UserTexts(): extraction is
// deterministic per post, and parallelism only reorders which worker fills
// which row of the flat matrix.
func Build(d *corpus.Dataset, ex *stylometry.Extractor, opt Options) *Store {
	n := len(d.Posts)
	dim := ex.NumFeatures()
	s := &Store{
		Dataset:   d,
		Extractor: ex,
		opt:       opt,
		dim:       dim,
		flat:      make([]float64, n*dim),
		rows:      make([][]float64, n),
	}
	parallelFor(n, opt.workerCount(n), func(i int) {
		row := s.flat[i*dim : (i+1)*dim : (i+1)*dim]
		ex.ExtractInto(row, d.Posts[i].Text)
		s.rows[i] = row
	})

	byUser := d.PostsByUser()
	s.perUser = make([][][]float64, len(d.Users))
	s.attrs = make([]stylometry.AttrSet, len(d.Users))
	parallelFor(len(d.Users), opt.workerCount(len(d.Users)), func(u int) {
		idxs := byUser[u]
		vs := make([][]float64, len(idxs))
		for k, i := range idxs {
			vs[k] = s.rows[i]
		}
		s.perUser[u] = vs
		s.attrs[u] = stylometry.UserAttributes(vs)
	})
	return s
}

// BuildPair fits an extractor on the auxiliary texts and builds the stores
// of both sides of an attack — the standard preparation step of the
// two-phase De-Health pipeline.
func BuildPair(anon, aux *corpus.Dataset, maxBigrams int, opt Options) (anonStore, auxStore *Store) {
	ex := NewExtractor(aux.Texts(), maxBigrams)
	return Build(anon, ex, opt), Build(aux, ex, opt)
}

// parallelFor runs f(i) for i in [0, n) over workers goroutines, in chunks
// to keep scheduling overhead off the hot path. With workers <= 1 it
// degenerates to a plain loop. Degenerate inputs are explicitly safe:
// n <= 0 runs nothing, and workers > n is clamped to n so no goroutine is
// ever spawned without work to claim.
func parallelFor(n, workers int, f func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	const chunk = 32
	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				start := next
				next += chunk
				mu.Unlock()
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					f(i)
				}
			}
		}()
	}
	wg.Wait()
}

// NumPosts returns the number of rows in the feature matrix.
func (s *Store) NumPosts() int { return len(s.rows) }

// NumUsers returns the number of users the store has vectors for.
func (s *Store) NumUsers() int { return len(s.perUser) }

// Dim returns M, the width of the feature matrix.
func (s *Store) Dim() int { return s.dim }

// Row returns post i's feature vector (a view into the flat backing; do not
// modify).
func (s *Store) Row(i int) []float64 { return s.rows[i] }

// PostVectors returns the per-user post vectors in post order (shared
// views; do not modify). The shape matches graph.UDA.PostVectors.
func (s *Store) PostVectors() [][][]float64 { return s.perUser }

// UserVectors returns user u's post vectors in post order (shared views; do
// not modify).
func (s *Store) UserVectors(u int) [][]float64 { return s.perUser[u] }

// Attrs returns the per-user attribute sets A(u)/WA(u) (shared; do not
// modify).
func (s *Store) Attrs() []stylometry.AttrSet { return s.attrs }

// UDA returns the dataset's User-Data-Attribute graph over the store's
// vectors, building the correlation-graph topology on first call and
// caching it. Safe for concurrent use.
func (s *Store) UDA() *graph.UDA {
	s.udaOnce.Do(func() {
		s.uda = graph.BuildUDAFromVectors(s.Dataset, s.perUser, s.attrs)
	})
	return s.uda
}

// View is a contiguous user-range view [Lo, Hi) of a Store. Views never
// copy feature data: the per-user vectors, attribute sets and post vectors
// they expose are slice windows indexing into the store's shared backing
// arrays (and, underneath those, the one flat feature matrix). The shard
// engine hands each auxiliary partition its own View so per-shard scoring
// walks a contiguous region of the shared store.
type View struct {
	// Store is the backing store the view windows into.
	Store *Store
	// Lo and Hi bound the view's global user-id range [Lo, Hi).
	Lo, Hi int
}

// NumUsers returns the number of users in the view.
func (v View) NumUsers() int { return v.Hi - v.Lo }

// NumPosts returns the number of posts owned by the view's users.
func (v View) NumPosts() int {
	n := 0
	for _, vs := range v.Store.perUser[v.Lo:v.Hi] {
		n += len(vs)
	}
	return n
}

// UserVectors returns local user u's post vectors (global user v.Lo+u;
// shared views into the flat matrix, do not modify).
func (v View) UserVectors(u int) [][]float64 { return v.Store.perUser[v.Lo+u] }

// PostVectors returns the view's per-user post vectors (a slice window of
// the store's; do not modify). Shape matches graph.UDA.PostVectors.
func (v View) PostVectors() [][][]float64 { return v.Store.perUser[v.Lo:v.Hi:v.Hi] }

// Attrs returns the view's per-user attribute sets (a slice window of the
// store's; do not modify).
func (v View) Attrs() []stylometry.AttrSet { return v.Store.attrs[v.Lo:v.Hi:v.Hi] }

// Slice returns the user-range view [lo, hi) of the store.
func (s *Store) Slice(lo, hi int) View {
	if lo < 0 || hi > s.NumUsers() || lo > hi {
		panic(fmt.Sprintf("features: Slice [%d, %d) out of [0, %d)", lo, hi, s.NumUsers()))
	}
	return View{Store: s, Lo: lo, Hi: hi}
}

// Partition cuts the store's users into n contiguous views covering
// [0, NumUsers) with sizes differing by at most one. n is clamped to
// [1, NumUsers] (an empty store yields one empty view), so callers can pass
// any requested shard count and always get a usable partition back.
func (s *Store) Partition(n int) []View {
	total := s.NumUsers()
	if n > total {
		n = total
	}
	if n < 1 {
		n = 1
	}
	views := make([]View, n)
	for i := 0; i < n; i++ {
		views[i] = View{Store: s, Lo: i * total / n, Hi: (i + 1) * total / n}
	}
	return views
}

// NewThread marks an IncomingPost as starting a fresh thread rather than
// replying to an existing one.
const NewThread = -1

// IncomingPost is one post of a newly observed user: the thread it was
// posted under (an existing thread id, or NewThread to start a new thread)
// and its text.
type IncomingPost struct {
	Thread int
	Text   string
}

// UserPosts is one newly observed user and their posts, the unit of
// incremental ingestion. User.ID is assigned by Append; set
// User.TrueIdentity to -1 unless evaluation ground truth exists.
type UserPosts struct {
	User  corpus.User
	Posts []IncomingPost
}

// AppendUser appends one newly observed user; see Append.
func (s *Store) AppendUser(u corpus.User, posts []IncomingPost) (int, error) {
	ids, err := s.Append([]UserPosts{{User: u, Posts: posts}})
	if err != nil {
		return -1, err
	}
	return ids[0], nil
}

// Append ingests a batch of newly observed users incrementally: their posts
// are appended to the dataset (dense ids preserved), vectorized with the
// store's fitted extractor over the Build-time worker pool, and folded into
// the per-user views and attribute sets. If the UDA graph is already
// materialized it is extended in place — one node per user plus the
// co-discussion edges implied by the new posts — never rebuilt. The result
// is exactly the store Build would produce over the grown dataset (the
// equivalence is covered by the append parity test).
//
// Posts may reference existing threads by id or open new ones with
// NewThread; an out-of-range thread id fails the whole batch before any
// mutation. Appending an empty batch is a no-op.
//
// Append must be serialized against all other store access by the caller;
// see the Store doc.
func (s *Store) Append(batch []UserPosts) ([]int, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	d := s.Dataset
	for bi, up := range batch {
		for pi, p := range up.Posts {
			if p.Thread != NewThread && (p.Thread < 0 || p.Thread >= len(d.Threads)) {
				return nil, fmt.Errorf("features: batch user %d post %d references thread %d of %d", bi, pi, p.Thread, len(d.Threads))
			}
		}
	}
	s.ensureThreadUsers()

	// Extend the dataset: users, threads and posts keep dense ids.
	firstPost := len(d.Posts)
	ids := make([]int, len(batch))
	for bi, up := range batch {
		u := len(d.Users)
		ids[bi] = u
		nu := up.User
		nu.ID = u
		d.Users = append(d.Users, nu)
		for _, p := range up.Posts {
			t := p.Thread
			if t == NewThread {
				t = len(d.Threads)
				d.Threads = append(d.Threads, corpus.Thread{ID: t, Board: "ingest", Starter: u})
			}
			d.Posts = append(d.Posts, corpus.Post{ID: len(d.Posts), User: u, Thread: t, Text: p.Text})
		}
	}

	// Vectorize the new posts into a fresh backing block (the Build-time
	// matrix is never reallocated, so existing row views stay valid).
	nNew := len(d.Posts) - firstPost
	block := make([]float64, nNew*s.dim)
	rows := make([][]float64, nNew)
	parallelFor(nNew, s.opt.workerCount(nNew), func(i int) {
		row := block[i*s.dim : (i+1)*s.dim : (i+1)*s.dim]
		s.Extractor.ExtractInto(row, d.Posts[firstPost+i].Text)
		rows[i] = row
	})
	s.rows = append(s.rows, rows...)

	// Per-user views and attribute sets.
	firstUser := ids[0]
	byUser := make([][][]float64, len(batch))
	for i := firstPost; i < len(d.Posts); i++ {
		u := d.Posts[i].User - firstUser
		byUser[u] = append(byUser[u], s.rows[i])
	}
	for bi := range batch {
		s.perUser = append(s.perUser, byUser[bi])
		s.attrs = append(s.attrs, stylometry.UserAttributes(byUser[bi]))
	}

	// Extend the UDA graph in place when it exists (a lazily built one will
	// see the grown dataset anyway), and keep the thread index current.
	for bi := range batch {
		u := ids[bi]
		if s.uda != nil {
			s.uda.AppendNode(s.attrs[u], s.perUser[u])
		}
	}
	for i := firstPost; i < len(d.Posts); i++ {
		s.observePost(d.Posts[i].User, d.Posts[i].Thread)
	}
	return ids, nil
}

// ensureThreadUsers builds the per-thread distinct-participant index from
// the current dataset on first use.
func (s *Store) ensureThreadUsers() {
	if s.threadUsers != nil {
		return
	}
	s.threadUsers = make(map[int][]int, len(s.Dataset.Threads))
	seen := make(map[[2]int]bool, len(s.Dataset.Posts))
	for _, p := range s.Dataset.Posts {
		key := [2]int{p.Thread, p.User}
		if !seen[key] {
			seen[key] = true
			s.threadUsers[p.Thread] = append(s.threadUsers[p.Thread], p.User)
		}
	}
}

// observePost records user u posting under thread t: on u's first post in
// t, a co-discussion edge to every prior participant is added (weight 1 per
// shared thread, matching BuildCorrelation) and u joins the participant
// list.
func (s *Store) observePost(u, t int) {
	for _, v := range s.threadUsers[t] {
		if v == u {
			return // already a participant; no new edges
		}
	}
	if s.uda != nil {
		for _, v := range s.threadUsers[t] {
			s.uda.AddEdge(u, v, 1)
		}
	}
	s.threadUsers[t] = append(s.threadUsers[t], u)
}
