// Package features is the shared feature-store layer of the De-Health
// pipeline: stylometric feature matrices extracted once per dataset and
// reused by every downstream consumer (UDA graph construction, Top-K
// structural similarity, threshold filtering and refined-DA classification).
//
// The De-Health attack spends almost all of its time extracting the Table I
// stylometric vector of every post, yet the same (dataset, extractor) pair
// is consumed by many experiment configurations — similarity weights,
// candidate-set sizes K, classifiers, open-world schemes. A Store
// materializes the whole |posts| × M feature matrix once, with a bounded
// worker pool over posts, into a single flat backing array; everything
// above it (the UDA graph, per-user post slices, attribute sets) is a view
// or a cached derivation. Building a Store and fanning an experiment grid
// out over it replaces per-configuration re-extraction with O(1) reuse.
package features

import (
	"runtime"
	"sync"

	"dehealth/internal/corpus"
	"dehealth/internal/graph"
	"dehealth/internal/stylometry"
)

// Options configures store construction.
type Options struct {
	// Workers bounds the feature-extraction worker pool. <= 0 uses
	// GOMAXPROCS (all CPUs).
	Workers int
}

// workerCount resolves Options.Workers against the job count n.
func (o Options) workerCount(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Store is a fitted extractor plus the dataset's fully materialized feature
// artifacts: the flat post-feature matrix, per-user post-vector slices, the
// derived attribute sets, and (lazily) the UDA graph. A Store is immutable
// after Build and safe for concurrent use.
type Store struct {
	// Dataset is the forum the features were extracted from.
	Dataset *corpus.Dataset
	// Extractor is the fitted feature space shared with the sibling store
	// (fit the POS-bigram block on the auxiliary texts, as the adversary
	// would).
	Extractor *stylometry.Extractor

	dim     int
	flat    []float64     // |posts| × dim feature matrix, post-major
	rows    [][]float64   // rows[i] = post i's vector, a view into flat
	perUser [][][]float64 // perUser[u] = u's post vectors in post order
	attrs   []stylometry.AttrSet

	udaOnce sync.Once
	uda     *graph.UDA
}

// NewExtractor fits a fresh extractor's POS-bigram block on refTexts
// (conventionally the auxiliary texts — the adversary's data). maxBigrams
// <= 0 uses the stylometry default.
func NewExtractor(refTexts []string, maxBigrams int) *stylometry.Extractor {
	ex := stylometry.New()
	ex.FitBigrams(refTexts, maxBigrams)
	return ex
}

// Build extracts every post of d with ex into a new Store, running the
// extraction over a bounded worker pool. The resulting per-user vectors are
// bit-identical to ex.ExtractAll over d.UserTexts(): extraction is
// deterministic per post, and parallelism only reorders which worker fills
// which row of the flat matrix.
func Build(d *corpus.Dataset, ex *stylometry.Extractor, opt Options) *Store {
	n := len(d.Posts)
	dim := ex.NumFeatures()
	s := &Store{
		Dataset:   d,
		Extractor: ex,
		dim:       dim,
		flat:      make([]float64, n*dim),
		rows:      make([][]float64, n),
	}
	parallelFor(n, opt.workerCount(n), func(i int) {
		row := s.flat[i*dim : (i+1)*dim : (i+1)*dim]
		ex.ExtractInto(row, d.Posts[i].Text)
		s.rows[i] = row
	})

	byUser := d.PostsByUser()
	s.perUser = make([][][]float64, len(d.Users))
	s.attrs = make([]stylometry.AttrSet, len(d.Users))
	parallelFor(len(d.Users), opt.workerCount(len(d.Users)), func(u int) {
		idxs := byUser[u]
		vs := make([][]float64, len(idxs))
		for k, i := range idxs {
			vs[k] = s.rows[i]
		}
		s.perUser[u] = vs
		s.attrs[u] = stylometry.UserAttributes(vs)
	})
	return s
}

// BuildPair fits an extractor on the auxiliary texts and builds the stores
// of both sides of an attack — the standard preparation step of the
// two-phase De-Health pipeline.
func BuildPair(anon, aux *corpus.Dataset, maxBigrams int, opt Options) (anonStore, auxStore *Store) {
	ex := NewExtractor(aux.Texts(), maxBigrams)
	return Build(anon, ex, opt), Build(aux, ex, opt)
}

// parallelFor runs f(i) for i in [0, n) over workers goroutines, in chunks
// to keep scheduling overhead off the hot path. With workers == 1 it
// degenerates to a plain loop.
func parallelFor(n, workers int, f func(i int)) {
	if n == 0 {
		return
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	const chunk = 32
	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				start := next
				next += chunk
				mu.Unlock()
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					f(i)
				}
			}
		}()
	}
	wg.Wait()
}

// NumPosts returns the number of rows in the feature matrix.
func (s *Store) NumPosts() int { return len(s.rows) }

// Dim returns M, the width of the feature matrix.
func (s *Store) Dim() int { return s.dim }

// Row returns post i's feature vector (a view into the flat backing; do not
// modify).
func (s *Store) Row(i int) []float64 { return s.rows[i] }

// PostVectors returns the per-user post vectors in post order (shared
// views; do not modify). The shape matches graph.UDA.PostVectors.
func (s *Store) PostVectors() [][][]float64 { return s.perUser }

// UserVectors returns user u's post vectors in post order (shared views; do
// not modify).
func (s *Store) UserVectors(u int) [][]float64 { return s.perUser[u] }

// Attrs returns the per-user attribute sets A(u)/WA(u) (shared; do not
// modify).
func (s *Store) Attrs() []stylometry.AttrSet { return s.attrs }

// UDA returns the dataset's User-Data-Attribute graph over the store's
// vectors, building the correlation-graph topology on first call and
// caching it. Safe for concurrent use.
func (s *Store) UDA() *graph.UDA {
	s.udaOnce.Do(func() {
		s.uda = graph.BuildUDAFromVectors(s.Dataset, s.perUser, s.attrs)
	})
	return s.uda
}
