package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"dehealth/internal/linkage"
)

// ServiceConfig shapes one external service in the synthetic Internet.
type ServiceConfig struct {
	// Name is the service label ("facebook", "twitter", ...).
	Name string
	// Coverage is the probability a person has an account.
	Coverage float64
	// ShowsName / ShowsCity / ShowsBirthYear / ShowsPhone control which
	// identity attributes the profile exposes publicly.
	ShowsName, ShowsCity, ShowsBirthYear, ShowsPhone bool
	// AvatarRate is the probability an account has a profile photo.
	AvatarRate float64
}

// DefaultServices models the external services of the §VI proof-of-concept
// attack: the social networks AvatarLink reached (Facebook, Twitter,
// LinkedIn, Google+) and the Whitepages people-search site used for
// enrichment.
func DefaultServices() []ServiceConfig {
	return []ServiceConfig{
		{Name: "facebook", Coverage: 0.60, ShowsName: true, ShowsCity: true, AvatarRate: 0.8},
		{Name: "twitter", Coverage: 0.35, ShowsName: false, ShowsCity: true, AvatarRate: 0.6},
		{Name: "linkedin", Coverage: 0.30, ShowsName: true, ShowsCity: true, AvatarRate: 0.7},
		{Name: "googleplus", Coverage: 0.20, ShowsName: true, ShowsCity: false, AvatarRate: 0.5},
		{Name: "whitepages", Coverage: 0.75, ShowsName: true, ShowsCity: true, ShowsBirthYear: true, ShowsPhone: true, AvatarRate: 0},
	}
}

// SocialDirectory materializes external-service profiles for the universe's
// persons. Persons who reuse usernames/avatars do so here as well — the
// behaviour NameLink and AvatarLink exploit.
func SocialDirectory(u *Universe, services []ServiceConfig, seed int64) *linkage.Directory {
	rng := rand.New(rand.NewSource(seed))
	var profiles []linkage.Profile
	for _, svc := range services {
		for _, p := range u.Persons {
			if rng.Float64() >= svc.Coverage {
				continue
			}
			prof := linkage.Profile{Service: svc.Name, PersonID: p.ID}
			if p.ReusesUsername {
				prof.Username = p.Username
			} else {
				prof.Username = FreshUsername(p, rng)
			}
			if svc.Name == "whitepages" {
				// People-search sites key on legal names, not usernames.
				prof.Username = fmt.Sprintf("%s.%s.%d", p.First, p.Last, rng.Intn(1000))
			}
			if svc.ShowsName {
				prof.FullName = title(p.First) + " " + title(p.Last)
			}
			if svc.ShowsCity {
				prof.City = p.City
			}
			if svc.ShowsBirthYear {
				prof.BirthYear = p.BirthYear
			}
			if svc.ShowsPhone {
				prof.Phone = p.Phone
			}
			if rng.Float64() < svc.AvatarRate {
				if p.ReusesAvatar {
					prof.AvatarHash = PerturbedAvatar(p, 2, rng)
				} else {
					prof.AvatarHash = rng.Uint64()
				}
			}
			profiles = append(profiles, prof)
		}
	}
	return linkage.NewDirectory(profiles)
}

func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
