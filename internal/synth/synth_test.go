package synth

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dehealth/internal/corpus"
	"dehealth/internal/graph"
)

func genForum(users int, seed int64, cfg ForumConfig) *corpus.Dataset {
	u := NewUniverse(users+users/2, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	members := Members(u, users, rng)
	return Generate(cfg, u, members)
}

func TestWebMDCalibration(t *testing.T) {
	d := genForum(1500, 7, WebMDLike(1500, 9))
	if err := d.Validate(); err != nil {
		t.Fatalf("generated dataset invalid: %v", err)
	}
	// Fig.1 headline: 87.3% of users have < 5 posts.
	if got := d.FractionUsersWithFewerThan(5); math.Abs(got-0.873) > 0.05 {
		t.Errorf("frac <5 posts = %v, want 0.873 +- 0.05", got)
	}
	// Fig.2 headline: mean post length 127.59 words.
	if got := d.MeanPostLengthWords(); math.Abs(got-127.59) > 20 {
		t.Errorf("mean post length = %v, want 127.59 +- 20", got)
	}
	// Posts-per-user mean near 5.66 (tail-sensitive; loose band).
	mean := float64(d.NumPosts()) / float64(d.NumUsers())
	if mean < 3 || mean > 9 {
		t.Errorf("mean posts/user = %v, want in [3, 9]", mean)
	}
}

func TestHBCalibration(t *testing.T) {
	d := genForum(1500, 11, HBLike(1500, 13))
	if got := d.FractionUsersWithFewerThan(5); math.Abs(got-0.754) > 0.06 {
		t.Errorf("frac <5 posts = %v, want 0.754 +- 0.06", got)
	}
	if got := d.MeanPostLengthWords(); math.Abs(got-147.24) > 22 {
		t.Errorf("mean post length = %v, want 147.24 +- 22", got)
	}
	mean := float64(d.NumPosts()) / float64(d.NumUsers())
	if mean < 7 || mean > 18 {
		t.Errorf("mean posts/user = %v, want in [7, 18]", mean)
	}
	// HB exposes locations for most users.
	withLoc := 0
	for _, u := range d.Users {
		if u.Location != "" {
			withLoc++
		}
	}
	if frac := float64(withLoc) / float64(d.NumUsers()); math.Abs(frac-0.7) > 0.08 {
		t.Errorf("location fraction = %v, want ~0.7", frac)
	}
}

func TestGraphShape(t *testing.T) {
	d := genForum(800, 3, WebMDLike(800, 5))
	g := graph.BuildCorrelation(d)
	// Appendix B: low average degree, disconnected graph.
	if avg := g.AverageDegree(); avg > 30 {
		t.Errorf("average degree %v too high for the paper's sparse shape", avg)
	}
	if _, comps := g.Components(); comps < 5 {
		t.Errorf("components = %d; the graph must be disconnected", comps)
	}
}

func TestDeterminism(t *testing.T) {
	a := genForum(200, 21, WebMDLike(200, 23))
	b := genForum(200, 21, WebMDLike(200, 23))
	if !reflect.DeepEqual(a, b) {
		t.Error("generation is not deterministic for a fixed seed")
	}
	c := genForum(200, 22, WebMDLike(200, 23))
	if reflect.DeepEqual(a.Posts, c.Posts) {
		t.Error("different universe seeds produced identical posts")
	}
}

func TestFixedPosts(t *testing.T) {
	cfg := WebMDLike(30, 3)
	cfg.FixedPosts = 7
	d := genForum(30, 1, cfg)
	counts := map[int]int{}
	for _, p := range d.Posts {
		counts[p.User]++
	}
	for u, n := range counts {
		if n != 7 {
			t.Errorf("user %d has %d posts, want 7", u, n)
		}
	}
	if len(counts) != 30 {
		t.Errorf("%d users posted, want 30", len(counts))
	}
}

func TestAuthorStyleConsistency(t *testing.T) {
	// The same person generates posts with the same habitual misspellings;
	// different persons mostly do not share them.
	u := NewUniverse(2, 5)
	p0, p1 := u.Persons[0], u.Persons[1]
	if len(p0.Profile.Misspellings) == 0 {
		t.Fatal("profile has no misspellings")
	}
	g0 := &textGen{p: p0.Profile, rng: rand.New(rand.NewSource(1))}
	g1 := &textGen{p: p1.Profile, rng: rand.New(rand.NewSource(2))}
	text0, text1 := "", ""
	for i := 0; i < 30; i++ {
		text0 += " " + g0.Post(boards[p0.Profile.Boards[0]], 150)
		text1 += " " + g1.Post(boards[p1.Profile.Boards[0]], 150)
	}
	shared0 := 0
	for _, wrong := range p0.Profile.Misspellings {
		if strings.Contains(text0, wrong) {
			shared0++
		}
	}
	if shared0 == 0 {
		t.Error("author's habitual misspellings never appear in their posts")
	}
	_ = text1
}

func TestUniverseIdentities(t *testing.T) {
	u := NewUniverse(500, 9)
	if len(u.Persons) != 500 {
		t.Fatalf("persons = %d", len(u.Persons))
	}
	for i, p := range u.Persons {
		if p.ID != i {
			t.Fatalf("person %d has id %d", i, p.ID)
		}
		if p.First == "" || p.Last == "" || p.City == "" || p.Username == "" {
			t.Fatalf("person %d incomplete: %+v", i, p)
		}
		if p.BirthYear < 1940 || p.BirthYear > 2000 {
			t.Fatalf("person %d birth year %d", i, p.BirthYear)
		}
		if p.Profile == nil {
			t.Fatalf("person %d has no style profile", i)
		}
	}
}

func TestPerturbedAvatarClose(t *testing.T) {
	u := NewUniverse(5, 1)
	rng := rand.New(rand.NewSource(2))
	p := u.Persons[0]
	for i := 0; i < 50; i++ {
		h := PerturbedAvatar(p, 2, rng)
		if d := popcount(h ^ p.Avatar); d > 2 {
			t.Fatalf("perturbation flipped %d bits, max 2", d)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestOverlappingMembers(t *testing.T) {
	u := NewUniverse(100, 3)
	rng := rand.New(rand.NewSource(4))
	a, b := OverlappingMembers(u, 30, 40, 10, rng)
	if len(a) != 30 || len(b) != 40 {
		t.Fatalf("sizes %d/%d", len(a), len(b))
	}
	inA := map[int]bool{}
	for _, x := range a {
		inA[x] = true
	}
	shared := 0
	for _, x := range b {
		if inA[x] {
			shared++
		}
	}
	if shared != 10 {
		t.Errorf("shared members = %d, want 10", shared)
	}
}

func TestSocialDirectory(t *testing.T) {
	u := NewUniverse(300, 17)
	dir := SocialDirectory(u, DefaultServices(), 19)
	if len(dir.Profiles) == 0 {
		t.Fatal("empty directory")
	}
	services := map[string]int{}
	reusedHasUsername := 0
	for _, p := range dir.Profiles {
		services[p.Service]++
		if p.PersonID < 0 || p.PersonID >= 300 {
			t.Fatalf("profile has bad person id %d", p.PersonID)
		}
		person := u.Persons[p.PersonID]
		if person.ReusesUsername && p.Service != "whitepages" && p.Username == person.Username {
			reusedHasUsername++
		}
	}
	for _, svc := range []string{"facebook", "twitter", "linkedin", "whitepages"} {
		if services[svc] == 0 {
			t.Errorf("no %s profiles generated", svc)
		}
	}
	if reusedHasUsername == 0 {
		t.Error("username reuse never materialized")
	}
	// Whitepages profiles expose phone numbers.
	for _, p := range dir.Profiles {
		if p.Service == "whitepages" && p.Phone == "" {
			t.Error("whitepages profile without phone")
			break
		}
	}
}

func TestUsernamesUniqueWithinForum(t *testing.T) {
	d := genForum(400, 31, WebMDLike(400, 33))
	seen := map[string]bool{}
	for _, u := range d.Users {
		if seen[u.Name] {
			t.Fatalf("duplicate username %q", u.Name)
		}
		seen[u.Name] = true
	}
}

func TestAvatarKindsDistribution(t *testing.T) {
	d := genForum(2000, 41, WebMDLike(2000, 43))
	counts := map[corpus.AvatarKind]int{}
	for _, u := range d.Users {
		counts[u.AvatarKind]++
	}
	// Default avatars dominate; real-person avatars are the small §VI
	// population (paper: 2805 / 89393 ≈ 3.1%).
	if counts[corpus.AvatarDefault] < 1000 {
		t.Errorf("default avatars = %d, want majority", counts[corpus.AvatarDefault])
	}
	frac := float64(counts[corpus.AvatarRealPerson]) / 2000
	if frac < 0.015 || frac > 0.06 {
		t.Errorf("real-person avatar fraction = %v, want ~0.035", frac)
	}
}

func TestBoardsWellFormed(t *testing.T) {
	if NumBoards() < 10 {
		t.Errorf("only %d boards", NumBoards())
	}
	names := map[string]bool{}
	for _, b := range boards {
		if b.Name == "" || len(b.Conditions) == 0 || len(b.Symptoms) == 0 || len(b.Meds) == 0 {
			t.Errorf("board %q incomplete", b.Name)
		}
		if names[b.Name] {
			t.Errorf("duplicate board %q", b.Name)
		}
		names[b.Name] = true
	}
	if len(BoardNames()) != NumBoards() {
		t.Error("BoardNames length mismatch")
	}
}

func TestPostLengthSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		l := samplePostLen(rng, 130, 0.55)
		if l < 15 || l > 800 {
			t.Fatalf("sampled length %d outside [15, 800]", l)
		}
	}
}
