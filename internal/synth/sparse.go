package synth

import (
	"fmt"
	"math/rand"

	"dehealth/internal/corpus"
	"dehealth/internal/graph"
	"dehealth/internal/stylometry"
)

// SparseAttrUDA builds a synthetic UDA graph with community-pooled sparse
// attribute sets: n users in communities of size comm, each community
// drawing its attributes from a small contiguous pool of the dim-wide
// attribute space, so same-community users overlap while the rest of the
// population (mostly) does not — the sparse-overlap regime the
// candidate-pruning index (internal/index) targets, standing in for
// stylometric attributes clustering by writing style. Topology comes from
// random co-posting threads, as in the real corpus model. Deterministic
// per seed; the pruning parity tests and BenchmarkQueryUserPruned build
// both world sides with it.
func SparseAttrUDA(n, comm, dim int, seed int64) *graph.UDA {
	rng := rand.New(rand.NewSource(seed))
	d := &corpus.Dataset{Name: "sparse-attr"}
	for i := 0; i < n; i++ {
		d.Users = append(d.Users, corpus.User{ID: i, Name: fmt.Sprintf("u%d", i), TrueIdentity: i})
	}
	for t := 0; t < n; t++ {
		d.Threads = append(d.Threads, corpus.Thread{ID: t, Board: "b", Starter: rng.Intn(n)})
		k := 2 + rng.Intn(3)
		for j := 0; j < k; j++ {
			d.Posts = append(d.Posts, corpus.Post{ID: len(d.Posts), User: rng.Intn(n), Thread: t, Text: "x"})
		}
	}
	const poolSize, attrsPer = 20, 8
	attrs := make([]stylometry.AttrSet, n)
	vecs := make([][][]float64, n)
	for u := 0; u < n; u++ {
		base := (u / comm) * poolSize % (dim - poolSize)
		picked := map[int]bool{}
		for len(picked) < attrsPer {
			picked[base+rng.Intn(poolSize)] = true
		}
		set := stylometry.AttrSet{Idx: make([]int, 0, attrsPer), Weight: make([]int, 0, attrsPer)}
		for a := base; a < base+poolSize; a++ { // ascending, as AttrSet requires
			if picked[a] {
				set.Idx = append(set.Idx, a)
				set.Weight = append(set.Weight, 1+rng.Intn(3))
			}
		}
		attrs[u] = set
		vecs[u] = [][]float64{{1}}
	}
	return graph.BuildUDAFromVectors(d, vecs, attrs)
}
