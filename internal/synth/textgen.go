package synth

import (
	"math/rand"
	"strings"
)

// numberWords maps spelled numbers to digits for the DigitStyle habit.
var numberWords = map[string]string{
	"one": "1", "two": "2", "three": "3", "four": "4", "five": "5",
	"six": "6", "seven": "7", "eight": "8", "nine": "9", "ten": "10",
	"twenty": "20", "thirty": "30",
}

// textGen generates posts for one author.
type textGen struct {
	p   *StyleProfile
	rng *rand.Rand

	// damp scales habit rates for the current post. Real authors do not
	// exhibit every habit in every post — mood, haste and topic suppress
	// them — so each post draws its own style discipline in (0, 1]. This is
	// the knob that keeps post-level attribution hard (the paper's
	// Stylometry baseline fails with 10–20 posts) while user-level
	// aggregation across posts still accumulates the fingerprint.
	damp float64
}

// rate returns the per-post dampened version of a habit rate.
func (g *textGen) rate(r float64) float64 { return r * g.damp }

// Post generates a post of roughly targetWords words about the board topic.
func (g *textGen) Post(b Board, targetWords int) string {
	g.damp = 0.15 + 0.7*g.rng.Float64()
	var sb strings.Builder
	words := 0

	if g.rng.Float64() < g.p.GreetRate {
		words += g.writeSentence(&sb, g.pickHabitual(greetings, g.p.GreetChoice), false)
	}
	for words < targetWords {
		s, question := g.sentence(b)
		words += g.writeSentence(&sb, s, question)
		if g.rng.Float64() < g.p.ParaRate {
			sb.WriteString("\n\n")
		}
	}
	if g.rng.Float64() < g.p.CloseRate {
		s := g.pickHabitual(closers, g.p.CloseChoice)
		g.writeSentence(&sb, s, strings.HasPrefix(s, "has anyone") || strings.HasPrefix(s, "please"))
	}
	if g.rng.Float64() < g.rate(g.p.CatchRate) {
		cp := catchphrases[g.p.Catchphrases[g.rng.Intn(len(g.p.Catchphrases))]]
		g.writeSentence(&sb, cp, false)
	}
	if g.rng.Float64() < g.rate(g.p.EmoticonRate) {
		sb.WriteString(" ")
		sb.WriteString(g.pickHabitual(emoticons, g.p.EmoticonChoice))
	}
	return strings.TrimSpace(sb.String())
}

// ShortReply generates a brief, nearly style-free reply — the bulk of real
// forum traffic. One to three generic sentences, still passed through the
// author's styling pass at the post's damp level.
func (g *textGen) ShortReply(b Board) string {
	g.damp = 0.15 + 0.7*g.rng.Float64()
	var sb strings.Builder
	n := 1 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		raw := genericReplies[g.rng.Intn(len(genericReplies))]
		question := strings.HasPrefix(raw, "did") || strings.HasPrefix(raw, "how")
		g.writeSentence(&sb, raw, question)
	}
	if g.rng.Float64() < g.rate(g.p.EmoticonRate) {
		sb.WriteString(" ")
		sb.WriteString(g.pickHabitual(emoticons, g.p.EmoticonChoice))
	}
	return strings.TrimSpace(sb.String())
}

// pickHabitual returns the person's habitual choice most of the time and a
// random alternative otherwise.
func (g *textGen) pickHabitual(xs []string, habit int) string {
	if g.rng.Float64() < 0.3+0.4*g.damp {
		return xs[habit]
	}
	return xs[g.rng.Intn(len(xs))]
}

// numTemplates is the number of sentence constructions the generator knows.
const numTemplates = 12

// sentence builds one raw sentence (lowercase, unstyled) and reports whether
// it is a question.
func (g *textGen) sentence(b Board) (string, bool) {
	pick := func(xs []string) string { return xs[g.rng.Intn(len(xs))] }
	conn := func(group int) string {
		if g.rng.Float64() < g.rate(0.7) {
			return connectors[group][g.p.ConnectorPref[group]]
		}
		return connectors[group][g.rng.Intn(len(connectors[group]))]
	}
	switch pickWeighted(g.rng, g.p.TemplateWeight) {
	case 0: // symptom report
		return "i " + pick(feelVerbs) + " " + pick(intensity) + " " + pick(b.Symptoms) +
			" in my " + pick(bodyParts) + " for " + pick(durations), false
	case 1: // diagnosis
		return "i was diagnosed with " + pick(b.Conditions) + " " +
			pick(durations) + " ago and it has been getting worse", false
	case 2: // doctor visit
		return "my " + pick(doctorNouns) + " " + pick(adviceVerbs) + " " +
			pick(b.Meds) + " " + conn(1) + " my " + pick(testNouns) +
			" came back abnormal", false
	case 3: // medication experience, optionally citing the personal dose
		med := pick(b.Meds)
		if g.rng.Float64() < g.rate(g.p.DoseRate) {
			med = g.p.Doses[g.rng.Intn(len(g.p.Doses))] + " of " + med
		}
		return "i have been taking " + med + " for " + pick(durations) +
			" " + conn(0) + " the " + pick(b.Symptoms) + " is still there", false
	case 4: // question
		return "has anyone here tried " + pick(b.Meds) + " for " +
			pick(b.Conditions), true
	case 5: // timing pattern
		return "the " + pick(b.Symptoms) + " gets worse " + pick(timesOfDay) +
			" and " + conn(2) + " it is related to my " + pick(b.Conditions), false
	case 6: // worry
		return "i am " + pick(intensity) + " worried " + conn(1) +
			" the " + pick(b.Symptoms) + " keeps coming back " + pick(timesOfDay), false
	case 7: // dose change
		if len(g.p.Doses) > 0 && g.rng.Float64() < g.rate(g.p.DoseRate) {
			return "my " + pick(doctorNouns) + " " + pick(adviceVerbs) + " " +
				g.p.Doses[g.rng.Intn(len(g.p.Doses))] + " of " + pick(b.Meds) +
				" " + conn(4) + " i am hoping it helps with the " + pick(b.Symptoms), false
		}
		return "my " + pick(doctorNouns) + " ordered a " + pick(testNouns) +
			" " + conn(4) + " we can rule out " + pick(b.Conditions), false
	case 8: // conditional pattern
		return "whenever i try to sleep the " + pick(b.Symptoms) +
			" gets worse until i take " + pick(b.Meds) + " again", false
	case 9: // contrastive experience
		return "despite taking " + pick(b.Meds) + " throughout the day i still get " +
			pick(b.Symptoms) + " whereas before it was never this bad", false
	case 10: // community question
		return "does anybody know whether " + pick(b.Meds) + " could cause " +
			pick(b.Symptoms) + " or should i look into " + pick(b.Conditions) + " instead", true
	default: // test / plan
		return "my " + pick(doctorNouns) + " ordered a " + pick(testNouns) +
			" " + conn(4) + " we can rule out " + pick(b.Conditions), false
	}
}

// writeSentence applies the author's style to raw and appends it; returns
// the number of words written.
func (g *textGen) writeSentence(sb *strings.Builder, raw string, question bool) int {
	tokens := strings.Fields(raw)
	styled := make([]string, 0, len(tokens)+2)
	fillersUsed := 0
	for i, t := range tokens {
		// Habitual misspellings.
		if wrong, ok := g.p.Misspellings[t]; ok && g.rng.Float64() < g.rate(g.p.MisspellRate) {
			t = wrong
		}
		// Digit style.
		if g.p.DigitStyle {
			if d, ok := numberWords[t]; ok {
				t = d
				if g.p.TildeApprox && g.rng.Float64() < g.rate(0.5) {
					t = "~" + t
				}
			}
		}
		// Ampersand habit.
		if t == "and" && g.rng.Float64() < g.rate(g.p.AmpersandRate) {
			t = "&"
		}
		// Filler insertion (bounded per sentence).
		if i > 0 && fillersUsed < 2 && g.rng.Float64() < g.rate(g.p.FillerRate) {
			styled = append(styled, fillers[pickWeighted(g.rng, g.p.FillerChoice)])
			fillersUsed++
		}
		// Comma before connectors.
		if i > 0 && isConnector(t) && g.rng.Float64() < g.p.CommaRate && len(styled) > 0 {
			styled[len(styled)-1] += ","
		}
		// Emphasis on intensity words.
		if isIntensity(t) {
			if g.rng.Float64() < g.rate(g.p.CapsRate) {
				t = strings.ToUpper(t)
			} else if g.p.StarEmphasis && g.rng.Float64() < g.rate(0.6) {
				t = "*" + t + "*"
			}
		}
		styled = append(styled, t)
	}
	s := strings.Join(styled, " ")

	// Capitalization of sentence start and the pronoun I.
	if g.rng.Float64() >= g.rate(g.p.NoCapsRate) {
		s = capitalizeFirst(s)
	}
	if g.rng.Float64() >= g.rate(g.p.LowercaseIRate) {
		s = replaceStandaloneI(s)
	}

	// Terminator.
	switch {
	case question && g.rng.Float64() < g.p.QuestionRate:
		s += "?"
	case g.rng.Float64() < g.rate(g.p.ExclaimRate):
		if g.p.DoubleExclaim {
			s += "!!"
		} else {
			s += "!"
		}
	case g.rng.Float64() < g.rate(g.p.EllipsisRate):
		s += "..."
	default:
		s += "."
	}
	if sb.Len() > 0 && !strings.HasSuffix(sb.String(), "\n\n") {
		sb.WriteString(" ")
	}
	sb.WriteString(s)
	return len(styled)
}

func isConnector(w string) bool {
	for _, group := range connectors {
		for _, c := range group {
			if w == c {
				return true
			}
		}
	}
	return false
}

func isIntensity(w string) bool {
	for _, x := range intensity {
		if w == x {
			return true
		}
	}
	return false
}

func capitalizeFirst(s string) string {
	for i, r := range s {
		if r >= 'a' && r <= 'z' {
			return s[:i] + strings.ToUpper(string(r)) + s[i+len(string(r)):]
		}
		if r >= 'A' && r <= 'Z' {
			return s
		}
	}
	return s
}

// replaceStandaloneI uppercases the pronoun "i".
func replaceStandaloneI(s string) string {
	fields := strings.Fields(s)
	for i, f := range fields {
		if f == "i" {
			fields[i] = "I"
		} else if f == "i," {
			fields[i] = "I,"
		}
	}
	return strings.Join(fields, " ")
}
