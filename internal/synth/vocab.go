package synth

// Vocabulary pools for the health-forum text generator. Boards pair a topic
// name with the condition/symptom/medication vocabulary its threads draw
// from, so users of the same board discuss overlapping subjects (as on
// WebMD/HealthBoards) while retaining individual writing styles.

// Board couples a board name with its topical vocabulary.
type Board struct {
	Name       string
	Conditions []string
	Symptoms   []string
	Meds       []string
}

// boards is the board inventory (HealthBoards offers 200+ boards; a smaller
// set with the same topical-clustering role suffices for the correlation
// graph shape).
var boards = []Board{
	{
		Name:       "diabetes",
		Conditions: []string{"diabetes", "type 2 diabetes", "prediabetes", "insulin resistance", "neuropathy"},
		Symptoms:   []string{"thirst", "fatigue", "blurred vision", "tingling", "numbness", "weight loss"},
		Meds:       []string{"metformin", "insulin", "glipizide", "januvia"},
	},
	{
		Name:       "heart-disease",
		Conditions: []string{"high blood pressure", "arrhythmia", "angina", "heart disease", "palpitations"},
		Symptoms:   []string{"chest pain", "shortness of breath", "dizziness", "racing heart", "pressure"},
		Meds:       []string{"lisinopril", "metoprolol", "atenolol", "aspirin", "statins"},
	},
	{
		Name:       "anxiety",
		Conditions: []string{"anxiety", "panic disorder", "social anxiety", "generalized anxiety", "panic attacks"},
		Symptoms:   []string{"racing thoughts", "sweating", "trembling", "insomnia", "dread", "nausea"},
		Meds:       []string{"ativan", "xanax", "zoloft", "lexapro", "buspar"},
	},
	{
		Name:       "depression",
		Conditions: []string{"depression", "bipolar disorder", "seasonal depression", "postpartum depression"},
		Symptoms:   []string{"sadness", "fatigue", "hopelessness", "low energy", "loss of appetite"},
		Meds:       []string{"prozac", "wellbutrin", "effexor", "cymbalta", "paxil"},
	},
	{
		Name:       "back-pain",
		Conditions: []string{"sciatica", "herniated disc", "scoliosis", "spinal stenosis", "degenerative disc disease"},
		Symptoms:   []string{"back pain", "leg pain", "stiffness", "muscle spasms", "numbness"},
		Meds:       []string{"ibuprofen", "naproxen", "flexeril", "gabapentin", "tramadol"},
	},
	{
		Name:       "migraine",
		Conditions: []string{"migraine", "cluster headaches", "tension headaches", "chronic migraine"},
		Symptoms:   []string{"headache", "aura", "light sensitivity", "nausea", "throbbing pain"},
		Meds:       []string{"imitrex", "topamax", "excedrin", "propranolol"},
	},
	{
		Name:       "thyroid",
		Conditions: []string{"hypothyroidism", "hyperthyroidism", "hashimotos", "graves disease", "thyroid nodules"},
		Symptoms:   []string{"weight gain", "hair loss", "cold intolerance", "fatigue", "brain fog"},
		Meds:       []string{"synthroid", "levothyroxine", "armour thyroid", "methimazole"},
	},
	{
		Name:       "digestive",
		Conditions: []string{"ibs", "acid reflux", "crohns disease", "ulcerative colitis", "gastritis", "celiac disease"},
		Symptoms:   []string{"bloating", "cramping", "heartburn", "stomach pain", "diarrhea", "constipation"},
		Meds:       []string{"omeprazole", "nexium", "zantac", "bentyl"},
	},
	{
		Name:       "allergies",
		Conditions: []string{"seasonal allergies", "food allergies", "asthma", "eczema", "hives"},
		Symptoms:   []string{"sneezing", "itching", "rash", "wheezing", "congestion", "watery eyes"},
		Meds:       []string{"zyrtec", "claritin", "benadryl", "albuterol", "flonase"},
	},
	{
		Name:       "arthritis",
		Conditions: []string{"rheumatoid arthritis", "osteoarthritis", "psoriatic arthritis", "gout", "lupus"},
		Symptoms:   []string{"joint pain", "swelling", "morning stiffness", "redness", "limited motion"},
		Meds:       []string{"methotrexate", "humira", "plaquenil", "prednisone", "celebrex"},
	},
	{
		Name:       "sleep",
		Conditions: []string{"insomnia", "sleep apnea", "restless legs", "narcolepsy"},
		Symptoms:   []string{"snoring", "daytime sleepiness", "trouble falling asleep", "waking up at night"},
		Meds:       []string{"ambien", "melatonin", "trazodone", "lunesta"},
	},
	{
		Name:       "womens-health",
		Conditions: []string{"pcos", "endometriosis", "menopause", "fibroids", "pms"},
		Symptoms:   []string{"irregular periods", "hot flashes", "cramps", "mood swings", "bloating"},
		Meds:       []string{"birth control", "clomid", "estrogen", "progesterone"},
	},
	{
		Name:       "skin",
		Conditions: []string{"acne", "psoriasis", "rosacea", "dermatitis", "shingles"},
		Symptoms:   []string{"breakouts", "dry skin", "itchy patches", "redness", "blisters"},
		Meds:       []string{"accutane", "retin a", "hydrocortisone", "clindamycin"},
	},
	{
		Name:       "infectious",
		Conditions: []string{"hep c", "lyme disease", "mono", "shingles", "uti", "strep throat"},
		Symptoms:   []string{"fever", "chills", "swollen glands", "sore throat", "burning", "body aches"},
		Meds:       []string{"antibiotics", "amoxicillin", "doxycycline", "valtrex", "cipro"},
	},
	{
		Name:       "cancer",
		Conditions: []string{"breast cancer", "lymphoma", "melanoma", "prostate cancer", "leukemia"},
		Symptoms:   []string{"lump", "night sweats", "unexplained weight loss", "fatigue", "pain"},
		Meds:       []string{"chemo", "tamoxifen", "radiation", "herceptin"},
	},
	{
		Name:       "kidney",
		Conditions: []string{"kidney stones", "chronic kidney disease", "kidney infection", "gout"},
		Symptoms:   []string{"flank pain", "blood in urine", "swelling", "frequent urination"},
		Meds:       []string{"potassium citrate", "allopurinol", "flomax"},
	},
}

// Generic vocabulary shared across boards.
var (
	bodyParts = []string{
		"head", "neck", "shoulder", "arm", "elbow", "wrist", "hand", "chest",
		"stomach", "hip", "leg", "knee", "ankle", "foot", "lower back",
		"upper back", "throat", "ear", "eye", "jaw",
	}
	durations = []string{
		"a few days", "a week", "two weeks", "three weeks", "a month",
		"two months", "six months", "a year", "two years", "several years",
		"a long time", "a couple of days", "about ten days",
	}
	timesOfDay = []string{
		"in the morning", "at night", "in the evening", "after meals",
		"before bed", "when i wake up", "during the day", "after exercise",
	}
	feelVerbs = []string{
		"feel", "felt", "have been feeling", "keep feeling", "started feeling",
	}
	intensity = []string{
		"mild", "moderate", "severe", "constant", "intermittent", "sharp",
		"dull", "burning", "terrible", "awful", "unbearable", "annoying",
	}
	doctorNouns = []string{
		"doctor", "gp", "specialist", "neurologist", "cardiologist",
		"endocrinologist", "dermatologist", "rheumatologist", "nurse",
		"pharmacist",
	}
	adviceVerbs = []string{
		"suggested", "recommended", "prescribed", "mentioned", "ordered",
		"wants to try", "put me on", "switched me to", "took me off",
	}
	testNouns = []string{
		"blood test", "mri", "ct scan", "x ray", "ultrasound", "biopsy",
		"stress test", "ekg", "colonoscopy", "urine test",
	}
	greetings = []string{
		"hi everyone", "hello all", "hi all", "hey everyone", "hello everyone",
		"hi there", "greetings", "hey all",
	}
	closers = []string{
		"thanks in advance", "any advice would be appreciated",
		"has anyone else experienced this", "any input would help",
		"thanks for reading", "sorry for the long post",
		"i would appreciate any suggestions", "please share your experience",
	}
	connectors = [][]string{
		{"but", "however", "though", "although", "yet"},
		{"because", "since", "as"},
		{"maybe", "perhaps", "possibly"},
		{"also", "besides", "moreover", "furthermore"},
		{"so", "therefore", "thus", "hence"},
	}
	fillers = []string{
		"really", "just", "very", "actually", "honestly", "basically",
		"pretty much", "kind of", "sort of", "literally", "definitely",
		"absolutely",
	}
	emoticons = []string{":)", ":(", ":/", ";)", ":-)", ":-("}
	// genericReplies is the pool of near style-free acknowledgement
	// sentences that make up the bulk of real forum replies.
	genericReplies = []string{
		"thanks for sharing your experience",
		"i will ask my doctor about that",
		"sorry to hear you are going through this",
		"that is exactly what happened to me",
		"please keep us posted on how it goes",
		"i hope you feel better soon",
		"did the side effects go away over time",
		"how long did it take to work for you",
		"good luck with the appointment",
		"thank you all for the replies",
		"that makes a lot of sense",
		"i was wondering the same thing",
		"glad to hear you are doing better",
		"sending you my best wishes",
		"my experience was very similar to yours",
	}
	catchphrases = []string{
		"fingers crossed", "take care everyone", "hugs to all",
		"god bless you all", "wishing you all the best", "hang in there",
		"one day at a time", "hope this helps somebody",
		"sending positive thoughts your way", "stay strong everyone",
		"keeping my chin up", "praying for answers", "thanks a million",
		"you are not alone in this", "better safe than sorry",
		"listen to your body", "trust your gut", "knowledge is power",
		"it is what it is", "this too shall pass", "never give up hope",
		"take it easy on yourself", "be well everyone", "peace and health",
		"good luck to everyone here", "keep fighting the good fight",
		"counting my blessings", "here if anyone needs to talk",
	}
)

// NumBoards returns the number of boards the generator can draw topics from.
func NumBoards() int { return len(boards) }

// BoardNames lists the board names.
func BoardNames() []string {
	out := make([]string, len(boards))
	for i, b := range boards {
		out[i] = b.Name
	}
	return out
}
