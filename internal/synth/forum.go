package synth

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"dehealth/internal/corpus"
)

// ForumConfig shapes a generated forum. The WebMDLike and HBLike presets are
// calibrated so that the generated corpora reproduce the paper's published
// marginals: the posts-per-user CDF of Fig.1 (87.3% of WebMD users and
// 75.4% of HB users have fewer than 5 posts; means 5.66 and 12.06
// posts/user), the post-length distribution of Fig.2 (means 127.59 and
// 147.24 words), and a sparse, disconnected correlation graph (Fig.7,
// Fig.8).
type ForumConfig struct {
	// Name labels the dataset.
	Name string
	// NumUsers is the number of registered accounts to create.
	NumUsers int

	// PostsAlpha is the Zipf exponent of the posts-per-user distribution.
	PostsAlpha float64
	// MaxPosts truncates the posts-per-user distribution.
	MaxPosts int
	// PowerUserRate is the probability a user is a heavy poster drawn
	// uniformly from [MaxPosts/10, MaxPosts] — the tail Fig.1 shows.
	PowerUserRate float64
	// FixedPosts, when positive, gives every user exactly this many posts
	// instead of sampling the Zipf law — the §V refined-DA experiments use
	// "50 users each with 20 posts"-style populations.
	FixedPosts int

	// MeanPostLen is the target mean post length in words; PostLenSigma is
	// the lognormal shape.
	MeanPostLen  float64
	PostLenSigma float64

	// StartThreadProb is the probability a post opens a new thread rather
	// than replying in an existing thread on one of the author's boards.
	StartThreadProb float64
	// QuoteProb is the probability a reply opens by quoting the thread's
	// previous post. Quotes carry the quoted author's writing style, which
	// is what makes post-level attribution on scraped forum data hard.
	QuoteProb float64
	// ShortReplyProb is the probability a reply is a brief generic
	// acknowledgement rather than a full post.
	ShortReplyProb float64
	// MaxThreadSize caps distinct participants per thread.
	MaxThreadSize int

	// HasLocations controls whether user locations are public (true for the
	// HB-like service, as on HealthBoards).
	HasLocations bool
	// HasAges controls whether user ages are public (true for the
	// BoneSmart-like service, per §VI-A).
	HasAges bool

	// Seed drives all sampling for this forum.
	Seed int64
}

// WebMDLike returns the WebMD-calibrated configuration.
func WebMDLike(nUsers int, seed int64) ForumConfig {
	return ForumConfig{
		Name:            "webmd",
		NumUsers:        nUsers,
		PostsAlpha:      2.05,
		MaxPosts:        500,
		PowerUserRate:   0.004,
		MeanPostLen:     127.59,
		PostLenSigma:    0.55,
		StartThreadProb: 0.45,
		QuoteProb:       0.25,
		ShortReplyProb:  0.4,
		MaxThreadSize:   8,
		HasLocations:    false,
		Seed:            seed,
	}
}

// HBLike returns the HealthBoards-calibrated configuration.
func HBLike(nUsers int, seed int64) ForumConfig {
	return ForumConfig{
		Name:            "healthboards",
		NumUsers:        nUsers,
		PostsAlpha:      1.72,
		MaxPosts:        800,
		PowerUserRate:   0.003,
		MeanPostLen:     147.24,
		PostLenSigma:    0.55,
		StartThreadProb: 0.4,
		QuoteProb:       0.25,
		ShortReplyProb:  0.4,
		MaxThreadSize:   10,
		HasLocations:    true,
		Seed:            seed,
	}
}

// BoneSmartLike returns a configuration for the third forum §VI-A uses for
// information aggregation (BoneSmart, a joint-replacement community that
// publishes member ages).
func BoneSmartLike(nUsers int, seed int64) ForumConfig {
	return ForumConfig{
		Name:            "bonesmart",
		NumUsers:        nUsers,
		PostsAlpha:      1.9,
		MaxPosts:        400,
		PowerUserRate:   0.004,
		MeanPostLen:     140,
		PostLenSigma:    0.55,
		StartThreadProb: 0.45,
		QuoteProb:       0.25,
		ShortReplyProb:  0.4,
		MaxThreadSize:   8,
		HasAges:         true,
		Seed:            seed,
	}
}

// zipfSampler draws posts-per-user counts from a truncated Zipf law with a
// uniform heavy tail for power users.
type zipfSampler struct {
	cdf           []float64
	maxPosts      int
	powerUserRate float64
}

func newZipfSampler(alpha float64, maxPosts int, powerUserRate float64) *zipfSampler {
	cdf := make([]float64, maxPosts)
	total := 0.0
	for k := 1; k <= maxPosts; k++ {
		total += math.Pow(float64(k), -alpha)
		cdf[k-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &zipfSampler{cdf: cdf, maxPosts: maxPosts, powerUserRate: powerUserRate}
}

func (z *zipfSampler) sample(rng *rand.Rand) int {
	if rng.Float64() < z.powerUserRate {
		lo := z.maxPosts / 10
		return lo + rng.Intn(z.maxPosts-lo+1)
	}
	r := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Generate creates a forum dataset for the persons members (indices into
// u.Persons). Account i of the result belongs to u.Persons[members[i]];
// ground truth lands in User.TrueIdentity.
func Generate(cfg ForumConfig, u *Universe, members []int) *corpus.Dataset {
	if cfg.NumUsers != len(members) {
		panic(fmt.Sprintf("synth: config wants %d users but %d members given", cfg.NumUsers, len(members)))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &corpus.Dataset{Name: cfg.Name}

	// Accounts.
	usedNames := map[string]bool{}
	for i, pi := range members {
		p := u.Persons[pi]
		name := p.Username
		if !p.ReusesUsername {
			name = FreshUsername(p, rng)
		}
		for usedNames[name] {
			name = fmt.Sprintf("%s_%d", name, rng.Intn(100))
		}
		usedNames[name] = true

		kind, hash := sampleAvatar(rng, p)
		loc := ""
		if cfg.HasLocations && rng.Float64() < 0.7 {
			loc = p.City
		}
		age := 0
		if cfg.HasAges && rng.Float64() < 0.6 {
			age = 2015 - p.BirthYear // the paper's crawl year
		}
		d.Users = append(d.Users, corpus.User{
			ID:           i,
			Name:         name,
			Location:     loc,
			Age:          age,
			AvatarHash:   hash,
			AvatarKind:   kind,
			TrueIdentity: pi,
		})
	}

	// Posts-per-user counts.
	postCount := make([]int, cfg.NumUsers)
	if cfg.FixedPosts > 0 {
		for i := range postCount {
			postCount[i] = cfg.FixedPosts
		}
	} else {
		zipf := newZipfSampler(cfg.PostsAlpha, cfg.MaxPosts, cfg.PowerUserRate)
		for i := range postCount {
			postCount[i] = zipf.sample(rng)
		}
	}

	// Threads per board, with bounded participant sets.
	type threadState struct {
		id           int
		board        int
		participants map[int]bool
		lastText     string
	}
	var open [][]*threadState = make([][]*threadState, len(boards))

	newThread := func(board, starter int) *threadState {
		t := &threadState{id: len(d.Threads), board: board, participants: map[int]bool{starter: true}}
		d.Threads = append(d.Threads, corpus.Thread{ID: t.id, Board: boards[board].Name, Starter: starter})
		open[board] = append(open[board], t)
		if len(open[board]) > 64 {
			open[board] = open[board][len(open[board])-64:] // only recent threads accept replies
		}
		return t
	}

	// Interleave users' posts so thread co-participation mixes users.
	type pending struct{ user, remaining int }
	queue := make([]pending, 0, cfg.NumUsers)
	for i, n := range postCount {
		queue = append(queue, pending{user: i, remaining: n})
	}
	gens := make([]*textGen, cfg.NumUsers)
	for i, pi := range members {
		gens[i] = &textGen{p: u.Persons[pi].Profile, rng: rand.New(rand.NewSource(cfg.Seed ^ int64(pi*2654435761+17)))}
	}

	for len(queue) > 0 {
		qi := rng.Intn(len(queue))
		item := &queue[qi]
		user := item.user
		p := u.Persons[members[user]]

		board := p.Profile.Boards[rng.Intn(len(p.Profile.Boards))]
		var t *threadState
		isReply := false
		if rng.Float64() < cfg.StartThreadProb || len(open[board]) == 0 {
			t = newThread(board, user)
		} else {
			isReply = true
			t = open[board][rng.Intn(len(open[board]))]
			if !t.participants[user] && len(t.participants) >= cfg.MaxThreadSize {
				t = newThread(board, user)
			} else {
				t.participants[user] = true
			}
		}

		var text string
		if isReply && rng.Float64() < cfg.ShortReplyProb {
			text = gens[user].ShortReply(boards[t.board])
		} else {
			length := samplePostLen(rng, cfg.MeanPostLen, cfg.PostLenSigma)
			text = gens[user].Post(boards[t.board], length)
		}
		if t.lastText != "" && rng.Float64() < cfg.QuoteProb {
			text = "quote: " + firstWords(t.lastText, 10+rng.Intn(50)) + "\n\n" + text
		}
		t.lastText = text
		d.Posts = append(d.Posts, corpus.Post{
			ID: len(d.Posts), User: user, Thread: t.id, Text: text,
		})

		item.remaining--
		if item.remaining == 0 {
			queue[qi] = queue[len(queue)-1]
			queue = queue[:len(queue)-1]
		}
	}
	return d
}

// firstWords returns the first n whitespace-separated tokens of s.
func firstWords(s string, n int) string {
	fields := strings.Fields(s)
	if len(fields) > n {
		fields = fields[:n]
	}
	return strings.Join(fields, " ")
}

// samplePostLen draws a post length in words: lognormal around the target
// mean, truncated to [15, 800] (Fig.2's support). Full posts overshoot the
// sampled budget (the generator finishes its last sentence and appends
// sign-offs) while short generic replies pull the corpus mean down; the
// 1.10 factor compensates so the corpus-level mean hits the Fig.2 target.
func samplePostLen(rng *rand.Rand, mean, sigma float64) int {
	mean *= 1.10
	mu := math.Log(mean) - sigma*sigma/2
	l := int(math.Exp(mu + sigma*rng.NormFloat64()))
	if l < 15 {
		l = 15
	}
	if l > 800 {
		l = 800
	}
	return l
}

// sampleAvatar assigns the §VI avatar taxonomy: most users keep the default
// avatar, some upload photos of objects/scenery, a few upload fictitious
// persons or kids, and a small fraction upload a real photo of themselves —
// the 2805-of-89393 population AvatarLink targets.
func sampleAvatar(rng *rand.Rand, p *Person) (corpus.AvatarKind, uint64) {
	r := rng.Float64()
	switch {
	case r < 0.62:
		return corpus.AvatarDefault, 0
	case r < 0.88:
		return corpus.AvatarNonHuman, rng.Uint64()
	case r < 0.92:
		return corpus.AvatarFictitious, rng.Uint64()
	case r < 0.965:
		return corpus.AvatarKids, rng.Uint64()
	default:
		// Real photo; re-uploads hash near the person's canonical photo.
		return corpus.AvatarRealPerson, PerturbedAvatar(p, 2, rng)
	}
}

// Members draws k distinct person indices from the universe.
func Members(u *Universe, k int, rng *rand.Rand) []int {
	if k > len(u.Persons) {
		panic(fmt.Sprintf("synth: want %d members but universe has %d persons", k, len(u.Persons)))
	}
	perm := rng.Perm(len(u.Persons))
	return perm[:k]
}

// OverlappingMembers returns member lists for two forums where the first
// overlap indices are shared and the remainder are disjoint, for generating
// service pairs with a known common population.
func OverlappingMembers(u *Universe, nA, nB, overlap int, rng *rand.Rand) (a, b []int) {
	if overlap > nA || overlap > nB {
		panic("synth: overlap larger than a forum")
	}
	need := nA + nB - overlap
	if need > len(u.Persons) {
		panic(fmt.Sprintf("synth: need %d persons, universe has %d", need, len(u.Persons)))
	}
	perm := rng.Perm(len(u.Persons))
	shared := perm[:overlap]
	a = append(append([]int{}, shared...), perm[overlap:nA]...)
	b = append(append([]int{}, shared...), perm[nA:nA+nB-overlap]...)
	return a, b
}
