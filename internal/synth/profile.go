package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"dehealth/internal/nlp/lexicon"
)

// StyleProfile is the per-person writing fingerprint. The de-anonymization
// signal in the generated corpora comes entirely from these knobs: two posts
// share a profile iff they share an author, which is exactly the assumption
// stylometric DA exploits (§II-B).
type StyleProfile struct {
	// Punctuation & case habits.
	ExclaimRate    float64 // probability a sentence ends with '!'
	EllipsisRate   float64 // probability a sentence ends with '...'
	QuestionRate   float64 // probability a seeking sentence ends with '?'
	CommaRate      float64 // probability a connector is preceded by ','
	LowercaseIRate float64 // probability "I" is written "i"
	CapsRate       float64 // probability an intensity word is ALL CAPS
	NoCapsRate     float64 // probability sentence starts lowercase

	// Idiosyncrasies.
	Misspellings  map[string]string // correct -> habitual misspelling
	MisspellRate  float64           // probability a habitual word is misspelled
	EmoticonRate  float64           // probability a post ends with an emoticon
	DigitStyle    bool              // "2 weeks" vs "two weeks"
	GreetRate     float64           // probability a post opens with a greeting
	CloseRate     float64           // probability a post ends with a closer
	FillerRate    float64           // probability a filler adverb is inserted
	FillerChoice  []float64         // preference weights over fillers
	ConnectorPref []int             // preferred synonym index per connector group

	// Signature habits: fixed per person, the high-signal attributes.
	GreetChoice    int       // habitual greeting (index into greetings)
	CloseChoice    int       // habitual closer (index into closers)
	EmoticonChoice int       // habitual emoticon (index into emoticons)
	DoubleExclaim  bool      // writes "!!" instead of "!"
	AmpersandRate  float64   // writes "&" for "and"
	StarEmphasis   bool      // wraps emphasized words in *stars*
	TildeApprox    bool      // prefixes numbers with "~"
	Doses          []string  // personal dosage strings, e.g. "50mg"
	DoseRate       float64   // probability a medication sentence cites a dose
	Catchphrases   []int     // habitual sign-off phrases (indices into catchphrases)
	CatchRate      float64   // probability a post carries a catchphrase
	TemplateWeight []float64 // preference over sentence templates

	// Geometry.
	SentenceLen float64 // mean words per sentence
	ParaRate    float64 // probability of a paragraph break between sentences

	// Topics: the person's own conditions (board indices) — posts stay
	// topically consistent across forums, as real patients' posts do.
	Boards []int
}

// sampleProfile draws a style profile from the hyperprior.
func sampleProfile(rng *rand.Rand) *StyleProfile {
	p := &StyleProfile{
		ExclaimRate:    beta(rng, 1, 8),
		EllipsisRate:   beta(rng, 1, 10),
		QuestionRate:   0.5 + 0.4*rng.Float64(),
		CommaRate:      rng.Float64(),
		LowercaseIRate: skewedRate(rng, 0.35),
		CapsRate:       beta(rng, 1, 12),
		NoCapsRate:     skewedRate(rng, 0.25),
		MisspellRate:   0.3 + 0.5*rng.Float64(),
		EmoticonRate:   skewedRate(rng, 0.3),
		DigitStyle:     rng.Float64() < 0.5,
		GreetRate:      beta(rng, 2, 4),
		CloseRate:      beta(rng, 2, 4),
		FillerRate:     beta(rng, 1, 12),
		SentenceLen:    8 + 10*rng.Float64(),
		ParaRate:       beta(rng, 1, 6),

		GreetChoice:    zipfChoice(rng, len(greetings)),
		CloseChoice:    zipfChoice(rng, len(closers)),
		EmoticonChoice: zipfChoice(rng, len(emoticons)),
		DoubleExclaim:  rng.Float64() < 0.2,
		AmpersandRate:  skewedRate(rng, 0.2),
		StarEmphasis:   rng.Float64() < 0.15,
		TildeApprox:    rng.Float64() < 0.15,
		DoseRate:       0.2 + 0.5*rng.Float64(),
	}

	// Personal dosage strings: the person's actual prescriptions, cited
	// whenever they discuss their medication.
	doseVals := []int{50, 100, 10, 20, 25, 200, 5, 40, 75, 150, 300, 500}
	nDoses := 1 + rng.Intn(3)
	spaced := rng.Float64() < 0.4
	for i := 0; i < nDoses; i++ {
		v := doseVals[zipfChoice(rng, len(doseVals))]
		if spaced {
			p.Doses = append(p.Doses, fmt.Sprintf("%d mg", v))
		} else {
			p.Doses = append(p.Doses, fmt.Sprintf("%dmg", v))
		}
	}

	// Habitual misspellings: a handful of words this person always gets
	// wrong, drawn from the Table I misspelling inventory. Selection is
	// biased toward corrections the sentence templates actually emit so
	// the habit leaves a trace in the generated posts.
	nMiss := 2 + rng.Intn(4)
	p.Misspellings = make(map[string]string, nMiss)
	for i := 0; i < nMiss; i++ {
		var wrong string
		if i == 0 || rng.Float64() < 0.85 {
			right := generatableCorrections[zipfChoice(rng, len(generatableCorrections))]
			wrongs := misspellingsByCorrection[right]
			wrong = wrongs[rng.Intn(len(wrongs))]
		} else {
			wrong = lexicon.MisspellingList[rng.Intn(len(lexicon.MisspellingList))]
		}
		p.Misspellings[lexicon.Misspellings[wrong]] = wrong
	}

	// Filler preferences: mild per-author tilt over a shared vocabulary.
	p.FillerChoice = make([]float64, len(fillers))
	for i := range p.FillerChoice {
		p.FillerChoice[i] = 0.3 + rng.Float64()
	}

	// Connector synonym preference per group; common synonyms ("but",
	// "because") are most people's habit, rare ones ("whilst"-style) are the
	// identifying tail.
	p.ConnectorPref = make([]int, len(connectors))
	for i, group := range connectors {
		p.ConnectorPref[i] = zipfChoice(rng, len(group))
	}

	// Personal catchphrases, Zipf-popular: a handful of phrases are
	// everyone's favourites, the tail is identifying.
	nCatch := 1 + rng.Intn(2)
	seen := map[int]bool{}
	for len(p.Catchphrases) < nCatch {
		c := zipfChoice(rng, len(catchphrases))
		if !seen[c] {
			seen[c] = true
			p.Catchphrases = append(p.Catchphrases, c)
		}
	}
	p.CatchRate = 0.15 + 0.45*rng.Float64()

	// Template preferences: a mild tilt, not a fingerprint — sentence
	// construction choice is mostly situational.
	p.TemplateWeight = make([]float64, numTemplates)
	for i := range p.TemplateWeight {
		p.TemplateWeight[i] = 0.4 + rng.Float64()
	}

	// 1–3 personal conditions / boards.
	nb := 1 + rng.Intn(3)
	perm := rng.Perm(len(boards))
	p.Boards = append(p.Boards, perm[:nb]...)
	return p
}

// misspellingsByCorrection inverts the lexicon misspelling map.
var misspellingsByCorrection = func() map[string][]string {
	out := map[string][]string{}
	for wrong, right := range lexicon.Misspellings {
		out[right] = append(out[right], wrong)
	}
	for _, ws := range out {
		sort.Strings(ws)
	}
	return out
}()

// generatableCorrections are corrections whose words the sentence templates
// emit, so a misspelling habit actually shows up in posts.
var generatableCorrections = func() []string {
	candidates := []string{
		"because", "definitely", "really", "doctor", "until", "stomach",
		"experience", "tomorrow", "probably", "completely",
	}
	var out []string
	for _, c := range candidates {
		if len(misspellingsByCorrection[c]) > 0 {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		panic("synth: no generatable misspelling corrections")
	}
	return out
}()

// beta draws an approximate Beta(a, b) sample via the mean of a/b-weighted
// uniforms — cheap and adequate for habit rates.
func beta(rng *rand.Rand, a, b float64) float64 {
	x := 0.0
	n := 4
	for i := 0; i < n; i++ {
		x += rng.Float64()
	}
	mean := a / (a + b)
	return clamp01(mean * (x / float64(n)) * 2)
}

// skewedRate is 0 for most people and large for a few: habits like writing
// lowercase "i" cluster in the population.
func skewedRate(rng *rand.Rand, pHave float64) float64 {
	if rng.Float64() > pHave {
		return 0
	}
	return 0.5 + 0.5*rng.Float64()
}

// zipfChoice draws an index with P(i) proportional to 1/(i+1), so early
// entries are population-wide favourites and late entries identifying
// rarities.
func zipfChoice(rng *rand.Rand, n int) int {
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / float64(i+1)
	}
	r := rng.Float64() * total
	for i := 0; i < n; i++ {
		r -= 1 / float64(i+1)
		if r <= 0 {
			return i
		}
	}
	return n - 1
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// pickWeighted draws an index proportionally to w (uniform if all zero).
func pickWeighted(rng *rand.Rand, w []float64) int {
	var total float64
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		return rng.Intn(len(w))
	}
	r := rng.Float64() * total
	for i, x := range w {
		r -= x
		if r <= 0 {
			return i
		}
	}
	return len(w) - 1
}
