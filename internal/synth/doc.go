// Package synth generates the synthetic evaluation worlds standing in for
// the paper's WebMD and HealthBoards crawls (§II, Fig.1, Fig.2, Fig.7):
// a person universe with stable identities, per-forum membership with a
// controllable overlap (the open-world knob of §V-B), forum corpora whose
// post-count and post-length distributions are calibrated to the paper's
// statistics, a style-bearing text generator that gives each person a
// persistent stylometric fingerprint (the signal the Table I features
// recover), and the external-service social directory (usernames, avatars,
// profile fields) that the §VI linkage attack runs against.
//
// Everything is seeded and deterministic: the same configuration
// reproduces the same world bit for bit, which is what the parity and
// equivalence tests across the repo rely on.
package synth
