package synth

import (
	"fmt"
	"math/rand"
)

// Person is a ground-truth real-world identity. Forum accounts and external
// service profiles all derive from persons; the linkage attack of §VI is
// scored against these.
type Person struct {
	ID        int
	First     string
	Last      string
	BirthYear int
	City      string
	Phone     string

	// Username is the person's preferred username; ReusesUsername persons
	// use it on every service (the Perito et al. behaviour NameLink
	// exploits). Others derive a fresh username per service.
	Username       string
	ReusesUsername bool

	// Avatar is the person's photo fingerprint; ReusesAvatar persons upload
	// the same photo on every service (the behaviour AvatarLink exploits).
	Avatar       uint64
	ReusesAvatar bool

	// Profile is the person's writing style, shared by all their accounts.
	Profile *StyleProfile
}

// Universe is a population of persons with identities, styles, usernames
// and avatars, shared across all generated services.
type Universe struct {
	Persons []*Person
	rng     *rand.Rand
}

var (
	firstNames = []string{
		"james", "mary", "john", "patricia", "robert", "jennifer", "michael",
		"linda", "william", "elizabeth", "david", "barbara", "richard",
		"susan", "joseph", "jessica", "thomas", "sarah", "charles", "karen",
		"christopher", "nancy", "daniel", "lisa", "matthew", "betty",
		"anthony", "margaret", "mark", "sandra", "donald", "ashley",
		"steven", "kimberly", "paul", "emily", "andrew", "donna", "joshua",
		"michelle", "kenneth", "dorothy", "kevin", "carol", "brian",
		"amanda", "george", "melissa", "edward", "deborah", "ronald",
		"stephanie", "timothy", "rebecca", "jason", "sharon", "jeffrey",
		"laura", "ryan", "cynthia", "jacob", "kathleen", "gary", "amy",
		"nicholas", "shirley", "eric", "angela", "jonathan", "helen",
		"stephen", "anna", "larry", "brenda", "justin", "pamela", "scott",
		"nicole", "brandon", "emma", "benjamin", "samantha", "samuel",
		"katherine", "gregory", "christine", "frank", "debra", "alexander",
		"rachel", "raymond", "catherine", "patrick", "carolyn", "jack",
		"janet", "dennis", "ruth", "jerry", "maria",
	}
	lastNames = []string{
		"smith", "johnson", "williams", "brown", "jones", "garcia",
		"miller", "davis", "rodriguez", "martinez", "hernandez", "lopez",
		"gonzalez", "wilson", "anderson", "thomas", "taylor", "moore",
		"jackson", "martin", "lee", "perez", "thompson", "white", "harris",
		"sanchez", "clark", "ramirez", "lewis", "robinson", "walker",
		"young", "allen", "king", "wright", "scott", "torres", "nguyen",
		"hill", "flores", "green", "adams", "nelson", "baker", "hall",
		"rivera", "campbell", "mitchell", "carter", "roberts", "gomez",
		"phillips", "evans", "turner", "diaz", "parker", "cruz", "edwards",
		"collins", "reyes", "stewart", "morris", "morales", "murphy",
		"cook", "rogers", "gutierrez", "ortiz", "morgan", "cooper",
		"peterson", "bailey", "reed", "kelly", "howard", "ramos", "kim",
		"cox", "ward", "richardson", "watson", "brooks", "chavez", "wood",
		"james", "bennett", "gray", "mendoza", "ruiz", "hughes", "price",
		"alvarez", "castillo", "sanders", "patel", "myers", "long", "ross",
		"foster", "wolf",
	}
	cities = []string{
		"los angeles", "new york", "chicago", "houston", "phoenix",
		"philadelphia", "san antonio", "san diego", "dallas", "san jose",
		"austin", "jacksonville", "columbus", "fort worth", "charlotte",
		"seattle", "denver", "boston", "portland", "memphis", "nashville",
		"baltimore", "milwaukee", "albuquerque", "tucson", "fresno",
		"sacramento", "kansas city", "atlanta", "omaha", "miami",
		"oakland", "tulsa", "cleveland", "minneapolis", "wichita",
	}
	petWords = []string{
		"sunshine", "butterfly", "dreamer", "wanderer", "hopeful", "warrior",
		"phoenix", "sparrow", "willow", "clover", "breeze", "ember",
		"meadow", "pebble", "aurora", "juniper",
	}
)

// NewUniverse creates n persons with deterministic identities given seed.
func NewUniverse(n int, seed int64) *Universe {
	rng := rand.New(rand.NewSource(seed))
	u := &Universe{rng: rng}
	for i := 0; i < n; i++ {
		p := &Person{
			ID:        i,
			First:     firstNames[rng.Intn(len(firstNames))],
			Last:      lastNames[rng.Intn(len(lastNames))],
			BirthYear: 1940 + rng.Intn(60),
			City:      cities[rng.Intn(len(cities))],
			Phone: fmt.Sprintf("(%03d) %03d-%04d",
				200+rng.Intn(700), 200+rng.Intn(700), rng.Intn(10000)),
			ReusesUsername: rng.Float64() < 0.55, // Perito: most users reuse
			Avatar:         rng.Uint64(),
			ReusesAvatar:   rng.Float64() < 0.25,
			Profile:        sampleProfile(rng),
		}
		p.Username = makeUsername(p, rng)
		u.Persons = append(u.Persons, p)
	}
	return u
}

// makeUsername derives a username from the person's identity. Patterns span
// the entropy spectrum: initial+last+digits usernames ("jwolf6589") are
// nearly unique, pet words with small digits collide across persons.
func makeUsername(p *Person, rng *rand.Rand) string {
	switch rng.Intn(6) {
	case 0: // high entropy: initial + last + 4 digits
		return fmt.Sprintf("%c%s%04d", p.First[0], p.Last, rng.Intn(10000))
	case 1: // high entropy: first + last + 2 digits
		return fmt.Sprintf("%s%s%02d", p.First, p.Last, rng.Intn(100))
	case 2: // medium: first + birth year
		return fmt.Sprintf("%s%d", p.First, p.BirthYear)
	case 3: // medium: last + first initial + digit
		return fmt.Sprintf("%s%c%d", p.Last, p.First[0], rng.Intn(10))
	case 4: // low entropy: pet word + small number
		return fmt.Sprintf("%s%d", petWords[rng.Intn(len(petWords))], rng.Intn(100))
	default: // low entropy: first name + small number
		return fmt.Sprintf("%s%d", p.First, rng.Intn(100))
	}
}

// FreshUsername returns a service-specific username for persons who do not
// reuse their preferred one. The caller supplies the rng so generation stays
// deterministic per service regardless of call order.
func FreshUsername(p *Person, rng *rand.Rand) string { return makeUsername(p, rng) }

// PerturbedAvatar returns the person's avatar fingerprint with up to
// maxFlips random bit flips — re-encoded/rescaled uploads of the same photo
// hash near, but not exactly at, the original.
func PerturbedAvatar(p *Person, maxFlips int, rng *rand.Rand) uint64 {
	h := p.Avatar
	flips := rng.Intn(maxFlips + 1)
	for i := 0; i < flips; i++ {
		h ^= 1 << uint(rng.Intn(64))
	}
	return h
}
