// Online single-user query path. The batch TopK phase computes (and
// discards) full similarity-matrix rows; serving a newly observed account
// needs exactly one row's top-K, so QueryUser routes the query through the
// pipeline's shard world instead: each auxiliary shard streams its slice
// of the row through a bounded min-heap (O(shard size) time, O(K) memory,
// no row or matrix allocation) and the per-shard heaps merge into the
// global top-K under the stable selection order (score descending, global
// auxiliary id ascending). The candidate set and its ordering are
// bit-identical to the full-matrix direct selection — and identical across
// every shard count (see the equivalence and sharded parity tests) — so
// the serving path, the sharded serving path and the offline evaluation
// can never drift. Pipeline is deliberately a thin coordinator here:
// validation lives below, scoring and merging live in internal/shard.

package core

import (
	"fmt"

	"dehealth/internal/index"
)

// QueryUser computes anonymized user u's top-k auxiliary candidates in
// decreasing score order (ties by smaller auxiliary index), exactly as
// TopK(k, DirectSelection, nil).Candidates[u] would, without materializing
// a similarity row. On a sharded pipeline the row fans out across shards
// in parallel. Safe for concurrent use with other queries; not with
// ingestion (the serving layer serializes the two).
func (p *Pipeline) QueryUser(u, k int) []Candidate {
	if n1 := p.G1.NumNodes(); u < 0 || u >= n1 {
		panic(fmt.Sprintf("core: QueryUser user %d out of range [0, %d)", u, n1))
	}
	if k < 1 {
		panic(fmt.Sprintf("core: K must be >= 1, got %d", k))
	}
	return p.shardWorld().QueryUser(u, k)
}

// QueryBatch answers one QueryUser per entry of users, fanning the batch
// out over a bounded worker pool (workers <= 0 uses GOMAXPROCS). Results
// line up with users by index.
func (p *Pipeline) QueryBatch(users []int, k, workers int) [][]Candidate {
	n1 := p.G1.NumNodes()
	for _, u := range users {
		if u < 0 || u >= n1 {
			panic(fmt.Sprintf("core: QueryBatch user %d out of range [0, %d)", u, n1))
		}
	}
	if k < 1 {
		panic(fmt.Sprintf("core: K must be >= 1, got %d", k))
	}
	return p.shardWorld().QueryBatch(users, k, workers)
}

// QueryUserApprox is QueryUser through the approximate retrieval tier
// (see Approx) under the per-call knobs ap: Theta scales the skip
// threshold and Budget caps the exact rescores per shard. With the
// conservative knobs (Theta <= 1, unbounded budget) the result is
// bit-identical to QueryUser; otherwise only candidate generation is
// approximate — every returned score is exact. On a pipeline without the
// tier it degrades to the exact path.
func (p *Pipeline) QueryUserApprox(u, k int, ap index.ApproxParams) []Candidate {
	if n1 := p.G1.NumNodes(); u < 0 || u >= n1 {
		panic(fmt.Sprintf("core: QueryUserApprox user %d out of range [0, %d)", u, n1))
	}
	if k < 1 {
		panic(fmt.Sprintf("core: K must be >= 1, got %d", k))
	}
	return p.shardWorld().QueryUserApprox(u, k, ap)
}

// QueryBatchApprox answers one QueryUserApprox per entry of users over a
// bounded worker pool (workers <= 0 uses GOMAXPROCS). Results line up
// with users by index.
func (p *Pipeline) QueryBatchApprox(users []int, k, workers int, ap index.ApproxParams) [][]Candidate {
	n1 := p.G1.NumNodes()
	for _, u := range users {
		if u < 0 || u >= n1 {
			panic(fmt.Sprintf("core: QueryBatchApprox user %d out of range [0, %d)", u, n1))
		}
	}
	if k < 1 {
		panic(fmt.Sprintf("core: K must be >= 1, got %d", k))
	}
	return p.shardWorld().QueryBatchApprox(users, k, workers, ap)
}

// SyncAppended extends the pipeline's similarity caches over anonymized
// users appended to the underlying store/graph since the pipeline was built
// (or last synced), returning how many were added. The anonymized-side
// caches are shared across every shard window, so one sync covers the whole
// shard world. Serialize against queries.
func (p *Pipeline) SyncAppended() int {
	return p.Scorer.SyncAnon()
}
