// Online single-user query path. The batch TopK phase computes (and
// discards) full similarity-matrix rows; serving a newly observed account
// needs exactly one row's top-K, so QueryUser streams the |V2| scores
// through a bounded min-heap instead — O(|V2|·dim) time, O(K) extra memory,
// and no row or matrix allocation. The candidate set and its ordering are
// bit-identical to the full-matrix direct selection (see the equivalence
// test), so the serving path and the offline evaluation can never drift.

package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// QueryUser computes anonymized user u's top-k auxiliary candidates in
// decreasing score order (ties by smaller auxiliary index), exactly as
// TopK(k, DirectSelection, nil).Candidates[u] would, without materializing
// a similarity row. Safe for concurrent use with other queries; not with
// ingestion (the serving layer serializes the two).
func (p *Pipeline) QueryUser(u, k int) []Candidate {
	n1, n2 := p.G1.NumNodes(), p.G2.NumNodes()
	if u < 0 || u >= n1 {
		panic(fmt.Sprintf("core: QueryUser user %d out of range [0, %d)", u, n1))
	}
	if k < 1 {
		panic(fmt.Sprintf("core: K must be >= 1, got %d", k))
	}
	if k > n2 {
		k = n2
	}
	// Bounded min-heap of the k best candidates seen so far, ordered
	// worst-first under the selection order (higher score wins, ties to the
	// smaller index).
	h := make(candidateHeap, 0, k)
	for v := 0; v < n2; v++ {
		c := Candidate{User: v, Score: p.Scorer.Score(u, v)}
		if len(h) < k {
			h = append(h, c)
			h.up(len(h) - 1)
		} else if candidateLess(h[0], c) {
			h[0] = c
			h.down(0)
		}
	}
	out := []Candidate(h)
	sort.Slice(out, func(a, b int) bool { return candidateLess(out[b], out[a]) })
	return out
}

// QueryBatch answers one QueryUser per entry of users, fanning the batch
// out over a bounded worker pool (workers <= 0 uses GOMAXPROCS). Results
// line up with users by index.
func (p *Pipeline) QueryBatch(users []int, k, workers int) [][]Candidate {
	out := make([][]Candidate, len(users))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(users) {
		workers = len(users)
	}
	if workers <= 1 {
		for i, u := range users {
			out[i] = p.QueryUser(u, k)
		}
		return out
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = p.QueryUser(users[i], k)
			}
		}()
	}
	for i := range users {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// SyncAppended extends the pipeline's similarity caches over anonymized
// users appended to the underlying store/graph since the pipeline was built
// (or last synced), returning how many were added. Serialize against
// queries.
func (p *Pipeline) SyncAppended() int {
	return p.Scorer.SyncAnon()
}

// candidateLess orders candidates worse-first: a is worse than b when it
// scores lower, or ties with a larger auxiliary index — the exact inverse
// of the deterministic selection order used by topCandidates.
func candidateLess(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.User > b.User
}

// candidateHeap is a worst-first binary heap of candidates.
type candidateHeap []Candidate

func (h candidateHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !candidateLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h candidateHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && candidateLess(h[l], h[small]) {
			small = l
		}
		if r < len(h) && candidateLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}
