package core

import (
	"testing"

	"dehealth/internal/features"
	"dehealth/internal/graph"
	"dehealth/internal/ml"
	"dehealth/internal/similarity"
	"dehealth/internal/stylometry"
)

// TestStorePipelineParity proves NewPipelineFromStore reproduces the seed
// path bit-for-bit on a fixed-seed world: the legacy pipeline (serial
// extractor fitting, graph.BuildUDA per side, scorer over the graphs) and
// the store-backed pipeline must produce identical Top-K candidate sets,
// ranks, score extremes, filtering decisions and refined-DA mappings.
func TestStorePipelineParity(t *testing.T) {
	split := world(t, 18, 12, 0.5, 21)
	cfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}
	const maxBigrams = 50

	// Seed path: fit serially, extract per user via BuildUDA.
	ex := stylometry.New()
	ex.FitBigrams(split.Aux.Texts(), maxBigrams)
	g1 := graph.BuildUDA(split.Anon, ex)
	g2 := graph.BuildUDA(split.Aux, ex)
	legacy := &Pipeline{
		Anon: split.Anon, Aux: split.Aux,
		Extractor: ex,
		G1:        g1, G2: g2,
		Scorer: similarity.NewScorer(g1, g2, cfg),
	}

	// Store path: parallel extraction into the shared feature store.
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, maxBigrams, features.Options{})
	stored := NewPipelineFromStore(anonS, auxS, cfg)

	for _, sel := range []SelectionMethod{DirectSelection, GraphMatchingSelection} {
		tkL := legacy.TopK(4, sel, split.TrueMapping)
		tkS := stored.TopK(4, sel, split.TrueMapping)
		assertTopKEqual(t, tkL, tkS)

		// Filtering must agree too (it reads the shared score extremes).
		legacy.Filter(tkL, FilterConfig{Epsilon: 0.01, L: 10})
		stored.Filter(tkS, FilterConfig{Epsilon: 0.01, L: 10})
		assertTopKEqual(t, tkL, tkS)

		opt := RefineOptions{
			NewClassifier: func() ml.Classifier { return ml.NewKNN(3) },
			Scheme:        MeanVerification,
			R:             0.05,
			Seed:          9,
		}
		resL, errL := legacy.RefinedDA(tkL, opt)
		resS, errS := stored.RefinedDA(tkS, opt)
		if errL != nil || errS != nil {
			t.Fatalf("refined DA errors: legacy %v, store %v", errL, errS)
		}
		for u := range resL.Mapping {
			if resL.Mapping[u] != resS.Mapping[u] {
				t.Fatalf("selection %d: mapping[%d] legacy %d != store %d",
					sel, u, resL.Mapping[u], resS.Mapping[u])
			}
		}
	}
}

func assertTopKEqual(t *testing.T, a, b *TopKResult) {
	t.Helper()
	if a.MaxScore != b.MaxScore || a.MinScore != b.MinScore {
		t.Fatalf("score extremes differ: (%v,%v) vs (%v,%v)", a.MaxScore, a.MinScore, b.MaxScore, b.MinScore)
	}
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatalf("candidate-set counts differ: %d vs %d", len(a.Candidates), len(b.Candidates))
	}
	for u := range a.Candidates {
		if (a.Candidates[u] == nil) != (b.Candidates[u] == nil) {
			t.Fatalf("user %d: rejection disagreement", u)
		}
		if len(a.Candidates[u]) != len(b.Candidates[u]) {
			t.Fatalf("user %d: candidate counts %d vs %d", u, len(a.Candidates[u]), len(b.Candidates[u]))
		}
		for i := range a.Candidates[u] {
			if a.Candidates[u][i] != b.Candidates[u][i] {
				t.Fatalf("user %d candidate %d: %+v vs %+v", u, i, a.Candidates[u][i], b.Candidates[u][i])
			}
		}
		if a.TrueRank[u] != b.TrueRank[u] {
			t.Fatalf("user %d: true rank %d vs %d", u, a.TrueRank[u], b.TrueRank[u])
		}
		if a.MeanScore[u] != b.MeanScore[u] || a.RowMin[u] != b.RowMin[u] {
			t.Fatalf("user %d: mean/rowmin differ", u)
		}
	}
}

// TestNewPipelineFromStoreRejectsMixedExtractors ensures stores fitted
// separately cannot be combined: equal dimensionality does not imply the
// same POS-bigram feature space.
func TestNewPipelineFromStoreRejectsMixedExtractors(t *testing.T) {
	split := world(t, 10, 6, 0.5, 23)
	anonS := features.Build(split.Anon, features.NewExtractor(split.Aux.Texts(), 50), features.Options{})
	auxS := features.Build(split.Aux, features.NewExtractor(split.Aux.Texts(), 50), features.Options{})
	defer func() {
		if recover() == nil {
			t.Error("mixed-extractor stores accepted")
		}
	}()
	NewPipelineFromStore(anonS, auxS, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5})
}

// TestWithSimilarityMatchesFreshPipeline checks the cache-sharing reweight
// path scores identically to a pipeline built from scratch with the target
// config.
func TestWithSimilarityMatchesFreshPipeline(t *testing.T) {
	split := world(t, 14, 8, 0.5, 22)
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 50, features.Options{})
	base := NewPipelineFromStore(anonS, auxS, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5})

	target := similarity.Config{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 5}
	rw := base.WithSimilarity(target)
	fresh := NewPipelineFromStore(anonS, auxS, target)

	tkR := rw.TopK(3, DirectSelection, split.TrueMapping)
	tkF := fresh.TopK(3, DirectSelection, split.TrueMapping)
	assertTopKEqual(t, tkR, tkF)

	// Changing the landmark count must fall back to a full scorer rebuild.
	tkL := base.WithSimilarity(similarity.Config{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 3})
	tkL2 := NewPipelineFromStore(anonS, auxS, similarity.Config{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 3})
	assertTopKEqual(t, tkL.TopK(3, DirectSelection, split.TrueMapping), tkL2.TopK(3, DirectSelection, split.TrueMapping))
}
