package core

import (
	"math"

	"dehealth/internal/similarity"
	"dehealth/internal/stylometry"
)

// The paper notes (§III-B) that the DA verification step "can also be
// implemented using other techniques, e.g., distractorless verification
// [45], Sigma verification [32]". Both are implemented here as additional
// open-world schemes.

// sigmaVerify implements Stolerman et al.'s Sigma verification: the
// classifier's aggregate score for the predicted class must stand at least
// sigma standard deviations above the mean score of the other candidate
// classes. With fewer than two other classes the test degenerates to
// requiring a strictly positive margin.
func sigmaVerify(totals []float64, best int, sigma float64) bool {
	if len(totals) < 2 {
		return true
	}
	var sum, sumSq float64
	n := 0
	for i, s := range totals {
		if i == best {
			continue
		}
		sum += s
		sumSq += s * s
		n++
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	sd := math.Sqrt(variance)
	if sd == 0 {
		return totals[best] > mean
	}
	return (totals[best]-mean)/sd >= sigma
}

// distractorlessVerify implements Noecker & Ryan's distractorless
// verification: the anonymized user's aggregate stylometric profile must be
// close enough to the predicted author's profile, with no reference to the
// other candidates. Profiles are the mean post vectors; closeness is cosine
// similarity, accepted at or above threshold.
func distractorlessVerify(anonPosts, auxPosts [][]float64, threshold float64) bool {
	pu := stylometry.MeanVector(anonPosts)
	pv := stylometry.MeanVector(auxPosts)
	if pu == nil || pv == nil {
		return false
	}
	return similarity.Cosine(pu, pv) >= threshold
}
