// Package core implements the De-Health framework itself (§III, Algorithm 1
// and Algorithm 2): the two-phase de-anonymization attack consisting of
// structural Top-K candidate selection over UDA graphs, the optional
// threshold-vector filtering, and the refined (classifier-based) DA phase
// with the false-addition and mean-verification open-world schemes.
package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"dehealth/internal/corpus"
	"dehealth/internal/features"
	"dehealth/internal/graph"
	"dehealth/internal/index"
	"dehealth/internal/ml"
	"dehealth/internal/shard"
	"dehealth/internal/similarity"
	"dehealth/internal/stylometry"
)

// SelectionMethod chooses how Top-K candidate sets are built (§III-B).
type SelectionMethod int

const (
	// DirectSelection takes the K auxiliary users with the highest
	// structural similarity scores.
	DirectSelection SelectionMethod = iota
	// GraphMatchingSelection repeatedly extracts a maximum-weight bipartite
	// matching and appends each user's match to its candidate set.
	GraphMatchingSelection
)

// Candidate pairs an auxiliary user with its structural similarity score.
// It is the shard engine's candidate type: the Top-K serving path is
// partition-parallel (see internal/shard), and core re-exports the type so
// both layers speak the same currency.
type Candidate = shard.Candidate

// TopKResult is the outcome of the Top-K DA phase.
type TopKResult struct {
	// K is the requested candidate set size.
	K int
	// Candidates[u] lists the candidates of anonymized user u in decreasing
	// score order. A nil entry means u was rejected (u -> ⊥) by filtering.
	Candidates [][]Candidate
	// TrueRank[u] is the 1-based rank of u's true mapping among all
	// auxiliary users by similarity score (0 when u has no true mapping or
	// no ground truth was supplied). Direct-selection ranking; used for the
	// Fig.3/Fig.5 success CDFs.
	TrueRank []int
	// MeanScore[u] is the mean similarity of u to its candidate set at
	// selection time (λ_u in the mean-verification scheme). Filtering does
	// not update it: verification compares against the unfiltered Top-K
	// population so the margin test stays meaningful.
	MeanScore []float64
	// RowMin[u] is the minimum similarity of u to any auxiliary user. The
	// mean-verification margin is computed on row-min-shifted scores
	// (s - RowMin[u]), which makes the margin scale-free: raw similarity
	// scores concentrate when most attributes are population-wide, and an
	// affine shift restores the relative spread the r threshold needs.
	RowMin []float64
	// MaxScore and MinScore are the extreme similarity scores observed
	// across all (u, v) pairs; Algorithm 2 derives its thresholds from them.
	MaxScore, MinScore float64
}

// Contains reports whether v is in u's candidate set.
func (t *TopKResult) Contains(u, v int) bool {
	for _, c := range t.Candidates[u] {
		if c.User == v {
			return true
		}
	}
	return false
}

// Pipeline owns the artifacts shared by both DA phases: the fitted feature
// extractor, the two UDA graphs and the structural similarity scorer. The
// serving-path queries (QueryUser / QueryBatch) are coordinated through a
// shard.World — the auxiliary side partitioned into one or more
// partition-parallel scoring shards — for which Pipeline is a thin router:
// it validates, fans out, and returns the merged global top-K.
type Pipeline struct {
	Anon, Aux *corpus.Dataset
	Extractor *stylometry.Extractor
	G1, G2    *graph.UDA
	Scorer    *similarity.Scorer

	// world is the sharded query engine (single-shard for unsharded
	// pipelines; nil only on legacy literal-constructed pipelines, which
	// fall back to an on-the-fly single-shard world).
	world *shard.World
	// auxStore backs re-partitioning (Sharded); nil on legacy pipelines.
	auxStore *features.Store
}

// NewPipeline builds the UDA graphs of the anonymized and auxiliary datasets
// and prepares the similarity scorer. The POS-bigram feature block is fitted
// on the auxiliary texts (the adversary's data), with maxBigrams capping its
// size (<= 0 uses the default).
//
// NewPipeline is a convenience wrapper that builds a throwaway feature-store
// pair internally; callers that run more than one configuration over the
// same split should build the stores once with features.BuildPair and use
// NewPipelineFromStore, which skips re-extraction entirely.
func NewPipeline(anon, aux *corpus.Dataset, simCfg similarity.Config, maxBigrams int) *Pipeline {
	anonS, auxS := features.BuildPair(anon, aux, maxBigrams, features.Options{})
	return NewPipelineFromStore(anonS, auxS, simCfg)
}

// NewPipelineFromStore assembles a pipeline from prebuilt feature stores,
// reusing their cached UDA graphs, post vectors and attribute sets. Both
// stores must have been built with the same fitted extractor (as
// features.BuildPair does) so the feature spaces line up; it panics
// otherwise — two separately fitted extractors can agree on dimensionality
// while indexing different POS bigrams, which would silently corrupt every
// similarity score. The stores are not modified and can back any number of
// concurrent pipelines.
func NewPipelineFromStore(anon, aux *features.Store, simCfg similarity.Config) *Pipeline {
	return NewShardedPipelineFromStore(anon, aux, simCfg, 1)
}

// NewShardedPipelineFromStore is NewPipelineFromStore with the auxiliary
// side partitioned into shards partition-parallel scoring shards: each
// shard owns a contiguous feature-store view, an induced UDA subgraph and
// a scorer window over globally computed caches, and QueryUser/QueryBatch
// fan out across them and merge the per-shard bounded heaps. shards <= 1
// (or beyond the aux population, which clamps) yields the single-shard
// engine wrapping the base scorer directly; every shard count returns
// bit-identical query results — sharding only changes who computes what
// where.
func NewShardedPipelineFromStore(anon, aux *features.Store, simCfg similarity.Config, shards int) *Pipeline {
	if anon.Extractor != aux.Extractor {
		panic("core: stores were built with different extractors; build both with the same fitted extractor (see features.BuildPair)")
	}
	g1, g2 := anon.UDA(), aux.UDA()
	sc := similarity.NewScorer(g1, g2, simCfg)
	return &Pipeline{
		Anon: anon.Dataset, Aux: aux.Dataset,
		Extractor: aux.Extractor,
		G1:        g1, G2: g2,
		Scorer:   sc,
		world:    shard.New(sc, g2, aux, shards),
		auxStore: aux,
	}
}

// WithSimilarity returns a pipeline sharing this pipeline's datasets,
// graphs and feature artifacts but scoring under cfg. When cfg keeps the
// landmark count the scorer's precomputed landmark-distance caches are
// shared too, making a similarity-weight sweep nearly free. The shard
// world is re-derived from the re-weighted scorer, reusing every shard's
// store view and induced subgraph.
func (p *Pipeline) WithSimilarity(cfg similarity.Config) *Pipeline {
	q := *p
	q.Scorer = p.Scorer.Reweighted(cfg)
	if p.world != nil {
		q.world = p.world.WithScorer(q.Scorer)
	}
	return &q
}

// Sharded returns a pipeline over the same artifacts whose query path is
// re-partitioned into n shards (clamped as shard.Bounds documents). A
// pruned pipeline stays pruned: the new partitions build their own index
// windows under the same configuration and keep accumulating into the
// same stats block.
func (p *Pipeline) Sharded(n int) *Pipeline {
	q := *p
	q.world = shard.New(p.Scorer, p.G2, p.auxStore, n)
	if p.world != nil {
		if cfg, st, ok := p.world.PruneState(); ok {
			q.world = q.world.WithPruning(cfg, st)
		}
		if cfg, st, ok := p.world.ApproxState(); ok {
			q.world = q.world.WithApprox(cfg, st)
		}
	}
	return &q
}

// Pruned returns a pipeline over the same artifacts whose QueryUser /
// QueryBatch path gathers candidates from per-shard attribute inverted
// indexes and exact-rescores only them, falling back to the full scan
// whenever the structural score bounds cannot certify top-K correctness
// — results stay bit-identical to the unpruned path at every
// configuration (see internal/index). st, when non-nil, is the shared
// counter block the pruned queries accumulate into; nil allocates a
// fresh one. Batch TopK (the offline evaluation) is unaffected.
func (p *Pipeline) Pruned(cfg index.Config, st *index.Stats) *Pipeline {
	q := *p
	q.world = p.shardWorld().WithPruning(cfg, st)
	return &q
}

// PruneStats snapshots the query path's cumulative pruning counters
// (zero for an unpruned pipeline).
func (p *Pipeline) PruneStats() index.Stats {
	if p.world == nil {
		return index.Stats{}
	}
	return p.world.PruneStats()
}

// Approx returns a pipeline over the same artifacts whose
// QueryUserApprox / QueryBatchApprox path runs the approximate retrieval
// tier: max-score/WAND posting cursors generate candidates and the flat
// kernel exact-rescores the survivors (see internal/shard TopKApprox).
// The tier reuses the pruning indexes when present and builds them
// otherwise; the exact query paths stay untouched. st, when non-nil, is
// the shared counter block the tier accumulates into; nil allocates a
// fresh one.
func (p *Pipeline) Approx(cfg index.Config, st *index.ApproxStats) *Pipeline {
	q := *p
	q.world = p.shardWorld().WithApprox(cfg, st)
	return &q
}

// ApproxStats snapshots the approximate tier's cumulative counters (zero
// for a pipeline without the tier).
func (p *Pipeline) ApproxStats() index.ApproxStats {
	if p.world == nil {
		return index.ApproxStats{}
	}
	return p.world.ApproxStats()
}

// Shards returns the query path's auxiliary partition count (1 for
// unsharded pipelines).
func (p *Pipeline) Shards() int { return p.shardWorld().N() }

// shardWorld returns the pipeline's shard world, deriving a single-shard
// one on the fly for legacy literal-constructed pipelines.
func (p *Pipeline) shardWorld() *shard.World {
	if p.world != nil {
		return p.world
	}
	return shard.New(p.Scorer, p.G2, nil, 1)
}

// TopK runs the Top-K DA phase (Algorithm 1, lines 2–5). trueMapping is
// optional evaluation ground truth (anon user -> aux user) used only to
// compute TrueRank; pass nil in attack settings.
//
// Rows of the similarity matrix are computed in parallel and discarded after
// candidate extraction, so memory stays O(|V1|·K) for direct selection.
// GraphMatchingSelection materializes the full matrix and is intended for
// the small refined-DA datasets.
func (p *Pipeline) TopK(k int, method SelectionMethod, trueMapping map[int]int) *TopKResult {
	if k < 1 {
		panic(fmt.Sprintf("core: K must be >= 1, got %d", k))
	}
	switch method {
	case DirectSelection:
		return p.topKDirect(k, trueMapping)
	case GraphMatchingSelection:
		return p.topKMatching(k, trueMapping)
	default:
		panic(fmt.Sprintf("core: unknown selection method %d", method))
	}
}

func (p *Pipeline) topKDirect(k int, trueMapping map[int]int) *TopKResult {
	n1, n2 := p.G1.NumNodes(), p.G2.NumNodes()
	res := &TopKResult{
		K:          k,
		Candidates: make([][]Candidate, n1),
		TrueRank:   make([]int, n1),
		MeanScore:  make([]float64, n1),
		RowMin:     make([]float64, n1),
	}
	maxs := make([]float64, n1)
	mins := make([]float64, n1)

	workers := runtime.GOMAXPROCS(0)
	if workers > n1 {
		workers = n1
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			row := make([]float64, n2)
			var prof similarity.QueryProfile
			for u := range rows {
				p.Scorer.PrepareQuery(u, &prof)
				p.Scorer.ScoreRange(&prof, 0, n2, row)
				res.Candidates[u] = topCandidates(row, k)
				res.MeanScore[u] = meanScore(res.Candidates[u])
				maxs[u], mins[u] = rowExtremes(row)
				res.RowMin[u] = mins[u]
				if trueMapping != nil {
					if tv, ok := trueMapping[u]; ok {
						res.TrueRank[u] = rankOf(row, tv)
					}
				}
			}
		}()
	}
	for u := 0; u < n1; u++ {
		rows <- u
	}
	close(rows)
	wg.Wait()

	res.MaxScore, res.MinScore = extremes(maxs, mins)
	return res
}

// topCandidates returns the k highest-scoring columns of row, sorted
// descending (ties by smaller index).
func topCandidates(row []float64, k int) []Candidate {
	if k > len(row) {
		k = len(row)
	}
	idx := make([]int, len(row))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection: simple full sort is fine at these sizes and keeps
	// ordering deterministic.
	sort.Slice(idx, func(a, b int) bool {
		if row[idx[a]] != row[idx[b]] {
			return row[idx[a]] > row[idx[b]]
		}
		return idx[a] < idx[b]
	})
	out := make([]Candidate, k)
	for i := 0; i < k; i++ {
		out[i] = Candidate{User: idx[i], Score: row[idx[i]]}
	}
	return out
}

// meanScore averages candidate scores (λ_u).
func meanScore(cs []Candidate) float64 {
	if len(cs) == 0 {
		return 0
	}
	var s float64
	for _, c := range cs {
		s += c.Score
	}
	return s / float64(len(cs))
}

// rankOf returns the 1-based rank of column v in row (1 = highest score;
// ties count scores strictly greater plus earlier-index equal scores, which
// matches the deterministic candidate ordering).
func rankOf(row []float64, v int) int {
	r := 1
	for j, s := range row {
		if s > row[v] || (s == row[v] && j < v) {
			r++
		}
	}
	return r
}

func rowExtremes(row []float64) (mx, mn float64) {
	mx, mn = row[0], row[0]
	for _, s := range row[1:] {
		if s > mx {
			mx = s
		}
		if s < mn {
			mn = s
		}
	}
	return mx, mn
}

func extremes(maxs, mins []float64) (mx, mn float64) {
	if len(maxs) == 0 {
		return 0, 0
	}
	mx, mn = maxs[0], mins[0]
	for i := 1; i < len(maxs); i++ {
		if maxs[i] > mx {
			mx = maxs[i]
		}
		if mins[i] < mn {
			mn = mins[i]
		}
	}
	return mx, mn
}

func (p *Pipeline) topKMatching(k int, trueMapping map[int]int) *TopKResult {
	n1, n2 := p.G1.NumNodes(), p.G2.NumNodes()
	scores := p.Scorer.ScoreMatrix()
	res := &TopKResult{
		K:          k,
		Candidates: make([][]Candidate, n1),
		TrueRank:   make([]int, n1),
		MeanScore:  make([]float64, n1),
		RowMin:     make([]float64, n1),
	}
	if trueMapping != nil {
		for u := 0; u < n1; u++ {
			if tv, ok := trueMapping[u]; ok {
				res.TrueRank[u] = rankOf(scores[u], tv)
			}
		}
	}

	// Working copy: matched edges are struck out with -inf sentinels.
	work := make([][]float64, n1)
	for u := range scores {
		work[u] = append([]float64(nil), scores[u]...)
		res.MaxScore, res.MinScore = rowMergeExtremes(res, u, scores[u])
		_, res.RowMin[u] = rowExtremes(scores[u])
	}
	const struck = -1e18
	rounds := k
	if n2 < n1 {
		// Not all anonymized users can be matched each round; still run k
		// rounds, collecting what each round yields.
		rounds = k
	}
	exact := n1*n2 <= 250_000
	for r := 0; r < rounds; r++ {
		var match []int
		if exact {
			match = maxWeightMatch(work)
		} else {
			match = greedyMatch(work)
		}
		progress := false
		for u, v := range match {
			if v < 0 || work[u][v] == struck {
				continue
			}
			res.Candidates[u] = append(res.Candidates[u], Candidate{User: v, Score: scores[u][v]})
			work[u][v] = struck
			progress = true
		}
		if !progress {
			break
		}
	}
	// Keep candidate lists sorted by decreasing score for downstream code.
	for u := range res.Candidates {
		cs := res.Candidates[u]
		sort.Slice(cs, func(a, b int) bool {
			if cs[a].Score != cs[b].Score {
				return cs[a].Score > cs[b].Score
			}
			return cs[a].User < cs[b].User
		})
		res.MeanScore[u] = meanScore(cs)
	}
	return res
}

func rowMergeExtremes(res *TopKResult, u int, row []float64) (mx, mn float64) {
	rmx, rmn := rowExtremes(row)
	if u == 0 {
		return rmx, rmn
	}
	mx, mn = res.MaxScore, res.MinScore
	if rmx > mx {
		mx = rmx
	}
	if rmn < mn {
		mn = rmn
	}
	return mx, mn
}

// FilterConfig parametrizes Algorithm 2.
type FilterConfig struct {
	// Epsilon is the ε offset above the global minimum score (default 0.01).
	Epsilon float64
	// L is the threshold vector length l (default 10).
	L int
}

// Filter applies the Algorithm 2 threshold-vector filtering to tk in place:
// each candidate set is cut at the highest threshold level that leaves it
// non-empty; users whose candidates all fall below the smallest threshold
// are rejected (candidate set becomes nil, meaning u -> ⊥).
func (p *Pipeline) Filter(tk *TopKResult, cfg FilterConfig) {
	if cfg.L <= 1 {
		cfg.L = 10
	}
	if cfg.Epsilon < 0 {
		cfg.Epsilon = 0.01
	}
	su := tk.MaxScore
	sl := tk.MinScore + cfg.Epsilon
	if sl > su {
		sl = su
	}
	for u, cs := range tk.Candidates {
		if cs == nil {
			continue
		}
		var kept []Candidate
		for i := 0; i < cfg.L; i++ {
			ti := su - float64(i)/float64(cfg.L-1)*(su-sl)
			kept = kept[:0]
			for _, c := range cs {
				if c.Score >= ti {
					kept = append(kept, c)
				}
			}
			if len(kept) > 0 {
				tk.Candidates[u] = append([]Candidate(nil), kept...)
				break
			}
		}
		if len(kept) == 0 {
			tk.Candidates[u] = nil // u -> ⊥
		}
	}
}

// OpenWorldScheme selects the open-world handling of the refined DA phase.
type OpenWorldScheme int

const (
	// ClosedWorld accepts the classifier output unconditionally.
	ClosedWorld OpenWorldScheme = iota
	// FalseAddition adds K' random non-candidate users as decoy classes; a
	// decoy prediction means u -> ⊥.
	FalseAddition
	// MeanVerification accepts u -> v only when s_uv >= (1+r)·mean
	// similarity of u to its candidates (row-min shifted; see TopKResult).
	MeanVerification
	// SigmaVerification accepts u -> v only when the classifier's score for
	// v stands Sigma standard deviations above the other candidates'
	// scores (Stolerman et al.'s Classify-Verify).
	SigmaVerification
	// DistractorlessVerification accepts u -> v only when the cosine
	// between u's and v's aggregate stylometric profiles reaches
	// CosineThreshold (Noecker & Ryan).
	DistractorlessVerification
)

// RefineOptions parametrizes the refined DA phase.
type RefineOptions struct {
	// NewClassifier constructs a fresh classifier per anonymized user.
	NewClassifier func() ml.Classifier
	// Scheme is the open-world scheme (default ClosedWorld).
	Scheme OpenWorldScheme
	// R is the mean-verification margin r >= 0 (paper uses 0.25).
	R float64
	// Sigma is the SigmaVerification threshold in standard deviations
	// (typical operating points: 0.5–2).
	Sigma float64
	// CosineThreshold is the DistractorlessVerification acceptance level
	// (typical operating points: 0.95–0.999, profiles are highly aligned).
	CosineThreshold float64
	// KPrime is the number of decoy users for FalseAddition; <= 0 means
	// |Cu| decoys, as suggested in §III-B.
	KPrime int
	// Seed drives decoy sampling.
	Seed int64
}

// DAResult is the final outcome of De-Health for each anonymized user.
type DAResult struct {
	// Mapping[u] is the de-anonymized auxiliary user, or -1 for u -> ⊥.
	Mapping []int
}

// RefinedDA runs the second phase (Algorithm 1, lines 7–9): per anonymized
// user, train a classifier on the candidate users' auxiliary posts
// (stylometric vector ⊕ owner structural vector) and classify the
// anonymized user's posts, aggregating per-post scores.
func (p *Pipeline) RefinedDA(tk *TopKResult, opt RefineOptions) (*DAResult, error) {
	if opt.NewClassifier == nil {
		return nil, fmt.Errorf("core: RefineOptions.NewClassifier is required")
	}
	n1 := p.G1.NumNodes()
	res := &DAResult{Mapping: make([]int, n1)}
	rng := rand.New(rand.NewSource(opt.Seed + 7))

	type job struct{ u int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	errs := make([]error, n1)
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	seeds := make([]int64, n1)
	for u := 0; u < n1; u++ {
		seeds[u] = rng.Int63()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				m, err := p.refineUser(j.u, tk, opt, seeds[j.u])
				res.Mapping[j.u] = m
				errs[j.u] = err
			}
		}()
	}
	for u := 0; u < n1; u++ {
		jobs <- job{u}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// refineUser de-anonymizes a single user; returns the aux user or -1 (⊥).
func (p *Pipeline) refineUser(u int, tk *TopKResult, opt RefineOptions, seed int64) (int, error) {
	cands := tk.Candidates[u]
	if cands == nil {
		return -1, nil // rejected by filtering
	}
	if len(p.G1.PostVectors[u]) == 0 {
		return -1, nil // nothing to classify
	}

	classes := make([]int, 0, len(cands)*2) // aux user per class
	for _, c := range cands {
		classes = append(classes, c.User)
	}
	numReal := len(classes)

	if opt.Scheme == FalseAddition {
		kp := opt.KPrime
		if kp <= 0 {
			kp = len(cands)
		}
		inCu := map[int]bool{}
		for _, c := range cands {
			inCu[c.User] = true
		}
		n2 := p.G2.NumNodes()
		pool := make([]int, 0, n2-len(inCu))
		for v := 0; v < n2; v++ {
			if !inCu[v] {
				pool = append(pool, v)
			}
		}
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		if kp > len(pool) {
			kp = len(pool)
		}
		classes = append(classes, pool[:kp]...)
	}

	// Assemble the training set.
	var X [][]float64
	var y []int
	for ci, v := range classes {
		sv := p.Scorer.StructuralVector(2, v)
		for _, pv := range p.G2.PostVectors[v] {
			X = append(X, concat(pv, sv))
			y = append(y, ci)
		}
	}
	if len(X) == 0 {
		return -1, nil
	}
	clf := opt.NewClassifier()
	if err := clf.Fit(X, y); err != nil {
		return 0, fmt.Errorf("core: training classifier for anon user %d: %w", u, err)
	}

	// Classify u's posts and aggregate scores.
	su := p.Scorer.StructuralVector(1, u)
	total := make([]float64, len(classes))
	for _, pv := range p.G1.PostVectors[u] {
		scores := clf.Scores(concat(pv, su))
		for i, s := range scores {
			if i < len(total) {
				total[i] += s
			}
		}
	}
	best := ml.ArgMax(total)
	if best < 0 {
		return -1, nil
	}
	if opt.Scheme == FalseAddition && best >= numReal {
		return -1, nil // classified to a decoy: u -> ⊥
	}
	v := classes[best]

	switch opt.Scheme {
	case MeanVerification:
		mean := tk.MeanScore[u]
		if mean == 0 {
			mean = meanScore(cands)
		}
		if !verifyMean(p.Scorer.Score(u, v), mean, tk.RowMin[u], opt.R) {
			return -1, nil // verification rejected: u -> ⊥
		}
	case SigmaVerification:
		if !sigmaVerify(total[:numReal], best, opt.Sigma) {
			return -1, nil
		}
	case DistractorlessVerification:
		if !distractorlessVerify(p.G1.PostVectors[u], p.G2.PostVectors[v], opt.CosineThreshold) {
			return -1, nil
		}
	}
	return v, nil
}

// verifyMean implements the mean-verification acceptance test on row-min
// shifted scores: accept u -> v iff (s_uv − m) >= (1+r)·(λ_u − m), where m
// is the row minimum. The shift makes r a relative margin over the spread
// of u's similarity row rather than its absolute location.
func verifyMean(suv, mean, rowMin, r float64) bool {
	shiftedTop := suv - rowMin
	shiftedMean := mean - rowMin
	if shiftedMean <= 0 {
		return shiftedTop > 0
	}
	return shiftedTop >= (1+r)*shiftedMean
}

func concat(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// StylometryBaseline runs the comparison method of §V ("Stylometry"): the
// refined-DA classifier over the whole auxiliary user set, without the
// Top-K phase — equivalent to RefinedDA with Cu = V2 for every user. Since
// the candidate set is the same for everyone, a single classifier is
// trained and shared across all anonymized users.
func (p *Pipeline) StylometryBaseline(opt RefineOptions) (*DAResult, error) {
	if opt.NewClassifier == nil {
		return nil, fmt.Errorf("core: RefineOptions.NewClassifier is required")
	}
	n1, n2 := p.G1.NumNodes(), p.G2.NumNodes()

	var X [][]float64
	var y []int
	for v := 0; v < n2; v++ {
		sv := p.Scorer.StructuralVector(2, v)
		for _, pv := range p.G2.PostVectors[v] {
			X = append(X, concat(pv, sv))
			y = append(y, v)
		}
	}
	clf := opt.NewClassifier()
	if err := clf.Fit(X, y); err != nil {
		return nil, fmt.Errorf("core: training stylometry baseline: %w", err)
	}

	res := &DAResult{Mapping: make([]int, n1)}
	var wg sync.WaitGroup
	users := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range users {
				res.Mapping[u] = p.baselineUser(u, clf, n2, opt)
			}
		}()
	}
	for u := 0; u < n1; u++ {
		users <- u
	}
	close(users)
	wg.Wait()
	return res, nil
}

// baselineUser classifies one anonymized user with the shared baseline
// classifier, applying mean-verification over the whole auxiliary set when
// requested.
func (p *Pipeline) baselineUser(u int, clf ml.Classifier, n2 int, opt RefineOptions) int {
	if len(p.G1.PostVectors[u]) == 0 {
		return -1
	}
	su := p.Scorer.StructuralVector(1, u)
	total := make([]float64, n2)
	for _, pv := range p.G1.PostVectors[u] {
		scores := clf.Scores(concat(pv, su))
		for i, s := range scores {
			if i < len(total) {
				total[i] += s
			}
		}
	}
	best := ml.ArgMax(total)
	if best < 0 {
		return -1
	}
	if opt.Scheme == MeanVerification {
		var prof similarity.QueryProfile
		p.Scorer.PrepareQuery(u, &prof)
		mean, rowMin := 0.0, 0.0
		for v := 0; v < n2; v++ {
			s := p.Scorer.ScoreWith(&prof, v)
			mean += s
			if v == 0 || s < rowMin {
				rowMin = s
			}
		}
		mean /= float64(n2)
		if !verifyMean(p.Scorer.ScoreWith(&prof, best), mean, rowMin, opt.R) {
			return -1
		}
	}
	return best
}
