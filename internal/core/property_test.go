package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTopK builds a synthetic TopKResult with arbitrary score layouts.
func randomTopK(rng *rand.Rand) *TopKResult {
	n1 := 1 + rng.Intn(8)
	k := 1 + rng.Intn(6)
	tk := &TopKResult{
		K:          k,
		Candidates: make([][]Candidate, n1),
		TrueRank:   make([]int, n1),
		MeanScore:  make([]float64, n1),
		RowMin:     make([]float64, n1),
	}
	mx, mn := -1e18, 1e18
	for u := 0; u < n1; u++ {
		cs := make([]Candidate, k)
		score := rng.Float64() * 2
		for i := range cs {
			cs[i] = Candidate{User: i, Score: score}
			if score > mx {
				mx = score
			}
			if score < mn {
				mn = score
			}
			score -= rng.Float64() * 0.3 // decreasing
		}
		tk.Candidates[u] = cs
		tk.MeanScore[u] = meanScore(cs)
		tk.RowMin[u] = cs[len(cs)-1].Score
	}
	tk.MaxScore, tk.MinScore = mx, mn
	return tk
}

// Property: Algorithm 2 never drops the best-scoring candidate of a
// surviving user, always yields either nil (⊥) or a non-empty subset, and
// never reorders candidates.
func TestFilterProperties(t *testing.T) {
	p := &Pipeline{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tk := randomTopK(rng)
		before := make([][]Candidate, len(tk.Candidates))
		for u, cs := range tk.Candidates {
			before[u] = append([]Candidate(nil), cs...)
		}
		eps := rng.Float64() * 0.05
		l := 2 + rng.Intn(10)
		p.Filter(tk, FilterConfig{Epsilon: eps, L: l})
		for u, cs := range tk.Candidates {
			if cs == nil {
				continue // rejected is fine
			}
			if len(cs) == 0 {
				return false // must be nil or non-empty
			}
			// Subset of the originals, same relative order.
			j := 0
			for _, c := range cs {
				found := false
				for ; j < len(before[u]); j++ {
					if before[u][j] == c {
						found = true
						j++
						break
					}
				}
				if !found {
					return false
				}
			}
			// The surviving set contains the original best candidate.
			if cs[0] != before[u][0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: verifyMean is monotone in the score — raising s_uv never flips
// accept to reject — and r = 0 accepts any score at or above the mean.
func TestVerifyMeanProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rowMin := rng.NormFloat64()
		mean := rowMin + rng.Float64()
		r := rng.Float64() * 2
		s1 := rowMin + rng.Float64()*2
		s2 := s1 + rng.Float64() // s2 >= s1
		if verifyMean(s1, mean, rowMin, r) && !verifyMean(s2, mean, rowMin, r) {
			return false
		}
		if s1 >= mean && !verifyMean(s1, mean, rowMin, 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: topCandidates returns k distinct, sorted entries that are the
// true top-k of the row.
func TestTopCandidatesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		row := make([]float64, n)
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(n)
		cs := topCandidates(row, k)
		if len(cs) != k {
			return false
		}
		seen := map[int]bool{}
		for i, c := range cs {
			if seen[c.User] || row[c.User] != c.Score {
				return false
			}
			seen[c.User] = true
			if i > 0 && c.Score > cs[i-1].Score {
				return false
			}
		}
		// No excluded column beats the k-th selected score.
		kth := cs[len(cs)-1].Score
		better := 0
		for _, s := range row {
			if s > kth {
				better++
			}
		}
		return better <= k-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: rankOf is consistent with topCandidates — the candidate at
// position i has rank i+1.
func TestRankOfProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		row := make([]float64, n)
		for i := range row {
			row[i] = float64(rng.Intn(5)) // ties likely
		}
		cs := topCandidates(row, n)
		for i, c := range cs {
			if rankOf(row, c.User) != i+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
