package core

import (
	"math/rand"
	"runtime"
	"testing"

	"dehealth/internal/corpus"
	"dehealth/internal/features"
	"dehealth/internal/similarity"
)

// queryPipeline builds a store-backed pipeline for a split.
func queryPipeline(split *corpus.Split, landmarks int) *Pipeline {
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 50, features.Options{})
	return NewPipelineFromStore(anonS, auxS, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: landmarks})
}

// assertSameCandidates fails unless the two candidate lists match exactly
// (set, order and scores).
func assertSameCandidates(t *testing.T, u int, got, want []Candidate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("user %d: %d candidates, want %d", u, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("user %d candidate %d: %+v != %+v", u, i, got[i], want[i])
		}
	}
}

// TestQueryUserMatchesTopK proves the single-row bounded-heap path returns
// exactly the full-matrix direct selection's candidate set and ordering for
// every user, across closed- and open-world splits and several K, including
// K > |V2|.
func TestQueryUserMatchesTopK(t *testing.T) {
	d := fixedForum(24, 8, 21)
	splits := map[string]*corpus.Split{
		"closed": corpus.SplitClosedWorld(d, 0.5, rand.New(rand.NewSource(22))),
		"open":   corpus.OpenWorldOverlap(d, 0.5, rand.New(rand.NewSource(23))),
	}
	for name, split := range splits {
		t.Run(name, func(t *testing.T) {
			p := queryPipeline(split, 5)
			for _, k := range []int{1, 3, 10, split.Aux.NumUsers() + 5} {
				tk := p.TopK(k, DirectSelection, nil)
				for u := 0; u < split.Anon.NumUsers(); u++ {
					assertSameCandidates(t, u, p.QueryUser(u, k), tk.Candidates[u])
				}
			}
		})
	}
}

// TestQueryBatchMatchesQueryUser proves the batched fan-out is a pure
// reordering of independent single queries, at several pool widths.
func TestQueryBatchMatchesQueryUser(t *testing.T) {
	split := world(t, 18, 6, 0.5, 31)
	p := queryPipeline(split, 5)
	users := make([]int, split.Anon.NumUsers())
	for i := range users {
		users[i] = i
	}
	for _, workers := range []int{0, 1, 3, 64} {
		got := p.QueryBatch(users, 4, workers)
		for i, u := range users {
			assertSameCandidates(t, u, got[i], p.QueryUser(u, 4))
		}
	}
	if got := p.QueryBatch(nil, 4, 8); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// TestQueryBatchShardedAfterIngest drives the batched fan-out through its
// serving shape: a sharded pipeline answers mixed batches — repeats, an
// appended user, batches wider and narrower than the kernel chunk —
// bit-identically to per-user QueryUser, before and after SyncAppended.
func TestQueryBatchShardedAfterIngest(t *testing.T) {
	split := world(t, 20, 6, 0.5, 33)
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 50, features.Options{})
	cfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}
	p := NewShardedPipelineFromStore(anonS, auxS, cfg, 3)

	n0 := split.Anon.NumUsers()
	check := func(users []int, k int) {
		t.Helper()
		for _, workers := range []int{1, 2, 5} {
			got := p.QueryBatch(users, k, workers)
			for i, u := range users {
				assertSameCandidates(t, u, got[i], p.QueryUser(u, k))
			}
		}
	}
	wide := make([]int, 3*n0)
	for i := range wide {
		wide[i] = (i * 7) % n0
	}
	check([]int{0}, 4)
	check([]int{2, 2, 0, n0 - 1, 2}, 4)
	check(wide, 6)

	if _, err := anonS.Append([]features.UserPosts{
		{User: corpus.User{Name: "late", TrueIdentity: -1}, Posts: []features.IncomingPost{
			{Thread: 0, Text: split.Aux.Posts[0].Text},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if added := p.SyncAppended(); added != 1 {
		t.Fatalf("SyncAppended added %d, want 1", added)
	}
	check([]int{n0, 0, n0, 3}, 5)
}

// TestQueryAppendedUserMatchesTopK ingests new anonymized users into the
// store behind a live pipeline and checks that, after SyncAppended, the
// incremental query path agrees with a full-matrix TopK over the grown
// world — i.e. appended users are first-class citizens of the scorer.
func TestQueryAppendedUserMatchesTopK(t *testing.T) {
	split := world(t, 20, 8, 0.5, 41)
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 50, features.Options{})
	p := NewPipelineFromStore(anonS, auxS, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5})

	// Ingest two users: one replying into existing threads, one starting a
	// fresh thread.
	n0 := split.Anon.NumUsers()
	_, err := anonS.Append([]features.UserPosts{
		{User: corpus.User{Name: "newbie", TrueIdentity: -1}, Posts: []features.IncomingPost{
			{Thread: 0, Text: split.Aux.Posts[0].Text},
			{Thread: 1, Text: split.Aux.Posts[1].Text},
		}},
		{User: corpus.User{Name: "loner", TrueIdentity: -1}, Posts: []features.IncomingPost{
			{Thread: features.NewThread, Text: split.Aux.Posts[2].Text},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if added := p.SyncAppended(); added != 2 {
		t.Fatalf("SyncAppended added %d, want 2", added)
	}
	if p.G1.NumNodes() != n0+2 {
		t.Fatalf("anon graph has %d nodes, want %d", p.G1.NumNodes(), n0+2)
	}
	tk := p.TopK(5, DirectSelection, nil)
	for u := 0; u < n0+2; u++ {
		assertSameCandidates(t, u, p.QueryUser(u, 5), tk.Candidates[u])
	}
}

// TestQueryUserAllocBounds verifies the serving guarantee behind QueryUser:
// per-query heap allocation is O(K) and in particular far below one
// similarity-matrix row (|V2| float64s), so the hot path cannot silently
// regress into materializing rows. The allocation *count* is pinned too:
// the flat scoring kernel (PrepareQuery + blocked ScoreRange) contributes
// zero allocations per row, leaving only the bounded heap, its result
// slice and the final sort — 4 allocs/op on a single-shard pipeline.
func TestQueryUserAllocBounds(t *testing.T) {
	split := world(t, 60, 6, 0.5, 51)
	p := queryPipeline(split, 5)
	n2 := p.G2.NumNodes()
	p.QueryUser(0, 10) // warm any lazy state

	const rounds = 50
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		p.QueryUser(i%p.G1.NumNodes(), 10)
	}
	runtime.ReadMemStats(&after)
	perOp := (after.TotalAlloc - before.TotalAlloc) / rounds
	rowBytes := uint64(n2) * 8
	if perOp >= rowBytes {
		t.Fatalf("QueryUser allocates %d B/op, not below one matrix row (%d B)", perOp, rowBytes)
	}
	perOpAllocs := (after.Mallocs - before.Mallocs) / rounds
	if perOpAllocs > 4 {
		t.Fatalf("QueryUser allocates %d times/op, want <= 4 (heap, result, sort bookkeeping; the scoring kernel itself must allocate nothing)", perOpAllocs)
	}
}

// TestShardedQueryMatchesTopK is the tentpole parity guarantee at the
// pipeline level: for shard counts from 1 through beyond the auxiliary
// population, the fan-out/merge query path returns bit-identical candidate
// sets — set, order and scores — to the full-matrix direct selection, for
// every user and several K.
func TestShardedQueryMatchesTopK(t *testing.T) {
	split := world(t, 24, 6, 0.5, 61)
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 50, features.Options{})
	cfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}
	base := NewPipelineFromStore(anonS, auxS, cfg)
	auxN := split.Aux.NumUsers()
	if base.Shards() != 1 {
		t.Fatalf("unsharded pipeline reports %d shards, want 1", base.Shards())
	}

	for _, n := range []int{1, 2, 3, 4, 7, auxN, auxN + 5} {
		p := NewShardedPipelineFromStore(anonS, auxS, cfg, n)
		derived := base.Sharded(n)
		for _, k := range []int{1, 5, auxN + 3} {
			tk := base.TopK(k, DirectSelection, nil)
			for u := 0; u < split.Anon.NumUsers(); u++ {
				assertSameCandidates(t, u, p.QueryUser(u, k), tk.Candidates[u])
				assertSameCandidates(t, u, derived.QueryUser(u, k), tk.Candidates[u])
			}
		}
	}
}

// TestShardedIngestThenQueryParity grows the anonymized side behind a
// sharded pipeline and checks the appended users query identically to an
// unsharded pipeline over the grown world — the anon-side caches are
// shared across shard windows, so one SyncAppended covers the fan-out
// path.
func TestShardedIngestThenQueryParity(t *testing.T) {
	split := world(t, 20, 6, 0.5, 63)
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 50, features.Options{})
	cfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}
	sharded := NewShardedPipelineFromStore(anonS, auxS, cfg, 3)

	n0 := split.Anon.NumUsers()
	if _, err := anonS.Append([]features.UserPosts{
		{User: corpus.User{Name: "observed-1", TrueIdentity: -1}, Posts: []features.IncomingPost{
			{Thread: 0, Text: split.Aux.Posts[0].Text},
		}},
		{User: corpus.User{Name: "observed-2", TrueIdentity: -1}, Posts: []features.IncomingPost{
			{Thread: features.NewThread, Text: split.Aux.Posts[1].Text},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if added := sharded.SyncAppended(); added != 2 {
		t.Fatalf("SyncAppended added %d, want 2", added)
	}
	tk := sharded.TopK(5, DirectSelection, nil)
	for u := 0; u < n0+2; u++ {
		assertSameCandidates(t, u, sharded.QueryUser(u, 5), tk.Candidates[u])
	}
}

// TestShardedWithSimilarity re-weights a sharded pipeline and checks the
// re-derived shard world scores like a freshly built one.
func TestShardedWithSimilarity(t *testing.T) {
	split := world(t, 18, 6, 0.5, 65)
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 50, features.Options{})
	base := NewShardedPipelineFromStore(anonS, auxS, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}, 4)

	target := similarity.Config{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 5}
	rw := base.WithSimilarity(target)
	if rw.Shards() != 4 {
		t.Fatalf("reweighted pipeline has %d shards, want 4", rw.Shards())
	}
	fresh := NewShardedPipelineFromStore(anonS, auxS, target, 4)
	for u := 0; u < split.Anon.NumUsers(); u++ {
		assertSameCandidates(t, u, rw.QueryUser(u, 4), fresh.QueryUser(u, 4))
	}

	// Landmark-count changes rebuild the base scorer and re-shard.
	lm := base.WithSimilarity(similarity.Config{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 3})
	lmFresh := NewShardedPipelineFromStore(anonS, auxS, similarity.Config{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 3}, 4)
	for u := 0; u < split.Anon.NumUsers(); u++ {
		assertSameCandidates(t, u, lm.QueryUser(u, 4), lmFresh.QueryUser(u, 4))
	}
}
