// Snapshot support: assembling a pipeline around an already-restored
// scorer. NewShardedPipelineFromStore always precomputes scorer caches
// via similarity.NewScorer; the warm-restart path has those caches loaded
// from disk, so it needs a constructor that adopts a prebuilt scorer and
// only re-partitions the shard world around it.

package core

import (
	"dehealth/internal/features"
	"dehealth/internal/shard"
	"dehealth/internal/similarity"
)

// NewRestoredPipeline assembles a pipeline from prebuilt feature stores
// and an already-constructed base scorer (typically restored from a
// snapshot via similarity.NewScorerFromParts). The scorer must have been
// built over the stores' UDA graphs; no cache precomputation runs. The
// shard world is partitioned exactly as NewShardedPipelineFromStore
// partitions it, so queries against the restored pipeline fan out — and
// merge — identically to the pipeline that was saved.
func NewRestoredPipeline(anon, aux *features.Store, sc *similarity.Scorer, shards int) *Pipeline {
	if anon.Extractor != aux.Extractor {
		panic("core: stores were built with different extractors; build both with the same fitted extractor (see features.BuildPair)")
	}
	g1, g2 := anon.UDA(), aux.UDA()
	return &Pipeline{
		Anon: anon.Dataset, Aux: aux.Dataset,
		Extractor: aux.Extractor,
		G1:        g1, G2: g2,
		Scorer:   sc,
		world:    shard.New(sc, g2, aux, shards),
		auxStore: aux,
	}
}

// ShardWindows returns the query path's shards in partition order (shared;
// treat as read-only). Snapshotting reads each shard's index through it,
// and restoring installs loaded indexes on the windows before deriving the
// pruned world — WithPruning reuses an installed index whose build
// configuration matches instead of rebuilding it.
func (p *Pipeline) ShardWindows() []*shard.Shard { return p.shardWorld().Shards() }
