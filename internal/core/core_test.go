package core

import (
	"math/rand"
	"testing"

	"dehealth/internal/corpus"
	"dehealth/internal/ml"
	"dehealth/internal/similarity"
	"dehealth/internal/synth"
)

// fixedForum generates a forum where every user has exactly posts posts.
func fixedForum(users, posts int, seed int64) *corpus.Dataset {
	u := synth.NewUniverse(users, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	members := synth.Members(u, users, rng)
	cfg := synth.WebMDLike(users, seed+2)
	cfg.FixedPosts = posts
	return synth.Generate(cfg, u, members)
}

// world builds a small closed-world split with strong per-user signal.
func world(t *testing.T, users, posts int, auxFrac float64, seed int64) *corpus.Split {
	t.Helper()
	d := fixedForum(users, posts, seed)
	return corpus.SplitClosedWorld(d, auxFrac, rand.New(rand.NewSource(seed+1)))
}

func pipelineFor(split *corpus.Split) *Pipeline {
	cfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}
	return NewPipeline(split.Anon, split.Aux, cfg, 50)
}

func TestTopKDirect(t *testing.T) {
	split := world(t, 20, 20, 0.5, 3)
	p := pipelineFor(split)
	tk := p.TopK(5, DirectSelection, split.TrueMapping)

	if len(tk.Candidates) != split.Anon.NumUsers() {
		t.Fatalf("candidate sets: %d, want %d", len(tk.Candidates), split.Anon.NumUsers())
	}
	for u, cs := range tk.Candidates {
		if len(cs) != 5 {
			t.Fatalf("user %d has %d candidates, want 5", u, len(cs))
		}
		// Sorted by decreasing score.
		for i := 1; i < len(cs); i++ {
			if cs[i].Score > cs[i-1].Score {
				t.Fatalf("user %d candidates not sorted", u)
			}
		}
	}
	if tk.MaxScore < tk.MinScore {
		t.Error("score extremes inverted")
	}

	// The Top-K phase must be effective on this high-signal world: most
	// true mappings should rank within the top 5 of 20.
	hits, total := 0, 0
	for u := range split.TrueMapping {
		total++
		if r := tk.TrueRank[u]; r > 0 && r <= 5 {
			hits++
		}
	}
	if total == 0 {
		t.Fatal("no overlapping users in split")
	}
	if frac := float64(hits) / float64(total); frac < 0.5 {
		t.Errorf("top-5 success rate %v, want >= 0.5", frac)
	}
}

func TestTopKRankConsistency(t *testing.T) {
	split := world(t, 15, 6, 0.5, 4)
	p := pipelineFor(split)
	tk := p.TopK(split.Aux.NumUsers(), DirectSelection, split.TrueMapping)
	// With K = |V2|, the true mapping must be inside the candidate set, at
	// the position TrueRank says.
	for u, tv := range split.TrueMapping {
		r := tk.TrueRank[u]
		if r < 1 || r > split.Aux.NumUsers() {
			t.Fatalf("rank %d out of range", r)
		}
		if got := tk.Candidates[u][r-1].User; got != tv {
			t.Errorf("user %d: candidate at rank %d is %d, want %d", u, r, got, tv)
		}
	}
}

func TestTopKGraphMatching(t *testing.T) {
	split := world(t, 12, 6, 0.5, 5)
	p := pipelineFor(split)
	tk := p.TopK(3, GraphMatchingSelection, split.TrueMapping)
	for u, cs := range tk.Candidates {
		if len(cs) == 0 || len(cs) > 3 {
			t.Fatalf("user %d has %d candidates, want 1..3", u, len(cs))
		}
		seen := map[int]bool{}
		for _, c := range cs {
			if seen[c.User] {
				t.Fatalf("user %d has duplicate candidate %d", u, c.User)
			}
			seen[c.User] = true
		}
	}
	// Each matching round assigns distinct auxiliary users per round, and
	// over rounds a user's candidates stay distinct (checked above).
}

func TestFilterKeepsBest(t *testing.T) {
	tk := &TopKResult{
		K: 3,
		Candidates: [][]Candidate{
			{{User: 0, Score: 0.9}, {User: 1, Score: 0.5}, {User: 2, Score: 0.1}},
			{{User: 0, Score: 0.05}, {User: 1, Score: 0.04}, {User: 2, Score: 0.03}},
		},
		TrueRank: []int{0, 0},
		MaxScore: 0.9,
		MinScore: 0.03,
	}
	p := &Pipeline{}
	p.Filter(tk, FilterConfig{Epsilon: 0.01, L: 10})
	// User 0: top candidate(s) pass a high threshold; weakest dropped.
	if len(tk.Candidates[0]) == 0 || tk.Candidates[0][0].User != 0 {
		t.Errorf("filter lost the best candidate: %+v", tk.Candidates[0])
	}
	for _, c := range tk.Candidates[0] {
		if c.Score < 0.5 {
			t.Errorf("filter kept weak candidate %+v", c)
		}
	}
	// User 1: all scores cluster at the bottom; the filter keeps the ones
	// above the smallest threshold rather than rejecting everyone.
	if tk.Candidates[1] == nil {
		t.Error("user with low scores wrongly rejected")
	}
}

func TestFilterRejectsBelowEpsilon(t *testing.T) {
	// All candidates of user 0 sit at the global minimum; with epsilon > 0
	// even the smallest threshold excludes them => u -> ⊥.
	tk := &TopKResult{
		K: 2,
		Candidates: [][]Candidate{
			{{User: 0, Score: 0.0}, {User: 1, Score: 0.0}},
			{{User: 0, Score: 1.0}, {User: 1, Score: 0.8}},
		},
		TrueRank: []int{0, 0},
		MaxScore: 1.0,
		MinScore: 0.0,
	}
	p := &Pipeline{}
	p.Filter(tk, FilterConfig{Epsilon: 0.05, L: 10})
	if tk.Candidates[0] != nil {
		t.Errorf("expected rejection, got %+v", tk.Candidates[0])
	}
	if tk.Candidates[1] == nil {
		t.Error("strong user wrongly rejected")
	}
}

func TestRefinedDAClosedWorld(t *testing.T) {
	split := world(t, 15, 24, 0.5, 6)
	p := pipelineFor(split)
	tk := p.TopK(5, DirectSelection, split.TrueMapping)
	res, err := p.RefinedDA(tk, RefineOptions{
		NewClassifier: func() ml.Classifier { return ml.NewKNN(3) },
		Scheme:        ClosedWorld,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mapping) != split.Anon.NumUsers() {
		t.Fatalf("mapping size %d", len(res.Mapping))
	}
	correct, total := 0, 0
	for u, tv := range split.TrueMapping {
		total++
		if res.Mapping[u] == tv {
			correct++
		}
	}
	// The attack must clear random guessing (1/|V2|) by a wide margin.
	chance := 1 / float64(split.Aux.NumUsers())
	if frac := float64(correct) / float64(total); frac < 4*chance || frac < 0.3 {
		t.Errorf("refined DA accuracy %v (chance %v), want >= max(4x chance, 0.3)", frac, chance)
	}
}

func TestRefinedDARequiresClassifier(t *testing.T) {
	split := world(t, 8, 4, 0.5, 7)
	p := pipelineFor(split)
	tk := p.TopK(3, DirectSelection, nil)
	if _, err := p.RefinedDA(tk, RefineOptions{}); err == nil {
		t.Error("missing classifier factory accepted")
	}
	if _, err := p.StylometryBaseline(RefineOptions{}); err == nil {
		t.Error("baseline without classifier accepted")
	}
}

func TestRefinedDARespectsFilterRejections(t *testing.T) {
	split := world(t, 10, 6, 0.5, 8)
	p := pipelineFor(split)
	tk := p.TopK(3, DirectSelection, nil)
	tk.Candidates[0] = nil // pretend filtering rejected user 0
	res, err := p.RefinedDA(tk, RefineOptions{
		NewClassifier: func() ml.Classifier { return ml.NewKNN(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping[0] != -1 {
		t.Error("rejected user was still de-anonymized")
	}
}

func TestMeanVerificationRejects(t *testing.T) {
	split := world(t, 12, 8, 0.5, 9)
	p := pipelineFor(split)
	tk := p.TopK(4, DirectSelection, split.TrueMapping)
	// With an absurd margin everything is rejected.
	res, err := p.RefinedDA(tk, RefineOptions{
		NewClassifier: func() ml.Classifier { return ml.NewKNN(3) },
		Scheme:        MeanVerification,
		R:             1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for u, v := range res.Mapping {
		if v != -1 {
			t.Errorf("user %d passed an impossible verification", u)
		}
	}
	// With r = 0 at least some accepts happen.
	res0, err := p.RefinedDA(tk, RefineOptions{
		NewClassifier: func() ml.Classifier { return ml.NewKNN(3) },
		Scheme:        MeanVerification,
		R:             0,
	})
	if err != nil {
		t.Fatal(err)
	}
	accepts := 0
	for _, v := range res0.Mapping {
		if v >= 0 {
			accepts++
		}
	}
	if accepts == 0 {
		t.Error("r=0 verification rejected everyone")
	}
}

func TestFalseAdditionScheme(t *testing.T) {
	split := world(t, 14, 8, 0.5, 10)
	p := pipelineFor(split)
	tk := p.TopK(3, DirectSelection, split.TrueMapping)
	res, err := p.RefinedDA(tk, RefineOptions{
		NewClassifier: func() ml.Classifier { return ml.NewKNN(3) },
		Scheme:        FalseAddition,
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Decoy classes must never leak into the mapping: every non-⊥ result
	// must come from the user's candidate set.
	for u, v := range res.Mapping {
		if v < 0 {
			continue
		}
		if !tk.Contains(u, v) {
			t.Errorf("user %d mapped to non-candidate %d", u, v)
		}
	}
}

func TestStylometryBaselineRuns(t *testing.T) {
	split := world(t, 10, 8, 0.5, 11)
	p := pipelineFor(split)
	res, err := p.StylometryBaseline(RefineOptions{
		NewClassifier: func() ml.Classifier { return ml.NewKNN(3) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for u, v := range res.Mapping {
		if v < -1 || v >= split.Aux.NumUsers() {
			t.Errorf("user %d mapped out of range: %d", u, v)
		}
	}
}

func TestTopKPanicsOnBadK(t *testing.T) {
	split := world(t, 6, 4, 0.5, 12)
	p := pipelineFor(split)
	defer func() {
		if recover() == nil {
			t.Error("K=0 must panic")
		}
	}()
	p.TopK(0, DirectSelection, nil)
}
