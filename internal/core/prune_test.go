package core

import (
	"math/rand"
	"testing"

	"dehealth/internal/corpus"
	"dehealth/internal/features"
	"dehealth/internal/index"
	"dehealth/internal/similarity"
	"dehealth/internal/synth"
)

// pruneTestStores builds a small closed-world store pair.
func pruneTestStores(t *testing.T, users, posts int, seed int64) (*features.Store, *features.Store) {
	t.Helper()
	u := synth.NewUniverse(users, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	members := synth.Members(u, users, rng)
	cfg := synth.WebMDLike(users, seed+2)
	cfg.FixedPosts = posts
	d := synth.Generate(cfg, u, members)
	split := corpus.SplitClosedWorld(d, 0.5, rand.New(rand.NewSource(seed+3)))
	return features.BuildPair(split.Anon, split.Aux, 50, features.Options{})
}

// TestPipelinePrunedParity pins the core-layer guarantee: a pruned
// pipeline's QueryUser and QueryBatch are bit-identical to the unsharded
// unpruned pipeline, and WithSimilarity keeps both the pruning and the
// parity.
func TestPipelinePrunedParity(t *testing.T) {
	anonS, auxS := pruneTestStores(t, 22, 6, 41)
	cfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}
	plain := NewPipelineFromStore(anonS, auxS, cfg)
	pruned := NewShardedPipelineFromStore(anonS, auxS, cfg, 3).Pruned(index.Config{}, nil)

	n1 := plain.G1.NumNodes()
	users := make([]int, n1)
	for i := range users {
		users[i] = i
	}
	for _, k := range []int{1, 4, 9} {
		for u := 0; u < n1; u++ {
			got, want := pruned.QueryUser(u, k), plain.QueryUser(u, k)
			if len(got) != len(want) {
				t.Fatalf("user %d k %d: %d candidates, want %d", u, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("user %d k %d candidate %d: %+v, want %+v", u, k, i, got[i], want[i])
				}
			}
		}
	}
	gb, wb := pruned.QueryBatch(users, 5, 2), plain.QueryBatch(users, 5, 2)
	for i := range wb {
		for j := range wb[i] {
			if gb[i][j] != wb[i][j] {
				t.Fatalf("batch user %d candidate %d mismatch", i, j)
			}
		}
	}
	if pruned.PruneStats().Queries == 0 {
		t.Fatal("pruned pipeline did not count queries")
	}
	if plain.PruneStats() != (index.Stats{}) {
		t.Fatal("unpruned pipeline must report zero prune stats")
	}

	re := pruned.WithSimilarity(similarity.Config{C1: 0.2, C2: 0.2, C3: 0.6, Landmarks: 5})
	rePlain := plain.WithSimilarity(similarity.Config{C1: 0.2, C2: 0.2, C3: 0.6, Landmarks: 5})
	for u := 0; u < n1; u++ {
		got, want := re.QueryUser(u, 5), rePlain.QueryUser(u, 5)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("reweighted user %d candidate %d mismatch", u, i)
			}
		}
	}
}

// TestShardedKeepsPruning pins the re-partitioning contract: Sharded on a
// pruned pipeline must keep pruning (fresh index windows, same shared
// stats block) and stay bit-identical to the unpruned path.
func TestShardedKeepsPruning(t *testing.T) {
	anonS, auxS := pruneTestStores(t, 20, 5, 47)
	cfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4}
	plain := NewPipelineFromStore(anonS, auxS, cfg)
	st := &index.Stats{}
	pruned := NewShardedPipelineFromStore(anonS, auxS, cfg, 2).Pruned(index.Config{}, st)

	before := pruned.PruneStats().Queries
	resharded := pruned.Sharded(4)
	for u := 0; u < plain.G1.NumNodes(); u++ {
		got, want := resharded.QueryUser(u, 5), plain.QueryUser(u, 5)
		if len(got) != len(want) {
			t.Fatalf("user %d: %d candidates, want %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d candidate %d: %+v, want %+v", u, i, got[i], want[i])
			}
		}
	}
	after := resharded.PruneStats()
	if after.Queries == before {
		t.Fatal("Sharded dropped pruning: no queries counted through the re-partitioned world")
	}
	if pruned.PruneStats().Queries != after.Queries {
		t.Fatal("re-partitioned world must accumulate into the same stats block")
	}
}
