package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dehealth/internal/ml"
)

func TestSigmaVerifyKnown(t *testing.T) {
	// Predicted class at 10, others at 1 and 2 (mean 1.5, sd 0.5): the
	// margin is 17 sigmas.
	if !sigmaVerify([]float64{10, 1, 2}, 0, 2) {
		t.Error("clear winner rejected")
	}
	// Flat scores: only accepted at sigma 0 if strictly above the mean.
	if sigmaVerify([]float64{1, 1, 1}, 0, 0) {
		t.Error("tie accepted")
	}
	if !sigmaVerify([]float64{1.1, 1, 1}, 0, 0) {
		t.Error("strict winner over zero-variance distractors rejected")
	}
	// Narrow margin fails a high threshold.
	if sigmaVerify([]float64{2.1, 2.0, 1.9, 2.05}, 0, 3) {
		t.Error("weak margin accepted at 3 sigma")
	}
	// Degenerate candidate sets accept.
	if !sigmaVerify([]float64{5}, 0, 10) {
		t.Error("single-class set must accept")
	}
}

// Property: sigmaVerify is monotone in the predicted score and
// anti-monotone in the threshold.
func TestSigmaVerifyProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		totals := make([]float64, n)
		for i := range totals {
			totals[i] = rng.Float64() * 10
		}
		sigma := rng.Float64() * 3
		if sigmaVerify(totals, 0, sigma) {
			// Raising the winner's score cannot flip to reject.
			totals[0] += rng.Float64() * 5
			if !sigmaVerify(totals, 0, sigma) {
				return false
			}
			// Lowering the threshold cannot flip to reject.
			if !sigmaVerify(totals, 0, sigma/2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistractorlessVerifyKnown(t *testing.T) {
	a := [][]float64{{1, 0, 0}, {1, 0, 0}}
	same := [][]float64{{1, 0, 0}}
	orth := [][]float64{{0, 1, 0}}
	if !distractorlessVerify(a, same, 0.99) {
		t.Error("identical profiles rejected")
	}
	if distractorlessVerify(a, orth, 0.5) {
		t.Error("orthogonal profiles accepted")
	}
	if distractorlessVerify(nil, same, 0) {
		t.Error("empty anonymized profile accepted")
	}
	if distractorlessVerify(a, nil, 0) {
		t.Error("empty author profile accepted")
	}
}

func TestSigmaSchemeEndToEnd(t *testing.T) {
	split := world(t, 12, 10, 0.5, 21)
	p := pipelineFor(split)
	tk := p.TopK(4, DirectSelection, split.TrueMapping)

	// Impossible sigma: everything rejected.
	res, err := p.RefinedDA(tk, RefineOptions{
		NewClassifier: func() ml.Classifier { return ml.NewKNN(3) },
		Scheme:        SigmaVerification,
		Sigma:         1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for u, v := range res.Mapping {
		if v != -1 {
			t.Errorf("user %d passed an impossible sigma test", u)
		}
	}
	// Negative sigma accepts everything the classifier maps.
	res2, err := p.RefinedDA(tk, RefineOptions{
		NewClassifier: func() ml.Classifier { return ml.NewKNN(3) },
		Scheme:        SigmaVerification,
		Sigma:         -1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	accepts := 0
	for _, v := range res2.Mapping {
		if v >= 0 {
			accepts++
		}
	}
	if accepts == 0 {
		t.Error("negative sigma rejected everything")
	}
}

func TestDistractorlessSchemeEndToEnd(t *testing.T) {
	split := world(t, 12, 10, 0.5, 22)
	p := pipelineFor(split)
	tk := p.TopK(4, DirectSelection, split.TrueMapping)

	res, err := p.RefinedDA(tk, RefineOptions{
		NewClassifier:   func() ml.Classifier { return ml.NewKNN(3) },
		Scheme:          DistractorlessVerification,
		CosineThreshold: 1.1, // impossible: cosine <= 1
	})
	if err != nil {
		t.Fatal(err)
	}
	for u, v := range res.Mapping {
		if v != -1 {
			t.Errorf("user %d passed an impossible cosine threshold", u)
		}
	}
	res2, err := p.RefinedDA(tk, RefineOptions{
		NewClassifier:   func() ml.Classifier { return ml.NewKNN(3) },
		Scheme:          DistractorlessVerification,
		CosineThreshold: -1, // accept all
	})
	if err != nil {
		t.Fatal(err)
	}
	accepts := 0
	for _, v := range res2.Mapping {
		if v >= 0 {
			accepts++
		}
	}
	if accepts == 0 {
		t.Error("permissive cosine threshold rejected everything")
	}
}
