package core

import "dehealth/internal/bipartite"

// maxWeightMatch and greedyMatch adapt the bipartite package to the Top-K
// graph-matching selection loop. The exact algorithm is used when the score
// matrix is small enough; the greedy 1/2-approximation otherwise.

func maxWeightMatch(w [][]float64) []int { return bipartite.MaxWeightMatching(w) }

func greedyMatch(w [][]float64) []int { return bipartite.GreedyMatching(w) }
