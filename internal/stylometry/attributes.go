package stylometry

// AttrSet is a user-level attribute set in the sense of §II-B: user u has
// attribute A_i iff some post of u has feature F_i (non-zero dimension i),
// and the weight l_u(A_i) is the number of u's posts that have F_i.
//
// The set is stored sparsely as parallel slices sorted by feature index.
type AttrSet struct {
	Idx    []int // sorted feature indices present
	Weight []int // Weight[k] = l_u(A_Idx[k]) >= 1
}

// Len returns |A(u)|, the number of attributes the user has.
func (a AttrSet) Len() int { return len(a.Idx) }

// TotalWeight returns the sum of all attribute weights.
func (a AttrSet) TotalWeight() int {
	s := 0
	for _, w := range a.Weight {
		s += w
	}
	return s
}

// Has reports whether attribute i is present.
func (a AttrSet) Has(i int) bool {
	lo, hi := 0, len(a.Idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.Idx[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a.Idx) && a.Idx[lo] == i
}

// UserAttributes projects a user's post feature vectors to the user-level
// attribute set: attribute i is present with weight = number of posts whose
// dimension i is non-zero.
func UserAttributes(postVectors [][]float64) AttrSet {
	if len(postVectors) == 0 {
		return AttrSet{}
	}
	m := len(postVectors[0])
	counts := make([]int, m)
	for _, v := range postVectors {
		for i, x := range v {
			if x > 0 {
				counts[i]++
			}
		}
	}
	var set AttrSet
	for i, c := range counts {
		if c > 0 {
			set.Idx = append(set.Idx, i)
			set.Weight = append(set.Weight, c)
		}
	}
	return set
}

// Jaccard computes |A(u) ∩ A(v)| / |A(u) ∪ A(v)| over the binary attribute
// sets. It returns 0 when both sets are empty.
func Jaccard(a, b AttrSet) float64 {
	inter, union := 0, 0
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] == b.Idx[j]:
			inter++
			union++
			i++
			j++
		case a.Idx[i] < b.Idx[j]:
			union++
			i++
		default:
			union++
			j++
		}
	}
	union += len(a.Idx) - i + len(b.Idx) - j
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// WeightedJaccard computes |WA(u) ∩ WA(v)| / |WA(u) ∪ WA(v)| where the
// weighted intersection takes min weights and the weighted union takes max
// weights, as defined in §III-B. It returns 0 when both sets are empty.
func WeightedJaccard(a, b AttrSet) float64 {
	var inter, union int
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] == b.Idx[j]:
			wa, wb := a.Weight[i], b.Weight[j]
			if wa < wb {
				inter += wa
				union += wb
			} else {
				inter += wb
				union += wa
			}
			i++
			j++
		case a.Idx[i] < b.Idx[j]:
			union += a.Weight[i]
			i++
		default:
			union += b.Weight[j]
			j++
		}
	}
	for ; i < len(a.Idx); i++ {
		union += a.Weight[i]
	}
	for ; j < len(b.Idx); j++ {
		union += b.Weight[j]
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// MeanVector returns the element-wise mean of the vectors, or nil when vs is
// empty. All vectors must have equal length.
func MeanVector(vs [][]float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs[0]))
	for _, v := range vs {
		for i, x := range v {
			out[i] += x
		}
	}
	n := float64(len(vs))
	for i := range out {
		out[i] /= n
	}
	return out
}
