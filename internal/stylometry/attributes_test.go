package stylometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUserAttributes(t *testing.T) {
	posts := [][]float64{
		{1, 0, 2, 0},
		{0, 0, 3, 0},
		{4, 0, 0, 0},
	}
	a := UserAttributes(posts)
	if !a.Has(0) || a.Has(1) || !a.Has(2) || a.Has(3) {
		t.Errorf("unexpected attribute set: %+v", a)
	}
	// Feature 0 fires in 2 posts, feature 2 in 2 posts.
	if a.Len() != 2 {
		t.Fatalf("len = %d, want 2", a.Len())
	}
	for k, idx := range a.Idx {
		if idx == 0 && a.Weight[k] != 2 {
			t.Errorf("weight of attr 0 = %d, want 2", a.Weight[k])
		}
		if idx == 2 && a.Weight[k] != 2 {
			t.Errorf("weight of attr 2 = %d, want 2", a.Weight[k])
		}
	}
	if a.TotalWeight() != 4 {
		t.Errorf("total weight = %d, want 4", a.TotalWeight())
	}
}

func TestUserAttributesEmpty(t *testing.T) {
	a := UserAttributes(nil)
	if a.Len() != 0 || a.TotalWeight() != 0 {
		t.Error("empty post set must yield empty attributes")
	}
}

func TestJaccardKnown(t *testing.T) {
	a := AttrSet{Idx: []int{1, 2, 3}, Weight: []int{1, 1, 1}}
	b := AttrSet{Idx: []int{2, 3, 4}, Weight: []int{1, 1, 1}}
	if got := Jaccard(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
}

func TestWeightedJaccardKnown(t *testing.T) {
	a := AttrSet{Idx: []int{1, 2}, Weight: []int{3, 1}}
	b := AttrSet{Idx: []int{2, 3}, Weight: []int{2, 4}}
	// inter = min over shared {2}: 1; union = 3 + 2 + 4 = 9.
	if got := WeightedJaccard(a, b); math.Abs(got-1.0/9) > 1e-12 {
		t.Errorf("WeightedJaccard = %v, want 1/9", got)
	}
}

func TestJaccardEmpty(t *testing.T) {
	if Jaccard(AttrSet{}, AttrSet{}) != 0 {
		t.Error("Jaccard of empty sets must be 0")
	}
	if WeightedJaccard(AttrSet{}, AttrSet{}) != 0 {
		t.Error("WeightedJaccard of empty sets must be 0")
	}
}

// randomAttrSet builds a random valid attribute set.
func randomAttrSet(rng *rand.Rand) AttrSet {
	n := rng.Intn(12)
	var s AttrSet
	idx := 0
	for i := 0; i < n; i++ {
		idx += 1 + rng.Intn(4)
		s.Idx = append(s.Idx, idx)
		s.Weight = append(s.Weight, 1+rng.Intn(5))
	}
	return s
}

func TestJaccardProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomAttrSet(rng), randomAttrSet(rng)
		ja, jb := Jaccard(a, b), Jaccard(b, a)
		wa, wb := WeightedJaccard(a, b), WeightedJaccard(b, a)
		// Symmetry.
		if ja != jb || wa != wb {
			return false
		}
		// Bounds.
		if ja < 0 || ja > 1 || wa < 0 || wa > 1 {
			return false
		}
		// Identity: J(a, a) == 1 for non-empty a.
		if a.Len() > 0 && (Jaccard(a, a) != 1 || WeightedJaccard(a, a) != 1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeanVector(t *testing.T) {
	got := MeanVector([][]float64{{1, 2}, {3, 4}})
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("MeanVector = %v, want [2 3]", got)
	}
	if MeanVector(nil) != nil {
		t.Error("MeanVector(nil) must be nil")
	}
}

func TestAttrSetHasBinarySearch(t *testing.T) {
	s := AttrSet{Idx: []int{0, 5, 9, 100}, Weight: []int{1, 1, 1, 1}}
	for _, i := range []int{0, 5, 9, 100} {
		if !s.Has(i) {
			t.Errorf("Has(%d) = false", i)
		}
	}
	for _, i := range []int{-1, 1, 6, 99, 101} {
		if s.Has(i) {
			t.Errorf("Has(%d) = true", i)
		}
	}
}
