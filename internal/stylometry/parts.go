// Snapshot support: the extractor's only data-driven state is its fitted
// POS-bigram block, so saving and restoring an extractor reduces to the
// bigram pair list. SetBigrams installs a saved list exactly as FitBigrams
// would have — same feature order, same offsets — which is what makes a
// restored extractor's feature space identical to the one that was saved.

package stylometry

import (
	"fmt"

	"dehealth/internal/nlp/postag"
)

// Bigrams returns the fitted POS-bigram pairs in feature order (pairs of
// postag.Tags indices; shared slice, do not modify).
func (e *Extractor) Bigrams() [][2]int { return e.bigrams }

// SetBigrams installs a saved bigram list, rebuilding the feature table
// around it. The resulting extractor is identical to the one Bigrams was
// read from: FitBigrams is order-defining and SetBigrams preserves the
// given order. Pairs with tag indices outside postag.Tags are rejected.
func (e *Extractor) SetBigrams(pairs [][2]int) error {
	for i, p := range pairs {
		if p[0] < 0 || p[0] >= len(postag.Tags) || p[1] < 0 || p[1] >= len(postag.Tags) {
			return fmt.Errorf("stylometry: bigram %d tags (%d, %d) outside the %d-tag set", i, p[0], p[1], len(postag.Tags))
		}
	}
	e.bigrams = pairs
	e.rebuild()
	return nil
}
