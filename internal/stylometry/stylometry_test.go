package stylometry

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"dehealth/internal/nlp/lexicon"
)

func featureIndex(e *Extractor, name string) int {
	for i, f := range e.Features() {
		if f.Name == name {
			return i
		}
	}
	return -1
}

func TestCategoryCounts(t *testing.T) {
	e := New()
	counts := e.CategoryCounts()
	want := map[Category]int{
		CatLength:        3,
		CatWordLength:    20,
		CatVocabRichness: 5,
		CatLetterFreq:    26,
		CatDigitFreq:     10,
		CatUppercase:     1,
		CatSpecialChars:  21,
		CatWordShape:     5,
		CatPunctuation:   10,
		CatFunctionWords: 337,
		CatPOSTags:       35,
		CatPOSBigrams:    0,
		CatMisspellings:  248,
	}
	for cat, n := range want {
		if counts[cat] != n {
			t.Errorf("category %s has %d features, want %d", cat, counts[cat], n)
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != e.NumFeatures() {
		t.Errorf("category counts sum to %d, NumFeatures() = %d", total, e.NumFeatures())
	}
}

func TestExtractLengthBlock(t *testing.T) {
	e := New()
	text := "one two three"
	v := e.Extract(text)
	if got := v[featureIndex(e, "length:chars")]; got != 13 {
		t.Errorf("chars = %v, want 13", got)
	}
	if got := v[featureIndex(e, "length:paragraphs")]; got != 1 {
		t.Errorf("paragraphs = %v, want 1", got)
	}
	// avg chars per word = (3+3+5)/3.
	if got := v[featureIndex(e, "length:avg-chars-per-word")]; math.Abs(got-11.0/3) > 1e-9 {
		t.Errorf("avg chars/word = %v, want %v", got, 11.0/3)
	}
}

func TestExtractWordLength(t *testing.T) {
	e := New()
	v := e.Extract("a bb ccc a")
	if got := v[featureIndex(e, "wordlen:1")]; got != 0.5 {
		t.Errorf("wordlen:1 = %v, want 0.5", got)
	}
	if got := v[featureIndex(e, "wordlen:2")]; got != 0.25 {
		t.Errorf("wordlen:2 = %v, want 0.25", got)
	}
	if got := v[featureIndex(e, "wordlen:3")]; got != 0.25 {
		t.Errorf("wordlen:3 = %v, want 0.25", got)
	}
}

func TestExtractFunctionWordsAndMisspellings(t *testing.T) {
	e := New()
	v := e.Extract("i beleive the doctor because i trust the doctor")
	// "i" occurs 2/9, "the" 2/9, "because" 1/9.
	if got := v[featureIndex(e, "func:i")]; math.Abs(got-2.0/9) > 1e-9 {
		t.Errorf("func:i = %v, want %v", got, 2.0/9)
	}
	if got := v[featureIndex(e, "func:because")]; math.Abs(got-1.0/9) > 1e-9 {
		t.Errorf("func:because = %v", got)
	}
	if got := v[featureIndex(e, "misspell:beleive")]; math.Abs(got-1.0/9) > 1e-9 {
		t.Errorf("misspell:beleive = %v", got)
	}
	if got := v[featureIndex(e, "misspell:recieve")]; got != 0 {
		t.Errorf("misspell:recieve = %v, want 0", got)
	}
}

func TestExtractVocabRichness(t *testing.T) {
	e := New()
	// "a a b": hapax = {b}: 1/3; dis = {a}: 1/3.
	v := e.Extract("a a b")
	if got := v[featureIndex(e, "vocab:hapax")]; math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("hapax = %v", got)
	}
	if got := v[featureIndex(e, "vocab:dis")]; math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("dis = %v", got)
	}
	// Yule's K for "a a b": V = {a:2, b:1}, sum i^2 Vi = 4+1 = 5, N = 3.
	wantK := 1e4 * (5.0 - 3.0) / 9.0
	if got := v[featureIndex(e, "vocab:yule-k")]; math.Abs(got-wantK) > 1e-9 {
		t.Errorf("yule-k = %v, want %v", got, wantK)
	}
}

func TestExtractNonNegativeAndFinite(t *testing.T) {
	e := New()
	texts := []string{
		"", "!!!", "   ", "123 456", "Hello, WORLD!!",
		"I was diagnosed with diabetes two weeks ago and my doctor prescribed 50mg of metformin.",
	}
	for _, text := range texts {
		for i, x := range e.Extract(text) {
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				t.Errorf("Extract(%q)[%d] = %v (feature %s)", text, i, x, e.Features()[i].Name)
			}
		}
	}
}

func TestFitBigrams(t *testing.T) {
	e := New()
	base := e.NumFeatures()
	texts := []string{
		"the doctor said i should sleep more",
		"my doctor said i can sleep now",
	}
	e.FitBigrams(texts, 10)
	if e.NumBigrams() == 0 {
		t.Fatal("no bigrams fitted")
	}
	if e.NumBigrams() > 10 {
		t.Fatalf("fitted %d bigrams, cap was 10", e.NumBigrams())
	}
	if e.NumFeatures() != base+e.NumBigrams() {
		t.Errorf("feature count %d, want %d", e.NumFeatures(), base+e.NumBigrams())
	}
	// DT NN ("the doctor", "my doctor"-ish) should be among the top bigrams.
	found := false
	for _, f := range e.Features() {
		if f.Category == CatPOSBigrams && strings.Contains(f.Name, "DT_NN") {
			found = true
		}
	}
	if !found {
		t.Error("expected DT_NN bigram feature")
	}
	// Extraction now populates some bigram dimension.
	v := e.Extract(texts[0])
	any := false
	for i, f := range e.Features() {
		if f.Category == CatPOSBigrams && v[i] > 0 {
			any = true
		}
	}
	if !any {
		t.Error("no bigram feature fired on a fitted text")
	}
}

func TestFitBigramsDefaultCap(t *testing.T) {
	e := New()
	e.FitBigrams([]string{"the cat sat on the mat and the dog ran"}, 0)
	if e.NumBigrams() > DefaultMaxBigrams {
		t.Errorf("bigrams %d exceed default cap", e.NumBigrams())
	}
}

func TestExtractDeterministic(t *testing.T) {
	e := New()
	e.FitBigrams([]string{"i feel sick today and the doctor is away"}, 50)
	text := "I have been feeling dizzy for two weeks, and my doctor ordered an MRI!"
	if !reflect.DeepEqual(e.Extract(text), e.Extract(text)) {
		t.Error("extraction is not deterministic")
	}
}

func TestRefitReplacesBigrams(t *testing.T) {
	e := New()
	e.FitBigrams([]string{"a small cat sat"}, 5)
	n1 := e.NumBigrams()
	e.FitBigrams([]string{"the doctor prescribed the medicine for the patient"}, 3)
	if e.NumBigrams() > 3 {
		t.Errorf("refit kept %d bigrams, cap 3", e.NumBigrams())
	}
	_ = n1
	counts := e.CategoryCounts()
	if counts[CatMisspellings] != len(lexicon.MisspellingList) {
		t.Error("refit corrupted fixed blocks")
	}
}

func TestUppercaseFeature(t *testing.T) {
	e := New()
	v := e.Extract("ABC def")
	if got := v[featureIndex(e, "uppercase:pct")]; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("uppercase pct = %v, want 0.5", got)
	}
}

func TestShapeFeatures(t *testing.T) {
	e := New()
	v := e.Extract("USA hello World WebMD")
	if got := v[featureIndex(e, "shape:upper")]; got != 0.25 {
		t.Errorf("shape:upper = %v, want 0.25", got)
	}
	if got := v[featureIndex(e, "shape:lower")]; got != 0.25 {
		t.Errorf("shape:lower = %v", got)
	}
	if got := v[featureIndex(e, "shape:initial")]; got != 0.25 {
		t.Errorf("shape:initial = %v", got)
	}
	if got := v[featureIndex(e, "shape:camel")]; got != 0.25 {
		t.Errorf("shape:camel = %v", got)
	}
}
