// Package stylometry implements the Table I feature inventory of the
// De-Health paper: lexical features (length, word length, vocabulary
// richness, letter/digit frequency, uppercase percentage, special
// characters, word shape), syntactic features (punctuation frequency,
// function words, POS tags, POS-tag bigrams) and idiosyncratic features
// (misspelled words).
//
// An Extractor owns the feature space. The fixed portion of the space is
// identical for every extractor; the POS-bigram portion is data-driven
// (fitted on a reference corpus, mirroring the paper's variable feature
// count M). Extract maps a post to a non-negative feature vector; zero in a
// dimension means "this post does not have the corresponding feature",
// exactly as §II-B defines.
package stylometry

import (
	"fmt"
	"sort"
	"strings"

	"dehealth/internal/nlp/lexicon"
	"dehealth/internal/nlp/postag"
	"dehealth/internal/textutil"
)

// Category labels a block of features, following Table I.
type Category string

// The Table I feature categories.
const (
	CatLength        Category = "length"
	CatWordLength    Category = "word-length"
	CatVocabRichness Category = "vocabulary-richness"
	CatLetterFreq    Category = "letter-freq"
	CatDigitFreq     Category = "digit-freq"
	CatUppercase     Category = "uppercase-pct"
	CatSpecialChars  Category = "special-chars"
	CatWordShape     Category = "word-shape"
	CatPunctuation   Category = "punctuation-freq"
	CatFunctionWords Category = "function-words"
	CatPOSTags       Category = "pos-tags"
	CatPOSBigrams    Category = "pos-bigrams"
	CatMisspellings  Category = "misspelled-words"
)

// Feature describes one dimension of the feature space.
type Feature struct {
	// Name is a stable, human-readable identifier, e.g. "letter:e".
	Name string
	// Category is the Table I category the feature belongs to.
	Category Category
}

// MaxWordLength is the longest word length tracked by the word-length
// frequency block (Table I: 20 features).
const MaxWordLength = 20

// DefaultMaxBigrams caps the number of data-driven POS-bigram features.
const DefaultMaxBigrams = 300

// Extractor owns a concrete feature space and converts posts to vectors.
// The zero value is not usable; construct with New and optionally FitBigrams.
type Extractor struct {
	features  []Feature
	bigrams   [][2]int       // pairs of postag.Tags indices, feature-ordered
	bigramIdx map[[2]int]int // bigram -> absolute feature index

	// Offsets of each block in the feature vector.
	offLength, offWordLen, offVocab, offLetter, offDigit, offUpper int
	offSpecial, offShape, offPunct, offFunc, offPOS, offBigram     int
	offMisspell                                                    int
}

// New creates an Extractor with the fixed Table I feature blocks and no
// POS-bigram features. Call FitBigrams to add the data-driven block.
func New() *Extractor {
	e := &Extractor{bigramIdx: map[[2]int]int{}}
	e.rebuild()
	return e
}

// shapes tracked by the word-shape block.
var shapes = []textutil.Shape{
	textutil.ShapeAllUpper,
	textutil.ShapeAllLower,
	textutil.ShapeInitialUpper,
	textutil.ShapeCamel,
	textutil.ShapeOther,
}

// rebuild recomputes the feature table and block offsets.
func (e *Extractor) rebuild() {
	var fs []Feature
	add := func(cat Category, names ...string) int {
		off := len(fs)
		for _, n := range names {
			fs = append(fs, Feature{Name: n, Category: cat})
		}
		return off
	}

	e.offLength = add(CatLength, "length:chars", "length:paragraphs", "length:avg-chars-per-word")

	wl := make([]string, MaxWordLength)
	for i := range wl {
		wl[i] = fmt.Sprintf("wordlen:%d", i+1)
	}
	e.offWordLen = add(CatWordLength, wl...)

	e.offVocab = add(CatVocabRichness, "vocab:yule-k", "vocab:hapax", "vocab:dis", "vocab:tris", "vocab:tetrakis")

	letters := make([]string, 26)
	for i := range letters {
		letters[i] = fmt.Sprintf("letter:%c", 'a'+i)
	}
	e.offLetter = add(CatLetterFreq, letters...)

	digits := make([]string, 10)
	for i := range digits {
		digits[i] = fmt.Sprintf("digit:%c", '0'+i)
	}
	e.offDigit = add(CatDigitFreq, digits...)

	e.offUpper = add(CatUppercase, "uppercase:pct")

	specials := make([]string, len(textutil.SpecialChars))
	for i, r := range textutil.SpecialChars {
		specials[i] = fmt.Sprintf("special:%c", r)
	}
	e.offSpecial = add(CatSpecialChars, specials...)

	shapeNames := make([]string, len(shapes))
	for i, s := range shapes {
		shapeNames[i] = "shape:" + s.String()
	}
	e.offShape = add(CatWordShape, shapeNames...)

	puncts := make([]string, len(textutil.Punctuation))
	for i, r := range textutil.Punctuation {
		puncts[i] = fmt.Sprintf("punct:%c", r)
	}
	e.offPunct = add(CatPunctuation, puncts...)

	fws := make([]string, len(lexicon.FunctionWords))
	for i, w := range lexicon.FunctionWords {
		fws[i] = "func:" + w
	}
	e.offFunc = add(CatFunctionWords, fws...)

	tags := make([]string, len(postag.Tags))
	for i, t := range postag.Tags {
		tags[i] = "pos:" + t
	}
	e.offPOS = add(CatPOSTags, tags...)

	bg := make([]string, len(e.bigrams))
	for i, b := range e.bigrams {
		bg[i] = "posbg:" + postag.Tags[b[0]] + "_" + postag.Tags[b[1]]
	}
	e.offBigram = add(CatPOSBigrams, bg...)

	ms := make([]string, len(lexicon.MisspellingList))
	for i, w := range lexicon.MisspellingList {
		ms[i] = "misspell:" + w
	}
	e.offMisspell = add(CatMisspellings, ms...)

	e.features = fs
	e.bigramIdx = make(map[[2]int]int, len(e.bigrams))
	for i, b := range e.bigrams {
		e.bigramIdx[b] = e.offBigram + i
	}
}

// FitBigrams scans texts for POS-tag bigrams and installs the maxBigrams
// most frequent ones (by total occurrence count, ties broken by tag order)
// as features. Passing maxBigrams <= 0 uses DefaultMaxBigrams. Fitting
// replaces any previously fitted bigram block.
func (e *Extractor) FitBigrams(texts []string, maxBigrams int) {
	if maxBigrams <= 0 {
		maxBigrams = DefaultMaxBigrams
	}
	counts := map[[2]int]int{}
	for _, t := range texts {
		tagged := postag.Tag(t)
		for i := 1; i < len(tagged); i++ {
			a, b := postag.Index(tagged[i-1].Tag), postag.Index(tagged[i].Tag)
			if a >= 0 && b >= 0 {
				counts[[2]int{a, b}]++
			}
		}
	}
	type bc struct {
		bg [2]int
		n  int
	}
	all := make([]bc, 0, len(counts))
	for bg, n := range counts {
		all = append(all, bc{bg, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		if all[i].bg[0] != all[j].bg[0] {
			return all[i].bg[0] < all[j].bg[0]
		}
		return all[i].bg[1] < all[j].bg[1]
	})
	if len(all) > maxBigrams {
		all = all[:maxBigrams]
	}
	e.bigrams = make([][2]int, len(all))
	for i, b := range all {
		e.bigrams[i] = b.bg
	}
	e.rebuild()
}

// NumFeatures returns M, the size of the feature space.
func (e *Extractor) NumFeatures() int { return len(e.features) }

// Features returns the feature table (shared slice; do not modify).
func (e *Extractor) Features() []Feature { return e.features }

// NumBigrams returns the size of the fitted POS-bigram block.
func (e *Extractor) NumBigrams() int { return len(e.bigrams) }

// CategoryCounts returns the number of features per Table I category.
func (e *Extractor) CategoryCounts() map[Category]int {
	out := map[Category]int{}
	for _, f := range e.features {
		out[f.Category]++
	}
	return out
}

// Extract computes the feature vector of a single post. All values are
// non-negative; frequency blocks are normalized to relative frequencies so
// posts of different lengths are comparable.
func (e *Extractor) Extract(text string) []float64 {
	v := make([]float64, len(e.features))
	e.ExtractInto(v, text)
	return v
}

// ExtractInto computes the feature vector of text into v, which must have
// length NumFeatures. It zeroes v first, so rows of a shared backing array
// can be reused. Extraction is read-only on the Extractor, so ExtractInto is
// safe to call from many goroutines once fitting is done.
func (e *Extractor) ExtractInto(v []float64, text string) {
	if len(v) != len(e.features) {
		panic(fmt.Sprintf("stylometry: ExtractInto dst has %d dims, want %d", len(v), len(e.features)))
	}
	for i := range v {
		v[i] = 0
	}

	words := textutil.WordStrings(text)
	nWords := float64(len(words))
	chars := textutil.CountChars(text)
	paragraphs := textutil.Paragraphs(text)

	// Length block.
	v[e.offLength] = float64(chars)
	v[e.offLength+1] = float64(len(paragraphs))
	if nWords > 0 {
		totalWordChars := 0
		for _, w := range words {
			totalWordChars += len([]rune(w))
		}
		v[e.offLength+2] = float64(totalWordChars) / nWords
	}

	// Word-length block.
	if nWords > 0 {
		for _, w := range words {
			l := len([]rune(w))
			if l >= 1 {
				if l > MaxWordLength {
					l = MaxWordLength
				}
				v[e.offWordLen+l-1]++
			}
		}
		for i := 0; i < MaxWordLength; i++ {
			v[e.offWordLen+i] /= nWords
		}
	}

	// Vocabulary richness block.
	if nWords > 0 {
		freq := map[string]int{}
		for _, w := range words {
			freq[strings.ToLower(w)]++
		}
		var legomena [5]float64 // index i => words occurring exactly i times (1..4)
		sumI2Vi := 0.0
		for _, n := range freq {
			if n >= 1 && n <= 4 {
				legomena[n]++
			}
			sumI2Vi += float64(n) * float64(n)
		}
		n := nWords
		v[e.offVocab] = 1e4 * (sumI2Vi - n) / (n * n) // Yule's K
		for i := 1; i <= 4; i++ {
			v[e.offVocab+i] = legomena[i] / n
		}
	}

	// Letter block.
	lf := textutil.LetterFreq(text)
	totalLetters := 0
	for _, n := range lf {
		totalLetters += n
	}
	if totalLetters > 0 {
		for i, n := range lf {
			v[e.offLetter+i] = float64(n) / float64(totalLetters)
		}
	}

	// Digit block.
	df := textutil.DigitFreq(text)
	if chars > 0 {
		for i, n := range df {
			v[e.offDigit+i] = float64(n) / float64(chars)
		}
	}

	// Uppercase percentage.
	v[e.offUpper] = textutil.UppercaseRatio(text)

	// Special characters.
	sf := textutil.SpecialCharFreq(text)
	if chars > 0 {
		for i, n := range sf {
			v[e.offSpecial+i] = float64(n) / float64(chars)
		}
	}

	// Word shapes.
	if nWords > 0 {
		shapeIdx := map[textutil.Shape]int{}
		for i, s := range shapes {
			shapeIdx[s] = i
		}
		for _, w := range words {
			v[e.offShape+shapeIdx[textutil.WordShape(w)]]++
		}
		for i := range shapes {
			v[e.offShape+i] /= nWords
		}
	}

	// Punctuation.
	pf := textutil.PunctuationFreq(text)
	if chars > 0 {
		for i, n := range pf {
			v[e.offPunct+i] = float64(n) / float64(chars)
		}
	}

	// Function words and misspellings.
	if nWords > 0 {
		for _, w := range words {
			lw := strings.ToLower(w)
			if i := lexicon.FunctionWordIndex(lw); i >= 0 {
				v[e.offFunc+i] += 1 / nWords
			}
			if i := lexicon.MisspellingIndex(lw); i >= 0 {
				v[e.offMisspell+i] += 1 / nWords
			}
		}
	}

	// POS tags and bigrams.
	tagged := postag.Tag(text)
	if len(tagged) > 0 {
		nt := float64(len(tagged))
		for _, t := range tagged {
			if i := postag.Index(t.Tag); i >= 0 {
				v[e.offPOS+i] += 1 / nt
			}
		}
		if len(e.bigrams) > 0 && len(tagged) > 1 {
			nbg := float64(len(tagged) - 1)
			for i := 1; i < len(tagged); i++ {
				a, b := postag.Index(tagged[i-1].Tag), postag.Index(tagged[i].Tag)
				if a < 0 || b < 0 {
					continue
				}
				if idx, ok := e.bigramIdx[[2]int{a, b}]; ok {
					v[idx] += 1 / nbg
				}
			}
		}
	}
}

// ExtractAll extracts feature vectors for every text.
func (e *Extractor) ExtractAll(texts []string) [][]float64 {
	out := make([][]float64, len(texts))
	for i, t := range texts {
		out[i] = e.Extract(t)
	}
	return out
}
