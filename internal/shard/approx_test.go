package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"dehealth/internal/corpus"
	"dehealth/internal/features"
	"dehealth/internal/index"
	"dehealth/internal/similarity"
	"dehealth/internal/synth"
)

// TestApproxDegenerateParitySparse is the tier's exactness guarantee: at
// the conservative knobs (zero ApproxParams resolve to Theta 1, unbounded
// budget) the WAND walk's skips are provably safe, so the approximate
// path must return bit-identical top-K to the exact full scan — at every
// shard count and K — while the stats show the walk actually ran.
func TestApproxDegenerateParitySparse(t *testing.T) {
	g1, g2 := sparseWorld(t, 120, 12, 400, 51)
	base := similarity.NewScorer(g1, g2, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5})
	full := New(base, g2, nil, 1)

	for _, shards := range []int{1, 3, 8} {
		st := &index.ApproxStats{}
		ap := New(base, g2, nil, shards).WithApprox(index.Config{}, st)
		if !ap.Approxed() {
			t.Fatal("WithApprox world must report Approxed")
		}
		for _, k := range []int{1, 5, 17} {
			for u := 0; u < g1.NumNodes(); u++ {
				candidatesEqual(t, ap.QueryUserApprox(u, k, index.ApproxParams{}), full.QueryUser(u, k),
					"sparse approx degenerate parity")
			}
		}
		s := st.Snapshot()
		if s.Queries == 0 || s.CursorsOpened == 0 {
			t.Fatalf("approx tier did not run: %+v", s)
		}
		if s.Fallbacks != 0 {
			t.Fatalf("indexed prune-safe world must not fall back: %+v", s)
		}
		if s.BudgetExhausted != 0 {
			t.Fatalf("unbounded budget cannot exhaust: %+v", s)
		}
	}
}

// denseTextWorld builds the real-text world of TestPrunedParityDense:
// dense stylometric attribute overlap plus a few zero-attribute lurkers.
func denseTextWorld(t *testing.T) (base *similarity.Scorer, auxS *features.Store, anonN int) {
	t.Helper()
	u := synth.NewUniverse(24, 61)
	rng := rand.New(rand.NewSource(62))
	members := synth.Members(u, 24, rng)
	cfg := synth.WebMDLike(24, 63)
	cfg.FixedPosts = 6
	d := synth.Generate(cfg, u, members)
	split := corpus.SplitClosedWorld(d, 0.5, rand.New(rand.NewSource(64)))
	for i := 0; i < 4; i++ {
		id := len(split.Aux.Users)
		tid := len(split.Aux.Threads)
		split.Aux.Users = append(split.Aux.Users, corpus.User{ID: id, Name: fmt.Sprintf("lurker%d", i), TrueIdentity: -1})
		split.Aux.Threads = append(split.Aux.Threads, corpus.Thread{ID: tid, Board: "b", Starter: id})
		split.Aux.Posts = append(split.Aux.Posts, corpus.Post{ID: len(split.Aux.Posts), User: id, Thread: tid, Text: ""})
	}
	anonS, aux := features.BuildPair(split.Anon, split.Aux, 50, features.Options{})
	sc := similarity.NewScorer(anonS.UDA(), aux.UDA(), similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5})
	return sc, aux, anonS.UDA().NumNodes()
}

// TestApproxDegenerateParityDense drives the degenerate-knob exactness
// guarantee over a dense real-text world — the regime the tier exists
// for, where every attribute posting list is long.
func TestApproxDegenerateParityDense(t *testing.T) {
	base, auxS, anonN := denseTextWorld(t)
	full := New(base, auxS.UDA(), auxS, 1)
	st := &index.ApproxStats{}
	ap := New(base, auxS.UDA(), auxS, 3).WithApprox(index.Config{}, st)
	for u := 0; u < anonN; u++ {
		candidatesEqual(t, ap.QueryUserApprox(u, 5, index.ApproxParams{}), full.QueryUser(u, 5),
			"dense approx degenerate parity")
	}
	if s := st.Snapshot(); s.Queries == 0 || s.Fallbacks != 0 {
		t.Fatalf("dense approx queries must run the WAND engine: %+v", s)
	}
}

// TestApproxThetaRecallDense turns the Theta knob on the dense world and
// checks the approximation contract: candidates may be missed, but every
// returned candidate carries its exact score (rescore is exact), results
// stay sorted, the walk skips postings, and recall@5 against the exact
// top-5 stays usable.
func TestApproxThetaRecallDense(t *testing.T) {
	base, auxS, anonN := denseTextWorld(t)
	full := New(base, auxS.UDA(), auxS, 1)
	st := &index.ApproxStats{}
	ap := New(base, auxS.UDA(), auxS, 2).WithApprox(index.Config{}, st)

	params := index.ApproxParams{Theta: 1.2}
	hits, want := 0, 0
	for u := 0; u < anonN; u++ {
		exact := full.QueryUser(u, 5)
		got := ap.QueryUserApprox(u, 5, params)
		exactScore := map[int]float64{}
		for _, c := range full.QueryUser(u, auxS.UDA().NumNodes()) {
			exactScore[c.User] = c.Score
		}
		for i, c := range got {
			if s, ok := exactScore[c.User]; !ok || s != c.Score {
				t.Fatalf("user %d candidate %d: approximate score %v != exact %v", u, i, c.Score, s)
			}
			if i > 0 && !better(got[i-1], c) {
				t.Fatalf("user %d: approximate candidates out of order at %d", u, i)
			}
		}
		inGot := map[int]bool{}
		for _, c := range got {
			inGot[c.User] = true
		}
		for _, c := range exact {
			want++
			if inGot[c.User] {
				hits++
			}
		}
	}
	if recall := float64(hits) / float64(want); recall < 0.8 {
		t.Fatalf("recall@5 at Theta 1.2 = %v, below the floor", recall)
	}
	if s := st.Snapshot(); s.PostingsSkipped == 0 {
		t.Fatalf("aggressive Theta skipped no postings: %+v", s)
	}
}

// TestApproxBudget pins the budget semantics: a tiny budget caps the
// exact rescores per shard query, marks the exhaustion, and still returns
// a sorted prefix of exact-scored candidates.
func TestApproxBudget(t *testing.T) {
	g1, g2 := sparseWorld(t, 100, 10, 300, 57)
	base := similarity.NewScorer(g1, g2, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4})
	full := New(base, g2, nil, 1)
	st := &index.ApproxStats{}
	ap := New(base, g2, nil, 1).WithApprox(index.Config{}, st)

	const budget = 3
	exactScore := map[int]float64{}
	for _, c := range full.QueryUser(0, g2.NumNodes()) {
		exactScore[c.User] = c.Score
	}
	got := ap.QueryUserApprox(0, 10, index.ApproxParams{Budget: budget})
	if len(got) > budget {
		t.Fatalf("budget %d query rescored %d candidates", budget, len(got))
	}
	for i, c := range got {
		if exactScore[c.User] != c.Score {
			t.Fatalf("candidate %d: score %v != exact %v", i, c.Score, exactScore[c.User])
		}
		if i > 0 && !better(got[i-1], c) {
			t.Fatalf("budgeted candidates out of order at %d", i)
		}
	}
	s := st.Snapshot()
	if s.Rescored > budget {
		t.Fatalf("rescored %d candidates with budget %d", s.Rescored, budget)
	}
	if s.BudgetExhausted == 0 {
		t.Fatalf("a budget of %d over %d users must exhaust: %+v", budget, g2.NumNodes(), s)
	}
}

// TestApproxUnsafeConfigFallsBack pins the negative-weight guard: a
// configuration without admissible bounds must answer exactly via the
// fallback path.
func TestApproxUnsafeConfigFallsBack(t *testing.T) {
	g1, g2 := sparseWorld(t, 60, 10, 300, 59)
	cfg := similarity.Config{C1: -0.2, C2: 0.6, C3: 0.6, Landmarks: 4}
	base := similarity.NewScorer(g1, g2, cfg)
	full := New(base, g2, nil, 1)
	st := &index.ApproxStats{}
	ap := New(base, g2, nil, 2).WithApprox(index.Config{}, st)
	for u := 0; u < g1.NumNodes(); u++ {
		candidatesEqual(t, ap.QueryUserApprox(u, 5, index.ApproxParams{Theta: 2}), full.QueryUser(u, 5),
			"unsafe config approx parity")
	}
	if s := st.Snapshot(); s.Fallbacks != s.Queries {
		t.Fatalf("unsafe config must always fall back: %+v", s)
	}
}

// TestApproxWithoutTierDegrades pins graceful degradation: approximate
// queries against a world never given the tier answer exactly.
func TestApproxWithoutTierDegrades(t *testing.T) {
	g1, g2 := sparseWorld(t, 50, 8, 250, 67)
	base := similarity.NewScorer(g1, g2, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4})
	w := New(base, g2, nil, 2)
	if w.Approxed() {
		t.Fatal("fresh world must not report Approxed")
	}
	for u := 0; u < 10; u++ {
		candidatesEqual(t, w.QueryUserApprox(u, 5, index.ApproxParams{Theta: 3, Budget: 1}),
			w.QueryUser(u, 5), "tier-less approx degradation")
	}
	if s := w.ApproxStats(); s != (index.ApproxStats{}) {
		t.Fatalf("tier-less world accumulated approx stats: %+v", s)
	}
}

// TestApproxBatchParity pins the batch fan-out at degenerate knobs.
func TestApproxBatchParity(t *testing.T) {
	g1, g2 := sparseWorld(t, 80, 10, 300, 71)
	base := similarity.NewScorer(g1, g2, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4})
	full := New(base, g2, nil, 1)
	ap := New(base, g2, nil, 4).WithApprox(index.Config{}, nil)
	users := make([]int, g1.NumNodes())
	for i := range users {
		users[i] = i
	}
	got := ap.QueryBatchApprox(users, 6, 3, index.ApproxParams{})
	for i, u := range users {
		candidatesEqual(t, got[i], full.QueryUser(u, 6), "approx batch parity")
	}
}

// TestApproxStateCarriesThroughDerivations checks every world derivation
// keeps the tier: re-weighting (WithScorer), adding pruning on top, and
// WithApprox over an already-pruned world reusing its indexes — all
// sharing one stats block.
func TestApproxStateCarriesThroughDerivations(t *testing.T) {
	g1, g2 := sparseWorld(t, 90, 10, 300, 73)
	cfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4}
	base := similarity.NewScorer(g1, g2, cfg)
	st := &index.ApproxStats{}
	ap := New(base, g2, nil, 3).WithApprox(index.Config{}, st)

	re := base.Reweighted(similarity.Config{C1: 0.2, C2: 0.2, C3: 0.6, Landmarks: 4})
	derived := ap.WithScorer(re)
	if !derived.Approxed() {
		t.Fatal("WithScorer dropped the approx tier")
	}
	full := New(re, g2, nil, 1)
	for u := 0; u < g1.NumNodes(); u++ {
		candidatesEqual(t, derived.QueryUserApprox(u, 5, index.ApproxParams{}), full.QueryUser(u, 5),
			"reweighted approx parity")
	}
	if _, got, ok := derived.ApproxState(); !ok || got != st {
		t.Fatal("derived world must share the stats block")
	}

	pruned := ap.WithPruning(index.Config{}, nil)
	if !pruned.Approxed() || !pruned.Pruned() {
		t.Fatal("WithPruning must keep the approx tier")
	}

	// The reverse composition reuses the pruning indexes: same pointers.
	prunedFirst := New(base, g2, nil, 3).WithPruning(index.Config{}, nil)
	both := prunedFirst.WithApprox(index.Config{}, nil)
	for i, sh := range both.Shards() {
		if sh.Index == nil || sh.Index != prunedFirst.Shards()[i].Index {
			t.Fatal("WithApprox over a pruned world must reuse the shard indexes")
		}
	}
}

// TestApproxRandomizedDegenerateParity sweeps randomized world shapes —
// sparse tiny communities, dense heavy overlap, skewed few-attribute
// worlds — through the theta-1/unbounded bit-identity contract, and
// checks the block-max tier actually engaged while preserving it.
func TestApproxRandomizedDegenerateParity(t *testing.T) {
	shapes := []struct {
		name         string
		n, comm, dim int
	}{
		{"sparse", 40, 4, 150},
		{"dense", 150, 25, 500},
		{"skewed", 120, 3, 80},
	}
	for si, shape := range shapes {
		for seed := int64(0); seed < 3; seed++ {
			g1, g2 := sparseWorld(t, shape.n, shape.comm, shape.dim, 83+int64(si)*10+seed)
			base := similarity.NewScorer(g1, g2, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4})
			full := New(base, g2, nil, 1)
			st := &index.ApproxStats{}
			ap := New(base, g2, nil, 2).WithApprox(index.Config{}, st)
			for u := 0; u < g1.NumNodes(); u++ {
				candidatesEqual(t, ap.QueryUserApprox(u, 7, index.ApproxParams{}), full.QueryUser(u, 7),
					shape.name+" randomized degenerate parity")
			}
			if s := st.Snapshot(); s.BlocksChecked == 0 {
				t.Fatalf("%s seed %d: block-max tier never engaged: %+v", shape.name, seed, s)
			}
		}
	}
}

// TestApproxBudgetDeterministic pins the bound-ordered budget pool's
// determinism and its exactness guarantee: repeated runs return identical
// candidates, and a budget covering the whole population changes nothing
// — the pool holds every survivor, the final rescore is exact, and no
// exhaustion is flagged.
func TestApproxBudgetDeterministic(t *testing.T) {
	g1, g2 := sparseWorld(t, 90, 9, 300, 97)
	base := similarity.NewScorer(g1, g2, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4})
	full := New(base, g2, nil, 1)
	st := &index.ApproxStats{}
	ap := New(base, g2, nil, 2).WithApprox(index.Config{}, st)

	for _, budget := range []int{1, 5, 20} {
		p := index.ApproxParams{Theta: 1.3, Budget: budget}
		first := ap.QueryUserApprox(3, 10, p)
		for rep := 0; rep < 5; rep++ {
			candidatesEqual(t, ap.QueryUserApprox(3, 10, p), first, "budget determinism")
		}
	}

	ample := index.ApproxParams{Budget: g2.NumNodes() + 1}
	pre := st.Snapshot().BudgetExhausted
	for u := 0; u < g1.NumNodes(); u++ {
		candidatesEqual(t, ap.QueryUserApprox(u, 8, ample), full.QueryUser(u, 8), "ample budget parity")
	}
	if s := st.Snapshot(); s.BudgetExhausted != pre {
		t.Fatalf("budget covering the population must not exhaust: %+v", s)
	}
}

// TestApproxDegenerateK mirrors the exact TopK clamps.
func TestApproxDegenerateK(t *testing.T) {
	g1, g2 := sparseWorld(t, 30, 6, 200, 79)
	base := similarity.NewScorer(g1, g2, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 3})
	ap := New(base, g2, nil, 2).WithApprox(index.Config{}, nil)
	full := New(base, g2, nil, 1)
	if got := ap.QueryUserApprox(0, g2.NumNodes()+50, index.ApproxParams{}); len(got) != g2.NumNodes() {
		t.Fatalf("k beyond population returned %d candidates, want %d", len(got), g2.NumNodes())
	}
	candidatesEqual(t, ap.QueryUserApprox(0, g2.NumNodes()+50, index.ApproxParams{}),
		full.QueryUser(0, g2.NumNodes()+50), "k clamp approx parity")
}
