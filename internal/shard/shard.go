// Package shard partitions the auxiliary side of a prepared De-Health
// world into contiguous shards and serves partition-parallel top-K scoring
// over them — the architecture that keeps the O(|aux|) single-row query
// hot path scaling with cores as the auxiliary population grows toward the
// millions-of-users regime.
//
// A World cuts the global auxiliary id space [0, |aux|) into n contiguous
// ranges. Each Shard owns the range's features.Store view (rows indexing
// into the one shared flat feature matrix — nothing is copied), its
// induced UDA subgraph, and a similarity.Scorer window whose aux-side
// caches are contiguous slice views of the base scorer's globally computed
// arrays. Because every shard scores against global values (global
// landmarks, global degrees), the union of per-shard bounded top-K heaps
// merged under the global selection order (score descending, global id
// ascending) is bit-identical to the unsharded single-row path; the merge
// is exact because any global top-K candidate is necessarily inside its
// own shard's top-K.
//
// Mutation discipline: shards are immutable after partitioning. The
// anonymized side grows through the base scorer family's shared caches
// (similarity.SyncAnon), so the serving layer's single-writer flush
// discipline carries over unchanged — a World adds readers, never writers.
package shard

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dehealth/internal/features"
	"dehealth/internal/graph"
	"dehealth/internal/index"
	"dehealth/internal/similarity"
)

// Candidate pairs a global auxiliary user id with its similarity score.
type Candidate struct {
	User  int
	Score float64
}

// better reports whether a ranks before b under the global selection
// order: higher score first, ties to the smaller global id.
func better(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.User < b.User
}

// worse is the heap order of the bounded top-K heap (worst candidate at
// the root): the exact inverse of better.
func worse(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.User > b.User
}

// Shard is one partition of the auxiliary world: the contiguous global id
// range [Lo, Hi), the feature-store row-range view and induced UDA
// subgraph backing it, and a scorer window whose aux-side caches cover
// exactly this range.
type Shard struct {
	// Lo and Hi bound the shard's global auxiliary id range [Lo, Hi).
	Lo, Hi int
	// View is the shard's window of the auxiliary feature store. Zero when
	// the world was built without a store (legacy pipelines).
	View features.View
	// Sub is the shard's induced UDA subgraph: shard-local topology plus
	// attribute/post-vector views. For a single-shard world it is the full
	// auxiliary UDA itself. Scoring never reads it (parity requires global
	// values, which live in the scorer window); it is the shard's ownership
	// surface for shard-local graph work — per-shard analytics and the
	// planned shard-by-shard landmark refresh (see ROADMAP).
	Sub *graph.UDA
	// Scorer scores anonymized users against the shard's aux window
	// (local index j = global user Lo+j). For a single-shard world it is
	// the base scorer.
	Scorer *similarity.Scorer
	// Index is the shard's attribute inverted index plus degree bands over
	// the same window, backing the candidate-pruned query path (TopKPruned).
	// Nil until the world enables pruning (WithPruning / BuildIndex); the
	// aux side is immutable, so a built index never goes stale.
	Index *index.Index
}

// NumUsers returns the shard's auxiliary population.
func (sh *Shard) NumUsers() int { return sh.Hi - sh.Lo }

// scoreBlock is the row-kernel block size of the shard scan: one
// ScoreRange call fills a stack buffer of this many scores before the
// heap consumes them, so the scorer streams the flat aux-side arrays
// sequentially and the scan performs zero per-row heap allocations.
const scoreBlock = 512

// TopK streams the shard's scores of anonymized user u through a bounded
// worst-first heap — O(shard size) time, O(k) memory — and returns the
// shard's k best candidates with global auxiliary ids, sorted under the
// global selection order. k is clamped to the shard size. The row is
// evaluated by the flat kernel: the query profile is prepared once and
// ScoreRange fills fixed-size blocks the heap drains.
func (sh *Shard) TopK(u, k int) []Candidate {
	n := sh.NumUsers()
	if k > n {
		k = n
	}
	if k <= 0 {
		return []Candidate{}
	}
	var prof similarity.QueryProfile
	sh.Scorer.PrepareQuery(u, &prof)
	var buf [scoreBlock]float64
	h := make(candidateHeap, 0, k)
	for lo := 0; lo < n; lo += scoreBlock {
		hi := lo + scoreBlock
		if hi > n {
			hi = n
		}
		out := buf[:hi-lo]
		sh.Scorer.ScoreRange(&prof, lo, hi, out)
		for i, sc := range out {
			c := Candidate{User: sh.Lo + lo + i, Score: sc}
			if len(h) < k {
				h = append(h, c)
				h.up(len(h) - 1)
			} else if worse(h[0], c) {
				h[0] = c
				h.down(0)
			}
		}
	}
	res := []Candidate(h)
	sortCandidates(res)
	return res
}

// sortCandidates orders candidates under the global selection order.
func sortCandidates(cs []Candidate) {
	sort.Slice(cs, func(a, b int) bool { return better(cs[a], cs[b]) })
}

// World is the shard router: the auxiliary world cut into contiguous
// partitions sharing one flat feature matrix and one family of similarity
// caches. A World is immutable and safe for concurrent queries; growth of
// the anonymized side flows through the underlying scorer family's
// SyncAnon, which the caller serializes against queries exactly as for an
// unsharded scorer.
type World struct {
	shards []*Shard
	// scanTokens bounds the helper goroutines that all concurrent
	// QueryUser calls on this world (and every WithScorer derivative — the
	// channel is shared) may have in flight at once, at GOMAXPROCS-1. A
	// lone query fans out across all cores; when a caller-side pool (the
	// serving flush, QueryBatch) already saturates the CPUs the tokens run
	// dry and queries degrade to inline shard scans instead of stacking
	// goroutines multiplicatively on the scheduler.
	scanTokens chan struct{}
	// prune, when non-nil, routes every query through the candidate-pruned
	// engine under this configuration (see prune.go); pstats is the shared
	// counter block those queries accumulate into.
	prune  *index.Config
	pstats *index.Stats
	// approx, when non-nil, enables the approximate query tier
	// (QueryUserApprox; see approx.go) under this index configuration;
	// astats is its shared counter block. The exact paths are unaffected.
	approx *index.Config
	astats *index.ApproxStats
}

// Bounds returns the n+1 partition offsets that cut total users into n
// contiguous ranges of near-equal size (shard i spans [Bounds[i],
// Bounds[i+1])). n is clamped to [1, total] (with a floor of one shard for
// an empty world), matching features.Store.Partition, so requesting more
// shards than users degrades gracefully instead of minting empty shards.
func Bounds(total, n int) []int {
	if n > total {
		n = total
	}
	if n < 1 {
		n = 1
	}
	b := make([]int, n+1)
	for i := 1; i <= n; i++ {
		b[i] = i * total / n
	}
	return b
}

// New partitions the auxiliary world behind base into n contiguous shards
// (n is clamped as Bounds documents). auxUDA is the full auxiliary UDA the
// base scorer was built over; auxStore, when non-nil, supplies the
// per-shard feature-store views. One shard wraps the base scorer and the
// full UDA directly — the unsharded engine is literally the single-shard
// world, which is what the sharded/unsharded parity tests pin.
func New(base *similarity.Scorer, auxUDA *graph.UDA, auxStore *features.Store, n int) *World {
	total := auxUDA.NumNodes()
	if base.AuxUsers() != total {
		panic(fmt.Sprintf("shard: scorer covers %d aux users, graph has %d", base.AuxUsers(), total))
	}
	bounds := Bounds(total, n)
	m := len(bounds) - 1
	w := &World{shards: make([]*Shard, m), scanTokens: newScanTokens()}
	if m == 1 {
		sh := &Shard{Lo: 0, Hi: total, Sub: auxUDA, Scorer: base}
		if auxStore != nil {
			sh.View = auxStore.Slice(0, total)
		}
		w.shards[0] = sh
		return w
	}
	for i := 0; i < m; i++ {
		lo, hi := bounds[i], bounds[i+1]
		sub := auxUDA.InducedRange(lo, hi)
		sh := &Shard{Lo: lo, Hi: hi, Sub: sub, Scorer: base.Shard(sub, lo, hi)}
		if auxStore != nil {
			sh.View = auxStore.Slice(lo, hi)
		}
		w.shards[i] = sh
	}
	return w
}

// WithScorer re-derives every shard's scorer window from a re-weighted
// base scorer, reusing the partition bounds, store views, induced
// subgraphs and inverted indexes — topology and attribute postings do not
// depend on the similarity configuration, so re-configuring a sharded
// world costs O(shards) slice headers. A pruned world stays pruned and an
// approximate-tier world keeps the tier, both still accumulating into the
// same shared stats.
func (w *World) WithScorer(base *similarity.Scorer) *World {
	out := &World{
		shards:     make([]*Shard, len(w.shards)),
		scanTokens: w.scanTokens,
		prune:      w.prune,
		pstats:     w.pstats,
		approx:     w.approx,
		astats:     w.astats,
	}
	for i, sh := range w.shards {
		ns := &Shard{Lo: sh.Lo, Hi: sh.Hi, View: sh.View, Sub: sh.Sub, Scorer: base, Index: sh.Index}
		if len(w.shards) > 1 {
			ns.Scorer = base.Shard(sh.Sub, sh.Lo, sh.Hi)
		}
		out.shards[i] = ns
	}
	return out
}

// N returns the shard count.
func (w *World) N() int { return len(w.shards) }

// Shards returns the shards in global id order (shared; treat as
// read-only).
func (w *World) Shards() []*Shard { return w.shards }

// AuxUsers returns the total auxiliary population across shards.
func (w *World) AuxUsers() int { return w.shards[len(w.shards)-1].Hi }

// newScanTokens builds the world's helper-goroutine budget: GOMAXPROCS-1
// tokens (a single-core machine gets none and every query scans inline).
func newScanTokens() chan struct{} {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 0 {
		n = 0
	}
	t := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		t <- struct{}{}
	}
	return t
}

// QueryUser computes anonymized user u's global top-k by fanning the
// single row out across shards and merging the per-shard results under the
// global selection order. Helper workers are claimed from the world's
// shared token budget (GOMAXPROCS-1): a standalone query parallelizes
// across all cores, while queries arriving from an already-parallel caller
// find no idle capacity and scan their shards inline — the fan-out adapts
// to load instead of multiplying goroutines. The outcome is bit-identical
// to the single-shard (unsharded) path either way: same candidate set,
// same order, same scores.
func (w *World) QueryUser(u, k int) []Candidate {
	if len(w.shards) == 1 {
		return w.shardTopK(w.shards[0], u, k)
	}
	parts := make([][]Candidate, len(w.shards))
	var next int64
	var wg sync.WaitGroup
	scan := func() {
		for {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= len(w.shards) {
				return
			}
			parts[i] = w.shardTopK(w.shards[i], u, k)
		}
	}
spawn:
	for h := 0; h < len(w.shards)-1; h++ {
		select {
		case <-w.scanTokens:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { w.scanTokens <- struct{}{} }()
				scan()
			}()
		default:
			break spawn // no idle cores; the caller covers the rest
		}
	}
	scan()
	wg.Wait()
	return MergeTopK(parts, k)
}

// queryInline is QueryUser with the shard scan run sequentially on the
// calling goroutine — same merge, same result — used by QueryBatch, where
// across-query parallelism already saturates the pool and per-query
// fan-out would only add scheduling churn.
func (w *World) queryInline(u, k int) []Candidate {
	if len(w.shards) == 1 {
		return w.shardTopK(w.shards[0], u, k)
	}
	parts := make([][]Candidate, len(w.shards))
	for i, sh := range w.shards {
		parts[i] = w.shardTopK(sh, u, k)
	}
	return MergeTopK(parts, k)
}

// MergeTopK merges per-shard top-k lists into the global top-k under the
// global selection order (score descending, id ascending). Exact: every
// global top-k candidate appears in its own shard's top-k, so sorting the
// union and truncating loses nothing. Exported as the single merge-order
// source for out-of-process scatter-gather: the distributed router merges
// shard-server replies through this exact function, which is what makes
// its results bit-identical to the in-process fan-out.
func MergeTopK(parts [][]Candidate, k int) []Candidate {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	all := make([]Candidate, 0, total)
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(a, b int) bool { return better(all[a], all[b]) })
	if k > len(all) {
		k = len(all)
	}
	return all[:k:k]
}

// Route returns the home shard of an account name; see RouteName.
func (w *World) Route(name string) int { return RouteName(name, len(w.shards)) }

// RouteName hashes an (anonymized) account name to a home shard in
// [0, n): a stable FNV-1a hash, independent of process, ingestion order
// and world rebuilds, so re-preparing the same world routes the same
// accounts to the same shards. The assignment feeds per-shard accounting
// (stats) and keeps ingest routing deterministic; the ingested data itself
// lands in the single anonymized store behind the dispatcher's one writer.
func RouteName(name string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return int(h.Sum64() % uint64(n))
}

// candidateHeap is a worst-first binary heap of candidates, the bounded
// top-K accumulator of Shard.TopK.
type candidateHeap []Candidate

func (h candidateHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h candidateHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && worse(h[l], h[small]) {
			small = l
		}
		if r < len(h) && worse(h[r], h[small]) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}
