package shard

import (
	"math/rand"
	"testing"

	"dehealth/internal/corpus"
	"dehealth/internal/features"
	"dehealth/internal/graph"
	"dehealth/internal/similarity"
	"dehealth/internal/synth"
)

// testWorld builds a small closed-world split's stores, aux UDA and base
// scorer — the ingredients a World is partitioned from.
func testWorld(t *testing.T, users, posts int, seed int64) (*features.Store, *graph.UDA, *similarity.Scorer, int) {
	t.Helper()
	u := synth.NewUniverse(users, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	members := synth.Members(u, users, rng)
	cfg := synth.WebMDLike(users, seed+2)
	cfg.FixedPosts = posts
	d := synth.Generate(cfg, u, members)
	split := corpus.SplitClosedWorld(d, 0.5, rand.New(rand.NewSource(seed+3)))
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 50, features.Options{})
	base := similarity.NewScorer(anonS.UDA(), auxS.UDA(), similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5})
	return auxS, auxS.UDA(), base, anonS.UDA().NumNodes()
}

func TestBounds(t *testing.T) {
	for _, tc := range []struct {
		total, n int
		want     []int
	}{
		{10, 2, []int{0, 5, 10}},
		{10, 3, []int{0, 3, 6, 10}},
		{3, 7, []int{0, 1, 2, 3}}, // n > total clamps to total
		{5, 1, []int{0, 5}},
		{5, 0, []int{0, 5}},
		{5, -3, []int{0, 5}},
		{0, 4, []int{0, 0}}, // empty world: one empty shard
	} {
		got := Bounds(tc.total, tc.n)
		if len(got) != len(tc.want) {
			t.Fatalf("Bounds(%d, %d) = %v, want %v", tc.total, tc.n, got, tc.want)
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("Bounds(%d, %d) = %v, want %v", tc.total, tc.n, got, tc.want)
			}
		}
	}
}

// TestShardedQueryParity is the package's core guarantee: for every shard
// count — including 1, non-divisors, |aux| and beyond — QueryUser and
// QueryBatch return bit-identical candidates to the single-shard world.
func TestShardedQueryParity(t *testing.T) {
	auxS, auxUDA, base, anonN := testWorld(t, 26, 6, 11)
	auxN := auxUDA.NumNodes()
	single := New(base, auxUDA, auxS, 1)
	if single.N() != 1 || single.Shards()[0].Scorer != base {
		t.Fatal("single-shard world must wrap the base scorer directly")
	}

	users := make([]int, anonN)
	for i := range users {
		users[i] = i
	}
	for _, n := range []int{2, 3, 5, auxN, auxN + 13} {
		w := New(base, auxUDA, auxS, n)
		wantShards := n
		if wantShards > auxN {
			wantShards = auxN
		}
		if w.N() != wantShards {
			t.Fatalf("New(%d shards) built %d, want %d", n, w.N(), wantShards)
		}
		if w.AuxUsers() != auxN {
			t.Fatalf("world covers %d aux users, want %d", w.AuxUsers(), auxN)
		}
		for _, k := range []int{1, 4, auxN + 5} {
			batch := w.QueryBatch(users, k, 3)
			for u := 0; u < anonN; u++ {
				want := single.QueryUser(u, k)
				got := w.QueryUser(u, k)
				if len(got) != len(want) || len(batch[u]) != len(want) {
					t.Fatalf("shards=%d k=%d user %d: lengths %d/%d, want %d", n, k, u, len(got), len(batch[u]), len(want))
				}
				for i := range want {
					if got[i] != want[i] || batch[u][i] != want[i] {
						t.Fatalf("shards=%d k=%d user %d cand %d: query %+v batch %+v, want %+v",
							n, k, u, i, got[i], batch[u][i], want[i])
					}
				}
			}
		}
		// Shard views and store partition agree on bounds.
		views := auxS.Partition(n)
		for i, sh := range w.Shards() {
			if sh.View.Lo != views[i].Lo || sh.View.Hi != views[i].Hi {
				t.Fatalf("shard %d view [%d,%d) != store partition [%d,%d)",
					i, sh.View.Lo, sh.View.Hi, views[i].Lo, views[i].Hi)
			}
			if sh.Sub.NumNodes() != sh.NumUsers() {
				t.Fatalf("shard %d subgraph has %d nodes, want %d", i, sh.Sub.NumNodes(), sh.NumUsers())
			}
		}
	}
}

// TestMergeTieBreaking pins the stable global tie-break: equal scores
// resolve to the smaller global id even when the winner lives in a later
// shard position of the merge input.
func TestMergeTieBreaking(t *testing.T) {
	parts := [][]Candidate{
		{{User: 7, Score: 1.0}, {User: 9, Score: 0.5}},
		{{User: 2, Score: 1.0}, {User: 3, Score: 0.5}},
		{{User: 11, Score: 2.0}},
	}
	got := MergeTopK(parts, 4)
	want := []Candidate{{11, 2.0}, {2, 1.0}, {7, 1.0}, {3, 0.5}}
	if len(got) != len(want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if trunc := MergeTopK(parts, 99); len(trunc) != 5 {
		t.Fatalf("k beyond union returned %d candidates, want 5", len(trunc))
	}
}

// TestWithScorerReshard re-weights the base scorer and checks the
// re-derived world matches a freshly partitioned one while reusing the
// induced subgraphs and views.
func TestWithScorerReshard(t *testing.T) {
	auxS, auxUDA, base, anonN := testWorld(t, 20, 5, 17)
	w := New(base, auxUDA, auxS, 3)
	rw := base.Reweighted(similarity.Config{C1: 0.3, C2: 0.3, C3: 0.4, Landmarks: 5})
	got := w.WithScorer(rw)
	fresh := New(rw, auxUDA, auxS, 3)
	for i, sh := range got.Shards() {
		if sh.Sub != w.Shards()[i].Sub {
			t.Fatalf("shard %d subgraph rebuilt, want reuse", i)
		}
	}
	for u := 0; u < anonN; u++ {
		a, b := got.QueryUser(u, 5), fresh.QueryUser(u, 5)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("user %d cand %d: %+v != %+v", u, i, a[i], b[i])
			}
		}
	}
}

// TestRouteStability pins the ingest-routing hash: deterministic across
// worlds built independently over the same data, uniform enough to touch
// every shard, and degenerate-safe.
func TestRouteStability(t *testing.T) {
	auxS, auxUDA, base, _ := testWorld(t, 18, 5, 23)
	w1 := New(base, auxUDA, auxS, 4)
	w2 := New(base, auxUDA, auxS, 4) // an independent "restart" of the same world
	names := []string{"jdoe", "anon-1723", "sleepless_in_ohio", "x", ""}
	seen := map[int]bool{}
	for _, name := range names {
		h1, h2 := w1.Route(name), w2.Route(name)
		if h1 != h2 {
			t.Fatalf("Route(%q) unstable across rebuilds: %d vs %d", name, h1, h2)
		}
		if h1 != RouteName(name, 4) {
			t.Fatalf("Route(%q) = %d, want RouteName %d", name, h1, RouteName(name, 4))
		}
		if h1 < 0 || h1 >= 4 {
			t.Fatalf("Route(%q) = %d out of range", name, h1)
		}
		seen[h1] = true
	}
	if len(seen) < 2 {
		t.Error("routing hash sent every probe name to one shard")
	}
	if RouteName("anything", 1) != 0 || RouteName("anything", 0) != 0 {
		t.Error("degenerate shard counts must route to 0")
	}
}

// TestEmptyWorld covers the zero-aux-user degenerate case end to end.
func TestEmptyWorld(t *testing.T) {
	empty := &corpus.Dataset{Name: "none"}
	anon := &corpus.Dataset{
		Name:    "one",
		Users:   []corpus.User{{ID: 0, Name: "a", TrueIdentity: -1}},
		Threads: []corpus.Thread{{ID: 0, Board: "x", Starter: 0}},
		Posts:   []corpus.Post{{ID: 0, User: 0, Thread: 0, Text: "hello out there"}},
	}
	anonS, auxS := features.BuildPair(anon, empty, 10, features.Options{})
	base := similarity.NewScorer(anonS.UDA(), auxS.UDA(), similarity.DefaultConfig())
	w := New(base, auxS.UDA(), auxS, 8)
	if w.N() != 1 || w.AuxUsers() != 0 {
		t.Fatalf("empty world: %d shards over %d users, want 1 over 0", w.N(), w.AuxUsers())
	}
	if got := w.QueryUser(0, 5); len(got) != 0 {
		t.Fatalf("query against empty aux world returned %v", got)
	}
}
