// The batched shard scan. A serving flush hands the world a whole
// micro-batch of queries; scanning them one by one streams each shard's
// flat aux-side caches through memory once per query. TopKBatch instead
// prepares Q query profiles at once (similarity.BatchProfile) and drains Q
// bounded heaps from one blocked walk of the shard — each 512-row block is
// scored against every query while it is hot in cache, and the batch
// amortizes the per-query preparation (dense attribute tables) the batched
// kernel's cheap merge depends on. Results are bit-identical to Q
// independent TopK calls: per query, scores arrive in the same ascending
// row order, so the heap passes through identical states, and the final
// sort is under the same total order. The per-batch scratch (profiles,
// block buffers, heaps) is pooled across calls — and therefore across
// serving flushes — so a steady-state batch query allocates only its
// result slices.

package shard

import (
	"runtime"
	"sync"

	"dehealth/internal/similarity"
)

// maxBatchQ caps how many queries one TopKBatch kernel pass scores
// together. A serving flush's batch (Config.MaxBatch) maps onto kernel
// batches of up to this width; wider batches would grow the per-batch
// scratch (Q dense attribute tables + Q block buffers) past what stays
// cache-resident, past the point where the blocked scan's reuse pays.
const maxBatchQ = 64

// batchScratch is the pooled per-call state of TopKBatch: the prepared
// batch profile, the flat Q × scoreBlock score buffer with its per-query
// row views, and the Q bounded heaps. Pooling it makes steady-state
// batched queries allocation-free up to their result slices.
type batchScratch struct {
	prof  similarity.BatchProfile
	buf   []float64
	out   [][]float64
	heaps []candidateHeap
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// grow sizes the scratch for a Q-query batch, reusing capacity.
func (sc *batchScratch) grow(q, k int) {
	if cap(sc.buf) < q*scoreBlock {
		sc.buf = make([]float64, q*scoreBlock)
	}
	sc.buf = sc.buf[:q*scoreBlock]
	if cap(sc.out) < q {
		sc.out = make([][]float64, q)
	}
	sc.out = sc.out[:q]
	if cap(sc.heaps) < q {
		sc.heaps = make([]candidateHeap, q)
	}
	sc.heaps = sc.heaps[:q]
	for i := range sc.heaps {
		if cap(sc.heaps[i]) < k {
			sc.heaps[i] = make(candidateHeap, 0, k)
		}
		sc.heaps[i] = sc.heaps[i][:0]
	}
}

// TopKBatch is Shard.TopK for a whole batch of anonymized users in one
// blocked scan: the batch profile is prepared once, each scoreBlock-row
// block is scored against every query by the batched kernel while its
// aux-side data is cache-hot, and Q bounded heaps accumulate the per-query
// top-k. Results align with users by index; each entry is bit-identical
// to TopK(users[q], k).
func (sh *Shard) TopKBatch(users []int, k int) [][]Candidate {
	res := make([][]Candidate, len(users))
	if len(users) == 0 {
		return res
	}
	n := sh.NumUsers()
	if k > n {
		k = n
	}
	if k <= 0 {
		for q := range res {
			res[q] = []Candidate{}
		}
		return res
	}
	sc := batchScratchPool.Get().(*batchScratch)
	sc.grow(len(users), k)
	sh.Scorer.PrepareBatch(users, &sc.prof)
	heaps := sc.heaps
	for lo := 0; lo < n; lo += scoreBlock {
		hi := lo + scoreBlock
		if hi > n {
			hi = n
		}
		for q := range sc.out {
			sc.out[q] = sc.buf[q*scoreBlock : q*scoreBlock+(hi-lo)]
		}
		sh.Scorer.ScoreRangeBatch(&sc.prof, lo, hi, sc.out)
		for q := range heaps {
			h := heaps[q]
			for i, score := range sc.out[q] {
				c := Candidate{User: sh.Lo + lo + i, Score: score}
				if len(h) < k {
					h = append(h, c)
					h.up(len(h) - 1)
				} else if worse(h[0], c) {
					h[0] = c
					h.down(0)
				}
			}
			heaps[q] = h
		}
	}
	for q := range heaps {
		out := make([]Candidate, len(heaps[q]))
		copy(out, heaps[q])
		sortCandidates(out)
		res[q] = out
	}
	batchScratchPool.Put(sc)
	return res
}

// queryBatchFanOut answers a whole batch through the batched shard scan:
// users are cut into contiguous chunks of at most maxBatchQ (balanced
// across the worker budget), and each worker walks every shard once per
// chunk with TopKBatch before merging the per-shard lists per user. The
// across-query cache reuse lives inside TopKBatch; workers only add
// across-chunk parallelism, so results are identical at every worker
// count.
func (w *World) queryBatchFanOut(users []int, k, workers int, out [][]Candidate) {
	chunk := (len(users) + workers - 1) / workers
	if chunk > maxBatchQ {
		chunk = maxBatchQ
	}
	if chunk < 1 {
		chunk = 1
	}
	type job struct{ lo, hi int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			parts := make([][]Candidate, len(w.shards))
			all := make([][][]Candidate, len(w.shards))
			for j := range jobs {
				us := users[j.lo:j.hi]
				if len(w.shards) == 1 {
					copy(out[j.lo:j.hi], w.shards[0].TopKBatch(us, k))
					continue
				}
				for si, sh := range w.shards {
					all[si] = sh.TopKBatch(us, k)
				}
				for qi := range us {
					for si := range all {
						parts[si] = all[si][qi]
					}
					out[j.lo+qi] = MergeTopK(parts, k)
				}
			}
		}()
	}
	for lo := 0; lo < len(users); lo += chunk {
		hi := lo + chunk
		if hi > len(users) {
			hi = len(users)
		}
		jobs <- job{lo, hi}
	}
	close(jobs)
	wg.Wait()
}

// queryBatchPerUser answers a batch one query at a time over a worker
// pool — the pruned world's path: TopKPruned gathers per-query candidate
// postings, which the multi-query kernel cannot batch, so pruned worlds
// keep the candidate-pruned engine and its bit-identity guarantee intact.
func (w *World) queryBatchPerUser(users []int, k, workers int, out [][]Candidate) {
	if workers <= 1 {
		for i, u := range users {
			out[i] = w.QueryUser(u, k)
		}
		return
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = w.queryInline(users[i], k)
			}
		}()
	}
	for i := range users {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// QueryBatch answers one QueryUser per entry of users (workers <= 0 uses
// GOMAXPROCS). Results align with users by index and are bit-identical to
// len(users) independent QueryUser calls. On an unpruned world the batch
// routes through the multi-query blocked kernel — each shard is walked
// once per chunk of up to maxBatchQ queries instead of once per query; a
// pruned world falls back to per-query TopKPruned over a worker pool,
// since index-gathered candidate sets are per-query by construction.
func (w *World) QueryBatch(users []int, k, workers int) [][]Candidate {
	out := make([][]Candidate, len(users))
	if len(users) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(users) {
		workers = len(users)
	}
	if w.prune != nil {
		w.queryBatchPerUser(users, k, workers, out)
		return out
	}
	w.queryBatchFanOut(users, k, workers, out)
	return out
}
