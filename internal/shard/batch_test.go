package shard

import (
	"testing"
)

// TestTopKBatchParity pins the batched shard scan's bit-identity contract:
// TopKBatch(users, k) must equal one TopK(u, k) per user — same candidates,
// same scores, same order — across batch widths (including repeats, Q=1,
// and batches wider than the shard), k values, and shard windows.
func TestTopKBatchParity(t *testing.T) {
	auxS, auxUDA, base, anonN := testWorld(t, 24, 6, 17)
	auxN := auxUDA.NumNodes()
	for _, shards := range []int{1, 3} {
		w := New(base, auxUDA, auxS, shards)
		for _, sh := range w.Shards() {
			for _, k := range []int{0, 1, 3, auxN + 5} {
				for _, users := range [][]int{
					{},
					{0},
					{3, 3, 3},
					{1, 0, anonN - 1, 2, 1, 5, 7, 4, 6, 0},
				} {
					got := sh.TopKBatch(users, k)
					if len(got) != len(users) {
						t.Fatalf("TopKBatch returned %d results for %d users", len(got), len(users))
					}
					for qi, u := range users {
						want := sh.TopK(u, k)
						if len(got[qi]) != len(want) {
							t.Fatalf("shards=%d k=%d Q=%d u=%d: batch len %d, TopK len %d",
								shards, k, len(users), u, len(got[qi]), len(want))
						}
						for j := range want {
							if got[qi][j] != want[j] {
								t.Fatalf("shards=%d k=%d u=%d pos %d: batch %+v, TopK %+v",
									shards, k, u, j, got[qi][j], want[j])
							}
						}
					}
				}
			}
		}
	}
}

// TestQueryBatchWorkerCounts checks QueryBatch against QueryUser at worker
// counts that force every chunking shape — sequential, one chunk per
// worker, and more chunks than workers — on multi-shard worlds.
func TestQueryBatchWorkerCounts(t *testing.T) {
	auxS, auxUDA, base, anonN := testWorld(t, 24, 6, 19)
	users := make([]int, 2*anonN+3)
	for i := range users {
		users[i] = i % anonN
	}
	for _, shards := range []int{1, 4} {
		w := New(base, auxUDA, auxS, shards)
		want := make([][]Candidate, len(users))
		for i, u := range users {
			want[i] = w.QueryUser(u, 5)
		}
		for _, workers := range []int{0, 1, 2, 7, len(users) + 9} {
			got := w.QueryBatch(users, 5, workers)
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("shards=%d workers=%d u=%d: batch len %d, want %d",
						shards, workers, users[i], len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("shards=%d workers=%d u=%d pos %d: %+v, want %+v",
							shards, workers, users[i], j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

// TestTopKBatchAllocs pins the pooled scratch: a steady-state TopKBatch
// allocates only its result slices (and the final sorts), independent of
// how many scoreBlock passes the shard scan makes.
func TestTopKBatchAllocs(t *testing.T) {
	auxS, auxUDA, base, anonN := testWorld(t, 24, 6, 23)
	w := New(base, auxUDA, auxS, 1)
	sh := w.Shards()[0]
	const q, k = 8, 5
	users := make([]int, q)
	sh.TopKBatch(users, k) // warm the pool and lazy scorer state
	off := 0
	allocs := testing.AllocsPerRun(50, func() {
		for i := range users {
			users[i] = (off + i) % anonN
		}
		off++
		sh.TopKBatch(users, k)
	})
	// Result slices: 1 outer + q inner + q sorted copies; sortCandidates'
	// sort.Slice adds a bounded per-call overhead. Anything scaling with
	// the scan (per-block buffers, profiles, tables) would blow past this.
	if max := float64(4*q + 4); allocs > max {
		t.Fatalf("TopKBatch allocates %v times per batch, want <= %v", allocs, max)
	}
}
