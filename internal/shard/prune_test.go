package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"dehealth/internal/corpus"
	"dehealth/internal/features"
	"dehealth/internal/graph"
	"dehealth/internal/index"
	"dehealth/internal/similarity"
	"dehealth/internal/synth"
)

// sparseWorld builds matched anonymized/auxiliary UDA graphs whose
// attribute sets are synthetic and sparse (community-pooled; see
// synth.SparseAttrUDA), so attribute-overlap candidate sets are a small
// fraction of the population — the regime the inverted index targets.
func sparseWorld(t *testing.T, n, comm, dim int, seed int64) (g1, g2 *graph.UDA) {
	t.Helper()
	return synth.SparseAttrUDA(n, comm, dim, seed), synth.SparseAttrUDA(n, comm, dim, seed+1000)
}

func candidatesEqual(t *testing.T, got, want []Candidate, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d candidates, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: candidate %d = %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestPrunedParitySparse is the tentpole guarantee on the favorable
// workload: over a sparse-overlap world, the pruned path must return
// bit-identical top-K to the unsharded full scan at every shard count and
// K — while actually skipping work (the stats must show skipped users).
func TestPrunedParitySparse(t *testing.T) {
	g1, g2 := sparseWorld(t, 120, 12, 400, 7)
	base := similarity.NewScorer(g1, g2, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5})
	full := New(base, g2, nil, 1)

	for _, shards := range []int{1, 3, 8} {
		st := &index.Stats{}
		pruned := New(base, g2, nil, shards).WithPruning(index.Config{}, st)
		if !pruned.Pruned() {
			t.Fatal("WithPruning world must report Pruned")
		}
		for _, k := range []int{1, 5, 17} {
			for u := 0; u < g1.NumNodes(); u++ {
				candidatesEqual(t, pruned.QueryUser(u, k), full.QueryUser(u, k),
					"sparse pruned parity")
			}
		}
		s := pruned.PruneStats()
		if s.Queries == 0 {
			t.Fatal("pruned queries not counted")
		}
		if s.Skipped == 0 {
			t.Fatalf("sparse world skipped no users: %+v", s)
		}
	}
}

// TestPrunedParityDense drives the pruned engine over a real text world
// where stylometric attribute overlap is dense (most queries exceed
// MaxCandidateFrac) plus a handful of "lurker" auxiliary accounts whose
// single empty post carries no stylometric attributes. Dense queries no
// longer fall back to the full scan: the candidate set is rescored and
// the zero-overlap lurkers' bands — whose norm ranges prove their NCS and
// closeness vectors are all-zero — are skipped under the tightened band
// bound. Parity with the full scan must hold throughout.
func TestPrunedParityDense(t *testing.T) {
	u := synth.NewUniverse(24, 31)
	rng := rand.New(rand.NewSource(32))
	members := synth.Members(u, 24, rng)
	cfg := synth.WebMDLike(24, 33)
	cfg.FixedPosts = 6
	d := synth.Generate(cfg, u, members)
	split := corpus.SplitClosedWorld(d, 0.5, rand.New(rand.NewSource(34)))
	for i := 0; i < 4; i++ {
		id := len(split.Aux.Users)
		tid := len(split.Aux.Threads)
		split.Aux.Users = append(split.Aux.Users, corpus.User{ID: id, Name: fmt.Sprintf("lurker%d", i), TrueIdentity: -1})
		split.Aux.Threads = append(split.Aux.Threads, corpus.Thread{ID: tid, Board: "b", Starter: id})
		split.Aux.Posts = append(split.Aux.Posts, corpus.Post{ID: len(split.Aux.Posts), User: id, Thread: tid, Text: ""})
	}
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 50, features.Options{})
	base := similarity.NewScorer(anonS.UDA(), auxS.UDA(), similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5})
	anonN := anonS.UDA().NumNodes()

	full := New(base, auxS.UDA(), auxS, 1)
	st := &index.Stats{}
	pruned := New(base, auxS.UDA(), auxS, 3).WithPruning(index.Config{}, st)
	for u := 0; u < anonN; u++ {
		candidatesEqual(t, pruned.QueryUser(u, 5), full.QueryUser(u, 5), "dense pruned parity")
	}
	s := pruned.PruneStats()
	if s.Queries == 0 {
		t.Fatal("pruned queries not counted")
	}
	if s.DenseQueries == 0 {
		t.Fatalf("dense stylometric world should classify queries as dense: %+v", s)
	}
	if s.Fallbacks != 0 {
		t.Fatalf("dense queries must run the banded engine, not fall back: %+v", s)
	}
	if s.Skipped == 0 {
		t.Fatalf("zero-attribute lurkers should be skipped under the norm-tightened band bound: %+v", s)
	}
}

// TestPrunedQueryBatch pins batch parity through the pruned engine.
func TestPrunedQueryBatch(t *testing.T) {
	g1, g2 := sparseWorld(t, 80, 10, 300, 13)
	base := similarity.NewScorer(g1, g2, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4})
	full := New(base, g2, nil, 1)
	pruned := New(base, g2, nil, 4).WithPruning(index.Config{}, nil)
	users := make([]int, g1.NumNodes())
	for i := range users {
		users[i] = i
	}
	got := pruned.QueryBatch(users, 6, 3)
	for i, u := range users {
		candidatesEqual(t, got[i], full.QueryUser(u, 6), "pruned batch parity")
	}
}

// TestPrunedUnsafeConfigFallsBack pins the negative-weight guard end to
// end: a configuration that is not prune-safe must still return exact
// results, via fallback.
func TestPrunedUnsafeConfigFallsBack(t *testing.T) {
	g1, g2 := sparseWorld(t, 60, 10, 300, 17)
	cfg := similarity.Config{C1: -0.2, C2: 0.6, C3: 0.6, Landmarks: 4}
	base := similarity.NewScorer(g1, g2, cfg)
	full := New(base, g2, nil, 1)
	st := &index.Stats{}
	pruned := New(base, g2, nil, 2).WithPruning(index.Config{}, st)
	for u := 0; u < g1.NumNodes(); u++ {
		candidatesEqual(t, pruned.QueryUser(u, 5), full.QueryUser(u, 5), "unsafe config parity")
	}
	s := pruned.PruneStats()
	if s.Fallbacks != s.Queries {
		t.Fatalf("unsafe config must always fall back: %+v", s)
	}
}

// TestWithScorerKeepsPruning re-weights a pruned world and checks the
// derived world still prunes, reuses the indexes, accumulates into the
// same stats, and stays bit-identical to a fresh unpruned world at the
// new weights.
func TestWithScorerKeepsPruning(t *testing.T) {
	g1, g2 := sparseWorld(t, 90, 10, 300, 23)
	cfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 4}
	base := similarity.NewScorer(g1, g2, cfg)
	st := &index.Stats{}
	pruned := New(base, g2, nil, 3).WithPruning(index.Config{}, st)

	re := base.Reweighted(similarity.Config{C1: 0.2, C2: 0.2, C3: 0.6, Landmarks: 4})
	derived := pruned.WithScorer(re)
	if !derived.Pruned() {
		t.Fatal("WithScorer dropped pruning")
	}
	for i, sh := range derived.Shards() {
		if sh.Index == nil || sh.Index != pruned.Shards()[i].Index {
			t.Fatal("WithScorer must reuse the shard indexes")
		}
	}
	full := New(re, g2, nil, 1)
	for u := 0; u < g1.NumNodes(); u++ {
		candidatesEqual(t, derived.QueryUser(u, 5), full.QueryUser(u, 5), "reweighted pruned parity")
	}
	if derived.PruneStats().Queries != pruned.PruneStats().Queries {
		t.Fatal("derived world must share the stats block")
	}
}

// TestPrunedDegenerateK mirrors the unpruned TopK clamps.
func TestPrunedDegenerateK(t *testing.T) {
	g1, g2 := sparseWorld(t, 30, 6, 200, 29)
	base := similarity.NewScorer(g1, g2, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 3})
	pruned := New(base, g2, nil, 2).WithPruning(index.Config{}, nil)
	full := New(base, g2, nil, 1)
	if got := pruned.QueryUser(0, g2.NumNodes()+50); len(got) != g2.NumNodes() {
		t.Fatalf("k beyond population returned %d candidates, want %d", len(got), g2.NumNodes())
	}
	candidatesEqual(t, pruned.QueryUser(0, g2.NumNodes()+50), full.QueryUser(0, g2.NumNodes()+50), "k clamp parity")
}
