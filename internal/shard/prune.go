// Candidate-pruned shard queries. Each shard can own an attribute
// inverted index over its auxiliary window (internal/index); the pruned
// top-K path gathers the query user's attribute postings, exact-rescores
// only those candidates with the unchanged flat scoring kernel
// (ScoreWith under one prepared QueryProfile), and skips every
// zero-overlap user whose degree band's structural score bound
// (similarity.ScoreBoundBand, tightened by the band's NCS/closeness norm
// ranges) provably falls below the current K-th score. Whenever the proof
// does not cover a user — the heap is not yet full, or a band's bound
// reaches the threshold — that user is scanned exactly, so the pruned
// path returns results bit-identical to Shard.TopK at every
// configuration. Dense candidate sets (above MaxCandidateFrac of the
// window) no longer force a full-scan fallback: the candidates are scored
// either way, so the banded remainder costs no more exact scores than the
// fallback did while the tightened bounds can still skip zero-overlap
// bands. Pruning is an opt-in view of a World (WithPruning); the unpruned
// path is untouched.

package shard

import (
	"sync"
	"sync/atomic"

	"dehealth/internal/index"
	"dehealth/internal/similarity"
	"dehealth/internal/stylometry"
)

// scorerSource adapts a shard's scorer window to index.Source (and its
// NormSource extension): the index is built from exactly the frozen
// aux-side values — including the precomputed vector norms — the scoring
// hot loop reads, so postings, bands and norm ranges can never drift from
// scoring.
type scorerSource struct{ s *similarity.Scorer }

func (a scorerSource) NumUsers() int                  { return a.s.AuxUsers() }
func (a scorerSource) Attrs(u int) stylometry.AttrSet { return a.s.AuxAttrs(u) }
func (a scorerSource) Degree(u int) float64           { return a.s.AuxDegree(u) }
func (a scorerSource) WeightedDegree(u int) float64   { return a.s.AuxWeightedDegree(u) }
func (a scorerSource) NCSNorm(u int) float64          { return a.s.AuxNCSNorm(u) }
func (a scorerSource) CloseNorm(u int) float64        { return a.s.AuxCloseNorm(u) }
func (a scorerSource) WclNorm(u int) float64          { return a.s.AuxWclNorm(u) }

// bandStats projects an index band's ranges into the similarity layer's
// bound input.
func bandStats(b *index.Band) similarity.BandStats {
	return similarity.BandStats{
		DegLo: b.DegLo, DegHi: b.DegHi,
		WdegLo: b.WdegLo, WdegHi: b.WdegHi,
		NCSNormLo: b.NCSNormLo, NCSNormHi: b.NCSNormHi,
		CloseNormLo: b.CloseNormLo, CloseNormHi: b.CloseNormHi,
		WclNormLo: b.WclNormLo, WclNormHi: b.WclNormHi,
	}
}

// blockStats projects an id-range block's ranges into the similarity
// layer's bound input — the block-max walk's per-block structural bound
// is the same ScoreBoundBand the band pruning uses, over narrower ranges.
func blockStats(b *index.Block) similarity.BandStats {
	return similarity.BandStats{
		DegLo: b.DegLo, DegHi: b.DegHi,
		WdegLo: b.WdegLo, WdegHi: b.WdegHi,
		NCSNormLo: b.NCSNormLo, NCSNormHi: b.NCSNormHi,
		CloseNormLo: b.CloseNormLo, CloseNormHi: b.CloseNormHi,
		WclNormLo: b.WclNormLo, WclNormHi: b.WclNormHi,
	}
}

// BuildIndex builds the shard's attribute inverted index and degree bands
// over its scorer window. Idempotent in effect: the aux side is immutable,
// so rebuilding yields an equivalent index.
func (sh *Shard) BuildIndex(cfg index.Config) {
	sh.Index = index.Build(scorerSource{sh.Scorer}, cfg)
}

// EnsureBlocks builds the shard index's id-range block-max metadata over
// the scorer window when missing — the restore path for snapshots written
// before format v2, which carry no block sections. No-op when the shard
// has no index or the index already carries blocks. Must be called before
// the world is shared across queries: it mutates the index in place.
func (sh *Shard) EnsureBlocks(blockSize int) {
	if sh.Index != nil && sh.Index.BlockSize() == 0 {
		sh.Index.BuildBlocks(scorerSource{sh.Scorer}, blockSize)
	}
}

// EnsureBlocks applies Shard.EnsureBlocks to every shard.
func (w *World) EnsureBlocks(blockSize int) {
	for _, sh := range w.shards {
		sh.EnsureBlocks(blockSize)
	}
}

// TopKPruned is Shard.TopK through the candidate-pruning engine: same
// candidates, same order, same scores — bit-identical — with the scan
// restricted to attribute-overlap candidates plus the degree bands whose
// structural bound cannot rule them out. st accumulates the pruning
// counters (atomically; pass the world's shared stats).
func (sh *Shard) TopKPruned(u, k int, cfg index.Config, st *index.Stats) []Candidate {
	n := sh.NumUsers()
	if k > n {
		k = n
	}
	if k <= 0 {
		return []Candidate{}
	}
	atomic.AddInt64(&st.Queries, 1)
	x := sh.Index
	if x == nil || !sh.Scorer.PruneSafe() {
		atomic.AddInt64(&st.Fallbacks, 1)
		return sh.TopK(u, k)
	}

	s := x.AcquireScratch()
	defer x.ReleaseScratch(s)
	cands := x.Candidates(sh.Scorer.AnonAttrs(u), s)
	if float64(len(cands)) > cfg.MaxCandidateFrac*float64(n) {
		// Dense overlap: the candidate rescore is most of a full scan, so
		// pruning can only win at the margin — but it can never lose: the
		// banded remainder below exact-scores at most the users a full
		// scan would, and the norm-tightened bounds may still certify
		// skipping whole zero-overlap bands. Label the query and proceed.
		atomic.AddInt64(&st.DenseQueries, 1)
	}
	atomic.AddInt64(&st.Candidates, int64(len(cands)))

	var prof similarity.QueryProfile
	sh.Scorer.PrepareQuery(u, &prof)
	h := make(candidateHeap, 0, k)
	push := func(j int32) {
		c := Candidate{User: sh.Lo + int(j), Score: sh.Scorer.ScoreWith(&prof, int(j))}
		if len(h) < k {
			h = append(h, c)
			h.up(len(h) - 1)
		} else if worse(h[0], c) {
			h[0] = c
			h.down(0)
		}
	}
	for _, j := range cands {
		push(j)
	}

	// Non-candidates have AttrSim exactly 0 (disjoint attribute sets zero
	// both Jaccard terms), so per band a single structural bound covers
	// every unmarked member. Skipping demands a strict inequality against
	// the heap's current K-th score: the heap only improves afterwards, so
	// a user skipped now can never belong to the final top-K. Ties must
	// scan — an equal-scoring smaller id would displace the heap root. A
	// skipped or candidate-free band is never visited, so query cost is
	// O(candidates + uncertified band members), not O(window).
	var scanned, skipped, checked, bskipped int64
	bands := x.Bands()
	for bi := range bands {
		b := &bands[bi]
		nonCand := int64(len(b.IDs) - s.BandCandidates(bi))
		if nonCand == 0 {
			continue
		}
		if len(h) == k {
			checked++
			bound := sh.Scorer.ScoreBoundBand(&prof, bandStats(b))
			if bound < h[0].Score {
				skipped += nonCand
				bskipped++
				continue
			}
		}
		for _, j := range b.IDs {
			if !s.Marked(j) {
				push(j)
				scanned++
			}
		}
	}
	atomic.AddInt64(&st.Scanned, scanned)
	atomic.AddInt64(&st.Skipped, skipped)
	atomic.AddInt64(&st.BandsChecked, checked)
	atomic.AddInt64(&st.BandsSkipped, bskipped)

	out := []Candidate(h)
	sortCandidates(out)
	return out
}

// WithPruning returns a world over the same shards whose queries run
// through the candidate-pruning engine. Each shard's inverted index is
// built (in parallel) over its scorer window unless already present —
// the aux side is immutable, so indexes built once stay current through
// ingestion, which only grows the anonymized side. st, when non-nil, is
// the shared stats the pruned queries accumulate into (pass one struct
// across every pruned world derived from the same prepared world); nil
// allocates a fresh one. Results remain bit-identical to the unpruned
// world: pruning only changes which users are provably not scored.
func (w *World) WithPruning(cfg index.Config, st *index.Stats) *World {
	cfg = cfg.WithDefaults()
	if st == nil {
		st = &index.Stats{}
	}
	out := &World{
		shards:     make([]*Shard, len(w.shards)),
		scanTokens: w.scanTokens,
		prune:      &cfg,
		pstats:     st,
		approx:     w.approx,
		astats:     w.astats,
	}
	var wg sync.WaitGroup
	for i, sh := range w.shards {
		ns := *sh
		out.shards[i] = &ns
		// Reuse an existing index only when the new configuration's
		// build-relevant part matches; a different band count — or an index
		// predating block-max metadata — rebuilds, so re-pruning under a
		// new Config is never partially applied.
		if ns.Index == nil || ns.Index.BuildConfig().Bands != cfg.Bands || ns.Index.BlockSize() == 0 {
			wg.Add(1)
			go func(s *Shard) {
				defer wg.Done()
				s.BuildIndex(cfg)
			}(out.shards[i])
		}
	}
	wg.Wait()
	return out
}

// Pruned reports whether the world's queries run through the
// candidate-pruning engine.
func (w *World) Pruned() bool { return w.prune != nil }

// PruneState returns the world's pruning configuration and shared stats
// block (ok false for an unpruned world). Re-partitioning callers use it
// to re-apply WithPruning so a derived world keeps pruning — and keeps
// accumulating into the same counters.
func (w *World) PruneState() (cfg index.Config, st *index.Stats, ok bool) {
	if w.prune == nil {
		return index.Config{}, nil, false
	}
	return *w.prune, w.pstats, true
}

// PruneStats snapshots the world's cumulative pruning counters (zero for
// an unpruned world).
func (w *World) PruneStats() index.Stats {
	if w.pstats == nil {
		return index.Stats{}
	}
	return w.pstats.Snapshot()
}

// shardTopK routes one shard's slice of a query through the pruned or
// plain engine, whichever the world is configured for.
func (w *World) shardTopK(sh *Shard, u, k int) []Candidate {
	if w.prune != nil {
		return sh.TopKPruned(u, k, *w.prune, w.pstats)
	}
	return sh.TopK(u, k)
}
