package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dehealth/internal/core"
	"dehealth/internal/corpus"
	"dehealth/internal/features"
	"dehealth/internal/similarity"
	"dehealth/internal/synth"
)

// testBackend is a minimal prepared world: a store pair, one pipeline, and
// the read/write discipline the public API applies (the dispatcher already
// serializes ingests against queries; the lock only guards direct test
// access).
type testBackend struct {
	mu   sync.RWMutex
	anon *features.Store
	p    *core.Pipeline
}

func newTestBackend(t *testing.T, users int, seed int64) *testBackend {
	t.Helper()
	u := synth.NewUniverse(users, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	members := synth.Members(u, users, rng)
	cfg := synth.WebMDLike(users, seed+2)
	cfg.FixedPosts = 6
	d := synth.Generate(cfg, u, members)
	split := corpus.SplitClosedWorld(d, 0.5, rand.New(rand.NewSource(seed+3)))
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 50, features.Options{})
	return &testBackend{
		anon: anonS,
		p:    core.NewPipelineFromStore(anonS, auxS, similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}),
	}
}

func (b *testBackend) Ingest(batch []features.UserPosts) ([]int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ids, err := b.anon.Append(batch)
	if err != nil {
		return nil, err
	}
	b.p.SyncAppended()
	return ids, nil
}

func (b *testBackend) QueryUser(u, k int) ([]core.Candidate, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if u < 0 || u >= b.p.G1.NumNodes() {
		return nil, fmt.Errorf("user %d out of range", u)
	}
	return b.p.QueryUser(u, k), nil
}

func (b *testBackend) QueryBatch(users []int, k int) ([][]core.Candidate, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, u := range users {
		if u < 0 || u >= b.p.G1.NumNodes() {
			return nil, fmt.Errorf("user %d out of range", u)
		}
	}
	return b.p.QueryBatch(users, k, 0), nil
}

func (b *testBackend) Sizes() (int, int) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.p.G1.NumNodes(), b.p.G2.NumNodes()
}

func (b *testBackend) ShardSizes() []ShardCount {
	anon, aux := b.Sizes()
	return []ShardCount{{Shard: 0, AuxUsers: aux, AnonUsers: anon}}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestHTTPRoundTrip drives the full wire path: query an existing user,
// ingest a new one (posts with and without thread ids), query the ingested
// user, and read back stats.
func TestHTTPRoundTrip(t *testing.T) {
	b := newTestBackend(t, 16, 61)
	s := New(b, Config{MaxBatch: 4, FlushInterval: time.Millisecond, DefaultK: 5})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	anon0, aux := b.Sizes()

	resp := postJSON(t, ts.URL+"/v1/query", map[string]int{"user": 2, "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	q := decode[queryReplyWire](t, resp)
	if q.User != 2 || len(q.Candidates) != 3 {
		t.Fatalf("query reply %+v, want user 2 with 3 candidates", q)
	}
	want, _ := b.QueryUser(2, 3)
	for i, c := range q.Candidates {
		if c.User != want[i].User || c.Score != want[i].Score {
			t.Fatalf("candidate %d = %+v, want %+v", i, c, want[i])
		}
	}
	for i := 1; i < len(q.Candidates); i++ {
		if q.Candidates[i].Score > q.Candidates[i-1].Score {
			t.Fatal("candidates not sorted by decreasing score")
		}
	}

	thread := 0
	resp = postJSON(t, ts.URL+"/v1/ingest", ingestWire{
		Name: "newly-observed",
		Posts: []ingestPostWire{
			{Thread: &thread, Text: "my physical therapist recommended daily stretching"},
			{Text: "has anyone else had trouble sleeping after surgery?"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	in := decode[ingestReplyWire](t, resp)
	if in.User != anon0 {
		t.Fatalf("ingested user id %d, want %d", in.User, anon0)
	}

	resp = postJSON(t, ts.URL+"/v1/query", map[string]int{"user": in.User})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query of ingested user: status %d", resp.StatusCode)
	}
	q = decode[queryReplyWire](t, resp)
	if len(q.Candidates) != 5 { // DefaultK
		t.Fatalf("ingested user got %d candidates, want 5", len(q.Candidates))
	}

	st, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[Stats](t, st)
	if stats.AnonUsers != anon0+1 || stats.AuxUsers != aux {
		t.Fatalf("stats sizes %+v, want anon %d aux %d", stats, anon0+1, aux)
	}
	if stats.Queries != 2 || stats.Ingests != 1 || stats.Batches == 0 {
		t.Fatalf("stats counters %+v", stats)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hz.StatusCode)
	}
}

// TestHTTPErrors covers the failure surface: malformed bodies, unknown
// users, bad thread references, wrong methods, and a closed server.
func TestHTTPErrors(t *testing.T) {
	b := newTestBackend(t, 10, 71)
	s := New(b, Config{FlushInterval: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed query: status %d, want 400", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/query", map[string]int{"user": 10_000})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown user: status %d, want 400", resp.StatusCode)
	}

	bad := 9999
	resp = postJSON(t, ts.URL+"/v1/ingest", ingestWire{Name: "x", Posts: []ingestPostWire{{Thread: &bad, Text: "hi"}}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad thread: status %d, want 400", resp.StatusCode)
	}

	get, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET query: status %d, want 405", get.StatusCode)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, ts.URL+"/v1/query", map[string]int{"user": 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed server: status %d, want 503", resp.StatusCode)
	}
}

// TestMicroBatching checks both flush triggers: a lone request flushes on
// the deadline despite a huge MaxBatch, and a burst flushes by size into
// far fewer batches than requests.
func TestMicroBatching(t *testing.T) {
	b := newTestBackend(t, 12, 81)
	s := New(b, Config{MaxBatch: 1024, FlushInterval: 5 * time.Millisecond, DefaultK: 3})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/query", map[string]int{"user": 0})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline-flushed query: status %d", resp.StatusCode)
	}

	const burst = 48
	var wg sync.WaitGroup
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/query", "application/json",
				bytes.NewReader([]byte(fmt.Sprintf(`{"user": %d}`, i%12))))
			if err != nil {
				errs[i] = err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("burst query %d: %v", i, err)
		}
	}
	stats := s.Stats()
	if stats.Queries != burst+1 {
		t.Fatalf("queries = %d, want %d", stats.Queries, burst+1)
	}
	if stats.MeanBatchSize <= 1 && stats.Batches >= burst {
		t.Logf("warning: burst did not batch (batches=%d mean=%.1f)", stats.Batches, stats.MeanBatchSize)
	}
}

// TestIngestBatchFailureIsolation forces a valid and an invalid ingest
// into the same micro-batch (MaxBatch 2, long deadline) and checks the
// valid client succeeds while only the bad request is rejected.
func TestIngestBatchFailureIsolation(t *testing.T) {
	b := newTestBackend(t, 12, 91)
	anon0, _ := b.Sizes()
	s := New(b, Config{MaxBatch: 2, FlushInterval: 10 * time.Second})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type reply struct {
		status int
		body   string
	}
	results := make(chan reply, 2)
	send := func(w ingestWire) {
		buf, _ := json.Marshal(w)
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Error(err)
			results <- reply{}
			return
		}
		defer resp.Body.Close()
		var body bytes.Buffer
		_, _ = body.ReadFrom(resp.Body)
		results <- reply{status: resp.StatusCode, body: body.String()}
	}
	bad := 9999
	go send(ingestWire{Name: "good", Posts: []ingestPostWire{{Text: "valid post about recovery"}}})
	// Give the first request time to enter the pending batch; the second
	// fills the batch and triggers the size flush. (If scheduling reorders
	// them, the test still checks one success + one failure.)
	time.Sleep(50 * time.Millisecond)
	go send(ingestWire{Name: "bad", Posts: []ingestPostWire{{Thread: &bad, Text: "x"}}})

	var ok, failed int
	for i := 0; i < 2; i++ {
		r := <-results
		switch r.status {
		case http.StatusOK:
			ok++
		case http.StatusBadRequest:
			failed++
		default:
			t.Fatalf("unexpected status %d (%s)", r.status, r.body)
		}
	}
	if ok != 1 || failed != 1 {
		t.Fatalf("got %d ok / %d failed, want 1 / 1: a bad batch peer must not fail valid ingests", ok, failed)
	}
	if anon1, _ := b.Sizes(); anon1 != anon0+1 {
		t.Fatalf("anon users = %d, want %d (exactly the valid ingest applied)", anon1, anon0+1)
	}
}

// TestServeAfterClose pins the Close/Serve ordering contract: Serve on a
// closed server must close the listener and return ErrClosed instead of
// blocking forever.
func TestServeAfterClose(t *testing.T) {
	b := newTestBackend(t, 10, 95)
	s := New(b, Config{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(l); err != ErrClosed {
		t.Fatalf("Serve after Close = %v, want ErrClosed", err)
	}
	if _, err := l.Accept(); err == nil {
		t.Fatal("listener left open after Serve on closed server")
	}
}

// TestBatchedIngest drives the array form of /v1/ingest: several users in
// one body land as one backend batch with dense consecutive ids, the
// single-object form keeps its reply shape, and the empty array is a
// well-formed no-op.
func TestBatchedIngest(t *testing.T) {
	b := newTestBackend(t, 12, 101)
	anon0, _ := b.Sizes()
	s := New(b, Config{FlushInterval: time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	thread := 0
	resp := postJSON(t, ts.URL+"/v1/ingest", []ingestWire{
		{Name: "batch-a", Posts: []ingestPostWire{{Thread: &thread, Text: "first batched account"}}},
		{Name: "batch-b", Posts: []ingestPostWire{{Text: "second batched account, fresh thread"}}},
		{Name: "batch-c", Posts: []ingestPostWire{{Text: "third batched account"}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batched ingest status %d", resp.StatusCode)
	}
	reply := decode[ingestBatchReplyWire](t, resp)
	if len(reply.Users) != 3 {
		t.Fatalf("batched ingest returned %d ids, want 3", len(reply.Users))
	}
	for i, id := range reply.Users {
		if id != anon0+i {
			t.Fatalf("batched ids %v, want dense from %d", reply.Users, anon0)
		}
	}
	if anon1, _ := b.Sizes(); anon1 != anon0+3 {
		t.Fatalf("anon users = %d, want %d", anon1, anon0+3)
	}

	// The whole batch is one logical ingest request in the counters.
	if st := s.Stats(); st.Ingests != 1 {
		t.Fatalf("stats ingests = %d, want 1", st.Ingests)
	}

	// Single-object compatibility.
	resp = postJSON(t, ts.URL+"/v1/ingest", ingestWire{Name: "solo", Posts: []ingestPostWire{{Text: "single object body"}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single ingest status %d", resp.StatusCode)
	}
	if one := decode[ingestReplyWire](t, resp); one.User != anon0+3 {
		t.Fatalf("single ingest id %d, want %d", one.User, anon0+3)
	}

	// Empty batch: accepted, nothing applied.
	resp = postJSON(t, ts.URL+"/v1/ingest", []ingestWire{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty batch status %d", resp.StatusCode)
	}
	if empty := decode[ingestBatchReplyWire](t, resp); len(empty.Users) != 0 {
		t.Fatalf("empty batch returned ids %v", empty.Users)
	}
	if anon2, _ := b.Sizes(); anon2 != anon0+4 {
		t.Fatalf("anon users = %d, want %d", anon2, anon0+4)
	}

	// A bad entry fails the whole batched body (it is one atomic request).
	bad := 9999
	resp = postJSON(t, ts.URL+"/v1/ingest", []ingestWire{
		{Name: "ok", Posts: []ingestPostWire{{Text: "fine"}}},
		{Name: "broken", Posts: []ingestPostWire{{Thread: &bad, Text: "nope"}}},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch status %d, want 400", resp.StatusCode)
	}
	if anon3, _ := b.Sizes(); anon3 != anon0+4 {
		t.Fatalf("bad batch mutated the world: %d users, want %d", anon3, anon0+4)
	}
}

// TestStatsShards checks /v1/stats carries the per-shard breakdown the
// backend reports.
func TestStatsShards(t *testing.T) {
	b := newTestBackend(t, 14, 111)
	s := New(b, Config{FlushInterval: time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[Stats](t, resp)
	if len(st.Shards) != 1 {
		t.Fatalf("stats shards = %+v, want one entry", st.Shards)
	}
	if st.Shards[0].AuxUsers != st.AuxUsers || st.Shards[0].AnonUsers != st.AnonUsers {
		t.Fatalf("shard breakdown %+v does not match aggregate (%d, %d)", st.Shards[0], st.AnonUsers, st.AuxUsers)
	}
}

// TestCloseDrainsInFlight pins the graceful-drain contract: a query
// sitting in the pending micro-batch when Close arrives is answered (the
// final flush runs inside the drain window) and Close returns nil.
func TestCloseDrainsInFlight(t *testing.T) {
	b := newTestBackend(t, 10, 121)
	// Huge MaxBatch + long deadline: the request can only be flushed by
	// Close's quit path, never by size or timer.
	s := New(b, Config{MaxBatch: 1024, FlushInterval: time.Hour, DrainTimeout: 5 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type outcome struct {
		status int
		err    error
	}
	got := make(chan outcome, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte(`{"user": 1, "k": 3}`)))
		if err != nil {
			got <- outcome{err: err}
			return
		}
		resp.Body.Close()
		got <- outcome{status: resp.StatusCode}
	}()
	// Let the request reach the dispatcher's pending batch.
	time.Sleep(100 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatalf("Close = %v, want nil (drained)", err)
	}
	o := <-got
	if o.err != nil {
		t.Fatalf("in-flight query failed: %v", o.err)
	}
	if o.status != http.StatusOK {
		t.Fatalf("in-flight query status %d, want 200 (drained with a response)", o.status)
	}
}

// stallBackend wraps a backend whose QueryUser blocks until released —
// the pathological flush the drain deadline exists for.
type stallBackend struct {
	*testBackend
	release chan struct{}
}

func (b *stallBackend) QueryUser(u, k int) ([]core.Candidate, error) {
	<-b.release
	return b.testBackend.QueryUser(u, k)
}

func (b *stallBackend) QueryBatch(users []int, k int) ([][]core.Candidate, error) {
	<-b.release
	return b.testBackend.QueryBatch(users, k)
}

// TestCloseDrainTimeout checks Close gives up after DrainTimeout with
// ErrDrainTimeout while the stuck flush still answers its waiter once the
// backend recovers — late, but never dropped.
func TestCloseDrainTimeout(t *testing.T) {
	b := &stallBackend{testBackend: newTestBackend(t, 10, 131), release: make(chan struct{})}
	s := New(b, Config{MaxBatch: 1, FlushInterval: time.Millisecond, DrainTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte(`{"user": 0, "k": 2}`)))
		if err != nil {
			status <- -1
			return
		}
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // let the flush enter the stalled backend

	start := time.Now()
	err := s.Close()
	if !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("Close = %v, want ErrDrainTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close blocked %v despite the drain deadline", elapsed)
	}

	close(b.release) // backend recovers; the background flush completes
	if got := <-status; got != http.StatusOK && got != -1 {
		t.Fatalf("stalled query finished with status %d", got)
	}
}

// TestCloseDrainsServePath repeats the drain guarantee over a real
// listener (Serve, not just Handler): Close must let the handler
// goroutine finish writing the drained response before the connection is
// torn down — http.Server.Shutdown semantics, not Close semantics.
func TestCloseDrainsServePath(t *testing.T) {
	b := newTestBackend(t, 10, 141)
	s := New(b, Config{MaxBatch: 1024, FlushInterval: time.Hour, DrainTimeout: 5 * time.Second})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()

	type outcome struct {
		status int
		err    error
	}
	got := make(chan outcome, 1)
	go func() {
		resp, err := http.Post("http://"+l.Addr().String()+"/v1/query", "application/json",
			bytes.NewReader([]byte(`{"user": 1, "k": 3}`)))
		if err != nil {
			got <- outcome{err: err}
			return
		}
		resp.Body.Close()
		got <- outcome{status: resp.StatusCode}
	}()
	time.Sleep(100 * time.Millisecond) // let the request reach the pending batch
	if err := s.Close(); err != nil {
		t.Fatalf("Close = %v, want nil", err)
	}
	o := <-got
	if o.err != nil {
		t.Fatalf("in-flight query over the live listener failed: %v", o.err)
	}
	if o.status != http.StatusOK {
		t.Fatalf("in-flight query status %d, want 200", o.status)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown", err)
	}
}

// batchSpyBackend counts backend calls so tests can see how a flush was
// routed: whole same-k groups through QueryBatch, per-query fallback
// through QueryUser.
type batchSpyBackend struct {
	*testBackend
	batchCalls  int32
	batchedQs   int32
	singleCalls int32
}

func (b *batchSpyBackend) QueryUser(u, k int) ([]core.Candidate, error) {
	atomic.AddInt32(&b.singleCalls, 1)
	return b.testBackend.QueryUser(u, k)
}

func (b *batchSpyBackend) QueryBatch(users []int, k int) ([][]core.Candidate, error) {
	atomic.AddInt32(&b.batchCalls, 1)
	atomic.AddInt32(&b.batchedQs, int32(len(users)))
	return b.testBackend.QueryBatch(users, k)
}

// TestQueryFlushGroupsByK forces queries with two distinct k values (and
// one omitting k, which resolves to DefaultK) into one micro-batch and
// checks the flush answers them as exactly two QueryBatch groups — no
// per-query backend calls — with every client's reply correct for its own
// k.
func TestQueryFlushGroupsByK(t *testing.T) {
	b := &batchSpyBackend{testBackend: newTestBackend(t, 12, 151)}
	s := New(b, Config{MaxBatch: 6, FlushInterval: 10 * time.Second, DefaultK: 3})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reqs := []struct{ user, k, wantLen int }{
		{0, 2, 2}, {1, 0, 3}, {2, 5, 5}, {3, 2, 2}, {4, 3, 3}, {5, 5, 5},
	}
	var wg sync.WaitGroup
	replies := make([]queryReplyWire, len(reqs))
	errs := make([]error, len(reqs))
	for i, q := range reqs {
		wg.Add(1)
		go func(i int, user, k int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/query", queryWire{User: user, K: k})
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			replies[i] = decode[queryReplyWire](t, resp)
		}(i, q.user, q.k)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	for i, q := range reqs {
		if len(replies[i].Candidates) != q.wantLen {
			t.Fatalf("query %d (k=%d): %d candidates, want %d", i, q.k, len(replies[i].Candidates), q.wantLen)
		}
		want, _ := b.testBackend.QueryUser(q.user, q.wantLen)
		for j, c := range replies[i].Candidates {
			if c.User != want[j].User || c.Score != want[j].Score {
				t.Fatalf("query %d candidate %d: %+v, want %+v", i, j, c, want[j])
			}
		}
	}
	// k∈{2, 3(default), 5} → exactly 3 groups; the fallback path never runs.
	if got := atomic.LoadInt32(&b.batchCalls); got != 3 {
		t.Fatalf("flush made %d QueryBatch calls, want 3 (one per distinct k)", got)
	}
	if got := atomic.LoadInt32(&b.batchedQs); got != int32(len(reqs)) {
		t.Fatalf("QueryBatch saw %d queries total, want %d", got, len(reqs))
	}
	if got := atomic.LoadInt32(&b.singleCalls); got != 0 {
		t.Fatalf("flush fell back to %d QueryUser calls, want 0", got)
	}
}

// TestQueryBatchFailureIsolation forces a bad user into the same flush as
// two valid queries of the same k: the group's QueryBatch fails whole, the
// per-query fallback must reject only the bad request and still answer its
// peers correctly.
func TestQueryBatchFailureIsolation(t *testing.T) {
	b := &batchSpyBackend{testBackend: newTestBackend(t, 12, 161)}
	s := New(b, Config{MaxBatch: 3, FlushInterval: 10 * time.Second})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	users := []int{0, 9999, 1}
	var wg sync.WaitGroup
	statuses := make([]int, len(users))
	for i, u := range users {
		wg.Add(1)
		go func(i, u int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/query", queryWire{User: u, K: 4})
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i, u)
	}
	wg.Wait()
	if statuses[0] != http.StatusOK || statuses[2] != http.StatusOK {
		t.Fatalf("valid batch peers got statuses %v, want 200s", statuses)
	}
	if statuses[1] != http.StatusBadRequest {
		t.Fatalf("bad user got status %d, want 400", statuses[1])
	}
	if got := atomic.LoadInt32(&b.singleCalls); got != 3 {
		t.Fatalf("fallback made %d QueryUser calls, want 3 (the whole failed group)", got)
	}
}

// TestFlushQueryAllocs pins the batched flush's steady-state allocation
// behavior: repeated same-shape flushes must not grow with the auxiliary
// population — the grouping scratch lives on the Server and the kernel
// scratch is pooled, leaving only per-result slices and bookkeeping.
func TestFlushQueryAllocs(t *testing.T) {
	b := newTestBackend(t, 30, 171)
	s := New(b, Config{MaxBatch: 64, FlushInterval: 10 * time.Second, DefaultK: 5})
	defer s.Close()

	const q = 8
	batch := make([]*request, q)
	for i := range batch {
		batch[i] = &request{query: &queryWire{User: i, K: 5}, done: make(chan result, 1)}
	}
	drain := func() {
		for _, r := range batch {
			res := <-r.done
			if res.err != nil {
				t.Fatal(res.err)
			}
		}
	}
	s.flush(batch)
	drain() // warm scorer state, server scratch and the kernel pool
	allocs := testing.AllocsPerRun(50, func() {
		s.flush(batch)
		drain()
	})
	// Per flush: q result sets of k candidates plus heap/sort bookkeeping,
	// independent of |aux|. A regression to per-flush kernel scratch (Q
	// profiles, tables, block buffers) or per-query aux scans would blow
	// far past this.
	if max := float64(8*q + 16); allocs > max {
		t.Fatalf("flush allocates %v times for %d queries, want <= %v", allocs, q, max)
	}
}
