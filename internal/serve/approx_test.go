package serve

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dehealth/internal/core"
)

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// approxBackend wraps testBackend with the optional approximate-tier
// interfaces, counting how many users each path answered so routing is
// observable from the wire.
type approxBackend struct {
	*testBackend
	approxUsers int64 // users answered through the approx methods
}

func (b *approxBackend) QueryUserApprox(u, k int) ([]core.Candidate, error) {
	atomic.AddInt64(&b.approxUsers, 1)
	return b.testBackend.QueryUser(u, k)
}

func (b *approxBackend) QueryBatchApprox(users []int, k int) ([][]core.Candidate, error) {
	atomic.AddInt64(&b.approxUsers, int64(len(users)))
	return b.testBackend.QueryBatch(users, k)
}

func (b *approxBackend) ApproxCounters() (ApproxCounters, bool) {
	return ApproxCounters{Queries: atomic.LoadInt64(&b.approxUsers)}, true
}

// TestQueryApproxRouting pins the wire knob: {"approx": true} requests
// route to the backend's approximate methods, plain requests to the exact
// ones, and a mixed micro-batch splits into per-flag groups.
func TestQueryApproxRouting(t *testing.T) {
	b := &approxBackend{testBackend: newTestBackend(t, 16, 81)}
	s := New(b, Config{MaxBatch: 8, FlushInterval: 2 * time.Millisecond, DefaultK: 5})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type queryResp struct {
		User       int `json:"user"`
		Candidates []struct {
			User  int     `json:"user"`
			Score float64 `json:"score"`
		} `json:"candidates"`
	}
	exact := decode[queryResp](t, postJSON(t, ts.URL+"/v1/query", map[string]any{"user": 1, "k": 4}))
	if atomic.LoadInt64(&b.approxUsers) != 0 {
		t.Fatal("plain query routed to the approx path")
	}
	approx := decode[queryResp](t, postJSON(t, ts.URL+"/v1/query", map[string]any{"user": 1, "k": 4, "approx": true}))
	if got := atomic.LoadInt64(&b.approxUsers); got != 1 {
		t.Fatalf("approx query answered %d users through the approx path, want 1", got)
	}
	// This test backend answers both paths identically, so the wire results
	// must agree too.
	if len(exact.Candidates) != len(approx.Candidates) {
		t.Fatalf("exact/approx candidate counts differ: %d vs %d", len(exact.Candidates), len(approx.Candidates))
	}
	for i := range exact.Candidates {
		if exact.Candidates[i] != approx.Candidates[i] {
			t.Fatalf("candidate %d differs: %+v vs %+v", i, exact.Candidates[i], approx.Candidates[i])
		}
	}

	// The stats block surfaces the backend's counters.
	stats := decode[Stats](t, mustGet(t, ts.URL+"/v1/stats"))
	if stats.Approx == nil || stats.Approx.Queries != 1 {
		t.Fatalf("stats approx block = %+v, want 1 query", stats.Approx)
	}
}

// TestQueryApproxWithoutCapableBackend pins graceful degradation: the
// knob on a backend without the approximate interfaces answers exactly,
// and the stats omit the approx block entirely.
func TestQueryApproxWithoutCapableBackend(t *testing.T) {
	b := newTestBackend(t, 14, 83)
	s := New(b, Config{MaxBatch: 4, FlushInterval: time.Millisecond, DefaultK: 5})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type queryResp struct {
		Candidates []struct {
			User  int     `json:"user"`
			Score float64 `json:"score"`
		} `json:"candidates"`
	}
	got := decode[queryResp](t, postJSON(t, ts.URL+"/v1/query", map[string]any{"user": 0, "k": 3, "approx": true}))
	if len(got.Candidates) != 3 {
		t.Fatalf("approx knob on an exact-only backend returned %d candidates, want 3", len(got.Candidates))
	}
	raw := decode[map[string]any](t, mustGet(t, ts.URL+"/v1/stats"))
	if _, ok := raw["approx"]; ok {
		t.Fatal("exact-only backend stats must omit the approx block")
	}
}
