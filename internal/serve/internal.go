// Shard-server mode: the internal RPC surface a distributed router
// (internal/router) scatter-gathers over. A dehealthd process booted from
// a per-shard snapshot slice serves these endpoints alongside the public
// /v1 API; the router fans a query out to every shard's /internal/query
// and merges the replies under the global selection order.
//
// The contract that keeps the distributed answer bit-identical to the
// in-process fan-out lives here: every candidate id crossing the wire is
// GLOBAL. A slice-booted backend scores local ids [0, Hi-Lo) — the reply
// construction rebases them (+Lo from the backend's SliceInfoer identity)
// at the wire boundary, never mutating backend-owned slices. Scores cross
// as JSON float64, which Go marshals round-trip exactly, so the router
// merges the same bit patterns the shard computed.

package serve

import (
	"encoding/json"
	"net/http"
)

// ShardSlice is a backend's slice identity: shard Shard of Shards,
// serving the global auxiliary id window [Lo, Hi) out of AuxTotal users.
type ShardSlice struct {
	Shard    int `json:"shard"`
	Shards   int `json:"shards"`
	Lo       int `json:"lo"`
	Hi       int `json:"hi"`
	AuxTotal int `json:"aux_total"`
}

// SliceInfoer is the optional Backend extension of slice-booted worlds:
// backends loaded from a per-shard snapshot slice report (identity, true)
// and the server rebases their local candidate ids to global ones in
// /internal/query replies and advertises the identity on /internal/shard.
// Full-world backends simply do not implement it (or return false) and
// present as shard 0 of 1.
type SliceInfoer interface {
	ShardSlice() (ShardSlice, bool)
}

// InternalQuery is the router's per-shard RPC body: one batch of
// anonymized user ids to answer at candidate-set size K (DefaultK when
// omitted), optionally through the approximate tier. The router sends one
// such call per shard per client request, so the batch arrives pre-grouped
// for the backend's multi-query kernel.
type InternalQuery struct {
	Users []int `json:"users"`
	K     int   `json:"k,omitempty"`
	// Approx opts the batch into the approximate retrieval tier, with the
	// same degrade-to-exact semantics as the public query knob.
	Approx bool `json:"approx,omitempty"`
}

// WireCandidate is one scored candidate on the internal wire. User is a
// GLOBAL auxiliary id (already rebased for slice backends); Score crosses
// as float64 text that Go JSON round-trips bit-exactly.
type WireCandidate struct {
	User  int     `json:"user"`
	Score float64 `json:"score"`
}

// InternalQueryReply answers an InternalQuery: the serving shard's
// identity (echoed so the router can detect misconfigured topologies) and
// one global-id candidate list per requested user, aligned by index.
type InternalQueryReply struct {
	Shard   int               `json:"shard"`
	Lo      int               `json:"lo"`
	Results [][]WireCandidate `json:"results"`
}

// ShardInfo is the GET /internal/shard reply: the server's partition
// identity plus its current sizes. The router's health prober validates
// Shard/Shards against its configured topology before admitting a replica
// into rotation, so a replica URL pointing at the wrong shard is quarantined
// instead of silently merging the wrong window.
type ShardInfo struct {
	Shard     int `json:"shard"`
	Shards    int `json:"shards"`
	Lo        int `json:"lo"`
	Hi        int `json:"hi"`
	AuxTotal  int `json:"aux_total"`
	AnonUsers int `json:"anon_users"`
	AuxUsers  int `json:"aux_users"`
}

// slice resolves the backend's shard identity: its advertised slice, or
// the full-world identity (shard 0 of 1 over the whole population).
func (s *Server) slice() ShardSlice {
	if si, ok := s.backend.(SliceInfoer); ok {
		if sl, isSlice := si.ShardSlice(); isSlice {
			return sl
		}
	}
	_, aux := s.backend.Sizes()
	return ShardSlice{Shard: 0, Shards: 1, Lo: 0, Hi: aux, AuxTotal: aux}
}

func (s *Server) handleInternalShard(w http.ResponseWriter, r *http.Request) {
	sl := s.slice()
	anon, aux := s.backend.Sizes()
	writeJSON(w, http.StatusOK, ShardInfo{
		Shard: sl.Shard, Shards: sl.Shards, Lo: sl.Lo, Hi: sl.Hi, AuxTotal: sl.AuxTotal,
		AnonUsers: anon, AuxUsers: aux,
	})
}

// handleInternalQuery answers one shard batch through the dispatcher (the
// micro-batch channel stays the backend's single entry point, so internal
// traffic obeys the same single-writer flush discipline as public
// traffic), then rebases candidate ids to global at the wire boundary.
func (s *Server) handleInternalQuery(w http.ResponseWriter, r *http.Request) {
	var q InternalQuery
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		writeJSON(w, http.StatusBadRequest, errorWire{Error: "invalid internal query body: " + err.Error()})
		return
	}
	res, err := s.submit(&request{bquery: &q, done: make(chan result, 1)}, r.Context().Done())
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorWire{Error: err.Error()})
		return
	}
	if res.err != nil {
		writeJSON(w, http.StatusBadRequest, errorWire{Error: res.err.Error()})
		return
	}
	sl := s.slice()
	reply := InternalQueryReply{Shard: sl.Shard, Lo: sl.Lo, Results: make([][]WireCandidate, len(res.batch))}
	for i, cs := range res.batch {
		out := make([]WireCandidate, len(cs))
		for j, c := range cs {
			out[j] = WireCandidate{User: c.User + sl.Lo, Score: c.Score}
		}
		reply.Results[i] = out
	}
	writeJSON(w, http.StatusOK, reply)
}
