// Package serve is the online query layer of the De-Health reproduction:
// an HTTP service that owns a prepared (anonymized, auxiliary) world,
// answers single-user de-anonymization queries and ingests newly observed
// anonymous accounts as they appear — the continuous-tracking threat model
// behind the paper, rather than the offline batch experiments.
//
// Concurrency is organized around a micro-batching channel: every request
// (query or ingest) is enqueued to a single dispatcher goroutine that
// flushes when the pending batch reaches Config.MaxBatch or when
// Config.FlushInterval elapses, whichever comes first. Within a flush,
// ingests are applied first — serially, in arrival order, as one backend
// call — and then the flush's queries are handed to the backend whole:
// grouped by effective k, each group is one Backend.QueryBatch call, which
// lets the backend drive its multi-query blocked scoring kernel (every aux
// block scored against the whole group while cache-hot) instead of one
// scan per query. Config.MaxBatch therefore bounds the kernel's batch
// width Q. The dispatcher is the only writer the backend ever sees, and
// reads never overlap mutation, so the whole service is race-free without
// locks on the scoring hot path. A sharded backend changes none of this:
// per-shard state is immutable after partitioning and queries fan out
// inside the backend's QueryBatch, so the single-writer flush discipline
// survives sharding; /v1/stats additionally reports the per-shard
// breakdown.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dehealth/internal/core"
	"dehealth/internal/corpus"
	"dehealth/internal/features"
)

// corpusUser builds the user record of an ingested anonymous account: no
// ground-truth identity, just the observed display name.
func corpusUser(name string) corpus.User {
	return corpus.User{Name: name, TrueIdentity: -1}
}

// ShardCount is one shard's slice of the world in /v1/stats: the
// auxiliary partition it scores and the anonymized accounts whose stable
// name hash routes them to it.
type ShardCount struct {
	Shard     int `json:"shard"`
	AuxUsers  int `json:"aux_users"`
	AnonUsers int `json:"anon_users"`
}

// PruneCounters is the candidate-pruning block of /v1/stats: cumulative
// per-shard-query counters describing how much of the auxiliary
// population the attribute inverted index let queries skip. Pruning never
// changes results — only the amount of scanning.
type PruneCounters struct {
	Queries      int64 `json:"queries"`
	Fallbacks    int64 `json:"fallbacks"`
	DenseQueries int64 `json:"dense_queries"`
	Candidates   int64 `json:"candidates"`
	Scanned      int64 `json:"scanned"`
	Skipped      int64 `json:"skipped"`
	BandsChecked int64 `json:"bands_checked"`
	BandsSkipped int64 `json:"bands_skipped"`
}

// PruneStatser is the optional Backend extension for candidate-pruning
// counters: backends that prune report (counters, true); /v1/stats then
// carries a "prune" block. Backends without pruning simply do not
// implement it (or return false).
type PruneStatser interface {
	PruneCounters() (PruneCounters, bool)
}

// ApproxCounters is the approximate-tier block of /v1/stats: cumulative
// per-shard-query counters of the max-score/WAND candidate generation.
// Returned scores are always exact; the counters describe how much
// scanning the posting cursors skipped.
type ApproxCounters struct {
	Queries         int64 `json:"queries"`
	Fallbacks       int64 `json:"fallbacks"`
	CursorsOpened   int64 `json:"cursors_opened"`
	PostingsSkipped int64 `json:"postings_skipped"`
	Rescored        int64 `json:"rescored"`
	BudgetExhausted int64 `json:"budget_exhausted"`
	BlocksChecked   int64 `json:"blocks_checked"`
	BlocksSkipped   int64 `json:"blocks_skipped"`
	CursorsDemoted  int64 `json:"cursors_demoted"`
}

// ApproxStatser is the optional Backend extension for approximate-tier
// counters, mirroring PruneStatser: backends with the tier enabled report
// (counters, true) and /v1/stats carries an "approx" block.
type ApproxStatser interface {
	ApproxCounters() (ApproxCounters, bool)
}

// ApproxQueryer is the optional Backend extension behind the per-request
// "approx" query knob: requests flagged approximate are answered through
// these methods (grouped per flush exactly like the exact path). A
// backend without the extension answers such requests exactly — the knob
// is an opt-in accelerator, never a correctness switch.
type ApproxQueryer interface {
	QueryUserApprox(u, k int) ([]core.Candidate, error)
	QueryBatchApprox(users []int, k int) ([][]core.Candidate, error)
}

// Backend is the prepared world a Server queries and grows. Implementations
// need no internal locking against the Server: all calls arrive from the
// dispatcher's flush, ingestion strictly before queries. When the backend
// shards its auxiliary side, queries fan out inside QueryUser; the
// dispatcher stays the world's only writer either way, so the lock-free
// flush discipline survives sharding unchanged.
type Backend interface {
	// Ingest appends newly observed anonymous users and returns their new
	// user indices, aligned with the batch.
	Ingest(batch []features.UserPosts) ([]int, error)
	// QueryUser returns the top-k auxiliary candidates of anonymized user u.
	QueryUser(u, k int) ([]core.Candidate, error)
	// QueryBatch answers one QueryUser per entry of users, bit-identically,
	// with results aligned by index. The flush hands it a whole same-k group
	// of the micro-batch at once so the backend can score all of them per
	// pass over its auxiliary data (the multi-query blocked kernel). An
	// error fails the whole group; the flush then re-runs the group's
	// queries individually through QueryUser so each waiter gets an answer
	// (or an error) about its own request.
	QueryBatch(users []int, k int) ([][]core.Candidate, error)
	// Sizes reports the current aggregate world sizes (for /v1/stats).
	Sizes() (anonUsers, auxUsers int)
	// ShardSizes reports the per-shard breakdown (a single element for
	// unsharded worlds); the aggregate of the entries matches Sizes.
	ShardSizes() []ShardCount
}

// Config tunes the service.
type Config struct {
	// Workers bounds the worker pool of the per-query fallback path taken
	// when a batched query group fails (<= 0 uses GOMAXPROCS). The batched
	// path itself delegates fan-out to Backend.QueryBatch.
	Workers int
	// MaxBatch flushes the pending micro-batch at this size (default 32).
	MaxBatch int
	// FlushInterval flushes a non-empty micro-batch after this deadline
	// (default 2ms).
	FlushInterval time.Duration
	// DefaultK is the candidate-set size of queries that omit k (default 10).
	DefaultK int
	// DrainTimeout bounds how long Close waits for the dispatcher to
	// finish the pending micro-batch (default 5s). Within the deadline
	// every in-flight waiter gets its response; past it Close returns
	// ErrDrainTimeout while the flush finishes in the background, and
	// late-arriving requests get ErrClosed either way.
	DrainTimeout time.Duration
	// Snapshot, when set, enables the POST /v1/snapshot admin endpoint:
	// the callback persists the backend's world and reports where and how
	// big. The callback must be safe against concurrent queries and
	// ingestion (the dehealth backend takes the world's read lock, so a
	// snapshot waits out any in-flight ingest batch and vice versa). When
	// nil, the endpoint answers 501 Not Implemented.
	Snapshot func() (SnapshotInfo, error)
}

// SnapshotInfo is the POST /v1/snapshot reply: where the snapshot was
// written, its size, and how long the write took.
type SnapshotInfo struct {
	Path   string `json:"path"`
	Bytes  int64  `json:"bytes"`
	Millis int64  `json:"millis"`
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 10
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// ErrClosed is returned to requests that arrive after Close.
var ErrClosed = errors.New("serve: server closed")

// ErrDrainTimeout is returned by Close when the pending batch did not
// finish flushing within Config.DrainTimeout. The flush keeps running in
// the background so its waiters still get answers; the error only tells
// the closer that shutdown did not observe a quiesced dispatcher.
var ErrDrainTimeout = errors.New("serve: drain deadline exceeded")

// Stats is the /v1/stats payload: aggregate sizes and counters plus the
// per-shard breakdown of the world.
type Stats struct {
	AnonUsers int          `json:"anon_users"`
	AuxUsers  int          `json:"aux_users"`
	Shards    []ShardCount `json:"shards"`
	// Prune carries the candidate-pruning counters when the backend
	// prunes (see PruneStatser); omitted otherwise.
	Prune *PruneCounters `json:"prune,omitempty"`
	// Approx carries the approximate-tier counters when the backend has
	// the tier enabled (see ApproxStatser); omitted otherwise.
	Approx        *ApproxCounters `json:"approx,omitempty"`
	Queries       int64           `json:"queries"`
	Ingests       int64           `json:"ingests"`
	Batches       int64           `json:"batches"`
	MeanBatchSize float64         `json:"mean_batch_size"`
	UptimeSeconds float64         `json:"uptime_seconds"`
}

// Server is the running query service. Create with New, expose with
// Handler / Serve / ListenAndServe, stop with Close.
type Server struct {
	backend Backend
	cfg     Config

	reqs chan *request
	quit chan struct{}
	wg   sync.WaitGroup

	closeOnce sync.Once
	start     time.Time

	queries int64
	ingests int64
	batches int64
	batched int64

	// Flush-local grouping scratch, touched only by the dispatcher
	// goroutine: the same-k request groups and their user-id vectors are
	// rebuilt into these slices every flush, so steady-state flushes reuse
	// one allocation's capacity instead of growing fresh slices per batch
	// (the backend's kernel scratch is pooled the same way one layer down).
	grpReqs  []*request
	grpUsers []int

	mu     sync.Mutex
	closed bool
	http   *http.Server
}

type request struct {
	// Exactly one of query / ingest / bquery is set.
	query  *queryWire
	ingest []features.UserPosts // one client's ingest batch from /v1/ingest
	bquery *InternalQuery       // one router-side shard batch from /internal/query
	done   chan result          // buffered(1): flush never blocks on it
}

type result struct {
	candidates []core.Candidate
	user       int
	users      []int              // new ids of an ingest request, aligned with its batch
	batch      [][]core.Candidate // per-user answers of a bquery, aligned with it
	err        error
}

// New builds a Server over the backend and starts its dispatcher.
func New(b Backend, cfg Config) *Server {
	s := &Server{
		backend: b,
		cfg:     cfg.withDefaults(),
		reqs:    make(chan *request),
		quit:    make(chan struct{}),
		start:   time.Now(),
	}
	s.wg.Add(1)
	go s.dispatch()
	return s
}

// dispatch is the single consumer of the request channel: it accumulates a
// micro-batch and flushes on size or deadline.
func (s *Server) dispatch() {
	defer s.wg.Done()
	var batch []*request
	timer := time.NewTimer(s.cfg.FlushInterval)
	if !timer.Stop() {
		<-timer.C
	}
	flush := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		s.flush(batch)
		batch = nil
	}
	for {
		select {
		case r := <-s.reqs:
			if len(batch) == 0 {
				timer.Reset(s.cfg.FlushInterval)
			}
			batch = append(batch, r)
			if len(batch) >= s.cfg.MaxBatch {
				flush()
			}
		case <-timer.C:
			s.flush(batch)
			batch = nil
		case <-s.quit:
			flush()
			return
		}
	}
}

// flush applies one micro-batch: all ingests first (one backend call, in
// arrival order), then the queries over the worker pool.
func (s *Server) flush(batch []*request) {
	if len(batch) == 0 {
		return
	}
	atomic.AddInt64(&s.batches, 1)
	atomic.AddInt64(&s.batched, int64(len(batch)))

	var ingests []*request
	var queries []*request
	var bqueries []*request
	var users []features.UserPosts
	for _, r := range batch {
		switch {
		case r.ingest != nil:
			ingests = append(ingests, r)
			users = append(users, r.ingest...)
		case r.bquery != nil:
			bqueries = append(bqueries, r)
		default:
			queries = append(queries, r)
		}
	}
	if len(ingests) > 0 {
		ids, err := s.backend.Ingest(users)
		if err == nil {
			at := 0
			for _, r := range ingests {
				mine := ids[at : at+len(r.ingest)]
				r.done <- result{user: firstID(mine), users: mine}
				at += len(r.ingest)
			}
		} else {
			// The combined batch was rejected (stores validate before any
			// mutation). Re-apply each request on its own so one client's
			// bad payload cannot fail its batch peers, and each waiter gets
			// an error about its own request.
			for _, r := range ingests {
				ids, err := s.backend.Ingest(r.ingest)
				if err != nil {
					r.done <- result{err: err}
				} else {
					r.done <- result{user: firstID(ids), users: ids}
				}
			}
		}
		atomic.AddInt64(&s.ingests, int64(len(ingests)))
	}
	// Internal shard batches: each already arrives grouped (the router
	// builds one per shard call), so each is one ready-made kernel group —
	// a single queryGroup call, no regrouping. An error fails the whole
	// call; the router's retry/hedge layer owns recovery.
	for _, r := range bqueries {
		q := r.bquery
		k := q.K
		if k <= 0 {
			k = s.cfg.DefaultK
		}
		cands, err := s.queryGroup(q.Users, k, q.Approx)
		r.done <- result{batch: cands, err: err}
		if err == nil {
			atomic.AddInt64(&s.queries, int64(len(q.Users)))
		}
	}
	if len(queries) == 0 {
		return
	}
	// Batched query path: peel the flush's queries into same-(k, approx)
	// groups (in first-arrival order) and answer each group with one
	// Backend.QueryBatch (or QueryBatchApprox) call, so the backend's
	// multi-query kernel scores the whole group per pass over the
	// auxiliary data. MaxBatch is thus the kernel's batch width. The
	// group/user scratch lives on the Server and is reused across flushes.
	for qs := queries; len(qs) > 0; {
		k := s.effectiveK(qs[0])
		approx := qs[0].query.Approx
		grp, users := s.grpReqs[:0], s.grpUsers[:0]
		rest := qs[:0]
		for _, r := range qs {
			if s.effectiveK(r) == k && r.query.Approx == approx {
				grp = append(grp, r)
				users = append(users, r.query.User)
			} else {
				rest = append(rest, r)
			}
		}
		cands, err := s.queryGroup(users, k, approx)
		if err == nil && len(cands) == len(grp) {
			for i, r := range grp {
				r.done <- result{candidates: cands[i], user: users[i]}
			}
		} else {
			// The combined group was rejected (backends validate the whole
			// batch before scoring). Re-run each query on its own so one
			// client's bad request cannot fail its batch peers, and each
			// waiter gets an error about its own query.
			s.queryFallback(grp)
		}
		s.grpReqs, s.grpUsers = grp[:0], users[:0]
		qs = rest
	}
	atomic.AddInt64(&s.queries, int64(len(queries)))
}

// effectiveK resolves a query's candidate-set size against DefaultK.
func (s *Server) effectiveK(r *request) int {
	if r.query.K > 0 {
		return r.query.K
	}
	return s.cfg.DefaultK
}

// queryGroup answers one same-(k, approx) group: approximate groups go
// through the backend's ApproxQueryer when it has one, and degrade to the
// exact batch path otherwise — the knob accelerates, never errors.
func (s *Server) queryGroup(users []int, k int, approx bool) ([][]core.Candidate, error) {
	if approx {
		if aq, ok := s.backend.(ApproxQueryer); ok {
			return aq.QueryBatchApprox(users, k)
		}
	}
	return s.backend.QueryBatch(users, k)
}

// queryOne answers a single query on the fallback path, honoring its
// approx flag the same way queryGroup does.
func (s *Server) queryOne(r *request) ([]core.Candidate, error) {
	if r.query.Approx {
		if aq, ok := s.backend.(ApproxQueryer); ok {
			return aq.QueryUserApprox(r.query.User, s.effectiveK(r))
		}
	}
	return s.backend.QueryUser(r.query.User, s.effectiveK(r))
}

// queryFallback answers a failed batch group one query at a time over the
// Config.Workers pool, giving every waiter its own per-request verdict.
func (s *Server) queryFallback(queries []*request) {
	workers := s.cfg.Workers
	if workers > len(queries) {
		workers = len(queries)
	}
	var wg sync.WaitGroup
	jobs := make(chan *request)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range jobs {
				cands, err := s.queryOne(r)
				r.done <- result{candidates: cands, user: r.query.User, err: err}
			}
		}()
	}
	for _, r := range queries {
		jobs <- r
	}
	close(jobs)
	wg.Wait()
}

// firstID returns the first id of an ingest reply, or -1 for an empty
// batch (a degenerate but accepted request).
func firstID(ids []int) int {
	if len(ids) == 0 {
		return -1
	}
	return ids[0]
}

// submit enqueues a request and waits for its result or cancellation.
func (s *Server) submit(r *request, cancel <-chan struct{}) (result, error) {
	select {
	case s.reqs <- r:
	case <-s.quit:
		return result{}, ErrClosed
	case <-cancel:
		return result{}, errors.New("serve: request canceled")
	}
	select {
	case res := <-r.done:
		return res, nil
	case <-cancel:
		return result{}, errors.New("serve: request canceled")
	}
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	anon, aux := s.backend.Sizes()
	batches := atomic.LoadInt64(&s.batches)
	mean := 0.0
	if batches > 0 {
		mean = float64(atomic.LoadInt64(&s.batched)) / float64(batches)
	}
	var prune *PruneCounters
	if ps, ok := s.backend.(PruneStatser); ok {
		if c, enabled := ps.PruneCounters(); enabled {
			prune = &c
		}
	}
	var approx *ApproxCounters
	if as, ok := s.backend.(ApproxStatser); ok {
		if c, enabled := as.ApproxCounters(); enabled {
			approx = &c
		}
	}
	return Stats{
		AnonUsers:     anon,
		AuxUsers:      aux,
		Shards:        s.backend.ShardSizes(),
		Prune:         prune,
		Approx:        approx,
		Queries:       atomic.LoadInt64(&s.queries),
		Ingests:       atomic.LoadInt64(&s.ingests),
		Batches:       batches,
		MeanBatchSize: mean,
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
}

// Close stops the dispatcher, draining the pending micro-batch so every
// in-flight waiter gets its response, then shuts the HTTP side down
// gracefully if a listener was started — http.Server.Shutdown, so handler
// goroutines finish writing the responses the drain just produced before
// connections close. The whole shutdown is bounded by Config.DrainTimeout:
// past the deadline Close returns ErrDrainTimeout and force-closes
// whatever is left (a stuck flush keeps running in the background and
// still answers its waiters). Requests arriving after Close get ErrClosed.
// Safe to call more than once.
func (s *Server) Close() error {
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	s.closeOnce.Do(func() {
		close(s.quit)
	})
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	var drainErr error
	select {
	case <-drained:
	case <-timer.C:
		drainErr = ErrDrainTimeout
	}
	s.mu.Lock()
	s.closed = true
	srv := s.http
	s.http = nil
	s.mu.Unlock()
	if srv != nil {
		// Graceful within what remains of the drain budget; force-close
		// past it so a hung client cannot pin shutdown open.
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			_ = srv.Close()
			if drainErr == nil {
				drainErr = ErrDrainTimeout
			}
		}
	}
	return drainErr
}

// wire formats

type queryWire struct {
	User int `json:"user"`
	K    int `json:"k,omitempty"`
	// Approx opts this query into the approximate retrieval tier (see
	// ApproxQueryer); ignored — answered exactly — when the backend does
	// not implement the tier.
	Approx bool `json:"approx,omitempty"`
}

type candidateWire struct {
	User  int     `json:"user"`
	Score float64 `json:"score"`
}

type queryReplyWire struct {
	User       int             `json:"user"`
	Candidates []candidateWire `json:"candidates"`
}

type ingestPostWire struct {
	// Thread is the existing thread replied to; omitted or null means the
	// post starts a new thread.
	Thread *int   `json:"thread"`
	Text   string `json:"text"`
}

type ingestWire struct {
	Name  string           `json:"name"`
	Posts []ingestPostWire `json:"posts"`
}

type ingestReplyWire struct {
	User int `json:"user"`
}

type ingestBatchReplyWire struct {
	Users []int `json:"users"`
}

type errorWire struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/query   {"user": 17, "k": 10}              -> {"user": 17, "candidates": [{"user": 3, "score": 1.87}, ...]}
//	POST /v1/ingest  {"name": "...", "posts": [...]}    -> {"user": 42}
//	POST /v1/ingest  [{"name": ..., "posts": ...}, ...] -> {"users": [42, 43, ...]}
//	POST /v1/snapshot                                   -> SnapshotInfo (501 when Config.Snapshot is nil)
//	GET  /v1/stats                                      -> Stats (aggregate + per-shard counts)
//	GET  /healthz                                       -> ok
//	GET  /internal/shard                                -> ShardInfo (shard identity; see internal.go)
//	POST /internal/query                                -> InternalQueryReply (router scatter-gather RPC)
//
// A batched ingest body applies atomically as one backend call — one
// dataset append, one graph splice, one similarity sync — instead of N
// single-user calls, and its users get dense consecutive ids.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /internal/shard", s.handleInternalShard)
	mux.HandleFunc("POST /internal/query", s.handleInternalQuery)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q queryWire
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		writeJSON(w, http.StatusBadRequest, errorWire{Error: "invalid query body: " + err.Error()})
		return
	}
	res, err := s.submit(&request{query: &q, done: make(chan result, 1)}, r.Context().Done())
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorWire{Error: err.Error()})
		return
	}
	if res.err != nil {
		writeJSON(w, http.StatusBadRequest, errorWire{Error: res.err.Error()})
		return
	}
	reply := queryReplyWire{User: res.user, Candidates: make([]candidateWire, len(res.candidates))}
	for i, c := range res.candidates {
		reply.Candidates[i] = candidateWire{User: c.User, Score: c.Score}
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var raw json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		writeJSON(w, http.StatusBadRequest, errorWire{Error: "invalid ingest body: " + err.Error()})
		return
	}
	// A JSON array is a batched ingest; a single object remains accepted
	// for compatibility and keeps the single-user reply shape.
	trimmed := bytes.TrimLeft(raw, " \t\r\n")
	batched := len(trimmed) > 0 && trimmed[0] == '['

	var ins []ingestWire
	if batched {
		if err := json.Unmarshal(raw, &ins); err != nil {
			writeJSON(w, http.StatusBadRequest, errorWire{Error: "invalid ingest batch: " + err.Error()})
			return
		}
	} else {
		var in ingestWire
		if err := json.Unmarshal(raw, &in); err != nil {
			writeJSON(w, http.StatusBadRequest, errorWire{Error: "invalid ingest body: " + err.Error()})
			return
		}
		ins = []ingestWire{in}
	}
	if len(ins) == 0 {
		writeJSON(w, http.StatusOK, ingestBatchReplyWire{Users: []int{}})
		return
	}

	batch := make([]features.UserPosts, len(ins))
	for bi, in := range ins {
		up := features.UserPosts{User: corpusUser(in.Name), Posts: make([]features.IncomingPost, len(in.Posts))}
		for i, p := range in.Posts {
			t := features.NewThread
			if p.Thread != nil {
				t = *p.Thread
			}
			up.Posts[i] = features.IncomingPost{Thread: t, Text: p.Text}
		}
		batch[bi] = up
	}
	res, err := s.submit(&request{ingest: batch, done: make(chan result, 1)}, r.Context().Done())
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorWire{Error: err.Error()})
		return
	}
	if res.err != nil {
		writeJSON(w, http.StatusBadRequest, errorWire{Error: res.err.Error()})
		return
	}
	if batched {
		writeJSON(w, http.StatusOK, ingestBatchReplyWire{Users: res.users})
		return
	}
	writeJSON(w, http.StatusOK, ingestReplyWire{User: res.user})
}

// handleSnapshot runs the configured snapshot callback. The callback is
// invoked on the request goroutine, not through the dispatcher: world
// locking inside the callback already serializes it against ingestion,
// and routing a potentially long write through the micro-batch channel
// would stall every query behind it.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Snapshot == nil {
		writeJSON(w, http.StatusNotImplemented, errorWire{Error: "snapshotting not configured (start the server with a snapshot path)"})
		return
	}
	info, err := s.cfg.Snapshot()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorWire{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// Serve accepts connections on l until Close. Calling Serve on an
// already-closed server closes l and returns ErrClosed, so a Close racing
// ahead of a `go srv.Serve(l)` cannot leak the listener.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrClosed
	}
	s.http = srv
	s.mu.Unlock()
	err := srv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe binds addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}
