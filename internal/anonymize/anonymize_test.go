package anonymize

import (
	"strings"
	"testing"
	"testing/quick"

	"dehealth/internal/corpus"
	"dehealth/internal/nlp/lexicon"
	"dehealth/internal/textutil"
)

func TestScrubOff(t *testing.T) {
	text := "I definately LOVE this!! :)"
	if Scrub(text, LevelOff) != text {
		t.Error("LevelOff must not modify text")
	}
}

func TestScrubFixesMisspellings(t *testing.T) {
	got := Scrub("i definately beleive you", LevelLight)
	if strings.Contains(got, "definately") || strings.Contains(got, "beleive") {
		t.Errorf("misspellings survived: %q", got)
	}
	if !strings.Contains(got, "definitely") || !strings.Contains(got, "believe") {
		t.Errorf("corrections missing: %q", got)
	}
}

func TestScrubPreservesCapitalizedCorrection(t *testing.T) {
	got := Scrub("Definately so", LevelLight)
	if !strings.HasPrefix(got, "Definitely") {
		t.Errorf("capitalization lost: %q", got)
	}
}

func TestScrubStripsEmoticons(t *testing.T) {
	got := Scrub("feeling better :) today :(", LevelLight)
	if strings.Contains(got, ":)") || strings.Contains(got, ":(") {
		t.Errorf("emoticons survived: %q", got)
	}
}

func TestScrubNormalizesCase(t *testing.T) {
	got := Scrub("i am SEVERELY worried. it hurts.", LevelStandard)
	if strings.Contains(got, "SEVERELY") {
		t.Errorf("all-caps survived: %q", got)
	}
	if !strings.HasPrefix(got, "I am") {
		t.Errorf("sentence start not capitalized: %q", got)
	}
	if strings.Contains(got, " i ") {
		t.Errorf("lowercase pronoun survived: %q", got)
	}
}

func TestScrubNormalizesPunctuation(t *testing.T) {
	got := Scrub("this is terrible!! why me?! ok...", LevelStandard)
	for _, bad := range []string{"!!", "?!", "...", "!"} {
		if strings.Contains(got, bad) {
			t.Errorf("punctuation habit %q survived: %q", bad, got)
		}
	}
}

func TestScrubAggressiveStripsSpecials(t *testing.T) {
	got := Scrub("took ~50mg & felt *terrible* 100% of the time", LevelAggressive)
	for _, r := range textutil.SpecialChars {
		if strings.ContainsRune(got, r) {
			t.Errorf("special char %q survived: %q", r, got)
		}
	}
	for _, d := range "0123456789" {
		if strings.ContainsRune(got, d) {
			t.Errorf("digit %q survived: %q", d, got)
		}
	}
}

func TestScrubDataset(t *testing.T) {
	d := &corpus.Dataset{
		Name: "t",
		Users: []corpus.User{{
			ID: 0, Name: "a", Location: "austin",
			AvatarHash: 42, AvatarKind: corpus.AvatarRealPerson, TrueIdentity: 1,
		}},
		Threads: []corpus.Thread{{ID: 0, Board: "b", Starter: 0}},
		Posts:   []corpus.Post{{ID: 0, User: 0, Thread: 0, Text: "i definately agree!!"}},
	}
	out := ScrubDataset(d, LevelAggressive)
	if err := out.Validate(); err != nil {
		t.Fatalf("scrubbed dataset invalid: %v", err)
	}
	if strings.Contains(out.Posts[0].Text, "definately") {
		t.Error("post not scrubbed")
	}
	if out.Users[0].AvatarHash != 0 || out.Users[0].Location != "" {
		t.Error("aggressive scrub must withhold avatar and location")
	}
	// The original is untouched.
	if d.Posts[0].Text != "i definately agree!!" || d.Users[0].AvatarHash != 42 {
		t.Error("ScrubDataset mutated its input")
	}
}

// Property: scrubbed text never contains a known misspelling token.
func TestScrubKillsAllMisspellingsProperty(t *testing.T) {
	i := 0
	f := func(seed uint8) bool {
		// Build text from a rotating window of misspellings.
		var words []string
		for j := 0; j < 10; j++ {
			words = append(words, lexicon.MisspellingList[(i*10+j)%len(lexicon.MisspellingList)])
		}
		i++
		got := Scrub(strings.Join(words, " "), LevelLight)
		for _, w := range textutil.WordStrings(got) {
			if lexicon.IsMisspelling(strings.ToLower(w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: scrubbing is idempotent at every level.
func TestScrubIdempotentProperty(t *testing.T) {
	texts := []string{
		"i definately LOVE this!! :) 50mg of *metformin*",
		"Hello ALL... my stomache hurts?!",
		"plain text with no habits at all.",
	}
	for _, level := range []Level{LevelLight, LevelStandard, LevelAggressive} {
		for _, text := range texts {
			once := Scrub(text, level)
			twice := Scrub(once, level)
			if once != twice {
				t.Errorf("level %d not idempotent:\n once: %q\ntwice: %q", level, once, twice)
			}
		}
	}
}
