// Package anonymize implements the defensive counterpart the paper leaves
// as an open problem (§VII: "developing proper anonymization techniques for
// large-scale online health data is a challenging open problem"): a
// style-scrubbing anonymizer in the spirit of Anonymouth [36] that rewrites
// posts to suppress the Table I stylometric signal while keeping the
// medical content readable, so the De-Health attack can be evaluated
// against a defended corpus.
package anonymize

import (
	"strings"
	"unicode"

	"dehealth/internal/corpus"
	"dehealth/internal/nlp/lexicon"
)

// Level selects how aggressively posts are rewritten.
type Level int

const (
	// LevelOff leaves posts untouched.
	LevelOff Level = iota
	// LevelLight fixes known misspellings and strips emoticons — the
	// cheap idiosyncrasy features.
	LevelLight
	// LevelStandard additionally normalizes case and punctuation runs,
	// removing the case/punctuation habit features.
	LevelStandard
	// LevelAggressive additionally strips special characters and digits,
	// collapsing the remaining character-class features.
	LevelAggressive
)

// Scrub rewrites a single post at the given level.
func Scrub(text string, level Level) string {
	if level <= LevelOff {
		return text
	}
	text = fixMisspellings(text)
	text = stripEmoticons(text)
	if level >= LevelStandard {
		text = normalizeCase(text)
		text = normalizePunctuation(text)
	}
	if level >= LevelAggressive {
		text = stripSpecials(text)
	}
	return strings.TrimSpace(collapseSpaces(text))
}

// collapseSpaces merges runs of spaces/tabs left behind by the strip passes
// while preserving newlines.
func collapseSpaces(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	pendingSpace := false
	for _, r := range s {
		switch {
		case r == ' ' || r == '\t':
			pendingSpace = true
		case r == '\n':
			pendingSpace = false
			b.WriteRune(r)
		default:
			if pendingSpace && b.Len() > 0 {
				b.WriteRune(' ')
			}
			pendingSpace = false
			b.WriteRune(r)
		}
	}
	return b.String()
}

// ScrubDataset returns a copy of d with every post scrubbed. User metadata
// that §VI exploits (avatars) is also withheld at LevelAggressive.
func ScrubDataset(d *corpus.Dataset, level Level) *corpus.Dataset {
	out := &corpus.Dataset{Name: d.Name + "-scrubbed"}
	out.Users = append([]corpus.User(nil), d.Users...)
	out.Threads = append([]corpus.Thread(nil), d.Threads...)
	out.Posts = make([]corpus.Post, len(d.Posts))
	for i, p := range d.Posts {
		p.Text = Scrub(p.Text, level)
		out.Posts[i] = p
	}
	if level >= LevelAggressive {
		for i := range out.Users {
			out.Users[i].AvatarHash = 0
			out.Users[i].AvatarKind = corpus.AvatarDefault
			out.Users[i].Location = ""
		}
	}
	return out
}

// fixMisspellings replaces every known misspelling with its correction,
// erasing the Table I idiosyncratic features.
func fixMisspellings(text string) string {
	fields := strings.Fields(text)
	for i, f := range fields {
		core, pre, post := trimAffixes(f)
		if right, ok := lexicon.Misspellings[strings.ToLower(core)]; ok {
			if isCapitalized(core) {
				right = capitalize(right)
			}
			fields[i] = pre + right + post
		}
	}
	return strings.Join(fields, " ")
}

// trimAffixes splits leading/trailing punctuation off a token.
func trimAffixes(f string) (core, pre, post string) {
	start := 0
	for start < len(f) && !isWordByte(f[start]) {
		start++
	}
	end := len(f)
	for end > start && !isWordByte(f[end-1]) {
		end--
	}
	return f[start:end], f[:start], f[end:]
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '\''
}

func isCapitalized(w string) bool {
	for _, r := range w {
		return unicode.IsUpper(r)
	}
	return false
}

func capitalize(w string) string {
	if w == "" {
		return w
	}
	return strings.ToUpper(w[:1]) + w[1:]
}

// stripEmoticons removes the common ASCII emoticons.
func stripEmoticons(text string) string {
	for _, e := range []string{":-)", ":-(", ":)", ":(", ":/", ";)", ":D", ";-)"} {
		text = strings.ReplaceAll(text, e, "")
	}
	return text
}

// normalizeCase lowercases everything, then re-capitalizes sentence starts
// and the pronoun "i" — a canonical casing that removes both ALL-CAPS
// emphasis and lowercase-i habits.
func normalizeCase(text string) string {
	text = strings.ToLower(text)
	var b strings.Builder
	b.Grow(len(text))
	capNext := true
	for _, r := range text {
		if capNext && unicode.IsLetter(r) {
			b.WriteRune(unicode.ToUpper(r))
			capNext = false
			continue
		}
		if r == '.' || r == '!' || r == '?' || r == '\n' {
			capNext = true
		}
		b.WriteRune(r)
	}
	out := b.String()
	// Standalone pronoun i.
	fields := strings.Fields(out)
	for i, f := range fields {
		if f == "i" {
			fields[i] = "I"
		} else if strings.HasPrefix(f, "i'") { // i'm, i've, i'd, i'll
			fields[i] = "I" + f[1:]
		}
	}
	return strings.Join(fields, " ")
}

// normalizePunctuation collapses '!', '!!', '...' and '?!' runs to a single
// canonical terminator.
func normalizePunctuation(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	runes := []rune(text)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		if r == '!' || r == '.' || r == '?' {
			// Absorb the run; emit '?' if any question mark, else '.'.
			hasQ := r == '?'
			j := i
			for j+1 < len(runes) && (runes[j+1] == '!' || runes[j+1] == '.' || runes[j+1] == '?') {
				j++
				if runes[j] == '?' {
					hasQ = true
				}
			}
			if hasQ {
				b.WriteRune('?')
			} else {
				b.WriteRune('.')
			}
			i = j
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// stripSpecials removes the Table I special characters and digits.
func stripSpecials(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	for _, r := range text {
		switch {
		case strings.ContainsRune("@#$%^&*+=<>/\\|~`_{}[]", r):
			// drop
		case unicode.IsDigit(r):
			// drop
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
