// Snapshot support: Parts flattens an index into plain arrays for
// serialization and FromParts rebuilds the identical index, so a
// warm-restarted world prunes exactly as the world that saved it — same
// postings, same bands, same bounds — without re-running Build's sort.

package index

import (
	"fmt"
	"math"
)

// Parts is the flattened form of an Index: the posting lists concatenated
// behind an offset table, the per-user band assignment, and the bands'
// member lists and bounds in fixed-width arrays. BandMeta carries ten
// float64 values per band, in field order: DegLo, DegHi, WdegLo, WdegHi,
// NCSNormLo, NCSNormHi, CloseNormLo, CloseNormHi, WclNormLo, WclNormHi.
type Parts struct {
	N                int
	Bands            int     // resolved Config.Bands
	MaxCandidateFrac float64 // resolved Config.MaxCandidateFrac
	PostOff          []int   // len = numAttrs+1; postings[a] = PostIDs[PostOff[a]:PostOff[a+1]]
	PostIDs          []int32
	BandOf           []int32 // len = N
	BandOff          []int   // len = numBands+1; band b's IDs = BandIDs[BandOff[b]:BandOff[b+1]]
	BandMeta         []float64
	BandIDs          []int32
	// BlockSize and BlockMeta carry the id-range block-max metadata:
	// ceil(N/BlockSize) blocks of bandMetaWidth float64 bounds each, in
	// the same field order as BandMeta. BlockSize 0 (a pre-block snapshot)
	// means no block metadata; the loader rebuilds it from the restored
	// scorer window via BuildBlocks.
	BlockSize int
	BlockMeta []float64
}

// bandMetaWidth is the number of bound values per band in Parts.BandMeta.
const bandMetaWidth = 10

// Parts returns the index's flattened state. The int32 arrays are built
// fresh (the flattening concatenates), so the caller may retain them.
func (x *Index) Parts() Parts {
	p := Parts{
		N:                x.n,
		Bands:            x.cfg.Bands,
		MaxCandidateFrac: x.cfg.MaxCandidateFrac,
		PostOff:          make([]int, len(x.postings)+1),
		BandOf:           x.bandOf,
		BandOff:          make([]int, len(x.bands)+1),
		BandMeta:         make([]float64, 0, len(x.bands)*bandMetaWidth),
	}
	for a, ids := range x.postings {
		p.PostIDs = append(p.PostIDs, ids...)
		p.PostOff[a+1] = len(p.PostIDs)
	}
	for b, band := range x.bands {
		p.BandIDs = append(p.BandIDs, band.IDs...)
		p.BandOff[b+1] = len(p.BandIDs)
		p.BandMeta = append(p.BandMeta,
			band.DegLo, band.DegHi, band.WdegLo, band.WdegHi,
			band.NCSNormLo, band.NCSNormHi, band.CloseNormLo, band.CloseNormHi,
			band.WclNormLo, band.WclNormHi)
	}
	p.BlockSize = x.blkSize
	p.BlockMeta = make([]float64, 0, len(x.blocks)*bandMetaWidth)
	for _, blk := range x.blocks {
		p.BlockMeta = append(p.BlockMeta,
			blk.DegLo, blk.DegHi, blk.WdegLo, blk.WdegHi,
			blk.NCSNormLo, blk.NCSNormHi, blk.CloseNormLo, blk.CloseNormHi,
			blk.WclNormLo, blk.WclNormHi)
	}
	if p.BandOf == nil {
		p.BandOf = []int32{}
	}
	return p
}

// FromParts rebuilds an Index from its flattened state. Structure is
// validated (offset shapes, id bounds, band assignment consistency); a
// violation returns an error rather than an index whose queries would
// misbehave. Posting and band member slices are capacity-clamped views of
// the flat arrays — the index is immutable after build, so sharing the
// backing is safe.
func FromParts(p Parts) (*Index, error) {
	if p.N < 0 {
		return nil, fmt.Errorf("index: negative window size %d", p.N)
	}
	numAttrs := len(p.PostOff) - 1
	numBands := len(p.BandOff) - 1
	if numAttrs < 0 || numBands < 0 {
		return nil, fmt.Errorf("index: empty offset tables")
	}
	if len(p.BandOf) != p.N {
		return nil, fmt.Errorf("index: band assignment covers %d users, window has %d", len(p.BandOf), p.N)
	}
	if len(p.BandMeta) != numBands*bandMetaWidth {
		return nil, fmt.Errorf("index: %d band bound values for %d bands", len(p.BandMeta), numBands)
	}
	if p.BlockSize < 0 {
		return nil, fmt.Errorf("index: negative block size %d", p.BlockSize)
	}
	numBlocks := 0
	if p.BlockSize > 0 {
		numBlocks = (p.N + p.BlockSize - 1) / p.BlockSize
	}
	if len(p.BlockMeta) != numBlocks*bandMetaWidth {
		return nil, fmt.Errorf("index: %d block bound values for %d blocks of %d ids", len(p.BlockMeta), numBlocks, p.BlockSize)
	}
	x := &Index{
		n:        p.N,
		cfg:      Config{MaxCandidateFrac: p.MaxCandidateFrac, Bands: p.Bands, BlockSize: p.BlockSize}.WithDefaults(),
		postings: make([][]int32, numAttrs),
		bands:    make([]Band, numBands),
		bandOf:   p.BandOf,
		blkSize:  p.BlockSize,
	}
	if numBlocks > 0 {
		x.blocks = make([]Block, numBlocks)
		for b := 0; b < numBlocks; b++ {
			m := p.BlockMeta[b*bandMetaWidth:]
			for _, v := range m[:bandMetaWidth] {
				if math.IsNaN(v) {
					return nil, fmt.Errorf("index: NaN bound in block %d", b)
				}
			}
			x.blocks[b] = Block{
				DegLo: m[0], DegHi: m[1], WdegLo: m[2], WdegHi: m[3],
				NCSNormLo: m[4], NCSNormHi: m[5],
				CloseNormLo: m[6], CloseNormHi: m[7],
				WclNormLo: m[8], WclNormHi: m[9],
			}
		}
	}
	for a := 0; a < numAttrs; a++ {
		lo, hi := p.PostOff[a], p.PostOff[a+1]
		if lo > hi || lo < 0 || hi > len(p.PostIDs) {
			return nil, fmt.Errorf("index: posting offsets of attribute %d span [%d, %d)", a, lo, hi)
		}
		if lo == hi {
			continue
		}
		ids := p.PostIDs[lo:hi:hi]
		for i, u := range ids {
			if u < 0 || int(u) >= p.N {
				return nil, fmt.Errorf("index: posting id %d outside window of %d", u, p.N)
			}
			if i > 0 && ids[i-1] >= u {
				return nil, fmt.Errorf("index: posting list of attribute %d not strictly ascending", a)
			}
		}
		x.postings[a] = ids
	}
	seen := 0
	for b := 0; b < numBands; b++ {
		lo, hi := p.BandOff[b], p.BandOff[b+1]
		if lo > hi || lo < 0 || hi > len(p.BandIDs) {
			return nil, fmt.Errorf("index: band %d member offsets span [%d, %d)", b, lo, hi)
		}
		ids := p.BandIDs[lo:hi:hi]
		for i, u := range ids {
			if u < 0 || int(u) >= p.N {
				return nil, fmt.Errorf("index: band member id %d outside window of %d", u, p.N)
			}
			if i > 0 && ids[i-1] >= u {
				return nil, fmt.Errorf("index: band %d members not strictly ascending", b)
			}
			if int(p.BandOf[u]) != b {
				return nil, fmt.Errorf("index: user %d listed in band %d but assigned band %d", u, b, p.BandOf[u])
			}
		}
		m := p.BandMeta[b*bandMetaWidth:]
		x.bands[b] = Band{
			IDs:   ids,
			DegLo: m[0], DegHi: m[1], WdegLo: m[2], WdegHi: m[3],
			NCSNormLo: m[4], NCSNormHi: m[5],
			CloseNormLo: m[6], CloseNormHi: m[7],
			WclNormLo: m[8], WclNormHi: m[9],
		}
		seen += len(ids)
	}
	if seen != p.N {
		return nil, fmt.Errorf("index: bands cover %d users, window has %d", seen, p.N)
	}
	for b := 0; b < numBands; b++ {
		m := p.BandMeta[b*bandMetaWidth:]
		for _, v := range m[:bandMetaWidth] {
			if math.IsNaN(v) {
				return nil, fmt.Errorf("index: NaN bound in band %d", b)
			}
		}
	}
	return x, nil
}
