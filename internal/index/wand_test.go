package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// genPostings builds nLists ascending posting lists over ids [0, n), each
// id included in a list with probability p.
func genPostings(rng *rand.Rand, nLists, n int, p float64) [][]int32 {
	lists := make([][]int32, nLists)
	for i := range lists {
		for d := 0; d < n; d++ {
			if rng.Float64() < p {
				lists[i] = append(lists[i], int32(d))
			}
		}
	}
	return lists
}

// boundSums computes, per document, the walk's bound sum: base plus the
// bounds of every list containing the document — the reference the walk's
// skip decisions are checked against.
func boundSums(lists [][]int32, ubs []float64, base float64, n int) []float64 {
	sums := make([]float64, n)
	for d := range sums {
		sums[d] = base
	}
	for i, post := range lists {
		for _, d := range post {
			sums[d] += ubs[i]
		}
	}
	return sums
}

// checkSurvivors verifies a fixed-threshold walk against the brute-force
// survivor set: strictly ascending ids, every document with bound sum
// clearly above theta returned, none clearly below returned, and posting
// conservation (skipped + consumed = total). Documents whose sum lies
// within floating-point noise of theta may land either way — the walk
// accumulates bounds in cursor-sorted order, the reference in list order,
// and addition order shifts the last few ulps.
func checkSurvivors(t *testing.T, got []int32, lists [][]int32, sums []float64, theta float64, total int, skipped int64) {
	t.Helper()
	eps := 1e-9 * math.Max(1, math.Abs(theta))
	member := make([]int, len(sums)) // lists containing each doc
	for _, post := range lists {
		for _, d := range post {
			member[d]++
		}
	}
	returned := make([]bool, len(sums))
	consumed := int64(0)
	for i, d := range got {
		if i > 0 && d <= got[i-1] {
			t.Fatalf("ids not strictly ascending: %d then %d", got[i-1], d)
		}
		if member[d] == 0 {
			t.Fatalf("id %d returned but absent from every posting list", d)
		}
		if sums[d] <= theta-eps {
			t.Fatalf("id %d returned with bound sum %v <= theta %v", d, sums[d], theta)
		}
		returned[d] = true
		consumed += int64(member[d])
	}
	for d := range sums {
		if member[d] > 0 && sums[d] > theta+eps && !returned[d] {
			t.Fatalf("id %d (bound sum %v > theta %v) was skipped", d, sums[d], theta)
		}
	}
	if skipped+consumed != int64(total) {
		t.Fatalf("theta %v: skipped %d + consumed %d != total %d", theta, skipped, consumed, total)
	}
}

// drain walks the cursors to exhaustion at a fixed threshold.
func drain(c *Cursors, theta float64) []int32 {
	var out []int32
	for {
		d, ok := c.Next(theta)
		if !ok {
			return out
		}
		out = append(out, d)
	}
}

// TestCursorsEnumerateUnion pins the degenerate walk: at theta = -Inf no
// prefix can fail, so Next must enumerate the exact union of the posting
// lists in strictly ascending order, each id once, skipping nothing.
func TestCursorsEnumerateUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	lists := genPostings(rng, 6, 200, 0.15)
	ubs := []float64{0.3, 0.1, 0.25, 0.05, 0.2, 0.15}

	c := NewCursors(0.01)
	for i, post := range lists {
		c.Add(post, ubs[i])
	}
	got := drain(c, math.Inf(-1))

	union := map[int32]bool{}
	for _, post := range lists {
		for _, d := range post {
			union[d] = true
		}
	}
	want := make([]int32, 0, len(union))
	for d := range union {
		want = append(want, d)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("walk returned %d ids, union has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("id %d: got %d, want %d", i, got[i], want[i])
		}
	}
	if c.Skipped() != 0 {
		t.Fatalf("threshold -Inf skipped %d postings, want 0", c.Skipped())
	}
}

// TestCursorsFixedThresholdExact is the tier's core safety property in
// isolation: at a fixed threshold the walk must return exactly the
// documents whose bound sum (base + bounds of the lists containing them)
// strictly exceeds theta — no skipped survivor, no spurious candidate —
// in strictly ascending order, and account every passed-over posting in
// Skipped().
func TestCursorsFixedThresholdExact(t *testing.T) {
	const n = 300
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		nLists := 1 + rng.Intn(8)
		lists := genPostings(rng, nLists, n, 0.02+0.3*rng.Float64())
		ubs := make([]float64, nLists)
		for i := range ubs {
			ubs[i] = rng.Float64()
		}
		base := rng.Float64() * 0.5
		sums := boundSums(lists, ubs, base, n)
		// Thresholds across the interesting range, including one no document
		// beats and one every document beats.
		maxSum := base
		for _, s := range sums {
			if s > maxSum {
				maxSum = s
			}
		}
		for _, theta := range []float64{base - 1, base, maxSum * 0.3, maxSum * 0.7, maxSum * 0.99, maxSum * (1 + 1e-9)} {
			c := NewCursors(base)
			total := 0
			for i, post := range lists {
				c.Add(post, ubs[i])
				total += len(post)
			}
			got := drain(c, theta)
			checkSurvivors(t, got, lists, sums, theta, total, c.Skipped())
		}
	}
}

// TestCursorsRisingThreshold drives the walk the way TopKApprox does —
// the threshold only rises between calls — and checks the one property
// that must survive a moving bar: every document whose bound sum exceeds
// the FINAL threshold was returned (it exceeded every earlier, lower bar
// too, so no skip was ever allowed to drop it).
func TestCursorsRisingThreshold(t *testing.T) {
	const n = 250
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 30; trial++ {
		nLists := 2 + rng.Intn(6)
		lists := genPostings(rng, nLists, n, 0.1+0.2*rng.Float64())
		ubs := make([]float64, nLists)
		for i := range ubs {
			ubs[i] = rng.Float64()
		}
		base := rng.Float64() * 0.3
		sums := boundSums(lists, ubs, base, n)

		c := NewCursors(base)
		for i, post := range lists {
			c.Add(post, ubs[i])
		}
		theta := math.Inf(-1)
		final := base + 0.8*rng.Float64()
		returned := map[int32]bool{}
		step := 0
		for {
			d, ok := c.Next(theta)
			if !ok {
				break
			}
			if returned[d] {
				t.Fatalf("trial %d: id %d returned twice", trial, d)
			}
			returned[d] = true
			// Ratchet the bar upward toward final, like a filling top-K heap.
			step++
			if frac := float64(step) / 10; frac < 1 {
				theta = math.Max(theta, base+frac*(final-base))
			} else {
				theta = final
			}
		}
		for d := 0; d < n; d++ {
			if sums[d] > final && sums[d] > base && !returned[int32(d)] {
				// Only documents actually present in some list can return.
				present := false
				for _, post := range lists {
					for _, x := range post {
						if x == int32(d) {
							present = true
						}
					}
				}
				if present {
					t.Fatalf("trial %d: id %d (bound %v > final threshold %v) was skipped", trial, d, sums[d], final)
				}
			}
		}
	}
}

// TestCursorsAddDropsEmpty pins that empty posting lists never open a
// cursor and an all-empty walk terminates immediately.
func TestCursorsAddDropsEmpty(t *testing.T) {
	c := NewCursors(0)
	c.Add(nil, 1)
	c.Add([]int32{}, 1)
	if c.Len() != 0 {
		t.Fatalf("empty lists opened %d cursors", c.Len())
	}
	if _, ok := c.Next(math.Inf(-1)); ok {
		t.Fatal("empty cursor set returned a document")
	}
}

// TestCursorsAddOrderIrrelevant pins that the walk is correct no matter
// the order cursors are added: list heads arriving in descending (and
// interleaved) order must still enumerate the union in ascending
// document order. Regression test — the incremental reordering inside
// Next only repairs entries it moved, so Add must leave the walk order
// sorted from the very first call.
func TestCursorsAddOrderIrrelevant(t *testing.T) {
	lists := [][]int32{
		{90, 95},
		{50, 60, 91},
		{10, 55, 96},
		{0, 1, 2},
		{30},
	}
	c := NewCursors(0)
	for _, l := range lists {
		c.Add(l, 1)
	}
	got := drain(c, math.Inf(-1))
	want := []int32{0, 1, 2, 10, 30, 50, 55, 60, 90, 91, 95, 96}
	if len(got) != len(want) {
		t.Fatalf("union has %d ids, want %d (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("id %d = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
	if c.Skipped() != 0 {
		t.Fatalf("unbounded drain skipped %d postings, want 0", c.Skipped())
	}
}

// TestSeekPosting pins the galloping seek: first position >= target,
// from any starting offset.
func TestSeekPosting(t *testing.T) {
	post := []int32{2, 3, 5, 8, 13, 21, 34, 55}
	cases := []struct {
		pos    int
		target int32
		want   int
	}{
		{0, 3, 1}, {0, 4, 2}, {0, 55, 7}, {0, 56, 8}, {2, 20, 5}, {4, 34, 6}, {6, 100, 8},
	}
	for _, c := range cases {
		if got := seekPosting(post, c.pos, c.target); got != c.want {
			t.Fatalf("seekPosting(pos %d, target %d) = %d, want %d", c.pos, c.target, got, c.want)
		}
	}
}

// FuzzCursorsInvariants fuzzes the pivot walk over randomized posting
// lists, bounds and thresholds, checking the full invariant set: strictly
// ascending ids, exact agreement with the brute-force survivor set at a
// fixed threshold, and posting conservation (skipped + consumed = total).
func FuzzCursorsInvariants(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(50), uint8(128))
	f.Add(int64(99), uint8(1), uint8(200), uint8(0))
	f.Add(int64(-7), uint8(8), uint8(30), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, nLists, n, thetaByte uint8) {
		if nLists == 0 || n == 0 {
			return
		}
		lists := make([][]int32, int(nLists)%9+1)
		rng := rand.New(rand.NewSource(seed))
		ubs := make([]float64, len(lists))
		total := 0
		for i := range lists {
			for d := 0; d < int(n); d++ {
				if rng.Intn(4) == 0 {
					lists[i] = append(lists[i], int32(d))
				}
			}
			ubs[i] = rng.Float64()
			total += len(lists[i])
		}
		base := rng.Float64() * 0.2
		sums := boundSums(lists, ubs, base, int(n))
		maxSum := base
		for _, s := range sums {
			if s > maxSum {
				maxSum = s
			}
		}
		theta := maxSum * float64(thetaByte) / 255

		c := NewCursors(base)
		for i, post := range lists {
			c.Add(post, ubs[i])
		}
		got := drain(c, theta)
		checkSurvivors(t, got, lists, sums, theta, total, c.Skipped())
	})
}
