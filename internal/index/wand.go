// Max-score/WAND document-at-a-time traversal over the attribute posting
// lists — the candidate-generation half of the approximate retrieval tier
// (shard.TopKApprox). Each query attribute opens a cursor over its posting
// list carrying an admissible upper bound on the attribute's score
// contribution (similarity.AttrScoreBounds); a shared base bound covers
// the structural terms every auxiliary user can contribute regardless of
// attribute overlap. The pivot walk enumerates candidate ids in strictly
// ascending order and skips whole posting ranges whose summed bounds
// cannot beat the caller's running threshold: a document can only be
// skipped when every cursor positioned at or before it belongs to a
// bound-sum prefix that fails the threshold, so under an exact threshold
// (theta = the K-th score) the skip is provably safe and the walk
// degenerates to the exact engine. Survivors are exact-rescored by the
// caller with the unchanged flat kernel — only generation is approximate.
//
// Two refinements raise the walk's skip granularity beyond the single
// global base bound (the Block-Max WAND adaptation; see
// docs/ARCHITECTURE.md):
//
//   - Block-max check. The per-attribute bounds are constant per query, so
//     the only document-varying part of a bound sum is the structural base.
//     With SetBlocks installed, a pivot that would be returned is first
//     re-checked against its id-range block's structural bound (tighter
//     than the global max whenever the block's degree/norm ranges exclude
//     the query's best case); if even the block bound plus the bounds of
//     every cursor positioned on the pivot fails theta, the walk skips the
//     whole id range up to the next block boundary or the next cursor
//     document, whichever is closer — without touching entries.
//
//   - Essential-list demotion. When theta has risen far enough that the
//     structural base plus a cursor's own bound cannot reach it, any
//     document covered only by that cursor (and previously demoted ones)
//     is provably below threshold. The cursor is demoted out of the walk
//     order: it no longer participates in the sort/pivot/seek machinery
//     (its bound joins the pivot seed as an admissible overcount), but it
//     keeps its posting position and is probed — a galloping membership
//     seek, largest bound first — whenever a candidate is about to be
//     emitted. The probe stops early once even full membership of the
//     remaining demoted mass cannot reach theta (the candidate is then
//     provably below threshold); a completed probe leaves the emitted
//     document's bound sum exact. With skewed bound mass this shrinks the
//     per-iteration walk to the few essential high-bound lists while
//     non-essential lists are touched only at candidate docs.
//
// Both refinements only ever skip documents whose admissible bound is at
// most theta, so the theta=1/unbounded-budget bit-identity argument is
// unchanged. Demotion assumes theta never decreases across calls — true
// for every caller, whose theta is a running K-th score or a running
// pending-pool bound, both monotone.
package index

import (
	"math"
	"sync/atomic"
)

// ApproxParams are the per-call knobs of the approximate query tier.
// The zero value resolves to the conservative configuration (Theta 1,
// unbounded budget), which — combined with admissible bounds — returns
// results bit-identical to the exact path.
type ApproxParams struct {
	// Theta scales the skip threshold: posting ranges and bands whose
	// score upper bound falls below Theta times the running K-th score are
	// skipped. <= 0 resolves to 1.0 (exact); values above 1 skip more
	// aggressively and trade recall for speed.
	Theta float64
	// Budget caps how many candidates a shard query may exact-rescore;
	// <= 0 is unbounded. A finite budget switches the walk to
	// bound-ordered rescoring: the Budget highest-bound survivors are kept
	// in a pending pool and exact-rescored at the end, so the budget is
	// spent on the candidates most likely to matter instead of the
	// earliest document ids.
	Budget int
}

// WithDefaults resolves zero fields to the conservative configuration.
func (p ApproxParams) WithDefaults() ApproxParams {
	if p.Theta <= 0 {
		p.Theta = 1.0
	}
	if p.Budget < 0 {
		p.Budget = 0
	}
	return p
}

// ApproxStats are the cumulative counters of the approximate query tier
// (one struct per shard world, shared across derived pipelines exactly
// like Stats). All fields are monotone counts updated atomically.
type ApproxStats struct {
	// Queries counts per-shard approximate-path invocations.
	Queries int64
	// Fallbacks counts invocations that bailed to the exact full scan
	// (no index, or a non-prune-safe similarity configuration).
	Fallbacks int64
	// CursorsOpened sums posting cursors opened (one per query attribute
	// with a non-empty posting list).
	CursorsOpened int64
	// PostingsSkipped sums posting entries the pivot walk passed over
	// without rescoring — the tier's direct read on sublinearity.
	PostingsSkipped int64
	// Rescored sums the survivors exact-rescored by the flat kernel.
	Rescored int64
	// BudgetExhausted counts shard queries whose finite
	// ApproxParams.Budget dropped at least one surviving candidate from
	// the bound-ordered pending pool.
	BudgetExhausted int64
	// BlocksChecked counts block-max evaluations: pivots re-checked
	// against their id-range block's structural bound before being
	// returned as candidates.
	BlocksChecked int64
	// BlocksSkipped counts block-max evaluations that certified skipping
	// the pivot's whole id range — the direct read on how much tighter the
	// per-block bounds are than the global base.
	BlocksSkipped int64
	// CursorsDemoted counts posting cursors folded out of walks as
	// non-essential: the running threshold rose beyond what the base plus
	// the cursor's own bound could reach.
	CursorsDemoted int64
}

// Snapshot returns an atomically read copy of the counters, safe to take
// while queries are updating them.
func (s *ApproxStats) Snapshot() ApproxStats {
	return ApproxStats{
		Queries:         atomic.LoadInt64(&s.Queries),
		Fallbacks:       atomic.LoadInt64(&s.Fallbacks),
		CursorsOpened:   atomic.LoadInt64(&s.CursorsOpened),
		PostingsSkipped: atomic.LoadInt64(&s.PostingsSkipped),
		Rescored:        atomic.LoadInt64(&s.Rescored),
		BudgetExhausted: atomic.LoadInt64(&s.BudgetExhausted),
		BlocksChecked:   atomic.LoadInt64(&s.BlocksChecked),
		BlocksSkipped:   atomic.LoadInt64(&s.BlocksSkipped),
		CursorsDemoted:  atomic.LoadInt64(&s.CursorsDemoted),
	}
}

// exhaustedDoc is the current-doc sentinel of a drained cursor. Posting
// ids are shard-local user indices, always < MaxInt32, so the sentinel
// sorts every exhausted cursor past every live one and the walk trims
// them off the tail instead of compacting the slice each iteration.
const exhaustedDoc = math.MaxInt32

// Cursors is the document-at-a-time pivot walk over a set of posting
// cursors. base is an upper bound on the score any document can reach
// through non-attribute (structural) terms alone; it seeds every bound
// sum, so the walk never skips a document the structural terms could
// carry past the threshold on their own. Owned by one goroutine.
//
// The per-cursor state is struct-of-arrays: posting slices, positions,
// and bounds live in parallel arrays indexed by cursor id, while the
// walk order is a separate slice of (currentDoc<<32)|id keys. The inner
// loops — the near-sorted insertion sort, the pivot scan, the laggard
// seeks — then compare and swap plain int64s in registers, with no
// pointer-carrying struct copies (and so no GC write barriers) on the
// hot path.
type Cursors struct {
	posts   [][]int32 // posting list per cursor id (shared, never written)
	pos     []int32   // current position per cursor id
	ubs     []float64 // admissible score upper bound per cursor id
	ord     []int64   // walk order: (doc << 32) | id, ascending
	base    float64   // structural base bound (immutable after NewCursors)
	demoted float64   // summed bounds of demoted cursors (pivot-seed overcount)
	last    int32     // last returned doc; cursors positioned on it advance next call
	skipped int64

	lastBound float64 // admissible bound sum of the last returned doc

	// Block-max state (SetBlocks): bbound(b) is an admissible structural
	// bound over window-local ids [b*bsize, (b+1)*bsize). Consecutive
	// pivots overwhelmingly share a block, so the last lookup is memoized
	// inline (memoBlk/memoBB) before reaching for the callback.
	bsize   int
	bbound  func(int) float64
	memoBlk int
	memoBB  float64

	// Essential-list demotion state: demoted cursors leave the walk order
	// but keep their posting positions — they are probed (galloping) at
	// candidate docs so emitted bound sums stay exact. The per-cursor state
	// moves into the dem* parallel arrays, sorted by bound descending, so
	// the probe streams sequential memory; demSuffix[i] holds the summed
	// bounds from i on (demSuffix[0] == demoted), letting the probe stop as
	// soon as even full membership of the remaining mass cannot reach
	// theta. Folds become possible exactly when theta exceeds demoteBar =
	// base + demoted + min live cursor bound.
	demoteBar float64
	demPosts  [][]int32
	demPos    []int32
	demUbs    []float64
	demSuffix []float64
	probeHits []int // scratch: dem indices sitting on the candidate

	// Per-block demoted-mass accumulator, active when blocks are installed:
	// the first pivot landing in a block merges every demoted list's
	// entries inside the block's id range into dense per-doc mass/count
	// arrays (one sequential pass per list), so the per-candidate probe is
	// a single array read instead of a per-list merge. Entries are
	// provisionally counted skipped as they are accumulated; emission
	// consumes the emitted doc's count back.
	demBlk   int // block currently accumulated; -1 before the first
	demMass  []float64
	demCount []int32

	blocksChecked int64
	blocksSkipped int64
	cursorsCut    int64
}

// key packs a cursor's current document and id into its walk-order
// entry; int64 ordering is then (doc, id) ordering because both halves
// are non-negative.
func key(doc int32, id int) int64 { return int64(doc)<<32 | int64(id) }

// NewCursors returns an empty cursor set with the given structural base
// bound.
func NewCursors(base float64) *Cursors {
	return &Cursors{base: base, last: -1, demoteBar: math.Inf(-1), memoBlk: -1, demBlk: -1}
}

// Add opens a cursor over post (ascending document ids, shared — never
// written) with score upper bound ub. Empty lists are dropped.
func (c *Cursors) Add(post []int32, ub float64) {
	if len(post) == 0 {
		return
	}
	id := len(c.posts)
	c.posts = append(c.posts, post)
	c.pos = append(c.pos, 0)
	c.ubs = append(c.ubs, ub)
	// Keep ord sorted as cursors are added: Next's incremental reordering
	// only re-inserts entries it moved, so it relies on the slice being
	// sorted from the very first call.
	c.ord = append(c.ord, key(post[0], id))
	for j := len(c.ord) - 1; j > 0 && c.ord[j] < c.ord[j-1]; j-- {
		c.ord[j], c.ord[j-1] = c.ord[j-1], c.ord[j]
	}
	c.demoteBar = math.Inf(-1) // a new cursor may be the next demotion
}

// SetBlocks installs the two-level block-max check: bound(b) must return
// an admissible upper bound on the structural (zero-attribute-overlap)
// score of every document in [b*size, (b+1)*size) — typically a memoized
// ScoreBoundBand over the index's id-range Blocks. size <= 0 disables the
// check. The callback is evaluated lazily, once per touched block when
// the caller memoizes.
func (c *Cursors) SetBlocks(size int, bound func(int) float64) {
	if size <= 0 || bound == nil {
		c.bsize, c.bbound = 0, nil
		return
	}
	c.bsize, c.bbound = size, bound
	c.memoBlk = -1
}

// Len returns the number of live cursors.
func (c *Cursors) Len() int { return len(c.ord) }

// Skipped returns the cumulative posting entries passed over without
// being returned — documents whose bound-sum prefix failed the threshold.
func (c *Cursors) Skipped() int64 { return c.skipped }

// BlocksChecked returns how many pivots were re-checked against their
// id-range block bound; BlocksSkipped of those certified a range skip.
func (c *Cursors) BlocksChecked() int64 { return c.blocksChecked }

// BlocksSkipped returns how many block-max checks certified skipping the
// pivot's whole id range.
func (c *Cursors) BlocksSkipped() int64 { return c.blocksSkipped }

// Demoted returns how many cursors were folded out of the walk as
// non-essential.
func (c *Cursors) Demoted() int64 { return c.cursorsCut }

// CandidateBound returns the admissible score upper bound of the last
// document Next returned: the block (or global, whichever is tighter)
// structural bound plus the bounds of every cursor — live or demoted —
// actually positioned on the document. The bound-ordered budget rescore
// keys its pending pool on it.
func (c *Cursors) CandidateBound() float64 { return c.lastBound }

// flushDemoted charges the remaining postings of every demoted cursor to
// the skipped counter when the walk ends: those entries were passed over
// by demotion without being individually touched. Idempotent.
func (c *Cursors) flushDemoted() {
	for i := range c.demPosts {
		c.skipped += int64(len(c.demPosts[i])) - int64(c.demPos[i])
		c.demPos[i] = int32(len(c.demPosts[i]))
	}
}

// enterDemBlock accumulates the demoted lists' entries inside block blk
// into the demMass/demCount arrays: one sequential pass per list, after
// which probing any document in the block is a single array read. Every
// accumulated entry is provisionally counted skipped (emission consumes
// the emitted doc's count back), and entries left behind in blocks the
// walk passed without entering belong to documents that were never
// emitted, so they are skipped outright. Each list's position ends past
// the block, keeping the accounting disjoint from flushDemoted.
func (c *Cursors) enterDemBlock(blk int) {
	if cap(c.demMass) < c.bsize {
		c.demMass = make([]float64, c.bsize)
		c.demCount = make([]int32, c.bsize)
	}
	c.demMass = c.demMass[:c.bsize]
	c.demCount = c.demCount[:c.bsize]
	for j := range c.demMass {
		c.demMass[j] = 0
		c.demCount[j] = 0
	}
	start := int32(blk * c.bsize)
	end := start + int32(c.bsize)
	for i := range c.demPosts {
		post := c.demPosts[i]
		p := int(c.demPos[i])
		for p < len(post) && post[p] < start {
			p++
			c.skipped++
		}
		ub := c.demUbs[i]
		for p < len(post) && post[p] < end {
			j := post[p] - start
			c.demMass[j] += ub
			c.demCount[j]++
			c.skipped++
			p++
		}
		c.demPos[i] = int32(p)
	}
	c.demBlk = blk
}

// mergeDemotedIntoBlock folds a just-demoted cursor (dem index i) into
// the currently accumulated block, so a demotion happening mid-block
// keeps the accumulator exact. The cursor's position is past the last
// returned document, so every merged entry lies at a future doc.
func (c *Cursors) mergeDemotedIntoBlock(i int) {
	if c.demBlk < 0 {
		return
	}
	start := int32(c.demBlk * c.bsize)
	end := start + int32(c.bsize)
	post := c.demPosts[i]
	p := int(c.demPos[i])
	for p < len(post) && post[p] < start {
		p++
		c.skipped++
	}
	ub := c.demUbs[i]
	for p < len(post) && post[p] < end {
		j := post[p] - start
		c.demMass[j] += ub
		c.demCount[j]++
		c.skipped++
		p++
	}
	c.demPos[i] = int32(p)
}

// insertDemoted moves a cursor's state into the demoted parallel arrays,
// keeping them sorted by bound descending, and rebuilds the suffix sums.
// Demotions are rare (at most once per cursor per walk), so the linear
// insert and suffix rebuild are off the hot path. Returns the insertion
// index.
func (c *Cursors) insertDemoted(post []int32, pos int32, ub float64) int {
	at := 0
	for at < len(c.demUbs) && c.demUbs[at] >= ub {
		at++
	}
	c.demPosts = append(c.demPosts, nil)
	copy(c.demPosts[at+1:], c.demPosts[at:])
	c.demPosts[at] = post
	c.demPos = append(c.demPos, 0)
	copy(c.demPos[at+1:], c.demPos[at:])
	c.demPos[at] = pos
	c.demUbs = append(c.demUbs, 0)
	copy(c.demUbs[at+1:], c.demUbs[at:])
	c.demUbs[at] = ub

	n := len(c.demUbs)
	if cap(c.demSuffix) < n+1 {
		c.demSuffix = make([]float64, n+1)
	}
	c.demSuffix = c.demSuffix[:n+1]
	c.demSuffix[n] = 0
	for i := n - 1; i >= 0; i-- {
		c.demSuffix[i] = c.demSuffix[i+1] + c.demUbs[i]
	}
	// Keep the pivot seed and the suffix sums the same float, so the
	// pre-probe cut-off agrees bit-for-bit with pivot selection.
	c.demoted = c.demSuffix[0]
	return at
}

// Next returns the next candidate document whose summed score upper
// bound exceeds theta, in strictly ascending document order, or ok=false
// when the walk is exhausted. theta is the caller's running skip bar and
// must never decrease across calls (both callers' bars — a running K-th
// score and a running pending-pool bound — are monotone); a larger theta
// can only shrink the surviving set. Each returned document's bound sum —
// base plus the bounds of every cursor positioned on it — is strictly
// greater than theta, and every document passed over had a bound sum at
// most theta: cursors are kept sorted by current document, the pivot is
// the first prefix whose bound sum exceeds theta, and any passed-over
// document lives only in cursors strictly before the pivot, whose prefix
// sum failed. Skipping is by galloping seek, so runs of hopeless postings
// cost O(log run) instead of O(run). With SetBlocks installed a pivot is
// additionally checked against its id-range block's structural bound, and
// cursors whose bound mass can no longer carry a document past theta on
// its own are demoted out of the walk order and only probed at candidate
// documents.
func (c *Cursors) Next(theta float64) (int32, bool) {
	ord := c.ord
	// Step every cursor off the previously returned document, so the walk
	// makes progress and never returns an id twice. The slice is sorted,
	// so those cursors are exactly the prefix whose doc equals last (which
	// is -1 before the first call, matching nothing).
	dirty := 0
	for dirty < len(ord) && int32(ord[dirty]>>32) == c.last {
		id := int(int32(ord[dirty]))
		np := int(c.pos[id]) + 1
		c.pos[id] = int32(np)
		if np < len(c.posts[id]) {
			ord[dirty] = key(c.posts[id][np], id)
		} else {
			ord[dirty] = key(exhaustedDoc, id)
		}
		dirty++
	}
	// Essential-list demotion: once theta clears base + demoted plus the
	// smallest live cursor bound, every document covered only by that
	// cursor (and previously demoted ones) is provably below threshold.
	// Drop the cursor from the walk order — it keeps its posting position
	// and is probed at candidate docs — and add its bound to the demoted
	// mass seeding pivot selection. demoteBar caches the theta the next
	// demotion needs, so the scan runs only when one is possible.
	for theta > c.demoteBar {
		minUb, minAt := math.Inf(1), -1
		for i, o := range ord {
			if int32(o>>32) == exhaustedDoc {
				continue
			}
			if ub := c.ubs[int(int32(o))]; ub < minUb {
				minUb, minAt = ub, i
			}
		}
		if minAt < 0 {
			c.demoteBar = math.Inf(1)
			break
		}
		if c.base+c.demoted+minUb > theta {
			c.demoteBar = c.base + c.demoted + minUb
			break
		}
		id := int(int32(ord[minAt]))
		c.cursorsCut++
		di := c.insertDemoted(c.posts[id], c.pos[id], minUb)
		if c.bsize > 0 {
			c.mergeDemotedIntoBlock(di)
		}
		copy(ord[minAt:], ord[minAt+1:])
		ord = ord[:len(ord)-1]
		if minAt < dirty {
			dirty--
		}
	}
	for {
		// Restore ascending order. Only the first dirty entries moved (their
		// keys grew), so each is re-inserted rightward into the still-sorted
		// remainder instead of re-sorting the whole slice.
		for i := dirty - 1; i >= 0; i-- {
			v := ord[i]
			j := i
			for j+1 < len(ord) && ord[j+1] < v {
				ord[j] = ord[j+1]
				j++
			}
			ord[j] = v
		}
		// Trim exhausted cursors — the sentinel sorted them onto the tail.
		for len(ord) > 0 && int32(ord[len(ord)-1]>>32) == exhaustedDoc {
			ord = ord[:len(ord)-1]
		}
		c.ord = ord
		if len(ord) == 0 {
			c.flushDemoted()
			return 0, false
		}
		// Pivot selection: accumulate bounds in doc order until the sum
		// beats theta. The seed includes the demoted mass — demoted lists
		// may still cover any document, so skips below the pivot must
		// admit their contribution. No pivot means no remaining document
		// can qualify.
		sum := c.base + c.demoted
		pivot := -1
		for i, o := range ord {
			sum += c.ubs[int(int32(o))]
			if sum > theta {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			for _, o := range ord {
				id := int(int32(o))
				c.skipped += int64(len(c.posts[id])) - int64(c.pos[id])
			}
			c.ord = ord[:0]
			c.flushDemoted()
			return 0, false
		}
		pivotDoc := int32(ord[pivot] >> 32)
		if int32(ord[0]>>32) == pivotDoc {
			// Every cursor at or before the pivot sits on pivotDoc; the
			// seeded bound sum exceeds theta. Extend the run to every live
			// cursor on pivotDoc, then tighten the bound in two stages
			// before committing to a candidate.
			run := pivot + 1
			for run < len(ord) && int32(ord[run]>>32) == pivotDoc {
				run++
			}
			runSum := 0.0
			for i := 0; i < run; i++ {
				runSum += c.ubs[int(int32(ord[i]))]
			}
			// sb is the structural bound used from here on: the global base,
			// tightened to the id-range block's bound when that is smaller
			// (both are admissible for every document in the block).
			sb := c.base
			blk := 0
			if c.bsize > 0 {
				blk = int(pivotDoc) / c.bsize
				c.blocksChecked++
				if blk != c.memoBlk {
					c.memoBlk, c.memoBB = blk, c.bbound(blk)
				}
				if bb := c.memoBB; bb < sb {
					sb = bb
				}
				if sb+runSum+c.demoted <= theta {
					// The block bound rules out pivotDoc — and every document
					// up to the next block boundary or the next live cursor
					// position, whichever is closer: any such document is
					// covered only by run or demoted cursors (later live
					// cursors sit past it), whose bounds runSum + demoted
					// already admit, and shares the block's structural
					// ranges. Shallow-advance the run without touching the
					// skipped entries individually. Demoted cursors are left
					// behind; their entries in the range are accounted when
					// they are next probed or flushed.
					c.blocksSkipped++
					target := (blk + 1) * c.bsize
					if run < len(ord) {
						if nd := int(ord[run] >> 32); nd < target {
							target = nd
						}
					}
					for i := 0; i < run; i++ {
						id := int(int32(ord[i]))
						np := seekPosting(c.posts[id], int(c.pos[id]), int32(target))
						c.skipped += int64(np) - int64(c.pos[id])
						c.pos[id] = int32(np)
						if np < len(c.posts[id]) {
							ord[i] = key(c.posts[id][np], id)
						} else {
							ord[i] = key(exhaustedDoc, id)
						}
					}
					dirty = run
					continue
				}
			}
			// Probe the demoted cursors for membership on pivotDoc, so the
			// emitted document's bound sum counts only cursors actually
			// covering it.
			tight := sb + runSum
			if c.bsize > 0 {
				// Blocks installed: the per-block accumulator makes the
				// probe a single array read (see enterDemBlock).
				if blk != c.demBlk {
					c.enterDemBlock(blk)
				}
				j := int(pivotDoc) - blk*c.bsize
				tight += c.demMass[j]
				if tight > theta {
					// Emitting pivotDoc consumes its demoted entries, which
					// were provisionally counted skipped at accumulation.
					c.skipped -= int64(c.demCount[j])
					c.lastBound = tight
					c.last = pivotDoc
					return pivotDoc, true
				}
			} else {
				// No blocks: probe each demoted list directly, largest
				// bound first. The suffix sums give an early out: once even
				// full membership of the remaining demoted mass cannot
				// carry the bound past theta, pivotDoc is provably below
				// threshold and the unprobed cursors stay lagging — their
				// entries are accounted when next probed or flushed, and
				// they only ever cover skipped documents.
				hits := c.probeHits[:0]
				certified := false
				for i := range c.demUbs {
					if tight+c.demSuffix[i] <= theta {
						certified = true
						break
					}
					post := c.demPosts[i]
					p := int(c.demPos[i])
					if p < len(post) && post[p] < pivotDoc {
						// Adjacent probes mostly advance a step or two; scan
						// linearly before paying for the galloping seek.
						p0 := p
						for p < len(post) && post[p] < pivotDoc {
							if p-p0 == 8 {
								p = seekPosting(post, p, pivotDoc)
								break
							}
							p++
						}
						c.skipped += int64(p - p0)
						c.demPos[i] = int32(p)
					}
					if p < len(post) && post[p] == pivotDoc {
						tight += c.demUbs[i]
						hits = append(hits, i)
					}
				}
				if cap(hits) > cap(c.probeHits) {
					c.probeHits = hits
				}
				if !certified && tight > theta {
					// Emitting pivotDoc consumes the probed entries; step
					// the hit cursors past it without counting them skipped.
					for _, i := range hits {
						c.demPos[i]++
					}
					c.lastBound = tight
					c.last = pivotDoc
					return pivotDoc, true
				}
				for _, i := range hits {
					c.demPos[i]++
					c.skipped++
				}
			}
			// pivotDoc is provably below threshold (the seeded pivot sum
			// overcounted via the demoted mass). Skip just this document.
			for i := 0; i < run; i++ {
				id := int(int32(ord[i]))
				np := int(c.pos[id]) + 1
				c.skipped++
				c.pos[id] = int32(np)
				if np < len(c.posts[id]) {
					ord[i] = key(c.posts[id][np], id)
				} else {
					ord[i] = key(exhaustedDoc, id)
				}
			}
			dirty = run
			continue
		}
		// Cursors before the pivot lag behind pivotDoc; everything they
		// cover below it belongs to a failing prefix. Seek them forward.
		for i := 0; i < pivot; i++ {
			if int32(ord[i]>>32) >= pivotDoc {
				continue
			}
			id := int(int32(ord[i]))
			np := seekPosting(c.posts[id], int(c.pos[id]), pivotDoc)
			c.skipped += int64(np) - int64(c.pos[id])
			c.pos[id] = int32(np)
			if np < len(c.posts[id]) {
				ord[i] = key(c.posts[id][np], id)
			} else {
				ord[i] = key(exhaustedDoc, id)
			}
		}
		dirty = pivot
	}
}

// seekPosting returns the first position >= pos whose entry is >= target,
// by galloping then binary search. post[pos] < target must hold.
func seekPosting(post []int32, pos int, target int32) int {
	lo, hi := pos, len(post)
	for step := 1; pos+step < len(post); step *= 2 {
		if post[pos+step] >= target {
			hi = pos + step
			break
		}
		lo = pos + step
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if post[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
