// Max-score/WAND document-at-a-time traversal over the attribute posting
// lists — the candidate-generation half of the approximate retrieval tier
// (shard.TopKApprox). Each query attribute opens a cursor over its posting
// list carrying an admissible upper bound on the attribute's score
// contribution (similarity.AttrScoreBounds); a shared base bound covers
// the structural terms every auxiliary user can contribute regardless of
// attribute overlap. The pivot walk enumerates candidate ids in strictly
// ascending order and skips whole posting ranges whose summed bounds
// cannot beat the caller's running threshold: a document can only be
// skipped when every cursor positioned at or before it belongs to a
// bound-sum prefix that fails the threshold, so under an exact threshold
// (theta = the K-th score) the skip is provably safe and the walk
// degenerates to the exact engine. Survivors are exact-rescored by the
// caller with the unchanged flat kernel — only generation is approximate.
package index

import (
	"math"
	"sync/atomic"
)

// ApproxParams are the per-call knobs of the approximate query tier.
// The zero value resolves to the conservative configuration (Theta 1,
// unbounded budget), which — combined with admissible bounds — returns
// results bit-identical to the exact path.
type ApproxParams struct {
	// Theta scales the skip threshold: posting ranges and bands whose
	// score upper bound falls below Theta times the running K-th score are
	// skipped. <= 0 resolves to 1.0 (exact); values above 1 skip more
	// aggressively and trade recall for speed.
	Theta float64
	// Budget caps how many candidates a shard query may exact-rescore;
	// <= 0 is unbounded. An exhausted budget stops the query immediately
	// and returns the best candidates found so far.
	Budget int
}

// WithDefaults resolves zero fields to the conservative configuration.
func (p ApproxParams) WithDefaults() ApproxParams {
	if p.Theta <= 0 {
		p.Theta = 1.0
	}
	if p.Budget < 0 {
		p.Budget = 0
	}
	return p
}

// ApproxStats are the cumulative counters of the approximate query tier
// (one struct per shard world, shared across derived pipelines exactly
// like Stats). All fields are monotone counts updated atomically.
type ApproxStats struct {
	// Queries counts per-shard approximate-path invocations.
	Queries int64
	// Fallbacks counts invocations that bailed to the exact full scan
	// (no index, or a non-prune-safe similarity configuration).
	Fallbacks int64
	// CursorsOpened sums posting cursors opened (one per query attribute
	// with a non-empty posting list).
	CursorsOpened int64
	// PostingsSkipped sums posting entries the pivot walk passed over
	// without rescoring — the tier's direct read on sublinearity.
	PostingsSkipped int64
	// Rescored sums the survivors exact-rescored by the flat kernel.
	Rescored int64
	// BudgetExhausted counts shard queries stopped early by
	// ApproxParams.Budget.
	BudgetExhausted int64
}

// Snapshot returns an atomically read copy of the counters, safe to take
// while queries are updating them.
func (s *ApproxStats) Snapshot() ApproxStats {
	return ApproxStats{
		Queries:         atomic.LoadInt64(&s.Queries),
		Fallbacks:       atomic.LoadInt64(&s.Fallbacks),
		CursorsOpened:   atomic.LoadInt64(&s.CursorsOpened),
		PostingsSkipped: atomic.LoadInt64(&s.PostingsSkipped),
		Rescored:        atomic.LoadInt64(&s.Rescored),
		BudgetExhausted: atomic.LoadInt64(&s.BudgetExhausted),
	}
}

// exhaustedDoc is the current-doc sentinel of a drained cursor. Posting
// ids are shard-local user indices, always < MaxInt32, so the sentinel
// sorts every exhausted cursor past every live one and the walk trims
// them off the tail instead of compacting the slice each iteration.
const exhaustedDoc = math.MaxInt32

// Cursors is the document-at-a-time pivot walk over a set of posting
// cursors. base is an upper bound on the score any document can reach
// through non-attribute (structural) terms alone; it seeds every bound
// sum, so the walk never skips a document the structural terms could
// carry past the threshold on their own. Owned by one goroutine.
//
// The per-cursor state is struct-of-arrays: posting slices, positions,
// and bounds live in parallel arrays indexed by cursor id, while the
// walk order is a separate slice of (currentDoc<<32)|id keys. The inner
// loops — the near-sorted insertion sort, the pivot scan, the laggard
// seeks — then compare and swap plain int64s in registers, with no
// pointer-carrying struct copies (and so no GC write barriers) on the
// hot path.
type Cursors struct {
	posts   [][]int32 // posting list per cursor id (shared, never written)
	pos     []int32   // current position per cursor id
	ubs     []float64 // admissible score upper bound per cursor id
	ord     []int64   // walk order: (doc << 32) | id, ascending
	base    float64
	last    int32 // last returned doc; cursors positioned on it advance next call
	skipped int64
}

// key packs a cursor's current document and id into its walk-order
// entry; int64 ordering is then (doc, id) ordering because both halves
// are non-negative.
func key(doc int32, id int) int64 { return int64(doc)<<32 | int64(id) }

// NewCursors returns an empty cursor set with the given structural base
// bound.
func NewCursors(base float64) *Cursors {
	return &Cursors{base: base, last: -1}
}

// Add opens a cursor over post (ascending document ids, shared — never
// written) with score upper bound ub. Empty lists are dropped.
func (c *Cursors) Add(post []int32, ub float64) {
	if len(post) == 0 {
		return
	}
	id := len(c.posts)
	c.posts = append(c.posts, post)
	c.pos = append(c.pos, 0)
	c.ubs = append(c.ubs, ub)
	// Keep ord sorted as cursors are added: Next's incremental reordering
	// only re-inserts entries it moved, so it relies on the slice being
	// sorted from the very first call.
	c.ord = append(c.ord, key(post[0], id))
	for j := len(c.ord) - 1; j > 0 && c.ord[j] < c.ord[j-1]; j-- {
		c.ord[j], c.ord[j-1] = c.ord[j-1], c.ord[j]
	}
}

// Len returns the number of live cursors.
func (c *Cursors) Len() int { return len(c.ord) }

// Skipped returns the cumulative posting entries passed over without
// being returned — documents whose bound-sum prefix failed the threshold.
func (c *Cursors) Skipped() int64 { return c.skipped }

// Next returns the next candidate document whose summed score upper
// bound exceeds theta, in strictly ascending document order, or ok=false
// when the walk is exhausted. theta may change between calls (it is the
// caller's running K-th score threshold); a larger theta can only shrink
// the surviving set. Each returned document's bound sum — base plus the
// bounds of every cursor positioned on it — is strictly greater than
// theta, and every document passed over had a bound sum at most theta:
// cursors are kept sorted by current document, the pivot is the first
// prefix whose bound sum exceeds theta, and any passed-over document
// lives only in cursors strictly before the pivot, whose prefix sum
// failed. Skipping is by galloping seek, so runs of hopeless postings
// cost O(log run) instead of O(run).
func (c *Cursors) Next(theta float64) (int32, bool) {
	ord := c.ord
	// Step every cursor off the previously returned document, so the walk
	// makes progress and never returns an id twice. The slice is sorted,
	// so those cursors are exactly the prefix whose doc equals last (which
	// is -1 before the first call, matching nothing).
	dirty := 0
	for dirty < len(ord) && int32(ord[dirty]>>32) == c.last {
		id := int(int32(ord[dirty]))
		np := int(c.pos[id]) + 1
		c.pos[id] = int32(np)
		if np < len(c.posts[id]) {
			ord[dirty] = key(c.posts[id][np], id)
		} else {
			ord[dirty] = key(exhaustedDoc, id)
		}
		dirty++
	}
	for {
		// Restore ascending order. Only the first dirty entries moved (their
		// keys grew), so each is re-inserted rightward into the still-sorted
		// remainder instead of re-sorting the whole slice.
		for i := dirty - 1; i >= 0; i-- {
			v := ord[i]
			j := i
			for j+1 < len(ord) && ord[j+1] < v {
				ord[j] = ord[j+1]
				j++
			}
			ord[j] = v
		}
		// Trim exhausted cursors — the sentinel sorted them onto the tail.
		for len(ord) > 0 && int32(ord[len(ord)-1]>>32) == exhaustedDoc {
			ord = ord[:len(ord)-1]
		}
		c.ord = ord
		if len(ord) == 0 {
			return 0, false
		}
		// Pivot selection: accumulate bounds in doc order until the sum
		// beats theta. No pivot means no remaining document can qualify.
		sum := c.base
		pivot := -1
		for i, o := range ord {
			sum += c.ubs[int(int32(o))]
			if sum > theta {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			for _, o := range ord {
				id := int(int32(o))
				c.skipped += int64(len(c.posts[id])) - int64(c.pos[id])
			}
			c.ord = ord[:0]
			return 0, false
		}
		pivotDoc := int32(ord[pivot] >> 32)
		if int32(ord[0]>>32) == pivotDoc {
			// Every cursor at or before the pivot sits on pivotDoc: its full
			// bound sum exceeds theta, so it survives. Return it.
			c.last = pivotDoc
			return pivotDoc, true
		}
		// Cursors before the pivot lag behind pivotDoc; everything they
		// cover below it belongs to a failing prefix. Seek them forward.
		for i := 0; i < pivot; i++ {
			if int32(ord[i]>>32) >= pivotDoc {
				continue
			}
			id := int(int32(ord[i]))
			np := seekPosting(c.posts[id], int(c.pos[id]), pivotDoc)
			c.skipped += int64(np) - int64(c.pos[id])
			c.pos[id] = int32(np)
			if np < len(c.posts[id]) {
				ord[i] = key(c.posts[id][np], id)
			} else {
				ord[i] = key(exhaustedDoc, id)
			}
		}
		dirty = pivot
	}
}

// seekPosting returns the first position >= pos whose entry is >= target,
// by galloping then binary search. post[pos] < target must hold.
func seekPosting(post []int32, pos int, target int32) int {
	lo, hi := pos, len(post)
	for step := 1; pos+step < len(post); step *= 2 {
		if post[pos+step] >= target {
			hi = pos + step
			break
		}
		lo = pos + step
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if post[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
