package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dehealth/internal/stylometry"
)

// fakeSource is a synthetic index window: explicit attribute sets and
// degrees, no graphs involved.
type fakeSource struct {
	attrs []stylometry.AttrSet
	deg   []float64
	wdeg  []float64
}

func (f fakeSource) NumUsers() int                  { return len(f.attrs) }
func (f fakeSource) Attrs(u int) stylometry.AttrSet { return f.attrs[u] }
func (f fakeSource) Degree(u int) float64           { return f.deg[u] }
func (f fakeSource) WeightedDegree(u int) float64   { return f.wdeg[u] }

// randomSource builds n users with sparse random attribute sets over
// [0, dim) and random degrees.
func randomSource(n, dim, attrsPer int, seed int64) fakeSource {
	rng := rand.New(rand.NewSource(seed))
	f := fakeSource{
		attrs: make([]stylometry.AttrSet, n),
		deg:   make([]float64, n),
		wdeg:  make([]float64, n),
	}
	for u := 0; u < n; u++ {
		seen := map[int]bool{}
		for len(seen) < attrsPer {
			seen[rng.Intn(dim)] = true
		}
		idx := make([]int, 0, attrsPer)
		for a := range seen {
			idx = append(idx, a)
		}
		sort.Ints(idx)
		w := make([]int, len(idx))
		for i := range w {
			w[i] = 1 + rng.Intn(4)
		}
		f.attrs[u] = stylometry.AttrSet{Idx: idx, Weight: w}
		f.deg[u] = float64(rng.Intn(40))
		f.wdeg[u] = f.deg[u] * (0.5 + rng.Float64())
	}
	return f
}

func TestPostingsExact(t *testing.T) {
	src := randomSource(60, 50, 4, 1)
	x := Build(src, Config{})
	for a := 0; a < 50; a++ {
		var want []int32
		for u := 0; u < src.NumUsers(); u++ {
			if src.attrs[u].Has(a) {
				want = append(want, int32(u))
			}
		}
		got := x.Postings(a)
		if len(got) != len(want) {
			t.Fatalf("attr %d: %d postings, want %d", a, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("attr %d postings = %v, want %v", a, got, want)
			}
		}
	}
	if x.Postings(-1) != nil || x.Postings(10_000) != nil {
		t.Fatal("out-of-range attributes must have empty postings")
	}
}

func TestCandidatesAreExactlyOverlapUsers(t *testing.T) {
	src := randomSource(80, 40, 3, 2)
	x := Build(src, Config{})
	// One scratch reused across every query: epoch stamping must isolate
	// consecutive queries without any clearing between them.
	s := x.AcquireScratch()
	defer x.ReleaseScratch(s)
	for u := 0; u < src.NumUsers(); u++ {
		got := x.Candidates(src.attrs[u], s)
		want := map[int32]bool{}
		for v := 0; v < src.NumUsers(); v++ {
			if stylometry.Jaccard(src.attrs[u], src.attrs[v]) > 0 {
				want[int32(v)] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("user %d: %d candidates, want %d", u, len(got), len(want))
		}
		perBand := make([]int, len(x.Bands()))
		for _, c := range got {
			if !want[c] {
				t.Fatalf("user %d: candidate %d shares no attribute", u, c)
			}
			if !s.Marked(c) {
				t.Fatalf("user %d: candidate %d not marked", u, c)
			}
		}
		for v := 0; v < src.NumUsers(); v++ {
			if s.Marked(int32(v)) != want[int32(v)] {
				t.Fatalf("user %d: Marked(%d) = %v, want %v", u, v, s.Marked(int32(v)), want[int32(v)])
			}
			if want[int32(v)] {
				for bi, b := range x.Bands() {
					for _, id := range b.IDs {
						if id == int32(v) {
							perBand[bi]++
						}
					}
				}
			}
		}
		for bi := range x.Bands() {
			if s.BandCandidates(bi) != perBand[bi] {
				t.Fatalf("user %d band %d: BandCandidates = %d, want %d", u, bi, s.BandCandidates(bi), perBand[bi])
			}
		}
		if n := x.CandidateCount(src.attrs[u]); n != len(want) {
			t.Fatalf("CandidateCount = %d, want %d", n, len(want))
		}
	}
}

// TestScratchEpochWraparound forces the uint32 epoch to wrap and checks
// marks from before the wrap cannot leak into the post-wrap query.
func TestScratchEpochWraparound(t *testing.T) {
	src := randomSource(10, 20, 2, 5)
	x := Build(src, Config{})
	s := x.AcquireScratch()
	defer x.ReleaseScratch(s)
	x.Candidates(src.attrs[0], s) // stamp some users at epoch 1
	s.epoch = ^uint32(0)          // next begin() wraps to 0 then resets to 1
	got := x.Candidates(stylometry.AttrSet{}, s)
	if len(got) != 0 {
		t.Fatalf("empty query after wraparound returned %d candidates", len(got))
	}
	for v := 0; v < src.NumUsers(); v++ {
		if s.Marked(int32(v)) {
			t.Fatalf("stale mark on user %d survived the epoch wraparound", v)
		}
	}
}

func TestBandsPartitionAndBound(t *testing.T) {
	src := randomSource(100, 30, 3, 3)
	x := Build(src, Config{Bands: 7})
	seen := make([]bool, src.NumUsers())
	total := 0
	for _, b := range x.Bands() {
		if b.DegLo > b.DegHi || b.WdegLo > b.WdegHi {
			t.Fatalf("inverted band range: %+v", b)
		}
		for i, id := range b.IDs {
			if i > 0 && b.IDs[i-1] >= id {
				t.Fatal("band ids must be strictly ascending")
			}
			if seen[id] {
				t.Fatalf("user %d appears in two bands", id)
			}
			seen[id] = true
			total++
			if d := src.Degree(int(id)); d < b.DegLo || d > b.DegHi {
				t.Fatalf("user %d degree %v outside band [%v, %v]", id, d, b.DegLo, b.DegHi)
			}
			if w := src.WeightedDegree(int(id)); w < b.WdegLo || w > b.WdegHi {
				t.Fatalf("user %d wdeg %v outside band [%v, %v]", id, w, b.WdegLo, b.WdegHi)
			}
		}
	}
	if total != src.NumUsers() {
		t.Fatalf("bands cover %d users, want %d", total, src.NumUsers())
	}
}

// normedSource extends fakeSource with explicit per-user vector norms,
// exercising the NormSource build path.
type normedSource struct {
	fakeSource
	ncs, close, wcl []float64
}

func (f normedSource) NCSNorm(u int) float64   { return f.ncs[u] }
func (f normedSource) CloseNorm(u int) float64 { return f.close[u] }
func (f normedSource) WclNorm(u int) float64   { return f.wcl[u] }

// TestBandNormRanges checks the per-band norm ranges: a NormSource build
// must record exact min/max member norms per band, and a plain Source
// build must record them as unknown ([0, +Inf]) so the score bound
// degrades to the cosine-≤-1 form instead of unsoundly tightening.
func TestBandNormRanges(t *testing.T) {
	base := randomSource(90, 30, 3, 5)
	src := normedSource{
		fakeSource: base,
		ncs:        make([]float64, base.NumUsers()),
		close:      make([]float64, base.NumUsers()),
		wcl:        make([]float64, base.NumUsers()),
	}
	rng := rand.New(rand.NewSource(6))
	for u := range src.ncs {
		if rng.Intn(4) > 0 { // leave ~a quarter at zero, the tightening case
			src.ncs[u] = rng.Float64() * 5
			src.close[u] = rng.Float64() * 2
			src.wcl[u] = rng.Float64()
		}
	}
	x := Build(src, Config{Bands: 6})
	for _, b := range x.Bands() {
		wantRange := func(name string, lo, hi float64, norm func(int) float64) {
			mn, mx := norm(int(b.IDs[0])), norm(int(b.IDs[0]))
			for _, id := range b.IDs[1:] {
				if v := norm(int(id)); v < mn {
					mn = v
				} else if v > mx {
					mx = v
				}
			}
			if lo != mn || hi != mx {
				t.Fatalf("%s range [%v, %v], want [%v, %v]", name, lo, hi, mn, mx)
			}
		}
		wantRange("ncs", b.NCSNormLo, b.NCSNormHi, src.NCSNorm)
		wantRange("close", b.CloseNormLo, b.CloseNormHi, src.CloseNorm)
		wantRange("wcl", b.WclNormLo, b.WclNormHi, src.WclNorm)
	}

	// A source without norms must leave the ranges unknown-wide.
	plain := Build(base, Config{Bands: 6})
	for _, b := range plain.Bands() {
		if b.NCSNormLo != 0 || !math.IsInf(b.NCSNormHi, 1) ||
			b.CloseNormLo != 0 || !math.IsInf(b.CloseNormHi, 1) ||
			b.WclNormLo != 0 || !math.IsInf(b.WclNormHi, 1) {
			t.Fatalf("norm-less build must record unknown ranges: %+v", b)
		}
	}
}

func TestBuildDegenerate(t *testing.T) {
	empty := Build(fakeSource{}, Config{})
	if empty.NumUsers() != 0 || len(empty.Bands()) != 0 {
		t.Fatal("empty source must index nothing")
	}
	if got := empty.CandidateCount(stylometry.AttrSet{Idx: []int{3}}); got != 0 {
		t.Fatalf("empty index found %d candidates", got)
	}

	// More bands than users clamps; attribute-free users index fine.
	src := fakeSource{
		attrs: make([]stylometry.AttrSet, 3),
		deg:   []float64{1, 2, 3},
		wdeg:  []float64{1, 2, 3},
	}
	x := Build(src, Config{Bands: 50})
	if len(x.Bands()) != 3 {
		t.Fatalf("bands = %d, want 3 (clamped to users)", len(x.Bands()))
	}
	s := x.AcquireScratch()
	defer x.ReleaseScratch(s)
	if got := x.Candidates(stylometry.AttrSet{Idx: []int{0, 1}}, s); len(got) != 0 {
		t.Fatalf("attribute-free users produced candidates: %v", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.MaxCandidateFrac != 0.5 || c.Bands != 16 {
		t.Fatalf("defaults = %+v", c)
	}
	c = Config{MaxCandidateFrac: 0.2, Bands: 4}.WithDefaults()
	if c.MaxCandidateFrac != 0.2 || c.Bands != 4 {
		t.Fatalf("explicit config clobbered: %+v", c)
	}
}
