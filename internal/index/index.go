// Package index implements the candidate-pruning structures behind the
// sublinear query hot path: a per-shard inverted index from attribute id
// to the posting list of auxiliary users carrying that attribute, plus
// degree bands that bound the structural similarity terms for users the
// postings do not reach.
//
// The De-Health similarity (§III-B) is dominated by attribute overlap —
// the paper's default weighting puts 0.9 of the score on the Jaccard
// terms — and both Jaccard terms are exactly zero for an auxiliary user
// who shares no attribute with the query user. QueryUser can therefore
// gather the union of the query user's attribute postings, exact-rescore
// only those candidates, and skip everyone else whenever the structural
// terms alone (bounded per degree band by similarity.ScoreBoundNoAttr)
// provably cannot reach the current top-K threshold. When the proof fails
// — the candidate set is too large, fewer than K candidates exist, or a
// band's bound meets the threshold — the engine falls back to scanning
// exactly the users the proof does not cover, so pruned results are
// bit-identical to the full scan at every configuration (the parity
// contract established in PRs 1–3; see docs/ARCHITECTURE.md).
//
// An Index is immutable after Build: it covers the auxiliary side, which
// never grows (only the anonymized side is ingested online), so shards
// build their window's index once at partitioning time.
package index

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"dehealth/internal/stylometry"
)

// foldRange widens [*lo, *hi] to cover v.
func foldRange(lo, hi *float64, v float64) {
	if v < *lo {
		*lo = v
	}
	if v > *hi {
		*hi = v
	}
}

// Config tunes candidate pruning. The zero value takes the defaults.
type Config struct {
	// MaxCandidateFrac classifies a query as dense when its candidate set
	// exceeds this fraction of the window (counted under
	// Stats.DenseQueries). Dense queries still run the banded engine —
	// since the candidates are scored either way, finishing with the band
	// scan never exact-scores more users than the full scan the engine
	// used to fall back to, and the per-band norm ranges can still certify
	// partial skips over the zero-overlap remainder. Default 0.5.
	MaxCandidateFrac float64
	// Bands is the number of degree bands the window is cut into for the
	// structural-term bounds. More bands give tighter per-band degree
	// ranges (better skipping) at a slightly higher per-query check cost.
	// Default 16.
	Bands int
	// BlockSize is the width of the id-range structural blocks behind the
	// block-max (BMW) check of the approximate tier's cursor walk: block b
	// summarizes the degree and vector-norm ranges of window-local ids
	// [b*BlockSize, (b+1)*BlockSize), so the walk can bound — and skip —
	// a whole id range with one cached ScoreBoundBand call. Smaller blocks
	// give tighter per-range bounds at more block-bound evaluations.
	// Default 128.
	BlockSize int
}

// WithDefaults resolves zero fields to the default configuration.
func (c Config) WithDefaults() Config {
	if c.MaxCandidateFrac <= 0 {
		c.MaxCandidateFrac = 0.5
	}
	if c.Bands <= 0 {
		c.Bands = 16
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 128
	}
	return c
}

// Source is the window the index is built over: per-user attribute sets
// and (global) degrees, window-local ids in [0, NumUsers). A
// similarity.Scorer shard window satisfies the shape via its Aux*
// accessors; see dehealth/internal/shard for the adapter.
type Source interface {
	NumUsers() int
	Attrs(u int) stylometry.AttrSet
	Degree(u int) float64
	WeightedDegree(u int) float64
}

// NormSource is the optional Source extension supplying the precomputed
// L2 norms of each user's NCS, hop-closeness and weighted-closeness
// vectors — the same norm factors the flat scoring kernel divides by.
// When the source implements it, Build records per-band norm ranges that
// tighten the structural score bound (a band whose max norm is 0 provably
// contributes 0 for that cosine term); otherwise the ranges are recorded
// as unknown ([0, +Inf]) and the bound degrades to the cosine-≤-1 form.
type NormSource interface {
	NCSNorm(u int) float64
	CloseNorm(u int) float64
	WclNorm(u int) float64
}

// Band is a group of window-local users with adjacent degrees. DegLo..Hi
// and WdegLo..Hi bound every member's degree and weighted degree, and the
// norm ranges bound the members' NCS/closeness vector norms, so a single
// similarity.ScoreBoundBand call bounds the score of every member that
// shares no attribute with the query user.
type Band struct {
	// IDs lists the band's window-local user ids in ascending order.
	IDs []int32
	// DegLo and DegHi bound the members' degrees.
	DegLo, DegHi float64
	// WdegLo and WdegHi bound the members' weighted degrees.
	WdegLo, WdegHi float64
	// NCSNormLo and NCSNormHi bound the members' NCS vector L2 norms;
	// [0, +Inf] when the build source carried no norms (see NormSource).
	NCSNormLo, NCSNormHi float64
	// CloseNormLo and CloseNormHi bound the members' hop-closeness vector
	// L2 norms.
	CloseNormLo, CloseNormHi float64
	// WclNormLo and WclNormHi bound the members' weighted-closeness vector
	// L2 norms.
	WclNormLo, WclNormHi float64
}

// Block summarizes one fixed-width range of consecutive window-local ids
// for the block-max (BMW) check: block b covers ids
// [b*BlockSize, (b+1)*BlockSize) and the ranges bound every covered id's
// degree, weighted degree and vector norms — the same shape as a Band's
// bounds, but keyed by id range instead of degree rank. Because posting
// lists are ascending id sequences, one Block bounds the structural score
// of every document a cursor can produce inside the range, which is what
// lets the walk skip to the next block boundary without touching entries.
type Block struct {
	// DegLo and DegHi bound the covered ids' degrees.
	DegLo, DegHi float64
	// WdegLo and WdegHi bound the covered ids' weighted degrees.
	WdegLo, WdegHi float64
	// NCSNormLo and NCSNormHi bound the covered ids' NCS vector L2 norms;
	// [0, +Inf] when the build source carried no norms.
	NCSNormLo, NCSNormHi float64
	// CloseNormLo and CloseNormHi bound the hop-closeness vector norms.
	CloseNormLo, CloseNormHi float64
	// WclNormLo and WclNormHi bound the weighted-closeness vector norms.
	WclNormLo, WclNormHi float64
}

// Index is the frozen per-window pruning structure: attribute postings
// and degree bands. Safe for concurrent queries.
type Index struct {
	n        int
	cfg      Config    // resolved build configuration
	postings [][]int32 // postings[attr] = ascending window-local ids with attr
	bands    []Band
	bandOf   []int32 // bandOf[u] = index into bands of u's band
	blkSize  int     // id-range width of blocks; 0 = no block metadata
	blocks   []Block // blocks[b] covers ids [b*blkSize, (b+1)*blkSize)
	scratch  sync.Pool
}

// BuildConfig returns the resolved configuration the index was built
// under. Callers deciding whether an existing index can serve a new
// configuration compare the build-relevant field (Bands); the query-time
// field (MaxCandidateFrac) needs no rebuild.
func (x *Index) BuildConfig() Config { return x.cfg }

// Build constructs the index of a window. Cost is O(sum |A(u)|) for the
// postings plus O(n log n) for the degree banding; memory is one int32
// per (user, attribute) pair plus one per user.
func Build(src Source, cfg Config) *Index {
	cfg = cfg.WithDefaults()
	n := src.NumUsers()
	x := &Index{n: n, cfg: cfg}

	maxAttr := -1
	for u := 0; u < n; u++ {
		if idx := src.Attrs(u).Idx; len(idx) > 0 && idx[len(idx)-1] > maxAttr {
			maxAttr = idx[len(idx)-1]
		}
	}
	x.postings = make([][]int32, maxAttr+1)
	for u := 0; u < n; u++ {
		for _, a := range src.Attrs(u).Idx {
			x.postings[a] = append(x.postings[a], int32(u))
		}
	}

	// Degree bands: users sorted by (degree, weighted degree) and cut into
	// near-equal runs, so each band spans a tight degree range.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := src.Degree(int(order[a])), src.Degree(int(order[b]))
		if da != db {
			return da < db
		}
		return src.WeightedDegree(int(order[a])) < src.WeightedDegree(int(order[b]))
	})
	nb := cfg.Bands
	if nb > n {
		nb = n
	}
	if nb < 1 {
		nb = 1
	}
	if n == 0 {
		x.BuildBlocks(src, cfg.BlockSize)
		return x
	}
	norms, _ := src.(NormSource)
	x.bands = make([]Band, 0, nb)
	for i := 0; i < nb; i++ {
		lo, hi := i*n/nb, (i+1)*n/nb
		if lo == hi {
			continue
		}
		b := Band{IDs: append([]int32(nil), order[lo:hi]...)}
		b.DegLo, b.WdegLo = src.Degree(int(b.IDs[0])), src.WeightedDegree(int(b.IDs[0]))
		b.DegHi, b.WdegHi = b.DegLo, b.WdegLo
		for _, id := range b.IDs[1:] {
			foldRange(&b.DegLo, &b.DegHi, src.Degree(int(id)))
			foldRange(&b.WdegLo, &b.WdegHi, src.WeightedDegree(int(id)))
		}
		if norms != nil {
			first := int(b.IDs[0])
			b.NCSNormLo, b.NCSNormHi = norms.NCSNorm(first), norms.NCSNorm(first)
			b.CloseNormLo, b.CloseNormHi = norms.CloseNorm(first), norms.CloseNorm(first)
			b.WclNormLo, b.WclNormHi = norms.WclNorm(first), norms.WclNorm(first)
			for _, id := range b.IDs[1:] {
				foldRange(&b.NCSNormLo, &b.NCSNormHi, norms.NCSNorm(int(id)))
				foldRange(&b.CloseNormLo, &b.CloseNormHi, norms.CloseNorm(int(id)))
				foldRange(&b.WclNormLo, &b.WclNormHi, norms.WclNorm(int(id)))
			}
		} else {
			inf := math.Inf(1)
			b.NCSNormHi, b.CloseNormHi, b.WclNormHi = inf, inf, inf
		}
		sort.Slice(b.IDs, func(a, c int) bool { return b.IDs[a] < b.IDs[c] })
		x.bands = append(x.bands, b)
	}
	x.bandOf = make([]int32, n)
	for bi, b := range x.bands {
		for _, id := range b.IDs {
			x.bandOf[id] = int32(bi)
		}
	}
	x.BuildBlocks(src, cfg.BlockSize)
	return x
}

// BuildBlocks (re)computes the id-range block metadata from src at the
// given block width (<= 0 resolves to the default). Build calls it with
// the configured width; it is also the restore path for snapshots written
// before the block-max format (v1), whose indexes carry no block sections
// — the caller rebuilds them from the restored scorer window. Not safe
// concurrently with queries: install blocks before serving.
func (x *Index) BuildBlocks(src Source, blockSize int) {
	if blockSize <= 0 {
		blockSize = Config{BlockSize: blockSize}.WithDefaults().BlockSize
	}
	x.cfg.BlockSize = blockSize
	x.blkSize = blockSize
	nb := (x.n + blockSize - 1) / blockSize
	x.blocks = make([]Block, nb)
	norms, _ := src.(NormSource)
	for b := 0; b < nb; b++ {
		lo, hi := b*blockSize, (b+1)*blockSize
		if hi > x.n {
			hi = x.n
		}
		blk := Block{
			DegLo: src.Degree(lo), DegHi: src.Degree(lo),
			WdegLo: src.WeightedDegree(lo), WdegHi: src.WeightedDegree(lo),
		}
		if norms != nil {
			blk.NCSNormLo, blk.NCSNormHi = norms.NCSNorm(lo), norms.NCSNorm(lo)
			blk.CloseNormLo, blk.CloseNormHi = norms.CloseNorm(lo), norms.CloseNorm(lo)
			blk.WclNormLo, blk.WclNormHi = norms.WclNorm(lo), norms.WclNorm(lo)
		} else {
			inf := math.Inf(1)
			blk.NCSNormHi, blk.CloseNormHi, blk.WclNormHi = inf, inf, inf
		}
		for u := lo + 1; u < hi; u++ {
			foldRange(&blk.DegLo, &blk.DegHi, src.Degree(u))
			foldRange(&blk.WdegLo, &blk.WdegHi, src.WeightedDegree(u))
			if norms != nil {
				foldRange(&blk.NCSNormLo, &blk.NCSNormHi, norms.NCSNorm(u))
				foldRange(&blk.CloseNormLo, &blk.CloseNormHi, norms.CloseNorm(u))
				foldRange(&blk.WclNormLo, &blk.WclNormHi, norms.WclNorm(u))
			}
		}
		x.blocks[b] = blk
	}
}

// BlockSize returns the id-range width of the block metadata, 0 when the
// index carries none (a pre-v2 snapshot restore before BuildBlocks).
func (x *Index) BlockSize() int { return x.blkSize }

// Blocks returns the id-range structural blocks (shared; treat as
// read-only): Blocks()[b] covers window-local ids
// [b*BlockSize, (b+1)*BlockSize).
func (x *Index) Blocks() []Block { return x.blocks }

// Scratch is reusable per-query marking state: an epoch-stamped candidate
// marker (no O(window) zeroing between queries), the per-band candidate
// counts of the last Candidates call, and the candidate list's backing
// array. Acquire one per query from the index's pool and release it when
// the query's reads of Marked / BandCandidates / the returned candidate
// slice are done. A Scratch is owned by one goroutine at a time.
type Scratch struct {
	stamp    []uint32 // stamp[u] == epoch marks u a candidate this query
	epoch    uint32
	bandCand []int32
	cands    []int32
}

// AcquireScratch returns a scratch sized for the index, from a pool.
func (x *Index) AcquireScratch() *Scratch {
	if s, ok := x.scratch.Get().(*Scratch); ok && s != nil {
		return s
	}
	return &Scratch{stamp: make([]uint32, x.n), bandCand: make([]int32, len(x.bands))}
}

// ReleaseScratch returns s to the pool. Do not use s afterwards.
func (x *Index) ReleaseScratch(s *Scratch) { x.scratch.Put(s) }

// begin opens a new query epoch: marks from previous queries expire in
// O(1), with a full O(window) reset only on the ~4-billion-query epoch
// wraparound.
func (s *Scratch) begin() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	for i := range s.bandCand {
		s.bandCand[i] = 0
	}
	s.cands = s.cands[:0]
}

// Marked reports whether window-local user u was returned as a candidate
// by this scratch's last Candidates call.
func (s *Scratch) Marked(u int32) bool { return s.stamp[u] == s.epoch }

// BandCandidates returns how many of band b's members were candidates in
// this scratch's last Candidates call — len(Band.IDs) minus this is the
// number of zero-overlap members a certified skip avoids visiting.
func (s *Scratch) BandCandidates(b int) int { return int(s.bandCand[b]) }

// NumUsers returns the window size the index covers.
func (x *Index) NumUsers() int { return x.n }

// Bands returns the degree bands (shared; treat as read-only). Every
// window-local user appears in exactly one band.
func (x *Index) Bands() []Band { return x.bands }

// Postings returns attribute a's posting list (shared; treat as
// read-only), empty when no user carries a.
func (x *Index) Postings(a int) []int32 {
	if a < 0 || a >= len(x.postings) {
		return nil
	}
	return x.postings[a]
}

// Candidates returns the union of the posting lists of attrs — every
// window-local user sharing at least one attribute with the query set —
// marking each in s and counting them per band. The returned slice is
// backed by s (valid until the scratch's next Candidates call or its
// release) and is not sorted. Total cost is O(sum of visited posting
// lengths): no per-query pass over the window.
func (x *Index) Candidates(attrs stylometry.AttrSet, s *Scratch) []int32 {
	s.begin()
	for _, a := range attrs.Idx {
		for _, u := range x.Postings(a) {
			if s.stamp[u] != s.epoch {
				s.stamp[u] = s.epoch
				s.bandCand[x.bandOf[u]]++
				s.cands = append(s.cands, u)
			}
		}
	}
	return s.cands
}

// CandidateCount returns |Candidates(attrs)| — used for stats and
// candidate-set size distributions.
func (x *Index) CandidateCount(attrs stylometry.AttrSet) int {
	s := x.AcquireScratch()
	n := len(x.Candidates(attrs, s))
	x.ReleaseScratch(s)
	return n
}

// Stats are the cumulative pruning counters of a query engine (one struct
// per shard world, aggregated across shards and queries). All fields are
// monotone counts; see shard.World.PruneStats for the read side.
type Stats struct {
	// Queries counts per-shard pruned-path invocations.
	Queries int64
	// Fallbacks counts invocations that bailed to the full window scan
	// (no index, or a non-prune-safe similarity configuration).
	Fallbacks int64
	// DenseQueries counts invocations whose candidate set exceeded
	// MaxCandidateFrac of the window. They still run the banded engine —
	// the candidate rescore plus band scan never exact-scores more users
	// than the full scan it would otherwise repeat — but most of their
	// cost is the rescore, so the counter labels how often pruning ran in
	// the dense regime where only partial band skips are available.
	DenseQueries int64
	// Candidates sums the candidate-set sizes of non-fallback invocations.
	Candidates int64
	// Scanned sums the band members exact-scored because their band's
	// bound could not certify skipping (plus candidate rescores are counted
	// under Candidates, not here).
	Scanned int64
	// Skipped sums the users never scored: their band's structural bound
	// proved they cannot enter the top-K.
	Skipped int64
	// BandsChecked counts per-band bound evaluations (one ScoreBoundBand
	// call each); BandsSkipped counts how many of those certified a skip.
	// Their ratio is the direct read on how tight the band bounds are.
	BandsChecked int64
	// BandsSkipped counts bound evaluations that certified skipping the
	// band's zero-overlap members.
	BandsSkipped int64
}

// Snapshot returns an atomically read copy of the counters, safe to take
// while queries are updating them.
func (s *Stats) Snapshot() Stats {
	return Stats{
		Queries:      atomic.LoadInt64(&s.Queries),
		Fallbacks:    atomic.LoadInt64(&s.Fallbacks),
		DenseQueries: atomic.LoadInt64(&s.DenseQueries),
		Candidates:   atomic.LoadInt64(&s.Candidates),
		Scanned:      atomic.LoadInt64(&s.Scanned),
		Skipped:      atomic.LoadInt64(&s.Skipped),
		BandsChecked: atomic.LoadInt64(&s.BandsChecked),
		BandsSkipped: atomic.LoadInt64(&s.BandsSkipped),
	}
}
