// Tests for the walk's two refinements: the block-max check (SetBlocks)
// and essential-list demotion. The reference model gives every document a
// true structural value sv[d] <= base; a block's bound is the max sv over
// its id range (admissible by construction), the global base is admissible
// for everything, and a document's true bound sum is sv[d] plus the bounds
// of every list containing it. The block walk must return a subset of the
// plain walk (its bounds are tighter), a superset of the documents whose
// true bound sum beats theta (its bounds are admissible), and keep the
// posting-conservation accounting exact.

package index

import (
	"math"
	"math/rand"
	"testing"
)

// blockBounds computes the reference per-block structural bounds: the max
// of sv over each id range of size bs.
func blockBounds(sv []float64, bs int) []float64 {
	nb := (len(sv) + bs - 1) / bs
	out := make([]float64, nb)
	for b := range out {
		lo, hi := b*bs, (b+1)*bs
		if hi > len(sv) {
			hi = len(sv)
		}
		m := math.Inf(-1)
		for _, v := range sv[lo:hi] {
			if v > m {
				m = v
			}
		}
		out[b] = m
	}
	return out
}

// trueSums is boundSums with a per-document structural value instead of
// the shared base: the tightest admissible bound the test model defines.
func trueSums(lists [][]int32, ubs []float64, sv []float64) []float64 {
	sums := make([]float64, len(sv))
	copy(sums, sv)
	for i, post := range lists {
		for _, d := range post {
			sums[d] += ubs[i]
		}
	}
	return sums
}

// newBlockCursors builds a cursor set with blocks installed over the
// reference bounds.
func newBlockCursors(lists [][]int32, ubs []float64, base float64, bb []float64, bs int) *Cursors {
	c := NewCursors(base)
	for i, post := range lists {
		c.Add(post, ubs[i])
	}
	c.SetBlocks(bs, func(b int) float64 { return bb[b] })
	return c
}

// checkBlockWalk verifies one fixed-threshold block walk against the
// plain walk and the true per-document bounds.
func checkBlockWalk(t *testing.T, lists [][]int32, ubs []float64, base float64, sv []float64, bs int, theta float64) {
	t.Helper()
	n := len(sv)
	total := 0
	member := make([]int, n)
	for _, post := range lists {
		total += len(post)
		for _, d := range post {
			member[d]++
		}
	}

	plainCur := NewCursors(base)
	for i, post := range lists {
		plainCur.Add(post, ubs[i])
	}
	plain := drain(plainCur, theta)

	bb := blockBounds(sv, bs)
	cur := newBlockCursors(lists, ubs, base, bb, bs)
	var got []int32
	for {
		d, ok := cur.Next(theta)
		if !ok {
			break
		}
		// The emitted document's reported bound must be admissible (at
		// least the true bound) and above theta.
		eps := 1e-9 * math.Max(1, math.Abs(theta))
		if cb := cur.CandidateBound(); cb <= theta-eps {
			t.Fatalf("id %d emitted with CandidateBound %v <= theta %v", d, cb, theta)
		}
		got = append(got, d)
	}

	eps := 1e-9 * math.Max(1, math.Abs(theta))
	truth := trueSums(lists, ubs, sv)
	inPlain := make(map[int32]bool, len(plain))
	for _, d := range plain {
		inPlain[d] = true
	}
	returned := make([]bool, n)
	consumed := int64(0)
	for i, d := range got {
		if i > 0 && d <= got[i-1] {
			t.Fatalf("block walk ids not strictly ascending: %d then %d", got[i-1], d)
		}
		if !inPlain[d] {
			t.Fatalf("block walk returned id %d the plain walk did not (blocks can only skip more)", d)
		}
		// Emission demands the walk's own bound — min(base, block) plus
		// covering list bounds — to beat theta.
		wb := math.Min(base, bb[int(d)/bs]) + truth[d] - sv[int(d)]
		if wb <= theta-eps {
			t.Fatalf("id %d returned with block bound sum %v <= theta %v", d, wb, theta)
		}
		returned[d] = true
		consumed += int64(member[d])
	}
	for d := range truth {
		if member[d] > 0 && truth[d] > theta+eps && !returned[d] {
			t.Fatalf("id %d (true bound sum %v > theta %v) was skipped by the block walk", d, truth[d], theta)
		}
	}
	if cur.Skipped()+consumed != int64(total) {
		t.Fatalf("theta %v bs %d: skipped %d + consumed %d != total %d", theta, bs, cur.Skipped(), consumed, total)
	}
	if cur.BlocksSkipped() > cur.BlocksChecked() {
		t.Fatalf("BlocksSkipped %d > BlocksChecked %d", cur.BlocksSkipped(), cur.BlocksChecked())
	}
}

// TestCursorsBlocksDegenerate pins the no-information case: block bounds
// equal to the global base must leave the walk bit-identical to the plain
// one — same documents, same order, same skip accounting — because the
// block check can then never beat the pivot condition that emitted the
// candidate.
func TestCursorsBlocksDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 40 + rng.Intn(160)
		lists := genPostings(rng, 1+rng.Intn(6), n, 0.05+0.4*rng.Float64())
		ubs := make([]float64, len(lists))
		for i := range ubs {
			ubs[i] = rng.Float64()
		}
		base := rng.Float64()
		theta := base + float64(len(lists))*rng.Float64()

		plainCur := NewCursors(base)
		for i, post := range lists {
			plainCur.Add(post, ubs[i])
		}
		plain := drain(plainCur, theta)

		bs := 1 + rng.Intn(64)
		flat := make([]float64, (n+bs-1)/bs)
		for i := range flat {
			flat[i] = base
		}
		cur := newBlockCursors(lists, ubs, base, flat, bs)
		got := drain(cur, theta)

		if len(got) != len(plain) {
			t.Fatalf("trial %d: degenerate block walk returned %d ids, plain %d", trial, len(got), len(plain))
		}
		for i := range got {
			if got[i] != plain[i] {
				t.Fatalf("trial %d: degenerate block walk diverged at %d: %d vs %d", trial, i, got[i], plain[i])
			}
		}
		if cur.Skipped() != plainCur.Skipped() {
			t.Fatalf("trial %d: degenerate block walk skipped %d, plain %d", trial, cur.Skipped(), plainCur.Skipped())
		}
		if cur.BlocksSkipped() != 0 {
			t.Fatalf("trial %d: base-valued block bounds certified %d skips", trial, cur.BlocksSkipped())
		}
	}
}

// TestCursorsBlocksTightened drives randomized sparse, dense and skewed
// posting shapes with informative per-block bounds through the full
// subset/superset/conservation check.
func TestCursorsBlocksTightened(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	shapes := []struct {
		name    string
		nLists  int
		density float64
	}{
		{"sparse", 6, 0.03},
		{"dense", 4, 0.6},
		{"skewed", 8, 0.15},
	}
	for _, shape := range shapes {
		for trial := 0; trial < 15; trial++ {
			n := 60 + rng.Intn(200)
			lists := genPostings(rng, shape.nLists, n, shape.density)
			ubs := make([]float64, len(lists))
			for i := range ubs {
				ubs[i] = rng.Float64()
				if shape.name == "skewed" && i%2 == 0 {
					ubs[i] *= 0.01 // most bound mass on half the lists
				}
			}
			base := 0.2 + rng.Float64()
			sv := make([]float64, n)
			for d := range sv {
				sv[d] = rng.Float64() * base
			}
			if shape.name == "skewed" {
				// Id-correlated structure: early blocks carry the mass, so
				// block bounds genuinely certify range skips.
				for d := range sv {
					sv[d] *= float64(n-d) / float64(n)
				}
			}
			bs := 8 + rng.Intn(56)
			for _, theta := range []float64{base * 0.5, base, base + 0.5, base + 1.5, math.Inf(-1)} {
				checkBlockWalk(t, lists, ubs, base, sv, bs, theta)
			}
		}
	}
}

// TestCursorsDemotionSkewed forces essential-list demotion — skewed bound
// mass and a threshold high enough that low-bound lists cannot matter —
// and checks the walk stays exact while actually demoting.
func TestCursorsDemotionSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 20; trial++ {
		n := 100 + rng.Intn(150)
		lists := genPostings(rng, 6, n, 0.3)
		ubs := []float64{1.0, 0.9, 0.01, 0.02, 0.005, 0.03}[:len(lists)]
		base := 0.5
		theta := base + 0.95 // above base + every small ub, below base + big ubs

		total := 0
		for _, post := range lists {
			total += len(post)
		}
		sums := boundSums(lists, ubs, base, n)
		c := NewCursors(base)
		for i, post := range lists {
			c.Add(post, ubs[i])
		}
		got := drain(c, theta)
		checkSurvivors(t, got, lists, sums, theta, total, c.Skipped())
		if c.Demoted() == 0 {
			t.Fatalf("trial %d: no cursor demoted at theta %v with skewed bounds %v", trial, theta, ubs)
		}
	}
}

// TestCursorsBlocksRisingThreshold runs the block walk under a monotone
// rising bar — the real callers' regime — asserting the rising-threshold
// guarantee against true bounds: any document whose true bound sum beats
// the final bar must have been returned at some point.
func TestCursorsBlocksRisingThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 15; trial++ {
		n := 80 + rng.Intn(200)
		lists := genPostings(rng, 5, n, 0.25)
		ubs := make([]float64, len(lists))
		for i := range ubs {
			ubs[i] = rng.Float64()
		}
		base := 0.3 + rng.Float64()
		sv := make([]float64, n)
		for d := range sv {
			sv[d] = rng.Float64() * base
		}
		bs := 16 + rng.Intn(48)
		bb := blockBounds(sv, bs)
		cur := newBlockCursors(lists, ubs, base, bb, bs)

		theta := math.Inf(-1)
		final := theta
		returned := make([]bool, n)
		for {
			d, ok := cur.Next(theta)
			if !ok {
				break
			}
			returned[d] = true
			// Ratchet the bar upward like a filling top-K heap would.
			if bump := theta + 0.05 + 0.1*rng.Float64(); math.IsInf(theta, -1) {
				theta = 0.1 * rng.Float64()
			} else if bump < base+2 {
				theta = bump
			}
			final = theta
		}
		truth := trueSums(lists, ubs, sv)
		member := make([]int, n)
		for _, post := range lists {
			for _, d := range post {
				member[d]++
			}
		}
		eps := 1e-9 * math.Max(1, math.Abs(final))
		for d := range truth {
			if member[d] > 0 && truth[d] > final+eps && !returned[d] {
				t.Fatalf("trial %d: id %d (true bound %v > final bar %v) never returned", trial, d, truth[d], final)
			}
		}
	}
}

// FuzzCursorsBlockMax fuzzes the block walk across list count, density,
// block size and threshold, re-running the full subset/superset/
// conservation check of checkBlockWalk on every input.
func FuzzCursorsBlockMax(f *testing.F) {
	f.Add(int64(1), 4, 100, 64, 16, 100)
	f.Add(int64(9), 8, 250, 200, 1, 30)
	f.Add(int64(-3), 2, 60, 10, 128, 250)
	f.Fuzz(func(t *testing.T, seed int64, nLists, n, density, bs, thetaPct int) {
		if nLists < 1 || nLists > 12 || n < 1 || n > 400 {
			t.Skip()
		}
		if bs < 1 || bs > 256 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		p := float64(((density % 256) + 256) % 256)
		lists := genPostings(rng, nLists, n, p/255)
		ubs := make([]float64, nLists)
		for i := range ubs {
			ubs[i] = rng.Float64()
		}
		base := rng.Float64()
		sv := make([]float64, n)
		for d := range sv {
			sv[d] = rng.Float64() * base
		}
		tp := float64(((thetaPct % 400) + 400) % 400)
		theta := (base + float64(nLists)) * tp / 300
		checkBlockWalk(t, lists, ubs, base, sv, bs, theta)
	})
}
