package index

import (
	"reflect"
	"testing"
)

// TestPartsRoundTrip pins the index half of the snapshot contract:
// flattening an index and rebuilding it from the parts reproduces the
// complete state — postings, bands, band membership and configuration.
func TestPartsRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		src := randomSource(60, 50, 4, seed)
		x := Build(src, Config{})
		p := x.Parts()
		r, err := FromParts(p)
		if err != nil {
			t.Fatalf("seed %d: FromParts: %v", seed, err)
		}
		if r.NumUsers() != x.NumUsers() {
			t.Fatalf("seed %d: restored index covers %d users, original %d", seed, r.NumUsers(), x.NumUsers())
		}
		if r.BuildConfig() != x.BuildConfig() {
			t.Fatalf("seed %d: restored config %+v, original %+v", seed, r.BuildConfig(), x.BuildConfig())
		}
		if !reflect.DeepEqual(r.Parts(), p) {
			t.Fatalf("seed %d: restored parts differ from the original flattening", seed)
		}
	}
}

// TestFromPartsRejectsMalformed pins the validation: structurally broken
// parts are rejected instead of building an index that would scan wrong.
func TestFromPartsRejectsMalformed(t *testing.T) {
	base := Build(randomSource(30, 40, 3, 2), Config{}).Parts()

	ids := base
	ids.PostIDs = append([]int32{}, base.PostIDs...)
	if len(ids.PostIDs) > 1 {
		ids.PostIDs[0], ids.PostIDs[1] = ids.PostIDs[1], ids.PostIDs[0] // breaks ascending order in some posting
	}
	okSwapped := true
	// The swap only breaks order when the two ids share a posting list;
	// force a definite violation instead: duplicate the first id.
	ids.PostIDs = append([]int32{}, base.PostIDs...)
	for a := 0; a+1 < len(ids.PostOff); a++ {
		if ids.PostOff[a+1]-ids.PostOff[a] >= 2 {
			ids.PostIDs[ids.PostOff[a]+1] = ids.PostIDs[ids.PostOff[a]]
			okSwapped = false
			break
		}
	}
	if !okSwapped {
		if _, err := FromParts(ids); err == nil {
			t.Error("non-ascending posting list accepted")
		}
	}

	off := base
	off.PostOff = append([]int{}, base.PostOff...)
	off.PostOff[len(off.PostOff)-1]++
	if _, err := FromParts(off); err == nil {
		t.Error("posting offsets past the flat array accepted")
	}

	band := base
	band.BandOf = append([]int32{}, base.BandOf...)
	if len(band.BandOf) > 0 {
		band.BandOf[0] = int32(len(band.BandOff)) // out of range band
		if _, err := FromParts(band); err == nil {
			t.Error("out-of-range band membership accepted")
		}
	}

	short := base
	short.BandMeta = base.BandMeta[:len(base.BandMeta)-1]
	if _, err := FromParts(short); err == nil {
		t.Error("short band metadata accepted")
	}
}
