// Package bipartite implements maximum-weight bipartite matching, the
// primitive behind the paper's "graph matching based selection" of Top-K
// candidate sets (§III-B, Step 2): repeatedly find a maximum-weight matching
// between anonymized and auxiliary users and peel the matched pairs into the
// candidate sets.
//
// MaxWeightMatching is an exact O(n^3) Hungarian algorithm (shortest
// augmenting paths with potentials); GreedyMatching is an O(E log E)
// approximation for large instances.
package bipartite

import (
	"math"
	"sort"
)

// MaxWeightMatching computes a maximum-weight matching of the complete
// bipartite graph whose weights are given by w (rows = left side, columns =
// right side). Every left node is matched when len(w) <= len(w[0]); the
// returned slice maps each left node to its matched right node (or -1 if
// there are more left nodes than right nodes and the node stayed unmatched).
//
// Weights may be any finite float64; the matching maximizes the total
// weight over all perfect-on-the-smaller-side matchings.
func MaxWeightMatching(w [][]float64) []int {
	n := len(w)
	if n == 0 {
		return nil
	}
	m := len(w[0])
	transposed := false
	if n > m {
		// Hungarian below needs rows <= cols; transpose and invert at the end.
		wt := make([][]float64, m)
		for j := 0; j < m; j++ {
			wt[j] = make([]float64, n)
			for i := 0; i < n; i++ {
				wt[j][i] = w[i][j]
			}
		}
		w = wt
		n, m = m, n
		transposed = true
	}

	// Convert to a minimization problem: cost = maxW - w.
	maxW := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if w[i][j] > maxW {
				maxW = w[i][j]
			}
		}
	}
	if math.IsInf(maxW, -1) {
		maxW = 0
	}

	// Hungarian algorithm with row/column potentials (1-indexed internals).
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j] = row matched to column j
	way := make([]int, m+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := (maxW - w[i0-1][j-1]) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			match[p[j]-1] = j - 1
		}
	}
	if !transposed {
		return match
	}
	// Invert: original left side had len(w[0]) nodes (now columns).
	inv := make([]int, m)
	for i := range inv {
		inv[i] = -1
	}
	for i, j := range match {
		if j >= 0 {
			inv[j] = i
		}
	}
	return inv
}

// GreedyMatching approximates maximum-weight matching by taking edges in
// decreasing weight order. It is a 1/2-approximation and runs in
// O(nm log(nm)); use it when the exact algorithm is too slow. The returned
// slice maps left nodes to right nodes (-1 = unmatched).
func GreedyMatching(w [][]float64) []int {
	n := len(w)
	if n == 0 {
		return nil
	}
	m := len(w[0])
	type edge struct {
		i, j int
		w    float64
	}
	edges := make([]edge, 0, n*m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			edges = append(edges, edge{i, j, w[i][j]})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].w != edges[b].w {
			return edges[a].w > edges[b].w
		}
		if edges[a].i != edges[b].i {
			return edges[a].i < edges[b].i
		}
		return edges[a].j < edges[b].j
	})
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	usedR := make([]bool, m)
	remaining := n
	if m < n {
		remaining = m
	}
	for _, e := range edges {
		if remaining == 0 {
			break
		}
		if match[e.i] < 0 && !usedR[e.j] {
			match[e.i] = e.j
			usedR[e.j] = true
			remaining--
		}
	}
	return match
}

// MatchingWeight sums the weights of the matching (left->right) under w.
func MatchingWeight(w [][]float64, match []int) float64 {
	var total float64
	for i, j := range match {
		if j >= 0 {
			total += w[i][j]
		}
	}
	return total
}
