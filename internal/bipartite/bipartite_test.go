package bipartite

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForceBest returns the maximum total weight over all matchings that
// saturate the smaller side (n <= 8 feasible).
func bruteForceBest(w [][]float64) float64 {
	n, m := len(w), len(w[0])
	if n <= m {
		used := make([]bool, m)
		return bruteRows(w, 0, used)
	}
	// Transpose.
	wt := make([][]float64, m)
	for j := range wt {
		wt[j] = make([]float64, n)
		for i := 0; i < n; i++ {
			wt[j][i] = w[i][j]
		}
	}
	used := make([]bool, n)
	return bruteRows(wt, 0, used)
}

func bruteRows(w [][]float64, row int, used []bool) float64 {
	if row == len(w) {
		return 0
	}
	best := math.Inf(-1)
	for j := range w[row] {
		if used[j] {
			continue
		}
		used[j] = true
		if v := w[row][j] + bruteRows(w, row+1, used); v > best {
			best = v
		}
		used[j] = false
	}
	return best
}

func TestMaxWeightMatchingKnown(t *testing.T) {
	w := [][]float64{
		{10, 1},
		{1, 10},
	}
	m := MaxWeightMatching(w)
	if m[0] != 0 || m[1] != 1 {
		t.Errorf("matching = %v, want [0 1]", m)
	}
	// Anti-diagonal optimum.
	w2 := [][]float64{
		{1, 10},
		{10, 1},
	}
	m2 := MaxWeightMatching(w2)
	if m2[0] != 1 || m2[1] != 0 {
		t.Errorf("matching = %v, want [1 0]", m2)
	}
}

func TestMaxWeightMatchingGreedyTrap(t *testing.T) {
	// Greedy picks (0,0)=9 then (1,1)=1 => 10; optimum is 8+8=16.
	w := [][]float64{
		{9, 8},
		{8, 1},
	}
	m := MaxWeightMatching(w)
	if MatchingWeight(w, m) != 16 {
		t.Errorf("exact matching weight = %v, want 16 (matching %v)", MatchingWeight(w, m), m)
	}
}

func TestMaxWeightMatchingRectangular(t *testing.T) {
	// More columns than rows: every row matched.
	w := [][]float64{
		{1, 5, 3},
		{5, 1, 2},
	}
	m := MaxWeightMatching(w)
	if m[0] != 1 || m[1] != 0 {
		t.Errorf("matching = %v", m)
	}
	// More rows than columns: one row unmatched.
	wt := [][]float64{
		{1, 5},
		{5, 1},
		{4, 4},
	}
	mt := MaxWeightMatching(wt)
	matched := 0
	seen := map[int]bool{}
	for _, j := range mt {
		if j >= 0 {
			matched++
			if seen[j] {
				t.Fatalf("column %d matched twice: %v", j, mt)
			}
			seen[j] = true
		}
	}
	if matched != 2 {
		t.Errorf("matched %d rows, want 2: %v", matched, mt)
	}
}

func TestMaxWeightMatchingEmpty(t *testing.T) {
	if MaxWeightMatching(nil) != nil {
		t.Error("empty input must return nil")
	}
}

func TestNegativeWeights(t *testing.T) {
	w := [][]float64{
		{-1, -10},
		{-10, -1},
	}
	m := MaxWeightMatching(w)
	if MatchingWeight(w, m) != -2 {
		t.Errorf("weight = %v, want -2", MatchingWeight(w, m))
	}
}

// Property: the Hungarian result equals brute force on random small
// matrices.
func TestMatchingOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, m)
			for j := range w[i] {
				w[i][j] = math.Round(rng.Float64()*100) / 10
			}
		}
		got := MatchingWeight(w, MaxWeightMatching(w))
		want := bruteForceBest(w)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: matchings are injective and within bounds.
func TestMatchingValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(8)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, m)
			for j := range w[i] {
				w[i][j] = rng.NormFloat64()
			}
		}
		for _, match := range [][]int{MaxWeightMatching(w), GreedyMatching(w)} {
			if len(match) != n {
				return false
			}
			seen := map[int]bool{}
			matched := 0
			for _, j := range match {
				if j < -1 || j >= m {
					return false
				}
				if j >= 0 {
					if seen[j] {
						return false
					}
					seen[j] = true
					matched++
				}
			}
			if want := minInt(n, m); matched != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: greedy achieves at least half the optimal weight for
// non-negative weights.
func TestGreedyHalfApproxProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, m)
			for j := range w[i] {
				w[i][j] = rng.Float64() * 10
			}
		}
		greedy := MatchingWeight(w, GreedyMatching(w))
		opt := bruteForceBest(w)
		return greedy >= opt/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
