package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func params(gap, width float64, n int) Params {
	return Params{
		Lambda:    0.5 - gap/2,
		LambdaBar: 0.5 + gap/2,
		Theta:     width,
		ThetaBar:  width,
		N1:        n,
		N2:        n,
	}
}

func TestValidate(t *testing.T) {
	if err := params(0.4, 0.1, 100).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := params(0, 0.1, 100)
	if err := bad.Validate(); err == nil {
		t.Error("λ == λ̄ accepted")
	}
	bad2 := params(0.4, 0.1, 100)
	bad2.Theta = -1
	if err := bad2.Validate(); err == nil {
		t.Error("negative θ accepted")
	}
	bad3 := params(0.4, 0, 100)
	if err := bad3.Validate(); err == nil {
		t.Error("δ == 0 accepted")
	}
}

func TestDeltaAndGap(t *testing.T) {
	p := Params{Lambda: 0.2, LambdaBar: 0.7, Theta: 0.3, ThetaBar: 0.1}
	if p.Delta() != 0.3 {
		t.Errorf("Delta = %v", p.Delta())
	}
	if math.Abs(p.Gap()-0.5) > 1e-12 {
		t.Errorf("Gap = %v", p.Gap())
	}
}

func TestBoundsIncreaseWithGap(t *testing.T) {
	// Larger separation => stronger guarantees, monotone in the gap.
	prevT1, prevEx, prevTopK := -1.0, -1.0, -1.0
	for _, gap := range []float64{0.1, 0.2, 0.4, 0.6, 0.8} {
		p := params(gap, 0.1, 100)
		t1 := PairwiseSuccessLB(p)
		ex := ExactSuccessLB(p)
		tk := TopKSuccessLB(p, 10)
		if t1 < prevT1 || ex < prevEx || tk < prevTopK {
			t.Errorf("bounds not monotone at gap %v", gap)
		}
		prevT1, prevEx, prevTopK = t1, ex, tk
	}
}

func TestBoundsClamped(t *testing.T) {
	// Tiny gap, huge range: the Chernoff bound is vacuous; must clamp to 0.
	p := params(0.01, 1, 1000)
	for _, b := range []float64{
		PairwiseSuccessLB(p),
		ExactSuccessLB(p),
		TopKSuccessLB(p, 5),
		GroupSuccessLB(p, 0.5),
		GroupTopKSuccessLB(p, 0.5, 5),
	} {
		if b < 0 || b > 1 {
			t.Errorf("bound %v out of [0,1]", b)
		}
	}
}

func TestTopKDegenerate(t *testing.T) {
	p := params(0.2, 0.2, 50)
	if TopKSuccessLB(p, 50) != 1 {
		t.Error("K = n2 must give probability 1")
	}
	if TopKSuccessLB(p, 100) != 1 {
		t.Error("K > n2 must give probability 1")
	}
	if !AASTopKCondition(p, 50) {
		t.Error("K >= n2 condition must hold trivially")
	}
}

func TestTopKEasierThanExact(t *testing.T) {
	// Top-K success dominates exact success for every K >= 1.
	for _, gap := range []float64{0.2, 0.4, 0.6} {
		p := params(gap, 0.15, 200)
		ex := ExactSuccessLB(p)
		for _, k := range []int{1, 10, 100} {
			if TopKSuccessLB(p, k) < ex-1e-12 {
				t.Errorf("TopK(%d) bound below exact bound at gap %v", k, gap)
			}
		}
	}
}

func TestGroupHarderThanSingle(t *testing.T) {
	p := params(0.6, 0.05, 100)
	if GroupSuccessLB(p, 1.0) > ExactSuccessLB(p)+1e-12 {
		t.Error("de-anonymizing everyone cannot be easier than one user")
	}
	if GroupSuccessLB(p, 0) != 0 {
		t.Error("alpha = 0 must return 0")
	}
	if GroupSuccessLB(p, 2) != 0 {
		t.Error("alpha > 1 must return 0")
	}
}

func TestAASConditions(t *testing.T) {
	// Enormous gap, tiny ranges: all conditions hold.
	strong := Params{Lambda: 0, LambdaBar: 1, Theta: 0.01, ThetaBar: 0.01, N1: 100, N2: 100}
	if !AASPairwiseCondition(strong) || !AASExactCondition(strong) ||
		!AASGroupCondition(strong, 0.5) || !AASTopKCondition(strong, 5) ||
		!AASGroupTopKCondition(strong, 0.5, 5) {
		t.Error("strong separation must satisfy all a.a.s. conditions")
	}
	// Overlapping distributions: none hold.
	weak := params(0.05, 0.5, 100)
	if AASPairwiseCondition(weak) || AASExactCondition(weak) ||
		AASGroupCondition(weak, 0.5) || AASTopKCondition(weak, 5) {
		t.Error("weak separation must fail the a.a.s. conditions")
	}
}

// The soundness check: Monte-Carlo estimates of the true success
// probabilities must dominate every lower bound.
func TestBoundsSoundAgainstSimulation(t *testing.T) {
	configs := []Params{
		params(0.6, 0.1, 50),
		params(0.4, 0.15, 100),
		params(0.3, 0.2, 80),
		params(0.2, 0.25, 60),
	}
	const trials = 4000
	for i, p := range configs {
		sim := NewSimulator(p, int64(i))
		if est, lb := sim.EstimatePairwise(trials), PairwiseSuccessLB(p); est < lb-0.02 {
			t.Errorf("config %d: pairwise estimate %v below bound %v", i, est, lb)
		}
		if est, lb := sim.EstimateExact(trials/4), ExactSuccessLB(p); est < lb-0.02 {
			t.Errorf("config %d: exact estimate %v below bound %v", i, est, lb)
		}
		if est, lb := sim.EstimateTopK(trials/4, 10), TopKSuccessLB(p, 10); est < lb-0.02 {
			t.Errorf("config %d: topK estimate %v below bound %v", i, est, lb)
		}
		if est, lb := sim.EstimateGroup(trials/8, 0.2), GroupSuccessLB(p, 0.2); est < lb-0.05 {
			t.Errorf("config %d: group estimate %v below bound %v", i, est, lb)
		}
	}
}

// Property: for random separated configurations the Theorem 1 bound never
// exceeds the simulated pairwise success rate.
func TestPairwiseBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gap := 0.2 + 0.6*rng.Float64()
		width := 0.05 + 0.2*rng.Float64()
		p := params(gap, width, 50)
		sim := NewSimulator(p, seed)
		return sim.EstimatePairwise(1500) >= PairwiseSuccessLB(p)-0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The argmax direction: when λ > λ̄ the model picks the largest f instead.
func TestInvertedDistance(t *testing.T) {
	p := Params{Lambda: 0.8, LambdaBar: 0.2, Theta: 0.1, ThetaBar: 0.1, N1: 50, N2: 50}
	sim := NewSimulator(p, 3)
	if est := sim.EstimatePairwise(2000); est < 0.95 {
		t.Errorf("inverted-direction success estimate %v, want ~1", est)
	}
	if est := sim.EstimateExact(500); est < 0.9 {
		t.Errorf("inverted-direction exact estimate %v", est)
	}
}

func TestGroupTopKBounds(t *testing.T) {
	p := params(0.5, 0.1, 100)
	// Group Top-K is no easier than group-exact at K >= 1 and no harder
	// than single-user Top-K.
	if GroupTopKSuccessLB(p, 0.5, 10) < GroupSuccessLB(p, 0.5)-1e-12 {
		t.Error("group Top-K bound below group exact bound")
	}
	if GroupTopKSuccessLB(p, 1.0/float64(p.N1), 10) > TopKSuccessLB(p, 10)+1e-9 {
		// α = 1/n1 is a single user: bounds should essentially coincide
		// (the group bound is the looser union bound).
		t.Log("note: single-user group bound exceeds Top-K bound; acceptable slack")
	}
	if GroupTopKSuccessLB(p, 0, 10) != 0 || GroupTopKSuccessLB(p, 2, 10) != 0 {
		t.Error("invalid alpha must return 0")
	}
	if GroupTopKSuccessLB(p, 0.5, p.N2) != 1 {
		t.Error("K = n2 must give probability 1")
	}
}

func TestGroupTopKConditionMonotone(t *testing.T) {
	// A growing gap eventually satisfies the condition; once satisfied it
	// stays satisfied for larger gaps.
	satisfied := false
	for gap := 0.05; gap <= 3.0; gap += 0.05 {
		p := Params{Lambda: 0, LambdaBar: gap, Theta: 0.1, ThetaBar: 0.1, N1: 50, N2: 50}
		ok := AASGroupTopKCondition(p, 0.5, 5)
		if satisfied && !ok {
			t.Fatalf("condition flipped back to false at gap %v", gap)
		}
		if ok {
			satisfied = true
		}
	}
	if !satisfied {
		t.Error("condition never satisfied even at huge gaps")
	}
}
