package analysis

import (
	"math/rand"
)

// Simulator draws synthetic distance values matching a Params configuration
// and measures empirical DA success rates, validating that the §IV bounds
// hold (the empirical probability must dominate each lower bound).
//
// Correct-pair distances are uniform on [λ−θ/2, λ+θ/2]; incorrect-pair
// distances are uniform on [λ̄−θ̄/2, λ̄+θ̄/2]. Uniform laws are the worst
// case consistent with the (mean, range) abstraction the theorems use.
type Simulator struct {
	P   Params
	rng *rand.Rand
}

// NewSimulator creates a Simulator seeded deterministically.
func NewSimulator(p Params, seed int64) *Simulator {
	return &Simulator{P: p, rng: rand.New(rand.NewSource(seed))}
}

func (s *Simulator) correct() float64 {
	return s.P.Lambda + s.P.Theta*(s.rng.Float64()-0.5)
}

func (s *Simulator) incorrect() float64 {
	return s.P.LambdaBar + s.P.ThetaBar*(s.rng.Float64()-0.5)
}

// argminWins reports whether the DA model (argmin f when λ < λ̄, argmax
// otherwise) picks the true mapping among the true pair and others
// incorrect candidates.
func (s *Simulator) argminWins(others int) bool {
	fu := s.correct()
	if s.P.Lambda < s.P.LambdaBar {
		for i := 0; i < others; i++ {
			if s.incorrect() <= fu {
				return false
			}
		}
		return true
	}
	for i := 0; i < others; i++ {
		if s.incorrect() >= fu {
			return false
		}
	}
	return true
}

// EstimatePairwise estimates Pr(u -> u' from {u', v}) over trials runs
// (Theorem 1 validation).
func (s *Simulator) EstimatePairwise(trials int) float64 {
	wins := 0
	for i := 0; i < trials; i++ {
		if s.argminWins(1) {
			wins++
		}
	}
	return float64(wins) / float64(trials)
}

// EstimateExact estimates Pr(u -> u' from V2) (Corollary 2 validation): the
// true pair must beat all n2−1 incorrect candidates.
func (s *Simulator) EstimateExact(trials int) float64 {
	wins := 0
	for i := 0; i < trials; i++ {
		if s.argminWins(s.P.N2 - 1) {
			wins++
		}
	}
	return float64(wins) / float64(trials)
}

// EstimateTopK estimates Pr(u -> Cu), the probability that at most K−1
// incorrect candidates beat the true mapping (Theorem 3 validation).
func (s *Simulator) EstimateTopK(trials, k int) float64 {
	wins := 0
	for t := 0; t < trials; t++ {
		fu := s.correct()
		beat := 0
		for i := 0; i < s.P.N2-1 && beat < k; i++ {
			fv := s.incorrect()
			if (s.P.Lambda < s.P.LambdaBar && fv <= fu) ||
				(s.P.Lambda > s.P.LambdaBar && fv >= fu) {
				beat++
			}
		}
		if beat < k {
			wins++
		}
	}
	return float64(wins) / float64(trials)
}

// EstimateGroup estimates Pr(Δ1 is α-re-identifiable): every one of the
// ⌈αn1⌉ users must be exactly de-anonymized (Theorem 2 validation).
func (s *Simulator) EstimateGroup(trials int, alpha float64) float64 {
	users := int(alpha * float64(s.P.N1))
	if users < 1 {
		users = 1
	}
	wins := 0
	for t := 0; t < trials; t++ {
		ok := true
		for u := 0; u < users && ok; u++ {
			ok = s.argminWins(s.P.N2 - 1)
		}
		if ok {
			wins++
		}
	}
	return float64(wins) / float64(trials)
}
