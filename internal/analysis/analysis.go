// Package analysis implements the paper's theoretical framework (§IV):
// Chernoff-style lower bounds on the probability of successful exact and
// Top-K de-anonymization (Theorems 1–4) and the asymptotic (a.a.s.)
// conditions of Corollaries 1–3, plus Monte-Carlo machinery that validates
// the bounds empirically.
//
// Terminology follows the paper. A distance function f over user feature
// vectors has mean λ on correct pairs (u, u') and mean λ̄ on incorrect pairs
// (u, v); the correct-pair values range over an interval of width θ, the
// incorrect-pair values over width θ̄, and δ = max(θ, θ̄). The DA model M
// maps u to argmin f (when λ < λ̄).
package analysis

import (
	"errors"
	"fmt"
	"math"
)

// Params carries the quantities the §IV bounds depend on.
type Params struct {
	// Lambda is λ, the mean of f on correct pairs.
	Lambda float64
	// LambdaBar is λ̄, the mean of f on incorrect pairs.
	LambdaBar float64
	// Theta is θ, the range width of f on correct pairs.
	Theta float64
	// ThetaBar is θ̄, the range width of f on incorrect pairs.
	ThetaBar float64
	// N1 and N2 are the anonymized and auxiliary user counts.
	N1, N2 int
}

// Delta returns δ = max(θ, θ̄).
func (p Params) Delta() float64 { return math.Max(p.Theta, p.ThetaBar) }

// Gap returns |λ − λ̄|.
func (p Params) Gap() float64 { return math.Abs(p.Lambda - p.LambdaBar) }

// Validate checks that the parameters satisfy the framework's assumptions.
func (p Params) Validate() error {
	if p.Lambda == p.LambdaBar {
		return errors.New("analysis: λ must differ from λ̄")
	}
	if p.Theta < 0 || p.ThetaBar < 0 {
		return fmt.Errorf("analysis: negative range width (θ=%v, θ̄=%v)", p.Theta, p.ThetaBar)
	}
	if p.Delta() == 0 {
		return errors.New("analysis: δ = 0 (degenerate distributions)")
	}
	return nil
}

// PairwiseSuccessLB returns the Theorem 1 lower bound on Pr(u -> u' from
// {u', v}): 1 − 2·exp(−(λ−λ̄)²/(4δ²)). The bound can be vacuous (negative)
// when the gap is small; callers get the raw value, clamped at 0.
func PairwiseSuccessLB(p Params) float64 {
	g := p.Gap()
	lb := 1 - 2*math.Exp(-(g*g)/(4*p.Delta()*p.Delta()))
	return clamp01(lb)
}

// AASPairwiseCondition reports whether the Corollary 1 condition
// |λ−λ̄|/(2θ) ≥ sqrt(2 ln n + ln 2) holds for n = max(N1, N2), i.e. whether
// pairwise DA succeeds asymptotically almost surely.
func AASPairwiseCondition(p Params) bool {
	n := float64(maxInt(p.N1, p.N2))
	if n < 1 {
		return false
	}
	return p.Gap()/(2*p.Delta()) >= math.Sqrt(2*math.Log(n)+math.Log(2))
}

// ExactSuccessLB returns the Corollary 2-style lower bound on Pr(u -> u'
// from all of V2): 1 − 2(n2−1)·exp(−(λ−λ̄)²/(4δ²)) by a union bound over the
// n2−1 incorrect candidates.
func ExactSuccessLB(p Params) float64 {
	g := p.Gap()
	lb := 1 - 2*float64(p.N2-1)*math.Exp(-(g*g)/(4*p.Delta()*p.Delta()))
	return clamp01(lb)
}

// AASExactCondition reports whether the Corollary 2 condition
// |λ−λ̄|/(2θ) ≥ sqrt(2 ln n + ln 2n²) holds for n = max(N1, N2).
func AASExactCondition(p Params) bool {
	n := float64(maxInt(p.N1, p.N2))
	if n < 1 {
		return false
	}
	return p.Gap()/(2*p.Delta()) >= math.Sqrt(2*math.Log(n)+math.Log(2*n*n))
}

// GroupSuccessLB returns the Theorem 2 lower bound on Pr(Δ1 is
// α-re-identifiable): 1 − exp(ln(2·αn1·n2) − (λ−λ̄)²/(4δ²)).
func GroupSuccessLB(p Params, alpha float64) float64 {
	if alpha <= 0 || alpha > 1 {
		return 0
	}
	g := p.Gap()
	exponent := math.Log(2*alpha*float64(p.N1)*float64(p.N2)) - (g*g)/(4*p.Delta()*p.Delta())
	return clamp01(1 - math.Exp(exponent))
}

// AASGroupCondition reports whether the Corollary 3 condition
// |λ−λ̄|/(2θ) ≥ sqrt(2 ln n + ln 2αn1n2) holds for n = max(N1, N2).
func AASGroupCondition(p Params, alpha float64) bool {
	if alpha <= 0 || alpha > 1 {
		return false
	}
	n := float64(maxInt(p.N1, p.N2))
	arg := 2*math.Log(n) + math.Log(2*alpha*float64(p.N1)*float64(p.N2))
	return p.Gap()/(2*p.Delta()) >= math.Sqrt(arg)
}

// TopKSuccessLB returns the Theorem 3(i) lower bound on Pr(u -> Cu), the
// probability a correct Top-K candidate set exists:
// 1 − exp(ln 2(n2−K) − (λ−λ̄)²/(4δ²)).
func TopKSuccessLB(p Params, k int) float64 {
	if k >= p.N2 {
		return 1 // the candidate set is all of V2
	}
	g := p.Gap()
	exponent := math.Log(2*float64(p.N2-k)) - (g*g)/(4*p.Delta()*p.Delta())
	return clamp01(1 - math.Exp(exponent))
}

// AASTopKCondition reports the Theorem 3(ii) condition
// |λ−λ̄|/(2θ) ≥ sqrt(ln 2(n2−K) + 2 ln n).
func AASTopKCondition(p Params, k int) bool {
	if k >= p.N2 {
		return true
	}
	n := float64(maxInt(p.N1, p.N2))
	arg := math.Log(2*float64(p.N2-k)) + 2*math.Log(n)
	return p.Gap()/(2*p.Delta()) >= math.Sqrt(arg)
}

// GroupTopKSuccessLB returns the Theorem 4(i) lower bound on Pr(Vα: u->Cu):
// 1 − exp(ln 2αn1(n2−K) − (λ−λ̄)²/(4δ²)).
func GroupTopKSuccessLB(p Params, alpha float64, k int) float64 {
	if alpha <= 0 || alpha > 1 {
		return 0
	}
	if k >= p.N2 {
		return 1
	}
	g := p.Gap()
	exponent := math.Log(2*alpha*float64(p.N1)*float64(p.N2-k)) - (g*g)/(4*p.Delta()*p.Delta())
	return clamp01(1 - math.Exp(exponent))
}

// AASGroupTopKCondition reports the Theorem 4(ii) condition
// |λ−λ̄|/(2θ) ≥ sqrt(ln 2αn1(n2−K) + 2 ln n).
func AASGroupTopKCondition(p Params, alpha float64, k int) bool {
	if alpha <= 0 || alpha > 1 {
		return false
	}
	if k >= p.N2 {
		return true
	}
	n := float64(maxInt(p.N1, p.N2))
	arg := math.Log(2*alpha*float64(p.N1)*float64(p.N2-k)) + 2*math.Log(n)
	return p.Gap()/(2*p.Delta()) >= math.Sqrt(arg)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
