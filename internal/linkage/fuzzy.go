package linkage

import (
	"sort"
	"strings"

	"dehealth/internal/corpus"
)

// Fuzzy username matching in the spirit of Perito et al.: people derive
// service-specific usernames from a preferred one by small edits — case
// changes, appended digits, separators, single typos. FuzzyNameLink extends
// exact matching with these derivation patterns, weighting confidence by
// the entropy of the *shared* core.

// FuzzyConfig tunes the fuzzy matcher.
type FuzzyConfig struct {
	// MinEntropy is the minimum entropy (bits) the shared core must carry.
	MinEntropy float64
	// MaxEditDistance is the maximum Levenshtein distance treated as a
	// typo-level variation (after affix stripping). 0 or 1 are sensible.
	MaxEditDistance int
	// RequireAttributeMatch demands location corroboration when available.
	RequireAttributeMatch bool
}

// DefaultFuzzyConfig mirrors the proof-of-concept settings.
func DefaultFuzzyConfig() FuzzyConfig {
	return FuzzyConfig{MinEntropy: 30, MaxEditDistance: 1, RequireAttributeMatch: true}
}

// normalizeUsername lowercases and strips separator characters.
func normalizeUsername(u string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(u) {
		if r == '_' || r == '-' || r == '.' {
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// stripDigitSuffix removes a trailing run of digits ("jwolf6589" ->
// "jwolf"), the most common derivation pattern.
func stripDigitSuffix(u string) string {
	end := len(u)
	for end > 0 && u[end-1] >= '0' && u[end-1] <= '9' {
		end--
	}
	return u[:end]
}

// usernameVariants returns the normalized cores a username may derive from,
// most specific first.
func usernameVariants(u string) []string {
	n := normalizeUsername(u)
	variants := []string{n}
	if s := stripDigitSuffix(n); s != n && len(s) >= 4 {
		variants = append(variants, s)
	}
	return variants
}

// editDistance is the Levenshtein distance, early-exited at limit+1.
func editDistance(a, b string, limit int) int {
	if abs(len(a)-len(b)) > limit {
		return limit + 1
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > limit {
			return limit + 1
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func minInt3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// FuzzyNameLink links forum users to directory profiles allowing the Perito
// derivation patterns (normalization, digit suffixes, one typo). Exact
// matches win over fuzzy ones; at most one link per user.
func FuzzyNameLink(d *corpus.Dataset, dir *Directory, model *EntropyModel, cfg FuzzyConfig) []Link {
	// Index directory by normalized and digit-stripped cores.
	type entry struct {
		profile int
		core    string
	}
	byCore := map[string][]entry{}
	var allEntries []entry
	for pi, p := range dir.Profiles {
		for _, v := range usernameVariants(p.Username) {
			e := entry{profile: pi, core: v}
			byCore[v] = append(byCore[v], e)
			allEntries = append(allEntries, e)
		}
	}

	type cand struct {
		user    int
		entropy float64
	}
	cands := make([]cand, 0, len(d.Users))
	for i, u := range d.Users {
		e := model.Entropy(u.Name)
		if e >= cfg.MinEntropy {
			cands = append(cands, cand{user: i, entropy: e})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].entropy > cands[j].entropy })

	var links []Link
	for _, c := range cands {
		u := d.Users[c.user]
		best, bestScore := -1, -1.0
		consider := func(pi int, score float64) {
			p := dir.Profiles[pi]
			if cfg.RequireAttributeMatch && u.Location != "" && p.City != "" && u.Location != p.City {
				return
			}
			if score > bestScore {
				best, bestScore = pi, score
			}
		}
		// Pass 1: core matches via the index (score by variant specificity).
		variants := usernameVariants(u.Name)
		for vi, v := range variants {
			if model.Entropy(v) < cfg.MinEntropy {
				continue
			}
			for _, e := range byCore[v] {
				consider(e.profile, 2-float64(vi)) // exact core beats stripped core
			}
		}
		// Pass 2: typo-level variations on the full normalized name.
		if best < 0 && cfg.MaxEditDistance > 0 {
			n := variants[0]
			for _, e := range allEntries {
				if e.core == n {
					continue // already covered
				}
				if editDistance(n, e.core, cfg.MaxEditDistance) <= cfg.MaxEditDistance {
					consider(e.profile, 0.5)
				}
			}
		}
		if best >= 0 {
			links = append(links, Link{User: c.user, Profile: best, Via: "namelink-fuzzy", Confidence: c.entropy})
		}
	}
	return links
}
