package linkage

import "math/bits"

// Profile is a publicly visible account on an external Internet service
// (social network, people-search site, or another health forum).
type Profile struct {
	Service  string
	Username string

	// Publicly visible identity attributes; zero values mean "not shown".
	FullName  string
	City      string
	BirthYear int
	Phone     string

	// AvatarHash is the profile photo fingerprint (0 = no photo).
	AvatarHash uint64

	// PersonID is generator ground truth for scoring only.
	PersonID int
}

// Directory indexes the external profiles an adversary can search — the
// stand-in for web search engines, social-network lookup and Whitepages.
type Directory struct {
	Profiles []Profile

	byUsername map[string][]int
}

// NewDirectory builds a Directory over profiles.
func NewDirectory(profiles []Profile) *Directory {
	d := &Directory{Profiles: profiles, byUsername: map[string][]int{}}
	for i, p := range profiles {
		d.byUsername[p.Username] = append(d.byUsername[p.Username], i)
	}
	return d
}

// SearchUsername returns the indices of profiles with exactly this username
// (the "general online search" NameLink performs).
func (d *Directory) SearchUsername(username string) []int {
	return d.byUsername[username]
}

// SearchAvatar returns the indices of profiles whose avatar fingerprint is
// within maxHamming bits of hash (the reverse-image-search stand-in).
func (d *Directory) SearchAvatar(hash uint64, maxHamming int) []int {
	if hash == 0 {
		return nil
	}
	var out []int
	for i, p := range d.Profiles {
		if p.AvatarHash == 0 {
			continue
		}
		if bits.OnesCount64(p.AvatarHash^hash) <= maxHamming {
			out = append(out, i)
		}
	}
	return out
}

// Usernames returns every username in the directory (the adversary's
// entropy-model training corpus).
func (d *Directory) Usernames() []string {
	out := make([]string, len(d.Profiles))
	for i, p := range d.Profiles {
		out[i] = p.Username
	}
	return out
}
