package linkage

import (
	"dehealth/internal/corpus"
)

// Dossier aggregates everything the attack learned about one forum user —
// the §VI outcome ("full names, medical/health information, birthdates,
// phone numbers, addresses ...").
type Dossier struct {
	// User is the forum user index.
	User int
	// Links are the accepted external links.
	Links []Link
	// Services lists the distinct external services reached.
	Services []string
	// FullName, City, BirthYear and Phone aggregate the identity attributes
	// across linked profiles (first non-empty value wins).
	FullName  string
	City      string
	BirthYear int
	Phone     string
	// PostCount is the number of medical posts now attributable to the
	// identified person.
	PostCount int
}

// Aggregate merges NameLink and AvatarLink results into per-user dossiers
// and cross-validates: when both techniques link the same user, they must
// agree on the person, otherwise both links are dropped (the manual
// validation step of §VI-B).
func Aggregate(d *corpus.Dataset, dir *Directory, linkSets ...[]Link) []Dossier {
	byUser := map[int][]Link{}
	for _, set := range linkSets {
		for _, l := range set {
			byUser[l.User] = append(byUser[l.User], l)
		}
	}
	postCount := make([]int, len(d.Users))
	for _, p := range d.Posts {
		postCount[p.User]++
	}

	var out []Dossier
	for user, links := range byUser {
		// Cross-validation: all links must point at the same person when
		// ground-truthable attributes conflict. We use profile identity
		// consistency: distinct (FullName, City) pairs that disagree kill
		// the dossier.
		if conflicting(dir, links) {
			continue
		}
		ds := Dossier{User: user, Links: links, PostCount: postCount[user]}
		seen := map[string]bool{}
		for _, l := range links {
			p := dir.Profiles[l.Profile]
			if !seen[p.Service] {
				seen[p.Service] = true
				ds.Services = append(ds.Services, p.Service)
			}
			if ds.FullName == "" {
				ds.FullName = p.FullName
			}
			if ds.City == "" {
				ds.City = p.City
			}
			if ds.BirthYear == 0 {
				ds.BirthYear = p.BirthYear
			}
			if ds.Phone == "" {
				ds.Phone = p.Phone
			}
		}
		out = append(out, ds)
	}
	return out
}

// conflicting reports whether the user's links point at visibly different
// people.
func conflicting(dir *Directory, links []Link) bool {
	name := ""
	for _, l := range links {
		p := dir.Profiles[l.Profile]
		if p.FullName == "" {
			continue
		}
		if name == "" {
			name = p.FullName
		} else if name != p.FullName {
			return true
		}
	}
	return false
}

// Score compares links against ground truth and returns (correct, total):
// a link is correct when the forum user's TrueIdentity equals the linked
// profile's PersonID.
func Score(d *corpus.Dataset, dir *Directory, links []Link) (correct, total int) {
	for _, l := range links {
		total++
		if d.Users[l.User].TrueIdentity >= 0 &&
			d.Users[l.User].TrueIdentity == dir.Profiles[l.Profile].PersonID {
			correct++
		}
	}
	return correct, total
}

// ScoreCrossForum compares cross-forum pairs against ground truth.
func ScoreCrossForum(a, b *corpus.Dataset, pairs [][2]int) (correct, total int) {
	for _, p := range pairs {
		total++
		ta, tb := a.Users[p[0]].TrueIdentity, b.Users[p[1]].TrueIdentity
		if ta >= 0 && ta == tb {
			correct++
		}
	}
	return correct, total
}

// CrossForumGain summarizes the §VI-A information-aggregation payoff of
// linking users of one forum to another: identity attributes the target
// forum publishes that the source forum withholds.
type CrossForumGain struct {
	// Pairs is the number of cross-forum links.
	Pairs int
	// GainedLocation counts source users with no public location whose
	// linked account exposes one.
	GainedLocation int
	// GainedAge counts source users with no public age whose linked
	// account exposes one.
	GainedAge int
}

// AggregateCrossForum measures what linking users of a to users of b adds
// to the attacker's knowledge about a's users.
func AggregateCrossForum(a, b *corpus.Dataset, pairs [][2]int) CrossForumGain {
	g := CrossForumGain{Pairs: len(pairs)}
	for _, p := range pairs {
		ua, ub := a.Users[p[0]], b.Users[p[1]]
		if ua.Location == "" && ub.Location != "" {
			g.GainedLocation++
		}
		if ua.Age == 0 && ub.Age != 0 {
			g.GainedAge++
		}
	}
	return g
}

// EnrichFromPeopleSearch fills dossier gaps from a people-search service
// (the paper uses Whitepages): dossiers that already carry a full name are
// looked up by (name, city when known) and gain phone numbers and birth
// years. Returns the number of dossiers that gained at least one attribute.
func EnrichFromPeopleSearch(dossiers []Dossier, dir *Directory, service string) int {
	type key struct{ name, city string }
	byIdentity := map[key][]int{}
	for pi, p := range dir.Profiles {
		if p.Service != service || p.FullName == "" {
			continue
		}
		byIdentity[key{p.FullName, p.City}] = append(byIdentity[key{p.FullName, p.City}], pi)
		byIdentity[key{p.FullName, ""}] = append(byIdentity[key{p.FullName, ""}], pi)
	}
	enriched := 0
	for i := range dossiers {
		d := &dossiers[i]
		if d.FullName == "" {
			continue
		}
		matches := byIdentity[key{d.FullName, d.City}]
		if len(matches) == 0 && d.City != "" {
			continue // name+city known but no record: do not guess
		}
		if len(matches) == 0 {
			matches = byIdentity[key{d.FullName, ""}]
		}
		if len(matches) != 1 {
			continue // ambiguous people-search results are discarded
		}
		p := dir.Profiles[matches[0]]
		gained := false
		if d.Phone == "" && p.Phone != "" {
			d.Phone = p.Phone
			gained = true
		}
		if d.BirthYear == 0 && p.BirthYear != 0 {
			d.BirthYear = p.BirthYear
			gained = true
		}
		if d.City == "" && p.City != "" {
			d.City = p.City
			gained = true
		}
		if gained {
			enriched++
			d.Links = append(d.Links, Link{User: d.User, Profile: matches[0], Via: "peoplesearch"})
			found := false
			for _, s := range d.Services {
				if s == service {
					found = true
				}
			}
			if !found {
				d.Services = append(d.Services, service)
			}
		}
	}
	return enriched
}
