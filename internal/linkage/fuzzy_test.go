package linkage

import (
	"testing"
	"testing/quick"

	"dehealth/internal/corpus"
)

func TestNormalizeUsername(t *testing.T) {
	tests := []struct{ in, want string }{
		{"JWolf6589", "jwolf6589"},
		{"j_wolf-65.89", "jwolf6589"},
		{"plain", "plain"},
	}
	for _, tc := range tests {
		if got := normalizeUsername(tc.in); got != tc.want {
			t.Errorf("normalizeUsername(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestStripDigitSuffix(t *testing.T) {
	tests := []struct{ in, want string }{
		{"jwolf6589", "jwolf"},
		{"nodigits", "nodigits"},
		{"123", ""},
		{"a1b2", "a1b"},
	}
	for _, tc := range tests {
		if got := stripDigitSuffix(tc.in); got != tc.want {
			t.Errorf("stripDigitSuffix(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestEditDistance(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "ab", 1},
		{"abc", "xbc", 1},
		{"kitten", "sitting", 3},
		{"", "abc", 3},
	}
	for _, tc := range tests {
		if got := editDistance(tc.a, tc.b, 10); got != tc.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	// Early exit respects the limit.
	if got := editDistance("aaaaaaa", "bbbbbbb", 2); got <= 2 {
		t.Errorf("limited distance returned %d, want > 2", got)
	}
}

// Property: edit distance is symmetric and satisfies identity.
func TestEditDistanceProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 12 {
			a = a[:12]
		}
		if len(b) > 12 {
			b = b[:12]
		}
		if editDistance(a, a, 20) != 0 {
			return false
		}
		return editDistance(a, b, 20) == editDistance(b, a, 20)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func fuzzyFixture() (*corpus.Dataset, *Directory, *EntropyModel) {
	forum := &corpus.Dataset{
		Name: "forum",
		Users: []corpus.User{
			{ID: 0, Name: "J_Wolf6589", TrueIdentity: 1},  // separator + case variant
			{ID: 1, Name: "krivera1988", TrueIdentity: 3}, // digit-suffix variant of krivera88? no: core krivera
			{ID: 2, Name: "sunshne1", TrueIdentity: 2},    // one typo from sunshine1
			{ID: 3, Name: "totallyunique", TrueIdentity: 9},
		},
		Threads: []corpus.Thread{{ID: 0, Board: "b", Starter: 0}},
		Posts: []corpus.Post{
			{ID: 0, User: 0, Thread: 0, Text: "a"},
			{ID: 1, User: 1, Thread: 0, Text: "b"},
			{ID: 2, User: 2, Thread: 0, Text: "c"},
			{ID: 3, User: 3, Thread: 0, Text: "d"},
		},
	}
	dir := NewDirectory([]Profile{
		{Service: "facebook", Username: "jwolf6589", FullName: "James Wolf", PersonID: 1},
		{Service: "facebook", Username: "krivera88", FullName: "Kim Rivera", PersonID: 3},
		{Service: "facebook", Username: "sunshine1", FullName: "Ann Miller", PersonID: 2},
	})
	m := NewEntropyModel(2)
	m.Train(append(dir.Usernames(), "mike", "john", "anna", "bob99", "alice3"))
	return forum, dir, m
}

func TestFuzzyNameLink(t *testing.T) {
	forum, dir, m := fuzzyFixture()
	links := FuzzyNameLink(forum, dir, m, FuzzyConfig{MinEntropy: 0, MaxEditDistance: 1})
	got := map[int]int{}
	for _, l := range links {
		got[l.User] = dir.Profiles[l.Profile].PersonID
	}
	if got[0] != 1 {
		t.Errorf("separator/case variant not linked: %v", got)
	}
	if got[2] != 2 {
		t.Errorf("typo variant not linked: %v", got)
	}
	if _, ok := got[3]; ok {
		t.Error("unique user linked to nothing that exists")
	}
	// Digit-suffix cores: krivera1988 and krivera88 share core "krivera".
	if got[1] != 3 {
		t.Errorf("digit-suffix variant not linked: %v", got)
	}
}

func TestFuzzyNameLinkEntropyGate(t *testing.T) {
	forum, dir, m := fuzzyFixture()
	links := FuzzyNameLink(forum, dir, m, FuzzyConfig{MinEntropy: 1e9, MaxEditDistance: 1})
	if len(links) != 0 {
		t.Errorf("entropy gate failed: %d links", len(links))
	}
}

func TestFuzzyNameLinkBeatsExactOnVariants(t *testing.T) {
	forum, dir, m := fuzzyFixture()
	exact := NameLink(forum, dir, m, NameLinkConfig{MinEntropy: 0})
	fuzzy := FuzzyNameLink(forum, dir, m, FuzzyConfig{MinEntropy: 0, MaxEditDistance: 1})
	if len(fuzzy) <= len(exact) {
		t.Errorf("fuzzy (%d links) should find more than exact (%d) on this fixture",
			len(fuzzy), len(exact))
	}
}

func TestUsernameVariants(t *testing.T) {
	vs := usernameVariants("J_Wolf6589")
	if vs[0] != "jwolf6589" {
		t.Errorf("first variant = %q", vs[0])
	}
	if len(vs) != 2 || vs[1] != "jwolf" {
		t.Errorf("variants = %v", vs)
	}
	// Short cores are not emitted.
	if vs := usernameVariants("ab12"); len(vs) != 1 {
		t.Errorf("short core emitted: %v", vs)
	}
}
