package linkage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dehealth/internal/corpus"
)

func trainedModel() *EntropyModel {
	m := NewEntropyModel(2)
	corpus := []string{
		"mike", "mike1", "mike22", "john", "john7", "johnny", "sunshine",
		"sunshine1", "butterfly", "dreamer", "anna", "anna12", "jsmith",
		"jsmith42", "kwilson", "kwilson7", "bob", "bob99", "alice", "alice3",
	}
	m.Train(corpus)
	return m
}

func TestEntropyLongerIsHigher(t *testing.T) {
	m := trainedModel()
	if m.Entropy("mikejohnsunshine1984") <= m.Entropy("mike") {
		t.Error("longer username must carry more bits")
	}
}

func TestEntropyRareIsHigher(t *testing.T) {
	m := trainedModel()
	// "mike" appears in training; "xqzv" transitions were never seen.
	if m.Entropy("xqzv") <= m.Entropy("mike") {
		t.Error("out-of-distribution username must score higher per char")
	}
}

func TestEntropyDeterministic(t *testing.T) {
	m := trainedModel()
	if m.Entropy("jwolf6589") != m.Entropy("jwolf6589") {
		t.Error("entropy not deterministic")
	}
}

func TestEntropyCaseInsensitive(t *testing.T) {
	m := trainedModel()
	if m.Entropy("MIKE") != m.Entropy("mike") {
		t.Error("entropy must be case-insensitive")
	}
}

func TestEntropyNonNegativeProperty(t *testing.T) {
	m := trainedModel()
	f := func(s string) bool { return m.Entropy(s) >= 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mkDirectory() *Directory {
	return NewDirectory([]Profile{
		{Service: "facebook", Username: "jwolf6589", FullName: "James Wolf", City: "austin", AvatarHash: 0xABCDEF0123456789, PersonID: 1},
		{Service: "twitter", Username: "jwolf6589", City: "austin", AvatarHash: 0xABCDEF0123456788, PersonID: 1},
		{Service: "facebook", Username: "sunshine1", FullName: "Ann Miller", City: "boston", PersonID: 2},
		{Service: "whitepages", Username: "james.wolf.17", FullName: "James Wolf", City: "austin", Phone: "(555) 123-4567", BirthYear: 1971, PersonID: 1},
		{Service: "facebook", Username: "krivera88", FullName: "Kim Rivera", City: "miami", AvatarHash: 0x1111222233334444, PersonID: 3},
	})
}

func mkForum() *corpus.Dataset {
	return &corpus.Dataset{
		Name: "forum",
		Users: []corpus.User{
			{ID: 0, Name: "jwolf6589", AvatarHash: 0xABCDEF012345678B, AvatarKind: corpus.AvatarRealPerson, TrueIdentity: 1},
			{ID: 1, Name: "sunshine1", Location: "boston", TrueIdentity: 2},
			{ID: 2, Name: "krivera88", AvatarHash: 0x9999888877776666, AvatarKind: corpus.AvatarNonHuman, TrueIdentity: 3},
			{ID: 3, Name: "randomguy", AvatarHash: 0xFFFFFFFFFFFFFFFF, AvatarKind: corpus.AvatarRealPerson, TrueIdentity: 4},
		},
		Threads: []corpus.Thread{{ID: 0, Board: "b", Starter: 0}},
		Posts: []corpus.Post{
			{ID: 0, User: 0, Thread: 0, Text: "hello"},
			{ID: 1, User: 1, Thread: 0, Text: "hi"},
			{ID: 2, User: 2, Thread: 0, Text: "hey"},
			{ID: 3, User: 3, Thread: 0, Text: "yo"},
		},
	}
}

func TestDirectorySearchUsername(t *testing.T) {
	dir := mkDirectory()
	if got := dir.SearchUsername("jwolf6589"); len(got) != 2 {
		t.Errorf("found %d profiles, want 2", len(got))
	}
	if got := dir.SearchUsername("nobody"); got != nil {
		t.Errorf("unexpected match %v", got)
	}
}

func TestDirectorySearchAvatar(t *testing.T) {
	dir := mkDirectory()
	// 0xABCDEF012345678B is within 2 bits of both wolf profiles.
	got := dir.SearchAvatar(0xABCDEF012345678B, 4)
	if len(got) != 2 {
		t.Errorf("found %d avatar matches, want 2", len(got))
	}
	if got := dir.SearchAvatar(0, 4); got != nil {
		t.Error("zero hash must match nothing")
	}
	if got := dir.SearchAvatar(0x0F0F0F0F0F0F0F0F, 0); got != nil {
		t.Error("distant hash matched")
	}
}

func TestUsableAvatars(t *testing.T) {
	got := UsableAvatars(mkForum())
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("usable avatars = %v, want [0 3]", got)
	}
}

func TestAvatarLink(t *testing.T) {
	links := AvatarLink(mkForum(), mkDirectory(), AvatarLinkConfig{MaxHamming: 4})
	if len(links) != 1 {
		t.Fatalf("got %d links, want 1", len(links))
	}
	l := links[0]
	if l.User != 0 || l.Via != "avatarlink" {
		t.Errorf("unexpected link %+v", l)
	}
	if mkDirectory().Profiles[l.Profile].PersonID != 1 {
		t.Error("linked to the wrong person")
	}
}

func TestNameLink(t *testing.T) {
	forum := mkForum()
	dir := mkDirectory()
	m := NewEntropyModel(2)
	m.Train(dir.Usernames())

	links := NameLink(forum, dir, m, NameLinkConfig{MinEntropy: 0, RequireAttributeMatch: true})
	linked := map[int]int{}
	for _, l := range links {
		linked[l.User] = l.Profile
	}
	if _, ok := linked[0]; !ok {
		t.Error("jwolf6589 not linked")
	}
	if _, ok := linked[1]; !ok {
		t.Error("sunshine1 not linked despite matching city")
	}
	if _, ok := linked[3]; ok {
		t.Error("randomguy linked to nothing that exists")
	}
}

func TestNameLinkEntropyThreshold(t *testing.T) {
	forum := mkForum()
	dir := mkDirectory()
	m := NewEntropyModel(2)
	m.Train(dir.Usernames())
	// Impossibly high threshold: nothing is confident enough.
	links := NameLink(forum, dir, m, NameLinkConfig{MinEntropy: 1e9})
	if len(links) != 0 {
		t.Errorf("high threshold still linked %d users", len(links))
	}
}

func TestNameLinkAttributeMismatch(t *testing.T) {
	forum := mkForum()
	forum.Users[1].Location = "seattle" // directory says boston
	dir := mkDirectory()
	m := NewEntropyModel(2)
	m.Train(dir.Usernames())
	links := NameLink(forum, dir, m, NameLinkConfig{MinEntropy: 0, RequireAttributeMatch: true})
	for _, l := range links {
		if l.User == 1 {
			t.Error("location conflict must block the link")
		}
	}
}

func TestCrossForumNameLink(t *testing.T) {
	a := mkForum()
	b := &corpus.Dataset{
		Name: "other",
		Users: []corpus.User{
			{ID: 0, Name: "jwolf6589", TrueIdentity: 1},
			{ID: 1, Name: "unrelated", TrueIdentity: 9},
		},
		Threads: []corpus.Thread{{ID: 0, Board: "b", Starter: 0}},
		Posts:   []corpus.Post{{ID: 0, User: 0, Thread: 0, Text: "x"}, {ID: 1, User: 1, Thread: 0, Text: "y"}},
	}
	m := NewEntropyModel(2)
	m.Train([]string{"jwolf6589", "unrelated", "sunshine1", "krivera88", "randomguy"})
	pairs := CrossForumNameLink(a, b, m, NameLinkConfig{MinEntropy: 0})
	if len(pairs) != 1 || pairs[0][0] != 0 || pairs[0][1] != 0 {
		t.Errorf("pairs = %v", pairs)
	}
	c, total := ScoreCrossForum(a, b, pairs)
	if c != 1 || total != 1 {
		t.Errorf("score = %d/%d", c, total)
	}
}

func TestAggregate(t *testing.T) {
	forum := mkForum()
	dir := mkDirectory()
	m := NewEntropyModel(2)
	m.Train(dir.Usernames())
	av := AvatarLink(forum, dir, DefaultAvatarLinkConfig())
	nm := NameLink(forum, dir, m, NameLinkConfig{MinEntropy: 0, RequireAttributeMatch: true})
	ds := Aggregate(forum, dir, av, nm)

	var wolf *Dossier
	for i := range ds {
		if ds[i].User == 0 {
			wolf = &ds[i]
		}
	}
	if wolf == nil {
		t.Fatal("no dossier for user 0")
	}
	if wolf.FullName != "James Wolf" {
		t.Errorf("full name = %q", wolf.FullName)
	}
	if wolf.City != "austin" {
		t.Errorf("city = %q", wolf.City)
	}
	if wolf.PostCount != 1 {
		t.Errorf("post count = %d", wolf.PostCount)
	}
	if len(wolf.Services) == 0 {
		t.Error("no services recorded")
	}
}

func TestAggregateConflictDropped(t *testing.T) {
	forum := mkForum()
	dir := mkDirectory()
	// Two links for user 0 pointing at visibly different people.
	links := []Link{
		{User: 0, Profile: 0, Via: "avatarlink"}, // James Wolf
		{User: 0, Profile: 4, Via: "namelink"},   // Kim Rivera
	}
	ds := Aggregate(forum, dir, links)
	for _, d := range ds {
		if d.User == 0 {
			t.Error("conflicting dossier survived cross-validation")
		}
	}
}

func TestScore(t *testing.T) {
	forum := mkForum()
	dir := mkDirectory()
	links := []Link{
		{User: 0, Profile: 0}, // correct: person 1
		{User: 1, Profile: 4}, // wrong: links person 2 to person 3's profile
	}
	correct, total := Score(forum, dir, links)
	if correct != 1 || total != 2 {
		t.Errorf("score = %d/%d, want 1/2", correct, total)
	}
}

func TestHamming(t *testing.T) {
	if hamming(0, 0) != 0 || hamming(0, 1) != 1 || hamming(0xFF, 0) != 8 {
		t.Error("hamming distance wrong")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		if hamming(a, b) != hamming(b, a) {
			t.Fatal("hamming not symmetric")
		}
	}
}

func TestEnrichFromPeopleSearch(t *testing.T) {
	forum := mkForum()
	dir := mkDirectory()
	dossiers := []Dossier{
		{User: 0, FullName: "James Wolf", City: "austin", Services: []string{"facebook"}},
		{User: 1, FullName: "", City: ""},  // no name: untouched
		{User: 2, FullName: "Nobody Here"}, // no record: untouched
	}
	_ = forum
	n := EnrichFromPeopleSearch(dossiers, dir, "whitepages")
	if n != 1 {
		t.Fatalf("enriched %d dossiers, want 1", n)
	}
	if dossiers[0].Phone != "(555) 123-4567" || dossiers[0].BirthYear != 1971 {
		t.Errorf("dossier not enriched: %+v", dossiers[0])
	}
	found := false
	for _, s := range dossiers[0].Services {
		if s == "whitepages" {
			found = true
		}
	}
	if !found {
		t.Error("whitepages not recorded as a service")
	}
	if dossiers[1].Phone != "" || dossiers[2].Phone != "" {
		t.Error("unmatched dossiers were modified")
	}
}

func TestEnrichAmbiguousSkipped(t *testing.T) {
	dir := NewDirectory([]Profile{
		{Service: "whitepages", Username: "a.1", FullName: "John Smith", Phone: "1", PersonID: 1},
		{Service: "whitepages", Username: "a.2", FullName: "John Smith", Phone: "2", PersonID: 2},
	})
	dossiers := []Dossier{{User: 0, FullName: "John Smith"}}
	if n := EnrichFromPeopleSearch(dossiers, dir, "whitepages"); n != 0 {
		t.Errorf("ambiguous name enriched %d dossiers", n)
	}
	if dossiers[0].Phone != "" {
		t.Error("ambiguous enrichment applied")
	}
}
