package linkage

import (
	"sort"

	"dehealth/internal/corpus"
)

// Link connects a forum user to an external profile.
type Link struct {
	// User is the forum user index.
	User int
	// Profile is the index into the directory's profiles.
	Profile int
	// Via names the technique ("namelink" or "avatarlink").
	Via string
	// Confidence is technique-specific: username entropy bits for NameLink,
	// 64 − Hamming distance for AvatarLink.
	Confidence float64
}

// NameLinkConfig tunes the username linkage.
type NameLinkConfig struct {
	// MinEntropy is the bits threshold below which a username is considered
	// too common to identify a person (Perito-style filtering).
	MinEntropy float64
	// RequireAttributeMatch demands location corroboration when both sides
	// expose a location (the manual validation step of §VI-B).
	RequireAttributeMatch bool
}

// DefaultNameLinkConfig mirrors the proof-of-concept attack settings.
func DefaultNameLinkConfig() NameLinkConfig {
	return NameLinkConfig{MinEntropy: 30, RequireAttributeMatch: true}
}

// NameLink links forum users to directory profiles by username, processing
// usernames in decreasing entropy order and dropping those below the
// entropy threshold. At most one link per user is returned (the
// highest-confidence match).
func NameLink(d *corpus.Dataset, dir *Directory, model *EntropyModel, cfg NameLinkConfig) []Link {
	type cand struct {
		user    int
		entropy float64
	}
	cands := make([]cand, 0, len(d.Users))
	for i, u := range d.Users {
		e := model.Entropy(u.Name)
		if e >= cfg.MinEntropy {
			cands = append(cands, cand{user: i, entropy: e})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].entropy > cands[j].entropy })

	var links []Link
	for _, c := range cands {
		u := d.Users[c.user]
		matches := dir.SearchUsername(u.Name)
		best := -1
		for _, pi := range matches {
			p := dir.Profiles[pi]
			if cfg.RequireAttributeMatch && u.Location != "" && p.City != "" && u.Location != p.City {
				continue
			}
			best = pi
			break
		}
		if best >= 0 {
			links = append(links, Link{User: c.user, Profile: best, Via: "namelink", Confidence: c.entropy})
		}
	}
	return links
}

// AvatarLinkConfig tunes the avatar linkage.
type AvatarLinkConfig struct {
	// MaxHamming is the fingerprint distance treated as "same photo".
	MaxHamming int
}

// DefaultAvatarLinkConfig mirrors the proof-of-concept attack settings.
func DefaultAvatarLinkConfig() AvatarLinkConfig { return AvatarLinkConfig{MaxHamming: 4} }

// UsableAvatars applies the four §VI-B filtering conditions and returns the
// users whose avatars can drive a reverse-image linkage: not the default
// avatar, not objects/scenery/logos, not fictitious persons, not kids.
func UsableAvatars(d *corpus.Dataset) []int {
	var out []int
	for i, u := range d.Users {
		if u.AvatarKind == corpus.AvatarRealPerson && u.AvatarHash != 0 {
			out = append(out, i)
		}
	}
	return out
}

// AvatarLink links forum users with usable avatars to directory profiles by
// fingerprint proximity. At most one link per user (the closest profile).
func AvatarLink(d *corpus.Dataset, dir *Directory, cfg AvatarLinkConfig) []Link {
	var links []Link
	for _, ui := range UsableAvatars(d) {
		u := d.Users[ui]
		matches := dir.SearchAvatar(u.AvatarHash, cfg.MaxHamming)
		if len(matches) == 0 {
			continue
		}
		best, bestDist := -1, 65
		for _, pi := range matches {
			dist := hamming(dir.Profiles[pi].AvatarHash, u.AvatarHash)
			if dist < bestDist {
				best, bestDist = pi, dist
			}
		}
		links = append(links, Link{User: ui, Profile: best, Via: "avatarlink", Confidence: float64(64 - bestDist)})
	}
	return links
}

func hamming(a, b uint64) int {
	x := a ^ b
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// CrossForumNameLink links users of forum A to users of forum B by shared
// username (the WebMD -> HealthBoards information-aggregation attack).
// Returned pairs are (user in a, user in b) with the username's entropy as
// confidence; usernames below cfg.MinEntropy are skipped.
func CrossForumNameLink(a, b *corpus.Dataset, model *EntropyModel, cfg NameLinkConfig) [][2]int {
	byName := map[string][]int{}
	for i, u := range b.Users {
		byName[u.Name] = append(byName[u.Name], i)
	}
	var out [][2]int
	for i, u := range a.Users {
		if model.Entropy(u.Name) < cfg.MinEntropy {
			continue
		}
		if matches := byName[u.Name]; len(matches) == 1 {
			out = append(out, [2]int{i, matches[0]})
		}
	}
	return out
}
