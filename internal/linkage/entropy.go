// Package linkage implements the §VI linkage attack framework: NameLink
// (username-based linkage across services, driven by a Perito-style
// username entropy model) and AvatarLink (avatar-reuse linkage via
// perceptual-fingerprint matching), plus the information-aggregation and
// cross-validation layer that assembles per-victim dossiers.
package linkage

import (
	"math"
	"strings"
)

// EntropyModel estimates how unlikely — and therefore how identifying — a
// username is, following Perito et al. ("How unique and traceable are
// usernames?"): a character-level Markov model of usernames yields
// P(username); the information content −log2 P is the username's entropy.
// High-entropy usernames are almost surely unique to one person.
type EntropyModel struct {
	order  int
	counts map[string]map[rune]float64 // context -> next-rune counts
	totals map[string]float64
	vocab  map[rune]bool
}

// NewEntropyModel creates an untrained model with the given Markov order
// (context length). Order 2 matches the paper's usage well.
func NewEntropyModel(order int) *EntropyModel {
	if order < 1 {
		order = 2
	}
	return &EntropyModel{
		order:  order,
		counts: map[string]map[rune]float64{},
		totals: map[string]float64{},
		vocab:  map[rune]bool{},
	}
}

const boundary = '\x00'

// Train fits the model on a corpus of usernames (e.g. all publicly visible
// usernames the adversary has crawled).
func (m *EntropyModel) Train(usernames []string) {
	for _, u := range usernames {
		runes := m.pad(u)
		for i := m.order; i < len(runes); i++ {
			ctx := string(runes[i-m.order : i])
			next := runes[i]
			if m.counts[ctx] == nil {
				m.counts[ctx] = map[rune]float64{}
			}
			m.counts[ctx][next]++
			m.totals[ctx]++
			m.vocab[next] = true
		}
	}
}

func (m *EntropyModel) pad(u string) []rune {
	u = strings.ToLower(u)
	runes := make([]rune, 0, len(u)+m.order+1)
	for i := 0; i < m.order; i++ {
		runes = append(runes, boundary)
	}
	runes = append(runes, []rune(u)...)
	return append(runes, boundary)
}

// Entropy returns the information content −log2 P(username) in bits under
// the trained model, with add-one smoothing for unseen transitions. Longer
// and rarer usernames score higher.
func (m *EntropyModel) Entropy(username string) float64 {
	runes := m.pad(username)
	v := float64(len(m.vocab) + 1)
	var bits float64
	for i := m.order; i < len(runes); i++ {
		ctx := string(runes[i-m.order : i])
		count := m.counts[ctx][runes[i]]
		total := m.totals[ctx]
		p := (count + 1) / (total + v)
		bits += -math.Log2(p)
	}
	return bits
}
