package postag

import (
	"reflect"
	"testing"
	"testing/quick"

	"dehealth/internal/textutil"
)

func tagsOf(text string) []string {
	tagged := Tag(text)
	out := make([]string, len(tagged))
	for i, t := range tagged {
		out[i] = t.Tag
	}
	return out
}

func TestClosedClass(t *testing.T) {
	tests := []struct {
		text string
		want []string
	}{
		{"the doctor", []string{"DT", "NN"}},
		{"i feel sick", []string{"PRP", "VBP", "JJ"}},
		{"my head hurts", []string{"PRP$", "NN", "NNS"}},
		{"she should go", []string{"PRP", "MD", "VB"}},
		{"because of it", []string{"IN", "IN", "PRP"}},
	}
	for _, tc := range tests {
		if got := tagsOf(tc.text); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tag(%q) = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestSuffixRules(t *testing.T) {
	tests := []struct {
		word string
		want string
	}{
		{"happiness", "NN"},
		{"treatment", "NN"},
		{"medication", "NN"},
		{"quickly", "RB"},
		{"sleeping", "VBG"},
		{"walked", "VBD"},
		{"beautiful", "JJ"},
		{"dangerous", "JJ"},
		{"symptoms", "NNS"},
		{"biggest", "JJS"},
	}
	for _, tc := range tests {
		got := tagsOf(tc.word)
		if len(got) != 1 || got[0] != tc.want {
			t.Errorf("Tag(%q) = %v, want [%s]", tc.word, got, tc.want)
		}
	}
}

func TestNumbersAndSymbols(t *testing.T) {
	got := tagsOf("take 50 pills")
	if got[1] != "CD" {
		t.Errorf("numeric token tagged %s, want CD", got[1])
	}
	got = tagsOf("i took 2.5 doses")
	if got[2] != "CD" {
		t.Errorf("decimal token tagged %s, want CD", got[2])
	}
}

func TestProperNounMidSentence(t *testing.T) {
	got := Tag("i asked Wilson about it")
	if got[2].Tag != "NNP" {
		t.Errorf("mid-sentence capitalized word tagged %s, want NNP", got[2].Tag)
	}
	// Sentence-initial capitalization is NOT treated as a proper noun.
	got = Tag("Wilson asked me. The doctor agreed.")
	if got[4].Tag == "NNP" {
		t.Errorf("sentence-initial 'The' tagged NNP")
	}
}

func TestContextRules(t *testing.T) {
	// have + VBD -> VBN
	got := Tag("i have walked there")
	if got[2].Tag != "VBN" {
		t.Errorf("'have walked' => %s, want VBN", got[2].Tag)
	}
	// be + VBD -> VBN (passive)
	got = Tag("i was told about it")
	if got[2].Tag != "VBN" {
		t.Errorf("'was told' => %s, want VBN", got[2].Tag)
	}
	// MD + inflected verb -> VB
	got = Tag("she can walked there")
	if got[2].Tag != "VB" {
		t.Errorf("'can walked' => %s, want VB", got[2].Tag)
	}
}

func TestDeterminism(t *testing.T) {
	text := "My doctor prescribed 50mg of metformin because my blood test came back abnormal."
	a := Tag(text)
	b := Tag(text)
	if !reflect.DeepEqual(a, b) {
		t.Error("tagger is not deterministic")
	}
}

func TestIndex(t *testing.T) {
	for i, tag := range Tags {
		if Index(tag) != i {
			t.Fatalf("Index(%q) = %d, want %d", tag, Index(tag), i)
		}
	}
	if Index("NOPE") != -1 {
		t.Error("Index of unknown tag must be -1")
	}
	if NumTags() != len(Tags) {
		t.Error("NumTags mismatch")
	}
}

// Property: tagging emits exactly one known tag per token.
func TestTagCoversAllTokens(t *testing.T) {
	f := func(s string) bool {
		words := textutil.Words(s)
		tagged := Tag(s)
		if len(tagged) != len(words) {
			return false
		}
		for i, tt := range tagged {
			if tt.Text != words[i].Text {
				return false
			}
			if Index(tt.Tag) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
