// Package postag implements a deterministic rule-based part-of-speech tagger
// over the Penn Treebank tagset.
//
// The tagger combines a closed-class lexicon, morphological suffix rules and
// a small set of contextual (Brill-style) patch rules. It is built for
// stylometry, where the requirement is stable, author-discriminative tag
// distributions rather than state-of-the-art accuracy: identical text always
// produces identical tags, and common grammatical distinctions (determiners,
// modals, pronouns, verb inflections) — the ones that carry authorial signal
// — are resolved by the lexicon.
package postag

import (
	"strings"
	"unicode"

	"dehealth/internal/textutil"
)

// Tags is the Penn Treebank tagset emitted by the tagger, in a stable order.
// Feature extractors index tag-frequency features by position in this slice.
var Tags = []string{
	"CC", "CD", "DT", "EX", "FW", "IN", "JJ", "JJR", "JJS", "MD",
	"NN", "NNS", "NNP", "NNPS", "PDT", "POS", "PRP", "PRP$",
	"RB", "RBR", "RBS", "RP", "TO", "UH",
	"VB", "VBD", "VBG", "VBN", "VBP", "VBZ",
	"WDT", "WP", "WP$", "WRB", "SYM",
}

var tagIndex = func() map[string]int {
	m := make(map[string]int, len(Tags))
	for i, t := range Tags {
		m[t] = i
	}
	return m
}()

// Index returns the stable index of tag in Tags, or -1 for unknown tags.
func Index(tag string) int {
	if i, ok := tagIndex[tag]; ok {
		return i
	}
	return -1
}

// NumTags is the number of distinct tags the tagger can emit.
func NumTags() int { return len(Tags) }

// TaggedToken couples a token with its assigned Penn tag.
type TaggedToken struct {
	Text string
	Tag  string
}

// Tag tokenizes text and assigns a Penn Treebank tag to every token.
func Tag(text string) []TaggedToken {
	words := textutil.Words(text)
	out := make([]TaggedToken, len(words))
	sentenceStart := true
	for i, w := range words {
		out[i] = TaggedToken{Text: w.Text, Tag: lexicalTag(w.Text, sentenceStart)}
		sentenceStart = endsSentence(text, w)
	}
	applyContextRules(out)
	return out
}

// endsSentence reports whether the token w is followed (before the next
// word) by a sentence terminator in text.
func endsSentence(text string, w textutil.Token) bool {
	for _, r := range text[w.Start+len(w.Text):] {
		switch {
		case r == '.' || r == '!' || r == '?':
			return true
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			return false
		}
	}
	return false
}

// lexicalTag assigns a tag to a single token from the lexicon and suffix
// morphology, ignoring context.
func lexicalTag(word string, sentenceStart bool) string {
	lower := strings.ToLower(word)

	if tag, ok := closedClass[lower]; ok {
		return tag
	}
	if isNumeric(word) {
		return "CD"
	}
	if isSymbolic(word) {
		return "SYM"
	}
	// Capitalized mid-sentence words are proper nouns.
	if !sentenceStart && startsUpper(word) {
		if strings.HasSuffix(lower, "s") && len(lower) > 3 {
			return "NNPS"
		}
		return "NNP"
	}
	if tag, ok := openClass[lower]; ok {
		return tag
	}
	return suffixTag(lower)
}

func startsUpper(w string) bool {
	for _, r := range w {
		return unicode.IsUpper(r)
	}
	return false
}

func isNumeric(w string) bool {
	digits := 0
	for _, r := range w {
		if unicode.IsDigit(r) {
			digits++
		} else if r != '.' && r != ',' && r != '-' && r != '\'' {
			return false
		}
	}
	return digits > 0
}

func isSymbolic(w string) bool {
	for _, r := range w {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return false
		}
	}
	return w != ""
}

// suffixTag resolves open-class words by morphology. Order matters: longer,
// more specific suffixes first.
func suffixTag(w string) string {
	switch {
	case len(w) > 4 && strings.HasSuffix(w, "ness"),
		len(w) > 4 && strings.HasSuffix(w, "ment"),
		len(w) > 4 && strings.HasSuffix(w, "tion"),
		len(w) > 4 && strings.HasSuffix(w, "sion"),
		len(w) > 3 && strings.HasSuffix(w, "ism"),
		len(w) > 4 && strings.HasSuffix(w, "ship"),
		len(w) > 4 && strings.HasSuffix(w, "ance"),
		len(w) > 4 && strings.HasSuffix(w, "ence"),
		len(w) > 3 && strings.HasSuffix(w, "ity"),
		len(w) > 3 && strings.HasSuffix(w, "ist"):
		return "NN"
	case len(w) > 4 && strings.HasSuffix(w, "able"),
		len(w) > 4 && strings.HasSuffix(w, "ible"),
		len(w) > 3 && strings.HasSuffix(w, "ous"),
		len(w) > 3 && strings.HasSuffix(w, "ful"),
		len(w) > 3 && strings.HasSuffix(w, "ive"),
		len(w) > 3 && strings.HasSuffix(w, "ish"),
		len(w) > 4 && strings.HasSuffix(w, "less"),
		len(w) > 2 && strings.HasSuffix(w, "al") && !strings.HasSuffix(w, "eal"):
		return "JJ"
	case len(w) > 2 && strings.HasSuffix(w, "ly"):
		return "RB"
	case len(w) > 4 && strings.HasSuffix(w, "ing"):
		return "VBG"
	case len(w) > 3 && strings.HasSuffix(w, "ed"):
		return "VBD"
	case len(w) > 3 && strings.HasSuffix(w, "ies"):
		return "NNS"
	case len(w) > 3 && strings.HasSuffix(w, "est"):
		return "JJS"
	case len(w) > 3 && strings.HasSuffix(w, "er"):
		return "JJR"
	case len(w) > 4 && strings.HasSuffix(w, "ize"),
		len(w) > 4 && strings.HasSuffix(w, "ise"),
		len(w) > 3 && strings.HasSuffix(w, "ify"),
		len(w) > 3 && strings.HasSuffix(w, "ate"):
		return "VB"
	case len(w) > 2 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && !strings.HasSuffix(w, "us") && !strings.HasSuffix(w, "is"):
		return "NNS"
	default:
		return "NN"
	}
}

// applyContextRules applies Brill-style contextual patches in place.
func applyContextRules(toks []TaggedToken) {
	for i := range toks {
		prev, next := "", ""
		if i > 0 {
			prev = toks[i-1].Tag
		}
		if i+1 < len(toks) {
			next = toks[i+1].Tag
		}
		cur := &toks[i]
		lower := strings.ToLower(cur.Text)
		switch {
		// DT/PRP$ + verb-tagged word is actually a noun: "my cold", "a need".
		case (prev == "DT" || prev == "PRP$" || prev == "JJ") &&
			(cur.Tag == "VB" || cur.Tag == "VBP") && next != "NN" && next != "NNS":
			cur.Tag = "NN"
		// TO + base-form ambiguous noun is a verb: "to sleep".
		case prev == "TO" && cur.Tag == "NN" && isLikelyVerb(lower):
			cur.Tag = "VB"
		// MD + anything verb-ish is a base verb: "should goes" -> VB.
		case prev == "MD" && (cur.Tag == "VBZ" || cur.Tag == "VBP" || cur.Tag == "VBD"):
			cur.Tag = "VB"
		// have/has/had + VBD is a past participle.
		case (prev == "VBP" || prev == "VBZ" || prev == "VBD") && cur.Tag == "VBD" &&
			i > 0 && isHaveForm(strings.ToLower(toks[i-1].Text)):
			cur.Tag = "VBN"
		// be-form + VBD is a past participle (passive): "was told".
		case i > 0 && isBeForm(strings.ToLower(toks[i-1].Text)) && cur.Tag == "VBD":
			cur.Tag = "VBN"
		}
	}
}

func isHaveForm(w string) bool {
	switch w {
	case "have", "has", "had", "having", "haven't", "hasn't", "hadn't":
		return true
	}
	return false
}

func isBeForm(w string) bool {
	switch w {
	case "am", "is", "are", "was", "were", "be", "been", "being",
		"isn't", "aren't", "wasn't", "weren't":
		return true
	}
	return false
}

// isLikelyVerb lists frequent noun/verb-ambiguous base forms that follow
// "to" as verbs.
func isLikelyVerb(w string) bool {
	switch w {
	case "sleep", "work", "help", "call", "visit", "start", "stop", "try",
		"change", "talk", "walk", "rest", "drink", "eat", "test", "check",
		"care", "hope", "plan", "deal", "cope", "worry", "exercise":
		return true
	}
	return false
}
