package postag

// closedClass maps closed-class words (determiners, pronouns, prepositions,
// conjunctions, modals, particles, wh-words, common interjections) to their
// Penn tags. Closed classes carry most of the authorial syntax signal, so
// they are enumerated exhaustively rather than guessed from morphology.
var closedClass = map[string]string{
	// Determiners.
	"the": "DT", "a": "DT", "an": "DT", "this": "DT", "that": "DT",
	"these": "DT", "those": "DT", "each": "DT", "every": "DT", "either": "DT",
	"neither": "DT", "some": "DT", "any": "DT", "no": "DT", "another": "DT",
	// Predeterminers.
	"all": "PDT", "both": "PDT", "half": "PDT", "such": "PDT", "quite": "PDT",
	// Personal pronouns.
	"i": "PRP", "me": "PRP", "we": "PRP", "us": "PRP", "you": "PRP",
	"he": "PRP", "him": "PRP", "she": "PRP", "it": "PRP", "they": "PRP",
	"them": "PRP", "myself": "PRP", "ourselves": "PRP", "yourself": "PRP",
	"yourselves": "PRP", "himself": "PRP", "herself": "PRP", "itself": "PRP",
	"themselves": "PRP", "oneself": "PRP", "mine": "PRP", "yours": "PRP",
	"hers": "PRP", "ours": "PRP", "theirs": "PRP",
	"anybody": "PRP", "anyone": "PRP", "anything": "PRP", "everybody": "PRP",
	"everyone": "PRP", "everything": "PRP", "nobody": "PRP", "nothing": "PRP",
	"somebody": "PRP", "someone": "PRP", "something": "PRP", "none": "PRP",
	// Possessive pronouns.
	"my": "PRP$", "our": "PRP$", "your": "PRP$", "his": "PRP$", "its": "PRP$",
	"their": "PRP$", "her": "PRP$",
	// Wh-words.
	"who": "WP", "whom": "WP", "whoever": "WP", "whomever": "WP",
	"whose": "WP$",
	"which": "WDT", "whichever": "WDT", "whatever": "WDT", "what": "WP",
	"when": "WRB", "where": "WRB", "why": "WRB", "how": "WRB",
	"whenever": "WRB", "wherever": "WRB",
	// Existential there.
	"there": "EX",
	// Prepositions / subordinating conjunctions.
	"of": "IN", "in": "IN", "on": "IN", "at": "IN", "by": "IN", "for": "IN",
	"with": "IN", "about": "IN", "against": "IN", "between": "IN",
	"into": "IN", "through": "IN", "during": "IN", "before": "IN",
	"after": "IN", "above": "IN", "below": "IN", "from": "IN", "up": "RP",
	"down": "RP", "out": "RP", "off": "RP", "over": "IN", "under": "IN",
	"again": "RB", "further": "RB", "then": "RB", "once": "RB",
	"across": "IN", "along": "IN", "among": "IN", "amongst": "IN",
	"around": "IN", "as": "IN", "behind": "IN", "beneath": "IN",
	"beside": "IN", "besides": "IN", "beyond": "IN", "despite": "IN",
	"except": "IN", "inside": "IN", "near": "IN", "onto": "IN",
	"outside": "IN", "past": "IN", "per": "IN", "since": "IN", "than": "IN",
	"till": "IN", "toward": "IN", "towards": "IN", "until": "IN",
	"unto": "IN", "upon": "IN", "via": "IN", "within": "IN", "without": "IN",
	"although": "IN", "because": "IN", "if": "IN", "unless": "IN",
	"whereas": "IN", "whether": "IN", "while": "IN", "whilst": "IN",
	"though": "IN", "like": "IN", "throughout": "IN", "underneath": "IN",
	"unlike": "IN", "amid": "IN",
	// Coordinating conjunctions.
	"and": "CC", "or": "CC", "but": "CC", "nor": "CC", "so": "CC",
	"yet": "CC", "plus": "CC",
	// To.
	"to": "TO",
	// Modals.
	"can": "MD", "could": "MD", "may": "MD", "might": "MD", "must": "MD",
	"shall": "MD", "should": "MD", "will": "MD", "would": "MD",
	"can't": "MD", "cannot": "MD", "couldn't": "MD", "won't": "MD",
	"wouldn't": "MD", "shouldn't": "MD", "mustn't": "MD", "mightn't": "MD",
	// Be / have / do forms.
	"am": "VBP", "is": "VBZ", "are": "VBP", "was": "VBD", "were": "VBD",
	"be": "VB", "been": "VBN", "being": "VBG",
	"isn't": "VBZ", "aren't": "VBP", "wasn't": "VBD", "weren't": "VBD",
	"have": "VBP", "has": "VBZ", "had": "VBD", "having": "VBG",
	"haven't": "VBP", "hasn't": "VBZ", "hadn't": "VBD",
	"do": "VBP", "does": "VBZ", "did": "VBD", "doing": "VBG", "done": "VBN",
	"don't": "VBP", "doesn't": "VBZ", "didn't": "VBD",
	// Negation and frequent adverbs.
	"not": "RB", "n't": "RB", "never": "RB", "always": "RB", "often": "RB",
	"sometimes": "RB", "usually": "RB", "really": "RB", "very": "RB",
	"too": "RB", "also": "RB", "just": "RB", "still": "RB", "already": "RB",
	"now": "RB", "here": "RB", "even": "RB", "only": "RB", "maybe": "RB",
	"perhaps": "RB", "however": "RB", "instead": "RB", "away": "RB",
	"back": "RB", "soon": "RB", "ever": "RB", "far": "RB", "well": "RB",
	"almost": "RB", "enough": "RB", "rather": "RB", "please": "RB",
	"ago": "RB", "else": "RB", "later": "RB", "today": "RB",
	"tomorrow": "RB", "yesterday": "RB", "yeah": "UH",
	// Comparative/superlative adverbs.
	"more": "RBR", "most": "RBS", "less": "RBR", "least": "RBS",
	"better": "RBR", "best": "RBS", "worse": "RBR", "worst": "RBS",
	// Interjections common in forum posts.
	"oh": "UH", "hi": "UH", "hello": "UH", "hey": "UH", "wow": "UH",
	"ouch": "UH", "ugh": "UH", "hmm": "UH", "ok": "UH", "okay": "UH",
	"thanks": "UH", "yes": "UH",
	// Possessive marker (when tokenized separately).
	"'s": "POS",
}

// openClass resolves frequent ambiguous open-class words that the suffix
// rules would otherwise mis-tag. Mostly high-frequency medical-forum
// vocabulary: verbs without inflectional suffixes and irregular forms.
var openClass = map[string]string{
	// Frequent base verbs.
	"go": "VBP", "get": "VBP", "know": "VBP", "think": "VBP", "take": "VBP",
	"see": "VBP", "feel": "VBP", "want": "VBP", "say": "VBP", "make": "VBP",
	"need": "VBP", "try": "VBP", "ask": "VBP", "tell": "VBP", "find": "VBP",
	"give": "VBP", "keep": "VBP", "let": "VBP", "put": "VBP", "seem": "VBP",
	"help": "VBP", "talk": "VBP", "turn": "VBP", "start": "VBP", "hope": "VBP",
	"hurt": "VBP", "wish": "VBP", "thank": "VBP", "guess": "VBP",
	// Irregular past forms.
	"went": "VBD", "got": "VBD", "knew": "VBD", "thought": "VBD",
	"took": "VBD", "saw": "VBD", "felt": "VBD", "said": "VBD", "made": "VBD",
	"found": "VBD", "gave": "VBD", "kept": "VBD", "told": "VBD",
	"came": "VBD", "began": "VBD", "woke": "VBD", "ate": "VBD",
	"slept": "VBD", "broke": "VBD", "ran": "VBD", "grew": "VBD",
	// Irregular participles.
	"gone": "VBN", "known": "VBN", "taken": "VBN", "seen": "VBN",
	"given": "VBN", "broken": "VBN", "grown": "VBN",
	"woken": "VBN", "eaten": "VBN", "run": "VBN", "become": "VBN",
	// Frequent nouns that look like verbs/adjectives to the suffix rules.
	"doctor": "NN", "pain": "NN", "time": "NN", "day": "NN", "week": "NN",
	"month": "NN", "year": "NN", "blood": "NN", "test": "NN", "result": "NN",
	"symptom": "NN", "medication": "NN", "medicine": "NN", "dose": "NN",
	"side": "NN", "effect": "NN", "sleep": "NN", "night": "NN", "body": "NN",
	"head": "NN", "heart": "NN", "stomach": "NN", "skin": "NN", "life": "NN",
	"thing": "NN", "people": "NNS",
	"problem": "NN", "question": "NN", "answer": "NN", "advice": "NN",
	"surgery": "NN", "treatment": "NN", "condition": "NN", "disease": "NN",
	// Frequent adjectives.
	"good": "JJ", "bad": "JJ", "new": "JJ", "old": "JJ", "high": "JJ",
	"low": "JJ", "big": "JJ", "small": "JJ", "long": "JJ", "short": "JJ",
	"same": "JJ", "different": "JJ", "sick": "JJ", "tired": "JJ",
	"scared": "JJ", "worried": "JJ", "normal": "JJ", "severe": "JJ",
	"chronic": "JJ", "sure": "JJ", "first": "JJ", "last": "JJ", "right": "JJ", "left": "JJ", "whole": "JJ", "own": "JJ", "other": "JJ",
	"many": "JJ", "few": "JJ", "much": "JJ", "several": "JJ", "little": "JJ",
}
