package lexicon

// FunctionWords is the function-word inventory used by the Table I
// "function words" features (337 words). It follows the standard stylometry
// function-word lists (articles, pronouns, prepositions, conjunctions,
// auxiliaries, quantifiers, common adverbs and discourse particles).
//
// The list is sorted and deduplicated at init time; its length is asserted by
// tests to match the Table I count.
var FunctionWords = []string{
	// Articles & determiners.
	"a", "an", "the", "this", "that", "these", "those", "each", "every",
	"either", "neither", "some", "any", "no", "all", "both", "half", "such",
	"what", "which", "whose", "another", "other", "others", "certain",
	// Personal pronouns.
	"i", "me", "my", "mine", "myself", "we", "us", "our", "ours", "ourselves",
	"you", "your", "yours", "yourself", "yourselves", "he", "him", "his",
	"himself", "she", "her", "hers", "herself", "it", "its", "itself", "they",
	"them", "their", "theirs", "themselves", "one", "oneself",
	// Indefinite pronouns.
	"anybody", "anyone", "anything", "everybody", "everyone", "everything",
	"nobody", "none", "nothing", "somebody", "someone", "something", "whoever",
	"whomever", "whatever", "whichever",
	// Interrogatives & relatives.
	"who", "whom", "when", "where", "why", "how",
	// Prepositions.
	"about", "above", "across", "after", "against", "along", "alongside",
	"amid", "among", "amongst", "around", "as", "at", "atop", "before",
	"behind", "below", "beneath", "beside", "besides", "between", "beyond",
	"but", "by", "concerning", "despite", "down", "during", "except", "for",
	"from", "in", "inside", "into", "like", "near", "of", "off", "on", "onto",
	"opposite", "out", "outside", "over", "past", "per", "regarding", "round",
	"since", "through", "throughout", "till", "to", "toward", "towards",
	"under", "underneath", "unlike", "until", "unto", "up", "upon", "via",
	"with", "within", "without",
	// Coordinating & subordinating conjunctions.
	"and", "or", "nor", "so", "yet", "although", "because", "if", "lest",
	"once", "provided", "than", "though", "unless", "whenever", "whereas",
	"wherever", "whether", "while", "whilst",
	// Auxiliaries & modals (with common contracted negations).
	"am", "is", "are", "was", "were", "be", "been", "being", "do", "does",
	"did", "doing", "done", "have", "has", "had", "having", "can", "could",
	"may", "might", "must", "shall", "should", "will", "would", "ought",
	"need", "dare", "used", "isn't", "aren't", "wasn't", "weren't", "don't",
	"doesn't", "didn't", "haven't", "hasn't", "hadn't", "can't", "cannot",
	"couldn't", "mightn't", "mustn't", "shan't", "shouldn't", "won't",
	"wouldn't", "ain't",
	// Quantifiers & numerals-as-determiners.
	"few", "fewer", "fewest", "less", "least", "little", "lot", "lots",
	"many", "more", "most", "much", "several", "various", "enough", "plenty",
	"couple", "dozen",
	// Common adverbs & discourse particles.
	"again", "ago", "almost", "already", "also", "always", "anywhere",
	"away", "back", "even", "ever", "everywhere", "far", "hardly", "hence",
	"here", "hither", "however", "instead", "just", "maybe", "meanwhile",
	"merely", "mostly", "namely", "nearly", "never", "nevertheless", "next",
	"nonetheless", "not", "now", "nowhere", "often", "only", "otherwise",
	"perhaps", "quite", "rather", "really", "seldom", "sometimes", "somewhat",
	"somewhere", "soon", "still", "then", "thence", "there", "thereafter",
	"thereby", "therefore", "therein", "thereupon", "thus", "too", "together",
	"very", "well", "whence", "whereby", "wherein", "whereupon", "yes",
	"anyhow", "anyway", "elsewhere", "furthermore", "moreover", "indeed",
	"accordingly",
	// Misc particles and frequent forms.

	"vis", "amidst", "behalf", "midst",
	"nearby", "forth", "aboard", "astride", "bar", "circa", "cum", "minus",
	"plus", "pro", "qua", "re", "sans", "save", "worth", "pending",
	"barring", "excepting", "excluding", "including", "failing", "following",
	"given", "granted", "respecting", "touching", "wanting", "considering",
}

func init() {
	FunctionWords = dedupSorted(FunctionWords)
}
