// Package lexicon embeds the linguistic resources required by the
// stylometric feature extractors (Table I of the paper): the function-word
// inventory, the common-misspelling list, and the lexicon + suffix rules
// backing the POS tagger.
//
// All resources are plain Go data so the module builds offline with the
// standard library only.
package lexicon

import "sort"

// dedupSorted sorts ws and removes duplicates, returning the result.
func dedupSorted(ws []string) []string {
	sort.Strings(ws)
	out := ws[:0]
	var prev string
	for i, w := range ws {
		if i == 0 || w != prev {
			out = append(out, w)
		}
		prev = w
	}
	return out
}

// IsFunctionWord reports whether the lowercase word w is in FunctionWords.
func IsFunctionWord(w string) bool {
	i := sort.SearchStrings(FunctionWords, w)
	return i < len(FunctionWords) && FunctionWords[i] == w
}

// FunctionWordIndex returns the index of w in FunctionWords, or -1.
func FunctionWordIndex(w string) int {
	i := sort.SearchStrings(FunctionWords, w)
	if i < len(FunctionWords) && FunctionWords[i] == w {
		return i
	}
	return -1
}

// IsMisspelling reports whether the lowercase word w is a known common
// misspelling (Table I "misspelled words" features).
func IsMisspelling(w string) bool {
	_, ok := Misspellings[w]
	return ok
}

// MisspellingIndex returns the stable feature index of the misspelling w in
// MisspellingList, or -1 if w is not a known misspelling.
func MisspellingIndex(w string) int {
	i := sort.SearchStrings(MisspellingList, w)
	if i < len(MisspellingList) && MisspellingList[i] == w {
		return i
	}
	return -1
}
