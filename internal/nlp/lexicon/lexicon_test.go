package lexicon

import (
	"sort"
	"strings"
	"testing"
)

func TestFunctionWordCount(t *testing.T) {
	// Table I: 337 function-word features.
	if len(FunctionWords) != 337 {
		t.Errorf("len(FunctionWords) = %d, want 337", len(FunctionWords))
	}
}

func TestFunctionWordsSortedUnique(t *testing.T) {
	if !sort.StringsAreSorted(FunctionWords) {
		t.Error("FunctionWords must be sorted")
	}
	for i := 1; i < len(FunctionWords); i++ {
		if FunctionWords[i] == FunctionWords[i-1] {
			t.Errorf("duplicate function word %q", FunctionWords[i])
		}
	}
}

func TestFunctionWordsLowercase(t *testing.T) {
	for _, w := range FunctionWords {
		if w != strings.ToLower(w) {
			t.Errorf("function word %q is not lowercase", w)
		}
	}
}

func TestIsFunctionWord(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "i", "because", "won't"} {
		if !IsFunctionWord(w) {
			t.Errorf("IsFunctionWord(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"doctor", "xyzzy", "", "medicine"} {
		if IsFunctionWord(w) {
			t.Errorf("IsFunctionWord(%q) = true, want false", w)
		}
	}
}

func TestFunctionWordIndex(t *testing.T) {
	for i, w := range FunctionWords {
		if got := FunctionWordIndex(w); got != i {
			t.Fatalf("FunctionWordIndex(%q) = %d, want %d", w, got, i)
		}
	}
	if FunctionWordIndex("not-a-word") != -1 {
		t.Error("FunctionWordIndex of unknown word must be -1")
	}
}

func TestMisspellingCount(t *testing.T) {
	// Table I: 248 misspelled-word features.
	if len(Misspellings) != 248 {
		t.Errorf("len(Misspellings) = %d, want 248", len(Misspellings))
	}
	if len(MisspellingList) != 248 {
		t.Errorf("len(MisspellingList) = %d, want 248", len(MisspellingList))
	}
}

func TestMisspellingListSortedUnique(t *testing.T) {
	if !sort.StringsAreSorted(MisspellingList) {
		t.Error("MisspellingList must be sorted")
	}
	for i := 1; i < len(MisspellingList); i++ {
		if MisspellingList[i] == MisspellingList[i-1] {
			t.Errorf("duplicate misspelling %q", MisspellingList[i])
		}
	}
}

func TestMisspellingsAreNotCorrections(t *testing.T) {
	for wrong, right := range Misspellings {
		if wrong == right {
			t.Errorf("misspelling %q equals its correction", wrong)
		}
		if right == "" {
			t.Errorf("misspelling %q has empty correction", wrong)
		}
	}
}

func TestIsMisspelling(t *testing.T) {
	for _, w := range []string{"recieve", "definately", "seperate", "wierd"} {
		if !IsMisspelling(w) {
			t.Errorf("IsMisspelling(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"receive", "definitely", "separate", "weird", ""} {
		if IsMisspelling(w) {
			t.Errorf("IsMisspelling(%q) = true, want false", w)
		}
	}
}

func TestMisspellingIndex(t *testing.T) {
	for i, w := range MisspellingList {
		if got := MisspellingIndex(w); got != i {
			t.Fatalf("MisspellingIndex(%q) = %d, want %d", w, got, i)
		}
	}
	if MisspellingIndex("correct") != -1 {
		t.Error("MisspellingIndex of unknown word must be -1")
	}
}

func TestNoOverlapFunctionWordsMisspellings(t *testing.T) {
	// A function word must never be indexed as a misspelling: the feature
	// extractor assumes the two blocks are disjoint signals.
	for _, w := range FunctionWords {
		if IsMisspelling(w) {
			t.Errorf("%q is both a function word and a misspelling", w)
		}
	}
}
