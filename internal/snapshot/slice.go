// Per-shard snapshot slices: SliceForShard cuts a full-world snapshot
// into the artifact one distributed shard server boots from. The slice
// carries the full anonymized side (every shard scores the same queries)
// but only the shard's auxiliary window [lo, hi): its users, their posts
// and feature rows, the induced adjacency, the scorer's aux-side cache
// arrays restricted to the window, and the shard's inverted index. Loaded
// back, the slice is an ordinary single-shard world whose local auxiliary
// id j corresponds to global id lo+j — because the in-process shard
// engine scores windows against globally computed values (the scorer
// window arrays ARE contiguous views of the global arrays), a slice-booted
// server answers its window bit-identically to the in-process shard, and
// a router merging slice answers under the global selection order is
// bit-identical to the single-process fan-out.

package snapshot

import (
	"encoding/json"
	"errors"
	"fmt"

	"dehealth/internal/corpus"
)

// ErrAlreadySlice marks an attempt to slice a snapshot that is itself a
// slice of a larger world. Slices are cut from full worlds only: slicing
// a slice would silently renumber the global id space the router's merge
// contract depends on.
var ErrAlreadySlice = errors.New("snapshot: world is already a shard slice")

// SliceForShard cuts shard i's slice out of a full-world snapshot. bounds
// are the n+1 partition offsets over the auxiliary population (shard i
// spans [bounds[i], bounds[i+1])), exactly as shard.Bounds computes them —
// the caller supplies them so this package stays free of partitioning
// policy. The returned World is self-contained: Save it and a shard server
// boots from the file mapping only its own partition (plus the shared
// anonymized side). The slice's Meta keeps the prepare-time configuration
// (similarity weights, pruning/approx tier and build knobs) with Shards
// forced to 1 and Meta.Slice recording the shard identity; slicing a slice
// is rejected with ErrAlreadySlice.
func SliceForShard(full *World, i int, bounds []int) (*World, error) {
	if full.Meta.Slice != nil {
		s := full.Meta.Slice
		return nil, fmt.Errorf("%w: shard %d of %d over [%d, %d)", ErrAlreadySlice, s.Shard, s.Shards, s.Lo, s.Hi)
	}
	total := len(full.Scorer.AuxDeg)
	n := len(bounds) - 1
	if n < 1 {
		return nil, fmt.Errorf("snapshot: slice bounds %v define no shards", bounds)
	}
	if bounds[0] != 0 || bounds[n] != total {
		return nil, fmt.Errorf("snapshot: slice bounds %v do not tile [0, %d)", bounds, total)
	}
	for j := 1; j <= n; j++ {
		if bounds[j] < bounds[j-1] {
			return nil, fmt.Errorf("snapshot: slice bounds %v decrease at %d", bounds, j)
		}
	}
	if i < 0 || i >= n {
		return nil, fmt.Errorf("snapshot: shard %d out of [0, %d)", i, n)
	}
	lo, hi := bounds[i], bounds[i+1]

	out := &World{Meta: full.Meta}
	out.Meta.Shards = 1 // the shard process runs its window unpartitioned
	out.Meta.Slice = &SliceMeta{Shard: i, Shards: n, Lo: lo, Hi: hi, AuxTotal: total}
	out.Anon = full.Anon

	aux, err := sliceAuxSide(&full.Aux, full.Meta.Dim, lo, hi)
	if err != nil {
		return nil, err
	}
	out.Aux = aux
	out.Scorer = sliceScorer(&full.Scorer, lo, hi)

	if len(full.Indexes) > 0 {
		if len(full.Indexes) != n {
			return nil, fmt.Errorf("snapshot: %d shard index sections for %d slice bounds", len(full.Indexes), n)
		}
		out.Indexes = []IndexParts{full.Indexes[i]}
	}
	return out, nil
}

// sliceAuxSide restricts one dataset side to the user window [lo, hi):
// the dataset keeps the window's users (re-densified to local ids), their
// posts (global post order preserved, so per-user post order — and hence
// the per-user feature views — survive), and the threads those posts
// belong to; the flat feature matrix keeps exactly the kept posts' rows;
// attribute sets and CSR adjacency are window-sliced, with cross-window
// edges dropped exactly as graph.InducedRange drops them (scoring reads
// the scorer's precomputed arrays, never the sliced topology).
func sliceAuxSide(full *Side, dim, lo, hi int) (Side, error) {
	var s Side
	var d corpus.Dataset
	if err := json.Unmarshal(full.Dataset, &d); err != nil {
		return s, fmt.Errorf("%w: aux dataset blob: %v", ErrCorrupt, err)
	}
	if hi > len(d.Users) {
		return s, fmt.Errorf("snapshot: slice [%d, %d) exceeds dataset of %d users", lo, hi, len(d.Users))
	}
	m := hi - lo
	if len(full.Feat) != len(d.Posts)*dim {
		return s, fmt.Errorf("%w: aux matrix of %d values for %d posts x %d features", ErrCorrupt, len(full.Feat), len(d.Posts), dim)
	}

	// Threads are looked up by id (ids need not be dense in a split
	// dataset); kept threads are re-densified in first-use order.
	threadByID := make(map[int]corpus.Thread, len(d.Threads))
	for _, t := range d.Threads {
		threadByID[t.ID] = t
	}
	sliced := corpus.Dataset{Name: d.Name}
	sliced.Users = make([]corpus.User, m)
	for j := 0; j < m; j++ {
		u := d.Users[lo+j]
		u.ID = j
		sliced.Users[j] = u
	}
	threadLocal := map[int]int{} // global thread id -> local thread index
	starterOf := map[int]int{}   // local thread index -> original starter
	var keptRows []int           // global post indices kept, in order
	for pi, p := range d.Posts {
		if p.User < lo || p.User >= hi {
			continue
		}
		tl, ok := threadLocal[p.Thread]
		if !ok {
			tl = len(sliced.Threads)
			threadLocal[p.Thread] = tl
			th := threadByID[p.Thread]
			starterOf[tl] = th.Starter
			// The starter is fixed up below once the thread's local
			// participants are known; Board carries over.
			sliced.Threads = append(sliced.Threads, corpus.Thread{ID: tl, Board: th.Board, Starter: p.User - lo})
		}
		sliced.Posts = append(sliced.Posts, corpus.Post{
			ID: len(sliced.Posts), User: p.User - lo, Thread: tl, Text: p.Text,
		})
		keptRows = append(keptRows, pi)
	}
	// A thread's starter stays when it is inside the window; otherwise the
	// thread's first in-window poster stands in (the field only matters
	// for referential integrity — scoring never reads it).
	for tl := range sliced.Threads {
		if st := starterOf[tl]; st >= lo && st < hi {
			sliced.Threads[tl].Starter = st - lo
		}
	}
	if err := sliced.Validate(); err != nil {
		return s, fmt.Errorf("snapshot: sliced aux dataset invalid: %v", err)
	}
	blob, err := json.Marshal(&sliced)
	if err != nil {
		return s, fmt.Errorf("snapshot: encoding sliced aux dataset: %v", err)
	}
	s.Dataset = blob

	feat := make([]float64, 0, len(keptRows)*dim)
	for _, pi := range keptRows {
		feat = append(feat, full.Feat[pi*dim:(pi+1)*dim]...)
	}
	s.Feat = feat

	// Attribute sets: one contiguous run of the flat arrays, offsets
	// rebased to the window.
	aLo, aHi := full.AttrOff[lo], full.AttrOff[hi]
	s.AttrIdx = full.AttrIdx[aLo:aHi:aHi]
	s.AttrWeight = full.AttrWeight[aLo:aHi:aHi]
	s.AttrOff = rebase(full.AttrOff[lo:hi+1], aLo)

	// Induced CSR adjacency: in-window edges only, endpoints relocalized.
	// Per-user neighbor order was ascending globally, so it stays sorted.
	adjOff := make([]int, m+1)
	var adjTo []int32
	var adjWt []float64
	for j := 0; j < m; j++ {
		for k := full.AdjOff[lo+j]; k < full.AdjOff[lo+j+1]; k++ {
			v := int(full.AdjTo[k])
			if v >= lo && v < hi {
				adjTo = append(adjTo, int32(v-lo))
				adjWt = append(adjWt, full.AdjWeight[k])
			}
		}
		adjOff[j+1] = len(adjTo)
	}
	s.AdjOff, s.AdjTo, s.AdjWeight = adjOff, adjTo, adjWt
	return s, nil
}

// sliceScorer restricts the scorer state to the auxiliary window: the
// anonymized-side caches carry over whole (every shard scores the same
// queries against them), and each aux-side array takes the contiguous
// [lo, hi) run — the same views similarity.Scorer.Shard hands an
// in-process window, which is what makes slice-booted scoring
// bit-identical to the sharded single process.
func sliceScorer(full *ScorerState, lo, hi int) ScorerState {
	out := *full
	h := full.AuxHbar
	nLo, nHi := full.AuxNCSOff[lo], full.AuxNCSOff[hi]
	out.AuxDeg = full.AuxDeg[lo:hi:hi]
	out.AuxWdeg = full.AuxWdeg[lo:hi:hi]
	out.AuxNCS = full.AuxNCS[nLo:nHi:nHi]
	out.AuxNCSOff = rebase(full.AuxNCSOff[lo:hi+1], nLo)
	out.AuxNCSNorm = full.AuxNCSNorm[lo:hi:hi]
	out.AuxClose = full.AuxClose[lo*h : hi*h : hi*h]
	out.AuxCloseNorm = full.AuxCloseNorm[lo:hi:hi]
	out.AuxWcl = full.AuxWcl[lo*h : hi*h : hi*h]
	out.AuxWclNorm = full.AuxWclNorm[lo:hi:hi]
	return out
}

// rebase returns off with base subtracted from every entry — the offset
// table of a window restricted flat array.
func rebase(off []int, base int) []int {
	out := make([]int, len(off))
	for i, v := range off {
		out[i] = v - base
	}
	return out
}
