// Typed-array codecs: the bridge between the in-memory SoA slices the
// scoring kernel walks ([]float64, []int, []int32) and the little-endian
// section bytes of the file. Encoding reinterprets the slice memory
// directly on native little-endian platforms (the write copies into the
// file anyway); decoding hands out zero-copy views over the mapping when
// the rawFile allows it and the section is 8-byte aligned, falling back to
// an explicit element-by-element decode otherwise. Both paths produce
// bit-identical values — the fallback exists for portability and for the
// -no-mmap copying load, not as a different interpretation of the data.

package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"unsafe"
)

// nativeLittleEndian reports the host byte order; zero-copy section views
// require it (the format is little-endian on disk).
var nativeLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// intIs64 gates zero-copy []int views over int64 sections.
const intIs64 = strconv.IntSize == 64

// aligned8 reports whether b's backing memory is 8-byte aligned (always
// true for section starts in a mapping, re-checked per slice for safety).
func aligned8(b []byte) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%8 == 0
}

// f64Bytes returns v's bytes in file order, aliasing v's memory on native
// little-endian hosts and copying through the encoder otherwise.
func f64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	if nativeLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
	}
	out := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(x))
	}
	return out
}

// i64BytesFromInts encodes v as int64 little-endian bytes, aliasing on
// 64-bit native little-endian hosts.
func i64BytesFromInts(v []int) []byte {
	if len(v) == 0 {
		return nil
	}
	if nativeLittleEndian && intIs64 {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
	}
	out := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(int64(x)))
	}
	return out
}

// i32Bytes returns v's bytes in file order.
func i32Bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	if nativeLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
	}
	out := make([]byte, len(v)*4)
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(x))
	}
	return out
}

// decodeF64 decodes a float64 section; alias permits a zero-copy view.
func decodeF64(b []byte, alias bool) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: float64 section length %d not a multiple of 8", ErrCorrupt, len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if alias && aligned8(b) {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// decodeInts decodes an int64 section into []int; alias permits a
// zero-copy view on 64-bit hosts. The copying path rejects values that do
// not fit the host int.
func decodeInts(b []byte, alias bool) ([]int, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: int64 section length %d not a multiple of 8", ErrCorrupt, len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if alias && intIs64 && aligned8(b) {
		return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int, n)
	for i := range out {
		x := int64(binary.LittleEndian.Uint64(b[i*8:]))
		if int64(int(x)) != x {
			return nil, fmt.Errorf("%w: int64 value %d overflows host int", ErrCorrupt, x)
		}
		out[i] = int(x)
	}
	return out, nil
}

// decodeI32 decodes an int32 section; alias permits a zero-copy view.
func decodeI32(b []byte, alias bool) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("%w: int32 section length %d not a multiple of 4", ErrCorrupt, len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if alias && aligned8(b) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}
