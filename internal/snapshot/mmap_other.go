//go:build !unix

package snapshot

import "os"

// readFileBytes is the portable fallback: no memory mapping, the whole
// file is read into heap memory and sections are decoded by copying.
func readFileBytes(path string, noMmap bool) (data []byte, mapped bool, err error) {
	data, err = os.ReadFile(path)
	return data, false, err
}
