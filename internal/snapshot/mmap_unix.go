//go:build unix

package snapshot

import (
	"os"
	"syscall"
)

// readFileBytes returns the snapshot file's bytes. On unix the default
// path memory-maps the file read-only (PROT_READ, MAP_SHARED): the mapping
// outlives the closed descriptor and is intentionally never unmapped — the
// loaded world's zero-copy slices alias it for the life of the process.
// noMmap (or an empty file, which cannot be mapped) reads into the heap
// instead; mapped=false then tells the caller aliasing is still fine but
// the memory is ordinary writable heap.
func readFileBytes(path string, noMmap bool) (data []byte, mapped bool, err error) {
	if noMmap {
		data, err = os.ReadFile(path)
		return data, false, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, false, nil
	}
	if int64(int(size)) != size {
		data, err = os.ReadFile(path)
		return data, false, err
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support degrade to the copying path.
		data, err = os.ReadFile(path)
		return data, false, err
	}
	return data, true, nil
}
