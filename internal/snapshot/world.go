// The World container: the typed contents of a snapshot and their mapping
// onto sections. This file is deliberately dumb — it knows the byte layout
// of each logical group and validates structure (presence, lengths,
// monotone offsets), while all semantic assembly (rebuilding stores,
// scorers, pipelines) lives with the packages that own those types.

package snapshot

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
)

// Section ids. Values are part of the on-disk format: never renumber,
// only append. Repeated ids are only legal for secShardIndex (one section
// per shard, in shard order).
const (
	secMeta uint32 = 1

	secAnonDataset uint32 = 10
	secAnonFeat    uint32 = 11
	secAnonAttrIdx uint32 = 12
	secAnonAttrWt  uint32 = 13
	secAnonAttrOff uint32 = 14
	secAnonAdjOff  uint32 = 15
	secAnonAdjTo   uint32 = 16
	secAnonAdjWt   uint32 = 17

	secAuxDataset uint32 = 20
	secAuxFeat    uint32 = 21
	secAuxAttrIdx uint32 = 22
	secAuxAttrWt  uint32 = 23
	secAuxAttrOff uint32 = 24
	secAuxAdjOff  uint32 = 25
	secAuxAdjTo   uint32 = 26
	secAuxAdjWt   uint32 = 27

	secLandmarks   uint32 = 30
	secNCS         uint32 = 31
	secNCSOff      uint32 = 32
	secNCSNorm     uint32 = 33
	secClose       uint32 = 34
	secCloseNorm   uint32 = 35
	secWcl         uint32 = 36
	secWclNorm     uint32 = 37
	secAuxDeg      uint32 = 40
	secAuxWdeg     uint32 = 41
	secAuxNCS      uint32 = 42
	secAuxNCSOff   uint32 = 43
	secAuxNCSNorm  uint32 = 44
	secAuxClose    uint32 = 45
	secAuxCloseNrm uint32 = 46
	secAuxWcl      uint32 = 47
	secAuxWclNorm  uint32 = 48

	secShardIndex uint32 = 50
)

// SliceMeta identifies a snapshot that carries one shard's slice of a
// larger world: shard Shard of Shards, covering the global auxiliary id
// range [Lo, Hi) out of AuxTotal users. A shard server booting from the
// slice maps only its own partition; the distributed router uses the
// identity to validate that the server behind a URL really serves the
// shard it is configured for, and Lo is the offset that rebases the
// slice's local candidate ids back to global ones.
type SliceMeta struct {
	// Shard and Shards place this slice in the partition: slice Shard of
	// Shards, numbered in global id order.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Lo and Hi bound the slice's global auxiliary id range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// AuxTotal is the full world's auxiliary population (the sum of every
	// slice's window).
	AuxTotal int `json:"aux_total"`
}

// Meta is the snapshot's small JSON-encoded configuration document: the
// values that pin how the numeric sections must be reassembled.
type Meta struct {
	// Shards is the auxiliary partition count the world was prepared with.
	Shards int `json:"shards"`
	// Slice, when non-nil, marks this snapshot as one shard's slice of a
	// larger world (see SliceForShard). A slice always has Shards == 1:
	// the shard process runs its window as a single in-process partition.
	// A JSON field addition: older full-world files load with Slice nil,
	// no format version bump.
	Slice *SliceMeta `json:"slice,omitempty"`
	// Prune records whether the world ran candidate-pruned queries; when
	// true the file carries Shards secShardIndex sections and the two
	// Prune* fields echo the indexes' resolved build configuration.
	Prune                 bool    `json:"prune"`
	PruneBands            int     `json:"prune_bands,omitempty"`
	PruneMaxCandidateFrac float64 `json:"prune_max_candidate_frac,omitempty"`
	// Approx records whether the world had the approximate retrieval tier
	// enabled; it reuses the secShardIndex sections (and the Prune* build
	// configuration fields) so an approx-only world still carries its
	// shard indexes. A JSON field addition: older files simply load with
	// the tier off, no format version bump.
	Approx bool `json:"approx,omitempty"`
	// C1, C2, C3 and Landmarks pin the similarity configuration the saved
	// scorer caches were computed under.
	C1        float64 `json:"c1"`
	C2        float64 `json:"c2"`
	C3        float64 `json:"c3"`
	Landmarks int     `json:"landmarks"`
	// Dim is the feature-space width the flat matrices were extracted at;
	// loading validates it against the restored extractor.
	Dim int `json:"dim"`
	// Bigrams is the fitted POS-bigram block (pairs of postag.Tags
	// indices, feature order) — the extractor's only data-driven state.
	Bigrams [][2]int `json:"bigrams"`
}

// Side is one dataset side of the world: the corpus (JSON), its flat
// post-major feature matrix, the per-user attribute sets in flattened
// sparse form (Idx/Weight split, AttrOff has users+1 entries), and the
// frozen UDA adjacency in CSR form (AdjOff has users+1 entries; AdjTo and
// AdjWeight are sorted per user).
type Side struct {
	Dataset    []byte
	Feat       []float64
	AttrIdx    []int32
	AttrWeight []int32
	AttrOff    []int
	AdjOff     []int
	AdjTo      []int32
	AdjWeight  []float64
}

// ScorerState is the flat precomputed cache state of the pinned base
// scorer: the anonymized-side SoA caches and the full auxiliary window,
// exactly as similarity.Parts lays them out.
type ScorerState struct {
	Landmarks []int
	NCS       []float64
	NCSOff    []int
	NCSNorm   []float64
	Close     []float64
	CloseNorm []float64
	Wcl       []float64
	WclNorm   []float64

	AuxHbar      int
	AuxDeg       []float64
	AuxWdeg      []float64
	AuxNCS       []float64
	AuxNCSOff    []int
	AuxNCSNorm   []float64
	AuxClose     []float64
	AuxCloseNorm []float64
	AuxWcl       []float64
	AuxWclNorm   []float64
}

// IndexParts is one shard's attribute inverted index plus degree bands in
// flattened form, mirroring index.Parts. BandMeta carries bandMetaWidth
// float64 values per band: DegLo, DegHi, WdegLo, WdegHi, NCSNormLo,
// NCSNormHi, CloseNormLo, CloseNormHi, WclNormLo, WclNormHi. BlockSize
// and BlockMeta (format v2) carry the block-max metadata — ceil(N /
// BlockSize) id-range blocks of bandMetaWidth bounds each, same field
// order as BandMeta; BlockSize 0 marks a format-v1 blob, whose blocks the
// assembling layer rebuilds from the restored scorer window.
type IndexParts struct {
	N                int
	Bands            int
	MaxCandidateFrac float64
	PostOff          []int
	PostIDs          []int32
	BandOf           []int32
	BandOff          []int
	BandMeta         []float64
	BandIDs          []int32
	BlockSize        int
	BlockMeta        []float64
}

// bandMetaWidth is the number of float64 bound values stored per band.
const bandMetaWidth = 10

// World is the full typed content of a snapshot file.
type World struct {
	Meta    Meta
	Anon    Side
	Aux     Side
	Scorer  ScorerState
	Indexes []IndexParts
	// Mapped reports (after Load) whether the numeric slices alias a
	// read-only memory mapping of the file.
	Mapped bool
}

// Save writes w to path atomically in format Version.
func Save(path string, w *World) error {
	meta, err := json.Marshal(&w.Meta)
	if err != nil {
		return fmt.Errorf("snapshot: encoding meta: %v", err)
	}
	secs := []rawSection{
		// Fixed-width numeric sections first, in id order per group.
		{secAnonFeat, f64Bytes(w.Anon.Feat)},
		{secAnonAttrIdx, i32Bytes(w.Anon.AttrIdx)},
		{secAnonAttrWt, i32Bytes(w.Anon.AttrWeight)},
		{secAnonAttrOff, i64BytesFromInts(w.Anon.AttrOff)},
		{secAnonAdjOff, i64BytesFromInts(w.Anon.AdjOff)},
		{secAnonAdjTo, i32Bytes(w.Anon.AdjTo)},
		{secAnonAdjWt, f64Bytes(w.Anon.AdjWeight)},
		{secAuxFeat, f64Bytes(w.Aux.Feat)},
		{secAuxAttrIdx, i32Bytes(w.Aux.AttrIdx)},
		{secAuxAttrWt, i32Bytes(w.Aux.AttrWeight)},
		{secAuxAttrOff, i64BytesFromInts(w.Aux.AttrOff)},
		{secAuxAdjOff, i64BytesFromInts(w.Aux.AdjOff)},
		{secAuxAdjTo, i32Bytes(w.Aux.AdjTo)},
		{secAuxAdjWt, f64Bytes(w.Aux.AdjWeight)},
		{secLandmarks, i64BytesFromInts(w.Scorer.Landmarks)},
		{secNCS, f64Bytes(w.Scorer.NCS)},
		{secNCSOff, i64BytesFromInts(w.Scorer.NCSOff)},
		{secNCSNorm, f64Bytes(w.Scorer.NCSNorm)},
		{secClose, f64Bytes(w.Scorer.Close)},
		{secCloseNorm, f64Bytes(w.Scorer.CloseNorm)},
		{secWcl, f64Bytes(w.Scorer.Wcl)},
		{secWclNorm, f64Bytes(w.Scorer.WclNorm)},
		{secAuxDeg, f64Bytes(w.Scorer.AuxDeg)},
		{secAuxWdeg, f64Bytes(w.Scorer.AuxWdeg)},
		{secAuxNCS, f64Bytes(w.Scorer.AuxNCS)},
		{secAuxNCSOff, i64BytesFromInts(w.Scorer.AuxNCSOff)},
		{secAuxNCSNorm, f64Bytes(w.Scorer.AuxNCSNorm)},
		{secAuxClose, f64Bytes(w.Scorer.AuxClose)},
		{secAuxCloseNrm, f64Bytes(w.Scorer.AuxCloseNorm)},
		{secAuxWcl, f64Bytes(w.Scorer.AuxWcl)},
		{secAuxWclNorm, f64Bytes(w.Scorer.AuxWclNorm)},
	}
	for i := range w.Indexes {
		secs = append(secs, rawSection{secShardIndex, encodeIndex(&w.Indexes[i])})
	}
	// Variable-length string tables at the tail: the meta document and the
	// two dataset JSON blobs (user names, thread boards, post texts).
	secs = append(secs,
		rawSection{secMeta, meta},
		rawSection{secAnonDataset, w.Anon.Dataset},
		rawSection{secAuxDataset, w.Aux.Dataset},
	)
	return writeRaw(path, secs)
}

// Load reads, validates and decodes the snapshot at path. On success every
// slice of the returned World is fully structurally validated; on any
// failure the error matches one of the typed errors and no World is
// returned.
func Load(path string, opt Options) (*World, error) {
	f, err := readRaw(path, opt.NoMmap)
	if err != nil {
		return nil, err
	}
	w := &World{Mapped: f.zeroCopy}

	metaBytes, err := f.section(secMeta)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(metaBytes, &w.Meta); err != nil {
		return nil, fmt.Errorf("%w: meta section: %v", ErrCorrupt, err)
	}

	if w.Anon, err = f.decodeSide(secAnonDataset); err != nil {
		return nil, err
	}
	if w.Aux, err = f.decodeSide(secAuxDataset); err != nil {
		return nil, err
	}
	if err = f.decodeScorer(&w.Scorer); err != nil {
		return nil, err
	}
	for _, blob := range f.sections(secShardIndex) {
		ip, err := decodeIndex(blob, f.version)
		if err != nil {
			return nil, err
		}
		w.Indexes = append(w.Indexes, ip)
	}
	if (w.Meta.Prune || w.Meta.Approx) && len(w.Indexes) == 0 {
		return nil, fmt.Errorf("%w: pruned/approx snapshot carries no shard index sections", ErrCorrupt)
	}
	// The exact section count is validated against the reconstructed shard
	// partition by the assembling layer — Meta.Shards is the requested
	// count, which the partitioner clamps to the auxiliary population.
	return w, nil
}

// decodeSide decodes one side's sections; base is the side's dataset
// section id (the other ids are at fixed offsets from it).
func (f *rawFile) decodeSide(base uint32) (Side, error) {
	var s Side
	var err error
	if s.Dataset, err = f.section(base); err != nil {
		return s, err
	}
	alias := f.zeroCopy
	if s.Feat, err = f.sectionF64(base+1, alias); err != nil {
		return s, err
	}
	if s.AttrIdx, err = f.sectionI32(base+2, alias); err != nil {
		return s, err
	}
	if s.AttrWeight, err = f.sectionI32(base+3, alias); err != nil {
		return s, err
	}
	if s.AttrOff, err = f.sectionInts(base+4, alias); err != nil {
		return s, err
	}
	if s.AdjOff, err = f.sectionInts(base+5, alias); err != nil {
		return s, err
	}
	if s.AdjTo, err = f.sectionI32(base+6, alias); err != nil {
		return s, err
	}
	if s.AdjWeight, err = f.sectionF64(base+7, alias); err != nil {
		return s, err
	}
	if len(s.AttrIdx) != len(s.AttrWeight) {
		return s, fmt.Errorf("%w: attribute idx/weight length mismatch (%d vs %d)", ErrCorrupt, len(s.AttrIdx), len(s.AttrWeight))
	}
	if err = checkOffsets(s.AttrOff, len(s.AttrIdx), "attr"); err != nil {
		return s, err
	}
	if len(s.AdjTo) != len(s.AdjWeight) {
		return s, fmt.Errorf("%w: adjacency to/weight length mismatch (%d vs %d)", ErrCorrupt, len(s.AdjTo), len(s.AdjWeight))
	}
	if err = checkOffsets(s.AdjOff, len(s.AdjTo), "adjacency"); err != nil {
		return s, err
	}
	if len(s.AttrOff) != len(s.AdjOff) {
		return s, fmt.Errorf("%w: attr table covers %d users, adjacency %d", ErrCorrupt, len(s.AttrOff)-1, len(s.AdjOff)-1)
	}
	return s, nil
}

// decodeScorer decodes the scorer cache sections and validates the flat
// layout invariants (offset monotonicity, matching row counts, stride
// divisibility).
func (f *rawFile) decodeScorer(sc *ScorerState) error {
	alias := f.zeroCopy
	var err error
	if sc.Landmarks, err = f.sectionInts(secLandmarks, alias); err != nil {
		return err
	}
	if sc.NCS, err = f.sectionF64(secNCS, alias); err != nil {
		return err
	}
	if sc.NCSOff, err = f.sectionInts(secNCSOff, alias); err != nil {
		return err
	}
	if sc.NCSNorm, err = f.sectionF64(secNCSNorm, alias); err != nil {
		return err
	}
	if sc.Close, err = f.sectionF64(secClose, alias); err != nil {
		return err
	}
	if sc.CloseNorm, err = f.sectionF64(secCloseNorm, alias); err != nil {
		return err
	}
	if sc.Wcl, err = f.sectionF64(secWcl, alias); err != nil {
		return err
	}
	if sc.WclNorm, err = f.sectionF64(secWclNorm, alias); err != nil {
		return err
	}
	if sc.AuxDeg, err = f.sectionF64(secAuxDeg, alias); err != nil {
		return err
	}
	if sc.AuxWdeg, err = f.sectionF64(secAuxWdeg, alias); err != nil {
		return err
	}
	if sc.AuxNCS, err = f.sectionF64(secAuxNCS, alias); err != nil {
		return err
	}
	if sc.AuxNCSOff, err = f.sectionInts(secAuxNCSOff, alias); err != nil {
		return err
	}
	if sc.AuxNCSNorm, err = f.sectionF64(secAuxNCSNorm, alias); err != nil {
		return err
	}
	if sc.AuxClose, err = f.sectionF64(secAuxClose, alias); err != nil {
		return err
	}
	if sc.AuxCloseNorm, err = f.sectionF64(secAuxCloseNrm, alias); err != nil {
		return err
	}
	if sc.AuxWcl, err = f.sectionF64(secAuxWcl, alias); err != nil {
		return err
	}
	if sc.AuxWclNorm, err = f.sectionF64(secAuxWclNorm, alias); err != nil {
		return err
	}
	if err = checkOffsets(sc.NCSOff, len(sc.NCS), "anon NCS"); err != nil {
		return err
	}
	if err = checkOffsets(sc.AuxNCSOff, len(sc.AuxNCS), "aux NCS"); err != nil {
		return err
	}
	n2 := len(sc.AuxDeg)
	if len(sc.AuxNCSOff) != n2+1 {
		return fmt.Errorf("%w: aux NCS offsets cover %d users, window has %d", ErrCorrupt, len(sc.AuxNCSOff)-1, n2)
	}
	if n2 > 0 {
		if len(sc.AuxClose)%n2 != 0 || len(sc.AuxWcl) != len(sc.AuxClose) {
			return fmt.Errorf("%w: aux closeness matrix %d x10 does not tile %d users", ErrCorrupt, len(sc.AuxClose), n2)
		}
		sc.AuxHbar = len(sc.AuxClose) / n2
	}
	return nil
}

// checkOffsets validates a flat-layout offset table: first entry 0,
// monotone non-decreasing, last entry the flat length.
func checkOffsets(off []int, flatLen int, what string) error {
	if len(off) == 0 {
		return fmt.Errorf("%w: empty %s offset table", ErrCorrupt, what)
	}
	if off[0] != 0 || off[len(off)-1] != flatLen {
		return fmt.Errorf("%w: %s offsets span [%d, %d), flat array has %d", ErrCorrupt, what, off[0], off[len(off)-1], flatLen)
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("%w: %s offsets decrease at %d", ErrCorrupt, what, i)
		}
	}
	return nil
}

func (f *rawFile) sectionF64(id uint32, alias bool) ([]float64, error) {
	b, err := f.section(id)
	if err != nil {
		return nil, err
	}
	return decodeF64(b, alias)
}

func (f *rawFile) sectionInts(id uint32, alias bool) ([]int, error) {
	b, err := f.section(id)
	if err != nil {
		return nil, err
	}
	return decodeInts(b, alias)
}

func (f *rawFile) sectionI32(id uint32, alias bool) ([]int32, error) {
	b, err := f.section(id)
	if err != nil {
		return nil, err
	}
	return decodeI32(b, alias)
}

// encodeIndex serializes one shard's index parts as a self-describing
// little-endian blob: a fixed header of counts, then the flat arrays.
// Index sections are always decoded by copying — they are small relative
// to the feature and cache sections, and the sub-arrays inside a blob
// cannot all be 8-byte aligned anyway. Format v2 extends the v1 header
// with two words (block size and block count) and appends BlockMeta after
// BandIDs; see docs/SNAPSHOT.md for the byte layout.
func encodeIndex(p *IndexParts) []byte {
	numAttrs := len(p.PostOff) - 1
	if numAttrs < 0 {
		numAttrs = 0
	}
	numBands := 0
	if len(p.BandOff) > 0 {
		numBands = len(p.BandOff) - 1
	}
	numBlocks := len(p.BlockMeta) / bandMetaWidth
	size := 9*8 + (numAttrs+1)*8 + len(p.PostIDs)*4 + len(p.BandOf)*4 +
		(numBands+1)*8 + len(p.BandMeta)*8 + len(p.BandIDs)*4 + len(p.BlockMeta)*8
	out := make([]byte, size)
	le := binary.LittleEndian
	le.PutUint64(out[0:], uint64(p.N))
	le.PutUint64(out[8:], uint64(p.Bands))
	le.PutUint64(out[16:], math.Float64bits(p.MaxCandidateFrac))
	le.PutUint64(out[24:], uint64(numAttrs))
	le.PutUint64(out[32:], uint64(numBands))
	le.PutUint64(out[40:], uint64(len(p.PostIDs)))
	le.PutUint64(out[48:], uint64(len(p.BandIDs)))
	le.PutUint64(out[56:], uint64(p.BlockSize))
	le.PutUint64(out[64:], uint64(numBlocks))
	pos := 72
	putInts := func(v []int) {
		for _, x := range v {
			le.PutUint64(out[pos:], uint64(int64(x)))
			pos += 8
		}
	}
	putI32 := func(v []int32) {
		for _, x := range v {
			le.PutUint32(out[pos:], uint32(x))
			pos += 4
		}
	}
	putF64 := func(v []float64) {
		for _, x := range v {
			le.PutUint64(out[pos:], math.Float64bits(x))
			pos += 8
		}
	}
	if numAttrs == 0 && len(p.PostOff) == 0 {
		putInts([]int{0})
	} else {
		putInts(p.PostOff)
	}
	putI32(p.PostIDs)
	putI32(p.BandOf)
	if numBands == 0 && len(p.BandOff) == 0 {
		putInts([]int{0})
	} else {
		putInts(p.BandOff)
	}
	putF64(p.BandMeta)
	putI32(p.BandIDs)
	putF64(p.BlockMeta)
	return out
}

// decodeIndex is encodeIndex's inverse, with full structural validation.
// version selects the blob layout: format v1 blobs have a 7-word header
// and no block metadata (BlockSize decodes as 0, marking the blocks for
// rebuild), v2 blobs add the block size/count words and the trailing
// BlockMeta array.
func decodeIndex(b []byte, version int) (IndexParts, error) {
	var p IndexParts
	le := binary.LittleEndian
	headerLen := 72
	if version < 2 {
		headerLen = 56
	}
	if len(b) < headerLen {
		return p, fmt.Errorf("%w: shard index blob of %d bytes", ErrCorrupt, len(b))
	}
	p.N = int(int64(le.Uint64(b[0:])))
	p.Bands = int(int64(le.Uint64(b[8:])))
	p.MaxCandidateFrac = math.Float64frombits(le.Uint64(b[16:]))
	numAttrs := int(int64(le.Uint64(b[24:])))
	numBands := int(int64(le.Uint64(b[32:])))
	postIDs := int(int64(le.Uint64(b[40:])))
	bandIDs := int(int64(le.Uint64(b[48:])))
	numBlocks := 0
	if version >= 2 {
		p.BlockSize = int(int64(le.Uint64(b[56:])))
		numBlocks = int(int64(le.Uint64(b[64:])))
	}
	if p.N < 0 || numAttrs < 0 || numBands < 0 || postIDs < 0 || bandIDs < 0 || p.BlockSize < 0 || numBlocks < 0 {
		return p, fmt.Errorf("%w: negative shard index counts", ErrCorrupt)
	}
	if p.BlockSize == 0 && numBlocks != 0 {
		return p, fmt.Errorf("%w: %d index blocks with block size 0", ErrCorrupt, numBlocks)
	}
	if p.BlockSize > 0 && numBlocks != (p.N+p.BlockSize-1)/p.BlockSize {
		return p, fmt.Errorf("%w: %d index blocks of %d ids do not tile %d users", ErrCorrupt, numBlocks, p.BlockSize, p.N)
	}
	want := headerLen + (numAttrs+1)*8 + postIDs*4 + p.N*4 + (numBands+1)*8 +
		numBands*bandMetaWidth*8 + bandIDs*4 + numBlocks*bandMetaWidth*8
	if len(b) != want {
		return p, fmt.Errorf("%w: shard index blob is %d bytes, counts demand %d", ErrCorrupt, len(b), want)
	}
	pos := headerLen
	getInts := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = int(int64(le.Uint64(b[pos:])))
			pos += 8
		}
		return out
	}
	getI32 := func(n int) []int32 {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(le.Uint32(b[pos:]))
			pos += 4
		}
		return out
	}
	getF64 := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(le.Uint64(b[pos:]))
			pos += 8
		}
		return out
	}
	p.PostOff = getInts(numAttrs + 1)
	p.PostIDs = getI32(postIDs)
	p.BandOf = getI32(p.N)
	p.BandOff = getInts(numBands + 1)
	p.BandMeta = getF64(numBands * bandMetaWidth)
	p.BandIDs = getI32(bandIDs)
	if numBlocks > 0 {
		p.BlockMeta = getF64(numBlocks * bandMetaWidth)
	}
	if err := checkOffsets(p.PostOff, len(p.PostIDs), "shard index postings"); err != nil {
		return p, err
	}
	if err := checkOffsets(p.BandOff, len(p.BandIDs), "shard index bands"); err != nil {
		return p, err
	}
	return p, nil
}
