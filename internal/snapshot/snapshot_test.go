package snapshot

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fixtureWorld builds a small structurally valid world: two users per
// side, one landmark, one pruning shard index.
func fixtureWorld() *World {
	return &World{
		Meta: Meta{
			Shards: 1, Prune: true, PruneBands: 16, PruneMaxCandidateFrac: 0.5,
			C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 1,
			Dim: 3, Bigrams: [][2]int{{0, 1}, {2, 3}},
		},
		Anon: Side{
			Dataset:    []byte(`{"name":"anon"}`),
			Feat:       []float64{1, 2, 3, 4, 5, 6},
			AttrIdx:    []int32{0, 2, 3},
			AttrWeight: []int32{1, 1, 2},
			AttrOff:    []int{0, 1, 3},
			AdjOff:     []int{0, 1, 2},
			AdjTo:      []int32{1, 0},
			AdjWeight:  []float64{0.5, 0.5},
		},
		Aux: Side{
			Dataset:    []byte(`{"name":"aux"}`),
			Feat:       []float64{6, 5, 4, 3, 2, 1},
			AttrIdx:    []int32{1, 0, 2},
			AttrWeight: []int32{2, 1, 1},
			AttrOff:    []int{0, 1, 3},
			AdjOff:     []int{0, 1, 2},
			AdjTo:      []int32{1, 0},
			AdjWeight:  []float64{0.25, 0.25},
		},
		Scorer: ScorerState{
			Landmarks: []int{0},
			NCS:       []float64{1, 2, 3},
			NCSOff:    []int{0, 1, 3},
			NCSNorm:   []float64{1, 1},
			Close:     []float64{0.1, 0.2},
			CloseNorm: []float64{1, 1},
			Wcl:       []float64{0.3, 0.4},
			WclNorm:   []float64{1, 1},

			AuxHbar:      1,
			AuxDeg:       []float64{1, 1},
			AuxWdeg:      []float64{2, 2},
			AuxNCS:       []float64{5},
			AuxNCSOff:    []int{0, 0, 1},
			AuxNCSNorm:   []float64{1, 1},
			AuxClose:     []float64{0.5, 0.6},
			AuxCloseNorm: []float64{1, 1},
			AuxWcl:       []float64{0.7, 0.8},
			AuxWclNorm:   []float64{1, 1},
		},
		Indexes: []IndexParts{{
			N: 2, Bands: 1, MaxCandidateFrac: 0.5,
			PostOff:   []int{0, 1, 2, 2},
			PostIDs:   []int32{0, 1},
			BandOf:    []int32{0, 0},
			BandOff:   []int{0, 2},
			BandMeta:  []float64{1, 1, 2, 2, 1, 1, 1, 1, 1, 1},
			BandIDs:   []int32{0, 1},
			BlockSize: 1,
			BlockMeta: []float64{1, 1, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 1, 1, 1, 1, 1, 1},
		}},
	}
}

func saveFixture(t *testing.T) (string, *World) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "world.snap")
	w := fixtureWorld()
	if err := Save(path, w); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return path, w
}

func TestRoundTrip(t *testing.T) {
	for _, noMmap := range []bool{false, true} {
		path, want := saveFixture(t)
		got, err := Load(path, Options{NoMmap: noMmap})
		if err != nil {
			t.Fatalf("Load(noMmap=%v): %v", noMmap, err)
		}
		got.Mapped = false // not part of the content contract
		if !reflect.DeepEqual(&want.Meta, &got.Meta) {
			t.Errorf("noMmap=%v meta mismatch:\n want %+v\n got  %+v", noMmap, want.Meta, got.Meta)
		}
		if !reflect.DeepEqual(&want.Anon, &got.Anon) {
			t.Errorf("noMmap=%v anon side mismatch:\n want %+v\n got  %+v", noMmap, want.Anon, got.Anon)
		}
		if !reflect.DeepEqual(&want.Aux, &got.Aux) {
			t.Errorf("noMmap=%v aux side mismatch:\n want %+v\n got  %+v", noMmap, want.Aux, got.Aux)
		}
		if !reflect.DeepEqual(&want.Scorer, &got.Scorer) {
			t.Errorf("noMmap=%v scorer mismatch:\n want %+v\n got  %+v", noMmap, want.Scorer, got.Scorer)
		}
		if !reflect.DeepEqual(want.Indexes, got.Indexes) {
			t.Errorf("noMmap=%v indexes mismatch:\n want %+v\n got  %+v", noMmap, want.Indexes, got.Indexes)
		}
	}
}

func TestSaveAtomicNoTempLeft(t *testing.T) {
	path, _ := saveFixture(t)
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "world.snap" {
		t.Fatalf("directory should hold only the snapshot, got %v", ents)
	}
}

func TestLoadNotSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus")
	if err := os.WriteFile(path, []byte("definitely not a snapshot file, but long enough"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, Options{}); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("want ErrNotSnapshot, got %v", err)
	}
}

func TestLoadFutureVersion(t *testing.T) {
	path, _ := saveFixture(t)
	mutate(t, path, func(b []byte) { binary.LittleEndian.PutUint16(b[6:], Version+1) })
	if _, err := Load(path, Options{}); !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestLoadTruncated(t *testing.T) {
	path, _ := saveFixture(t)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int64{fi.Size() - 9, fi.Size() / 2, headerSize + 3, 10} {
		if err := os.Truncate(path, size); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path, Options{}); !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncated to %d bytes: want ErrTruncated, got %v", size, err)
		}
	}
}

func TestLoadSectionCorruption(t *testing.T) {
	path, _ := saveFixture(t)
	// Flip a byte inside the first section's body (located through the
	// table, skipping any alignment padding): its CRC must break.
	mutate(t, path, func(b []byte) {
		off := binary.LittleEndian.Uint64(b[headerSize+8:])
		b[off] ^= 0xff
	})
	if _, err := Load(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestLoadTableCorruption(t *testing.T) {
	path, _ := saveFixture(t)
	// Flip a byte inside the section table: its own CRC must catch it.
	mutate(t, path, func(b []byte) { b[headerSize+1] ^= 0xff })
	if _, err := Load(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestLoadGrownFile(t *testing.T) {
	path, _ := saveFixture(t)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Load(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("file longer than header states: want ErrCorrupt, got %v", err)
	}
}

func TestLoadPrunedWithoutIndexes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "world.snap")
	w := fixtureWorld()
	w.Indexes = nil // Meta.Prune stays true
	if err := Save(path, w); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("pruned snapshot without index sections: want ErrCorrupt, got %v", err)
	}
}

// mutate rewrites the file in place through fn (same length).
func mutate(t *testing.T, path string, fn func([]byte)) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fn(b)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}
