// Package snapshot implements the versioned, checksummed, mmap-able
// on-disk format for a prepared De-Health world — the artifact behind the
// warm-restart path (docs/SNAPSHOT.md): the offline prepare pipeline runs
// once, Save freezes its outputs (feature matrices, UDA adjacency, scorer
// SoA caches, per-shard inverted indexes, datasets), and Load maps the
// file back so a query server boots in milliseconds instead of replaying
// minutes of extraction.
//
// A snapshot file is a header (magic, format version, section count, CRCs)
// followed by a section table and 8-byte-aligned little-endian sections.
// Fixed-width numeric sections hold the hot arrays exactly as the scoring
// kernel walks them in memory; variable-length sections (the meta document
// and the two dataset JSON blobs — the name/text string tables) sit at the
// tail. Every section is CRC-32C checksummed, and the table itself carries
// its own checksum, so truncation and corruption are detected before any
// state is handed to callers: Load either returns a fully validated World
// or a typed error (ErrNotSnapshot, ErrVersion, ErrTruncated, ErrCorrupt)
// — never a partially loaded world.
//
// On load the numeric sections become typed slices. When the platform
// allows it (little-endian, 64-bit ints, 8-byte section alignment — and
// mmap support unless Options.NoMmap asks for the copying path) the slices
// alias the mapping zero-copy; otherwise each section is decoded into
// fresh heap memory. Aliased memory is read-only: every consumer of the
// restored arrays only reads them (growth of the anonymized side appends,
// which reallocates), per the contract in docs/SNAPSHOT.md.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// Format identity. The magic bytes never change; Version bumps on any
// layout change, and Load rejects files whose version it does not
// implement (no forward compatibility: a reader never guesses at sections
// it does not understand). Older versions back to minVersion stay
// readable: version 1 differs from 2 only in the shard-index blob layout
// (no block-max metadata), which decodeIndex handles per version and the
// assembling layer compensates for by rebuilding the blocks on load.
const (
	// Version is the snapshot format version this package writes.
	Version = 2
	// minVersion is the oldest format version this package still reads.
	minVersion = 1

	magic      = "DHSNAP"
	headerSize = 24 // magic[6] + version u16 + count u32 + tableCRC u32 + fileSize u64
	entrySize  = 24 // id u32 + crc u32 + off u64 + len u64
)

// Typed load errors. Load wraps them with detail; match with errors.Is.
var (
	// ErrNotSnapshot marks a file that does not start with the snapshot
	// magic — not a snapshot at all, rather than a damaged one.
	ErrNotSnapshot = errors.New("snapshot: not a dehealth snapshot file")
	// ErrVersion marks a snapshot written by an unsupported (typically
	// future) format version.
	ErrVersion = errors.New("snapshot: unsupported snapshot format version")
	// ErrTruncated marks a file shorter than its header claims.
	ErrTruncated = errors.New("snapshot: truncated snapshot file")
	// ErrCorrupt marks a structurally invalid file: checksum mismatch,
	// malformed section table, or sections that fail decoding.
	ErrCorrupt = errors.New("snapshot: corrupt snapshot file")
)

// castagnoli is the CRC-32C table shared by every checksum in the format.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures Load.
type Options struct {
	// NoMmap forces the copying load path: the file is read into heap
	// memory and every section is decoded into freshly allocated slices,
	// so nothing in the loaded world aliases the file. The default (false)
	// memory-maps the file and hands out zero-copy slice views over the
	// mapping where alignment and byte order allow.
	NoMmap bool
}

// rawSection is one section: a typed id and its raw little-endian bytes.
type rawSection struct {
	id   uint32
	data []byte
}

// align8 rounds n up to the next multiple of 8 — the section alignment
// that makes zero-copy float64/int64 views safe on the mapped file.
func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// writeRaw lays the sections out in order and writes the file atomically
// (temp file in the same directory + rename), so a crash mid-save can
// never leave a half-written snapshot under the target name.
func writeRaw(path string, secs []rawSection) (err error) {
	// Layout pass: assign aligned offsets.
	off := align8(headerSize + uint64(len(secs))*entrySize)
	offs := make([]uint64, len(secs))
	for i, s := range secs {
		offs[i] = off
		off = align8(off + uint64(len(s.data)))
	}
	total := off

	header := make([]byte, headerSize+len(secs)*entrySize)
	copy(header, magic)
	binary.LittleEndian.PutUint16(header[6:], Version)
	binary.LittleEndian.PutUint32(header[8:], uint32(len(secs)))
	binary.LittleEndian.PutUint64(header[16:], total)
	for i, s := range secs {
		e := header[headerSize+i*entrySize:]
		binary.LittleEndian.PutUint32(e[0:], s.id)
		binary.LittleEndian.PutUint32(e[4:], crc32.Checksum(s.data, castagnoli))
		binary.LittleEndian.PutUint64(e[8:], offs[i])
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.data)))
	}
	binary.LittleEndian.PutUint32(header[12:], crc32.Checksum(header[headerSize:], castagnoli))

	tmp, err := os.CreateTemp(dirOf(path), ".snapshot-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(header); err != nil {
		return err
	}
	pos := uint64(len(header))
	var pad [8]byte
	for i, s := range secs {
		if offs[i] > pos {
			if _, err = tmp.Write(pad[:offs[i]-pos]); err != nil {
				return err
			}
			pos = offs[i]
		}
		if _, err = tmp.Write(s.data); err != nil {
			return err
		}
		pos += uint64(len(s.data))
	}
	if total > pos { // trailing alignment of the last section
		if _, err = tmp.Write(pad[:total-pos]); err != nil {
			return err
		}
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// dirOf returns the directory of path ("." for a bare file name), for
// same-filesystem temp-file placement.
func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i+1]
		}
	}
	return "."
}

// rawFile is a validated snapshot file: the backing bytes (mapped or
// heap), the decoded section table, and whether sections may be aliased
// zero-copy.
type rawFile struct {
	data []byte
	// zeroCopy reports that typed slices may alias data directly: the file
	// is memory-mapped (so the backing never moves and is never written)
	// and the platform is little-endian with 64-bit ints.
	zeroCopy bool
	// version is the file's stated format version, in [minVersion, Version];
	// decoders with per-version layouts branch on it.
	version int
	secs    []rawSection // data fields alias rawFile.data
}

// readRaw opens, (optionally) maps and fully validates a snapshot file:
// magic, version, size, table checksum, per-section bounds, alignment and
// checksums. Any failure returns a typed error and no data.
func readRaw(path string, noMmap bool) (*rawFile, error) {
	data, mapped, err := readFileBytes(path, noMmap)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(data), headerSize)
	}
	if string(data[:6]) != magic {
		return nil, ErrNotSnapshot
	}
	version := int(binary.LittleEndian.Uint16(data[6:]))
	if version < minVersion || version > Version {
		return nil, fmt.Errorf("%w: file version %d, this build reads versions %d-%d", ErrVersion, version, minVersion, Version)
	}
	count := binary.LittleEndian.Uint32(data[8:])
	tableCRC := binary.LittleEndian.Uint32(data[12:])
	stated := binary.LittleEndian.Uint64(data[16:])
	if uint64(len(data)) < stated {
		return nil, fmt.Errorf("%w: file is %d bytes, header states %d", ErrTruncated, len(data), stated)
	}
	if uint64(len(data)) != stated {
		return nil, fmt.Errorf("%w: file is %d bytes, header states %d", ErrCorrupt, len(data), stated)
	}
	tableEnd := uint64(headerSize) + uint64(count)*entrySize
	if tableEnd > stated {
		return nil, fmt.Errorf("%w: section table (%d entries) exceeds file", ErrCorrupt, count)
	}
	table := data[headerSize:tableEnd]
	if crc32.Checksum(table, castagnoli) != tableCRC {
		return nil, fmt.Errorf("%w: section table checksum mismatch", ErrCorrupt)
	}
	f := &rawFile{data: data, zeroCopy: mapped && nativeLittleEndian && intIs64, version: version}
	f.secs = make([]rawSection, count)
	for i := range f.secs {
		e := table[i*entrySize:]
		id := binary.LittleEndian.Uint32(e[0:])
		crc := binary.LittleEndian.Uint32(e[4:])
		off := binary.LittleEndian.Uint64(e[8:])
		n := binary.LittleEndian.Uint64(e[16:])
		if off%8 != 0 || off < tableEnd || off+n < off || off+n > stated {
			return nil, fmt.Errorf("%w: section %d spans [%d, %d) outside the file", ErrCorrupt, id, off, off+n)
		}
		body := data[off : off+n]
		if crc32.Checksum(body, castagnoli) != crc {
			return nil, fmt.Errorf("%w: section %d checksum mismatch", ErrCorrupt, id)
		}
		f.secs[i] = rawSection{id: id, data: body}
	}
	return f, nil
}

// section returns the single section with the given id, or an ErrCorrupt
// error when it is absent or duplicated.
func (f *rawFile) section(id uint32) ([]byte, error) {
	var found []byte
	seen := false
	for _, s := range f.secs {
		if s.id == id {
			if seen {
				return nil, fmt.Errorf("%w: duplicate section %d", ErrCorrupt, id)
			}
			found, seen = s.data, true
		}
	}
	if !seen {
		return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, id)
	}
	return found, nil
}

// sections returns every section with the given id, in file order
// (repeated ids carry per-shard payloads).
func (f *rawFile) sections(id uint32) [][]byte {
	var out [][]byte
	for _, s := range f.secs {
		if s.id == id {
			out = append(out, s.data)
		}
	}
	return out
}
