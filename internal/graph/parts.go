// Snapshot support: the frozen adjacency in CSR form. AdjacencyParts
// flattens a frozen graph into (offsets, neighbor ids, weights) for
// serialization; NewFromAdjacency rebuilds a frozen graph from those
// arrays. The round trip preserves topology and weights exactly — the
// adjacency is already sorted by neighbor id, and the flat arrays keep
// that order.

package graph

import "fmt"

// AdjacencyParts returns the graph's frozen adjacency in CSR form:
// off has NumNodes()+1 entries, and node u's neighbors are
// to[off[u]:off[u+1]] with weights weight[off[u]:off[u+1]], sorted by
// neighbor id. Neighbor ids are int32 (a node count beyond 2^31 is far
// outside this package's design envelope; AdjacencyParts panics rather
// than truncating if that is ever violated).
func (g *Graph) AdjacencyParts() (off []int, to []int32, weight []float64) {
	g.Freeze()
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	off = make([]int, g.n+1)
	to = make([]int32, 0, total)
	weight = make([]float64, 0, total)
	for u, es := range g.adj {
		for _, e := range es {
			if int(int32(e.To)) != e.To {
				panic(fmt.Sprintf("graph: node id %d overflows int32", e.To))
			}
			to = append(to, int32(e.To))
			weight = append(weight, e.Weight)
		}
		off[u+1] = len(to)
	}
	return off, to, weight
}

// NewFromAdjacency rebuilds a frozen graph of n nodes from CSR adjacency
// parts (the inverse of AdjacencyParts). The edge structs are materialized
// into one backing array with each node's adjacency a capacity-clamped
// view of it, so a later AddEdge on the frozen graph reallocates that
// node's slice instead of clobbering its neighbor's. The parts are
// validated (offset shape, id bounds, per-node sort order); a violation
// returns an error rather than a graph whose binary-searched reads would
// misbehave.
func NewFromAdjacency(n int, off []int, to []int32, weight []float64) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	if len(off) != n+1 {
		return nil, fmt.Errorf("graph: adjacency offsets cover %d nodes, want %d", len(off)-1, n)
	}
	if len(to) != len(weight) {
		return nil, fmt.Errorf("graph: %d neighbor ids with %d weights", len(to), len(weight))
	}
	if off[0] != 0 || off[n] != len(to) {
		return nil, fmt.Errorf("graph: adjacency offsets span [%d, %d), arrays have %d", off[0], off[n], len(to))
	}
	backing := make([]Edge, len(to))
	adj := make([][]Edge, n)
	for u := 0; u < n; u++ {
		lo, hi := off[u], off[u+1]
		if lo > hi {
			return nil, fmt.Errorf("graph: adjacency offsets decrease at node %d", u)
		}
		prev := -1
		for i := lo; i < hi; i++ {
			v := int(to[i])
			if v < 0 || v >= n {
				return nil, fmt.Errorf("graph: neighbor id %d of node %d outside [0, %d)", v, u, n)
			}
			if v <= prev {
				return nil, fmt.Errorf("graph: adjacency of node %d not strictly sorted", u)
			}
			prev = v
			backing[i] = Edge{To: v, Weight: weight[i]}
		}
		adj[u] = backing[lo:hi:hi]
	}
	return &Graph{n: n, adj: adj}, nil
}
