// Package graph implements the user correlation graph and its
// User-Data-Attribute (UDA) extension from §II-B of the De-Health paper.
//
// Nodes are users; an undirected edge connects two users who posted under
// the same thread, weighted by the number of distinct threads they
// co-discussed. The UDA extension attaches to every user the binary/weighted
// attribute set derived from the stylometric features.
//
// The package also provides the graph analytics used by the paper: degree
// distributions (Fig.7), connected components and label-propagation
// communities (Fig.8, Appendix B), landmark distance vectors (the global
// correlation features), and NCS vectors (the local correlation features).
package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dehealth/internal/corpus"
	"dehealth/internal/stylometry"
)

// Edge is one endpoint of a weighted undirected edge.
type Edge struct {
	To     int
	Weight float64
}

// Graph is a weighted undirected user correlation graph.
//
// Edges are accumulated into per-node hash maps while the graph is being
// built (so AddEdge is O(1) even on dense co-discussion threads) and frozen
// into adjacency slices sorted by neighbor id on first read. Freezing is
// transparent: any read freezes a dirty graph, and AddEdge on a frozen
// graph splices the edge into the sorted adjacency in place, so incremental
// growth (AddNodes + a few edges per new node) stays cheap. Reads of a
// frozen graph are safe from many goroutines; mutation is single-goroutine.
type Graph struct {
	n        int
	adj      [][]Edge          // frozen adjacency, sorted by To; valid when building == nil
	building []map[int]float64 // edge accumulator, non-nil while building
}

// NewGraph creates an empty graph with n nodes.
func NewGraph(n int) *Graph {
	return &Graph{n: n, building: make([]map[int]float64, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	g.Freeze()
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total / 2
}

// AddNodes grows the graph by k isolated nodes and returns the index of the
// first new node. Works on building and frozen graphs alike; a frozen graph
// stays frozen (the new nodes simply have empty adjacency), so appending
// nodes never forces a re-freeze of the existing topology.
func (g *Graph) AddNodes(k int) int {
	first := g.n
	if k <= 0 {
		return first
	}
	g.n += k
	if g.building != nil {
		g.building = append(g.building, make([]map[int]float64, k)...)
	} else {
		g.adj = append(g.adj, make([][]Edge, k)...)
	}
	return first
}

// AddEdge inserts an undirected edge u—v with weight w, or adds w to the
// weight of the existing edge. Self-loops are ignored.
//
// On a frozen graph the edge is spliced into the sorted adjacency in place —
// O(deg) per endpoint — rather than thawing the whole graph back into
// accumulator maps. The incremental-ingest workload (a freshly appended node
// acquiring a handful of co-discussion edges) therefore never pays an O(E)
// rebuild; bulk construction should still go through a building (unfrozen)
// graph, where accumulation is O(1) per edge.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		return
	}
	if g.building == nil {
		g.bumpFrozen(u, v, w)
		g.bumpFrozen(v, u, w)
		return
	}
	g.bump(u, v, w)
	g.bump(v, u, w)
}

// bumpFrozen adds w to the directed half-edge u→v of a frozen graph,
// inserting it at its sorted position when absent.
func (g *Graph) bumpFrozen(u, v int, w float64) {
	es := g.adj[u]
	i := sort.Search(len(es), func(k int) bool { return es[k].To >= v })
	if i < len(es) && es[i].To == v {
		es[i].Weight += w
		return
	}
	es = append(es, Edge{})
	copy(es[i+1:], es[i:])
	es[i] = Edge{To: v, Weight: w}
	g.adj[u] = es
}

func (g *Graph) bump(u, v int, w float64) {
	m := g.building[u]
	if m == nil {
		m = make(map[int]float64)
		g.building[u] = m
	}
	m[v] += w
}

// Freeze materializes the adjacency slices (sorted by neighbor id) and
// releases the edge-accumulator maps. Idempotent; every read method freezes
// implicitly, so calling it explicitly only matters to control when the
// one-time cost is paid.
func (g *Graph) Freeze() {
	if g.building == nil {
		return
	}
	adj := make([][]Edge, g.n)
	for u, m := range g.building {
		if len(m) == 0 {
			continue
		}
		es := make([]Edge, 0, len(m))
		for v, w := range m {
			es = append(es, Edge{To: v, Weight: w})
		}
		sort.Slice(es, func(i, j int) bool { return es[i].To < es[j].To })
		adj[u] = es
	}
	g.adj = adj
	g.building = nil
}

// Neighbors returns u's adjacency list, sorted by neighbor id (shared slice;
// do not modify).
func (g *Graph) Neighbors(u int) []Edge {
	g.Freeze()
	return g.adj[u]
}

// Degree returns d_u, the number of neighbors of u.
func (g *Graph) Degree(u int) int {
	g.Freeze()
	return len(g.adj[u])
}

// WeightedDegree returns wd_u, the sum of incident edge weights.
func (g *Graph) WeightedDegree(u int) float64 {
	g.Freeze()
	var s float64
	for _, e := range g.adj[u] {
		s += e.Weight
	}
	return s
}

// EdgeWeight returns the weight of edge u—v, or 0 if absent.
func (g *Graph) EdgeWeight(u, v int) float64 {
	g.Freeze()
	es := g.adj[u]
	i := sort.Search(len(es), func(k int) bool { return es[k].To >= v })
	if i < len(es) && es[i].To == v {
		return es[i].Weight
	}
	return 0
}

// NCS returns u's Neighborhood Correlation Strength vector: the incident
// edge weights in decreasing order (§II-B).
func (g *Graph) NCS(u int) []float64 {
	g.Freeze()
	out := make([]float64, len(g.adj[u]))
	for i, e := range g.adj[u] {
		out[i] = e.Weight
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// BFSDistances returns hop distances from src to every node; -1 marks
// unreachable nodes.
func (g *Graph) BFSDistances(src int) []int {
	g.Freeze()
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if dist[e.To] < 0 {
				dist[e.To] = dist[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}

// WeightedDistances returns shortest-path distances from src where an edge
// of weight w has length 1/w (stronger interaction = closer), computed with
// Dijkstra. Unreachable nodes get +Inf.
func (g *Graph) WeightedDistances(src int) []float64 {
	g.Freeze()
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &distHeap{items: []distItem{{node: src, d: 0}}}
	for h.Len() > 0 {
		it := h.pop()
		if it.d > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			if e.Weight <= 0 {
				continue
			}
			nd := it.d + 1/e.Weight
			if nd < dist[e.To] {
				dist[e.To] = nd
				h.push(distItem{node: e.To, d: nd})
			}
		}
	}
	return dist
}

// distHeap is a minimal binary min-heap for Dijkstra.
type distItem struct {
	node int
	d    float64
}

type distHeap struct{ items []distItem }

func (h *distHeap) Len() int { return len(h.items) }

func (h *distHeap) push(it distItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].d <= h.items[i].d {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *distHeap) pop() distItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].d < h.items[small].d {
			small = l
		}
		if r < len(h.items) && h.items[r].d < h.items[small].d {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// Components labels each node with a connected-component id (0-based,
// ordered by first-seen node) and returns the labels and component count.
func (g *Graph) Components() (labels []int, count int) {
	g.Freeze()
	labels = make([]int, g.n)
	for i := range labels {
		labels[i] = -1
	}
	for s := 0; s < g.n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = count
		stack := []int{s}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.adj[u] {
				if labels[e.To] < 0 {
					labels[e.To] = count
					stack = append(stack, e.To)
				}
			}
		}
		count++
	}
	return labels, count
}

// LabelPropagation runs weighted synchronous-free label propagation
// community detection and returns a community label per node and the number
// of communities. Deterministic for a given rng seed.
func (g *Graph) LabelPropagation(rng *rand.Rand, maxIter int) (labels []int, count int) {
	g.Freeze()
	labels = make([]int, g.n)
	for i := range labels {
		labels[i] = i
	}
	order := rng.Perm(g.n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for _, u := range order {
			if len(g.adj[u]) == 0 {
				continue
			}
			// Pick the label with the largest incident weight.
			weight := map[int]float64{}
			for _, e := range g.adj[u] {
				weight[labels[e.To]] += e.Weight
			}
			best, bestW := labels[u], weight[labels[u]]
			// Deterministic tie-break: smallest label wins.
			keys := make([]int, 0, len(weight))
			for l := range weight {
				keys = append(keys, l)
			}
			sort.Ints(keys)
			for _, l := range keys {
				if weight[l] > bestW {
					best, bestW = l, weight[l]
				}
			}
			if best != labels[u] {
				labels[u] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Re-densify labels.
	remap := map[int]int{}
	for i, l := range labels {
		if _, ok := remap[l]; !ok {
			remap[l] = len(remap)
		}
		labels[i] = remap[l]
	}
	return labels, len(remap)
}

// DegreeFilter returns the subgraph induced by nodes with degree >= minDeg
// (used by the Fig.8 community-structure views), along with the kept node
// ids in the original graph.
func (g *Graph) DegreeFilter(minDeg int) (*Graph, []int) {
	g.Freeze()
	var keep []int
	newID := make([]int, g.n)
	for i := range newID {
		newID[i] = -1
	}
	for u := 0; u < g.n; u++ {
		if g.Degree(u) >= minDeg {
			newID[u] = len(keep)
			keep = append(keep, u)
		}
	}
	sub := NewGraph(len(keep))
	for _, u := range keep {
		for _, e := range g.adj[u] {
			if newID[e.To] >= 0 && u < e.To {
				sub.AddEdge(newID[u], newID[e.To], e.Weight)
			}
		}
	}
	sub.Freeze()
	return sub, keep
}

// InducedRange returns the subgraph induced by the contiguous node range
// [lo, hi): node j of the result corresponds to node lo+j of g, and an edge
// survives iff both endpoints fall inside the range (edge weights are
// preserved; edges crossing the range boundary are dropped). The result is
// frozen. Used to give each auxiliary shard its own shard-local topology.
func (g *Graph) InducedRange(lo, hi int) *Graph {
	if lo < 0 || hi > g.n || lo > hi {
		panic(fmt.Sprintf("graph: InducedRange [%d, %d) out of [0, %d)", lo, hi, g.n))
	}
	g.Freeze()
	adj := make([][]Edge, hi-lo)
	for u := lo; u < hi; u++ {
		var es []Edge
		for _, e := range g.adj[u] {
			if e.To >= lo && e.To < hi {
				es = append(es, Edge{To: e.To - lo, Weight: e.Weight})
			}
		}
		adj[u-lo] = es // already sorted: the shift is monotonic
	}
	return &Graph{n: hi - lo, adj: adj}
}

// DegreeHistogram returns counts of nodes per degree (index = degree).
func (g *Graph) DegreeHistogram() []int {
	maxDeg := 0
	for u := 0; u < g.n; u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	hist := make([]int, maxDeg+1)
	for u := 0; u < g.n; u++ {
		hist[g.Degree(u)]++
	}
	return hist
}

// DegreeCDF returns, for each x in xs, the fraction of nodes with degree <= x
// (Fig.7).
func (g *Graph) DegreeCDF(xs []int) []float64 {
	degs := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		degs[u] = g.Degree(u)
	}
	sort.Ints(degs)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(sort.SearchInts(degs, x+1)) / float64(len(degs))
	}
	return out
}

// AverageDegree returns the mean node degree.
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	total := 0
	for u := 0; u < g.n; u++ {
		total += g.Degree(u)
	}
	return float64(total) / float64(g.n)
}

// TopDegreeNodes returns the k nodes with the largest degree, in decreasing
// degree order (ties broken by node id). Used for landmark selection.
func (g *Graph) TopDegreeNodes(k int) []int {
	ids := make([]int, g.n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.Degree(ids[a]), g.Degree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

// BuildCorrelation builds the user correlation graph of a dataset: users i,j
// are connected iff they posted under the same thread; the edge weight is
// the number of distinct threads they co-discussed (§II-B).
func BuildCorrelation(d *corpus.Dataset) *Graph {
	g := NewGraph(len(d.Users))
	// Distinct participants per thread.
	participants := make(map[int][]int, len(d.Threads))
	seen := map[[2]int]bool{}
	for _, p := range d.Posts {
		key := [2]int{p.Thread, p.User}
		if !seen[key] {
			seen[key] = true
			participants[p.Thread] = append(participants[p.Thread], p.User)
		}
	}
	for _, us := range participants {
		sort.Ints(us)
		for i := 0; i < len(us); i++ {
			for j := i + 1; j < len(us); j++ {
				g.AddEdge(us[i], us[j], 1)
			}
		}
	}
	g.Freeze()
	return g
}

// UDA is the User-Data-Attribute graph: the correlation graph plus the
// per-user attribute sets A(u)/WA(u) derived from stylometric features.
type UDA struct {
	*Graph
	// Attrs[u] is the attribute set of user u.
	Attrs []stylometry.AttrSet
	// PostVectors[u] are the stylometric vectors of u's posts (kept for the
	// refined-DA classifier).
	PostVectors [][][]float64
}

// BuildUDA constructs the UDA graph of a dataset with the given extractor,
// extracting every post's feature vector serially. Callers that already hold
// precomputed vectors (a features.Store) should use BuildUDAFromVectors,
// which decouples graph topology from extraction.
func BuildUDA(d *corpus.Dataset, ex *stylometry.Extractor) *UDA {
	texts := d.UserTexts()
	vecs := make([][][]float64, len(d.Users))
	for u, ts := range texts {
		vecs[u] = ex.ExtractAll(ts)
	}
	return BuildUDAFromVectors(d, vecs, nil)
}

// AppendNode grows the UDA graph by one user node carrying the given
// attribute set and post vectors, returning the new node's index. The
// caller is responsible for adding the node's co-discussion edges
// (AddEdge); features.Store.Append does both from its thread-participant
// index. Not safe to call concurrently with reads.
func (g *UDA) AppendNode(attrs stylometry.AttrSet, vecs [][]float64) int {
	u := g.AddNodes(1)
	g.Attrs = append(g.Attrs, attrs)
	g.PostVectors = append(g.PostVectors, vecs)
	return u
}

// InducedRange returns the UDA subgraph induced by the contiguous user
// range [lo, hi): the induced correlation topology plus per-user attribute
// sets and post vectors as slice views of this graph's — no vector or
// attribute data is copied. The shard engine uses it to give each
// auxiliary partition its own shard-local UDA.
func (g *UDA) InducedRange(lo, hi int) *UDA {
	return &UDA{
		Graph:       g.Graph.InducedRange(lo, hi),
		Attrs:       g.Attrs[lo:hi:hi],
		PostVectors: g.PostVectors[lo:hi:hi],
	}
}

// BuildUDAFromVectors constructs the UDA graph of a dataset from precomputed
// per-user post vectors (postVectors[u] lists u's post vectors in post
// order, as UserTexts orders them). attrs may be nil, in which case the
// attribute sets are derived from the vectors; when supplied it must be the
// per-user UserAttributes projection of postVectors.
func BuildUDAFromVectors(d *corpus.Dataset, postVectors [][][]float64, attrs []stylometry.AttrSet) *UDA {
	g := BuildCorrelation(d)
	if attrs == nil {
		attrs = make([]stylometry.AttrSet, len(d.Users))
		for u, vs := range postVectors {
			attrs[u] = stylometry.UserAttributes(vs)
		}
	}
	return &UDA{Graph: g, Attrs: attrs, PostVectors: postVectors}
}
