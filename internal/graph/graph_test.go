package graph

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dehealth/internal/corpus"
	"dehealth/internal/stylometry"
)

// path builds 0-1-2-...-n-1 with unit weights.
func path(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func TestAddEdgeAccumulates(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 2)
	if got := g.EdgeWeight(0, 1); got != 3 {
		t.Errorf("weight = %v, want 3", got)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1", g.NumEdges())
	}
	g.AddEdge(2, 2, 5) // self loop ignored
	if g.Degree(2) != 0 {
		t.Error("self loop created adjacency")
	}
}

func TestDegreeAndNCS(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 2)
	if g.Degree(0) != 3 {
		t.Errorf("degree = %d", g.Degree(0))
	}
	if g.WeightedDegree(0) != 6 {
		t.Errorf("weighted degree = %v", g.WeightedDegree(0))
	}
	if got := g.NCS(0); !reflect.DeepEqual(got, []float64{3, 2, 1}) {
		t.Errorf("NCS = %v, want [3 2 1]", got)
	}
	if got := g.NCS(1); !reflect.DeepEqual(got, []float64{3}) {
		t.Errorf("NCS(1) = %v", got)
	}
}

func TestBFSDistances(t *testing.T) {
	g := path(4)
	d := g.BFSDistances(0)
	if !reflect.DeepEqual(d, []int{0, 1, 2, 3}) {
		t.Errorf("BFS = %v", d)
	}
	// Disconnected node.
	g2 := NewGraph(3)
	g2.AddEdge(0, 1, 1)
	d2 := g2.BFSDistances(0)
	if d2[2] != -1 {
		t.Errorf("unreachable distance = %d, want -1", d2[2])
	}
}

func TestWeightedDistances(t *testing.T) {
	// Heavier edges are shorter: 0-1 (w=2, len 0.5), 1-2 (w=1, len 1),
	// direct 0-2 (w=0.5, len 2) => shortest 0->2 is via 1 (1.5).
	g := NewGraph(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 0.5)
	d := g.WeightedDistances(0)
	if math.Abs(d[2]-1.5) > 1e-12 {
		t.Errorf("weighted dist = %v, want 1.5", d[2])
	}
	// Unreachable => +Inf.
	g2 := NewGraph(2)
	if !math.IsInf(g2.WeightedDistances(0)[1], 1) {
		t.Error("unreachable weighted distance must be +Inf")
	}
}

func TestComponents(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	labels, n := g.Components()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[0] == labels[2] || labels[4] == labels[0] {
		t.Errorf("labels = %v", labels)
	}
}

func TestLabelPropagation(t *testing.T) {
	// Two dense triangles joined by a weak bridge.
	g := NewGraph(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		g.AddEdge(e[0], e[1], 5)
	}
	g.AddEdge(2, 3, 0.1)
	labels, n := g.LabelPropagation(rand.New(rand.NewSource(1)), 50)
	if n < 2 {
		t.Errorf("communities = %d, want >= 2", n)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("triangle 1 split: %v", labels)
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Errorf("triangle 2 split: %v", labels)
	}
}

func TestDegreeFilter(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	g.AddEdge(1, 2, 1)
	sub, kept := g.DegreeFilter(2)
	if !reflect.DeepEqual(kept, []int{0, 1, 2}) {
		t.Fatalf("kept = %v", kept)
	}
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Errorf("sub has %d nodes, %d edges", sub.NumNodes(), sub.NumEdges())
	}
}

func TestDegreeHistogramAndCDF(t *testing.T) {
	g := path(4) // degrees 1,2,2,1
	h := g.DegreeHistogram()
	if !reflect.DeepEqual(h, []int{0, 2, 2}) {
		t.Errorf("hist = %v", h)
	}
	cdf := g.DegreeCDF([]int{0, 1, 2})
	if !reflect.DeepEqual(cdf, []float64{0, 0.5, 1}) {
		t.Errorf("cdf = %v", cdf)
	}
	if g.AverageDegree() != 1.5 {
		t.Errorf("avg degree = %v", g.AverageDegree())
	}
}

func TestTopDegreeNodes(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	g.AddEdge(1, 2, 1)
	got := g.TopDegreeNodes(2)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("top degree = %v", got)
	}
	if got := g.TopDegreeNodes(10); len(got) != 4 {
		t.Errorf("requesting more than n returns %d", len(got))
	}
}

func TestBuildCorrelation(t *testing.T) {
	d := &corpus.Dataset{
		Name: "t",
		Users: []corpus.User{
			{ID: 0, Name: "a", TrueIdentity: -1},
			{ID: 1, Name: "b", TrueIdentity: -1},
			{ID: 2, Name: "c", TrueIdentity: -1},
		},
		Threads: []corpus.Thread{
			{ID: 0, Board: "x", Starter: 0},
			{ID: 1, Board: "x", Starter: 0},
			{ID: 2, Board: "y", Starter: 2},
		},
		Posts: []corpus.Post{
			{ID: 0, User: 0, Thread: 0, Text: "p"},
			{ID: 1, User: 1, Thread: 0, Text: "p"},
			{ID: 2, User: 0, Thread: 1, Text: "p"},
			{ID: 3, User: 1, Thread: 1, Text: "p"},
			{ID: 4, User: 1, Thread: 1, Text: "second post same thread"},
			{ID: 5, User: 2, Thread: 2, Text: "p"},
		},
	}
	g := BuildCorrelation(d)
	// Users 0 and 1 co-discussed threads 0 and 1 => weight 2.
	if got := g.EdgeWeight(0, 1); got != 2 {
		t.Errorf("weight(0,1) = %v, want 2 (distinct threads, not post pairs)", got)
	}
	if g.Degree(2) != 0 {
		t.Error("isolated user must have degree 0")
	}
}

func TestBuildUDA(t *testing.T) {
	d := &corpus.Dataset{
		Name: "t",
		Users: []corpus.User{
			{ID: 0, Name: "a", TrueIdentity: -1},
			{ID: 1, Name: "b", TrueIdentity: -1},
		},
		Threads: []corpus.Thread{{ID: 0, Board: "x", Starter: 0}},
		Posts: []corpus.Post{
			{ID: 0, User: 0, Thread: 0, Text: "i beleive the doctor is right"},
			{ID: 1, User: 1, Thread: 0, Text: "numbers like 42 are nice"},
		},
	}
	ex := stylometry.New()
	uda := BuildUDA(d, ex)
	if len(uda.Attrs) != 2 || len(uda.PostVectors) != 2 {
		t.Fatal("missing attributes or vectors")
	}
	if uda.Attrs[0].Len() == 0 || uda.Attrs[1].Len() == 0 {
		t.Error("users must have attributes")
	}
	if uda.EdgeWeight(0, 1) != 1 {
		t.Error("co-thread edge missing")
	}
	// User 0 used a known misspelling; that attribute must be set for 0 only.
	missIdx := -1
	for i, f := range ex.Features() {
		if f.Name == "misspell:beleive" {
			missIdx = i
		}
	}
	if !uda.Attrs[0].Has(missIdx) {
		t.Error("misspelling attribute missing on author")
	}
	if uda.Attrs[1].Has(missIdx) {
		t.Error("misspelling attribute leaked to other user")
	}
}

// Property: BFS distances satisfy the edge relaxation property on random
// graphs (no edge can shortcut a shortest path by more than 1).
func TestBFSRelaxationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := NewGraph(n)
		for i := 0; i < n*2; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		d := g.BFSDistances(0)
		for u := 0; u < n; u++ {
			if d[u] < 0 {
				continue
			}
			for _, e := range g.Neighbors(u) {
				if d[e.To] < 0 || d[e.To] > d[u]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: weighted Dijkstra distances are symmetric on undirected graphs.
func TestDijkstraSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := NewGraph(n)
		for i := 0; i < n*2; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Float64()*4)
		}
		for s := 0; s < n; s++ {
			ds := g.WeightedDistances(s)
			for v := 0; v < n; v++ {
				dv := g.WeightedDistances(v)
				if math.Abs(ds[v]-dv[s]) > 1e-9 && !(math.IsInf(ds[v], 1) && math.IsInf(dv[s], 1)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLabelPropagationDeterministic(t *testing.T) {
	g := NewGraph(30)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		g.AddEdge(rng.Intn(30), rng.Intn(30), 1+rng.Float64())
	}
	a, na := g.LabelPropagation(rand.New(rand.NewSource(7)), 50)
	b, nb := g.LabelPropagation(rand.New(rand.NewSource(7)), 50)
	if na != nb || !reflect.DeepEqual(a, b) {
		t.Error("label propagation must be deterministic for a fixed seed")
	}
}

// Property: DegreeFilter keeps exactly the nodes whose original degree
// clears the threshold, and never invents edges.
func TestDegreeFilterProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := NewGraph(n)
		for i := 0; i < n*2; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		minDeg := rng.Intn(5)
		sub, kept := g.DegreeFilter(minDeg)
		keptSet := map[int]bool{}
		for _, u := range kept {
			if g.Degree(u) < minDeg {
				return false
			}
			keptSet[u] = true
		}
		for u := 0; u < n; u++ {
			if g.Degree(u) >= minDeg && !keptSet[u] {
				return false
			}
		}
		// Edge conservation: every subgraph edge exists in the original.
		for su := 0; su < sub.NumNodes(); su++ {
			for _, e := range sub.Neighbors(su) {
				if g.EdgeWeight(kept[su], kept[e.To]) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the sum of degrees equals twice the edge count.
func TestHandshakeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		g := NewGraph(n)
		for i := 0; i < n*3; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		total := 0
		for u := 0; u < n; u++ {
			total += g.Degree(u)
		}
		return total == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFreezeThawRoundtrip(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 3, 1)
	g.AddEdge(0, 1, 2)
	g.Freeze()
	// Reading after freeze, then adding again (thaw), then reading must
	// accumulate correctly and keep adjacency sorted by neighbor id.
	if g.Degree(0) != 2 {
		t.Fatalf("degree = %d, want 2", g.Degree(0))
	}
	g.AddEdge(0, 2, 4)
	g.AddEdge(0, 3, 1)
	es := g.Neighbors(0)
	want := []Edge{{To: 1, Weight: 2}, {To: 2, Weight: 4}, {To: 3, Weight: 2}}
	if !reflect.DeepEqual(es, want) {
		t.Fatalf("neighbors = %v, want %v", es, want)
	}
}

// TestDenseConstruction exercises the map-backed edge accumulator on a
// dense co-discussion clique (the case the old O(deg) linear-scan bump made
// quadratic) and checks totals.
func TestDenseConstruction(t *testing.T) {
	const n = 120
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	if got, want := g.NumEdges(), n*(n-1)/2; got != want {
		t.Fatalf("edges = %d, want %d", got, want)
	}
	for u := 0; u < n; u++ {
		if g.Degree(u) != n-1 {
			t.Fatalf("degree(%d) = %d, want %d", u, g.Degree(u), n-1)
		}
		es := g.Neighbors(u)
		for i := 1; i < len(es); i++ {
			if es[i-1].To >= es[i].To {
				t.Fatalf("adjacency of %d not sorted at %d", u, i)
			}
		}
	}
}

func TestBuildUDAFromVectorsMatchesBuildUDA(t *testing.T) {
	d := &corpus.Dataset{
		Name: "t",
		Users: []corpus.User{
			{ID: 0, Name: "a", TrueIdentity: -1},
			{ID: 1, Name: "b", TrueIdentity: -1},
			{ID: 2, Name: "c", TrueIdentity: -1},
		},
		Threads: []corpus.Thread{{ID: 0, Board: "x", Starter: 0}},
		Posts: []corpus.Post{
			{ID: 0, User: 0, Thread: 0, Text: "i beleive the doctor is right"},
			{ID: 1, User: 1, Thread: 0, Text: "numbers like 42 are nice"},
			{ID: 2, User: 2, Thread: 0, Text: "Absolutely, AND emphatically so!"},
			{ID: 3, User: 0, Thread: 0, Text: "a second opinion helps"},
		},
	}
	ex := stylometry.New()
	ex.FitBigrams(d.Texts(), 20)
	want := BuildUDA(d, ex)

	texts := d.UserTexts()
	vecs := make([][][]float64, len(d.Users))
	for u, ts := range texts {
		vecs[u] = ex.ExtractAll(ts)
	}
	got := BuildUDAFromVectors(d, vecs, nil)
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("edges %d != %d", got.NumEdges(), want.NumEdges())
	}
	for u := range want.Attrs {
		if !reflect.DeepEqual(got.Attrs[u].Idx, want.Attrs[u].Idx) ||
			!reflect.DeepEqual(got.Attrs[u].Weight, want.Attrs[u].Weight) {
			t.Fatalf("user %d attrs differ", u)
		}
	}
}

// TestAddNodesFrozenGrowth grows a frozen graph node by node and checks the
// spliced edges agree exactly with a from-scratch rebuild.
func TestAddNodesFrozenGrowth(t *testing.T) {
	g := path(4)
	g.Freeze()

	first := g.AddNodes(2)
	if first != 4 || g.NumNodes() != 6 {
		t.Fatalf("AddNodes returned %d, nodes %d; want 4, 6", first, g.NumNodes())
	}
	if g.Degree(4) != 0 || g.Degree(5) != 0 {
		t.Fatal("new nodes not isolated")
	}
	// Splice edges into the frozen graph, including a weight accumulation.
	g.AddEdge(4, 1, 1)
	g.AddEdge(4, 0, 1)
	g.AddEdge(4, 3, 2)
	g.AddEdge(4, 1, 1)
	g.AddEdge(5, 4, 1)

	want := NewGraph(6)
	for i := 0; i+1 < 4; i++ {
		want.AddEdge(i, i+1, 1)
	}
	want.AddEdge(4, 1, 2)
	want.AddEdge(4, 0, 1)
	want.AddEdge(4, 3, 2)
	want.AddEdge(5, 4, 1)
	for u := 0; u < 6; u++ {
		if !reflect.DeepEqual(g.Neighbors(u), want.Neighbors(u)) {
			t.Fatalf("node %d: adjacency %v, want %v", u, g.Neighbors(u), want.Neighbors(u))
		}
	}
	// Adjacency must stay sorted for EdgeWeight's binary search.
	if got := g.EdgeWeight(4, 1); got != 2 {
		t.Fatalf("EdgeWeight(4,1) = %v, want 2", got)
	}
	if got := g.BFSDistances(5)[0]; got != 2 {
		t.Fatalf("dist(5,0) = %d, want 2", got)
	}
}

// TestUDAAppendNode checks node appends carry attrs and post vectors and
// leave prior nodes untouched.
func TestUDAAppendNode(t *testing.T) {
	d := &corpus.Dataset{
		Name:    "t",
		Users:   []corpus.User{{ID: 0, Name: "a", TrueIdentity: -1}, {ID: 1, Name: "b", TrueIdentity: -1}},
		Threads: []corpus.Thread{{ID: 0, Board: "x", Starter: 0}},
		Posts: []corpus.Post{
			{ID: 0, User: 0, Thread: 0, Text: "first post about sleep"},
			{ID: 1, User: 1, Thread: 0, Text: "second post about pain"},
		},
	}
	ex := stylometry.New()
	u := BuildUDA(d, ex)
	vecs := ex.ExtractAll([]string{"a brand new user writes here"})
	attrs := stylometry.UserAttributes(vecs)
	id := u.AppendNode(attrs, vecs)
	if id != 2 || u.NumNodes() != 3 {
		t.Fatalf("AppendNode returned %d (nodes %d), want 2 (3)", id, u.NumNodes())
	}
	u.AddEdge(id, 0, 1)
	if u.Degree(id) != 1 || u.EdgeWeight(id, 0) != 1 {
		t.Fatal("appended node edge missing")
	}
	if len(u.PostVectors) != 3 || len(u.Attrs) != 3 {
		t.Fatal("attrs/post vectors not extended")
	}
	if len(u.PostVectors[2]) != 1 {
		t.Fatalf("appended node has %d post vectors, want 1", len(u.PostVectors[2]))
	}
}

// TestInducedRange checks the contiguous induced subgraph: in-range edges
// survive with their weights under shifted ids, boundary-crossing edges are
// dropped, and degenerate ranges work.
func TestInducedRange(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3) // crosses the [2, 5) boundary
	g.AddEdge(2, 3, 5)
	g.AddEdge(3, 4, 7)
	g.AddEdge(4, 5, 11) // crosses the upper boundary
	g.AddEdge(2, 4, 13)

	sub := g.InducedRange(2, 5)
	if sub.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", sub.NumNodes())
	}
	wantEdges := map[[2]int]float64{{0, 1}: 5, {1, 2}: 7, {0, 2}: 13}
	if sub.NumEdges() != len(wantEdges) {
		t.Fatalf("edges = %d, want %d", sub.NumEdges(), len(wantEdges))
	}
	for e, w := range wantEdges {
		if got := sub.EdgeWeight(e[0], e[1]); got != w {
			t.Errorf("EdgeWeight(%d, %d) = %v, want %v", e[0], e[1], got, w)
		}
	}
	// Adjacency stays sorted by neighbor id after the shift.
	for u := 0; u < sub.NumNodes(); u++ {
		es := sub.Neighbors(u)
		for i := 1; i < len(es); i++ {
			if es[i].To <= es[i-1].To {
				t.Fatalf("node %d adjacency unsorted: %+v", u, es)
			}
		}
	}

	if empty := g.InducedRange(3, 3); empty.NumNodes() != 0 || empty.NumEdges() != 0 {
		t.Fatal("empty range not empty")
	}
	if full := g.InducedRange(0, 6); full.NumEdges() != g.NumEdges() {
		t.Fatalf("full range has %d edges, want %d", full.NumEdges(), g.NumEdges())
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range InducedRange accepted")
		}
	}()
	g.InducedRange(4, 7)
}

// TestUDAInducedRange checks the UDA range view shares (not copies) the
// parent's attribute sets and post vectors.
func TestUDAInducedRange(t *testing.T) {
	d := &corpus.Dataset{
		Name: "t",
		Users: []corpus.User{
			{ID: 0, Name: "a", TrueIdentity: -1},
			{ID: 1, Name: "b", TrueIdentity: -1},
			{ID: 2, Name: "c", TrueIdentity: -1},
		},
		Threads: []corpus.Thread{{ID: 0, Board: "x", Starter: 0}, {ID: 1, Board: "x", Starter: 1}},
		Posts: []corpus.Post{
			{ID: 0, User: 0, Thread: 0, Text: "shared thread post one"},
			{ID: 1, User: 1, Thread: 0, Text: "shared thread post two"},
			{ID: 2, User: 1, Thread: 1, Text: "another thread entirely"},
			{ID: 3, User: 2, Thread: 1, Text: "joining the second thread"},
		},
	}
	u := BuildUDA(d, stylometry.New())
	sub := u.InducedRange(1, 3)
	if sub.NumNodes() != 2 || len(sub.Attrs) != 2 || len(sub.PostVectors) != 2 {
		t.Fatalf("sub sizes: nodes %d attrs %d vecs %d, want 2/2/2", sub.NumNodes(), len(sub.Attrs), len(sub.PostVectors))
	}
	// Edge 1-2 (users b, c) survives as 0-1; edge 0-1 is dropped.
	if sub.EdgeWeight(0, 1) != u.EdgeWeight(1, 2) || sub.EdgeWeight(0, 1) == 0 {
		t.Fatalf("surviving edge weight %v, want %v", sub.EdgeWeight(0, 1), u.EdgeWeight(1, 2))
	}
	// Post vectors are the same underlying slices, not copies.
	for i := 0; i < 2; i++ {
		if len(sub.PostVectors[i]) == 0 || &sub.PostVectors[i][0][0] != &u.PostVectors[1+i][0][0] {
			t.Fatalf("post vectors of sub node %d are not views of parent node %d", i, 1+i)
		}
	}
}
