#!/usr/bin/env bash
# End-to-end smoke of the distributed serving tier: build dehealthd and
# dehealth-router, cut a synthetic world into two snapshot slices, boot
# one shard server per slice, front them with the router, and assert the
# routed /v1/query and /v1/batch answers are complete (partial=false),
# well-formed, and ordered score-desc/id-asc. Exercises the same
# binaries and wire path an operator deploys, not the test harness.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building"
go build -o "$WORK/dehealthd" ./cmd/dehealthd
go build -o "$WORK/dehealth-router" ./cmd/dehealth-router

echo "== writing snapshot slices"
"$WORK/dehealthd" -synth 120 -synth-anon -seed 7 -shards 2 \
  -landmarks 10 -max-bigrams 80 -write-slices "$WORK/world"
ls -l "$WORK"/world.slice-*.snap

echo "== booting shard servers"
"$WORK/dehealthd" -addr 127.0.0.1:8701 -snapshot "$WORK/world.slice-0-of-2.snap" -flush-ms 1 &
PIDS+=($!)
"$WORK/dehealthd" -addr 127.0.0.1:8702 -snapshot "$WORK/world.slice-1-of-2.snap" -flush-ms 1 &
PIDS+=($!)

wait_200() { # url [tries]
  local url=$1 tries=${2:-50}
  for _ in $(seq "$tries"); do
    if curl -fsS "$url" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "timed out waiting for $url" >&2
  return 1
}
wait_200 http://127.0.0.1:8701/internal/shard
wait_200 http://127.0.0.1:8702/internal/shard
curl -fsS http://127.0.0.1:8701/internal/shard
echo
curl -fsS http://127.0.0.1:8702/internal/shard
echo

echo "== booting router"
"$WORK/dehealth-router" -addr 127.0.0.1:8800 \
  -shard http://127.0.0.1:8701 -shard http://127.0.0.1:8702 \
  -hedge-ms 50 -health-ms 200 &
PIDS+=($!)
wait_200 http://127.0.0.1:8800/healthz

echo "== routed queries"
curl -fsS -X POST http://127.0.0.1:8800/v1/query \
  -d '{"user": 0, "k": 5}' | tee "$WORK/query.json"
echo
curl -fsS -X POST http://127.0.0.1:8800/v1/batch \
  -d '{"users": [0, 1, 2, 3], "k": 5}' | tee "$WORK/batch.json"
echo
curl -fsS http://127.0.0.1:8800/v1/stats
echo

python3 - "$WORK/query.json" "$WORK/batch.json" <<'PY'
import json, sys

def check_order(cands, label):
    assert cands, f"{label}: empty candidate list"
    for a, b in zip(cands, cands[1:]):
        assert (a["score"], -a["user"]) >= (b["score"], -b["user"]), \
            f"{label}: merge order violated at {a} -> {b}"

q = json.load(open(sys.argv[1]))
assert not q.get("partial"), f"single query degraded to partial: {q}"
assert len(q["candidates"]) == 5, f"expected k=5 candidates: {q}"
check_order(q["candidates"], "query")

b = json.load(open(sys.argv[2]))
assert not b.get("partial"), f"batch degraded to partial: {b}"
assert len(b["results"]) == 4, f"expected 4 result lists: {b}"
for i, r in enumerate(b["results"]):
    assert len(r) == 5, f"batch user {i}: {len(r)} candidates, want 5"
    check_order(r, f"batch user {i}")
assert b["results"][0] == q["candidates"], \
    "batch and single answers for user 0 disagree"
print("router smoke OK: complete, ordered, batch/single consistent")
PY
