#!/usr/bin/env bash
# bench_trend.sh — one table over every BENCH_*.json artifact in the repo
# root, so a reviewer (or the CI log) can read the whole performance
# trajectory without opening seven JSON files. Each artifact's numeric
# scalars are flattened (one nesting level deep: "dense.full_qps",
# "qps.full-scan", ...); lists such as theta sweeps are summarized by
# entry count. Recall artifacts (BENCH_recall.json) additionally get a
# per-mode table with recall@10 and speedup columns plus each world's
# speedup-at-recall@0.95 headline, so the accuracy/speed trade-off of the
# approximate tier is visible in the same log. The script only reports —
# it never gates: benchmarks run on shared runners and a slow machine
# must not fail the build. Usage:
#
#   ./scripts/bench_trend.sh [dir]     # dir defaults to the repo root
set -euo pipefail

dir=${1:-$(cd "$(dirname "$0")/.." && pwd)}
if ! command -v python3 >/dev/null 2>&1; then
    echo "bench_trend: python3 not available, skipping trend table" >&2
    exit 0
fi
shopt -s nullglob
files=("$dir"/BENCH_*.json)
if [ ${#files[@]} -eq 0 ]; then
    echo "bench_trend: no BENCH_*.json artifacts under $dir" >&2
    exit 0
fi

python3 - "${files[@]}" <<'PY'
import json
import sys


def flatten(prefix, v, out):
    if isinstance(v, bool):
        return
    if isinstance(v, (int, float)):
        out.append((prefix, v))
    elif isinstance(v, dict):
        for k in sorted(v):
            flatten(f"{prefix}.{k}" if prefix else k, v[k], out)
    elif isinstance(v, list):
        out.append((f"{prefix}[n]", len(v)))


def recall_table(name, doc):
    """Per-mode recall@10 / speedup table for recall artifacts: every
    world section carrying a theta_sweep contributes its swept modes and
    its speedup-at-recall@0.95 headline."""
    sweeps = []
    for world in sorted(doc):
        sec = doc[world]
        if isinstance(sec, dict) and isinstance(sec.get("theta_sweep"), list):
            sweeps.append((world, sec))
    if not sweeps:
        return
    print()
    print(f"{name}: approximate-tier recall sweep")
    print(f"{'world':<8}  {'theta':>5}  {'budget':>6}  {'recall@10':>9}  {'speedup':>8}  {'qps':>12}")
    print("-" * 58)
    for world, sec in sweeps:
        for row in sec["theta_sweep"]:
            print(f"{world:<8}  {row.get('theta', 0):>5.2f}  {row.get('budget', 0):>6}  "
                  f"{row.get('recall_10', 0):>9.4f}  {row.get('speedup', 0):>7.2f}x  "
                  f"{row.get('qps', 0):>12,.1f}")
    for world, sec in sweeps:
        best = sec.get("best_at_recall_0.95")
        if isinstance(best, dict):
            print(f"{world}: best speedup at recall >= 0.95 is "
                  f"{best.get('speedup', 0):.2f}x ({best.get('mode', '?')})")


rows = []
recall_docs = []
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    name = doc.get("benchmark", path.rsplit("/", 1)[-1])
    if any(isinstance(v, dict) and isinstance(v.get("theta_sweep"), list)
           for v in doc.values()):
        recall_docs.append((name, doc))
    core = "1-core" if doc.get("single_core") else f"{doc.get('gomaxprocs', '?')}-core"
    flat = []
    for key in sorted(doc):
        if key in ("benchmark", "generated", "interpretation", "baseline",
                   "gomaxprocs", "single_core", "world", "config"):
            continue
        flatten(key, doc[key], flat)
    for metric, value in flat:
        rows.append((name, metric, value, core))

wn = max(len(r[0]) for r in rows)
wm = max(len(r[1]) for r in rows)
print(f"{'benchmark':<{wn}}  {'metric':<{wm}}  {'value':>14}  cores")
print("-" * (wn + wm + 30))
for name, metric, value, core in rows:
    if isinstance(value, float):
        val = f"{value:,.3f}"
    else:
        val = f"{value:,}"
    print(f"{name:<{wn}}  {metric:<{wm}}  {val:>14}  {core}")

for name, doc in recall_docs:
    recall_table(name, doc)
PY
