#!/usr/bin/env bash
# bench_trend.sh — one table over every BENCH_*.json artifact in the repo
# root, so a reviewer (or the CI log) can read the whole performance
# trajectory without opening seven JSON files. Each artifact's numeric
# scalars are flattened (one nesting level deep: "dense.full_qps",
# "qps.full-scan", ...); lists such as theta sweeps are summarized by
# entry count. The script only reports — it never gates: benchmarks run
# on shared runners and a slow machine must not fail the build. Usage:
#
#   ./scripts/bench_trend.sh [dir]     # dir defaults to the repo root
set -euo pipefail

dir=${1:-$(cd "$(dirname "$0")/.." && pwd)}
if ! command -v python3 >/dev/null 2>&1; then
    echo "bench_trend: python3 not available, skipping trend table" >&2
    exit 0
fi
shopt -s nullglob
files=("$dir"/BENCH_*.json)
if [ ${#files[@]} -eq 0 ]; then
    echo "bench_trend: no BENCH_*.json artifacts under $dir" >&2
    exit 0
fi

python3 - "${files[@]}" <<'PY'
import json
import sys


def flatten(prefix, v, out):
    if isinstance(v, bool):
        return
    if isinstance(v, (int, float)):
        out.append((prefix, v))
    elif isinstance(v, dict):
        for k in sorted(v):
            flatten(f"{prefix}.{k}" if prefix else k, v[k], out)
    elif isinstance(v, list):
        out.append((f"{prefix}[n]", len(v)))


rows = []
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    name = doc.get("benchmark", path.rsplit("/", 1)[-1])
    core = "1-core" if doc.get("single_core") else f"{doc.get('gomaxprocs', '?')}-core"
    flat = []
    for key in sorted(doc):
        if key in ("benchmark", "generated", "interpretation", "baseline",
                   "gomaxprocs", "single_core", "world", "config"):
            continue
        flatten(key, doc[key], flat)
    for metric, value in flat:
        rows.append((name, metric, value, core))

wn = max(len(r[0]) for r in rows)
wm = max(len(r[1]) for r in rows)
print(f"{'benchmark':<{wn}}  {'metric':<{wm}}  {'value':>14}  cores")
print("-" * (wn + wm + 30))
for name, metric, value, core in rows:
    if isinstance(value, float):
        val = f"{value:,.3f}"
    else:
        val = f"{value:,}"
    print(f"{name:<{wn}}  {metric:<{wm}}  {val:>14}  {core}")
PY
