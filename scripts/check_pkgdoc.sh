#!/usr/bin/env bash
# check_pkgdoc.sh — fail when any package in the module lacks a package
# comment (the godoc contract: every internal/* package states its role
# and paper grounding; see docs/ARCHITECTURE.md). Used by the CI
# docs-lint step and runnable locally:
#
#   ./scripts/check_pkgdoc.sh
set -euo pipefail

missing=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...)
if [ -n "$missing" ]; then
    echo "packages missing a package comment:" >&2
    echo "$missing" >&2
    exit 1
fi
echo "package comments: all $(go list ./... | wc -l) packages documented"
