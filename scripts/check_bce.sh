#!/usr/bin/env bash
# check_bce.sh — fail when the batched scoring kernel's inner loops compile
# with bounds checks. The multi-query kernel (internal/similarity/batch.go)
# is written so the compiler can prove every per-row and per-query index
# in-bounds (sibling reslicing, uint guards, running offset cursors); this
# lint pins that property, because a single regressed hint silently costs
# double-digit percent on the hot path without failing any test. Used by
# the CI lint step and runnable locally:
#
#   ./scripts/check_bce.sh
#
# Per-row slice *headers* (IsSliceInBounds) are fine — they run once per
# aux row, not once per (query, element). Element checks (IsInBounds)
# inside batch.go are the regression this script rejects.
set -euo pipefail

diag=$(go build -gcflags='-d=ssa/check_bce' ./internal/similarity/ 2>&1 || true)
bad=$(echo "$diag" | grep 'Found IsInBounds' | grep 'batch.go' || true)
if [ -n "$bad" ]; then
    echo "bounds checks regressed in the batched scoring kernel:" >&2
    echo "$bad" >&2
    exit 1
fi
# Guard the guard: the diagnostics must actually be present (the package
# has known, allowed IsSliceInBounds sites), otherwise a toolchain change
# that silences -d=ssa/check_bce would make this lint pass vacuously.
if ! echo "$diag" | grep -q 'Found Is'; then
    echo "check_bce: no BCE diagnostics emitted — lint cannot verify the kernel" >&2
    echo "$diag" >&2
    exit 1
fi
echo "batched kernel: no element bounds checks in internal/similarity/batch.go"
