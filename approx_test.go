package dehealth

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dehealth/internal/corpus"
)

// approxWorld prepares a closed-world split with the approximate tier on.
func approxWorld(t *testing.T, users int, seed int64, shards int, cfg ApproxConfig) *PreparedWorld {
	t.Helper()
	w := GenerateWorld(WorldConfig{WebMDUsers: users, HBUsers: users, Seed: seed})
	split := SplitClosedWorld(w.WebMD, 0.5, seed+1)
	opt := DefaultOptions()
	opt.MaxBigrams = 50
	opt.Shards = shards
	opt.Approx = cfg
	return PrepareWorld(split.Anon, split.Aux, opt)
}

// TestApproxPreparedWorldExactUnbounded is the public-layer exactness
// guarantee: a world prepared with the approximate tier at the degenerate
// knobs (Theta and Budget zero) answers every query — including after
// ingestion — bit-identically to a world without the tier. The tier with
// conservative knobs is a pure accelerator.
func TestApproxPreparedWorldExactUnbounded(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxBigrams = 50
	opt.Landmarks = 5

	mkSplit := func() *Split {
		w := GenerateWorld(WorldConfig{WebMDUsers: 26, HBUsers: 26, Seed: 1021})
		return SplitClosedWorld(w.WebMD, 0.5, 1022)
	}
	plainSplit, approxSplit := mkSplit(), mkSplit()
	plain := PrepareWorld(plainSplit.Anon, plainSplit.Aux, opt)
	approxOpt := opt
	approxOpt.Approx = ApproxConfig{Enabled: true}
	approxOpt.Shards = 3
	approx := PrepareWorld(approxSplit.Anon, approxSplit.Aux, approxOpt)

	ingest := []UserPosts{
		{User: corpus.User{Name: "late-arrival", TrueIdentity: -1}, Posts: []IngestPost{
			{Thread: 0, Text: "the new medication finally started working for me"},
		}},
	}
	if _, err := plain.Ingest(ingest); err != nil {
		t.Fatal(err)
	}
	if _, err := approx.Ingest(ingest); err != nil {
		t.Fatal(err)
	}

	anon, _ := plain.Sizes()
	users := make([]int, anon)
	for i := range users {
		users[i] = i
	}
	wantBatch, err := plain.QueryBatch(users, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	gotBatch, err := approx.QueryBatch(users, 6, approxOpt)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < anon; u++ {
		got, err := approx.QueryUser(u, 6, approxOpt)
		if err != nil {
			t.Fatal(err)
		}
		want := wantBatch[u]
		if len(got) != len(want) || len(gotBatch[u]) != len(want) {
			t.Fatalf("user %d: lengths %d/%d, want %d", u, len(got), len(gotBatch[u]), len(want))
		}
		for i := range want {
			if got[i] != want[i] || gotBatch[u][i] != want[i] {
				t.Fatalf("user %d candidate %d: %+v / %+v, want %+v", u, i, got[i], gotBatch[u][i], want[i])
			}
		}
	}

	as := approx.ApproxStats()
	if !as.Enabled || as.Queries == 0 {
		t.Fatalf("approx world stats inactive: %+v", as)
	}
	if as.BudgetExhausted != 0 {
		t.Fatalf("unbounded budget cannot exhaust: %+v", as)
	}
	if got := plain.ApproxStats(); got.Enabled || got.Queries != 0 {
		t.Fatalf("tier-less world reports approx stats: %+v", got)
	}
}

// TestApproxRecallDense is the recall regression floor on a dense synth
// text world: with an aggressive Theta the tier must still recover at
// least 90% of the exact top-10, and every score it returns must be
// exact.
func TestApproxRecallDense(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxBigrams = 50
	opt.Landmarks = 5
	w := GenerateWorld(WorldConfig{WebMDUsers: 40, HBUsers: 40, Seed: 1031})
	mk := func(cfg ApproxConfig, shards int) *PreparedWorld {
		split := SplitClosedWorld(w.WebMD, 0.5, 1032)
		o := opt
		o.Shards = shards
		o.Approx = cfg
		return PrepareWorld(split.Anon, split.Aux, o)
	}
	plain := mk(ApproxConfig{}, 1)
	approx := mk(ApproxConfig{Enabled: true, Theta: 1.2}, 2)
	approxOpt := opt
	approxOpt.Approx = ApproxConfig{Enabled: true, Theta: 1.2}

	anon, aux := plain.Sizes()
	hits, want := 0, 0
	for u := 0; u < anon; u++ {
		exact, err := plain.QueryUser(u, 10, opt)
		if err != nil {
			t.Fatal(err)
		}
		all, err := plain.QueryUser(u, aux, opt)
		if err != nil {
			t.Fatal(err)
		}
		exactScore := make(map[int]float64, len(all))
		for _, c := range all {
			exactScore[c.User] = c.Score
		}
		got, err := approx.QueryUser(u, 10, approxOpt)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range got {
			if s, ok := exactScore[c.User]; !ok || s != c.Score {
				t.Fatalf("user %d candidate %d: approximate score %v, exact %v", u, i, c.Score, s)
			}
		}
		inGot := map[int]bool{}
		for _, c := range got {
			inGot[c.User] = true
		}
		for _, c := range exact {
			want++
			if inGot[c.User] {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(want)
	if recall < 0.9 {
		t.Fatalf("recall@10 at Theta 1.2 = %v, below the 0.9 floor", recall)
	}
	if as := approx.ApproxStats(); as.PostingsSkipped == 0 {
		t.Fatalf("aggressive Theta skipped no postings: %+v", as)
	}
}

// TestApproxSnapshotRoundTrip pins warm restart for the tier: a world
// prepared with Approx snapshots its shard indexes, the loaded world
// reports the tier enabled, and answers degenerate-knob approximate
// queries bit-identically to the world that saved it.
func TestApproxSnapshotRoundTrip(t *testing.T) {
	pw := approxWorld(t, 22, 1041, 3, ApproxConfig{Enabled: true})
	opt := DefaultOptions()
	opt.Landmarks = 5
	opt.Approx = ApproxConfig{Enabled: true}

	path := filepath.Join(t.TempDir(), "approx.snap")
	if err := pw.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	for _, noMmap := range []bool{false, true} {
		lw, err := LoadWorld(path, LoadOptions{NoMmap: noMmap})
		if err != nil {
			t.Fatal(err)
		}
		if !lw.PreparedOptions().Approx.Enabled {
			t.Fatal("loaded world lost the approximate tier")
		}
		anon, _ := pw.Sizes()
		for u := 0; u < anon; u++ {
			want, err := pw.QueryUser(u, 5, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := lw.QueryUser(u, 5, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("noMmap %v user %d: %d candidates, want %d", noMmap, u, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("noMmap %v user %d candidate %d: %+v, want %+v", noMmap, u, i, got[i], want[i])
				}
			}
		}
		if as := lw.ApproxStats(); !as.Enabled || as.Queries == 0 {
			t.Fatalf("loaded world approx stats inactive: %+v", as)
		}
	}
}

// TestStatsApproxBlock drives the full public serving stack: the wire
// "approx" knob reaches the tier of an Approx-prepared world, and
// /v1/stats carries its counters — while a tier-less world's stats omit
// the block.
func TestStatsApproxBlock(t *testing.T) {
	pw := approxWorld(t, 20, 1061, 2, ApproxConfig{Enabled: true, Theta: 1.1})
	opt := DefaultOptions()
	opt.Landmarks = 5
	opt.Approx = ApproxConfig{Enabled: true, Theta: 1.1}
	srv := NewServer(pw, ServeOptions{K: 5, FlushInterval: time.Millisecond, Attack: opt})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, body := range []string{`{"user": 0, "k": 5, "approx": true}`, `{"user": 1, "k": 5}`} {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %s: status %d", body, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Approx *struct {
			Queries       int64 `json:"queries"`
			CursorsOpened int64 `json:"cursors_opened"`
			Rescored      int64 `json:"rescored"`
			BlocksChecked int64 `json:"blocks_checked"`
		} `json:"approx"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Approx == nil || stats.Approx.Queries == 0 {
		t.Fatalf("stats missing approx block: %+v", stats.Approx)
	}
	// Exactly one of the two wire queries carried the approx knob, so the
	// counters must show one approximate query per shard and nothing from
	// the plain query — the tier is per-request opt-in even on a server
	// prepared with it enabled.
	if want := int64(2); stats.Approx.Queries != want {
		t.Fatalf("approx queries = %d, want %d (plain wire query must stay exact)", stats.Approx.Queries, want)
	}
	if stats.Approx.BlocksChecked == 0 {
		t.Fatalf("approx stats must carry block-max counters: %+v", stats.Approx)
	}

	// A world without the tier omits the block entirely.
	w := GenerateWorld(WorldConfig{WebMDUsers: 16, HBUsers: 16, Seed: 1062})
	split := SplitClosedWorld(w.WebMD, 0.5, 1063)
	plainOpt := DefaultOptions()
	plainOpt.MaxBigrams = 50
	pw2 := PrepareWorld(split.Anon, split.Aux, plainOpt)
	srv2 := NewServer(pw2, ServeOptions{K: 5})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["approx"]; ok {
		t.Fatal("tier-less stats must omit the approx block")
	}
}

// TestConcurrentApproxQueryIngest races approximate queries (single and
// batched, with live Theta/Budget knobs) against world growth under
// -race: every result must come back full-length with sorted candidates.
func TestConcurrentApproxQueryIngest(t *testing.T) {
	pw := approxWorld(t, 20, 1051, 2, ApproxConfig{Enabled: true})
	opt := DefaultOptions()
	opt.Landmarks = 5
	opt.Workers = 3
	opt.Approx = ApproxConfig{Enabled: true}
	anon0, _ := pw.Sizes()
	if _, err := pw.QueryUser(0, 3, opt); err != nil { // warm the pipeline
		t.Fatal(err)
	}

	const (
		queriers  = 4
		ingesters = 2
		rounds    = 8
	)
	var wg sync.WaitGroup
	errCh := make(chan error, (queriers+ingesters)*rounds)
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				qopt := opt
				// Exercise the live knobs concurrently: per-call Theta and
				// budget values must not race each other or ingestion.
				qopt.Approx.Theta = []float64{0, 1, 1.3}[i%3]
				qopt.Approx.Budget = []int{0, 0, 7}[g%3]
				q := 1 + (g+i)%(anon0-1)
				users := make([]int, q)
				for j := range users {
					users[j] = (g*rounds + i + j) % anon0
				}
				res, err := pw.QueryBatch(users, 4, qopt)
				if err != nil {
					errCh <- err
					return
				}
				if len(res) != q {
					errCh <- fmt.Errorf("batch of %d returned %d results", q, len(res))
					return
				}
				for _, cands := range res {
					for j := 1; j < len(cands); j++ {
						if cands[j].Score > cands[j-1].Score {
							errCh <- fmt.Errorf("approx batch candidates not sorted")
							return
						}
					}
				}
			}
		}(g)
	}
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("approx-racer-%d-%d", g, i)
				if _, err := pw.IngestUser(name, []IngestPost{
					{Thread: i % 3, Text: "new symptoms after switching medication"},
				}); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if anon1, _ := pw.Sizes(); anon1 != anon0+ingesters*rounds {
		t.Fatalf("anon users after race: %d, want %d", anon1, anon0+ingesters*rounds)
	}
	if as := pw.ApproxStats(); !as.Enabled || as.Queries == 0 {
		t.Fatalf("race left no approx activity: %+v", as)
	}
}
