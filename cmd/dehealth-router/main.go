// Command dehealth-router runs the distributed scatter-gather front of a
// De-Health shard fleet: it fans each query out to N dehealthd shard
// servers (each booted from a per-shard snapshot slice; see dehealthd
// -write-slices) and merges their answers bit-identically to a single
// sharded process, adding replication, hedged requests, per-shard
// deadlines with partial-result degradation, and bounded retries.
//
// Usage:
//
//	dehealth-router -addr :8800 \
//	    -shard http://host0:8701,http://host0b:8701 \
//	    -shard http://host1:8702
//
// Each -shard flag is one shard, in shard order, listing its replica base
// URLs comma-separated. The shard order must match the slice order the
// fleet was cut in (-write-slices names files .slice-<i>-of-<n>.snap);
// the router's health prober verifies every replica's advertised identity
// against its position, so a misordered topology is quarantined, not
// silently merged.
//
// API:
//
//	POST /v1/query  {"user": 17, "k": 10}        # merged top-k; "partial": true + "missing_shards" under degradation
//	POST /v1/batch  {"users": [17, 4], "k": 10}
//	GET  /v1/stats                               # replica health + retry/hedge/partial counters
//	GET  /healthz                                # 503 "degraded" when a shard has no healthy replica
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"dehealth/internal/router"
)

// shardFlags collects repeated -shard values in order.
type shardFlags [][]string

func (s *shardFlags) String() string { return "" }

func (s *shardFlags) Set(v string) error {
	var replicas []string
	for _, r := range strings.Split(v, ",") {
		if r = strings.TrimSpace(r); r != "" {
			replicas = append(replicas, r)
		}
	}
	*s = append(*s, replicas)
	return nil
}

func msToDuration(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

func main() {
	var shards shardFlags
	flag.Var(&shards, "shard", "one shard's replica base URLs, comma-separated; repeat once per shard, in shard order")
	var (
		addr      = flag.String("addr", ":8800", "HTTP listen address")
		k         = flag.Int("k", 10, "default Top-K candidate set size")
		timeoutMS = flag.Int("timeout-ms", 2000, "per-shard deadline (retries and hedges included); a shard missing it degrades the response to partial")
		hedgeMS   = flag.Int("hedge-ms", 0, "launch a hedged attempt on another replica after this many milliseconds without an answer (0 = off)")
		retries   = flag.Int("retries", 2, "extra attempts per shard call beyond the first (hedges share the budget)")
		backoffMS = flag.Int("retry-backoff-ms", 10, "delay before the first retry, doubling per retry")
		healthMS  = flag.Int("health-ms", 1000, "background replica health-probe period (< 0 disables probing)")
	)
	flag.Parse()

	r, err := router.New(router.Config{
		Shards:         shards,
		K:              *k,
		ShardTimeout:   msToDuration(*timeoutMS),
		HedgeDelay:     msToDuration(*hedgeMS),
		Retries:        *retries,
		RetryBackoff:   msToDuration(*backoffMS),
		HealthInterval: msToDuration(*healthMS),
	})
	if err != nil {
		log.Fatalf("dehealth-router: %v (pass -shard once per shard)", err)
	}
	defer r.Close()

	log.Printf("dehealth-router: fronting %d shards on %s (timeout %dms, hedge %dms, retries %d)",
		len(shards), *addr, *timeoutMS, *hedgeMS, *retries)
	if err := http.ListenAndServe(*addr, r.Handler()); err != nil {
		log.Fatalf("dehealth-router: %v", err)
	}
}
