// Command dehealth runs the two-phase De-Health de-anonymization attack on
// a pair of JSON datasets (anonymized Δ1 and auxiliary Δ2) and prints the
// resulting identifications.
//
// Usage:
//
//	dehealth -anon anon.json -aux aux.json -k 10 -classifier smo
//	dehealth -anon anon.json -aux aux.json -scheme mean-verification -r 0.25
package main

import (
	"flag"
	"fmt"
	"log"

	"dehealth"
)

func main() {
	var (
		anonPath = flag.String("anon", "", "anonymized dataset JSON (required)")
		auxPath  = flag.String("aux", "", "auxiliary dataset JSON (required)")
		k        = flag.Int("k", 10, "Top-K candidate set size")
		clf      = flag.String("classifier", "smo", "refined-DA classifier: knn, nn, smo, rlsc, nb")
		scheme   = flag.String("scheme", "closed", "open-world scheme: closed, false-addition, mean-verification, sigma-verification, distractorless")
		r        = flag.Float64("r", 0.25, "mean-verification margin")
		filter   = flag.Bool("filter", false, "apply the Algorithm 2 threshold filtering")
		matching = flag.Bool("matching", false, "use graph-matching candidate selection")
		seed     = flag.Int64("seed", 1, "seed for randomized components")
		maxShow  = flag.Int("show", 25, "print at most this many identifications (0 = all)")
	)
	flag.Parse()
	if *anonPath == "" || *auxPath == "" {
		log.Fatal("dehealth: -anon and -aux are required")
	}

	anon, err := dehealth.LoadDataset(*anonPath)
	if err != nil {
		log.Fatalf("dehealth: loading anonymized data: %v", err)
	}
	aux, err := dehealth.LoadDataset(*auxPath)
	if err != nil {
		log.Fatalf("dehealth: loading auxiliary data: %v", err)
	}

	opt := dehealth.DefaultOptions()
	opt.K = *k
	opt.Classifier = dehealth.Classifier(*clf)
	opt.Scheme = dehealth.Scheme(*scheme)
	opt.R = *r
	opt.Filter = *filter
	opt.GraphMatching = *matching
	opt.Seed = *seed

	res, err := dehealth.Attack(anon, aux, opt)
	if err != nil {
		log.Fatalf("dehealth: %v", err)
	}

	identified := 0
	for u, v := range res.Mapping {
		if v >= 0 {
			identified++
			if *maxShow == 0 || identified <= *maxShow {
				fmt.Printf("%-24s -> %s\n", anon.Users[u].Name, aux.Users[v].Name)
			}
		}
	}
	fmt.Printf("\nde-anonymized %d of %d anonymized users (%d -> ⊥)\n",
		identified, len(res.Mapping), len(res.Mapping)-identified)
}
