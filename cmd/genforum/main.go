// Command genforum generates a synthetic health-forum dataset calibrated to
// the paper's WebMD/HealthBoards statistics and writes it as JSON.
//
// Usage:
//
//	genforum -forum webmd -users 2000 -seed 7 -out webmd.json
//	genforum -forum healthboards -users 5000 -out hb.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"dehealth/internal/synth"
)

func main() {
	var (
		forum = flag.String("forum", "webmd", "forum preset: webmd or healthboards")
		users = flag.Int("users", 1000, "number of accounts")
		posts = flag.Int("posts", 0, "fixed posts per user (0 = calibrated Zipf distribution)")
		seed  = flag.Int64("seed", 1, "generation seed")
		out   = flag.String("out", "", "output JSON path (required)")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("genforum: -out is required")
	}

	var cfg synth.ForumConfig
	switch *forum {
	case "webmd":
		cfg = synth.WebMDLike(*users, *seed+2)
	case "healthboards", "hb":
		cfg = synth.HBLike(*users, *seed+2)
	default:
		log.Fatalf("genforum: unknown forum preset %q", *forum)
	}
	cfg.FixedPosts = *posts

	u := synth.NewUniverse(*users+*users/2, *seed)
	rng := rand.New(rand.NewSource(*seed + 1))
	members := synth.Members(u, *users, rng)
	d := synth.Generate(cfg, u, members)
	if err := d.Save(*out); err != nil {
		log.Fatalf("genforum: %v", err)
	}
	fmt.Printf("wrote %s: %d users, %d threads, %d posts (mean len %.1f words)\n",
		*out, d.NumUsers(), len(d.Threads), d.NumPosts(), d.MeanPostLengthWords())
}
