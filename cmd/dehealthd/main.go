// Command dehealthd runs the De-Health online query service: it prepares
// an auxiliary world once, then serves single-user de-anonymization
// queries and ingests newly observed anonymous accounts over HTTP — the
// continuous-tracking threat model, as opposed to cmd/dehealth's offline
// batch attack.
//
// With -snapshot the daemon becomes warm-restartable: on SIGINT/SIGTERM it
// drains the pending micro-batch and writes the prepared world to the
// snapshot path (atomically), and on the next start it memory-maps that
// file back instead of re-running feature extraction and similarity
// precomputation — the restored world answers queries bit-identically to
// the one that shut down (see docs/SNAPSHOT.md).
//
// Usage:
//
//	dehealthd -aux aux.json                          # start with an empty anonymized side
//	dehealthd -aux aux.json -anon anon.json          # preload known anonymized accounts
//	dehealthd -synth 300                             # demo mode: synthetic auxiliary world
//	dehealthd -addr :8700 -workers 8 -batch 64 -flush-ms 2 -shards 8 -prune
//	dehealthd -synth 300 -approx -approx-theta 1.3     # approximate tier, per-query opt-in
//	dehealthd -synth 300 -snapshot world.snap        # warm restart: load if present, write on shutdown
//	dehealthd -snapshot world.snap -no-mmap          # warm restart with the copying loader
//	dehealthd -synth 300 -pprof localhost:6060        # profiling listener
//
// Distributed serving (see docs/ARCHITECTURE.md): -write-slices cuts the
// prepared world into one snapshot slice per shard and exits; each slice
// then boots a shard server that maps only its own partition, fronted by
// cmd/dehealth-router:
//
//	dehealthd -synth 300 -synth-anon -shards 4 -write-slices world   # world.slice-{0..3}-of-4.snap
//	dehealthd -addr :8701 -snapshot world.slice-0-of-4.snap          # shard server 0
//	dehealth-router -addr :8800 -shard http://h0:8701 -shard ...     # scatter-gather front
//
// API:
//
//	POST /v1/query    {"user": 17, "k": 10}                  # optional "approx": true with -approx
//	POST /v1/ingest   {"name": "jdoe", "posts": [{"text": "..."}, {"thread": 3, "text": "..."}]}
//	POST /v1/snapshot                                 # write the world to -snapshot now
//	GET  /v1/stats
//	GET  /healthz
package main

import (
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling handlers for the optional -pprof listener
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dehealth"
)

func msToDuration(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

func main() {
	var (
		addr         = flag.String("addr", ":8700", "HTTP listen address")
		auxPath      = flag.String("aux", "", "auxiliary dataset JSON (the adversary's world; required unless -synth or a -snapshot file exists)")
		anon         = flag.String("anon", "", "optional anonymized dataset JSON to preload; default starts empty")
		synth        = flag.Int("synth", 0, "demo mode: generate a synthetic auxiliary world with this many users instead of -aux")
		synthAnon    = flag.Bool("synth-anon", false, "with -synth: closed-world split the synthetic data so the anonymized side starts populated (queryable out of the box)")
		workers      = flag.Int("workers", 0, "query worker pool per flush (0 = all CPUs)")
		shards       = flag.Int("shards", 1, "partition-parallel auxiliary scoring shards (0 = one per CPU)")
		prune        = flag.Bool("prune", false, "candidate-pruned queries via per-shard attribute inverted indexes (results identical; see /v1/stats prune counters)")
		approx       = flag.Bool("approx", false, "enable the approximate retrieval tier: max-score/WAND posting cursors with exact rescore (per-query opt-in via the \"approx\" knob; see /v1/stats approx counters)")
		approxTheta  = flag.Float64("approx-theta", 0, "approx skip-threshold scale; 0 or 1 keeps the tier exact-equivalent, values above 1 (e.g. 1.3) skip more aggressively and trade recall for speed")
		approxBudget = flag.Int("approx-budget", 0, "approx cap on exact rescores per shard-query (0 = unbounded)")
		batch        = flag.Int("batch", 32, "micro-batch size: pending requests flush at this count")
		flushMS      = flag.Int("flush-ms", 2, "micro-batch flush deadline in milliseconds")
		k            = flag.Int("k", 10, "default Top-K candidate set size")
		hbar         = flag.Int("landmarks", 50, "landmark count for the structural similarity")
		bigrams      = flag.Int("max-bigrams", 300, "POS-bigram feature cap (fitted on the auxiliary texts)")
		seed         = flag.Int64("seed", 1, "seed for -synth demo worlds")
		pprofA       = flag.String("pprof", "", "expose net/http/pprof on this separate listener (e.g. localhost:6060); off by default")
		snapPath     = flag.String("snapshot", "", "world snapshot path: loaded on start when the file exists (warm restart), written on graceful shutdown and POST /v1/snapshot")
		noMmap       = flag.Bool("no-mmap", false, "load -snapshot with the copying decoder instead of memory-mapping the file")
		writeSlices  = flag.String("write-slices", "", "prepare the world, write one snapshot slice per shard as <prefix>.slice-<i>-of-<n>.snap, and exit (no server); boot each slice with -snapshot and front them with dehealth-router")
	)
	flag.Parse()

	if *pprofA != "" {
		// A dedicated listener keeps the profiling surface off the public
		// query port: bind it to localhost (or a firewalled interface) to
		// profile the scoring kernel under live traffic.
		go func() {
			log.Printf("dehealthd: pprof listening on %s", *pprofA)
			log.Printf("dehealthd: pprof server exited: %v", http.ListenAndServe(*pprofA, nil))
		}()
	}

	var pw *dehealth.PreparedWorld
	var opt dehealth.Options
	if pw = warmBoot(*snapPath, *noMmap); pw != nil {
		// The snapshot pins the world's preparation-time configuration
		// (shards, pruning, landmarks, similarity weights); only the
		// attack-phase knobs come from this process's flags.
		opt = pw.PreparedOptions()
		opt.Workers = *workers
		opt.K = *k
		// The approx tier's per-query knobs are attack-phase state. Note
		// -approx only takes effect when the snapshot carried the tier
		// (or on cold boot); a tier-less world answers approx requests
		// exactly.
		if *approx {
			opt.Approx.Enabled = true
		}
		opt.Approx.Theta = *approxTheta
		opt.Approx.Budget = *approxBudget
	} else {
		pw, opt = coldBoot(*auxPath, *anon, *synth, *synthAnon, *seed, *hbar, *bigrams, *workers, *shards, *prune, *k,
			dehealth.ApproxConfig{Enabled: *approx, Theta: *approxTheta, Budget: *approxBudget})
	}

	if *writeSlices != "" {
		start := time.Now()
		paths, err := pw.SnapshotSlices(*writeSlices)
		if err != nil {
			log.Fatalf("dehealthd: writing slices: %v", err)
		}
		for _, p := range paths {
			if fi, err := os.Stat(p); err == nil {
				log.Printf("dehealthd: slice written to %s (%d bytes)", p, fi.Size())
			}
		}
		log.Printf("dehealthd: %d slices in %dms; boot each with -snapshot and front them with dehealth-router", len(paths), time.Since(start).Milliseconds())
		return
	}

	srv := dehealth.NewServer(pw, dehealth.ServeOptions{
		Workers:       *workers,
		Batch:         *batch,
		FlushInterval: msToDuration(*flushMS),
		K:             *k,
		Attack:        opt,
		SnapshotPath:  *snapPath,
	})

	// Graceful drain on SIGINT/SIGTERM: Close flushes the pending
	// micro-batch (every in-flight waiter gets its answer), then the
	// post-drain snapshot below captures the fully-applied world —
	// including any accounts ingested moments before the signal.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		log.Printf("dehealthd: %v: draining...", sig)
		if err := srv.Close(); err != nil {
			log.Printf("dehealthd: drain: %v", err)
		}
	}()

	log.Printf("dehealthd: listening on %s (batch %d, flush %dms, k %d)", *addr, *batch, *flushMS, *k)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("dehealthd: %v", err)
	}
	if *snapPath != "" {
		start := time.Now()
		if err := pw.Snapshot(*snapPath); err != nil {
			log.Fatalf("dehealthd: writing shutdown snapshot: %v", err)
		}
		if fi, err := os.Stat(*snapPath); err == nil {
			log.Printf("dehealthd: snapshot written to %s (%d bytes, %dms)", *snapPath, fi.Size(), time.Since(start).Milliseconds())
		}
	}
}

// warmBoot restores the world from an existing snapshot file, or returns
// nil when path is empty or the file does not exist yet (first boot: the
// caller prepares cold and the shutdown write creates the file).
func warmBoot(path string, noMmap bool) *dehealth.PreparedWorld {
	if path == "" {
		return nil
	}
	if _, err := os.Stat(path); err != nil {
		log.Printf("dehealthd: no snapshot at %s yet, preparing cold", path)
		return nil
	}
	start := time.Now()
	pw, err := dehealth.LoadWorld(path, dehealth.LoadOptions{NoMmap: noMmap})
	if err != nil {
		log.Fatalf("dehealthd: loading snapshot %s: %v", path, err)
	}
	anon, aux := pw.Sizes()
	log.Printf("dehealthd: warm restart from %s in %dms (aux %d users, anon %d users)",
		path, time.Since(start).Milliseconds(), aux, anon)
	return pw
}

// coldBoot prepares the world from datasets (or a synthetic demo world)
// exactly as pre-snapshot dehealthd always did.
func coldBoot(auxPath, anonPath string, synth int, synthAnon bool, seed int64, hbar, bigrams, workers, shards int, prune bool, k int, approx dehealth.ApproxConfig) (*dehealth.PreparedWorld, dehealth.Options) {
	var aux, splitAnon *dehealth.Dataset
	switch {
	case auxPath != "":
		var err error
		if aux, err = dehealth.LoadDataset(auxPath); err != nil {
			log.Fatalf("dehealthd: loading auxiliary data: %v", err)
		}
	case synth > 0:
		world := dehealth.GenerateWorld(dehealth.WorldConfig{WebMDUsers: synth, HBUsers: synth, Seed: seed})
		aux = world.WebMD
		if synthAnon {
			// Closed-world split: half of each user's posts become the
			// anonymized side, so the demo world answers queries (and the
			// router smoke test can drive it) without any ingestion.
			sp := dehealth.SplitClosedWorld(world.WebMD, 0.5, seed)
			aux, splitAnon = sp.Aux, sp.Anon
		}
		log.Printf("dehealthd: synthetic auxiliary world: %d users, %d posts", aux.NumUsers(), aux.NumPosts())
	default:
		log.Fatal("dehealthd: -aux is required (or -synth for a demo world, or an existing -snapshot file)")
	}

	anonDS := &dehealth.Dataset{Name: "observed"}
	if splitAnon != nil {
		anonDS = splitAnon
	}
	if anonPath != "" {
		var err error
		if anonDS, err = dehealth.LoadDataset(anonPath); err != nil {
			log.Fatalf("dehealthd: loading anonymized data: %v", err)
		}
	}

	opt := dehealth.DefaultOptions()
	opt.Landmarks = hbar
	opt.MaxBigrams = bigrams
	opt.Workers = workers
	opt.K = k
	opt.Shards = shards
	if opt.Shards <= 0 {
		opt.Shards = runtime.NumCPU()
	}
	opt.Prune = prune
	opt.Approx = approx

	pruneNote := ""
	if opt.Prune {
		pruneNote = ", pruned"
	}
	if opt.Approx.Enabled {
		pruneNote += ", approx"
	}
	log.Printf("dehealthd: preparing world (aux %d users / %d posts, anon %d users, %d shards%s)...",
		aux.NumUsers(), aux.NumPosts(), anonDS.NumUsers(), opt.Shards, pruneNote)
	return dehealth.PrepareWorld(anonDS, aux, opt), opt
}
