// Command dehealthd runs the De-Health online query service: it prepares
// an auxiliary world once, then serves single-user de-anonymization
// queries and ingests newly observed anonymous accounts over HTTP — the
// continuous-tracking threat model, as opposed to cmd/dehealth's offline
// batch attack.
//
// Usage:
//
//	dehealthd -aux aux.json                          # start with an empty anonymized side
//	dehealthd -aux aux.json -anon anon.json          # preload known anonymized accounts
//	dehealthd -synth 300                             # demo mode: synthetic auxiliary world
//	dehealthd -addr :8700 -workers 8 -batch 64 -flush-ms 2 -shards 8 -prune
//	dehealthd -synth 300 -pprof localhost:6060        # profiling listener
//
// API:
//
//	POST /v1/query   {"user": 17, "k": 10}
//	POST /v1/ingest  {"name": "jdoe", "posts": [{"text": "..."}, {"thread": 3, "text": "..."}]}
//	GET  /v1/stats
//	GET  /healthz
package main

import (
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling handlers for the optional -pprof listener
	"runtime"
	"time"

	"dehealth"
)

func msToDuration(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

func main() {
	var (
		addr    = flag.String("addr", ":8700", "HTTP listen address")
		auxPath = flag.String("aux", "", "auxiliary dataset JSON (the adversary's world; required unless -synth)")
		anon    = flag.String("anon", "", "optional anonymized dataset JSON to preload; default starts empty")
		synth   = flag.Int("synth", 0, "demo mode: generate a synthetic auxiliary world with this many users instead of -aux")
		workers = flag.Int("workers", 0, "query worker pool per flush (0 = all CPUs)")
		shards  = flag.Int("shards", 1, "partition-parallel auxiliary scoring shards (0 = one per CPU)")
		prune   = flag.Bool("prune", false, "candidate-pruned queries via per-shard attribute inverted indexes (results identical; see /v1/stats prune counters)")
		batch   = flag.Int("batch", 32, "micro-batch size: pending requests flush at this count")
		flushMS = flag.Int("flush-ms", 2, "micro-batch flush deadline in milliseconds")
		k       = flag.Int("k", 10, "default Top-K candidate set size")
		hbar    = flag.Int("landmarks", 50, "landmark count for the structural similarity")
		bigrams = flag.Int("max-bigrams", 300, "POS-bigram feature cap (fitted on the auxiliary texts)")
		seed    = flag.Int64("seed", 1, "seed for -synth demo worlds")
		pprofA  = flag.String("pprof", "", "expose net/http/pprof on this separate listener (e.g. localhost:6060); off by default")
	)
	flag.Parse()

	if *pprofA != "" {
		// A dedicated listener keeps the profiling surface off the public
		// query port: bind it to localhost (or a firewalled interface) to
		// profile the scoring kernel under live traffic.
		go func() {
			log.Printf("dehealthd: pprof listening on %s", *pprofA)
			log.Printf("dehealthd: pprof server exited: %v", http.ListenAndServe(*pprofA, nil))
		}()
	}

	var aux *dehealth.Dataset
	switch {
	case *auxPath != "":
		var err error
		if aux, err = dehealth.LoadDataset(*auxPath); err != nil {
			log.Fatalf("dehealthd: loading auxiliary data: %v", err)
		}
	case *synth > 0:
		world := dehealth.GenerateWorld(dehealth.WorldConfig{WebMDUsers: *synth, HBUsers: *synth, Seed: *seed})
		aux = world.WebMD
		log.Printf("dehealthd: synthetic auxiliary world: %d users, %d posts", aux.NumUsers(), aux.NumPosts())
	default:
		log.Fatal("dehealthd: -aux is required (or -synth for a demo world)")
	}

	anonDS := &dehealth.Dataset{Name: "observed"}
	if *anon != "" {
		var err error
		if anonDS, err = dehealth.LoadDataset(*anon); err != nil {
			log.Fatalf("dehealthd: loading anonymized data: %v", err)
		}
	}

	opt := dehealth.DefaultOptions()
	opt.Landmarks = *hbar
	opt.MaxBigrams = *bigrams
	opt.Workers = *workers
	opt.K = *k
	opt.Shards = *shards
	if opt.Shards <= 0 {
		opt.Shards = runtime.NumCPU()
	}
	opt.Prune = *prune

	pruneNote := ""
	if opt.Prune {
		pruneNote = ", pruned"
	}
	log.Printf("dehealthd: preparing world (aux %d users / %d posts, anon %d users, %d shards%s)...",
		aux.NumUsers(), aux.NumPosts(), anonDS.NumUsers(), opt.Shards, pruneNote)
	pw := dehealth.PrepareWorld(anonDS, aux, opt)
	log.Printf("dehealthd: listening on %s (batch %d, flush %dms, k %d)", *addr, *batch, *flushMS, *k)
	if err := dehealth.Serve(pw, dehealth.ServeOptions{
		Addr:          *addr,
		Workers:       *workers,
		Batch:         *batch,
		FlushInterval: msToDuration(*flushMS),
		K:             *k,
		Attack:        opt,
	}); err != nil {
		log.Fatalf("dehealthd: %v", err)
	}
}
