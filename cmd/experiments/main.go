// Command experiments regenerates every table and figure of the paper's
// evaluation at a configurable scale and prints the rows/series the paper
// reports, side by side with the paper's headline values.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig3 -webmd 1200 -hb 2400
//	experiments -run fig4 -runs 3
//	experiments -run linkage,theory
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dehealth/internal/eval"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated experiments: fig1,fig2,table1,fig3,fig4,fig5,fig6,fig7,fig8,linkage,theory,ablation,defense or 'all'")
		webmd   = flag.Int("webmd", 1200, "WebMD-like forum size (users)")
		hb      = flag.Int("hb", 2400, "HB-like forum size (users)")
		overlap = flag.Float64("overlap", 0.2, "fraction of WebMD users also on HB")
		runs    = flag.Int("runs", 2, "averaging runs for the refined-DA experiments")
		users   = flag.Int("refined-users", 50, "population size for Fig.4")
		seed    = flag.Int64("seed", 1902, "world seed")
		workers = flag.Int("workers", 0, "worker-pool bound for feature extraction and scoring (0 = all CPUs)")
	)
	flag.Parse()
	if *workers > 0 {
		// The eval experiments size their extraction pools and row-parallel
		// scoring off GOMAXPROCS; this bounds the whole run.
		runtime.GOMAXPROCS(*workers)
	}

	want := map[string]bool{}
	for _, r := range strings.Split(*run, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]
	need := func(name string) bool { return all || want[name] }

	var c *eval.Corpora
	corpora := func() *eval.Corpora {
		if c == nil {
			fmt.Fprintf(os.Stderr, "generating corpora (webmd=%d, hb=%d)...\n", *webmd, *hb)
			t0 := time.Now()
			c = eval.GenerateCorpora(eval.Scale{
				WebMDUsers: *webmd, HBUsers: *hb, OverlapFrac: *overlap, Seed: *seed,
			})
			fmt.Fprintf(os.Stderr, "corpora ready in %v (%d + %d posts)\n",
				time.Since(t0).Round(time.Millisecond), c.WebMD.NumPosts(), c.HB.NumPosts())
		}
		return c
	}

	section := func(name string, f func()) {
		if !need(name) {
			return
		}
		t0 := time.Now()
		f()
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	section("fig1", func() {
		series, t := eval.Fig1(corpora())
		fmt.Println(eval.RenderSeries("Fig.1 CDF of users vs number of posts", series))
		fmt.Println(t)
	})
	section("fig2", func() {
		series, t := eval.Fig2(corpora())
		fmt.Println(eval.RenderSeries("Fig.2 post length distribution (fraction per 50-word bin)", series))
		fmt.Println(t)
	})
	section("table1", func() { fmt.Println(eval.Table1()) })
	section("fig7", func() {
		series, t := eval.Fig7(corpora())
		fmt.Println(eval.RenderSeries("Fig.7 degree distribution CDF", series))
		fmt.Println(t)
	})
	section("fig8", func() { fmt.Println(eval.Fig8(corpora())) })
	section("fig3", func() {
		fmt.Println(eval.RenderSeries("Fig.3 closed-world Top-K DA success CDF", eval.Fig3(corpora(), nil)))
	})
	section("fig5", func() {
		fmt.Println(eval.RenderSeries("Fig.5 open-world Top-K DA success CDF", eval.Fig5(corpora(), nil)))
	})
	section("fig4", func() {
		fmt.Println(eval.Fig4(eval.RefinedConfig{Users: *users, Runs: *runs, Seed: *seed}))
	})
	section("fig6", func() {
		acc, fp := eval.Fig6(eval.RefinedConfig{Users: 2 * *users, Runs: *runs, Seed: *seed})
		fmt.Println(acc)
		fmt.Println(fp)
	})
	section("linkage", func() { fmt.Println(eval.LinkageExperiment(corpora())) })
	section("theory", func() { fmt.Println(eval.TheoryExperiment(0)) })
	section("ablation", func() {
		fmt.Println(eval.AblationWeights(corpora(), 50))
		fmt.Println(eval.AblationSelection(*seed))
		fmt.Println(eval.AblationFilter(*seed))
	})
	section("defense", func() { fmt.Println(eval.DefenseExperiment(*users, 20, *seed)) })
}
