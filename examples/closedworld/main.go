// Closed-world refined DA (the Fig.4 scenario): 50 users with 20 posts
// each, 10 posts for training and 10 for testing, comparing the Stylometry
// baseline against De-Health at several K — demonstrating that Top-K
// candidate reduction is what rescues classification when training data are
// scarce.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dehealth"
	"dehealth/internal/core"
	"dehealth/internal/corpus"
	"dehealth/internal/eval"
	"dehealth/internal/features"
	"dehealth/internal/ml"
	"dehealth/internal/similarity"
)

func main() {
	const users, posts = 50, 20

	d, _ := eval.RefinedCorpus(users, posts, 42)
	split := corpus.SplitClosedWorld(d, 0.5, rand.New(rand.NewSource(3)))
	fmt.Printf("population: %d users x %d posts (10 train / 10 test)\n", users, posts)

	// Extract the stylometric feature store once; the whole K-grid below
	// (and the baseline) reads it instead of re-extracting per setting.
	simCfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 100, features.Options{})
	p := core.NewPipelineFromStore(anonS, auxS, simCfg)
	opt := core.RefineOptions{
		NewClassifier: func() ml.Classifier { return ml.NewSMO(ml.SMOConfig{C: 1, Seed: 5}) },
		Scheme:        core.ClosedWorld,
		Seed:          5,
	}

	// Stylometry baseline: classifier over all 50 users, no Top-K phase.
	sty, err := p.StylometryBaseline(opt)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := eval.AccuracyFP(sty, split.TrueMapping)
	fmt.Printf("%-20s accuracy %.1f%%\n", "Stylometry (SMO):", 100*a)

	// De-Health with decreasing candidate sets.
	for _, k := range []int{20, 15, 10, 5} {
		tk := p.TopK(k, core.DirectSelection, split.TrueMapping)
		res, err := p.RefinedDA(tk, opt)
		if err != nil {
			log.Fatal(err)
		}
		a, _ := eval.AccuracyFP(res, split.TrueMapping)
		fmt.Printf("De-Health (K=%-2d):    accuracy %.1f%%\n", k, 100*a)
	}

	// The same extract-once workflow is available through the public
	// facade: PrepareWorld builds the store, then any number of attack
	// configurations reuse it.
	pw := dehealth.PrepareWorld(split.Anon, split.Aux, dehealth.Options{MaxBigrams: 100})
	pub, err := pw.AttackWithTruth(dehealth.Options{
		K: 5, Classifier: dehealth.SMO, MaxBigrams: 100,
	}, split.TrueMapping)
	if err != nil {
		log.Fatal(err)
	}
	a2, _ := eval.AccuracyFP(&core.DAResult{Mapping: pub.Mapping}, split.TrueMapping)
	fmt.Printf("facade (K=5):        accuracy %.1f%%\n", 100*a2)
}
