// Linkage attack (§VI): link health-forum accounts to real-world identities
// through username reuse (NameLink) and avatar reuse (AvatarLink) against a
// synthetic external-service directory, then aggregate per-victim dossiers
// — the full "all your online health information are belong to us" pipeline.
package main

import (
	"fmt"

	"dehealth"
	"dehealth/internal/linkage"
)

func main() {
	world := dehealth.GenerateWorld(dehealth.WorldConfig{
		WebMDUsers:  2000,
		HBUsers:     3000,
		OverlapFrac: 0.2,
		Seed:        1902,
	})
	fmt.Printf("forum: %d users; external directory: %d profiles\n",
		world.WebMD.NumUsers(), len(world.Directory.Profiles))

	res := dehealth.Linkage(world.WebMD, world.Directory)

	usable := linkage.UsableAvatars(world.WebMD)
	fmt.Printf("usable avatars after §VI filtering: %d\n", len(usable))
	fmt.Printf("AvatarLink identifications: %d (%.1f%% of usable)\n",
		len(res.AvatarLinks), 100*float64(len(res.AvatarLinks))/float64(len(usable)))
	fmt.Printf("NameLink identifications: %d\n", len(res.NameLinks))
	fmt.Printf("aggregated dossiers: %d\n\n", len(res.Dossiers))

	// Score against ground truth (the generator knows who is who).
	avC, avT := linkage.Score(world.WebMD, world.Directory, res.AvatarLinks)
	nmC, nmT := linkage.Score(world.WebMD, world.Directory, res.NameLinks)
	fmt.Printf("AvatarLink precision: %d/%d\n", avC, avT)
	fmt.Printf("NameLink precision:   %d/%d\n\n", nmC, nmT)

	// Print a few dossiers — what the adversary now knows about the people
	// behind "anonymous" health posts.
	shown := 0
	for _, ds := range res.Dossiers {
		if ds.FullName == "" || shown >= 3 {
			continue
		}
		shown++
		u := world.WebMD.Users[ds.User]
		fmt.Printf("dossier for forum user %q:\n", u.Name)
		fmt.Printf("  full name:  %s\n", ds.FullName)
		if ds.City != "" {
			fmt.Printf("  city:       %s\n", ds.City)
		}
		if ds.BirthYear != 0 {
			fmt.Printf("  birth year: %d\n", ds.BirthYear)
		}
		if ds.Phone != "" {
			fmt.Printf("  phone:      %s\n", ds.Phone)
		}
		fmt.Printf("  services:   %v\n", ds.Services)
		fmt.Printf("  medical posts now attributable: %d\n\n", ds.PostCount)
	}
}
