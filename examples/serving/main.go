// The serving example runs the full online-attack loop in one process: it
// prepares an auxiliary world, starts the dehealthd query service on a
// loopback port, then plays the adversary's client — observing "new"
// anonymous accounts (held-out posts of known auxiliary users), ingesting
// them over HTTP and asking the service who they are.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"dehealth"
)

func main() {
	// The evaluation world: WebMD-like forum, half of each user's posts as
	// the auxiliary (adversary) side, the other half standing in for newly
	// observed anonymous accounts.
	world := dehealth.GenerateWorld(dehealth.WorldConfig{WebMDUsers: 120, HBUsers: 120, Seed: 11})
	split := dehealth.SplitClosedWorld(world.WebMD, 0.5, 12)

	opt := dehealth.DefaultOptions()
	opt.Landmarks = 10
	opt.MaxBigrams = 100

	// Serve over an initially empty anonymized side: every account the
	// service knows about will have arrived through /v1/ingest.
	pw := dehealth.PrepareWorld(&dehealth.Dataset{Name: "observed"}, split.Aux, opt)
	srv := dehealth.NewServer(pw, dehealth.ServeOptions{
		Workers: 4, Batch: 16, FlushInterval: 2 * time.Millisecond, K: 5, Attack: opt,
	})
	defer srv.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			log.Fatal(err)
		}
	}()
	base := "http://" + l.Addr().String()
	fmt.Printf("dehealthd serving on %s\n\n", base)

	// Observe five anonymous accounts: ingest their held-out posts, then ask
	// for each one's top candidates in the auxiliary world.
	byUser := split.Anon.PostsByUser()
	observed := 0
	for u := 0; u < split.Anon.NumUsers() && observed < 5; u++ {
		if len(byUser[u]) < 3 {
			continue
		}
		observed++
		var posts []map[string]any
		for _, pi := range byUser[u] {
			posts = append(posts, map[string]any{"text": split.Anon.Posts[pi].Text})
		}
		var ingest struct {
			User int `json:"user"`
		}
		postJSON(base+"/v1/ingest", map[string]any{
			"name":  split.Anon.Users[u].Name,
			"posts": posts,
		}, &ingest)

		var reply struct {
			Candidates []struct {
				User  int     `json:"user"`
				Score float64 `json:"score"`
			} `json:"candidates"`
		}
		postJSON(base+"/v1/query", map[string]any{"user": ingest.User, "k": 3}, &reply)

		truth := split.TrueMapping[u]
		fmt.Printf("observed %-12q -> ingested as user %d, top candidates:\n", split.Anon.Users[u].Name, ingest.User)
		for rank, c := range reply.Candidates {
			mark := ""
			if c.User == truth {
				mark = "   <- true identity"
			}
			fmt.Printf("  #%d aux user %-4d (%q) score %.4f%s\n", rank+1, c.User, split.Aux.Users[c.User].Name, c.Score, mark)
		}
	}

	var stats map[string]any
	getJSON(base+"/v1/stats", &stats)
	fmt.Printf("\nstats: anon_users=%v aux_users=%v queries=%v ingests=%v batches=%v mean_batch=%.1f\n",
		stats["anon_users"], stats["aux_users"], stats["queries"], stats["ingests"],
		stats["batches"], stats["mean_batch_size"])
}

func postJSON(url string, body, out any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
