// Open-world DA (the Fig.6 scenario): the anonymized and auxiliary datasets
// share only part of their user populations, so the attack must say "this
// user is not in my auxiliary data" (u -> ⊥). Demonstrates the
// mean-verification and false-addition schemes and their effect on the
// false-positive rate.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dehealth/internal/core"
	"dehealth/internal/corpus"
	"dehealth/internal/eval"
	"dehealth/internal/features"
	"dehealth/internal/ml"
	"dehealth/internal/similarity"
)

func main() {
	// 150-person pool with 40 posts each; a 50% overlap ratio gives two
	// 100-user datasets sharing 50 users (§V-B construction).
	d, _ := eval.RefinedCorpus(150, 40, 99)
	split := corpus.OpenWorldOverlap(d, 0.5, rand.New(rand.NewSource(4)))
	fmt.Printf("anonymized: %d users, auxiliary: %d users, overlapping: %d\n",
		split.Anon.NumUsers(), split.Aux.NumUsers(), split.NumOverlapping())

	// One feature store backs all three open-world schemes below.
	simCfg := similarity.Config{C1: 0.05, C2: 0.05, C3: 0.9, Landmarks: 5}
	anonS, auxS := features.BuildPair(split.Anon, split.Aux, 100, features.Options{})
	p := core.NewPipelineFromStore(anonS, auxS, simCfg)

	run := func(name string, scheme core.OpenWorldScheme) {
		tk := p.TopK(10, core.DirectSelection, split.TrueMapping)
		p.Filter(tk, core.FilterConfig{Epsilon: 0.01, L: 10})
		res, err := p.RefinedDA(tk, core.RefineOptions{
			NewClassifier: func() ml.Classifier { return ml.NewSMO(ml.SMOConfig{C: 1, Seed: 5}) },
			Scheme:        scheme,
			// The verification margin is calibrated to this corpus's score
			// spread (the paper's r = 0.25 presumes WebMD's scale).
			R:    0.06,
			Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		acc, fp := eval.AccuracyFP(res, split.TrueMapping)
		rejected := 0
		for _, v := range res.Mapping {
			if v < 0 {
				rejected++
			}
		}
		fmt.Printf("%-28s accuracy %5.1f%%   FP rate %5.1f%%   ⊥ decisions %d/%d\n",
			name+":", 100*acc, 100*fp, rejected, len(res.Mapping))
	}

	run("closed-world (no scheme)", core.ClosedWorld)
	run("false addition", core.FalseAddition)
	run("mean verification (r=0.06)", core.MeanVerification)
}
