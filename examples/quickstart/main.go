// Quickstart: generate a small synthetic health forum, split it into
// anonymized and auxiliary halves, run the full two-phase De-Health attack
// and score it against the generator's ground truth.
package main

import (
	"fmt"
	"log"

	"dehealth"
)

func main() {
	// A synthetic world calibrated to the paper's corpus statistics.
	world := dehealth.GenerateWorld(dehealth.WorldConfig{
		WebMDUsers: 300,
		HBUsers:    400,
		Seed:       7,
	})
	fmt.Printf("generated %q: %d users, %d posts\n",
		world.WebMD.Name, world.WebMD.NumUsers(), world.WebMD.NumPosts())

	// Closed-world setting: 50% of every user's posts are auxiliary
	// (attacker-known) data, the rest are the anonymized release.
	split := dehealth.SplitClosedWorld(world.WebMD, 0.5, 11)
	fmt.Printf("split: %d anonymized users, %d auxiliary users, %d overlapping\n",
		split.Anon.NumUsers(), split.Aux.NumUsers(), split.NumOverlapping())

	// Run the attack with the paper's default parameters (Top-10 candidate
	// selection, SMO-SVM refined DA).
	opt := dehealth.DefaultOptions()
	opt.K = 10
	opt.MaxBigrams = 100 // smaller feature space; faster for a demo
	res, err := dehealth.AttackWithTruth(split.Anon, split.Aux, opt, split.TrueMapping)
	if err != nil {
		log.Fatal(err)
	}

	// Score phase 1 (Top-K DA) and the full attack.
	inTopK, correct, y := 0, 0, 0
	for u, truth := range split.TrueMapping {
		y++
		if r := res.TopK.TrueRank[u]; r > 0 && r <= opt.K {
			inTopK++
		}
		if res.Mapping[u] == truth {
			correct++
		}
	}
	fmt.Printf("Top-%d DA success rate: %.1f%%\n", opt.K, 100*float64(inTopK)/float64(y))
	fmt.Printf("refined DA accuracy:   %.1f%%\n", 100*float64(correct)/float64(y))

	// Show a few identifications: anonymized ID -> recovered username.
	shown := 0
	for u, truth := range split.TrueMapping {
		if res.Mapping[u] == truth && shown < 5 {
			fmt.Printf("  %s -> %s\n", split.Anon.Users[u].Name, split.Aux.Users[truth].Name)
			shown++
		}
	}
}
