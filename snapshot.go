// Snapshot and warm restart: the conversions between a PreparedWorld and
// the internal/snapshot on-disk format (docs/SNAPSHOT.md). Snapshot
// freezes everything the offline prepare pipeline computed — feature
// matrices, UDA adjacency, scorer caches, per-shard pruning indexes,
// datasets — and LoadWorld rebuilds a PreparedWorld from the file without
// re-running extraction or precomputation. The contract is bit-identity:
// the loaded world answers QueryUser/QueryBatch/Attack byte-for-byte like
// the world that saved it, because every float the scoring kernel reads is
// carried through the file verbatim and only exactly-reproducible integer
// state is re-derived on load.

package dehealth

import (
	"encoding/json"
	"fmt"

	"dehealth/internal/core"
	"dehealth/internal/corpus"
	"dehealth/internal/features"
	"dehealth/internal/graph"
	"dehealth/internal/index"
	"dehealth/internal/shard"
	"dehealth/internal/similarity"
	"dehealth/internal/snapshot"
	"dehealth/internal/stylometry"
)

// Typed snapshot errors, re-exported for errors.Is without importing the
// internal format package.
var (
	// ErrNotSnapshot marks a file that is not a dehealth snapshot at all.
	ErrNotSnapshot = snapshot.ErrNotSnapshot
	// ErrSnapshotVersion marks a snapshot written by an unsupported
	// (typically newer) format version.
	ErrSnapshotVersion = snapshot.ErrVersion
	// ErrSnapshotTruncated marks a snapshot file shorter than its header
	// claims.
	ErrSnapshotTruncated = snapshot.ErrTruncated
	// ErrSnapshotCorrupt marks a structurally invalid snapshot: checksum
	// mismatch, malformed sections, or content that fails validation.
	ErrSnapshotCorrupt = snapshot.ErrCorrupt
	// ErrAlreadySlice marks an attempt to cut per-shard slices from a world
	// that was itself loaded from a slice.
	ErrAlreadySlice = snapshot.ErrAlreadySlice
)

// Snapshot writes the prepared world to path in the versioned snapshot
// format (atomically: temp file + rename), capturing the world under its
// preparation-time configuration — feature matrices, frozen UDA
// adjacency, the scorer's precomputed caches, the per-shard pruning
// indexes when the world was prepared with Options.Prune, and both
// datasets. The write takes the world's read lock, so it excludes
// concurrent ingestion but not queries; a world snapshotted after an
// ingest batch includes the ingested users. LoadWorld restores the file
// to a world answering queries bit-identically.
func (w *PreparedWorld) Snapshot(path string) error {
	w.world.RLock()
	defer w.world.RUnlock()
	sw, err := w.snapshotWorld()
	if err != nil {
		return err
	}
	return snapshot.Save(path, sw)
}

// snapshotWorld builds the typed snapshot content of the world; the caller
// holds the world read lock.
func (w *PreparedWorld) snapshotWorld() (*snapshot.World, error) {
	cfg := w.prepOpt.normalized().simConfig()
	p := w.pipeline(cfg) // materializes scorer caches (and indexes when pruned)

	sw := &snapshot.World{
		Meta: snapshot.Meta{
			Shards:    w.shards,
			Prune:     w.pruneStats != nil,
			Approx:    w.approxStats != nil,
			C1:        cfg.C1,
			C2:        cfg.C2,
			C3:        cfg.C3,
			Landmarks: cfg.Landmarks,
			Dim:       w.anonStore.Dim(),
			Bigrams:   w.anonStore.Extractor.Bigrams(),
		},
	}
	if s := w.slice; s != nil {
		// A slice-loaded world stays a slice across snapshot cycles (a
		// shard server's shutdown snapshot must not forget its window).
		sw.Meta.Slice = &snapshot.SliceMeta{Shard: s.Shard, Shards: s.Shards, Lo: s.Lo, Hi: s.Hi, AuxTotal: s.AuxTotal}
	}
	var err error
	if sw.Anon, err = sideParts(w.Anon, w.anonStore, p.G1); err != nil {
		return nil, err
	}
	if sw.Aux, err = sideParts(w.Aux, w.auxStore, p.G2); err != nil {
		return nil, err
	}
	sp := p.Scorer.Parts()
	sw.Scorer = snapshot.ScorerState{
		Landmarks: sp.Landmarks,
		NCS:       sp.NCS, NCSOff: sp.NCSOff, NCSNorm: sp.NCSNorm,
		Close: sp.Close, CloseNorm: sp.CloseNorm,
		Wcl: sp.Wcl, WclNorm: sp.WclNorm,
		AuxHbar: sp.Hbar2,
		AuxDeg:  sp.AuxDeg, AuxWdeg: sp.AuxWdeg,
		AuxNCS: sp.AuxNCS, AuxNCSOff: sp.AuxNCSOff, AuxNCSNorm: sp.AuxNCSNorm,
		AuxClose: sp.AuxClose, AuxCloseNorm: sp.AuxCloseNorm,
		AuxWcl: sp.AuxWcl, AuxWclNorm: sp.AuxWclNorm,
	}
	if w.pruneStats != nil || w.approxStats != nil {
		var bands int
		var frac float64
		for _, sh := range p.ShardWindows() {
			if sh.Index == nil {
				return nil, fmt.Errorf("dehealth: indexed world shard [%d, %d) has no index to snapshot", sh.Lo, sh.Hi)
			}
			ip := sh.Index.Parts()
			bc := sh.Index.BuildConfig()
			bands, frac = bc.Bands, bc.MaxCandidateFrac
			sw.Indexes = append(sw.Indexes, snapshot.IndexParts{
				N:                ip.N,
				Bands:            ip.Bands,
				MaxCandidateFrac: ip.MaxCandidateFrac,
				PostOff:          ip.PostOff,
				PostIDs:          ip.PostIDs,
				BandOf:           ip.BandOf,
				BandOff:          ip.BandOff,
				BandMeta:         ip.BandMeta,
				BandIDs:          ip.BandIDs,
				BlockSize:        ip.BlockSize,
				BlockMeta:        ip.BlockMeta,
			})
		}
		sw.Meta.PruneBands = bands
		sw.Meta.PruneMaxCandidateFrac = frac
	}
	return sw, nil
}

// SliceInfo identifies the partition a slice-loaded world serves: shard
// Shard of Shards, covering the global auxiliary id range [Lo, Hi) out of
// AuxTotal users. The serving layer uses it to advertise the shard's
// identity and to rebase local candidate ids (+Lo) to global ones.
type SliceInfo struct {
	Shard    int `json:"shard"`
	Shards   int `json:"shards"`
	Lo       int `json:"lo"`
	Hi       int `json:"hi"`
	AuxTotal int `json:"aux_total"`
}

// SliceInfo reports the shard identity of a world loaded from a per-shard
// snapshot slice, and ok=false for an ordinary full world.
func (w *PreparedWorld) SliceInfo() (SliceInfo, bool) {
	if w.slice == nil {
		return SliceInfo{}, false
	}
	return *w.slice, true
}

// SnapshotSlices writes the world as n per-shard snapshot slices, one file
// per prepare-time shard (n = Options.Shards), named
// "<prefix>.slice-<i>-of-<n>.snap". Each slice is a self-contained
// snapshot a shard server boots from with LoadWorld, mapping only its own
// auxiliary partition (plus the shared anonymized side); the loaded
// world's SliceInfo reports the window, and a distributed router
// scatter-gathering over all n slice servers merges their answers
// bit-identically to this world's own fan-out. Slicing a slice-loaded
// world fails with ErrAlreadySlice. Returns the written paths in shard
// order.
func (w *PreparedWorld) SnapshotSlices(prefix string) ([]string, error) {
	w.world.RLock()
	defer w.world.RUnlock()
	if w.slice != nil {
		return nil, fmt.Errorf("dehealth: %w", ErrAlreadySlice)
	}
	sw, err := w.snapshotWorld()
	if err != nil {
		return nil, err
	}
	bounds := shard.Bounds(len(w.Aux.Users), w.shards)
	n := len(bounds) - 1 // Bounds clamps n to the population
	paths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		sl, err := snapshot.SliceForShard(sw, i, bounds)
		if err != nil {
			return nil, err
		}
		path := fmt.Sprintf("%s.slice-%d-of-%d.snap", prefix, i, n)
		if err := snapshot.Save(path, sl); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// sideParts gathers one dataset side's snapshot sections: the dataset
// JSON, the flat feature matrix, the flattened attribute sets, and the
// frozen adjacency in CSR form.
func sideParts(d *Dataset, st *features.Store, g *graph.UDA) (snapshot.Side, error) {
	var s snapshot.Side
	blob, err := json.Marshal(d)
	if err != nil {
		return s, fmt.Errorf("dehealth: encoding dataset %q: %v", d.Name, err)
	}
	s.Dataset = blob
	s.Feat = st.Matrix()
	if s.AttrIdx, s.AttrWeight, s.AttrOff, err = flattenAttrs(st.Attrs()); err != nil {
		return s, err
	}
	s.AdjOff, s.AdjTo, s.AdjWeight = g.AdjacencyParts()
	return s, nil
}

// flattenAttrs packs per-user attribute sets into parallel int32 arrays
// behind a users+1 offset table. Attribute ids are feature indices and
// weights are post counts, so int32 overflow indicates a broken world and
// fails the save.
func flattenAttrs(attrs []stylometry.AttrSet) (idx, weight []int32, off []int, err error) {
	total := 0
	for _, a := range attrs {
		total += len(a.Idx)
	}
	idx = make([]int32, 0, total)
	weight = make([]int32, 0, total)
	off = make([]int, len(attrs)+1)
	for u, a := range attrs {
		for k, i := range a.Idx {
			v := a.Weight[k]
			if int(int32(i)) != i || int(int32(v)) != v {
				return nil, nil, nil, fmt.Errorf("dehealth: attribute (%d, weight %d) of user %d overflows int32", i, v, u)
			}
			idx = append(idx, int32(i))
			weight = append(weight, int32(v))
		}
		off[u+1] = len(idx)
	}
	return idx, weight, off, nil
}

// unflattenAttrs is flattenAttrs' inverse: two backing []int arrays with
// per-user capacity-clamped views. Each set's indices must be strictly
// ascending (the sparse-merge kernels and the max-id derivations rely on
// it) with positive weights.
func unflattenAttrs(idx, weight []int32, off []int) ([]stylometry.AttrSet, error) {
	bi := make([]int, len(idx))
	bw := make([]int, len(weight))
	for k := range idx {
		bi[k] = int(idx[k])
		bw[k] = int(weight[k])
	}
	out := make([]stylometry.AttrSet, len(off)-1)
	for u := range out {
		lo, hi := off[u], off[u+1]
		for k := lo; k < hi; k++ {
			if bi[k] < 0 || (k > lo && bi[k-1] >= bi[k]) {
				return nil, fmt.Errorf("%w: attribute set of user %d not strictly ascending", snapshot.ErrCorrupt, u)
			}
			if bw[k] < 1 {
				return nil, fmt.Errorf("%w: attribute weight %d of user %d", snapshot.ErrCorrupt, bw[k], u)
			}
		}
		out[u] = stylometry.AttrSet{Idx: bi[lo:hi:hi], Weight: bw[lo:hi:hi]}
	}
	return out, nil
}

// LoadOptions configures LoadWorld.
type LoadOptions struct {
	// NoMmap forces the copying load path: every array is decoded into
	// fresh heap memory and nothing in the world aliases the file. The
	// default memory-maps the snapshot and reconstructs the hot arrays as
	// zero-copy views of the mapping where the platform allows.
	NoMmap bool
}

// LoadWorld restores a PreparedWorld from a snapshot written by
// (*PreparedWorld).Snapshot. The restored world answers QueryUser,
// QueryBatch and Attack bit-identically to the world that saved it, at
// the same shard count and pruning configuration; it can keep ingesting
// (growth reallocates — the mapped file is never written). Failures
// return typed errors: ErrNotSnapshot, ErrSnapshotVersion,
// ErrSnapshotTruncated or ErrSnapshotCorrupt, and never a partially
// loaded world.
func LoadWorld(path string, opt LoadOptions) (*PreparedWorld, error) {
	sw, err := snapshot.Load(path, snapshot.Options{NoMmap: opt.NoMmap})
	if err != nil {
		return nil, err
	}
	meta := sw.Meta
	if meta.Shards < 1 {
		return nil, fmt.Errorf("%w: shard count %d", snapshot.ErrCorrupt, meta.Shards)
	}

	ex := stylometry.New()
	if err := ex.SetBigrams(meta.Bigrams); err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	if ex.NumFeatures() != meta.Dim {
		return nil, fmt.Errorf("%w: restored extractor has %d features, snapshot matrices use %d", snapshot.ErrCorrupt, ex.NumFeatures(), meta.Dim)
	}

	anonData, anonStore, err := restoreSide(sw.Anon, ex)
	if err != nil {
		return nil, err
	}
	auxData, auxStore, err := restoreSide(sw.Aux, ex)
	if err != nil {
		return nil, err
	}
	g1, g2 := anonStore.UDA(), auxStore.UDA()

	cfg := similarity.Config{C1: meta.C1, C2: meta.C2, C3: meta.C3, Landmarks: meta.Landmarks}
	sc, err := similarity.NewScorerFromParts(g1, g2, cfg, similarity.Parts{
		Landmarks: sw.Scorer.Landmarks,
		NCS:       sw.Scorer.NCS, NCSOff: sw.Scorer.NCSOff, NCSNorm: sw.Scorer.NCSNorm,
		Close: sw.Scorer.Close, CloseNorm: sw.Scorer.CloseNorm,
		Wcl: sw.Scorer.Wcl, WclNorm: sw.Scorer.WclNorm,
		Hbar2:  sw.Scorer.AuxHbar,
		AuxDeg: sw.Scorer.AuxDeg, AuxWdeg: sw.Scorer.AuxWdeg,
		AuxNCS: sw.Scorer.AuxNCS, AuxNCSOff: sw.Scorer.AuxNCSOff, AuxNCSNorm: sw.Scorer.AuxNCSNorm,
		AuxClose: sw.Scorer.AuxClose, AuxCloseNorm: sw.Scorer.AuxCloseNorm,
		AuxWcl: sw.Scorer.AuxWcl, AuxWclNorm: sw.Scorer.AuxWclNorm,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}

	p := core.NewRestoredPipeline(anonStore, auxStore, sc, meta.Shards)
	var stats *index.Stats
	var astats *index.ApproxStats
	if meta.Prune || meta.Approx {
		wins := p.ShardWindows()
		if len(sw.Indexes) != len(wins) {
			return nil, fmt.Errorf("%w: %d shard index sections for %d shards", snapshot.ErrCorrupt, len(sw.Indexes), len(wins))
		}
		for i, sh := range wins {
			ip := sw.Indexes[i]
			x, err := index.FromParts(index.Parts{
				N:                ip.N,
				Bands:            ip.Bands,
				MaxCandidateFrac: ip.MaxCandidateFrac,
				PostOff:          ip.PostOff,
				PostIDs:          ip.PostIDs,
				BandOf:           ip.BandOf,
				BandOff:          ip.BandOff,
				BandMeta:         ip.BandMeta,
				BandIDs:          ip.BandIDs,
				BlockSize:        ip.BlockSize,
				BlockMeta:        ip.BlockMeta,
			})
			if err != nil {
				return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
			}
			if x.NumUsers() != sh.NumUsers() {
				return nil, fmt.Errorf("%w: shard %d index covers %d users, window has %d", snapshot.ErrCorrupt, i, x.NumUsers(), sh.NumUsers())
			}
			sh.Index = x
			// Format-v1 blobs carry no block-max metadata (BlockSize 0):
			// rebuild it from the restored scorer window at the default
			// block size, so a pre-v2 snapshot gains the block-max walk
			// without an index rebuild — and without bumping what the walk
			// may skip, since block bounds only ever tighten the global base.
			sh.EnsureBlocks(0)
		}
		// WithPruning/WithApprox reuse the installed indexes: the
		// configuration's build-relevant part (Bands) matches by
		// construction. Both tiers share the same index sections.
		icfg := index.Config{Bands: meta.PruneBands, MaxCandidateFrac: meta.PruneMaxCandidateFrac}
		if meta.Prune {
			stats = &index.Stats{}
			p = p.Pruned(icfg, stats)
		}
		if meta.Approx {
			astats = &index.ApproxStats{}
			p = p.Approx(icfg, astats)
		}
	}

	prepOpt := Options{
		C1: meta.C1, C2: meta.C2, C3: meta.C3,
		Landmarks: meta.Landmarks,
		Shards:    meta.Shards,
		Prune:     meta.Prune,
		Approx:    ApproxConfig{Enabled: meta.Approx},
	}
	var slice *SliceInfo
	if s := meta.Slice; s != nil {
		if meta.Shards != 1 {
			return nil, fmt.Errorf("%w: slice snapshot with shard count %d", snapshot.ErrCorrupt, meta.Shards)
		}
		if s.Lo < 0 || s.Hi < s.Lo || s.Hi > s.AuxTotal || s.Hi-s.Lo != len(auxData.Users) ||
			s.Shard < 0 || s.Shard >= s.Shards {
			return nil, fmt.Errorf("%w: slice window [%d, %d) of %d (shard %d of %d) over %d users",
				snapshot.ErrCorrupt, s.Lo, s.Hi, s.AuxTotal, s.Shard, s.Shards, len(auxData.Users))
		}
		slice = &SliceInfo{Shard: s.Shard, Shards: s.Shards, Lo: s.Lo, Hi: s.Hi, AuxTotal: s.AuxTotal}
	}
	return &PreparedWorld{
		Anon: anonData, Aux: auxData,
		anonStore: anonStore, auxStore: auxStore,
		shards:      meta.Shards,
		prepOpt:     prepOpt,
		pruneStats:  stats,
		approxStats: astats,
		slice:       slice,
		pipelines:   map[similarity.Config]*core.Pipeline{cfg: p},
	}, nil
}

// restoreSide rebuilds one dataset side: the dataset from its JSON blob,
// the correlation topology from CSR adjacency, the attribute sets, and
// the feature store adopting the snapshot's flat matrix.
func restoreSide(s snapshot.Side, ex *stylometry.Extractor) (*Dataset, *features.Store, error) {
	d := &corpus.Dataset{}
	if err := json.Unmarshal(s.Dataset, d); err != nil {
		return nil, nil, fmt.Errorf("%w: dataset blob: %v", snapshot.ErrCorrupt, err)
	}
	attrs, err := unflattenAttrs(s.AttrIdx, s.AttrWeight, s.AttrOff)
	if err != nil {
		return nil, nil, err
	}
	if len(attrs) != len(d.Users) {
		return nil, nil, fmt.Errorf("%w: %d attribute sets for %d users", snapshot.ErrCorrupt, len(attrs), len(d.Users))
	}
	topo, err := graph.NewFromAdjacency(len(d.Users), s.AdjOff, s.AdjTo, s.AdjWeight)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	st, err := features.FromParts(d, ex, s.Feat, attrs, topo, features.Options{})
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	return d, st, nil
}

// PreparedOptions returns the preparation-time options in force for this
// world: the ones PrepareWorld received, or the configuration restored
// from the snapshot for a loaded world (attack-phase fields like
// Classifier are zero there and resolve to defaults). Useful as the base
// options when serving a warm-restarted world.
func (w *PreparedWorld) PreparedOptions() Options { return w.prepOpt }
