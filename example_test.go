package dehealth_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dehealth"
)

// ExamplePrepareWorld shows the extract-once/attack-many pattern: one
// feature-store preparation fans any number of attack configurations out
// over the same cached artifacts.
func ExamplePrepareWorld() {
	world := dehealth.GenerateWorld(dehealth.WorldConfig{WebMDUsers: 24, HBUsers: 24, Seed: 1})
	split := dehealth.SplitClosedWorld(world.WebMD, 0.5, 7)

	opt := dehealth.DefaultOptions()
	opt.MaxBigrams = 50 // keep the example fast
	opt.Landmarks = 5
	pw := dehealth.PrepareWorld(split.Anon, split.Aux, opt)
	anon, _ := pw.Sizes()

	// Sweep the candidate-set size K without re-extracting anything.
	for _, k := range []int{2, 5} {
		cfg := opt
		cfg.K = k
		cfg.Classifier = dehealth.KNN
		res, err := pw.Attack(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("K=%d: one candidate set per anonymized user: %v, each of size %d\n",
			k, len(res.TopK.Candidates) == anon, len(res.TopK.Candidates[0]))
	}
	// Output:
	// K=2: one candidate set per anonymized user: true, each of size 2
	// K=5: one candidate set per anonymized user: true, each of size 5
}

// ExamplePreparedWorld_QueryUser serves a single-user query — the online
// hot path — and shows that k bounds the candidate set.
func ExamplePreparedWorld_QueryUser() {
	world := dehealth.GenerateWorld(dehealth.WorldConfig{WebMDUsers: 24, HBUsers: 24, Seed: 2})
	split := dehealth.SplitClosedWorld(world.WebMD, 0.5, 9)

	opt := dehealth.DefaultOptions()
	opt.MaxBigrams = 50
	opt.Landmarks = 5
	opt.Shards = 2   // partition-parallel scoring ...
	opt.Prune = true // ... with candidate pruning; results are identical either way
	pw := dehealth.PrepareWorld(split.Anon, split.Aux, opt)

	candidates, err := pw.QueryUser(0, 3, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user 0: %d candidates\n", len(candidates))
	fmt.Printf("sorted by score: %v\n", candidates[0].Score >= candidates[1].Score)
	// Output:
	// user 0: 3 candidates
	// sorted by score: true
}

// ExamplePreparedWorld_Ingest grows a live world with a newly observed
// anonymous account and immediately queries it.
func ExamplePreparedWorld_Ingest() {
	world := dehealth.GenerateWorld(dehealth.WorldConfig{WebMDUsers: 24, HBUsers: 24, Seed: 3})
	split := dehealth.SplitClosedWorld(world.WebMD, 0.5, 11)

	opt := dehealth.DefaultOptions()
	opt.MaxBigrams = 50
	opt.Landmarks = 5
	pw := dehealth.PrepareWorld(split.Anon, split.Aux, opt)
	before, _ := pw.Sizes()

	id, err := pw.IngestUser("jdoe", []dehealth.IngestPost{
		{Thread: 0, Text: "my migraines got worse after the new meds"},
		{Thread: dehealth.NewThread, Text: "has anyone tried magnesium for sleep?"},
	})
	if err != nil {
		log.Fatal(err)
	}
	after, _ := pw.Sizes()
	fmt.Printf("new user id is the next dense id: %v\n", id == before)
	fmt.Printf("world grew by %d user\n", after-before)

	candidates, err := pw.QueryUser(id, 5, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queryable immediately: %d candidates\n", len(candidates))
	// Output:
	// new user id is the next dense id: true
	// world grew by 1 user
	// queryable immediately: 5 candidates
}

// ExamplePreparedWorld_Snapshot saves a prepared world to disk and warm
// restarts from the file: the loaded world answers the same query with
// bit-identical candidates (see docs/SNAPSHOT.md for the format).
func ExamplePreparedWorld_Snapshot() {
	world := dehealth.GenerateWorld(dehealth.WorldConfig{WebMDUsers: 24, HBUsers: 24, Seed: 4})
	split := dehealth.SplitClosedWorld(world.WebMD, 0.5, 13)

	opt := dehealth.DefaultOptions()
	opt.MaxBigrams = 50
	opt.Landmarks = 5
	pw := dehealth.PrepareWorld(split.Anon, split.Aux, opt)

	dir, err := os.MkdirTemp("", "dehealth-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "world.snap")

	if err := pw.Snapshot(path); err != nil {
		log.Fatal(err)
	}

	// A later process boots from the file instead of re-preparing.
	warm, err := dehealth.LoadWorld(path, dehealth.LoadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	want, err := pw.QueryUser(0, 3, opt)
	if err != nil {
		log.Fatal(err)
	}
	got, err := warm.QueryUser(0, 3, opt)
	if err != nil {
		log.Fatal(err)
	}
	same := len(got) == len(want)
	for i := range got {
		same = same && got[i] == want[i] // exact struct equality: bit-identical scores
	}
	fmt.Printf("restored world answers identically: %v\n", same)
	// Output:
	// restored world answers identically: true
}
