package dehealth

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dehealth/internal/corpus"
)

// servingWorld prepares a small closed-world split for online tests.
func servingWorld(t *testing.T, users int, seed int64) *PreparedWorld {
	t.Helper()
	w := GenerateWorld(WorldConfig{WebMDUsers: users, HBUsers: users, Seed: seed})
	split := SplitClosedWorld(w.WebMD, 0.5, seed+1)
	opt := DefaultOptions()
	opt.MaxBigrams = 50
	return PrepareWorld(split.Anon, split.Aux, opt)
}

// TestQueryUserMatchesAttackTopK proves the public serving path returns
// exactly the Top-K phase's candidate sets.
func TestQueryUserMatchesAttackTopK(t *testing.T) {
	pw := servingWorld(t, 30, 901)
	opt := DefaultOptions()
	opt.K = 5
	opt.Landmarks = 5
	opt.Classifier = KNN
	res, err := pw.Attack(opt)
	if err != nil {
		t.Fatal(err)
	}
	anon, _ := pw.Sizes()
	users := make([]int, anon)
	for u := range users {
		users[u] = u
	}
	batch, err := pw.QueryBatch(users, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < anon; u++ {
		single, err := pw.QueryUser(u, 5, opt)
		if err != nil {
			t.Fatal(err)
		}
		want := res.TopK.Candidates[u]
		if len(single) != len(want) || len(batch[u]) != len(want) {
			t.Fatalf("user %d: lengths %d/%d, want %d", u, len(single), len(batch[u]), len(want))
		}
		for i := range want {
			if single[i] != want[i] || batch[u][i] != want[i] {
				t.Fatalf("user %d candidate %d: query %+v batch %+v, want %+v", u, i, single[i], batch[u][i], want[i])
			}
		}
	}
	if _, err := pw.QueryUser(-1, 5, opt); err == nil {
		t.Fatal("negative user accepted")
	}
	if _, err := pw.QueryUser(anon, 5, opt); err == nil {
		t.Fatal("out-of-range user accepted")
	}
}

// TestIngestThenQuery grows the prepared world and checks ingested users
// are immediately queryable, with the grown sizes reported.
func TestIngestThenQuery(t *testing.T) {
	pw := servingWorld(t, 24, 911)
	opt := DefaultOptions()
	opt.Landmarks = 5
	anon0, aux := pw.Sizes()

	// Warm a pipeline first so ingestion exercises the incremental sync.
	if _, err := pw.QueryUser(0, 3, opt); err != nil {
		t.Fatal(err)
	}
	id, err := pw.IngestUser("fresh-account", []IngestPost{
		{Thread: 0, Text: "my migraines got worse after the new prescription"},
		{Thread: NewThread, Text: "does anyone know a good specialist in the area?"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id != anon0 {
		t.Fatalf("ingested id %d, want %d", id, anon0)
	}
	if a, x := pw.Sizes(); a != anon0+1 || x != aux {
		t.Fatalf("Sizes() = (%d, %d), want (%d, %d)", a, x, anon0+1, aux)
	}
	cands, err := pw.QueryUser(id, 7, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 7 {
		t.Fatalf("ingested user got %d candidates, want 7", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Fatal("candidates not sorted")
		}
	}
}

// TestServeConcurrentQueryIngest hammers a live httptest server with
// concurrent /v1/query and /v1/ingest traffic — the acceptance bar for the
// serving subsystem under -race.
func TestServeConcurrentQueryIngest(t *testing.T) {
	pw := servingWorld(t, 20, 921)
	opt := DefaultOptions()
	opt.Landmarks = 5
	srv := NewServer(pw, ServeOptions{Workers: 4, Batch: 8, FlushInterval: time.Millisecond, K: 5, Attack: opt})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	anon0, _ := pw.Sizes()
	const (
		queriers  = 6
		ingesters = 3
		perWorker = 10
	)
	var wg sync.WaitGroup
	errCh := make(chan error, (queriers+ingesters)*perWorker)
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				body := fmt.Sprintf(`{"user": %d, "k": 4}`, (g*perWorker+i)%anon0)
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("query status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(g)
	}
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				body := fmt.Sprintf(`{"name": "acct-%d-%d", "posts": [{"thread": %d, "text": "the treatment helped my symptoms a lot"}]}`, g, i, i%3)
				resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					errCh <- err
					return
				}
				var reply struct {
					User int `json:"user"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
					errCh <- err
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("ingest status %d", resp.StatusCode)
					continue
				}
				// Every ingested account must be queryable right away.
				qb := fmt.Sprintf(`{"user": %d}`, reply.User)
				qr, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte(qb)))
				if err != nil {
					errCh <- err
					return
				}
				if qr.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("query of ingested %d: status %d", reply.User, qr.StatusCode)
				}
				qr.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	anon1, _ := pw.Sizes()
	if want := anon0 + ingesters*perWorker; anon1 != want {
		t.Fatalf("anon users after ingest storm: %d, want %d", anon1, want)
	}
}

// TestShardedPreparedWorldParity proves Options.Shards is invisible in
// results: a sharded prepared world answers QueryUser/QueryBatch with
// bit-identical candidates to an unsharded world over the same datasets,
// including for users ingested after preparation.
func TestShardedPreparedWorldParity(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxBigrams = 50
	opt.Landmarks = 5

	// Each world gets its own (identically seeded) copy of the datasets:
	// ingestion grows the anonymized dataset in place, so two prepared
	// worlds must not alias one underlying corpus.
	mkSplit := func() *Split {
		w := GenerateWorld(WorldConfig{WebMDUsers: 28, HBUsers: 28, Seed: 931})
		return SplitClosedWorld(w.WebMD, 0.5, 932)
	}
	flatSplit, shardSplit := mkSplit(), mkSplit()
	flat := PrepareWorld(flatSplit.Anon, flatSplit.Aux, opt)
	shardedOpt := opt
	shardedOpt.Shards = 4
	sharded := PrepareWorld(shardSplit.Anon, shardSplit.Aux, shardedOpt)

	ingest := []UserPosts{
		{User: corpus.User{Name: "late-arrival", TrueIdentity: -1}, Posts: []IngestPost{
			{Thread: 0, Text: "the new medication finally started working for me"},
		}},
	}
	if _, err := flat.Ingest(ingest); err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.Ingest(ingest); err != nil {
		t.Fatal(err)
	}

	anon, _ := flat.Sizes()
	if a2, _ := sharded.Sizes(); a2 != anon {
		t.Fatalf("world sizes diverged: %d vs %d", a2, anon)
	}
	users := make([]int, anon)
	for i := range users {
		users[i] = i
	}
	flatBatch, err := flat.QueryBatch(users, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	shardBatch, err := sharded.QueryBatch(users, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < anon; u++ {
		single, err := sharded.QueryUser(u, 6, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range flatBatch[u] {
			if single[i] != flatBatch[u][i] || shardBatch[u][i] != flatBatch[u][i] {
				t.Fatalf("user %d candidate %d: sharded %+v / batch %+v, want %+v",
					u, i, single[i], shardBatch[u][i], flatBatch[u][i])
			}
		}
	}
}

// TestShardSizesStats checks ShardSizes tiles the world exactly and that
// /v1/stats surfaces the same breakdown.
func TestShardSizesStats(t *testing.T) {
	pw := servingWorldSharded(t, 26, 941, 3)
	anon, aux := pw.Sizes()
	sizes := pw.ShardSizes()
	if len(sizes) != 3 {
		t.Fatalf("got %d shards, want 3", len(sizes))
	}
	sumAux, sumAnon := 0, 0
	for i, s := range sizes {
		if s.Shard != i {
			t.Fatalf("shard ids out of order: %+v", sizes)
		}
		sumAux += s.AuxUsers
		sumAnon += s.AnonUsers
	}
	if sumAux != aux || sumAnon != anon {
		t.Fatalf("shard sums (%d, %d) != aggregate (%d, %d)", sumAnon, sumAux, anon, aux)
	}

	opt := DefaultOptions()
	opt.Landmarks = 5
	srv := NewServer(pw, ServeOptions{FlushInterval: time.Millisecond, K: 5, Attack: opt})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		AnonUsers int `json:"anon_users"`
		AuxUsers  int `json:"aux_users"`
		Shards    []struct {
			Shard     int `json:"shard"`
			AuxUsers  int `json:"aux_users"`
			AnonUsers int `json:"anon_users"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != len(sizes) {
		t.Fatalf("stats shards %d, want %d", len(st.Shards), len(sizes))
	}
	for i, s := range st.Shards {
		if s.Shard != sizes[i].Shard || s.AuxUsers != sizes[i].AuxUsers || s.AnonUsers != sizes[i].AnonUsers {
			t.Fatalf("stats shard %d = %+v, want %+v", i, s, sizes[i])
		}
	}
}

// servingWorldSharded is servingWorld with a shard count.
func servingWorldSharded(t *testing.T, users int, seed int64, shards int) *PreparedWorld {
	t.Helper()
	w := GenerateWorld(WorldConfig{WebMDUsers: users, HBUsers: users, Seed: seed})
	split := SplitClosedWorld(w.WebMD, 0.5, seed+1)
	opt := DefaultOptions()
	opt.MaxBigrams = 50
	opt.Shards = shards
	return PrepareWorld(split.Anon, split.Aux, opt)
}

// TestIngestRoutingStableAcrossRestarts pins the restart guarantee: two
// independently prepared copies of the same world, growing through the
// same ingested account names (in different arrival orders), report
// identical per-shard anonymized counts — the home-shard hash depends only
// on the name and shard count.
func TestIngestRoutingStableAcrossRestarts(t *testing.T) {
	mk := func() *PreparedWorld { return servingWorldSharded(t, 22, 951, 4) }
	a, b := mk(), mk()

	names := []string{"drifter-17", "sleepless", "anon9000", "jdoe", "qu1et", "zebra-fish"}
	// World a ingests in order; world b in reverse — a "restart" that saw
	// the same accounts arrive differently.
	for _, n := range names {
		if _, err := a.IngestUser(n, []IngestPost{{Thread: 0, Text: "same post body for " + n}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := len(names) - 1; i >= 0; i-- {
		if _, err := b.IngestUser(names[i], []IngestPost{{Thread: 0, Text: "same post body for " + names[i]}}); err != nil {
			t.Fatal(err)
		}
	}
	sa, sb := a.ShardSizes(), b.ShardSizes()
	if len(sa) != len(sb) {
		t.Fatalf("shard counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("shard %d diverged across restarts: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

// TestPrunedPreparedWorldParity is the public-layer pruning guarantee:
// a world prepared with Options.Prune answers every query — including
// after ingestion and across sharded/unsharded variants — bit-identically
// to the unpruned world, while PruneStats records the activity.
func TestPrunedPreparedWorldParity(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxBigrams = 50
	opt.Landmarks = 5

	mkSplit := func() *Split {
		w := GenerateWorld(WorldConfig{WebMDUsers: 26, HBUsers: 26, Seed: 961})
		return SplitClosedWorld(w.WebMD, 0.5, 962)
	}
	plainSplit, prunedSplit := mkSplit(), mkSplit()
	plain := PrepareWorld(plainSplit.Anon, plainSplit.Aux, opt)
	prunedOpt := opt
	prunedOpt.Prune = true
	prunedOpt.Shards = 3
	pruned := PrepareWorld(prunedSplit.Anon, prunedSplit.Aux, prunedOpt)

	ingest := []UserPosts{
		{User: corpus.User{Name: "late-arrival", TrueIdentity: -1}, Posts: []IngestPost{
			{Thread: 0, Text: "the new medication finally started working for me"},
		}},
	}
	if _, err := plain.Ingest(ingest); err != nil {
		t.Fatal(err)
	}
	if _, err := pruned.Ingest(ingest); err != nil {
		t.Fatal(err)
	}

	anon, _ := plain.Sizes()
	for u := 0; u < anon; u++ {
		want, err := plain.QueryUser(u, 6, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pruned.QueryUser(u, 6, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("user %d: %d candidates, want %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d candidate %d: %+v, want %+v", u, i, got[i], want[i])
			}
		}
	}

	ps := pruned.PruneStats()
	if !ps.Enabled || ps.Queries == 0 {
		t.Fatalf("pruned world stats inactive: %+v", ps)
	}
	if got := plain.PruneStats(); got.Enabled || got.Queries != 0 {
		t.Fatalf("unpruned world reports prune stats: %+v", got)
	}
}

// TestStatsPruneBlock checks /v1/stats carries the prune counters exactly
// when the backend prunes.
func TestStatsPruneBlock(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxBigrams = 50
	opt.Prune = true
	w := GenerateWorld(WorldConfig{WebMDUsers: 20, HBUsers: 20, Seed: 971})
	split := SplitClosedWorld(w.WebMD, 0.5, 972)
	pw := PrepareWorld(split.Anon, split.Aux, opt)

	srv := NewServer(pw, ServeOptions{K: 5, Attack: opt})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	qresp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewBufferString(`{"user": 0, "k": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Prune *struct {
			Queries   int64 `json:"queries"`
			Fallbacks int64 `json:"fallbacks"`
			Skipped   int64 `json:"skipped"`
		} `json:"prune"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Prune == nil || stats.Prune.Queries == 0 {
		t.Fatalf("stats missing prune block: %+v", stats.Prune)
	}

	// An unpruned world's stats must omit the block entirely.
	pw2 := servingWorld(t, 20, 973)
	srv2 := NewServer(pw2, ServeOptions{K: 5})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["prune"]; ok {
		t.Fatal("unpruned stats must omit the prune block")
	}
}

// TestConcurrentQueryBatchIngest races the batched fan-out directly
// against world growth: goroutines hammer PreparedWorld.QueryBatch (mixed
// batch widths, so the kernel's chunked multi-query scan runs under -race)
// while others ingest new accounts. Every batch must come back full-length
// and sorted — the world lock makes each batch see a consistent snapshot.
func TestConcurrentQueryBatchIngest(t *testing.T) {
	pw := servingWorld(t, 20, 931)
	opt := DefaultOptions()
	opt.Landmarks = 5
	opt.Workers = 3
	anon0, _ := pw.Sizes()
	if _, err := pw.QueryUser(0, 3, opt); err != nil { // warm the pipeline
		t.Fatal(err)
	}

	const (
		queriers  = 4
		ingesters = 2
		rounds    = 8
	)
	var wg sync.WaitGroup
	errCh := make(chan error, (queriers+ingesters)*rounds)
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				q := 1 + (g+i)%(anon0-1)
				users := make([]int, q)
				for j := range users {
					users[j] = (g*rounds + i + j) % anon0
				}
				res, err := pw.QueryBatch(users, 4, opt)
				if err != nil {
					errCh <- err
					return
				}
				if len(res) != q {
					errCh <- fmt.Errorf("batch of %d returned %d results", q, len(res))
					return
				}
				for _, cands := range res {
					if len(cands) != 4 {
						errCh <- fmt.Errorf("batch candidate list has %d entries, want 4", len(cands))
						return
					}
					for j := 1; j < len(cands); j++ {
						if cands[j].Score > cands[j-1].Score {
							errCh <- fmt.Errorf("batch candidates not sorted")
							return
						}
					}
				}
			}
		}(g)
	}
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("racer-%d-%d", g, i)
				if _, err := pw.IngestUser(name, []IngestPost{
					{Thread: i % 3, Text: "new symptoms after switching medication"},
				}); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if anon1, _ := pw.Sizes(); anon1 != anon0+ingesters*rounds {
		t.Fatalf("anon users after race: %d, want %d", anon1, anon0+ingesters*rounds)
	}
}
