// Per-shard snapshot slice tests: the SnapshotSlices → LoadWorld round
// trip that boots a distributed shard server, window-by-window bit
// identity against the full world's in-process shard fan-out, the typed
// rejections of damaged slice files, and the slice-of-slice guard.

package dehealth

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dehealth/internal/shard"
)

// loadSlices cuts the world into per-shard slices and loads each back.
func loadSlices(t *testing.T, pw *PreparedWorld, dir string) []*PreparedWorld {
	t.Helper()
	paths, err := pw.SnapshotSlices(filepath.Join(dir, "world"))
	if err != nil {
		t.Fatalf("SnapshotSlices: %v", err)
	}
	worlds := make([]*PreparedWorld, len(paths))
	for i, p := range paths {
		if worlds[i], err = LoadWorld(p, LoadOptions{}); err != nil {
			t.Fatalf("LoadWorld(%s): %v", p, err)
		}
	}
	return worlds
}

// TestSliceRoundTrip: each loaded slice reports its window, carries the
// full anonymized side over its own auxiliary partition, and answers its
// window bit-identically to the full world — merging every slice's
// (rebased) answer under the global order reproduces the full world's
// QueryUser exactly.
func TestSliceRoundTrip(t *testing.T) {
	for _, prune := range []bool{false, true} {
		pw, opt := snapWorld(t, 20, 7000, 3, prune)
		slices := loadSlices(t, pw, t.TempDir())
		if len(slices) != 3 {
			t.Fatalf("prune=%v: %d slices, want 3", prune, len(slices))
		}

		anonWant, auxWant := pw.Sizes()
		coverage := 0
		for i, sw := range slices {
			info, ok := sw.SliceInfo()
			if !ok {
				t.Fatalf("prune=%v: slice %d lost its SliceInfo", prune, i)
			}
			if info.Shard != i || info.Shards != 3 || info.AuxTotal != auxWant {
				t.Fatalf("prune=%v: slice %d identity %+v", prune, i, info)
			}
			anon, aux := sw.Sizes()
			if anon != anonWant {
				t.Fatalf("prune=%v: slice %d has %d anon users, want %d", prune, i, anon, anonWant)
			}
			if aux != info.Hi-info.Lo {
				t.Fatalf("prune=%v: slice %d has %d aux users, window is [%d, %d)", prune, i, aux, info.Lo, info.Hi)
			}
			coverage += aux
			if prune {
				if s := sw.PruneStats(); !s.Enabled {
					t.Fatalf("slice %d of a pruned world lost its index", i)
				}
			}
		}
		if coverage != auxWant {
			t.Fatalf("prune=%v: slices cover %d aux users, want %d", prune, coverage, auxWant)
		}

		// Bit-identity: merge the slices' rebased answers and compare with
		// the full world, for every anonymized user.
		k := 5
		for u := 0; u < anonWant; u++ {
			want, err := pw.QueryUser(u, k, opt)
			if err != nil {
				t.Fatalf("full QueryUser(%d): %v", u, err)
			}
			parts := make([][]shard.Candidate, len(slices))
			for i, sw := range slices {
				info, _ := sw.SliceInfo()
				cands, err := sw.QueryUser(u, k, sw.PreparedOptions())
				if err != nil {
					t.Fatalf("slice %d QueryUser(%d): %v", i, u, err)
				}
				rebased := make([]shard.Candidate, len(cands))
				for j, c := range cands {
					rebased[j] = shard.Candidate{User: c.User + info.Lo, Score: c.Score}
				}
				parts[i] = rebased
			}
			got := shard.MergeTopK(parts, k)
			sameCandidates(t, fmt.Sprintf("prune=%v user %d", prune, u), [][]Candidate{want}, [][]Candidate{got})
		}
	}
}

// TestSliceOfSliceRejected: a slice-loaded world refuses to be sliced
// again — cutting an already-local id space would corrupt the global
// numbering the router merges under.
func TestSliceOfSliceRejected(t *testing.T) {
	pw, _ := snapWorld(t, 16, 7100, 2, false)
	dir := t.TempDir()
	slices := loadSlices(t, pw, dir)
	_, err := slices[0].SnapshotSlices(filepath.Join(dir, "again"))
	if !errors.Is(err, ErrAlreadySlice) {
		t.Fatalf("slicing a slice: err = %v, want ErrAlreadySlice", err)
	}
}

// TestSliceResnapshotKeepsWindow: a shard server's shutdown snapshot of a
// slice-loaded world must still be that slice — identity preserved across
// snapshot generations.
func TestSliceResnapshotKeepsWindow(t *testing.T) {
	pw, _ := snapWorld(t, 16, 7200, 2, false)
	dir := t.TempDir()
	slices := loadSlices(t, pw, dir)
	info1, _ := slices[1].SliceInfo()

	gen2 := filepath.Join(dir, "gen2.snap")
	if err := slices[1].Snapshot(gen2); err != nil {
		t.Fatalf("re-snapshotting a slice world: %v", err)
	}
	lw, err := LoadWorld(gen2, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	info2, ok := lw.SliceInfo()
	if !ok || info2 != info1 {
		t.Fatalf("second-generation slice identity %+v (ok=%v), want %+v", info2, ok, info1)
	}
}

// TestSliceFileFailurePaths: damaged slice files fail with the same typed
// errors as full snapshots, and never yield a world.
func TestSliceFileFailurePaths(t *testing.T) {
	pw, _ := snapWorld(t, 14, 7300, 2, true)
	dir := t.TempDir()
	paths, err := pw.SnapshotSlices(filepath.Join(dir, "world"))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, wantErr error, mutate func([]byte) []byte) {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, mutate(append([]byte{}, blob...)), 0o644); err != nil {
			t.Fatal(err)
		}
		for _, noMmap := range []bool{false, true} {
			w, err := LoadWorld(p, LoadOptions{NoMmap: noMmap})
			if !errors.Is(err, wantErr) {
				t.Fatalf("%s (noMmap=%v): error %v, want %v", name, noMmap, err, wantErr)
			}
			if w != nil {
				t.Fatalf("%s: got a partially loaded world alongside the error", name)
			}
		}
	}

	check("slice-truncated", ErrSnapshotTruncated, func(b []byte) []byte {
		return b[:len(b)/2]
	})
	check("slice-corrupt", ErrSnapshotCorrupt, func(b []byte) []byte {
		off := binary.LittleEndian.Uint64(b[32:]) // first table entry's section offset
		b[off] ^= 0xff
		return b
	})
	check("slice-not-snapshot", ErrNotSnapshot, func(b []byte) []byte {
		b[0] = 'X'
		return b
	})
}
