package dehealth

import (
	"path/filepath"
	"testing"
)

func TestGenerateWorld(t *testing.T) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 100, HBUsers: 150, Seed: 3})
	if w.WebMD.NumUsers() != 100 || w.HB.NumUsers() != 150 {
		t.Fatalf("world sizes %d/%d", w.WebMD.NumUsers(), w.HB.NumUsers())
	}
	if err := w.WebMD.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Directory.Profiles) == 0 {
		t.Error("no external profiles")
	}
}

func TestGenerateWorldDeterministic(t *testing.T) {
	a := GenerateWorld(WorldConfig{WebMDUsers: 50, HBUsers: 60, Seed: 9})
	b := GenerateWorld(WorldConfig{WebMDUsers: 50, HBUsers: 60, Seed: 9})
	if a.WebMD.Posts[0].Text != b.WebMD.Posts[0].Text {
		t.Error("world generation not deterministic")
	}
}

func TestSplitAndSaveLoad(t *testing.T) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 60, HBUsers: 60, Seed: 4})
	split := SplitClosedWorld(w.WebMD, 0.5, 5)
	if split.Anon.NumUsers() == 0 || split.Aux.NumUsers() == 0 {
		t.Fatal("empty split")
	}
	path := filepath.Join(t.TempDir(), "anon.json")
	if err := split.Anon.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPosts() != split.Anon.NumPosts() {
		t.Error("roundtrip lost posts")
	}
}

func TestAttackEndToEnd(t *testing.T) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 80, HBUsers: 80, Seed: 6})
	split := SplitClosedWorld(w.WebMD, 0.5, 7)
	opt := DefaultOptions()
	opt.K = 5
	opt.Classifier = KNN
	opt.MaxBigrams = 50
	res, err := AttackWithTruth(split.Anon, split.Aux, opt, split.TrueMapping)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mapping) != split.Anon.NumUsers() {
		t.Fatalf("mapping size %d", len(res.Mapping))
	}
	// Some identifications land; attack is better than random.
	correct, total := 0, 0
	for u, tv := range split.TrueMapping {
		total++
		if res.Mapping[u] == tv {
			correct++
		}
	}
	if total == 0 {
		t.Fatal("no overlap in split")
	}
	random := float64(total) / float64(split.Aux.NumUsers()*total)
	if acc := float64(correct) / float64(total); acc <= random {
		t.Errorf("accuracy %v not better than random %v", acc, random)
	}
	if res.TopK == nil || res.Pipeline == nil {
		t.Error("result missing artifacts")
	}
}

func TestAttackOptionValidation(t *testing.T) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 30, HBUsers: 30, Seed: 8})
	split := SplitClosedWorld(w.WebMD, 0.5, 9)
	if _, err := Attack(split.Anon, split.Aux, Options{Classifier: "bogus"}); err == nil {
		t.Error("bogus classifier accepted")
	}
	if _, err := Attack(split.Anon, split.Aux, Options{Scheme: "bogus"}); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestAttackSchemes(t *testing.T) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 60, HBUsers: 60, Seed: 10})
	split := SplitOpenWorld(w.WebMD, 0.5, 11)
	for _, scheme := range []Scheme{Closed, FalseAddition, MeanVerification} {
		opt := DefaultOptions()
		opt.K = 5
		opt.Classifier = KNN
		opt.Scheme = scheme
		opt.MaxBigrams = 50
		opt.Filter = true
		res, err := Attack(split.Anon, split.Aux, opt)
		if err != nil {
			t.Fatalf("scheme %s: %v", scheme, err)
		}
		for _, v := range res.Mapping {
			if v < -1 || v >= split.Aux.NumUsers() {
				t.Fatalf("scheme %s: mapping out of range: %d", scheme, v)
			}
		}
	}
}

func TestPrepareWorldParity(t *testing.T) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 60, HBUsers: 60, Seed: 21})
	split := SplitClosedWorld(w.WebMD, 0.5, 22)
	opt := DefaultOptions()
	opt.K = 5
	opt.Classifier = KNN
	opt.MaxBigrams = 50

	oneShot, err := AttackWithTruth(split.Anon, split.Aux, opt, split.TrueMapping)
	if err != nil {
		t.Fatal(err)
	}
	pw := PrepareWorld(split.Anon, split.Aux, opt)
	prepared, err := pw.AttackWithTruth(opt, split.TrueMapping)
	if err != nil {
		t.Fatal(err)
	}
	for u := range oneShot.Mapping {
		if oneShot.Mapping[u] != prepared.Mapping[u] {
			t.Fatalf("mapping[%d]: one-shot %d != prepared %d", u, oneShot.Mapping[u], prepared.Mapping[u])
		}
	}
	for u := range oneShot.TopK.TrueRank {
		if oneShot.TopK.TrueRank[u] != prepared.TopK.TrueRank[u] {
			t.Fatalf("true rank[%d]: one-shot %d != prepared %d", u, oneShot.TopK.TrueRank[u], prepared.TopK.TrueRank[u])
		}
	}
}

func TestPreparedWorldConfigGrid(t *testing.T) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 50, HBUsers: 50, Seed: 23})
	split := SplitOpenWorld(w.WebMD, 0.5, 24)
	base := DefaultOptions()
	base.MaxBigrams = 50
	pw := PrepareWorld(split.Anon, split.Aux, base)

	// Sweep K, classifier and scheme over one prepared world; every
	// configuration must run and yield a well-formed mapping.
	for _, k := range []int{3, 5} {
		for _, scheme := range []Scheme{Closed, MeanVerification} {
			opt := base
			opt.K = k
			opt.Classifier = KNN
			opt.Scheme = scheme
			res, err := pw.AttackWithTruth(opt, split.TrueMapping)
			if err != nil {
				t.Fatalf("K=%d scheme=%s: %v", k, scheme, err)
			}
			if len(res.Mapping) != split.Anon.NumUsers() {
				t.Fatalf("K=%d scheme=%s: mapping size %d", k, scheme, len(res.Mapping))
			}
			for _, v := range res.Mapping {
				if v < -1 || v >= split.Aux.NumUsers() {
					t.Fatalf("K=%d scheme=%s: mapping out of range: %d", k, scheme, v)
				}
			}
		}
	}
	// Re-weighting the similarity must also be servable from the cache.
	opt := base
	opt.C1, opt.C2, opt.C3 = 0.3, 0.3, 0.4
	opt.Classifier = KNN
	if _, err := pw.Attack(opt); err != nil {
		t.Fatalf("re-weighted attack: %v", err)
	}
	bad := base
	bad.Classifier = "bogus"
	if _, err := pw.Attack(bad); err == nil {
		t.Error("bogus classifier accepted by prepared world")
	}
}

func TestPrepareWorldWorkersIrrelevant(t *testing.T) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 40, HBUsers: 40, Seed: 25})
	split := SplitClosedWorld(w.WebMD, 0.5, 26)
	opt := DefaultOptions()
	opt.K = 3
	opt.Classifier = KNN
	opt.MaxBigrams = 50

	serial := opt
	serial.Workers = 1
	parallel := opt
	parallel.Workers = 0 // all CPUs

	a, err := PrepareWorld(split.Anon, split.Aux, serial).AttackWithTruth(serial, split.TrueMapping)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrepareWorld(split.Anon, split.Aux, parallel).AttackWithTruth(parallel, split.TrueMapping)
	if err != nil {
		t.Fatal(err)
	}
	for u := range a.Mapping {
		if a.Mapping[u] != b.Mapping[u] {
			t.Fatalf("mapping[%d]: serial %d != parallel %d", u, a.Mapping[u], b.Mapping[u])
		}
	}
}

func TestLinkageFacade(t *testing.T) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 400, HBUsers: 400, Seed: 12})
	res := Linkage(w.WebMD, w.Directory)
	if len(res.NameLinks) == 0 {
		t.Error("NameLink found nothing at this scale")
	}
	if len(res.Dossiers) == 0 {
		t.Error("no dossiers aggregated")
	}
	// Links reference valid users/profiles.
	for _, l := range append(res.AvatarLinks, res.NameLinks...) {
		if l.User < 0 || l.User >= w.WebMD.NumUsers() {
			t.Fatalf("link user out of range: %d", l.User)
		}
		if l.Profile < 0 || l.Profile >= len(w.Directory.Profiles) {
			t.Fatalf("link profile out of range: %d", l.Profile)
		}
	}
}
