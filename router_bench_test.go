// BenchmarkRouterScatterGather measures the distributed serving tier
// against its single-process baseline: the same prepared world served (a)
// directly by one dehealth.Server and (b) through the scatter-gather
// router fronting two slice-booted shard servers, with concurrent HTTP
// clients driving /v1/query in both. Parity is asserted inline before any
// timing — the routed answers are compared bit-for-bit against
// PreparedWorld.QueryUser — so the artifact can never report a speedup
// (or an overhead) obtained by changing results. The summary lands in
// BENCH_router.json.

package dehealth

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dehealth/internal/router"
)

func BenchmarkRouterScatterGather(b *testing.B) {
	const shards, k, clients = 2, 10, 16
	w := GenerateWorld(WorldConfig{WebMDUsers: 250, HBUsers: 250, Seed: 95})
	split := SplitClosedWorld(w.WebMD, 0.5, 96)
	opt := DefaultOptions()
	opt.MaxBigrams = 100
	opt.Landmarks = 10
	opt.Shards = shards
	pw := PrepareWorld(split.Anon, split.Aux, opt)
	anonN, auxN := pw.Sizes()

	// Slice the world and boot the shard fleet.
	dir := b.TempDir()
	paths, err := pw.SnapshotSlices(filepath.Join(dir, "world"))
	if err != nil {
		b.Fatal(err)
	}
	topo := make([][]string, len(paths))
	for i, p := range paths {
		sw, err := LoadWorld(p, LoadOptions{})
		if err != nil {
			b.Fatal(err)
		}
		srv := NewServer(sw, ServeOptions{FlushInterval: 250 * time.Microsecond, Batch: 8, K: k, Attack: sw.PreparedOptions()})
		hs := httptest.NewServer(srv.Handler())
		defer hs.Close()
		defer srv.Close()
		topo[i] = []string{hs.URL}
	}
	rt, err := router.New(router.Config{Shards: topo, K: k, HealthInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()

	// Parity gate: every anonymized user's routed answer must be
	// bit-identical to the in-process world before anything is timed.
	for u := 0; u < anonN; u++ {
		want, err := pw.QueryUser(u, k, opt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := rt.QueryUser(context.Background(), u, k, false)
		if err != nil {
			b.Fatalf("router QueryUser(%d): %v", u, err)
		}
		if res.Partial || len(res.Candidates) != len(want) {
			b.Fatalf("router answer shape for user %d: partial=%v, %d candidates, want %d", u, res.Partial, len(res.Candidates), len(want))
		}
		for i := range want {
			if want[i] != res.Candidates[i] {
				b.Fatalf("parity violation at user %d candidate %d: %+v != %+v", u, i, res.Candidates[i], want[i])
			}
		}
	}

	directSrv := NewServer(pw, ServeOptions{FlushInterval: 250 * time.Microsecond, Batch: 8, K: k, Attack: opt})
	defer directSrv.Close()
	directHS := httptest.NewServer(directSrv.Handler())
	defer directHS.Close()
	routerHS := httptest.NewServer(rt.Handler())
	defer routerHS.Close()

	qps := map[string]float64{}
	for _, mode := range []struct{ name, url string }{
		{"direct", directHS.URL},
		{"router", routerHS.URL},
	} {
		b.Run(mode.name, func(b *testing.B) {
			client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
			defer client.CloseIdleConnections()
			var next int64
			var wg sync.WaitGroup
			b.ResetTimer()
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := atomic.AddInt64(&next, 1)
						if i > int64(b.N) {
							return
						}
						body := fmt.Sprintf(`{"user": %d, "k": %d}`, int(i)%anonN, k)
						resp, err := client.Post(mode.url+"/v1/query", "application/json", strings.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != 200 {
							b.Errorf("status %d", resp.StatusCode)
							return
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			rate := float64(b.N) / elapsed.Seconds()
			b.ReportMetric(rate, "qps")
			if prev, ok := qps[mode.name]; !ok || rate > prev {
				qps[mode.name] = rate
			}
		})
	}

	singleCore := runtime.GOMAXPROCS(0) == 1
	interpretation := "multi-core: router vs direct qps measures the scatter-gather hop cost over slice-booted shard servers on one machine; across machines the router adds shard-parallel capacity the direct path cannot"
	if singleCore {
		interpretation = "single-core environment: the router, both shard servers and the clients share one CPU, so router < direct is expected (two extra HTTP hops, no parallelism to buy); run on a multi-core machine — or a real fleet — to measure scatter-gather properly"
	}
	summary := map[string]any{
		"benchmark":      "router",
		"generated":      time.Now().UTC().Format(time.RFC3339),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"single_core":    singleCore,
		"interpretation": interpretation,
		"world":          map[string]int{"anon_users": anonN, "aux_users": auxN, "shards": len(topo)},
		"qps":            qps,
		"config":         map[string]any{"clients": clients, "k": k, "parity": "all routed answers asserted bit-identical to PreparedWorld.QueryUser before timing"},
	}
	if buf, err := json.MarshalIndent(summary, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_router.json", append(buf, '\n'), 0o644); err != nil {
			b.Logf("writing BENCH_router.json: %v", err)
		}
	}
}
