package dehealth

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// snapOptions is the preparation configuration the snapshot tests pin:
// small enough to keep the matrix fast, with every subsystem the snapshot
// must carry (sharding, pruning) toggled by the caller.
func snapOptions(shards int, prune bool) Options {
	opt := DefaultOptions()
	opt.MaxBigrams = 50
	opt.Landmarks = 5
	opt.Shards = shards
	opt.Prune = prune
	return opt
}

func snapWorld(t *testing.T, users int, seed int64, shards int, prune bool) (*PreparedWorld, Options) {
	t.Helper()
	w := GenerateWorld(WorldConfig{WebMDUsers: users, HBUsers: users, Seed: seed})
	split := SplitClosedWorld(w.WebMD, 0.5, seed+1)
	opt := snapOptions(shards, prune)
	return PrepareWorld(split.Anon, split.Aux, opt), opt
}

// worldAnswers collects every user's QueryUser answer plus one full
// QueryBatch — the complete query surface the parity tests compare.
func worldAnswers(t *testing.T, pw *PreparedWorld, k int, opt Options) ([][]Candidate, [][]Candidate) {
	t.Helper()
	anon, _ := pw.Sizes()
	users := make([]int, anon)
	single := make([][]Candidate, anon)
	for u := 0; u < anon; u++ {
		users[u] = u
		cands, err := pw.QueryUser(u, k, opt)
		if err != nil {
			t.Fatalf("QueryUser(%d): %v", u, err)
		}
		single[u] = cands
	}
	batch, err := pw.QueryBatch(users, k, opt)
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	return single, batch
}

// sameCandidates demands bit-identity: same users in the same order with
// exactly equal float64 scores.
func sameCandidates(t *testing.T, label string, want, got [][]Candidate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d answer sets, want %d", label, len(got), len(want))
	}
	for u := range want {
		if len(want[u]) != len(got[u]) {
			t.Fatalf("%s: user %d got %d candidates, want %d", label, u, len(got[u]), len(want[u]))
		}
		for i := range want[u] {
			if want[u][i] != got[u][i] {
				t.Fatalf("%s: user %d candidate %d: got %+v, want %+v", label, u, i, got[u][i], want[u][i])
			}
		}
	}
}

// TestSnapshotRoundTripParity is the PR's acceptance contract: across
// shard counts, pruning on and off, and both load paths (mmap and
// copying), a saved-and-reloaded world answers QueryUser and QueryBatch
// byte-for-byte identically to the world that saved it.
func TestSnapshotRoundTripParity(t *testing.T) {
	for _, shards := range []int{1, 3} {
		for _, prune := range []bool{false, true} {
			pw, opt := snapWorld(t, 20, int64(1000+10*shards), shards, prune)
			wantSingle, wantBatch := worldAnswers(t, pw, 5, opt)

			path := filepath.Join(t.TempDir(), "world.snap")
			if err := pw.Snapshot(path); err != nil {
				t.Fatalf("shards=%d prune=%v: Snapshot: %v", shards, prune, err)
			}
			for _, noMmap := range []bool{false, true} {
				lw, err := LoadWorld(path, LoadOptions{NoMmap: noMmap})
				if err != nil {
					t.Fatalf("shards=%d prune=%v noMmap=%v: LoadWorld: %v", shards, prune, noMmap, err)
				}
				la, lx := lw.Sizes()
				wa, wx := pw.Sizes()
				if la != wa || lx != wx {
					t.Fatalf("restored sizes (%d, %d), want (%d, %d)", la, lx, wa, wx)
				}
				gotSingle, gotBatch := worldAnswers(t, lw, 5, lw.PreparedOptions())
				label := labelOf(shards, prune, noMmap)
				sameCandidates(t, label+" QueryUser", wantSingle, gotSingle)
				sameCandidates(t, label+" QueryBatch", wantBatch, gotBatch)
				if prune {
					if s := lw.PruneStats(); !s.Enabled || s.Queries == 0 {
						t.Fatalf("%s: pruning inactive on the restored world: %+v", label, s)
					}
				}
			}
		}
	}
}

func labelOf(shards int, prune, noMmap bool) string {
	l := "shards=1"
	if shards != 1 {
		l = "shards=n"
	}
	if prune {
		l += " pruned"
	}
	if noMmap {
		l += " no-mmap"
	}
	return l
}

// TestSnapshotRoundTripSecondGeneration re-snapshots a loaded world: the
// restore must be complete enough to save again, and the grandchild must
// still answer identically.
func TestSnapshotRoundTripSecondGeneration(t *testing.T) {
	pw, opt := snapWorld(t, 16, 2000, 2, true)
	want, _ := worldAnswers(t, pw, 4, opt)

	dir := t.TempDir()
	p1 := filepath.Join(dir, "gen1.snap")
	p2 := filepath.Join(dir, "gen2.snap")
	if err := pw.Snapshot(p1); err != nil {
		t.Fatal(err)
	}
	w1, err := LoadWorld(p1, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.Snapshot(p2); err != nil {
		t.Fatalf("re-snapshotting a loaded world: %v", err)
	}
	w2, err := LoadWorld(p2, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := worldAnswers(t, w2, 4, w2.PreparedOptions())
	sameCandidates(t, "second generation", want, got)
}

// TestSnapshotIngestAfterLoad proves a restored world keeps growing: the
// anonymized side accepts new accounts (appends must reallocate, never
// write the read-only mapping) and both old and new users stay queryable.
func TestSnapshotIngestAfterLoad(t *testing.T) {
	pw, opt := snapWorld(t, 16, 3000, 2, false)
	path := filepath.Join(t.TempDir(), "world.snap")
	if err := pw.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	lw, err := LoadWorld(path, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	anon0, _ := lw.Sizes()
	// Warm a pipeline first so ingestion exercises the incremental sync
	// against the restored scorer caches.
	if _, err := lw.QueryUser(0, 3, opt); err != nil {
		t.Fatal(err)
	}
	id, err := lw.IngestUser("post-restart-account", []IngestPost{
		{Thread: 0, Text: "the new medication helps but the side effects are rough"},
		{Thread: NewThread, Text: "switched clinics, anyone have experience with the downtown one?"},
	})
	if err != nil {
		t.Fatalf("ingest into a restored world: %v", err)
	}
	if id != anon0 {
		t.Fatalf("ingested id %d, want %d", id, anon0)
	}
	cands, err := lw.QueryUser(id, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 5 {
		t.Fatalf("ingested user got %d candidates, want 5", len(cands))
	}
}

// TestSnapshotAfterIngestDrain is the serving-path satellite: a world
// grown through the live HTTP ingest path, drained, then snapshotted must
// restore with the ingested accounts included and answering identically.
func TestSnapshotAfterIngestDrain(t *testing.T) {
	pw, opt := snapWorld(t, 16, 4000, 1, false)
	dir := t.TempDir()
	endpointPath := filepath.Join(dir, "endpoint.snap")
	shutdownPath := filepath.Join(dir, "shutdown.snap")

	srv := NewServer(pw, ServeOptions{
		Workers: 2, Batch: 4, FlushInterval: time.Millisecond,
		K: 5, Attack: opt, SnapshotPath: endpointPath,
	})
	ts := httptest.NewServer(srv.Handler())

	body := `{"name":"live-ingested","posts":[{"text":"new symptoms since last week"},{"thread":0,"text":"thanks, that thread helped"}]}`
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Admin endpoint: snapshot the live (already grown) world.
	resp, err = http.Post(ts.URL+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Path  string `json:"path"`
		Bytes int64  `json:"bytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.Path != endpointPath || info.Bytes <= 0 {
		t.Fatalf("snapshot endpoint: status %d, info %+v", resp.StatusCode, info)
	}

	// Drain, then write the shutdown snapshot exactly as dehealthd does.
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := pw.Snapshot(shutdownPath); err != nil {
		t.Fatal(err)
	}

	want, wantBatch := worldAnswers(t, pw, 5, opt)
	for _, path := range []string{endpointPath, shutdownPath} {
		lw, err := LoadWorld(path, LoadOptions{})
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		la, _ := lw.Sizes()
		wa, _ := pw.Sizes()
		if la != wa {
			t.Fatalf("%s: restored %d anon users, want %d (ingested account lost)", path, la, wa)
		}
		got, gotBatch := worldAnswers(t, lw, 5, lw.PreparedOptions())
		sameCandidates(t, path+" QueryUser", want, got)
		sameCandidates(t, path+" QueryBatch", wantBatch, gotBatch)
	}
}

// TestSnapshotEndpointUnconfigured pins the admin endpoint's disabled
// state: without a snapshot path the request fails cleanly.
func TestSnapshotEndpointUnconfigured(t *testing.T) {
	pw, opt := snapWorld(t, 12, 5000, 1, false)
	srv := NewServer(pw, ServeOptions{Attack: opt})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want %d", resp.StatusCode, http.StatusNotImplemented)
	}
}

// TestLoadWorldFailurePaths drives the public loader through every typed
// rejection: wrong file, future version, truncation, corruption. None may
// return a world.
func TestLoadWorldFailurePaths(t *testing.T) {
	pw, _ := snapWorld(t, 12, 6000, 1, true)
	dir := t.TempDir()
	path := filepath.Join(dir, "world.snap")
	if err := pw.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, wantErr error, mutate func([]byte) []byte) {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, mutate(append([]byte{}, blob...)), 0o644); err != nil {
			t.Fatal(err)
		}
		for _, noMmap := range []bool{false, true} {
			w, err := LoadWorld(p, LoadOptions{NoMmap: noMmap})
			if !errors.Is(err, wantErr) {
				t.Fatalf("%s (noMmap=%v): error %v, want %v", name, noMmap, err, wantErr)
			}
			if w != nil {
				t.Fatalf("%s: got a partially loaded world alongside the error", name)
			}
		}
	}

	check("not-a-snapshot", ErrNotSnapshot, func(b []byte) []byte {
		b[0] = 'X'
		return b
	})
	check("future-version", ErrSnapshotVersion, func(b []byte) []byte {
		binary.LittleEndian.PutUint16(b[6:], 0x7fff)
		return b
	})
	check("truncated", ErrSnapshotTruncated, func(b []byte) []byte {
		return b[:len(b)/2]
	})
	check("flipped-crc-byte", ErrSnapshotCorrupt, func(b []byte) []byte {
		off := binary.LittleEndian.Uint64(b[32:]) // first table entry's section offset
		b[off] ^= 0xff
		return b
	})
}
