package dehealth

import (
	"encoding/binary"
	"os"
	"testing"
)

// v1FixturePath is a committed snapshot written by the format-v1 code
// before the v2 (block-max metadata) bump. It exists to pin backward read
// compatibility: every future reader must keep loading it and answering
// bit-identically to a freshly prepared world, with the missing block
// metadata rebuilt on load.
const v1FixturePath = "testdata/v1_world.snap"

// v1FixtureWorld prepares the exact world the committed v1 fixture was
// written from: deterministic generation, two shards, pruning and the
// approximate tier both on (so the file carries shard index sections).
func v1FixtureWorld() (*PreparedWorld, Options) {
	w := GenerateWorld(WorldConfig{WebMDUsers: 24, HBUsers: 24, Seed: 4242})
	split := SplitClosedWorld(w.WebMD, 0.5, 4243)
	opt := DefaultOptions()
	opt.MaxBigrams = 50
	opt.Landmarks = 5
	opt.Shards = 2
	opt.Prune = true
	opt.Approx = ApproxConfig{Enabled: true}
	return PrepareWorld(split.Anon, split.Aux, opt), opt
}

// TestWriteSnapshotFixture regenerates the committed fixture. It is
// deliberately env-guarded: the point of the file is that it was written
// by the *old* format version, so regenerating it under a newer writer
// would destroy exactly what TestSnapshotV1FixtureCompat pins.
func TestWriteSnapshotFixture(t *testing.T) {
	if os.Getenv("DEHEALTH_WRITE_FIXTURE") == "" {
		t.Skip("set DEHEALTH_WRITE_FIXTURE=1 to (re)write testdata fixtures")
	}
	pw, _ := v1FixtureWorld()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := pw.Snapshot(v1FixturePath); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
}

// TestSnapshotV1FixtureCompat loads the committed format-v1 snapshot and
// demands bit-identical answers — exact and approximate (theta 1,
// unbounded budget) — against a freshly prepared copy of the same world.
// The header check guards the fixture itself: if a writer ever rewrote it
// at a newer version, the compat coverage would silently vanish.
func TestSnapshotV1FixtureCompat(t *testing.T) {
	raw, err := os.ReadFile(v1FixturePath)
	if err != nil {
		t.Fatalf("reading committed fixture: %v (regenerate only with a format-v1 writer)", err)
	}
	if len(raw) < 8 {
		t.Fatalf("fixture is %d bytes", len(raw))
	}
	if v := binary.LittleEndian.Uint16(raw[6:]); v != 1 {
		t.Fatalf("fixture header claims format version %d, the committed fixture must stay version 1", v)
	}

	want, opt := v1FixtureWorld()
	for _, noMmap := range []bool{false, true} {
		lw, err := LoadWorld(v1FixturePath, LoadOptions{NoMmap: noMmap})
		if err != nil {
			t.Fatalf("noMmap=%v: LoadWorld(v1 fixture): %v", noMmap, err)
		}
		la, lx := lw.Sizes()
		wa, wx := want.Sizes()
		if la != wa || lx != wx {
			t.Fatalf("noMmap=%v: restored sizes (%d, %d), want (%d, %d)", noMmap, la, lx, wa, wx)
		}
		aopt := opt
		aopt.Approx.Enabled = true
		for u := 0; u < la; u++ {
			for _, mode := range []struct {
				name string
				opt  Options
			}{{"exact", opt}, {"approx-degenerate", aopt}} {
				w, err := want.QueryUser(u, 5, mode.opt)
				if err != nil {
					t.Fatalf("fresh QueryUser(%d) %s: %v", u, mode.name, err)
				}
				g, err := lw.QueryUser(u, 5, mode.opt)
				if err != nil {
					t.Fatalf("restored QueryUser(%d) %s: %v", u, mode.name, err)
				}
				if len(w) != len(g) {
					t.Fatalf("noMmap=%v user %d %s: %d candidates, want %d", noMmap, u, mode.name, len(g), len(w))
				}
				for i := range w {
					if w[i] != g[i] {
						t.Fatalf("noMmap=%v user %d %s candidate %d: got %+v, want %+v",
							noMmap, u, mode.name, i, g[i], w[i])
					}
				}
			}
		}
	}
}
