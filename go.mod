module dehealth

go 1.24
